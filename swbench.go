package swbench

import (
	"context"
	"io"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fabric"
	"repro/internal/pkt"
	"repro/internal/stats"
	"repro/internal/switches/switchdef"
	"repro/internal/topo"
	"repro/internal/units"
)

// Core measurement types.
type (
	// Config describes one measurement run.
	Config = core.Config
	// Result is one run's measurements.
	Result = core.Result
	// ScenarioKind selects one of the paper's four test scenarios.
	ScenarioKind = core.ScenarioKind
	// RunOpts sets simulation window lengths for experiment suites.
	RunOpts = core.RunOpts
	// LatencyPoint is a mean-RTT measurement at a fraction of R⁺.
	LatencyPoint = core.LatencyPoint
	// Summary is a latency distribution snapshot.
	Summary = stats.Summary
)

// The four test scenarios (paper Fig. 2), plus Custom, which runs a
// user-supplied Topology graph.
const (
	P2P      = core.P2P
	P2V      = core.P2V
	V2V      = core.V2V
	Loopback = core.Loopback
	Custom   = core.Custom
)

// Topology IR: every scenario — the paper's four and any custom wiring —
// is a declarative graph of typed nodes (physical port pairs, guest
// interfaces, VNFs, generators, sinks, monitors) and edges
// (cross-connects, wires, vifs) that one compiler materializes into a
// testbed. Config.Graph returns a named scenario's graph; a Custom
// scenario runs Config.Topology directly (see internal/topo and
// examples/customtopo).
type (
	// Topology is a declarative testbed graph.
	Topology = topo.Graph
	// TopologyNode is one typed node of a Topology.
	TopologyNode = topo.Node
	// TopologyEdge is one typed edge of a Topology.
	TopologyEdge = topo.Edge
	// TopologyPlan is a compiled topology: the exact port indices,
	// cross-connects, steering, and MAC rewrites the testbed will install.
	TopologyPlan = topo.Plan
)

// ParseTopology parses and validates a JSON topology graph.
func ParseTopology(data []byte) (*Topology, error) { return topo.Parse(data) }

// PlanTopology compiles a validated graph into its materialization plan
// without building a testbed.
func PlanTopology(g *Topology) (*TopologyPlan, error) { return topo.NewPlan(g) }

// TopologyDOT renders a topology graph as Graphviz DOT.
func TopologyDOT(g *Topology) (string, error) { return topo.DOT(g) }

// Time and rate units (picosecond-resolution simulated time).
type (
	// Time is simulated time in picoseconds.
	Time = units.Time
	// BitRate is an offered-load rate in bits per second.
	BitRate = units.BitRate
)

// Common constants re-exported for configuration.
const (
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Gbps        = units.Gbps
	TenGigE     = units.TenGigE
)

// ErrChainTooLong reports a switch-specific VM-count limit (BESS's QEMU
// incompatibility).
var ErrChainTooLong = core.ErrChainTooLong

// ErrNoMultiCore reports a switch that cannot spread its data plane over
// multiple cores (VALE's interrupt-driven kernel context).
var ErrNoMultiCore = core.ErrNoMultiCore

// Multi-core dispatch modes and RSS steering policies for Config.Dispatch
// and Config.RSSPolicy (see internal/multicore).
const (
	DispatchRSS   = core.DispatchRSS
	DispatchRTC   = core.DispatchRTC
	RSSRoundRobin = core.RSSRoundRobin
	RSSFlowHash   = core.RSSFlowHash
)

// CoreUtil is one SUT core's busy fraction in a multi-core Result.
type CoreUtil = core.CoreUtil

// Run executes one measurement.
func Run(cfg Config) (Result, error) { return core.Run(cfg) }

// WindowPoint is one measurement window of a RunWindows series.
type WindowPoint = core.WindowPoint

// RunWindows measures cfg.Duration in n consecutive windows within a single
// simulation, exposing time dynamics (Snabb's JIT warmup, instability
// phases) that the aggregate hides.
func RunWindows(cfg Config, n int) ([]WindowPoint, Result, error) { return core.RunWindows(cfg, n) }

// Switches returns the seven evaluated switch names in the paper's order.
func Switches() []string { return append([]string(nil), core.Switches...) }

// SwitchInfo is the design-space taxonomy record for one switch (paper
// Table 1, plus Table 2 tunings and Table 5 use cases).
type SwitchInfo = switchdef.Info

// Info returns the taxonomy record for a registered switch.
func Info(name string) (SwitchInfo, error) { return switchdef.Lookup(name) }

// Methodology: R⁺ estimation and latency ladders (§5.3).
var Table3Loads = core.Table3Loads

// NDR types: the RFC 2544 non-drop-rate binary search, provided as the
// classical alternative the paper's footnote 3 argues against for software
// switches.
type (
	// NDRResult is the outcome of a non-drop-rate search.
	NDRResult = core.NDRResult
	// NDROptions tunes the search.
	NDROptions = core.NDROptions
)

// FindNDR runs the RFC 2544 binary search for cfg's scenario.
func FindNDR(cfg Config, opts NDROptions) (NDRResult, error) { return core.FindNDR(cfg, opts) }

// EstimateRPlus measures R⁺: the average throughput under saturating
// input, in packets/second.
func EstimateRPlus(cfg Config) (float64, error) { return core.EstimateRPlus(cfg) }

// MeasureLatencyAt measures RTT with offered load load·R⁺.
func MeasureLatencyAt(cfg Config, rPlusPPS, load float64) (LatencyPoint, error) {
	return core.MeasureLatencyAt(cfg, rPlusPPS, load)
}

// LatencyProfile runs a load ladder (e.g. Table3Loads) for one scenario.
func LatencyProfile(cfg Config, loads []float64) ([]LatencyPoint, error) {
	return core.LatencyProfile(cfg, loads)
}

// Experiment suites regenerating the paper's figures and tables.
type (
	// Figure is a reproduced throughput figure.
	Figure = core.Figure
	// Figure1Point is one dot of the paper's opening scatter plot.
	Figure1Point = core.Figure1Point
	// ThroughputPoint is one bar of a throughput figure.
	ThroughputPoint = core.ThroughputPoint
	// Table3Cell is one (switch, scenario) latency group of Table 3.
	Table3Cell = core.Table3Cell
	// Table4Row is one switch's v2v RTT (Table 4).
	Table4Row = core.Table4Row
	// ScalingFigure is the multi-core scaling-curve family.
	ScalingFigure = core.ScalingFigure
	// ScalingCurve is one line of the scaling figure.
	ScalingCurve = core.ScalingCurve
	// ScalingPoint is one (switch, dispatch, size, cores) measurement.
	ScalingPoint = core.ScalingPoint
	// ChurnFigure is the cache-churn figure family.
	ChurnFigure = core.ChurnFigure
	// ChurnCurve is one line of the churn figure.
	ChurnCurve = core.ChurnCurve
	// ChurnPoint is one (switch, skew, rate, flows) measurement.
	ChurnPoint = core.ChurnPoint
)

// Run profiles.
var (
	// Quick shrinks simulation windows for demos and CI.
	Quick = core.Quick
	// Full is the profile behind EXPERIMENTS.md.
	Full = core.Full
)

// Figure1 reproduces the scatter data of the paper's Fig. 1.
func Figure1(o RunOpts) ([]Figure1Point, error) { return core.Figure1(o) }

// Figure4a reproduces p2p throughput (Fig. 4a).
func Figure4a(o RunOpts) (*Figure, error) { return core.Figure4a(o) }

// Figure4b reproduces p2v throughput (Fig. 4b).
func Figure4b(o RunOpts) (*Figure, error) { return core.Figure4b(o) }

// Figure4c reproduces v2v throughput (Fig. 4c).
func Figure4c(o RunOpts) (*Figure, error) { return core.Figure4c(o) }

// Figure5 reproduces unidirectional loopback throughput (Fig. 5).
func Figure5(o RunOpts) (*Figure, error) { return core.Figure5(o) }

// Figure6 reproduces bidirectional loopback throughput (Fig. 6).
func Figure6(o RunOpts) (*Figure, error) { return core.Figure6(o) }

// Table3 reproduces the RTT latency table.
func Table3(o RunOpts) ([]Table3Cell, error) { return core.Table3(o) }

// Table4 reproduces the v2v latency table.
func Table4(o RunOpts) ([]Table4Row, error) { return core.Table4(o) }

// FigureScaling reproduces the multi-core scaling curves (throughput vs.
// SUT cores, RSS and RTC dispatch, 64B and 1500B frames).
func FigureScaling(o RunOpts) (*ScalingFigure, error) { return core.FigureScaling(o) }

// ScalingSpecs returns the flat measurement grid behind the scaling
// figure.
func ScalingSpecs(o RunOpts) []Config { return core.ScalingSpecs(o) }

// FigureChurn reproduces the cache-churn figure family (throughput and
// latency vs. active-flow count and rule-update rate, every switch).
func FigureChurn(o RunOpts) (*ChurnFigure, error) { return core.FigureChurn(o) }

// ChurnSpecs returns the flat measurement grid behind the churn figure.
func ChurnSpecs(o RunOpts) []Config { return core.ChurnSpecs(o) }

// Campaign orchestration: every figure and table decomposes into
// independent deterministic simulations, and a Runner executes such a
// batch — serially (SerialRunner, the paper's original methodology) or
// fanned out over a bounded worker pool with a content-addressed result
// cache (NewOrchestrator). The *On suite variants below run their
// experiment grids through an explicit runner; the plain variants above
// stay serial.
type (
	// Runner executes a batch of independent measurement specs.
	Runner = core.Runner
	// SpecOutcome is one cell's result of a batch execution.
	SpecOutcome = core.SpecOutcome
	// Orchestrator is the parallel, cached, panic-isolating Runner.
	Orchestrator = campaign.Orchestrator
	// CampaignOptions configures an Orchestrator.
	CampaignOptions = campaign.Options
	// CampaignSpec is one named campaign cell.
	CampaignSpec = campaign.Spec
	// ExperimentCampaign is a named set of specs.
	ExperimentCampaign = campaign.Campaign
	// CampaignReport is a completed campaign.
	CampaignReport = campaign.Report
	// CampaignOutcome is one cell's execution record.
	CampaignOutcome = campaign.Outcome
	// CampaignEvent is one progress notification.
	CampaignEvent = campaign.Event
	// ResultCache is the content-addressed on-disk result cache.
	ResultCache = campaign.Cache
)

// SerialRunner runs batch specs one after another on the calling
// goroutine.
type SerialRunner = core.SerialRunner

// CampaignEventType classifies a campaign progress event.
type CampaignEventType = campaign.EventType

// The campaign progress event types.
const (
	CampaignCellStarted  = campaign.EventStarted
	CampaignCellFinished = campaign.EventFinished
	CampaignCellCached   = campaign.EventCached
	CampaignCellFailed   = campaign.EventFailed
)

// NewOrchestrator returns a campaign orchestrator; ctx cancels campaign
// execution between cells (nil means context.Background()).
func NewOrchestrator(ctx context.Context, opts CampaignOptions) *Orchestrator {
	return campaign.New(ctx, opts)
}

// OpenResultCache opens (creating if needed) a result cache directory.
func OpenResultCache(dir string) (*ResultCache, error) { return campaign.OpenCache(dir) }

// ResultStore is the content-addressed result store contract: the local
// on-disk ResultCache, the HTTP FabricCacheClient, and the tiered
// composition of both all implement it, and CampaignOptions.Cache accepts
// any of them.
type ResultStore = campaign.Store

// CampaignCacheKey returns a config's content address (canonical config +
// cost-model version) — the key the result cache, the campaign manifest,
// and the fabric's version-skew handshake all share.
func CampaignCacheKey(cfg Config) string { return campaign.CacheKey(cfg) }

// CachePruneStats summarizes one ResultCache.Prune pass.
type CachePruneStats = campaign.PruneStats

// CampaignManifest is the append-only JSONL progress ledger that makes
// campaigns resumable: recorded cells replay without running.
type CampaignManifest = campaign.Manifest

// CampaignManifestRecord is one line of a campaign manifest.
type CampaignManifestRecord = campaign.ManifestRecord

// OpenCampaignManifest opens (creating if needed) a campaign manifest.
func OpenCampaignManifest(path string) (*CampaignManifest, error) {
	return campaign.OpenManifest(path)
}

// Distributed campaign fabric: a coordinator shards campaign cells to
// worker daemons over HTTP (work-stealing pull model with lease expiry),
// a cache server exports the content-addressed result store fleet-wide,
// and a FabricRunner slots outcomes back into deterministic spec order
// behind the same Runner seam — a fabric run is byte-identical to a
// local run of the same campaign (see internal/fabric).
type (
	// FabricCoordinator shards cells to workers over HTTP.
	FabricCoordinator = fabric.Coordinator
	// FabricCoordinatorOptions configures a coordinator.
	FabricCoordinatorOptions = fabric.CoordinatorOptions
	// FabricCoordinatorStatus is the coordinator's /status snapshot.
	FabricCoordinatorStatus = fabric.CoordinatorStatus
	// FabricRunner executes campaigns on the fleet (implements Runner).
	FabricRunner = fabric.Runner
	// FabricRunnerOptions configures a FabricRunner.
	FabricRunnerOptions = fabric.RunnerOptions
	// FabricWorkerOptions configures one worker daemon.
	FabricWorkerOptions = fabric.WorkerOptions
	// FabricCacheServer exports a ResultCache over HTTP.
	FabricCacheServer = fabric.CacheServer
	// FabricCacheClient is the ResultStore view of a remote cache server.
	FabricCacheClient = fabric.CacheClient
	// FabricCacheStats is a cache server's /stats counters.
	FabricCacheStats = fabric.CacheStats
)

// ErrFabricVersionSkew reports a worker whose content address for a cell
// disagrees with the coordinator's (cost model or canonicalization skew).
var ErrFabricVersionSkew = fabric.ErrVersionSkew

// NewFabricCoordinator returns an empty coordinator; it implements
// http.Handler and is fed with Submit (or driven by a FabricRunner).
func NewFabricCoordinator(opts FabricCoordinatorOptions) *FabricCoordinator {
	return fabric.NewCoordinator(opts)
}

// NewFabricRunner wraps a coordinator in a campaign-level Runner.
func NewFabricRunner(ctx context.Context, co *FabricCoordinator, opts FabricRunnerOptions) *FabricRunner {
	return fabric.NewRunner(ctx, co, opts)
}

// RunFabricWorker joins a coordinator and executes leased cells until it
// signals shutdown or ctx is cancelled.
func RunFabricWorker(ctx context.Context, opts FabricWorkerOptions) error {
	return fabric.RunWorker(ctx, opts)
}

// NewFabricCacheServer wraps an open result cache in the HTTP service.
func NewFabricCacheServer(cache *ResultCache) *FabricCacheServer {
	return fabric.NewCacheServer(cache)
}

// NewFabricCacheClient returns a ResultStore backed by a cache server.
func NewFabricCacheClient(base string) *FabricCacheClient { return fabric.NewCacheClient(base) }

// NewTieredStore composes a local and a remote result store (reads check
// local first, remote hits write through; writes go to both). Either may
// be nil; both nil returns nil.
func NewTieredStore(local, remote ResultStore) ResultStore { return fabric.NewTiered(local, remote) }

// BuiltinCampaign returns a named experiment campaign (see
// BuiltinCampaignNames) with o applied to every spec.
func BuiltinCampaign(name string, o RunOpts) (ExperimentCampaign, error) {
	return campaign.Builtin(name, o)
}

// BuiltinCampaignNames lists the registered campaign names.
func BuiltinCampaignNames() []string { return campaign.BuiltinNames() }

// WriteCampaignArtifacts writes a campaign's JSONL artifact log.
func WriteCampaignArtifacts(w io.Writer, rep *CampaignReport) error {
	return campaign.WriteArtifacts(w, rep)
}

// Figure1On is Figure1 on an explicit runner.
func Figure1On(r Runner, o RunOpts) ([]Figure1Point, error) { return core.Figure1On(r, o) }

// Figure4aOn is Figure4a on an explicit runner.
func Figure4aOn(r Runner, o RunOpts) (*Figure, error) { return core.Figure4aOn(r, o) }

// Figure4bOn is Figure4b on an explicit runner.
func Figure4bOn(r Runner, o RunOpts) (*Figure, error) { return core.Figure4bOn(r, o) }

// Figure4cOn is Figure4c on an explicit runner.
func Figure4cOn(r Runner, o RunOpts) (*Figure, error) { return core.Figure4cOn(r, o) }

// Figure5On is Figure5 on an explicit runner.
func Figure5On(r Runner, o RunOpts) (*Figure, error) { return core.Figure5On(r, o) }

// Figure6On is Figure6 on an explicit runner.
func Figure6On(r Runner, o RunOpts) (*Figure, error) { return core.Figure6On(r, o) }

// Table3On is Table3 on an explicit runner.
func Table3On(r Runner, o RunOpts) ([]Table3Cell, error) { return core.Table3On(r, o) }

// Table4On is Table4 on an explicit runner.
func Table4On(r Runner, o RunOpts) ([]Table4Row, error) { return core.Table4On(r, o) }

// FigureScalingOn is FigureScaling on an explicit runner.
func FigureScalingOn(r Runner, o RunOpts) (*ScalingFigure, error) {
	return core.FigureScalingOn(r, o)
}

// FigureChurnOn is FigureChurn on an explicit runner.
func FigureChurnOn(r Runner, o RunOpts) (*ChurnFigure, error) {
	return core.FigureChurnOn(r, o)
}

// Renderers (text tables; also the source of EXPERIMENTS.md).
func RenderFigure(w io.Writer, fig *Figure, compare bool) { core.RenderFigure(w, fig, compare) }
func RenderFigure1(w io.Writer, pts []Figure1Point)       { core.RenderFigure1(w, pts) }
func RenderTable1(w io.Writer)                            { core.RenderTable1(w) }
func RenderTable2(w io.Writer)                            { core.RenderTable2(w) }
func RenderTable3(w io.Writer, cells []Table3Cell, compare bool) {
	core.RenderTable3(w, cells, compare)
}
func RenderTable4(w io.Writer, rows []Table4Row, compare bool) { core.RenderTable4(w, rows, compare) }
func RenderTable5(w io.Writer)                                 { core.RenderTable5(w) }
func RenderResult(w io.Writer, res Result)                     { core.RenderResult(w, res) }
func RenderScalingFigure(w io.Writer, fig *ScalingFigure)      { core.RenderScalingFigure(w, fig) }
func RenderChurnFigure(w io.Writer, fig *ChurnFigure)          { core.RenderChurnFigure(w, fig) }

// CSV exports, for plotting with external tools.
func WriteFigureCSV(w io.Writer, fig *Figure) error         { return core.WriteFigureCSV(w, fig) }
func WriteFigure1CSV(w io.Writer, pts []Figure1Point) error { return core.WriteFigure1CSV(w, pts) }
func WriteTable3CSV(w io.Writer, cells []Table3Cell) error  { return core.WriteTable3CSV(w, cells) }
func WriteWindowsCSV(w io.Writer, pts []WindowPoint) error  { return core.WriteWindowsCSV(w, pts) }
func WriteScalingCSV(w io.Writer, fig *ScalingFigure) error { return core.WriteScalingCSV(w, fig) }
func WriteChurnCSV(w io.Writer, fig *ChurnFigure) error     { return core.WriteChurnCSV(w, fig) }

// Extension point: implement and register your own switch data plane, then
// benchmark it with the same methodology (see examples/customswitch).
type (
	// Switch is the System Under Test contract.
	Switch = switchdef.Switch
	// DevPort is a device a switch data plane drives.
	DevPort = switchdef.DevPort
	// Env is what a switch factory receives from the testbed.
	Env = switchdef.Env
	// Meter accounts the simulated CPU cycles a data plane consumes.
	Meter = cost.Meter
	// Buf is a packet buffer.
	Buf = pkt.Buf
	// PortKind distinguishes physical, vhost-user, and ptnet attachments.
	PortKind = switchdef.PortKind
)

// Port kinds.
const (
	PhysKind  = switchdef.PhysKind
	VhostKind = switchdef.VhostKind
	PtnetKind = switchdef.PtnetKind
)

// Unified control plane: every Switch also implements Programmer, a typed
// rule surface (install/revoke/snapshot) that CrossConnect, the sdnrules
// example, and the mid-run churn controller all drive. Switches whose data
// plane cannot take runtime updates embed NoRuntimeRules and report
// ErrNoRuntimeRules.
type (
	// Programmer is the runtime rule-management contract.
	Programmer = switchdef.Programmer
	// Rule is one typed match/action rule.
	Rule = switchdef.Rule
	// RuleMatch is a rule's typed match (a 12-tuple subset).
	RuleMatch = switchdef.Match
	// RuleAction is one action of a rule's action list.
	RuleAction = switchdef.RuleAction
	// RuleFieldSet is the bitmask naming a match's constrained fields.
	RuleFieldSet = switchdef.FieldSet
	// NoRuntimeRules is the embeddable Programmer stub for fixed-function
	// data planes.
	NoRuntimeRules = switchdef.NoRuntimeRules
)

// ErrNoRuntimeRules reports a switch whose data plane cannot be
// reprogrammed while running.
var ErrNoRuntimeRules = switchdef.ErrNoRuntimeRules

// Match field selectors for RuleMatch.Fields.
const (
	FInPort  = switchdef.FInPort
	FEthDst  = switchdef.FEthDst
	FEthSrc  = switchdef.FEthSrc
	FEthType = switchdef.FEthType
	FVLAN    = switchdef.FVLAN
	FIPSrc   = switchdef.FIPSrc
	FIPDst   = switchdef.FIPDst
	FIPProto = switchdef.FIPProto
	FL4Src   = switchdef.FL4Src
	FL4Dst   = switchdef.FL4Dst
)

// Rule action kinds.
const (
	RuleOutput    = switchdef.RuleOutput
	RuleDrop      = switchdef.RuleDrop
	RuleSetEthDst = switchdef.RuleSetEthDst
	RuleSetEthSrc = switchdef.RuleSetEthSrc
)

// DefaultRulePriority is the priority Install assumes for Rule.Priority 0.
const DefaultRulePriority = switchdef.DefaultRulePriority

// CrossConnectRules returns the canned two-rule program equivalent to
// CrossConnect(a, b): in_port=a → output:b and the reverse.
func CrossConnectRules(a, b int) []Rule { return switchdef.CrossConnectRules(a, b) }

// I/O modes for SwitchInfo.
const (
	PollMode      = switchdef.PollMode
	InterruptMode = switchdef.InterruptMode
)

// Register adds a switch implementation to the registry under
// info.Name; it then works with Run and the experiment suites.
func Register(info SwitchInfo, factory func(Env) Switch) {
	switchdef.Register(info, factory)
}

// RateForPPS converts a packet rate into the wire bit rate Config.Rate
// expects.
func RateForPPS(pps float64, frameLen int) BitRate {
	return units.RateForPPS(pps, frameLen)
}
