package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	swbench "repro"
)

// topoCmd compiles a topology — one of the paper's scenarios or a JSON
// graph file — and prints it as a materialization plan (JSON) or
// Graphviz DOT, or just validates it.
func topoCmd(args []string) error {
	fs := flag.NewFlagSet("topo", flag.ExitOnError)
	file := fs.String("file", "", "JSON topology graph file (overrides -scenario)")
	scenario := fs.String("scenario", "p2p", "p2p, p2v, v2v, or loopback")
	chain := fs.Int("chain", 1, "loopback VNF chain length")
	bidir := fs.Bool("bidir", false, "bidirectional traffic")
	reversed := fs.Bool("reversed", false, "p2v only: the VM-to-NIC direction")
	latTopo := fs.Bool("latency-topology", false, "v2v only: the latency wiring (two ifs per VM, l2fwd reflector)")
	format := fs.String("format", "json", "json (compiled plan) or dot (Graphviz)")
	validate := fs.Bool("validate", false, "validate and compile only; print a one-line summary")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *swbench.Topology
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		if g, err = swbench.ParseTopology(data); err != nil {
			return err
		}
	} else {
		scn, err := parseScenario(*scenario)
		if err != nil {
			return err
		}
		cfg := swbench.Config{
			Scenario: scn, Chain: *chain,
			Bidir: *bidir, Reversed: *reversed, LatencyTopology: *latTopo,
		}
		if g, err = cfg.Graph(); err != nil {
			return err
		}
	}

	plan, err := swbench.PlanTopology(g)
	if err != nil {
		return err
	}
	if *validate {
		fmt.Printf("topology %q: ok (%d SUT ports, %d cross-connects, %d actors)\n",
			g.Name, len(plan.Ports), len(plan.Crosses), len(plan.Actors))
		return nil
	}
	switch *format {
	case "dot":
		out, err := swbench.TopologyDOT(g)
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "json":
		blob, err := json.MarshalIndent(plan, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(blob))
	default:
		return fmt.Errorf("unknown format %q (want json or dot)", *format)
	}
	return nil
}
