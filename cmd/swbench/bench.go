package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

// benchCmd is the `swbench bench` verb: measure the host-side speed of the
// simulation engine on fixed-seed representative cells, and optionally
// merge against a saved baseline into the BENCH_simcore.json trajectory.
func benchCmd(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "short simulation windows")
	repeats := fs.Int("repeats", 3, "runs per cell (best wall time wins)")
	cells := fs.String("cells", "", "comma-separated cell names to run (default: all)")
	out := fs.String("out", "", "write the report (or comparison, with -baseline) as JSON to this path")
	baselinePath := fs.String("baseline", "", "merge against this saved report into a baseline-vs-optimized comparison")
	memoBaseline := fs.Bool("memo-baseline", false, "also run each cell with classification memoization disabled and record the reference-vs-memoized host speedup")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var only []string
	if *cells != "" {
		only = strings.Split(*cells, ",")
	}
	rep, err := bench.Run(bench.Options{
		Opts:         bench.DefaultOpts(*quick),
		Quick:        *quick,
		Repeats:      *repeats,
		Cells:        only,
		MemoBaseline: *memoBaseline,
		Progress:     os.Stderr,
	})
	if err != nil {
		return err
	}

	var result any = rep
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			return err
		}
		base, err := bench.ReadReport(f)
		f.Close()
		if err != nil {
			return err
		}
		cmp, err := bench.Compare(base, rep)
		if err != nil {
			return err
		}
		for _, c := range cmp.Cells {
			fmt.Printf("  %-14s baseline %8.1f ms  optimized %8.1f ms  speedup %.2fx\n",
				c.Name, c.Baseline.WallSeconds*1e3, c.Optimized.WallSeconds*1e3, c.HostSpeedup)
		}
		result = cmp
	} else {
		for _, c := range rep.Cells {
			fmt.Printf("  %-14s %8.1f ms  %6.2f Mevents/s  %6.2f Msimpkt/s  (%d sim pkts, %.2f Gbps)\n",
				c.Name, c.WallSeconds*1e3, c.EventsPerSec/1e6, c.SimPktPerSec/1e6, c.SimPackets, c.Gbps)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := bench.WriteJSON(f, result); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
