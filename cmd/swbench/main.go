// Command swbench runs the paper's benchmarking methodology from the
// command line.
//
// Usage:
//
//	swbench list                         # switches + taxonomy
//	swbench run -switch vpp -scenario p2p [-size 64] [-bidir] [-chain N]
//	            [-rate-gbps 5] [-latency] [-duration-ms 20]
//	swbench rplus -switch vpp -scenario loopback -chain 2
//	swbench figure 1|4a|4b|4c|5|6|scaling|churn [-quick] [-compare] [-workers N]
//	swbench table 1|2|3|4|5 [-quick] [-compare] [-workers N]
//	swbench all [-quick] [-compare] [-workers N]   # every figure and table
//	swbench campaign list
//	swbench campaign <name> [-quick] [-workers N] [-timeout D]
//	         [-cache-dir P] [-artifacts F] [-resume] [-bench-out F]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	swbench "repro"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: swbench <list|run|rplus|figure|table|all> [flags]")
	fmt.Fprintln(os.Stderr, "  swbench list")
	fmt.Fprintln(os.Stderr, "  swbench run -switch vpp -scenario p2p|p2v|v2v|loopback [-size N] [-bidir] [-chain N] [-rate-gbps G] [-latency]")
	fmt.Fprintln(os.Stderr, "              [-cores N -dispatch rss|rtc [-rss-policy roundrobin|flowhash]]  # multi-core data plane")
	fmt.Fprintln(os.Stderr, "  swbench run -switch vpp -topology graph.json          # custom topology as the scenario")
	fmt.Fprintln(os.Stderr, "  swbench topo [-file graph.json | -scenario p2p [-chain N] [-bidir] [-reversed] [-latency-topology]]")
	fmt.Fprintln(os.Stderr, "               [-format json|dot] [-validate]           # compile and print a topology")
	fmt.Fprintln(os.Stderr, "  swbench rplus -switch vpp -scenario p2p")
	fmt.Fprintln(os.Stderr, "  swbench ndr -switch vpp -scenario p2p [-loss-tolerance N]")
	fmt.Fprintln(os.Stderr, "  swbench windows -switch snabb -n 10      # windowed time series")
	fmt.Fprintln(os.Stderr, "  swbench figure 1|4a|4b|4c|5|6|scaling|churn [-quick] [-compare] [-workers N]")
	fmt.Fprintln(os.Stderr, "  swbench table 1|2|3|4|5 [-quick] [-compare] [-workers N]")
	fmt.Fprintln(os.Stderr, "  swbench all [-quick] [-compare] [-workers N]")
	fmt.Fprintln(os.Stderr, "  swbench campaign list | <name> [-quick] [-workers N] [-timeout D] [-cache-dir P] [-artifacts F] [-resume] [-bench-out F]")
	fmt.Fprintln(os.Stderr, "                 [-fabric host:port] [-cache URL] [-manifest F]   # distributed fleet execution")
	fmt.Fprintln(os.Stderr, "  swbench worker -join host:port [-cache URL] [-cache-dir P] [-id S] [-batch N]   # join a campaign fleet")
	fmt.Fprintln(os.Stderr, "  swbench serve-cache -dir P [-listen host:port]   # export a result cache to the fleet")
	fmt.Fprintln(os.Stderr, "  swbench cache stats -dir P | -url U")
	fmt.Fprintln(os.Stderr, "  swbench cache prune -dir P -max-bytes N          # oldest-accessed-first eviction")
	fmt.Fprintln(os.Stderr, "  swbench bench [-quick] [-repeats N] [-out F] [-baseline F]   # engine host-speed cells")
	fmt.Fprintln(os.Stderr, "  (figure, table, and all also take -fabric and -cache; plus -cpuprofile F and -memprofile F)")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "list":
		swbench.RenderTable1(os.Stdout)
	case "run":
		err = runCmd(os.Args[2:])
	case "topo":
		err = topoCmd(os.Args[2:])
	case "rplus":
		err = rplusCmd(os.Args[2:])
	case "ndr":
		err = ndrCmd(os.Args[2:])
	case "windows":
		err = windowsCmd(os.Args[2:])
	case "figure":
		err = figureCmd(os.Args[2:])
	case "table":
		err = tableCmd(os.Args[2:])
	case "all":
		err = allCmd(os.Args[2:])
	case "campaign":
		err = campaignCmd(os.Args[2:])
	case "worker":
		err = workerCmd(os.Args[2:])
	case "serve-cache":
		err = serveCacheCmd(os.Args[2:])
	case "cache":
		err = cacheCmd(os.Args[2:])
	case "bench":
		err = benchCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		os.Exit(1)
	}
}

func parseScenario(s string) (swbench.ScenarioKind, error) {
	switch strings.ToLower(s) {
	case "p2p":
		return swbench.P2P, nil
	case "p2v":
		return swbench.P2V, nil
	case "v2v":
		return swbench.V2V, nil
	case "loopback":
		return swbench.Loopback, nil
	}
	return 0, fmt.Errorf("unknown scenario %q (want p2p, p2v, v2v, loopback)", s)
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	cfg := swbench.Config{}
	fs.StringVar(&cfg.Switch, "switch", "vpp", "switch under test")
	scenario := fs.String("scenario", "p2p", "p2p, p2v, v2v, or loopback")
	fs.IntVar(&cfg.FrameLen, "size", 64, "frame length in bytes")
	fs.BoolVar(&cfg.Bidir, "bidir", false, "bidirectional traffic")
	fs.IntVar(&cfg.Chain, "chain", 1, "loopback VNF chain length")
	fs.BoolVar(&cfg.Reversed, "reversed", false, "p2v only: measure the VM-to-NIC direction")
	rate := fs.Float64("rate-gbps", 0, "offered load per direction in Gbps (0 = saturate)")
	latency := fs.Bool("latency", false, "inject latency probes")
	durationMs := fs.Float64("duration-ms", 20, "measurement window (simulated ms)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	fs.IntVar(&cfg.SUTCores, "cores", 1, "SUT data-plane cores (poll-mode switches only)")
	fs.StringVar(&cfg.Dispatch, "dispatch", "", "multi-core dispatch mode: rss or rtc (default rss when -cores > 1)")
	fs.StringVar(&cfg.RSSPolicy, "rss-policy", "", "rss steering: roundrobin or flowhash (default roundrobin)")
	fs.IntVar(&cfg.Flows, "flows", 1, "number of synthetic flows")
	fs.Float64Var(&cfg.ZipfSkew, "zipf", 0, "Zipf flow-popularity skew (0 = round-robin flows)")
	fs.Float64Var(&cfg.RuleUpdateRate, "rule-update-rate", 0, "mid-run rule installs+revokes per simulated second (0 = off)")
	fs.IntVar(&cfg.SimWorkers, "sim-workers", 0, "goroutines per simulation (conservative parallel DES; 0/1 = sequential)")
	fs.BoolVar(&cfg.Containers, "containers", false, "host VNFs in containers instead of VMs")
	fs.StringVar(&cfg.CapturePath, "pcap", "", "dump delivered frames to this pcap file")
	fs.BoolVar(&cfg.IMIX, "imix", false, "classic IMIX frame-size mix instead of -size")
	topoFile := fs.String("topology", "", "JSON topology graph file (runs it as the custom scenario)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *topoFile != "" {
		data, err := os.ReadFile(*topoFile)
		if err != nil {
			return err
		}
		g, err := swbench.ParseTopology(data)
		if err != nil {
			return err
		}
		cfg.Scenario = swbench.Custom
		cfg.Topology = g
	} else {
		scn, err := parseScenario(*scenario)
		if err != nil {
			return err
		}
		cfg.Scenario = scn
	}
	cfg.Rate = swbench.BitRate(*rate * 1e9)
	cfg.Duration = swbench.Time(*durationMs * float64(swbench.Millisecond))
	cfg.Seed = *seed
	if *latency {
		cfg.ProbeEvery = 20 * swbench.Microsecond
	}
	res, err := swbench.Run(cfg)
	if err != nil {
		return err
	}
	swbench.RenderResult(os.Stdout, res)
	return nil
}

func rplusCmd(args []string) error {
	fs := flag.NewFlagSet("rplus", flag.ExitOnError)
	cfg := swbench.Config{}
	fs.StringVar(&cfg.Switch, "switch", "vpp", "switch under test")
	scenario := fs.String("scenario", "p2p", "p2p, p2v, v2v, or loopback")
	fs.IntVar(&cfg.FrameLen, "size", 64, "frame length in bytes")
	fs.IntVar(&cfg.Chain, "chain", 1, "loopback VNF chain length")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scn, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	cfg.Scenario = scn
	rp, err := swbench.EstimateRPlus(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("R+ = %.3f Mpps\n", rp/1e6)
	return nil
}

func suiteFlags(fs *flag.FlagSet) (*bool, *bool, *int, *int, *profiler) {
	quick := fs.Bool("quick", false, "short simulation windows")
	compare := fs.Bool("compare", false, "show the paper's values alongside")
	workers := fs.Int("workers", 0, "worker pool size (0 = all cores, 1 = serial)")
	simWorkers := fs.Int("sim-workers", 0, "goroutines per simulation (conservative parallel DES; 0/1 = sequential)")
	return quick, compare, workers, simWorkers, addProfileFlags(fs)
}

// fabricFlags adds the fleet flags shared by the figure/table/all verbs.
func fabricFlags(fs *flag.FlagSet) (fabricAddr, cacheURL *string) {
	fabricAddr = fs.String("fabric", "", "run cells on a worker fleet: coordinator listen address (host:port)")
	cacheURL = fs.String("cache", "", "shared result-cache server URL")
	return fabricAddr, cacheURL
}

// profiled runs fn under the requested CPU/heap profiles.
func profiled(p *profiler, fn func() error) error {
	if err := p.start(); err != nil {
		return err
	}
	err := fn()
	if perr := p.stop(); err == nil {
		err = perr
	}
	return err
}

func opts(quick bool) swbench.RunOpts {
	if quick {
		return swbench.Quick
	}
	return swbench.Full
}

// suiteOpts merges the shared suite flags into RunOpts.
func suiteOpts(quick bool, simWorkers int) swbench.RunOpts {
	o := opts(quick)
	o.SimWorkers = simWorkers
	return o
}

func figureCmd(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("figure needs an id: 1, 4a, 4b, 4c, 5, 6, scaling, churn")
	}
	id := args[0]
	fs := flag.NewFlagSet("figure", flag.ExitOnError)
	quick, compare, workers, simWorkers, prof := suiteFlags(fs)
	fabricAddr, cacheURL := fabricFlags(fs)
	csvPath := fs.String("csv", "", "also write the figure data as CSV to this path")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	r, closeRunner, err := newRunner(*workers, "", false, *fabricAddr, *cacheURL)
	if err != nil {
		return err
	}
	defer closeRunner()
	return profiled(prof, func() error {
		if *csvPath != "" {
			return figureCSV(r, id, suiteOpts(*quick, *simWorkers), *csvPath)
		}
		return renderFigure(r, id, suiteOpts(*quick, *simWorkers), *compare)
	})
}

func figureCSV(r swbench.Runner, id string, o swbench.RunOpts, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if id == "1" {
		pts, err := swbench.Figure1On(r, o)
		if err != nil {
			return err
		}
		return swbench.WriteFigure1CSV(f, pts)
	}
	if id == "scaling" {
		fig, err := swbench.FigureScalingOn(r, o)
		if err != nil {
			return err
		}
		return swbench.WriteScalingCSV(f, fig)
	}
	if id == "churn" {
		fig, err := swbench.FigureChurnOn(r, o)
		if err != nil {
			return err
		}
		return swbench.WriteChurnCSV(f, fig)
	}
	var fig *swbench.Figure
	switch id {
	case "4a":
		fig, err = swbench.Figure4aOn(r, o)
	case "4b":
		fig, err = swbench.Figure4bOn(r, o)
	case "4c":
		fig, err = swbench.Figure4cOn(r, o)
	case "5":
		fig, err = swbench.Figure5On(r, o)
	case "6":
		fig, err = swbench.Figure6On(r, o)
	default:
		return fmt.Errorf("unknown figure %q", id)
	}
	if err != nil {
		return err
	}
	return swbench.WriteFigureCSV(f, fig)
}

func windowsCmd(args []string) error {
	fs := flag.NewFlagSet("windows", flag.ExitOnError)
	cfg := swbench.Config{}
	fs.StringVar(&cfg.Switch, "switch", "snabb", "switch under test")
	scenario := fs.String("scenario", "p2p", "p2p, p2v, v2v, or loopback")
	fs.IntVar(&cfg.FrameLen, "size", 64, "frame length in bytes")
	fs.IntVar(&cfg.Chain, "chain", 1, "loopback VNF chain length")
	n := fs.Int("n", 10, "number of windows")
	durationMs := fs.Float64("duration-ms", 10, "total measured span (simulated ms)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scn, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	cfg.Scenario = scn
	cfg.Warmup = swbench.Microsecond // expose the transient
	cfg.Duration = swbench.Time(*durationMs * float64(swbench.Millisecond))
	pts, res, err := swbench.RunWindows(cfg, *n)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("  t=%8.1fus  %6.2f Gbps  %6.2f Mpps\n", p.Start.Microseconds(), p.Gbps, p.Mpps)
	}
	fmt.Printf("aggregate: %.2f Gbps\n", res.Gbps)
	return nil
}

func renderFigure(r swbench.Runner, id string, o swbench.RunOpts, compare bool) error {
	switch id {
	case "1":
		pts, err := swbench.Figure1On(r, o)
		if err != nil {
			return err
		}
		swbench.RenderFigure1(os.Stdout, pts)
		return nil
	case "scaling":
		fig, err := swbench.FigureScalingOn(r, o)
		if err != nil {
			return err
		}
		swbench.RenderScalingFigure(os.Stdout, fig)
		return nil
	case "churn":
		fig, err := swbench.FigureChurnOn(r, o)
		if err != nil {
			return err
		}
		swbench.RenderChurnFigure(os.Stdout, fig)
		return nil
	case "4a", "4b", "4c", "5", "6":
		var fig *swbench.Figure
		var err error
		switch id {
		case "4a":
			fig, err = swbench.Figure4aOn(r, o)
		case "4b":
			fig, err = swbench.Figure4bOn(r, o)
		case "4c":
			fig, err = swbench.Figure4cOn(r, o)
		case "5":
			fig, err = swbench.Figure5On(r, o)
		case "6":
			fig, err = swbench.Figure6On(r, o)
		}
		if err != nil {
			return err
		}
		swbench.RenderFigure(os.Stdout, fig, compare)
		return nil
	}
	return fmt.Errorf("unknown figure %q", id)
}

func tableCmd(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("table needs an id: 1, 2, 3, 4, 5")
	}
	id := args[0]
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	quick, compare, workers, simWorkers, prof := suiteFlags(fs)
	fabricAddr, cacheURL := fabricFlags(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	r, closeRunner, err := newRunner(*workers, "", false, *fabricAddr, *cacheURL)
	if err != nil {
		return err
	}
	defer closeRunner()
	return profiled(prof, func() error {
		return renderTable(r, id, suiteOpts(*quick, *simWorkers), *compare)
	})
}

func renderTable(r swbench.Runner, id string, o swbench.RunOpts, compare bool) error {
	switch id {
	case "1":
		swbench.RenderTable1(os.Stdout)
	case "2":
		swbench.RenderTable2(os.Stdout)
	case "3":
		cells, err := swbench.Table3On(r, o)
		if err != nil {
			return err
		}
		swbench.RenderTable3(os.Stdout, cells, compare)
	case "4":
		rows, err := swbench.Table4On(r, o)
		if err != nil {
			return err
		}
		swbench.RenderTable4(os.Stdout, rows, compare)
	case "5":
		swbench.RenderTable5(os.Stdout)
	default:
		return fmt.Errorf("unknown table %q", id)
	}
	return nil
}

func allCmd(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	quick, compare, workers, simWorkers, prof := suiteFlags(fs)
	fabricAddr, cacheURL := fabricFlags(fs)
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory")
	progress := fs.Bool("progress", false, "stream per-cell progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, closeRunner, err := newRunner(*workers, *cacheDir, *progress, *fabricAddr, *cacheURL)
	if err != nil {
		return err
	}
	defer closeRunner()
	o := suiteOpts(*quick, *simWorkers)
	return profiled(prof, func() error {
		for _, id := range []string{"1", "2"} {
			if err := renderTable(r, id, o, *compare); err != nil {
				return err
			}
			fmt.Println()
		}
		for _, id := range []string{"1", "4a", "4b", "4c", "5", "6"} {
			if err := renderFigure(r, id, o, *compare); err != nil {
				return err
			}
			fmt.Println()
		}
		for _, id := range []string{"3", "4", "5"} {
			if err := renderTable(r, id, o, *compare); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	})
}

func ndrCmd(args []string) error {
	fs := flag.NewFlagSet("ndr", flag.ExitOnError)
	cfg := swbench.Config{}
	fs.StringVar(&cfg.Switch, "switch", "vpp", "switch under test")
	scenario := fs.String("scenario", "p2p", "p2p, p2v, v2v, or loopback")
	fs.IntVar(&cfg.FrameLen, "size", 64, "frame length in bytes")
	fs.IntVar(&cfg.Chain, "chain", 1, "loopback VNF chain length")
	tol := fs.Int64("loss-tolerance", 0, "frames of loss allowed per trial (RFC 2544 uses 0)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scn, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	cfg.Scenario = scn
	res, err := swbench.FindNDR(cfg, swbench.NDROptions{LossTolerance: *tol})
	if err != nil {
		return err
	}
	for _, tr := range res.Trials {
		verdict := "FAIL"
		if tr.Passed {
			verdict = "pass"
		}
		fmt.Printf("  trial %8.3f Mpps  lost=%-6d %s\n", tr.PPS/1e6, tr.Lost, verdict)
	}
	fmt.Printf("NDR = %.3f Mpps\n", res.PPS/1e6)
	rp, err := swbench.EstimateRPlus(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("R+  = %.3f Mpps (the paper's methodology)\n", rp/1e6)
	return nil
}
