package main

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// profiler carries the -cpuprofile/-memprofile flag values shared by the
// long-running verbs (figure, table, all, campaign): simulation campaigns
// are the engine's hot loop, and profiling them end to end is how the
// simulator's own performance work gets measured.
type profiler struct {
	cpu, mem string
	cpuFile  *os.File
}

// addProfileFlags registers the profiling flags on fs.
func addProfileFlags(fs *flag.FlagSet) *profiler {
	p := &profiler{}
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.mem, "memprofile", "", "write a heap profile to this file on exit")
	return p
}

// start begins CPU profiling if requested. Callers must invoke stop (via
// defer) once the measured work is done.
func (p *profiler) start() error {
	if p.cpu == "" {
		return nil
	}
	f, err := os.Create(p.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

// stop finishes the CPU profile and writes the heap profile, if requested.
func (p *profiler) stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return err
		}
		p.cpuFile = nil
	}
	if p.mem == "" {
		return nil
	}
	f, err := os.Create(p.mem)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // settle allocations so the heap profile shows retention
	return pprof.WriteHeapProfile(f)
}
