package main

import (
	"fmt"
	"io"
	"time"

	swbench "repro"
)

// progressPrinter returns a live campaign progress consumer: one line per
// completed cell on w, with throughput and an ETA once the first cell
// lands. Event callbacks are serialized by the orchestrator.
func progressPrinter(w io.Writer) func(swbench.CampaignEvent) {
	return func(ev swbench.CampaignEvent) {
		switch ev.Type {
		case swbench.CampaignCellStarted:
			return // one line per completion keeps logs readable
		case swbench.CampaignCellFailed:
			fmt.Fprintf(w, "[%*d/%d] %-44s FAILED: %v\n",
				width(ev.Total), ev.Done, ev.Total, ev.ID, ev.Err)
			return
		}
		status := "ok"
		if ev.Type == swbench.CampaignCellCached {
			status = "cached"
		}
		line := fmt.Sprintf("[%*d/%d] %-44s %-6s %6.2fs",
			width(ev.Total), ev.Done, ev.Total, ev.ID, status, ev.Wall.Seconds())
		if ev.ETA > 0 {
			line += fmt.Sprintf("  %5.1f cells/s  eta %s", ev.Rate, round(ev.ETA))
		}
		// Fleet runs name the executor; local execution stays unadorned.
		if ev.Worker != "" && ev.Worker != "local" {
			line += "  worker=" + ev.Worker
		}
		fmt.Fprintln(w, line)
	}
}

func width(total int) int { return len(fmt.Sprint(total)) }

func round(d time.Duration) time.Duration { return d.Round(100 * time.Millisecond) }
