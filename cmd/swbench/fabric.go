package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	swbench "repro"
)

// buildStore composes the requested result-store tiers: a local on-disk
// cache dir and/or a shared cache-server URL. Both empty returns nil.
func buildStore(cacheDir, cacheURL string) (swbench.ResultStore, *swbench.ResultCache, error) {
	var (
		local  *swbench.ResultCache
		remote swbench.ResultStore
	)
	if cacheDir != "" {
		c, err := swbench.OpenResultCache(cacheDir)
		if err != nil {
			return nil, nil, err
		}
		local = c
	}
	if cacheURL != "" {
		remote = swbench.NewFabricCacheClient(cacheURL)
	}
	if local == nil {
		return swbench.NewTieredStore(nil, remote), nil, nil
	}
	return swbench.NewTieredStore(local, remote), local, nil
}

// startFabric turns this process into a campaign coordinator: it listens
// on addr, prints the join hint, and returns a Runner that shards cells
// to whichever workers lease them. The close function drains the fleet
// (idle workers are told to shut down) and stops the listener.
func startFabric(addr string, store swbench.ResultStore, manifest *swbench.CampaignManifest,
	timeout time.Duration, events func(swbench.CampaignEvent)) (swbench.Runner, func(), error) {
	co := swbench.NewFabricCoordinator(swbench.FabricCoordinatorOptions{})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("fabric: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: co}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "fabric: coordinator on %s — join workers with: swbench worker -join %s\n",
		ln.Addr(), ln.Addr())
	r := swbench.NewFabricRunner(context.Background(), co, swbench.FabricRunnerOptions{
		Cache: store, Manifest: manifest, Timeout: timeout, Events: events,
	})
	closeFn := func() {
		co.Close()
		// One idle-poll beat so workers observe the shutdown signal and
		// exit cleanly before the listener goes away.
		time.Sleep(600 * time.Millisecond)
		srv.Close()
	}
	return r, closeFn, nil
}

// workerCmd is the `swbench worker` verb: a daemon that joins a
// coordinator, leases cells, checks the shared cache first, runs the rest
// through the standard per-cell isolation, and streams completions back.
func workerCmd(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	join := fs.String("join", "", "coordinator address (host:port or URL); required")
	cacheURL := fs.String("cache", "", "shared cache server URL")
	cacheDir := fs.String("cache-dir", "", "local result-cache tier directory")
	id := fs.String("id", "", "worker identity in leases and progress (default host-pid)")
	timeout := fs.Duration("timeout", 0, "per-cell wall-clock timeout (coordinator's budget wins; 0 = unlimited)")
	batch := fs.Int("batch", 0, "cells per lease (0 = 4)")
	poll := fs.Duration("poll", 0, "idle re-poll interval (0 = 250ms)")
	quiet := fs.Bool("quiet", false, "suppress per-cell log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *join == "" {
		return fmt.Errorf("worker needs -join <coordinator address>")
	}
	store, _, err := buildStore(*cacheDir, *cacheURL)
	if err != nil {
		return err
	}
	opts := swbench.FabricWorkerOptions{
		ID: *id, Coordinator: *join, Cache: store,
		Timeout: *timeout, Batch: *batch, Poll: *poll,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	return swbench.RunFabricWorker(context.Background(), opts)
}

// serveCacheCmd is the `swbench serve-cache` verb: export a result-cache
// directory to the fleet over HTTP.
func serveCacheCmd(args []string) error {
	fs := flag.NewFlagSet("serve-cache", flag.ExitOnError)
	dir := fs.String("dir", "", "result cache directory to serve; required")
	listen := fs.String("listen", "127.0.0.1:8711", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("serve-cache needs -dir <cache directory>")
	}
	cache, err := swbench.OpenResultCache(*dir)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	entries, bytes := cache.Stats()
	fmt.Fprintf(os.Stderr, "cache server on %s: %d entries, %.2f MB (%s)\n",
		ln.Addr(), entries, float64(bytes)/1e6, *dir)
	return (&http.Server{Handler: swbench.NewFabricCacheServer(cache)}).Serve(ln)
}

// cacheCmd is the `swbench cache` verb: local cache maintenance.
//
//	swbench cache stats -dir P | -url U
//	swbench cache prune -dir P -max-bytes N
func cacheCmd(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("cache needs a subcommand: stats, prune")
	}
	switch args[0] {
	case "stats":
		fs := flag.NewFlagSet("cache stats", flag.ExitOnError)
		dir := fs.String("dir", "", "result cache directory")
		url := fs.String("url", "", "cache server URL (query /stats instead of a local dir)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		switch {
		case *url != "":
			st, err := swbench.NewFabricCacheClient(*url).Stats()
			if err != nil {
				return err
			}
			fmt.Printf("cache %s: %d entries, %.2f MB\n", *url, st.Entries, float64(st.Bytes)/1e6)
			fmt.Printf("  gets %d (hits %d), puts %d (stores %d, deduped %d)\n",
				st.Gets, st.Hits, st.Puts, st.Stores, st.Deduped)
		case *dir != "":
			cache, err := swbench.OpenResultCache(*dir)
			if err != nil {
				return err
			}
			entries, bytes := cache.Stats()
			fmt.Printf("cache %s: %d entries, %.2f MB\n", *dir, entries, float64(bytes)/1e6)
		default:
			return fmt.Errorf("cache stats needs -dir or -url")
		}
	case "prune":
		fs := flag.NewFlagSet("cache prune", flag.ExitOnError)
		dir := fs.String("dir", "", "result cache directory; required")
		maxBytes := fs.Int64("max-bytes", 0, "evict oldest-accessed entries until the cache is at or below this size")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *dir == "" {
			return fmt.Errorf("cache prune needs -dir <cache directory>")
		}
		cache, err := swbench.OpenResultCache(*dir)
		if err != nil {
			return err
		}
		st, err := cache.Prune(*maxBytes)
		if err != nil {
			return err
		}
		fmt.Printf("pruned %s: %d/%d entries removed, %.2f MB -> %.2f MB\n",
			*dir, st.Removed, st.Scanned, float64(st.BytesBefore)/1e6, float64(st.BytesAfter)/1e6)
	default:
		return fmt.Errorf("unknown cache subcommand %q (want stats, prune)", args[0])
	}
	return nil
}
