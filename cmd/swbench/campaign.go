package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	swbench "repro"
)

// newRunner builds the orchestrator the figure/table/all verbs route
// their experiment grids through. workers<=0 uses every core; 1 is the
// serial path.
func newRunner(workers int, cacheDir string, progress bool) (swbench.Runner, error) {
	opts := swbench.CampaignOptions{Workers: workers}
	if cacheDir != "" {
		cache, err := swbench.OpenResultCache(cacheDir)
		if err != nil {
			return nil, err
		}
		opts.Cache = cache
	}
	if progress {
		opts.Events = progressPrinter(os.Stderr)
	}
	return swbench.NewOrchestrator(context.Background(), opts), nil
}

// campaignCmd is the `swbench campaign` verb: run a named experiment
// campaign on the worker pool, stream progress, log JSONL artifacts, and
// exit non-zero if any cell failed.
func campaignCmd(args []string) error {
	if len(args) >= 1 && args[0] == "list" {
		for _, name := range swbench.BuiltinCampaignNames() {
			c, err := swbench.BuiltinCampaign(name, swbench.Quick)
			if err != nil {
				return err
			}
			fmt.Printf("  %-12s %3d cells\n", name, len(c.Specs))
		}
		return nil
	}
	if len(args) < 1 {
		return fmt.Errorf("campaign needs a name (try: swbench campaign list)")
	}
	name := args[0]

	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	quick := fs.Bool("quick", false, "short simulation windows")
	workers := fs.Int("workers", 0, "worker pool size (0 = all cores, 1 = serial)")
	simWorkers := fs.Int("sim-workers", 0, "goroutines per simulation (conservative parallel DES; 0/1 = sequential)")
	timeout := fs.Duration("timeout", 0, "per-cell wall-clock timeout (0 = unlimited)")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory")
	artifacts := fs.String("artifacts", "", "write a JSONL artifact log to this path")
	resume := fs.Bool("resume", false, "append to an existing artifact log instead of truncating (pair with -cache-dir to skip measured cells)")
	benchOut := fs.String("bench-out", "", "run serial+parallel+cached passes and write a benchmark summary JSON to this path")
	quiet := fs.Bool("quiet", false, "suppress the live progress stream")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	defer func() {
		if err := prof.stop(); err != nil {
			fmt.Fprintln(os.Stderr, "swbench: profile:", err)
		}
	}()

	o := suiteOpts(*quick, *simWorkers)
	c, err := swbench.BuiltinCampaign(name, o)
	if err != nil {
		return err
	}
	if *benchOut != "" {
		return benchCampaign(c, *quick, *workers, *cacheDir, *benchOut, !*quiet)
	}

	copts := swbench.CampaignOptions{Workers: *workers, Timeout: *timeout}
	if *cacheDir != "" {
		cache, err := swbench.OpenResultCache(*cacheDir)
		if err != nil {
			return err
		}
		copts.Cache = cache
	}
	if !*quiet {
		copts.Events = progressPrinter(os.Stderr)
	}
	rep, err := swbench.NewOrchestrator(context.Background(), copts).Run(c)
	if err != nil {
		return err
	}
	if *artifacts != "" {
		if err := writeArtifacts(*artifacts, rep, *resume); err != nil {
			return err
		}
	}
	fmt.Printf("campaign %s: %d cells in %.2fs (%d cached, %d failed)\n",
		rep.Name, len(rep.Outcomes), rep.Wall.Seconds(), rep.CacheHits, rep.Failed)
	for _, out := range rep.Outcomes {
		if out.Panicked {
			fmt.Fprintf(os.Stderr, "--- cell %s panicked ---\n%v\n%s\n", out.Spec.ID, out.Err, out.Stack)
		}
	}
	return rep.Err()
}

func writeArtifacts(path string, rep *swbench.CampaignReport, appendLog bool) error {
	flags := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	if appendLog {
		flags = os.O_CREATE | os.O_WRONLY | os.O_APPEND
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return err
	}
	if err := swbench.WriteCampaignArtifacts(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchSummary is the BENCH_campaign.json schema: the perf trajectory
// record future changes compare against.
type benchSummary struct {
	Campaign        string  `json:"campaign"`
	Quick           bool    `json:"quick"`
	Cells           int     `json:"cells"`
	Workers         int     `json:"workers"`
	CPUs            int     `json:"cpus"`
	GOOS            string  `json:"goos"`
	GOARCH          string  `json:"goarch"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	CachedSeconds   float64 `json:"cached_seconds"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	Failed          int     `json:"failed"`
}

// benchCampaign measures the orchestrator itself: the campaign once at
// Workers=1 without a cache, once at the requested width filling a fresh
// cache, and once more against the warm cache.
func benchCampaign(c swbench.ExperimentCampaign, quick bool, workers int, cacheDir, outPath string, progress bool) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cacheDir == "" {
		dir, err := os.MkdirTemp("", "swbench-campaign-cache-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cacheDir = dir
	}
	cache, err := swbench.OpenResultCache(cacheDir)
	if err != nil {
		return err
	}
	var events func(swbench.CampaignEvent)
	if progress {
		events = progressPrinter(os.Stderr)
	}
	run := func(label string, opts swbench.CampaignOptions) (*swbench.CampaignReport, error) {
		opts.Events = events
		fmt.Fprintf(os.Stderr, "== %s pass (%d workers) ==\n", label, max(opts.Workers, 1))
		rep, err := swbench.NewOrchestrator(context.Background(), opts).Run(c)
		if err != nil {
			return nil, err
		}
		return rep, nil
	}

	serial, err := run("serial", swbench.CampaignOptions{Workers: 1})
	if err != nil {
		return err
	}
	parallel, err := run("parallel", swbench.CampaignOptions{Workers: workers, Cache: cache})
	if err != nil {
		return err
	}
	cached, err := run("cached", swbench.CampaignOptions{Workers: workers, Cache: cache})
	if err != nil {
		return err
	}

	sum := benchSummary{
		Campaign:        c.Name,
		Quick:           quick,
		Cells:           len(c.Specs),
		Workers:         workers,
		CPUs:            runtime.NumCPU(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		SerialSeconds:   roundMs(serial.Wall),
		ParallelSeconds: roundMs(parallel.Wall),
		CachedSeconds:   roundMs(cached.Wall),
		Failed:          serial.Failed + parallel.Failed + cached.Failed,
	}
	if parallel.Wall > 0 {
		sum.Speedup = float64(serial.Wall) / float64(parallel.Wall)
	}
	if n := len(cached.Outcomes); n > 0 {
		sum.CacheHitRate = float64(cached.CacheHits) / float64(n)
	}
	blob, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("campaign %s: %d cells  serial %.2fs  parallel(%d) %.2fs  speedup %.2fx  cached %.2fs (hit rate %.0f%%)\n",
		c.Name, sum.Cells, sum.SerialSeconds, workers, sum.ParallelSeconds, sum.Speedup,
		sum.CachedSeconds, 100*sum.CacheHitRate)
	return nil
}

func roundMs(d time.Duration) float64 { return float64(d.Milliseconds()) / 1e3 }
