package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	swbench "repro"
)

// newRunner builds the runner the figure/table/all verbs route their
// experiment grids through: the in-process orchestrator by default, or —
// when fabricAddr is set — a fleet coordinator that shards cells to
// joined workers. The returned close function drains the fabric (no-op
// for the local path). workers<=0 uses every core; 1 is the serial path.
func newRunner(workers int, cacheDir string, progress bool, fabricAddr, cacheURL string) (swbench.Runner, func(), error) {
	var events func(swbench.CampaignEvent)
	if progress {
		events = progressPrinter(os.Stderr)
	}
	store, _, err := buildStore(cacheDir, cacheURL)
	if err != nil {
		return nil, nil, err
	}
	if fabricAddr != "" {
		return startFabric(fabricAddr, store, nil, 0, events)
	}
	opts := swbench.CampaignOptions{Workers: workers, Cache: store, Events: events}
	return swbench.NewOrchestrator(context.Background(), opts), func() {}, nil
}

// campaignCmd is the `swbench campaign` verb: run a named experiment
// campaign on the worker pool, stream progress, log JSONL artifacts, and
// exit non-zero if any cell failed.
func campaignCmd(args []string) error {
	if len(args) >= 1 && args[0] == "list" {
		for _, name := range swbench.BuiltinCampaignNames() {
			c, err := swbench.BuiltinCampaign(name, swbench.Quick)
			if err != nil {
				return err
			}
			fmt.Printf("  %-12s %3d cells\n", name, len(c.Specs))
		}
		return nil
	}
	if len(args) < 1 {
		return fmt.Errorf("campaign needs a name (try: swbench campaign list)")
	}
	name := args[0]

	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	quick := fs.Bool("quick", false, "short simulation windows")
	workers := fs.Int("workers", 0, "worker pool size (0 = all cores, 1 = serial)")
	simWorkers := fs.Int("sim-workers", 0, "goroutines per simulation (conservative parallel DES; 0/1 = sequential)")
	timeout := fs.Duration("timeout", 0, "per-cell wall-clock timeout (0 = unlimited)")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory")
	cacheURL := fs.String("cache", "", "shared cache server URL (fleet-wide result dedup)")
	fabricAddr := fs.String("fabric", "", "run cells on a worker fleet: coordinator listen address (host:port)")
	manifestPath := fs.String("manifest", "", "resumable campaign manifest (JSONL); recorded cells replay instead of re-running")
	artifacts := fs.String("artifacts", "", "write a JSONL artifact log to this path")
	resume := fs.Bool("resume", false, "append to an existing artifact log instead of truncating (pair with -cache-dir to skip measured cells)")
	benchOut := fs.String("bench-out", "", "run serial+parallel+cached passes and write a benchmark summary JSON to this path")
	quiet := fs.Bool("quiet", false, "suppress the live progress stream")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	defer func() {
		if err := prof.stop(); err != nil {
			fmt.Fprintln(os.Stderr, "swbench: profile:", err)
		}
	}()

	o := suiteOpts(*quick, *simWorkers)
	c, err := swbench.BuiltinCampaign(name, o)
	if err != nil {
		return err
	}
	if *benchOut != "" {
		return benchCampaign(c, *quick, *workers, *cacheDir, *benchOut, !*quiet)
	}

	store, localCache, err := buildStore(*cacheDir, *cacheURL)
	if err != nil {
		return err
	}
	var manifest *swbench.CampaignManifest
	if *manifestPath != "" {
		if manifest, err = swbench.OpenCampaignManifest(*manifestPath); err != nil {
			return err
		}
		defer manifest.Close()
		if n := manifest.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "manifest %s: %d cells already done\n", *manifestPath, n)
		}
	}
	var events func(swbench.CampaignEvent)
	if !*quiet {
		events = progressPrinter(os.Stderr)
	}

	var rep *swbench.CampaignReport
	if *fabricAddr != "" {
		r, closeFabric, err := startFabric(*fabricAddr, store, manifest, *timeout, events)
		if err != nil {
			return err
		}
		rep, err = r.(*swbench.FabricRunner).RunCampaign(c)
		closeFabric()
		if err != nil {
			return err
		}
	} else {
		copts := swbench.CampaignOptions{
			Workers: *workers, Timeout: *timeout,
			Cache: store, Manifest: manifest, Events: events,
		}
		if rep, err = swbench.NewOrchestrator(context.Background(), copts).Run(c); err != nil {
			return err
		}
	}
	if *artifacts != "" {
		if err := writeArtifacts(*artifacts, rep, *resume); err != nil {
			return err
		}
	}
	fmt.Printf("campaign %s: %d cells in %.2fs (%d cached, %d failed)\n",
		rep.Name, len(rep.Outcomes), rep.Wall.Seconds(), rep.CacheHits, rep.Failed)
	printCacheLine(localCache, *cacheDir, *cacheURL)
	printWorkerCounts(rep)
	for _, out := range rep.Outcomes {
		if out.Panicked {
			fmt.Fprintf(os.Stderr, "--- cell %s panicked ---\n%v\n%s\n", out.Spec.ID, out.Err, out.Stack)
		}
	}
	return rep.Err()
}

// printCacheLine reports the result cache's size after the campaign: the
// local tier's entry count and bytes, plus the shared server's when one
// is configured.
func printCacheLine(localCache *swbench.ResultCache, cacheDir, cacheURL string) {
	if localCache != nil {
		entries, bytes := localCache.Stats()
		fmt.Printf("cache %s: %d entries, %.2f MB\n", cacheDir, entries, float64(bytes)/1e6)
	}
	if cacheURL != "" {
		if st, err := swbench.NewFabricCacheClient(cacheURL).Stats(); err == nil {
			fmt.Printf("cache %s: %d entries, %.2f MB (hits %d/%d gets, %d deduped puts)\n",
				cacheURL, st.Entries, float64(st.Bytes)/1e6, st.Hits, st.Gets, st.Deduped)
		}
	}
}

// printWorkerCounts reports cells per executor identity, sorted by name —
// the straggler view of a fabric run.
func printWorkerCounts(rep *swbench.CampaignReport) {
	counts := rep.WorkerCounts()
	if len(counts) == 0 {
		return
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	line := "cells by executor:"
	for _, name := range names {
		line += fmt.Sprintf(" %s=%d", name, counts[name])
	}
	fmt.Println(line)
}

func writeArtifacts(path string, rep *swbench.CampaignReport, appendLog bool) error {
	flags := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	if appendLog {
		flags = os.O_CREATE | os.O_WRONLY | os.O_APPEND
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return err
	}
	if err := swbench.WriteCampaignArtifacts(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchSummary is the BENCH_campaign.json schema: the perf trajectory
// record future changes compare against.
type benchSummary struct {
	Campaign        string  `json:"campaign"`
	Quick           bool    `json:"quick"`
	Cells           int     `json:"cells"`
	Workers         int     `json:"workers"`
	CPUs            int     `json:"cpus"`
	GOOS            string  `json:"goos"`
	GOARCH          string  `json:"goarch"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	CachedSeconds   float64 `json:"cached_seconds"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	Failed          int     `json:"failed"`

	// Fabric passes: the same campaign sharded over loopback HTTP workers
	// with a shared cache server — cold (empty cache) and warm (every cell
	// answered by the shared tier).
	FabricWorkers      int     `json:"fabric_workers"`
	FabricSeconds      float64 `json:"fabric_seconds"`
	FabricSpeedup      float64 `json:"fabric_speedup_2workers"`
	FabricWarmSeconds  float64 `json:"fabric_warm_seconds"`
	FabricCacheHitRate float64 `json:"fabric_cache_hit_rate"`
}

// benchCampaign measures the orchestrator itself: the campaign once at
// Workers=1 without a cache, once at the requested width filling a fresh
// cache, and once more against the warm cache.
func benchCampaign(c swbench.ExperimentCampaign, quick bool, workers int, cacheDir, outPath string, progress bool) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cacheDir == "" {
		dir, err := os.MkdirTemp("", "swbench-campaign-cache-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cacheDir = dir
	}
	cache, err := swbench.OpenResultCache(cacheDir)
	if err != nil {
		return err
	}
	var events func(swbench.CampaignEvent)
	if progress {
		events = progressPrinter(os.Stderr)
	}
	run := func(label string, opts swbench.CampaignOptions) (*swbench.CampaignReport, error) {
		opts.Events = events
		fmt.Fprintf(os.Stderr, "== %s pass (%d workers) ==\n", label, max(opts.Workers, 1))
		rep, err := swbench.NewOrchestrator(context.Background(), opts).Run(c)
		if err != nil {
			return nil, err
		}
		return rep, nil
	}

	serial, err := run("serial", swbench.CampaignOptions{Workers: 1})
	if err != nil {
		return err
	}
	parallel, err := run("parallel", swbench.CampaignOptions{Workers: workers, Cache: cache})
	if err != nil {
		return err
	}
	cached, err := run("cached", swbench.CampaignOptions{Workers: workers, Cache: cache})
	if err != nil {
		return err
	}

	const fabricWorkers = 2
	fabricCold, fabricWarm, err := benchFabric(c, fabricWorkers, events)
	if err != nil {
		return err
	}

	sum := benchSummary{
		Campaign:        c.Name,
		Quick:           quick,
		Cells:           len(c.Specs),
		Workers:         workers,
		CPUs:            runtime.NumCPU(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		SerialSeconds:   roundMs(serial.Wall),
		ParallelSeconds: roundMs(parallel.Wall),
		CachedSeconds:   roundMs(cached.Wall),
		Failed:          serial.Failed + parallel.Failed + cached.Failed + fabricCold.Failed + fabricWarm.Failed,

		FabricWorkers:     fabricWorkers,
		FabricSeconds:     roundMs(fabricCold.Wall),
		FabricWarmSeconds: roundMs(fabricWarm.Wall),
	}
	if parallel.Wall > 0 {
		sum.Speedup = float64(serial.Wall) / float64(parallel.Wall)
	}
	if n := len(cached.Outcomes); n > 0 {
		sum.CacheHitRate = float64(cached.CacheHits) / float64(n)
	}
	if fabricCold.Wall > 0 {
		sum.FabricSpeedup = float64(serial.Wall) / float64(fabricCold.Wall)
	}
	if n := len(fabricWarm.Outcomes); n > 0 {
		sum.FabricCacheHitRate = float64(fabricWarm.CacheHits) / float64(n)
	}
	blob, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("campaign %s: %d cells  serial %.2fs  parallel(%d) %.2fs  speedup %.2fx  cached %.2fs (hit rate %.0f%%)\n",
		c.Name, sum.Cells, sum.SerialSeconds, workers, sum.ParallelSeconds, sum.Speedup,
		sum.CachedSeconds, 100*sum.CacheHitRate)
	fmt.Printf("fabric(%d workers): cold %.2fs  speedup %.2fx  warm %.2fs (shared-cache hit rate %.0f%%)\n",
		fabricWorkers, sum.FabricSeconds, sum.FabricSpeedup, sum.FabricWarmSeconds, 100*sum.FabricCacheHitRate)
	return nil
}

// benchFabric runs the campaign on an in-process fleet: a coordinator and
// a cache server on loopback HTTP, n worker goroutines sharing the cache.
// The cold pass measures fleet execution from an empty cache; the warm
// pass re-submits the same campaign so every cell is answered by the
// shared tier (workers report cache hits without re-running).
func benchFabric(c swbench.ExperimentCampaign, n int, events func(swbench.CampaignEvent)) (cold, warm *swbench.CampaignReport, err error) {
	dir, err := os.MkdirTemp("", "swbench-fabric-cache-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	cache, err := swbench.OpenResultCache(dir)
	if err != nil {
		return nil, nil, err
	}
	cacheLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	cacheSrv := &http.Server{Handler: swbench.NewFabricCacheServer(cache)}
	go cacheSrv.Serve(cacheLn)
	defer cacheSrv.Close()

	co := swbench.NewFabricCoordinator(swbench.FabricCoordinatorOptions{})
	defer co.Close()
	coLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	coSrv := &http.Server{Handler: co}
	go coSrv.Serve(coLn)
	defer coSrv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < n; i++ {
		go swbench.RunFabricWorker(ctx, swbench.FabricWorkerOptions{
			ID:          fmt.Sprintf("w%d", i+1),
			Coordinator: coLn.Addr().String(),
			Cache:       swbench.NewFabricCacheClient(cacheLn.Addr().String()),
			Poll:        10 * time.Millisecond,
		})
	}

	// No requester-side cache: the warm pass's hits must come through the
	// workers' shared tier, measuring the fleet cache path itself.
	r := swbench.NewFabricRunner(ctx, co, swbench.FabricRunnerOptions{Events: events})
	fmt.Fprintf(os.Stderr, "== fabric cold pass (%d workers) ==\n", n)
	if cold, err = r.RunCampaign(c); err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "== fabric warm pass (%d workers) ==\n", n)
	if warm, err = r.RunCampaign(c); err != nil {
		return nil, nil, err
	}
	return cold, warm, nil
}

func roundMs(d time.Duration) float64 { return float64(d.Milliseconds()) / 1e3 }
