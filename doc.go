// Package swbench is a benchmarking testbed for NFV software switches: a
// Go reproduction of "Comparing the Performance of State-of-the-Art
// Software Switches for NFV" (Zhang, Linguaglossa, Gallo, Giaccone,
// Iannone, Roberts — ACM CoNEXT 2019).
//
// The package implements the paper's methodology — four test scenarios
// (p2p, p2v, v2v, loopback service chains) and two metrics (throughput,
// and RTT latency at 0.10/0.50/0.99 of the maximal forwarding rate R⁺) —
// over a deterministic discrete-event simulation of the paper's testbed:
// 10 GbE NICs with descriptor rings and PTP timestamping, a single
// isolated SUT core with cycle-level cost accounting, vhost-user and ptnet
// virtual interfaces, QEMU guests running DPDK l2fwd VNFs, and
// MoonGen-style traffic generation. Seven switch data planes are
// implemented for real (OvS-DPDK with EMC/megaflow caches, VPP's vector
// graph, FastClick's element language, BESS modules, Snabb's app engine,
// the VALE learning bridge, and a t4p4s P4 pipeline); only time is
// simulated.
//
// Quick start:
//
//	res, err := swbench.Run(swbench.Config{
//		Switch:   "vpp",
//		Scenario: swbench.P2P,
//		FrameLen: 64,
//	})
//	if err != nil { ... }
//	fmt.Printf("%.2f Gbps\n", res.Gbps)
//
// Every figure and table of the paper's evaluation can be regenerated via
// Figure1, Figure4a/4b/4c, Figure5, Figure6, Table3, and Table4, or from
// the command line with cmd/swbench. The *On variants (Figure4aOn,
// Table3On, ...) take a Runner, so whole experiment grids can fan out
// over a worker pool: NewOrchestrator builds one with bounded
// parallelism, a content-addressed result cache (OpenResultCache),
// per-cell panic isolation and timeouts, and a progress event stream,
// while preserving bit-identical deterministic output. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for measured-vs-paper results.
package swbench
