package swbench

// One benchmark per table and figure of the paper's evaluation section.
// Each regenerates the corresponding experiment on the simulated testbed
// and reports the headline series as custom benchmark metrics, so
// `go test -bench .` reproduces the whole evaluation. The -short windows
// (Quick) are used so a full sweep stays tractable; EXPERIMENTS.md records
// a Full run.
//
// Additionally, BenchmarkDataPlane* measure the real execution speed of
// each switch's Go data plane (simulated-packets forwarded per wall-clock
// second), and BenchmarkSim* the discrete-event engine itself.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/switches/switchtest"
	"repro/internal/units"
)

func benchOpts(b *testing.B) RunOpts {
	b.Helper()
	if testing.Short() {
		return RunOpts{Duration: 2 * units.Millisecond, Warmup: units.Millisecond}
	}
	return Quick
}

// metricName flattens a point into a benchmark metric label.
func metricName(pt ThroughputPoint, withChain bool) string {
	dir := "uni"
	if pt.Bidir {
		dir = "bidir"
	}
	if withChain {
		return fmt.Sprintf("%s_%dB_n%d_Gbps", pt.Switch, pt.FrameLen, pt.Chain)
	}
	return fmt.Sprintf("%s_%dB_%s_Gbps", pt.Switch, pt.FrameLen, dir)
}

func benchFigure(b *testing.B, f func(RunOpts) (*Figure, error), withChain bool) {
	b.Helper()
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		fig, err := f(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, pt := range fig.Pts {
				if pt.Unsupported {
					continue
				}
				// Report the stressful 64B series as metrics.
				if pt.FrameLen == 64 {
					b.ReportMetric(pt.Gbps, metricName(pt, withChain))
				}
			}
		}
	}
}

// BenchmarkFigure1 regenerates the opening scatter (bidir p2p 64B
// throughput vs RTT at 0.95·R⁺).
func BenchmarkFigure1(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		pts, err := Figure1(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				b.ReportMetric(p.Gbps, p.Switch+"_Gbps")
				b.ReportMetric(p.MeanUs, p.Switch+"_rtt_us")
			}
		}
	}
}

// BenchmarkFigure4a regenerates p2p throughput (uni+bidir × sizes).
func BenchmarkFigure4a(b *testing.B) { benchFigure(b, Figure4a, false) }

// BenchmarkFigure4b regenerates p2v throughput.
func BenchmarkFigure4b(b *testing.B) { benchFigure(b, Figure4b, false) }

// BenchmarkFigure4c regenerates v2v throughput.
func BenchmarkFigure4c(b *testing.B) { benchFigure(b, Figure4c, false) }

// BenchmarkFigure5 regenerates unidirectional loopback chains (1–5 VNFs).
func BenchmarkFigure5(b *testing.B) { benchFigure(b, Figure5, true) }

// BenchmarkFigure6 regenerates bidirectional loopback chains.
func BenchmarkFigure6(b *testing.B) { benchFigure(b, Figure6, true) }

// BenchmarkTable3 regenerates the RTT table (p2p + 1–4 VNF loopback at
// 0.10/0.50/0.99·R⁺). The 0.50·R⁺ column is reported as metrics.
func BenchmarkTable3(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		cells, err := Table3(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				if c.Unsupported {
					continue
				}
				label := strings.ReplaceAll(c.Scenario, " ", "_")
				b.ReportMetric(c.MeanUs[1], c.Switch+"_"+label+"_us")
			}
		}
	}
}

// BenchmarkTable4 regenerates the v2v latency table (1 Mpps, software
// timestamps).
func BenchmarkTable4(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows, err := Table4(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.MeanUs, r.Switch+"_us")
			}
		}
	}
}

// BenchmarkDataPlane measures the wall-clock speed of each switch's Go
// data plane: one 64B frame through a cross-connect per iteration (fake
// ports, no simulation engine).
func BenchmarkDataPlane(b *testing.B) {
	for _, name := range Switches() {
		b.Run(name, func(b *testing.B) {
			env := switchtest.Env()
			sw, err := switchdef.New(name, env)
			if err != nil {
				b.Fatal(err)
			}
			in := switchtest.NewFakePort("in")
			out := switchtest.NewFakePort("out")
			sw.AddPort(in)
			sw.AddPort(out)
			if err := sw.CrossConnect(0, 1); err != nil {
				b.Fatal(err)
			}
			m := switchtest.Meter(env)
			src := switchdef.PortMAC(0)
			dst := switchdef.PortMAC(1)
			proto := switchtest.Frame(env.Pool, src, dst, 64)
			now := units.Time(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := env.Pool.Clone(proto)
				in.In = append(in.In, f)
				for sw.Poll(now, m) {
					now += m.Drain() + 100*units.Microsecond
				}
				now += m.Drain() + 100*units.Microsecond
				for _, buf := range out.Out {
					buf.Free()
				}
				out.Out = out.Out[:0]
			}
		})
	}
}

// BenchmarkRun measures a full p2p measurement run end to end (scheduler,
// NICs, generator, SUT) per simulated millisecond.
func BenchmarkRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{
			Switch:   "vpp",
			Scenario: P2P,
			Duration: units.Millisecond,
			Warmup:   units.Millisecond / 2,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPlusEstimation measures the §5.3 R⁺ estimation procedure.
func BenchmarkRPlusEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := EstimateRPlus(Config{
			Switch: "ovs", Scenario: P2P,
			Duration: units.Millisecond, Warmup: units.Millisecond / 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChainScaling sweeps loopback chain lengths for one switch,
// reporting Gbps per length (an ablation of the per-hop vhost tax).
func BenchmarkChainScaling(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		for chain := 1; chain <= 5; chain++ {
			res, err := core.Run(Config{
				Switch: "vpp", Scenario: Loopback, Chain: chain,
				Duration: o.Duration, Warmup: o.Warmup,
			})
			if err != nil && !errors.Is(err, ErrChainTooLong) {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.Gbps, fmt.Sprintf("n%d_Gbps", chain))
			}
		}
	}
}

// BenchmarkHeaderCodec measures the from-scratch header parse/serialize
// path (the per-packet work every match/action switch performs).
func BenchmarkHeaderCodec(b *testing.B) {
	pool := pkt.NewPool(2048)
	f := pool.Get(64)
	pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, FrameLen: 64,
	}.Build(f)
	data := f.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eth, err := pkt.ParseEth(data)
		if err != nil {
			b.Fatal(err)
		}
		ip, err := pkt.ParseIPv4(data[pkt.EthHdrLen:])
		if err != nil {
			b.Fatal(err)
		}
		_ = eth
		_ = ip
	}
}
