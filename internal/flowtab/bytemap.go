package flowtab

import "bytes"

// ByteMap is a growable open-addressed map keyed by byte strings. Keys are
// copied into a shared arena on first insert, so lookups with a reused
// scratch key allocate nothing — this replaces t4p4s's
// map[string]Entry, whose per-lookup []byte→string conversion allocated on
// every frame. No deletion (t4p4s programs replace tables wholesale).
type ByteMap[V any] struct {
	hashes []uint64
	offs   []uint32
	lens   []uint32
	vals   []V
	live   []bool
	arena  []byte
	mask   uint64
	n      int
}

// NewByteMap returns a map pre-sized for hint entries.
func NewByteMap[V any](hint int) *ByteMap[V] {
	size := 16
	for size < hint*2 {
		size <<= 1
	}
	m := &ByteMap[V]{}
	m.alloc(size)
	return m
}

func (m *ByteMap[V]) alloc(size int) {
	m.hashes = make([]uint64, size)
	m.offs = make([]uint32, size)
	m.lens = make([]uint32, size)
	m.vals = make([]V, size)
	m.live = make([]bool, size)
	m.mask = uint64(size - 1)
	m.n = 0
}

func (m *ByteMap[V]) keyAt(i uint64) []byte {
	return m.arena[m.offs[i] : m.offs[i]+m.lens[i]]
}

// Get returns the value stored for key, if any. key may be a reused
// scratch buffer; it is not retained.
func (m *ByteMap[V]) Get(key []byte) (V, bool) {
	h := HashBytes(key)
	i := h & m.mask
	for m.live[i] {
		if m.hashes[i] == h && bytes.Equal(m.keyAt(i), key) {
			return m.vals[i], true
		}
		i = (i + 1) & m.mask
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for key, copying the key into the
// arena on first insert.
func (m *ByteMap[V]) Put(key []byte, v V) {
	if (m.n+1)*2 > len(m.live) {
		m.grow()
	}
	h := HashBytes(key)
	i := h & m.mask
	for m.live[i] {
		if m.hashes[i] == h && bytes.Equal(m.keyAt(i), key) {
			m.vals[i] = v
			return
		}
		i = (i + 1) & m.mask
	}
	m.live[i] = true
	m.hashes[i] = h
	m.offs[i] = uint32(len(m.arena))
	m.lens[i] = uint32(len(key))
	m.arena = append(m.arena, key...)
	m.vals[i] = v
	m.n++
}

func (m *ByteMap[V]) grow() {
	oh, oo, ol, ov, olive := m.hashes, m.offs, m.lens, m.vals, m.live
	arena := m.arena
	m.alloc(len(olive) * 2)
	m.arena = arena
	for i, l := range olive {
		if !l {
			continue
		}
		j := oh[i] & m.mask
		for m.live[j] {
			j = (j + 1) & m.mask
		}
		m.live[j] = true
		m.hashes[j] = oh[i]
		m.offs[j] = oo[i]
		m.lens[j] = ol[i]
		m.vals[j] = ov[i]
		m.n++
	}
}

// Len returns the number of live entries.
func (m *ByteMap[V]) Len() int { return m.n }
