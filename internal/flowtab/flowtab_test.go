package flowtab

import (
	"fmt"
	"testing"
)

func TestMapBasic(t *testing.T) {
	m := NewMap[uint64, int](4)
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		m.Put(HashUint64(i), i, int(i)*3)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := m.Get(HashUint64(i), i)
		if !ok || v != int(i)*3 {
			t.Fatalf("Get(%d) = %d, %v; want %d, true", i, v, ok, int(i)*3)
		}
	}
	if _, ok := m.Get(HashUint64(n+1), n+1); ok {
		t.Fatal("Get of absent key succeeded")
	}
	// Updates replace in place.
	m.Put(HashUint64(7), 7, -1)
	if v, _ := m.Get(HashUint64(7), 7); v != -1 {
		t.Fatalf("after update Get(7) = %d, want -1", v)
	}
	if m.Len() != n {
		t.Fatalf("Len after update = %d, want %d", m.Len(), n)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	if _, ok := m.Get(HashUint64(3), 3); ok {
		t.Fatal("Get succeeded after Reset")
	}
}

// TestMapCollidingHashes forces every key onto one probe chain: linear
// probing must still distinguish keys by equality.
func TestMapCollidingHashes(t *testing.T) {
	m := NewMap[uint64, int](4)
	for i := uint64(0); i < 50; i++ {
		m.Put(42, i, int(i))
	}
	for i := uint64(0); i < 50; i++ {
		v, ok := m.Get(42, i)
		if !ok || v != int(i) {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
}

func TestCacheBasic(t *testing.T) {
	c := NewCache[uint64, int](64)
	if c.Capacity() != 64 {
		t.Fatalf("Capacity = %d, want 64", c.Capacity())
	}
	// Hash i spreads keys exactly 8 per bucket: the cache fills to
	// capacity with no conflict eviction.
	for i := uint64(0); i < 64; i++ {
		if c.Put(i, i, int(i)) {
			t.Fatalf("unexpected eviction inserting key %d", i)
		}
	}
	for i := uint64(0); i < 64; i++ {
		if v, ok := c.Get(i, i); !ok || v != int(i) {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
	c.Put(3, 3, 99)
	if v, _ := c.Get(3, 3); v != 99 {
		t.Fatalf("update did not replace: got %d", v)
	}
	if c.Len() != 64 {
		t.Fatalf("Len = %d, want 64", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
}

// TestCacheClockHandEviction pins the deterministic eviction order: keys
// sharing one bucket evict in insertion (clock) order, round-robin.
func TestCacheClockHandEviction(t *testing.T) {
	c := NewCache[uint64, int](8) // one bucket of 8 ways
	for i := uint64(0); i < 8; i++ {
		if c.Put(0, i, int(i)) {
			t.Fatalf("eviction while filling, key %d", i)
		}
	}
	// Ninth insert must evict way 0 (hand starts at 0), tenth way 1, ...
	for i := uint64(8); i < 12; i++ {
		if !c.Put(0, i, int(i)) {
			t.Fatalf("insert %d did not evict", i)
		}
		if _, ok := c.Get(0, i-8); ok {
			t.Fatalf("key %d survived its clock-hand eviction", i-8)
		}
		if _, ok := c.Get(0, i); !ok {
			t.Fatalf("key %d missing after insert", i)
		}
	}
	// Two identically-built caches agree on every surviving key.
	a, b := NewCache[uint64, int](8), NewCache[uint64, int](8)
	for i := uint64(0); i < 100; i++ {
		a.Put(0, i, int(i))
		b.Put(0, i, int(i))
	}
	for i := uint64(0); i < 100; i++ {
		_, okA := a.Get(0, i)
		_, okB := b.Get(0, i)
		if okA != okB {
			t.Fatalf("caches diverged on key %d: %v vs %v", i, okA, okB)
		}
	}
}

func TestByteMap(t *testing.T) {
	m := NewByteMap[int](2)
	scratch := make([]byte, 0, 32)
	key := func(i int) []byte {
		scratch = scratch[:0]
		return fmt.Appendf(scratch, "key-%d", i)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		m.Put(key(i), i)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := m.Get(key(i))
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
	if _, ok := m.Get([]byte("absent")); ok {
		t.Fatal("Get of absent key succeeded")
	}
	m.Put(key(5), -5)
	if v, _ := m.Get(key(5)); v != -5 {
		t.Fatalf("update did not replace: got %d", v)
	}
	if m.Len() != n {
		t.Fatalf("Len after update = %d, want %d", m.Len(), n)
	}
	// Lookups with a reused scratch key must not allocate.
	k := key(17)
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := m.Get(k); !ok {
			t.Fatal("lost key during alloc check")
		}
	})
	if allocs != 0 {
		t.Fatalf("Get allocates %.1f per op, want 0", allocs)
	}
}
