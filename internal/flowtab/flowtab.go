// Package flowtab provides the open-addressed hash tables backing the
// switch data planes' host hot paths: a growable linear-probe map (OvS
// megaflow cache, classification memos), a fixed-capacity set-associative
// cache with deterministic clock-hand eviction (OvS EMC), and a byte-keyed
// map with arena-stored keys (t4p4s exact-match tables).
//
// These replace Go maps on per-frame paths. The win is host-side only —
// no interface-boxed hash calls, no map-header indirection, power-of-two
// masking instead of modulo — and, for the cache, eviction that is a pure
// function of the insertion sequence. Simulated lookup cost is charged by
// the callers exactly as before; nothing here touches a cost.Meter.
package flowtab

// HashBytes is 64-bit FNV-1a over b.
func HashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// HashUint64 is a SplitMix64-style finalizer, used to spread dense keys
// (template IDs, port numbers) across the table.
func HashUint64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Map is a growable open-addressed hash map with linear probing. It has no
// deletion (callers reset wholesale — exactly how the switch caches are
// invalidated), so probe chains never contain tombstones. The caller
// supplies the key's hash to both Get and Put; supplying different hashes
// for equal keys is a caller bug.
type Map[K comparable, V any] struct {
	hashes []uint64
	keys   []K
	vals   []V
	live   []bool
	mask   uint64
	n      int
}

// NewMap returns a map pre-sized for hint entries.
func NewMap[K comparable, V any](hint int) *Map[K, V] {
	size := 16
	for size < hint*2 {
		size <<= 1
	}
	m := &Map[K, V]{}
	m.alloc(size)
	return m
}

func (m *Map[K, V]) alloc(size int) {
	m.hashes = make([]uint64, size)
	m.keys = make([]K, size)
	m.vals = make([]V, size)
	m.live = make([]bool, size)
	m.mask = uint64(size - 1)
	m.n = 0
}

// Get returns the value stored for k, if any.
func (m *Map[K, V]) Get(h uint64, k K) (V, bool) {
	i := h & m.mask
	for m.live[i] {
		if m.hashes[i] == h && m.keys[i] == k {
			return m.vals[i], true
		}
		i = (i + 1) & m.mask
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for k.
func (m *Map[K, V]) Put(h uint64, k K, v V) {
	if (m.n+1)*2 > len(m.keys) {
		m.grow()
	}
	i := h & m.mask
	for m.live[i] {
		if m.hashes[i] == h && m.keys[i] == k {
			m.vals[i] = v
			return
		}
		i = (i + 1) & m.mask
	}
	m.live[i] = true
	m.hashes[i] = h
	m.keys[i] = k
	m.vals[i] = v
	m.n++
}

func (m *Map[K, V]) grow() {
	oh, ok, ov, ol := m.hashes, m.keys, m.vals, m.live
	m.alloc(len(ok) * 2)
	for i, l := range ol {
		if !l {
			continue
		}
		j := oh[i] & m.mask
		for m.live[j] {
			j = (j + 1) & m.mask
		}
		m.live[j] = true
		m.hashes[j] = oh[i]
		m.keys[j] = ok[i]
		m.vals[j] = ov[i]
		m.n++
	}
}

// Len returns the number of live entries.
func (m *Map[K, V]) Len() int { return m.n }

// Reset drops every entry, keeping the allocated capacity.
func (m *Map[K, V]) Reset() {
	if m.n == 0 {
		return
	}
	clear(m.live)
	var zk K
	var zv V
	for i := range m.keys {
		m.keys[i] = zk
		m.vals[i] = zv
	}
	m.n = 0
}

// cacheWays is the set associativity of Cache. Eight ways over power-of-two
// bucket counts keeps conflict eviction negligible at the golden workloads'
// flow counts while bounding every probe to one cache-line-ish scan.
const cacheWays = 8

// Cache is a fixed-capacity set-associative hash cache with per-bucket
// clock-hand eviction. Unlike Map it never grows: inserting into a full
// bucket evicts the entry under the bucket's clock hand and advances the
// hand — a deterministic function of the insertion sequence, replacing the
// randomized map-iteration eviction the OvS EMC model used to have.
type Cache[K comparable, V any] struct {
	keys []K
	vals []V
	live []bool
	hand []uint8
	bmsk uint64 // buckets - 1
	n    int
}

// NewCache returns a cache with at least capacity slots (rounded up to a
// power-of-two bucket count times cacheWays).
func NewCache[K comparable, V any](capacity int) *Cache[K, V] {
	buckets := 1
	for buckets*cacheWays < capacity {
		buckets <<= 1
	}
	return &Cache[K, V]{
		keys: make([]K, buckets*cacheWays),
		vals: make([]V, buckets*cacheWays),
		live: make([]bool, buckets*cacheWays),
		hand: make([]uint8, buckets),
		bmsk: uint64(buckets - 1),
	}
}

// Get returns the value stored for k, if any.
func (c *Cache[K, V]) Get(h uint64, k K) (V, bool) {
	base := int(h&c.bmsk) * cacheWays
	for i := base; i < base+cacheWays; i++ {
		if c.live[i] && c.keys[i] == k {
			return c.vals[i], true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for k. It reports whether a live entry
// was evicted to make room.
func (c *Cache[K, V]) Put(h uint64, k K, v V) bool {
	b := int(h & c.bmsk)
	base := b * cacheWays
	free := -1
	for i := base; i < base+cacheWays; i++ {
		if !c.live[i] {
			if free < 0 {
				free = i
			}
			continue
		}
		if c.keys[i] == k {
			c.vals[i] = v
			return false
		}
	}
	if free >= 0 {
		c.live[free] = true
		c.keys[free] = k
		c.vals[free] = v
		c.n++
		return false
	}
	victim := base + int(c.hand[b])
	c.hand[b] = (c.hand[b] + 1) % cacheWays
	c.keys[victim] = k
	c.vals[victim] = v
	return true
}

// Len returns the number of live entries.
func (c *Cache[K, V]) Len() int { return c.n }

// Capacity returns the total slot count.
func (c *Cache[K, V]) Capacity() int { return len(c.keys) }

// Reset drops every entry and rewinds the clock hands, keeping the
// allocated capacity.
func (c *Cache[K, V]) Reset() {
	if c.n == 0 {
		return
	}
	clear(c.live)
	clear(c.hand)
	var zk K
	var zv V
	for i := range c.keys {
		c.keys[i] = zk
		c.vals[i] = zv
	}
	c.n = 0
}
