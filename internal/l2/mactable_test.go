package l2

import (
	"testing"
	"testing/quick"

	"repro/internal/pkt"
	"repro/internal/units"
)

func mac(i byte) pkt.MAC { return pkt.MAC{2, 0, 0, 0, 0, i} }

func TestLearnLookup(t *testing.T) {
	tb := NewMACTable(16, 0)
	tb.Learn(mac(1), 3, 0)
	port, ok := tb.Lookup(mac(1), units.Second)
	if !ok || port != 3 {
		t.Fatalf("lookup = %d, %v", port, ok)
	}
	if _, ok := tb.Lookup(mac(2), 0); ok {
		t.Fatal("unknown MAC found")
	}
	if tb.Hits != 1 || tb.Misses != 1 || tb.Learns != 1 {
		t.Fatalf("counters: %+v", tb)
	}
}

func TestStationMove(t *testing.T) {
	tb := NewMACTable(16, 0)
	tb.Learn(mac(1), 1, 0)
	tb.Learn(mac(1), 2, units.Microsecond) // station moved
	if port, _ := tb.Lookup(mac(1), units.Microsecond); port != 2 {
		t.Fatalf("port = %d after move", port)
	}
	if tb.Learns != 1 {
		t.Fatalf("re-learn counted as new: %d", tb.Learns)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestAging(t *testing.T) {
	ttl := 10 * units.Millisecond
	tb := NewMACTable(16, ttl)
	tb.Learn(mac(1), 1, 0)
	if _, ok := tb.Lookup(mac(1), 5*units.Millisecond); !ok {
		t.Fatal("fresh entry missed")
	}
	if _, ok := tb.Lookup(mac(1), 20*units.Millisecond); ok {
		t.Fatal("stale entry returned")
	}
	if tb.Len() != 0 {
		t.Fatal("stale entry not removed")
	}
}

func TestCapacityEviction(t *testing.T) {
	tb := NewMACTable(4, 0)
	for i := byte(0); i < 4; i++ {
		tb.Learn(mac(i), int(i), units.Time(i)*units.Microsecond)
	}
	// Table full; learning a 5th evicts the oldest (mac 0).
	tb.Learn(mac(10), 9, units.Second)
	if tb.Len() != 4 || tb.Evictions != 1 {
		t.Fatalf("len=%d evictions=%d", tb.Len(), tb.Evictions)
	}
	if _, ok := tb.Lookup(mac(0), units.Second); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if port, ok := tb.Lookup(mac(10), units.Second); !ok || port != 9 {
		t.Fatal("new entry missing")
	}
}

func TestMulticastNeverLearnedOrFound(t *testing.T) {
	tb := NewMACTable(4, 0)
	tb.Learn(pkt.Broadcast, 1, 0)
	if tb.Len() != 0 {
		t.Fatal("broadcast learned")
	}
	if _, ok := tb.Lookup(pkt.Broadcast, 0); ok {
		t.Fatal("broadcast lookup hit")
	}
}

// Property: after any sequence of learns, lookup returns the port of the
// most recent learn for that MAC (within capacity and no aging).
func TestPropertyMostRecentLearnWins(t *testing.T) {
	f := func(ops []struct {
		M    byte
		Port uint8
	}) bool {
		tb := NewMACTable(1024, 0)
		last := map[pkt.MAC]int{}
		for i, op := range ops {
			m := mac(op.M)
			tb.Learn(m, int(op.Port), units.Time(i))
			last[m] = int(op.Port)
		}
		for m, want := range last {
			got, ok := tb.Lookup(m, units.Time(len(ops)))
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
