package l2

import (
	"repro/internal/pkt"
	"repro/internal/units"
)

// referenceMACTable is the original map-based learning table, kept
// compiled as the behavioural reference for the open-addressed MACTable.
// The two agree exactly whenever eviction never has to break a lastSeen
// tie (the map version breaks ties by randomized iteration order, the
// open-addressed one by slot index); the equivalence test drives both with
// strictly increasing timestamps so every eviction victim is unique.
type referenceMACTable struct {
	entries map[pkt.MAC]refEntry
	cap     int
	ttl     units.Time

	Learns, Hits, Misses, Evictions int64
}

type refEntry struct {
	port     int
	lastSeen units.Time
}

func newReferenceMACTable(capacity int, ttl units.Time) *referenceMACTable {
	if capacity <= 0 {
		panic("l2: non-positive capacity")
	}
	return &referenceMACTable{entries: make(map[pkt.MAC]refEntry, capacity), cap: capacity, ttl: ttl}
}

func (t *referenceMACTable) Learn(mac pkt.MAC, port int, now units.Time) {
	if mac.IsMulticast() {
		return
	}
	if _, ok := t.entries[mac]; !ok {
		if len(t.entries) >= t.cap {
			t.evictOldest()
		}
		t.Learns++
	}
	t.entries[mac] = refEntry{port: port, lastSeen: now}
}

func (t *referenceMACTable) evictOldest() {
	var oldest pkt.MAC
	var oldestAt units.Time = 1<<63 - 1
	for m, e := range t.entries {
		if e.lastSeen < oldestAt {
			oldest, oldestAt = m, e.lastSeen
		}
	}
	delete(t.entries, oldest)
	t.Evictions++
}

func (t *referenceMACTable) Lookup(mac pkt.MAC, now units.Time) (port int, ok bool) {
	if mac.IsMulticast() {
		t.Misses++
		return 0, false
	}
	e, found := t.entries[mac]
	if !found || (t.ttl > 0 && now-e.lastSeen > t.ttl) {
		if found {
			delete(t.entries, mac)
		}
		t.Misses++
		return 0, false
	}
	t.Hits++
	return e.port, true
}

func (t *referenceMACTable) Len() int { return len(t.entries) }
