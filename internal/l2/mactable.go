// Package l2 provides the MAC learning table shared by the L2 switch data
// planes (VALE, VPP's learning bridge, OvS's NORMAL action).
package l2

import (
	"repro/internal/flowtab"
	"repro/internal/pkt"
	"repro/internal/units"
)

// MACTable is a bounded source-learning table with aging. It is an
// open-addressed linear-probe table (backward-shift deletion, no
// tombstones) sized to at most half load, so the per-frame Learn/Lookup
// pair the L2 planes issue costs two short probe scans and no map-header
// or hash-interface overhead. Eviction picks the globally oldest entry
// with a deterministic tie-break (lowest slot index), unlike the previous
// map-based table whose ties followed Go's randomized map iteration.
type MACTable struct {
	hashes []uint64
	macs   []pkt.MAC
	ports  []int32
	seen   []units.Time
	live   []bool
	mask   uint64
	n      int
	cap    int
	ttl    units.Time

	// Learns, Hits, Misses, Evictions count table activity.
	Learns, Hits, Misses, Evictions int64
}

// NewMACTable returns a table bounded to capacity entries whose entries age
// out after ttl (0 = never).
func NewMACTable(capacity int, ttl units.Time) *MACTable {
	if capacity <= 0 {
		panic("l2: non-positive capacity")
	}
	size := 16
	for size < capacity*2 {
		size <<= 1
	}
	return &MACTable{
		hashes: make([]uint64, size),
		macs:   make([]pkt.MAC, size),
		ports:  make([]int32, size),
		seen:   make([]units.Time, size),
		live:   make([]bool, size),
		mask:   uint64(size - 1),
		cap:    capacity,
		ttl:    ttl,
	}
}

func macHash(mac pkt.MAC) uint64 {
	v := uint64(mac[0])<<40 | uint64(mac[1])<<32 | uint64(mac[2])<<24 |
		uint64(mac[3])<<16 | uint64(mac[4])<<8 | uint64(mac[5])
	return flowtab.HashUint64(v)
}

// Learn records that mac was seen as a source on port at time now.
func (t *MACTable) Learn(mac pkt.MAC, port int, now units.Time) {
	if mac.IsMulticast() {
		return // source multicast is never learned
	}
	h := macHash(mac)
	i := h & t.mask
	for t.live[i] {
		if t.hashes[i] == h && t.macs[i] == mac {
			t.ports[i] = int32(port)
			t.seen[i] = now
			return
		}
		i = (i + 1) & t.mask
	}
	if t.n >= t.cap {
		t.evictOldest()
		// The backward shift may have moved entries across the free
		// slot we found; re-probe.
		i = h & t.mask
		for t.live[i] {
			i = (i + 1) & t.mask
		}
	}
	t.Learns++
	t.live[i] = true
	t.hashes[i] = h
	t.macs[i] = mac
	t.ports[i] = int32(port)
	t.seen[i] = now
	t.n++
}

func (t *MACTable) evictOldest() {
	oldest := -1
	oldestAt := units.Time(1<<63 - 1)
	for i, l := range t.live {
		if l && t.seen[i] < oldestAt {
			oldest, oldestAt = i, t.seen[i]
		}
	}
	t.deleteSlot(uint64(oldest))
	t.Evictions++
}

// deleteSlot empties slot i and backward-shifts any displaced entries in
// its probe chain so future probes never cross a hole.
func (t *MACTable) deleteSlot(i uint64) {
	t.n--
	for {
		t.live[i] = false
		j := i
		for {
			j = (j + 1) & t.mask
			if !t.live[j] {
				return
			}
			h := t.hashes[j] & t.mask
			// Slot j may fill the hole at i only if its home slot h is
			// not cyclically inside (i, j] — otherwise moving it would
			// break its own probe chain.
			var blocked bool
			if i <= j {
				blocked = h > i && h <= j
			} else {
				blocked = h > i || h <= j
			}
			if !blocked {
				break
			}
		}
		t.live[i] = true
		t.hashes[i] = t.hashes[j]
		t.macs[i] = t.macs[j]
		t.ports[i] = t.ports[j]
		t.seen[i] = t.seen[j]
		i = j
	}
}

// Lookup returns the port mac was learned on, or ok=false for a miss
// (unknown, aged out, or broadcast/multicast — which must flood).
func (t *MACTable) Lookup(mac pkt.MAC, now units.Time) (port int, ok bool) {
	if mac.IsMulticast() {
		t.Misses++
		return 0, false
	}
	h := macHash(mac)
	i := h & t.mask
	for t.live[i] {
		if t.hashes[i] == h && t.macs[i] == mac {
			if t.ttl > 0 && now-t.seen[i] > t.ttl {
				t.deleteSlot(i)
				t.Misses++
				return 0, false
			}
			t.Hits++
			return int(t.ports[i]), true
		}
		i = (i + 1) & t.mask
	}
	t.Misses++
	return 0, false
}

// Len returns the number of live entries.
func (t *MACTable) Len() int { return t.n }
