// Package l2 provides the MAC learning table shared by the L2 switch data
// planes (VALE, VPP's learning bridge, OvS's NORMAL action).
package l2

import (
	"repro/internal/pkt"
	"repro/internal/units"
)

type entry struct {
	port     int
	lastSeen units.Time
}

// MACTable is a bounded source-learning table with aging.
type MACTable struct {
	entries map[pkt.MAC]entry
	cap     int
	ttl     units.Time

	// Learns, Hits, Misses, Evictions count table activity.
	Learns, Hits, Misses, Evictions int64
}

// NewMACTable returns a table bounded to capacity entries whose entries age
// out after ttl (0 = never).
func NewMACTable(capacity int, ttl units.Time) *MACTable {
	if capacity <= 0 {
		panic("l2: non-positive capacity")
	}
	return &MACTable{entries: make(map[pkt.MAC]entry, capacity), cap: capacity, ttl: ttl}
}

// Learn records that mac was seen as a source on port at time now.
func (t *MACTable) Learn(mac pkt.MAC, port int, now units.Time) {
	if mac.IsMulticast() {
		return // source multicast is never learned
	}
	if _, ok := t.entries[mac]; !ok {
		if len(t.entries) >= t.cap {
			t.evictOldest()
		}
		t.Learns++
	}
	t.entries[mac] = entry{port: port, lastSeen: now}
}

func (t *MACTable) evictOldest() {
	var oldest pkt.MAC
	var oldestAt units.Time = 1<<63 - 1
	for m, e := range t.entries {
		if e.lastSeen < oldestAt {
			oldest, oldestAt = m, e.lastSeen
		}
	}
	delete(t.entries, oldest)
	t.Evictions++
}

// Lookup returns the port mac was learned on, or ok=false for a miss
// (unknown, aged out, or broadcast/multicast — which must flood).
func (t *MACTable) Lookup(mac pkt.MAC, now units.Time) (port int, ok bool) {
	if mac.IsMulticast() {
		t.Misses++
		return 0, false
	}
	e, found := t.entries[mac]
	if !found || (t.ttl > 0 && now-e.lastSeen > t.ttl) {
		if found {
			delete(t.entries, mac)
		}
		t.Misses++
		return 0, false
	}
	t.Hits++
	return e.port, true
}

// Len returns the number of live entries.
func (t *MACTable) Len() int { return len(t.entries) }
