package l2

import (
	"math/rand"
	"testing"

	"repro/internal/pkt"
	"repro/internal/units"
)

// TestMACTableMatchesReference drives the open-addressed table and the
// map-based reference with identical randomized Learn/Lookup sequences —
// including capacity evictions and TTL aging — and asserts identical
// results and counters at every step. Timestamps strictly increase so
// every eviction victim is unique (the only regime where the reference's
// randomized tie-break is deterministic).
func TestMACTableMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range []struct {
		name string
		cap  int
		ttl  units.Time
		macs int
		ops  int
	}{
		{"small-evicting", 8, 0, 64, 4000},
		{"aging", 32, 50 * units.Microsecond, 48, 4000},
		{"large-no-evict", 1024, 0, 256, 4000},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			got := NewMACTable(cfg.cap, cfg.ttl)
			want := newReferenceMACTable(cfg.cap, cfg.ttl)
			now := units.Time(0)
			for i := 0; i < cfg.ops; i++ {
				now += units.Time(1 + rng.Intn(int(10*units.Microsecond)))
				id := rng.Intn(cfg.macs)
				m := pkt.MAC{2, 0, 0, 0, byte(id >> 8), byte(id)}
				if rng.Intn(100) < 2 {
					m[0] |= 1 // occasional multicast source/dst
				}
				if rng.Intn(2) == 0 {
					port := rng.Intn(16)
					got.Learn(m, port, now)
					want.Learn(m, port, now)
				} else {
					gp, gok := got.Lookup(m, now)
					wp, wok := want.Lookup(m, now)
					if gp != wp || gok != wok {
						t.Fatalf("op %d: Lookup(%v) = (%d,%v), reference (%d,%v)", i, m, gp, gok, wp, wok)
					}
				}
				if got.Len() != want.Len() {
					t.Fatalf("op %d: Len = %d, reference %d", i, got.Len(), want.Len())
				}
			}
			if got.Learns != want.Learns || got.Hits != want.Hits ||
				got.Misses != want.Misses || got.Evictions != want.Evictions {
				t.Fatalf("counters diverged: got {L:%d H:%d M:%d E:%d}, reference {L:%d H:%d M:%d E:%d}",
					got.Learns, got.Hits, got.Misses, got.Evictions,
					want.Learns, want.Hits, want.Misses, want.Evictions)
			}
		})
	}
}
