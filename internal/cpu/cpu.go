// Package cpu provides simulated CPU cores. A core repeatedly invokes a
// data plane's poll function; the function charges the cycles it consumed to
// a cost.Meter and the core advances simulated time by the drained amount.
//
// Two core flavours mirror the paper's I/O models: PollCore for DPDK-style
// busy-wait switches, and IRQCore for netmap/VALE, which sleeps until a
// device interrupt and pays wakeup costs.
package cpu

import (
	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/units"
)

// PollFunc is one scheduling quantum of a data plane: process what is
// available, charge cycles to m, report whether any work was done.
type PollFunc func(now units.Time, m *cost.Meter) bool

// PollCore is a busy-waiting core (DPDK poll-mode model).
type PollCore struct {
	Meter *cost.Meter
	name  string
	poll  PollFunc
	task  *sim.Task
	sched *sim.Scheduler

	// IdleStep, when set, is the minimum clock advance after a poll that
	// found no work — a cheap way to coarsen idle spinning for cores
	// whose latency contribution is bounded (guest monitors).
	IdleStep units.Time

	// Busy counts cycles spent in iterations that did work; Idle counts
	// empty polls — together they give the paper's CPU utilization view.
	Busy, Idle units.Cycles
}

// NewPollCore registers a busy-poll core with the scheduler. It does not
// start running until Start is called.
func NewPollCore(s *sim.Scheduler, name string, m *cost.Meter, poll PollFunc) *PollCore {
	c := &PollCore{Meter: m, name: name, poll: poll, sched: s}
	c.task = s.Register(name, c)
	return c
}

// Name returns the core's scheduler name ("sut", "sut-core2", "sut-tx",
// ...); multi-core results report per-core utilization under it.
func (c *PollCore) Name() string { return c.name }

// Start schedules the first poll at time at.
func (c *PollCore) Start(at units.Time) { c.sched.WakeAt(c.task, at) }

// Step implements sim.Actor.
func (c *PollCore) Step(now units.Time) (units.Time, bool) {
	did := c.poll(now, c.Meter)
	if !did {
		c.Meter.Charge(c.Meter.Model.IdlePoll)
	}
	spent := c.Meter.Pending()
	d := c.Meter.Drain()
	if did {
		c.Busy += spent
	} else {
		c.Idle += spent
		if d < c.IdleStep {
			d = c.IdleStep
		}
	}
	if d <= 0 {
		// A poll must consume time or the simulation cannot advance.
		d = units.Nanosecond
	}
	return now + d, true
}

// Utilization returns the fraction of cycles spent doing useful work.
func (c *PollCore) Utilization() float64 {
	t := c.Busy + c.Idle
	if t == 0 {
		return 0
	}
	return float64(c.Busy) / float64(t)
}

// IRQCore is an interrupt-driven core (netmap model): it processes available
// work, then sleeps until a device calls Wake. Each wakeup pays the
// interrupt + syscall path cost.
type IRQCore struct {
	Meter *cost.Meter
	poll  PollFunc
	task  *sim.Task
	sched *sim.Scheduler

	sleeping  bool
	busyUntil units.Time
	// pending is the earliest interrupt signalled while the core was
	// running (0 = none): delivered when the core would otherwise sleep.
	pending units.Time
	Wakeups int64

	// onSleep callbacks re-enable device interrupts when the core exits
	// its polling loop (the NAPI contract): each device re-fires if it
	// still has — or will have — work.
	onSleep []func(now units.Time)
}

// NewIRQCore registers an interrupt-driven core with the scheduler.
func NewIRQCore(s *sim.Scheduler, name string, m *cost.Meter, poll PollFunc) *IRQCore {
	c := &IRQCore{Meter: m, poll: poll, sched: s, sleeping: true}
	c.task = s.Register(name, c)
	return c
}

// Wake signals the core (an interrupt) at time at. Redundant wakes while the
// core is already running are harmless; a wake can never pull the core's
// next step before the end of the work it is already committed to.
func (c *IRQCore) Wake(at units.Time) {
	if c.sleeping {
		c.sleeping = false
		c.Wakeups++
		// First wake out of sleep pays the interrupt delivery and the
		// syscall return path before any packet work happens.
		c.Meter.Charge(c.Meter.Model.Interrupt + c.Meter.Model.Syscall)
		if at < c.busyUntil {
			at = c.busyUntil
		}
		c.sched.WakeAt(c.task, at)
		return
	}
	// The core is running (or queued to run): the hardware interrupt
	// still fires at `at` and must not be swallowed by an earlier queued
	// step — remember it for delivery when the core goes idle.
	if c.pending == 0 || at < c.pending {
		c.pending = at
	}
}

// Task exposes the scheduler handle (tests/diagnostics).
func (c *IRQCore) Task() *sim.Task { return c.task }

// Step implements sim.Actor.
func (c *IRQCore) Step(now units.Time) (units.Time, bool) {
	did := c.poll(now, c.Meter)
	d := c.Meter.Drain()
	if d <= 0 {
		d = units.Nanosecond
	}
	c.busyUntil = now + d
	if c.pending != 0 && c.pending <= now {
		c.pending = 0 // delivered: this poll saw the signalled work
	}
	if did {
		return c.busyUntil, true
	}
	if c.pending != 0 {
		// An undelivered interrupt is outstanding: stay armed for it
		// (NAPI-style, no fresh interrupt cost).
		at := c.pending
		c.pending = 0
		if at < c.busyUntil {
			at = c.busyUntil
		}
		return at, true
	}
	// Sleep, then re-enable device interrupts: a device with work (now
	// or in flight) immediately schedules the next wake.
	c.sleeping = true
	for _, f := range c.onSleep {
		f(now)
	}
	return 0, false
}

// AddSleeper registers a device re-arm callback (see onSleep).
func (c *IRQCore) AddSleeper(f func(now units.Time)) { c.onSleep = append(c.onSleep, f) }
