package cpu

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestPollCoreAdvancesByCharge(t *testing.T) {
	s := sim.NewScheduler()
	var times []units.Time
	core := NewPollCore(s, "c", cost.NewMeter(cost.Default(), nil),
		func(now units.Time, m *cost.Meter) bool {
			times = append(times, now)
			m.Charge(2600) // 1 us
			return true
		})
	core.Start(0)
	s.RunUntil(5 * units.Microsecond)
	// Steps at 0, 1us, 2us, 3us, 4us, 5us.
	if len(times) != 6 {
		t.Fatalf("steps = %d", len(times))
	}
	if times[1] != units.Microsecond {
		t.Fatalf("second step at %v", times[1])
	}
}

func TestPollCoreIdleChargesIdlePoll(t *testing.T) {
	s := sim.NewScheduler()
	core := NewPollCore(s, "c", cost.NewMeter(cost.Default(), nil),
		func(now units.Time, m *cost.Meter) bool { return false })
	core.Start(0)
	s.RunUntil(10 * units.Microsecond)
	if core.Busy != 0 || core.Idle == 0 {
		t.Fatalf("busy=%d idle=%d", core.Busy, core.Idle)
	}
	if core.Utilization() != 0 {
		t.Fatalf("utilization = %f", core.Utilization())
	}
}

func TestPollCoreIdleStepCoarsens(t *testing.T) {
	s := sim.NewScheduler()
	calls := 0
	core := NewPollCore(s, "c", cost.NewMeter(cost.Default(), nil),
		func(now units.Time, m *cost.Meter) bool { calls++; return false })
	core.IdleStep = units.Microsecond
	core.Start(0)
	s.RunUntil(10 * units.Microsecond)
	if calls != 11 {
		t.Fatalf("calls = %d, want 11 with 1us idle step", calls)
	}
}

func TestUtilizationMixed(t *testing.T) {
	s := sim.NewScheduler()
	i := 0
	core := NewPollCore(s, "c", cost.NewMeter(cost.Default(), nil),
		func(now units.Time, m *cost.Meter) bool {
			i++
			if i%2 == 0 {
				m.Charge(1000)
				return true
			}
			return false
		})
	core.Start(0)
	s.RunUntil(100 * units.Microsecond)
	u := core.Utilization()
	if u <= 0.5 || u >= 1 {
		t.Fatalf("utilization = %f", u)
	}
}

func TestIRQCoreSleepsUntilWake(t *testing.T) {
	s := sim.NewScheduler()
	work := 0
	pending := 0
	core := NewIRQCore(s, "c", cost.NewMeter(cost.Default(), sim.NewRNG(1)),
		func(now units.Time, m *cost.Meter) bool {
			if pending == 0 {
				return false
			}
			work += pending
			m.Charge(units.Cycles(pending) * 100)
			pending = 0
			return true
		})
	// Nothing happens without a wake.
	s.RunUntil(10 * units.Microsecond)
	if work != 0 {
		t.Fatal("core ran while asleep")
	}
	pending = 5
	core.Wake(20 * units.Microsecond)
	s.RunUntil(50 * units.Microsecond)
	if work != 5 {
		t.Fatalf("work = %d", work)
	}
	if core.Wakeups != 1 {
		t.Fatalf("wakeups = %d", core.Wakeups)
	}
}

func TestIRQCoreWakeCannotPreemptBusy(t *testing.T) {
	s := sim.NewScheduler()
	var steps []units.Time
	busy := true
	var core *IRQCore
	core = NewIRQCore(s, "c", cost.NewMeter(cost.Default(), sim.NewRNG(1)),
		func(now units.Time, m *cost.Meter) bool {
			steps = append(steps, now)
			if busy {
				busy = false
				m.Charge(26000) // 10 us of work
				return true
			}
			return false
		})
	core.Wake(0)
	// A wake for t=1us while the core is busy until ~10us must not make
	// it step early.
	s.RunUntil(500 * units.Nanosecond)
	core.Wake(units.Microsecond)
	s.RunUntil(units.Millisecond)
	if len(steps) < 2 {
		t.Fatalf("steps = %v", steps)
	}
	if steps[1] < 10*units.Microsecond {
		t.Fatalf("second step at %v — wake preempted busy core", steps[1])
	}
}

func TestIRQWakeChargesInterruptCost(t *testing.T) {
	s := sim.NewScheduler()
	meter := cost.NewMeter(cost.Default(), sim.NewRNG(1))
	core := NewIRQCore(s, "c", meter, func(now units.Time, m *cost.Meter) bool { return false })
	core.Wake(0)
	if meter.Pending() != cost.Default().Interrupt+cost.Default().Syscall {
		t.Fatalf("pending = %d", meter.Pending())
	}
	// Second wake while not sleeping (queued) charges nothing extra.
	core.Wake(0)
	if meter.Pending() != cost.Default().Interrupt+cost.Default().Syscall {
		t.Fatalf("double charge: %d", meter.Pending())
	}
}
