package vm

import (
	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// Generator is MoonGen or pkt-gen running inside a guest, transmitting on
// one guest interface. MoonGen emulates a port profile, so VirtualRate
// caps its offered load (the paper's v2v runs show virtio switches capped
// near 10 Gbps at large frames for exactly this reason); pkt-gen over
// ptnet has no such profile and runs unlimited (VirtualRate = 0 — how the
// paper's VALE v2v exceeds 10 Gbps).
type Generator struct {
	If   NetIf
	Pool *pkt.Pool
	Spec pkt.FrameSpec
	// VirtualRate caps the offered load (0 = unlimited).
	VirtualRate units.BitRate
	// ProbeEvery injects software-timestamped probes (0 = none).
	ProbeEvery units.Time
	Burst      int

	sched *sim.Scheduler
	task  *sim.Task
	meter *cost.Meter

	seq       uint64
	nextProbe units.Time
	nextDue   units.Time
	tmpl      *pkt.Template // lazily built frame image for Spec
	scratch   []*pkt.Buf    // burst staging, reused every step

	// Sent counts emitted frames.
	Sent int64
}

// guestGenPerPkt is the per-frame generation cost on the guest core.
const guestGenPerPkt = 30

// StartGenerator registers and starts the guest generator on its own guest
// core at time at.
func StartGenerator(s *sim.Scheduler, name string, g *Generator, m *cost.Meter, at units.Time) *Generator {
	if g.Burst == 0 {
		g.Burst = 32
	}
	g.sched = s
	g.meter = m
	g.task = s.Register(name, g)
	g.nextDue = at
	g.nextProbe = at + g.ProbeEvery
	s.WakeAt(g.task, at)
	return g
}

// makeFrame builds one template-backed frame and charges the per-frame
// generation cost (charged per attempt, whether or not the send lands —
// the guest core did the work either way).
func (g *Generator) makeFrame(now units.Time) *pkt.Buf {
	if g.tmpl == nil {
		g.tmpl = g.Spec.Template(0)
	}
	b := g.Pool.Get(g.Spec.FrameLen)
	b.SetTemplate(g.tmpl)
	g.seq++
	b.Seq = g.seq
	if g.ProbeEvery > 0 && now >= g.nextProbe {
		pkt.MarkProbe(b, g.seq, now) // software timestamp
		g.nextProbe = now + g.ProbeEvery
	}
	g.meter.Charge(guestGenPerPkt)
	return b
}

// Step implements sim.Actor.
func (g *Generator) Step(now units.Time) (units.Time, bool) {
	burst := g.Burst
	if g.VirtualRate > 0 && g.ProbeEvery > 0 {
		// Latency runs pace frames individually (MoonGen CBR).
		burst = 1
	}
	if cap(g.scratch) < burst {
		g.scratch = make([]*pkt.Buf, burst)
	}
	// Stage only what the device can take, then post it as one burst. A
	// per-frame loop would generate one more frame into a full ring and
	// lose it (paying the generation cost and a ring drop); reproduce
	// that blocked attempt literally so drops and charges stay identical.
	toSend := burst
	blocked := false
	if space := g.If.SendSpace(); space < toSend {
		toSend = space
		blocked = true
	}
	for i := 0; i < toSend; i++ {
		g.scratch[i] = g.makeFrame(now)
	}
	sent := 0
	if toSend > 0 {
		sent = g.If.SendBurst(now, g.meter, g.scratch[:toSend])
		g.Sent += int64(sent)
	}
	if blocked {
		b := g.makeFrame(now)
		if g.If.Send(now, g.meter, b) {
			g.Sent++
			sent++
		} else {
			b.Free()
		}
	}
	elapsed := g.meter.Drain()
	if g.VirtualRate > 0 {
		g.nextDue += units.Time(int64(g.VirtualRate.WireTime(g.Spec.FrameLen)) * int64(burst))
		if g.nextDue <= now {
			g.nextDue = now + units.Nanosecond
		}
		return g.nextDue, true
	}
	// Unlimited: pace by the CPU cost of generating, or back off briefly
	// when the ring is full.
	next := now + elapsed
	if sent == 0 {
		next = now + 500*units.Nanosecond
	}
	if next <= now {
		next = now + units.Nanosecond
	}
	return next, true
}

// Monitor is FloWatcher-DPDK or pkt-gen in RX mode: a guest-side counting
// sink that also resolves software-timestamped probes (v2v latency). The
// paper selected these tools because their overhead is negligible; the
// model charges only the interface descriptor costs.
type Monitor struct {
	If NetIf
	// SWStampNoise adds uniform measurement noise to software-timestamped
	// RTTs, reflecting MoonGen's note that software timestamping is less
	// accurate than NIC hardware support.
	SWStampNoise units.Time
	RNG          *sim.RNG

	// Rx counts consumed frames; Hist collects probe RTTs.
	Rx   stats.Counter
	Hist stats.Histogram
	// Capture, when set, observes every consumed frame (pcap dumps).
	Capture func(at units.Time, b *pkt.Buf)

	scratch [64]*pkt.Buf // receive staging, reused across polls
}

// Poll implements cpu.PollFunc; the monitor runs on a guest core.
func (mo *Monitor) Poll(now units.Time, m *cost.Meter) bool {
	burst := &mo.scratch
	n := mo.If.Recv(now, m, burst[:])
	for _, b := range burst[:n] {
		mo.Rx.Add(1, int64(b.Len()))
		if mo.Capture != nil {
			mo.Capture(now, b)
		}
		if b.Probe {
			tx := b.TxStamp
			if tx == 0 {
				if _, ptx, ok := pkt.ProbeInfo(b); ok {
					tx = ptx
				}
			}
			if tx > 0 {
				rtt := now - tx
				if mo.SWStampNoise > 0 && mo.RNG != nil {
					rtt += units.Time(mo.RNG.Float64() * float64(mo.SWStampNoise))
				}
				mo.Hist.Add(rtt)
			}
		}
		b.Free()
	}
	return n > 0
}
