package vm

import (
	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/units"
)

// DPDK l2fwd constants (the sample application's MAX_PKT_BURST and
// BURST_TX_DRAIN_US defaults).
const (
	L2FwdBurst        = 32
	L2FwdDrainDefault = 100 * units.Microsecond
)

// Guest-side per-packet application cost.
const l2fwdPerPkt = 34

// L2Fwd is the DPDK l2fwd sample application: it cross-connects two guest
// interfaces, rewriting source and (optionally) destination MACs, and
// transmits in strict batches with a drain timeout.
type L2Fwd struct {
	A, B NetIf
	// OwnMAC is written as the Ethernet source of forwarded frames.
	OwnMAC pkt.MAC
	// RewriteAB/RewriteBA, when non-nil, overwrite the destination MAC
	// of frames forwarded A→B / B→A — how chain VNFs steer the next hop
	// for MAC-forwarding SUTs (the paper's t4p4s loopback note).
	RewriteAB, RewriteBA *pkt.MAC
	// Drain is the TX buffer timeout (default 100 µs).
	Drain units.Time

	batchAB, batchBA []*pkt.Buf
	firstAB, firstBA units.Time

	// derivedAB/derivedBA memoize this VNF's MAC rewrite per input
	// template and direction: the rewrite is deterministic, so a
	// template-backed frame swaps its template pointer instead of
	// materializing 60+ bytes per frame. The cache stays tiny — one
	// entry per distinct upstream template (generator flow or upstream
	// VNF).
	derivedAB, derivedBA map[*pkt.Template]*pkt.Template

	// scratch is the receive staging array, hoisted off the poll path:
	// a stack array handed through the NetIf interface escapes, which
	// costs one heap allocation per pump on a core that polls every few
	// hundred simulated nanoseconds.
	scratch [L2FwdBurst]*pkt.Buf

	// Forwarded and Dropped count frames through the VNF.
	Forwarded, Dropped int64
}

// Poll runs one guest-core iteration; it implements cpu.PollFunc.
func (f *L2Fwd) Poll(now units.Time, m *cost.Meter) bool {
	if f.Drain == 0 {
		f.Drain = L2FwdDrainDefault
	}
	if f.derivedAB == nil {
		f.derivedAB = make(map[*pkt.Template]*pkt.Template)
		f.derivedBA = make(map[*pkt.Template]*pkt.Template)
	}
	did := f.pump(now, m, f.A, f.B, f.RewriteAB, f.derivedAB, &f.batchAB, &f.firstAB)
	did = f.pump(now, m, f.B, f.A, f.RewriteBA, f.derivedBA, &f.batchBA, &f.firstBA) || did
	return did
}

// rewriteMACs applies this VNF's header edit to one frame. Template-backed
// frames swap to a memoized derived template (same bytes, no materialize);
// anything else — probe frames, frames a switch already materialized —
// takes the byte path.
func (f *L2Fwd) rewriteMACs(b *pkt.Buf, rewrite *pkt.MAC, derived map[*pkt.Template]*pkt.Template) {
	if t := b.Template(); t != nil && b.Len() == t.Len() {
		d, ok := derived[t]
		if !ok {
			d = t.Derive(func(data []byte) {
				pkt.SetEthSrc(data, f.OwnMAC)
				if rewrite != nil {
					pkt.SetEthDst(data, *rewrite)
				}
			})
			derived[t] = d
		}
		b.SetTemplate(d)
		return
	}
	data := b.Bytes()
	pkt.SetEthSrc(data, f.OwnMAC)
	if rewrite != nil {
		pkt.SetEthDst(data, *rewrite)
	}
}

func (f *L2Fwd) pump(now units.Time, m *cost.Meter, from, to NetIf, rewrite *pkt.MAC, derived map[*pkt.Template]*pkt.Template, batch *[]*pkt.Buf, first *units.Time) bool {
	burst := &f.scratch
	n := from.Recv(now, m, burst[:])
	if n > 0 {
		m.Charge(units.Cycles(n) * l2fwdPerPkt)
		for _, b := range burst[:n] {
			f.rewriteMACs(b, rewrite, derived)
		}
		if len(*batch) == 0 {
			*first = now
		}
		*batch = append(*batch, burst[:n]...)
	}
	// Strict batching: flush on a full burst or when the oldest buffered
	// frame has waited out the drain timer.
	if len(*batch) >= L2FwdBurst || (len(*batch) > 0 && now-*first >= f.Drain) {
		f.flush(now, m, to, batch)
	}
	return n > 0
}

func (f *L2Fwd) flush(now units.Time, m *cost.Meter, to NetIf, batch *[]*pkt.Buf) {
	sent := to.SendBurst(now, m, *batch)
	f.Forwarded += int64(sent)
	f.Dropped += int64(len(*batch) - sent)
	*batch = (*batch)[:0]
}

// ValeFwd is the loopback VNF used with the VALE SUT: a guest VALE
// instance cross-connecting two ptnet ports. Forwarding costs one
// inter-port copy on the guest core; there is no strict batching (VALE's
// adaptive batches forward whatever is pending).
type ValeFwd struct {
	A, B NetIf
	Pool *pkt.Pool // guest memory for the inter-port copies

	scratch [64]*pkt.Buf // receive staging, reused across polls

	Forwarded, Dropped int64
}

// Per-frame guest VALE costs.
const (
	valeFwdPerPkt        = 40
	valeFwdCopyPerByteMi = 300
)

// Poll runs one guest-core iteration; it implements cpu.PollFunc.
func (f *ValeFwd) Poll(now units.Time, m *cost.Meter) bool {
	did := f.pump(now, m, f.A, f.B)
	did = f.pump(now, m, f.B, f.A) || did
	return did
}

func (f *ValeFwd) pump(now units.Time, m *cost.Meter, from, to NetIf) bool {
	burst := &f.scratch
	n := from.Recv(now, m, burst[:])
	for _, b := range burst[:n] {
		m.Charge(valeFwdPerPkt + valeFwdCopyPerByteMi*units.Cycles(b.Len())/1000)
		out := f.Pool.Clone(b)
		b.Free()
		if to.Send(now, m, out) {
			f.Forwarded++
		} else {
			out.Free()
			f.Dropped++
		}
	}
	return n > 0
}
