package vm

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/ptnet"
	"repro/internal/sim"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
	"repro/internal/vhost"
)

func virtioPair(name string) (*vhost.Device, *VirtioIf, *pkt.Pool, *pkt.Pool) {
	host, guest := pkt.NewPool(2048), pkt.NewPool(2048)
	dev := vhost.New(vhost.Config{Name: name, GuestNotifyDelay: units.Nanosecond})
	return dev, &VirtioIf{Dev: dev}, host, guest
}

func frameTo(pool *pkt.Pool, dst pkt.MAC) *pkt.Buf {
	b := pool.Get(64)
	pkt.FrameSpec{SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: dst, FrameLen: 64}.Build(b)
	return b
}

func TestL2FwdRewritesAndBatches(t *testing.T) {
	devA, ifA, hostA, _ := virtioPair("a")
	devB, ifB, _, _ := virtioPair("b")
	own := pkt.MAC{0x02, 0xff, 0, 0, 0, 1}
	next := switchdef.PortMAC(5)
	fwd := &L2Fwd{A: ifA, B: ifB, OwnMAC: own, RewriteAB: &next}
	hm := cost.NewMeter(cost.Default(), nil)
	gm := cost.NewMeter(cost.Default(), nil)

	// Deliver one frame: the VNF buffers it (strict batching).
	devA.HostEnqueue(0, hm, frameTo(hostA, pkt.MAC{9, 9, 9, 9, 9, 9}))
	fwd.Poll(units.Microsecond, gm)
	if devB.HostPending() != 0 {
		t.Fatal("flushed before batch or drain")
	}
	// After the drain timeout, the frame leaves, rewritten.
	fwd.Poll(units.Microsecond+L2FwdDrainDefault, gm)
	if devB.HostPending() != 1 {
		t.Fatalf("pending = %d", devB.HostPending())
	}
	var out [1]*pkt.Buf
	devB.HostDequeue(hm, out[:])
	if pkt.EthDst(out[0].Bytes()) != next {
		t.Fatal("dst MAC not rewritten")
	}
	if pkt.EthSrc(out[0].Bytes()) != own {
		t.Fatal("src MAC not set")
	}
	out[0].Free()
	if fwd.Forwarded != 1 {
		t.Fatalf("forwarded = %d", fwd.Forwarded)
	}
}

func TestL2FwdFullBatchFlushesImmediately(t *testing.T) {
	devA, ifA, hostA, _ := virtioPair("a")
	devB, ifB, _, _ := virtioPair("b")
	fwd := &L2Fwd{A: ifA, B: ifB, OwnMAC: pkt.MAC{2, 0, 0, 0, 0, 9}}
	hm := cost.NewMeter(cost.Default(), nil)
	gm := cost.NewMeter(cost.Default(), nil)
	for i := 0; i < L2FwdBurst; i++ {
		devA.HostEnqueue(0, hm, frameTo(hostA, pkt.MAC{9, 9, 9, 9, 9, 9}))
	}
	fwd.Poll(units.Microsecond, gm)
	if devB.HostPending() != L2FwdBurst {
		t.Fatalf("pending = %d, want full batch", devB.HostPending())
	}
}

func TestL2FwdBidirectional(t *testing.T) {
	devA, ifA, hostA, _ := virtioPair("a")
	devB, ifB, hostB, _ := virtioPair("b")
	fwd := &L2Fwd{A: ifA, B: ifB, OwnMAC: pkt.MAC{2, 0, 0, 0, 0, 9}, Drain: units.Microsecond}
	hm := cost.NewMeter(cost.Default(), nil)
	gm := cost.NewMeter(cost.Default(), nil)
	devA.HostEnqueue(0, hm, frameTo(hostA, pkt.MAC{1, 1, 1, 1, 1, 1}))
	devB.HostEnqueue(0, hm, frameTo(hostB, pkt.MAC{2, 2, 2, 2, 2, 2}))
	fwd.Poll(10*units.Microsecond, gm)
	fwd.Poll(20*units.Microsecond, gm) // drain fires
	if devB.HostPending() != 1 || devA.HostPending() != 1 {
		t.Fatalf("pending = %d, %d", devA.HostPending(), devB.HostPending())
	}
}

func TestValeFwdCopiesAndForwards(t *testing.T) {
	ptA, ptB := ptnet.New(ptnet.Config{Name: "a"}), ptnet.New(ptnet.Config{Name: "b"})
	guestPool := pkt.NewPool(2048)
	fwd := &ValeFwd{A: &PtnetIf{Dev: ptA}, B: &PtnetIf{Dev: ptB}, Pool: guestPool}
	hm := cost.NewMeter(cost.Default(), nil)
	gm := cost.NewMeter(cost.Default(), nil)

	hostPool := pkt.NewPool(2048)
	in := frameTo(hostPool, pkt.MAC{3, 3, 3, 3, 3, 3})
	ptA.HostSend(hm, in)
	fwd.Poll(0, gm) // no batching: forwards immediately
	var out [1]*pkt.Buf
	if ptB.HostRecv(hm, out[:]) != 1 {
		t.Fatal("not forwarded")
	}
	if out[0] == in {
		t.Fatal("guest VALE must copy between ports")
	}
	out[0].Free()
}

func TestMonitorCountsAndResolvesProbes(t *testing.T) {
	dev, ifc, hostPool, _ := virtioPair("m")
	mo := &Monitor{If: ifc}
	hm := cost.NewMeter(cost.Default(), nil)
	gm := cost.NewMeter(cost.Default(), nil)

	plain := frameTo(hostPool, pkt.MAC{1, 1, 1, 1, 1, 1})
	probe := frameTo(hostPool, pkt.MAC{1, 1, 1, 1, 1, 1})
	pkt.MarkProbe(probe, 1, 10*units.Microsecond)
	dev.HostEnqueue(0, hm, plain)
	dev.HostEnqueue(0, hm, probe)
	mo.Poll(50*units.Microsecond, gm)
	if mo.Rx.Packets != 2 {
		t.Fatalf("rx = %d", mo.Rx.Packets)
	}
	if mo.Hist.N() != 1 {
		t.Fatalf("probes = %d", mo.Hist.N())
	}
	if got := mo.Hist.Mean(); got != 40*units.Microsecond {
		t.Fatalf("rtt = %v", got)
	}
}

func TestMonitorSWNoiseBounded(t *testing.T) {
	dev, ifc, hostPool, _ := virtioPair("m")
	mo := &Monitor{If: ifc, SWStampNoise: 2 * units.Microsecond, RNG: sim.NewRNG(3)}
	hm := cost.NewMeter(cost.Default(), nil)
	gm := cost.NewMeter(cost.Default(), nil)
	for i := 0; i < 50; i++ {
		probe := frameTo(hostPool, pkt.MAC{1, 1, 1, 1, 1, 1})
		pkt.MarkProbe(probe, uint64(i), 2*units.Microsecond)
		dev.HostEnqueue(0, hm, probe)
		mo.Poll(12*units.Microsecond, gm)
	}
	if mo.Hist.Min() < 10*units.Microsecond || mo.Hist.Max() > 12*units.Microsecond {
		t.Fatalf("noise out of bounds: [%v, %v]", mo.Hist.Min(), mo.Hist.Max())
	}
}

func TestGuestGeneratorPacesAtVirtualRate(t *testing.T) {
	s := sim.NewScheduler()
	dev, ifc, _, guestPool := virtioPair("g")
	gen := &Generator{
		If: ifc, Pool: guestPool,
		Spec:        pkt.FrameSpec{SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2}, FrameLen: 64},
		VirtualRate: units.TenGigE,
	}
	StartGenerator(s, "gen", gen, cost.NewMeter(cost.Default(), sim.NewRNG(2)), 0)
	// Drain continuously so the vring never blocks.
	drained := 0
	hm := cost.NewMeter(cost.Default(), nil)
	drainTask := s.Register("drain", sim.StepFunc(func(now units.Time) (units.Time, bool) {
		var out [64]*pkt.Buf
		n := dev.HostDequeue(hm, out[:])
		for _, b := range out[:n] {
			b.Free()
		}
		drained += n
		return now + units.Microsecond, true
	}))
	s.WakeAt(drainTask, 0)
	s.RunUntil(units.Millisecond)
	// 10G at 64B = 14.88 Mpps → ~14880 packets per ms.
	if gen.Sent < 14000 || gen.Sent > 15500 {
		t.Fatalf("sent = %d, want ~14880", gen.Sent)
	}
}

func TestGuestGeneratorUnlimitedBeatsLineRate(t *testing.T) {
	s := sim.NewScheduler()
	pt := ptnet.New(ptnet.Config{Name: "g", Slots: 4096})
	guestPool := pkt.NewPool(2048)
	gen := &Generator{
		If: &PtnetIf{Dev: pt}, Pool: guestPool,
		Spec: pkt.FrameSpec{SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2}, FrameLen: 64},
	}
	StartGenerator(s, "gen", gen, cost.NewMeter(cost.Default(), sim.NewRNG(2)), 0)
	hm := cost.NewMeter(cost.Default(), nil)
	drainTask := s.Register("drain", sim.StepFunc(func(now units.Time) (units.Time, bool) {
		var out [256]*pkt.Buf
		n := pt.HostRecv(hm, out[:])
		for _, b := range out[:n] {
			b.Free()
		}
		return now + units.Microsecond, true
	}))
	s.WakeAt(drainTask, 0)
	s.RunUntil(units.Millisecond)
	// pkt-gen over ptnet is not line-rate capped (paper: VALE v2v beats
	// 10 Gbps).
	if gen.Sent < 16000 {
		t.Fatalf("sent = %d, want well above line-rate pacing", gen.Sent)
	}
}
