// Package vm models the guest side of the testbed: QEMU virtual machines
// hosting VNFs. Each VNF app runs on its own guest core (the paper gives
// every VM four cores; the SUT core is never shared with guests), driving
// guest-side network interfaces — virtio ring endpoints for vhost-user
// switches or ptnet endpoints for VALE.
//
// The packaged VNFs mirror the paper's:
//
//   - L2Fwd: the DPDK l2fwd sample application used inside chain VMs. It
//     cross-connects two interfaces, rewrites MAC addresses, and transmits
//     in strict 32-packet batches with a drain timeout — the behaviour
//     behind the paper's finding that 0.10·R⁺ latency exceeds 0.50·R⁺
//     latency everywhere except VALE.
//   - Generator: MoonGen/pkt-gen in a guest: paced synthetic traffic with
//     optional software timestamping for v2v latency runs.
//   - Monitor: FloWatcher-DPDK/pkt-gen in RX mode: a counting sink with
//     negligible overhead.
//   - ValeFwd: a guest VALE instance cross-connecting two ptnet ports
//     (the loopback VNF used with the VALE SUT).
package vm

import (
	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/ptnet"
	"repro/internal/units"
	"repro/internal/vhost"
)

// NetIf is a guest-side network interface.
type NetIf interface {
	Name() string
	// Send posts one frame toward the host; the caller keeps ownership
	// on failure.
	Send(now units.Time, m *cost.Meter, b *pkt.Buf) bool
	// SendBurst posts a batch toward the host, charging descriptor work
	// once; frames the device rejects are freed and counted as device
	// drops, exactly as a per-frame Send loop whose caller frees
	// failures. Returns the accepted count.
	SendBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int
	// SendSpace reports how many frames SendBurst can currently accept.
	SendSpace() int
	// Recv takes up to len(out) frames from the host.
	Recv(now units.Time, m *cost.Meter, out []*pkt.Buf) int
	// Pending reports frames awaiting Recv.
	Pending() int
}

// VirtioIf is the guest side of a vhost-user device.
type VirtioIf struct {
	Dev *vhost.Device
}

// Name implements NetIf.
func (v *VirtioIf) Name() string { return v.Dev.Name() }

// Send implements NetIf.
func (v *VirtioIf) Send(now units.Time, m *cost.Meter, b *pkt.Buf) bool {
	return v.Dev.GuestSend(m, b)
}

// SendBurst implements NetIf.
func (v *VirtioIf) SendBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int {
	return v.Dev.GuestSendBurst(m, in)
}

// SendSpace implements NetIf.
func (v *VirtioIf) SendSpace() int { return v.Dev.GuestSendSpace() }

// Recv implements NetIf.
func (v *VirtioIf) Recv(now units.Time, m *cost.Meter, out []*pkt.Buf) int {
	return v.Dev.GuestRecv(now, m, out)
}

// Pending implements NetIf.
func (v *VirtioIf) Pending() int { return v.Dev.GuestPending() }

// PtnetIf is the guest side of a ptnet device.
type PtnetIf struct {
	Dev *ptnet.Port
}

// Name implements NetIf.
func (p *PtnetIf) Name() string { return p.Dev.Name() }

// Send implements NetIf.
func (p *PtnetIf) Send(now units.Time, m *cost.Meter, b *pkt.Buf) bool {
	return p.Dev.GuestSend(now, m, b)
}

// SendBurst implements NetIf.
func (p *PtnetIf) SendBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int {
	return p.Dev.GuestSendBurst(now, m, in)
}

// SendSpace implements NetIf.
func (p *PtnetIf) SendSpace() int { return p.Dev.GuestSendSpace() }

// Recv implements NetIf.
func (p *PtnetIf) Recv(now units.Time, m *cost.Meter, out []*pkt.Buf) int {
	return p.Dev.GuestRecv(m, out)
}

// Pending implements NetIf.
func (p *PtnetIf) Pending() int { return p.Dev.GuestPending() }
