package tgen

import (
	"math"
	"testing"

	"repro/internal/nic"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/units"
)

func testbed(rate units.BitRate, probeEvery units.Time) (*sim.Scheduler, *Generator, *Sink, *nic.Port) {
	s := sim.NewScheduler()
	gen := nic.NewPort(nic.Config{Name: "gen", TxRing: 4096, RxRing: 4096, HWTimestamp: true,
		RxLatency: nic.NoLatency, TxLatency: nic.NoLatency})
	peer := nic.NewPort(nic.Config{Name: "peer", TxRing: 4096, RxRing: 4096,
		RxLatency: nic.NoLatency, TxLatency: nic.NoLatency})
	nic.Connect(gen, peer)
	g := NewGenerator(s, Config{
		Name: "g", Port: gen, Pool: pkt.NewPool(2048),
		Spec: pkt.FrameSpec{
			SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
			FrameLen: 64,
		},
		Rate:       rate,
		ProbeEvery: probeEvery,
	})
	k := NewSink(s, "sink", peer)
	g.Start(0)
	k.Start(0)
	return s, g, k, peer
}

func TestSaturatingModeHitsLineRate(t *testing.T) {
	s, g, k, _ := testbed(0, 0)
	s.RunUntil(units.Millisecond)
	// 14.88 Mpps → 14880 packets delivered per ms (the generator itself
	// additionally keeps the 4096-deep TX ring topped up).
	if math.Abs(float64(k.Rx.Packets)-14880) > 150 {
		t.Fatalf("delivered = %d, want ~14880", k.Rx.Packets)
	}
	if g.Sent < k.Rx.Packets {
		t.Fatalf("sent %d < delivered %d", g.Sent, k.Rx.Packets)
	}
}

func TestRateModePacesCBR(t *testing.T) {
	s, g, _, _ := testbed(units.Gbps, 0) // 1 Gbps of 64B = 1.488 Mpps
	s.RunUntil(units.Millisecond)
	if math.Abs(float64(g.Sent)-1488) > 20 {
		t.Fatalf("sent = %d, want ~1488", g.Sent)
	}
}

func TestProbesInjectedAndMeasured(t *testing.T) {
	s, g, k, _ := testbed(units.Gbps, 50*units.Microsecond)
	s.RunUntil(units.Millisecond)
	if g.SentProbes < 15 || g.SentProbes > 25 {
		t.Fatalf("probes = %d, want ~20", g.SentProbes)
	}
	if k.Hist.N() != g.SentProbes {
		t.Fatalf("sink saw %d probes of %d", k.Hist.N(), g.SentProbes)
	}
	// Direct wire: RTT is exactly the 64B wire time (hardware timestamps
	// at both ends, zero descriptor latency in this test).
	if k.Hist.Mean() != 0 {
		// TxStamp is end-of-wire at the sender and Ingress is arrival at
		// the peer — the same instant on a zero-latency wire.
		t.Fatalf("rtt = %v, want 0 on a direct wire", k.Hist.Mean())
	}
}

func TestSinkCountsBytes(t *testing.T) {
	s, g, k, _ := testbed(units.Gbps, 0)
	s.RunUntil(units.Millisecond)
	if k.Rx.Bytes != k.Rx.Packets*64 {
		t.Fatalf("bytes = %d for %d packets", k.Rx.Bytes, k.Rx.Packets)
	}
	_ = g
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		s, g, k, _ := testbed(0, 20*units.Microsecond)
		s.RunUntil(units.Millisecond)
		return g.Sent, k.Hist.N()
	}
	s1, p1 := run()
	s2, p2 := run()
	if s1 != s2 || p1 != p2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", s1, p1, s2, p2)
	}
}
