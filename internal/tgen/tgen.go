// Package tgen models the traffic generation and measurement tools of the
// paper's testbed: MoonGen as TX/RX on the NUMA-node-1 NIC (with hardware
// PTP timestamping for p2p/loopback latency), and the counting sinks.
//
// Generators run on dedicated node-1 cores, so — as the paper argues for
// its single-server methodology — they consume no SUT resources; their
// cost accounting is pacing only.
package tgen

import (
	"math"
	"sort"

	"repro/internal/nic"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// DefaultBurst is MoonGen's TX burst size.
const DefaultBurst = 32

// imixSizes is the classic IMIX cycle: 7×64B, 4×570B, 1×1518B.
var imixSizes = []int{64, 570, 64, 570, 64, 1518, 64, 570, 64, 570, 64, 64}

// Config describes one generator (one TX port).
type Config struct {
	Name string
	Port *nic.Port
	Pool *pkt.Pool
	Spec pkt.FrameSpec
	// Rate is the offered load; 0 means saturate the line.
	Rate units.BitRate
	// Burst is the TX burst size (default 32).
	Burst int
	// ProbeEvery injects a PTP latency probe at this interval (0 = none).
	ProbeEvery units.Time
	// Flows cycles the synthetic traffic across this many flows
	// (distinct source MAC + UDP source port); 0/1 = the paper's
	// single-flow traffic.
	Flows int
	// ZipfSkew, when > 0 (with Flows > 1 and an RNG), draws each
	// frame's flow from a Zipf distribution with this exponent instead
	// of the round-robin cycle: flow k carries weight 1/(k+1)^skew, the
	// heavy-tailed mix of real traces. 0 keeps the cycle byte-identical.
	ZipfSkew float64
	// RNG drives the Zipf draw (required only when ZipfSkew > 0).
	RNG *sim.RNG
	// IMIX cycles frame sizes through the classic Internet mix
	// (7×64B : 4×570B : 1×1518B) instead of Spec.FrameLen.
	IMIX bool
	// SWTimestamp stamps probes at generation time instead of leaving
	// them for NIC hardware timestamping.
	SWTimestamp bool
}

// Generator is a MoonGen TX thread.
type Generator struct {
	cfg   Config
	sched *sim.Scheduler
	task  *sim.Task

	seq       uint64
	nextProbe units.Time
	nextDue   units.Time // rate-mode pacing

	// tmpls caches one pre-serialized frame image per (frameLen, flow);
	// emitted buffers reference it lazily instead of being built. The
	// single-flow fixed-size common case bypasses the map via lastTmpl.
	tmpls    map[tmplKey]*pkt.Template
	lastKey  tmplKey
	lastTmpl *pkt.Template

	// zipfCDF is the precomputed flow-weight CDF when ZipfSkew is
	// active; nil keeps the round-robin path untouched.
	zipfCDF []float64

	// Sent counts emitted frames; SentProbes the probe subset.
	Sent       int64
	SentProbes int64
}

type tmplKey struct{ frameLen, flow int }

// NewGenerator registers a generator with the scheduler (idle until Start).
func NewGenerator(s *sim.Scheduler, cfg Config) *Generator {
	if cfg.Burst == 0 {
		cfg.Burst = DefaultBurst
	}
	g := &Generator{cfg: cfg, sched: s}
	if cfg.ZipfSkew > 0 && cfg.Flows > 1 && cfg.RNG != nil {
		g.zipfCDF = zipfCDF(cfg.Flows, cfg.ZipfSkew)
	}
	g.task = s.Register(cfg.Name, g)
	return g
}

// zipfCDF precomputes the cumulative weights of a Zipf distribution over
// n flows: flow k has weight 1/(k+1)^s. An explicit CDF plus binary
// search keeps the draw exact, allocation-free, and — unlike
// rejection-based samplers — consuming exactly one RNG value per frame,
// so the random stream's alignment is a pure function of the frame index.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return cdf
}

// zipfFlow draws one flow index from the precomputed CDF.
func (g *Generator) zipfFlow() int {
	u := g.cfg.RNG.Float64()
	return sort.SearchFloat64s(g.zipfCDF, u)
}

// Start schedules the first burst.
func (g *Generator) Start(at units.Time) {
	g.nextDue = at
	g.nextProbe = at + g.cfg.ProbeEvery
	g.sched.WakeAt(g.task, at)
}

// template returns the cached frame image for (frameLen, flow).
func (g *Generator) template(frameLen, flow int) *pkt.Template {
	k := tmplKey{frameLen, flow}
	if k == g.lastKey && g.lastTmpl != nil {
		return g.lastTmpl
	}
	t, ok := g.tmpls[k]
	if !ok {
		spec := g.cfg.Spec
		spec.FrameLen = frameLen
		t = spec.Template(flow)
		if g.tmpls == nil {
			g.tmpls = map[tmplKey]*pkt.Template{}
		}
		g.tmpls[k] = t
	}
	g.lastKey, g.lastTmpl = k, t
	return t
}

// emitOne builds and transmits one frame stamped at time at, reporting
// whether the burst should continue (false: TX ring full). Ordering of the
// sequence counter, IMIX size cycle, flow assignment, and probe marking is
// load-bearing: it fixes the exact byte content and metadata of frame
// g.seq+1 and must not change.
func (g *Generator) emitOne(at units.Time) bool {
	port := g.cfg.Port
	if port.TxFree(at) == 0 {
		return false
	}
	frameLen := g.cfg.Spec.FrameLen
	if g.cfg.IMIX {
		frameLen = imixSizes[g.seq%uint64(len(imixSizes))]
	}
	g.seq++
	flow := 0
	if g.zipfCDF != nil {
		flow = g.zipfFlow()
	} else if g.cfg.Flows > 1 {
		flow = int(g.seq) % g.cfg.Flows
	}
	b := g.cfg.Pool.Get(frameLen)
	b.SetTemplate(g.template(frameLen, flow))
	b.Seq = g.seq
	if g.cfg.ProbeEvery > 0 && at >= g.nextProbe {
		var ts units.Time // 0: the NIC stamps on the wire
		if g.cfg.SWTimestamp {
			ts = at
		}
		pkt.MarkProbe(b, g.seq, ts)
		g.nextProbe = at + g.cfg.ProbeEvery
		g.SentProbes++
	}
	if !port.SendAt(at, b) {
		b.Free()
		return false
	}
	g.Sent++
	return true
}

// Step implements sim.Actor: emit one burst (saturating mode) or one
// CBR-spaced batch (rate mode, as MoonGen paces) and reschedule.
func (g *Generator) Step(now units.Time) (units.Time, bool) {
	port := g.cfg.Port
	if g.cfg.Rate <= 0 {
		// Saturating mode keeps the TX ring topped up so the wire never
		// idles on the doorbell latency (MoonGen queues descriptors
		// ahead of the NIC).
		for i := 0; i < 4*g.cfg.Burst; i++ {
			if !g.emitOne(now) {
				break
			}
		}
		// Return before the queued frames drain so the ring never empties.
		next := now + units.Time(g.cfg.Burst)*port.Rate().WireTime(g.cfg.Spec.FrameLen)/2
		if until := port.BusyUntil(); until > now && until-now < next-now {
			// Ring nearly empty: catch up immediately.
			next = until
		}
		if next <= now {
			next = now + units.Nanosecond
		}
		return next, true
	}
	// Rate mode: constant bit rate. One scheduler step emits up to Burst
	// frames, each stamped with its own CBR due time via SendAt, never past
	// the dispatch deadline: this is bit-identical to one step per frame
	// because the unbatched engine dispatched the generator at exactly
	// these instants (the TX port is touched only by its generator, and
	// everything downstream keys off the frame's stamp, not the clock).
	deadline := g.sched.Deadline()
	for i := 0; i < g.cfg.Burst; i++ {
		due := g.nextDue
		if i > 0 && due > deadline {
			break
		}
		g.emitOne(due)
		g.nextDue += g.cfg.Rate.WireTime(g.cfg.Spec.FrameLen)
		if g.nextDue <= due {
			g.nextDue = due + units.Nanosecond
		}
	}
	return g.nextDue, true
}

// Sink is the RX/measurement side (MoonGen RX thread or FloWatcher): it
// drains a NIC port, counts frames, and records probe round-trip times.
type Sink struct {
	Port *nic.Port

	sched *sim.Scheduler
	task  *sim.Task
	every units.Time

	// Rx counts everything the sink consumed; Hist collects probe RTTs.
	Rx   stats.Counter
	Hist stats.Histogram
	// Capture, when set, observes every consumed frame (pcap dumps).
	Capture func(at units.Time, b *pkt.Buf)
}

// SinkPollInterval is how often the sink drains its port; with a 4096-deep
// ring this never drops at line rate.
const SinkPollInterval = 2 * units.Microsecond

// NewSink registers a sink with the scheduler (idle until Start).
func NewSink(s *sim.Scheduler, name string, port *nic.Port) *Sink {
	k := &Sink{Port: port, sched: s, every: SinkPollInterval}
	k.task = s.Register(name, k)
	return k
}

// Start schedules the first poll.
func (k *Sink) Start(at units.Time) { k.sched.WakeAt(k.task, at) }

// Step implements sim.Actor.
func (k *Sink) Step(now units.Time) (units.Time, bool) {
	var burst [256]*pkt.Buf
	for {
		n := k.Port.RxBurst(now, burst[:])
		if n == 0 {
			break
		}
		for _, b := range burst[:n] {
			k.Rx.Add(1, int64(b.Len()))
			if k.Capture != nil {
				k.Capture(b.Ingress, b)
			}
			if b.Probe {
				if _, tx, ok := pkt.ProbeInfo(b); ok && tx > 0 {
					k.Hist.Add(b.Ingress - tx)
				} else if b.TxStamp > 0 {
					k.Hist.Add(b.Ingress - b.TxStamp)
				}
			}
			b.Free()
		}
		if n < len(burst) {
			break
		}
	}
	return now + k.every, true
}
