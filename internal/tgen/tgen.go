// Package tgen models the traffic generation and measurement tools of the
// paper's testbed: MoonGen as TX/RX on the NUMA-node-1 NIC (with hardware
// PTP timestamping for p2p/loopback latency), and the counting sinks.
//
// Generators run on dedicated node-1 cores, so — as the paper argues for
// its single-server methodology — they consume no SUT resources; their
// cost accounting is pacing only.
package tgen

import (
	"repro/internal/nic"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// DefaultBurst is MoonGen's TX burst size.
const DefaultBurst = 32

// imixSizes is the classic IMIX cycle: 7×64B, 4×570B, 1×1518B.
var imixSizes = []int{64, 570, 64, 570, 64, 1518, 64, 570, 64, 570, 64, 64}

// Config describes one generator (one TX port).
type Config struct {
	Name string
	Port *nic.Port
	Pool *pkt.Pool
	Spec pkt.FrameSpec
	// Rate is the offered load; 0 means saturate the line.
	Rate units.BitRate
	// Burst is the TX burst size (default 32).
	Burst int
	// ProbeEvery injects a PTP latency probe at this interval (0 = none).
	ProbeEvery units.Time
	// Flows cycles the synthetic traffic across this many flows
	// (distinct source MAC + UDP source port); 0/1 = the paper's
	// single-flow traffic.
	Flows int
	// IMIX cycles frame sizes through the classic Internet mix
	// (7×64B : 4×570B : 1×1518B) instead of Spec.FrameLen.
	IMIX bool
	// SWTimestamp stamps probes at generation time instead of leaving
	// them for NIC hardware timestamping.
	SWTimestamp bool
}

// Generator is a MoonGen TX thread.
type Generator struct {
	cfg   Config
	sched *sim.Scheduler
	task  *sim.Task

	seq       uint64
	nextProbe units.Time
	nextDue   units.Time // rate-mode pacing

	// Sent counts emitted frames; SentProbes the probe subset.
	Sent       int64
	SentProbes int64
}

// NewGenerator registers a generator with the scheduler (idle until Start).
func NewGenerator(s *sim.Scheduler, cfg Config) *Generator {
	if cfg.Burst == 0 {
		cfg.Burst = DefaultBurst
	}
	g := &Generator{cfg: cfg, sched: s}
	g.task = s.Register(cfg.Name, g)
	return g
}

// Start schedules the first burst.
func (g *Generator) Start(at units.Time) {
	g.nextDue = at
	g.nextProbe = at + g.cfg.ProbeEvery
	g.sched.WakeAt(g.task, at)
}

// Step implements sim.Actor: emit one burst (saturating mode) or one
// CBR-spaced frame (rate mode, as MoonGen paces) and reschedule.
func (g *Generator) Step(now units.Time) (units.Time, bool) {
	port := g.cfg.Port
	burst := g.cfg.Burst
	if g.cfg.Rate > 0 {
		burst = 1
	} else {
		// Saturating mode keeps the TX ring topped up so the wire never
		// idles on the doorbell latency (MoonGen queues descriptors
		// ahead of the NIC).
		burst = 4 * g.cfg.Burst
	}
	for i := 0; i < burst; i++ {
		if port.TxFree(now) == 0 {
			break
		}
		spec := g.cfg.Spec
		if g.cfg.IMIX {
			spec.FrameLen = imixSizes[g.seq%uint64(len(imixSizes))]
		}
		b := g.cfg.Pool.Get(spec.FrameLen)
		spec.Build(b)
		g.seq++
		b.Seq = g.seq
		if g.cfg.Flows > 1 {
			flow := int(g.seq) % g.cfg.Flows
			pkt.PatchFlow(b, g.cfg.Spec, flow)
		}
		if g.cfg.ProbeEvery > 0 && now >= g.nextProbe {
			var ts units.Time // 0: the NIC stamps on the wire
			if g.cfg.SWTimestamp {
				ts = now
			}
			pkt.MarkProbe(b, g.seq, ts)
			g.nextProbe = now + g.cfg.ProbeEvery
			g.SentProbes++
		}
		if !port.Send(now, b) {
			b.Free()
			break
		}
		g.Sent++
	}
	if g.cfg.Rate <= 0 {
		// Saturating mode: return before the queued frames drain so the
		// ring never empties.
		next := now + units.Time(g.cfg.Burst)*port.Rate().WireTime(g.cfg.Spec.FrameLen)/2
		if until := port.BusyUntil(); until > now && until-now < next-now {
			// Ring nearly empty: catch up immediately.
			next = until
		}
		if next <= now {
			next = now + units.Nanosecond
		}
		return next, true
	}
	// Rate mode: constant bit rate, one frame interval at a time.
	g.nextDue += g.cfg.Rate.WireTime(g.cfg.Spec.FrameLen)
	if g.nextDue <= now {
		g.nextDue = now + units.Nanosecond
	}
	return g.nextDue, true
}

// Sink is the RX/measurement side (MoonGen RX thread or FloWatcher): it
// drains a NIC port, counts frames, and records probe round-trip times.
type Sink struct {
	Port *nic.Port

	sched *sim.Scheduler
	task  *sim.Task
	every units.Time

	// Rx counts everything the sink consumed; Hist collects probe RTTs.
	Rx   stats.Counter
	Hist stats.Histogram
	// Capture, when set, observes every consumed frame (pcap dumps).
	Capture func(at units.Time, b *pkt.Buf)
}

// SinkPollInterval is how often the sink drains its port; with a 4096-deep
// ring this never drops at line rate.
const SinkPollInterval = 2 * units.Microsecond

// NewSink registers a sink with the scheduler (idle until Start).
func NewSink(s *sim.Scheduler, name string, port *nic.Port) *Sink {
	k := &Sink{Port: port, sched: s, every: SinkPollInterval}
	k.task = s.Register(name, k)
	return k
}

// Start schedules the first poll.
func (k *Sink) Start(at units.Time) { k.sched.WakeAt(k.task, at) }

// Step implements sim.Actor.
func (k *Sink) Step(now units.Time) (units.Time, bool) {
	var burst [256]*pkt.Buf
	for {
		n := k.Port.RxBurst(now, burst[:])
		if n == 0 {
			break
		}
		for _, b := range burst[:n] {
			k.Rx.Add(1, int64(b.Len()))
			if k.Capture != nil {
				k.Capture(b.Ingress, b)
			}
			if b.Probe {
				if _, tx, ok := pkt.ProbeInfo(b); ok && tx > 0 {
					k.Hist.Add(b.Ingress - tx)
				} else if b.TxStamp > 0 {
					k.Hist.Add(b.Ingress - b.TxStamp)
				}
			}
			b.Free()
		}
		if n < len(burst) {
			break
		}
	}
	return now + k.every, true
}
