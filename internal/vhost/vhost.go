// Package vhost models a vhost-user virtio network device: the mechanism
// Snabb introduced and DPDK adopted for direct packet exchange between a
// user-space switch and a QEMU guest.
//
// The defining property the paper measures is its copy semantics: the host
// switch reads and writes guest memory, so every crossing of the device
// costs the host core one packet copy plus descriptor handling — the "vhost
// tax" that separates p2v/v2v/loopback results from p2p.
//
// The simulated copy is charged on every crossing; the host-side memmove is
// not. Buffers cross the device by ownership transfer — the same *pkt.Buf
// travels from switch to guest (or back) and only its metadata moves —
// because which Go allocation holds the bytes is not simulation state (see
// DESIGN.md §3.3 for the bit-identity argument).
package vhost

import (
	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/ring"
	"repro/internal/units"
)

// Config sizes a device.
type Config struct {
	Name string
	// QueueLen is the vring depth (default 256, the QEMU default).
	QueueLen int
	// CostScale scales the crossing costs, letting Snabb's independent
	// vhost implementation price differently from DPDK's (default 1.0).
	CostScale float64
	// EnqScale and DeqScale override CostScale per direction when
	// non-zero: EnqScale prices host→guest delivery (copy into guest
	// memory plus notification), DeqScale guest→host retrieval.
	EnqScale, DeqScale float64
	// GuestNotifyDelay is the host→guest availability latency (used
	// descriptor publication + notification); the guest driver sees an
	// enqueued frame only after it elapses.
	GuestNotifyDelay units.Time
}

// DefaultGuestNotifyDelay matches a vhost-user used-ring publication plus
// guest wakeup path.
const DefaultGuestNotifyDelay = 8 * units.Microsecond

// Device is one virtio-net device with a vhost-user backend.
type Device struct {
	cfg Config

	// rxRing carries host→guest frames (the guest's receive queue);
	// txRing carries guest→host frames.
	rxRing, txRing *ring.SPSC

	// HostCopies counts data copies performed by the host core.
	HostCopies int64
}

// New returns a device with empty rings.
func New(cfg Config) *Device {
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 256
	}
	if cfg.CostScale == 0 {
		cfg.CostScale = 1
	}
	if cfg.EnqScale == 0 {
		cfg.EnqScale = cfg.CostScale
	}
	if cfg.DeqScale == 0 {
		cfg.DeqScale = cfg.CostScale
	}
	if cfg.GuestNotifyDelay == 0 {
		cfg.GuestNotifyDelay = DefaultGuestNotifyDelay
	}
	return &Device{
		cfg:    cfg,
		rxRing: ring.New(cfg.QueueLen),
		txRing: ring.New(cfg.QueueLen),
	}
}

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

func scaleBy(c units.Cycles, s float64) units.Cycles {
	if s == 1 {
		return c
	}
	return units.Cycles(float64(c) * s)
}

// enqCost prices one host→guest crossing (copy into guest memory plus
// descriptor handling).
func (d *Device) enqCost(m *cost.Meter, frameLen int) units.Cycles {
	return scaleBy(m.Model.CopyCost(frameLen)+m.Model.VhostDesc, d.cfg.EnqScale)
}

// deqCost prices one guest→host crossing.
func (d *Device) deqCost(m *cost.Meter, frameLen int) units.Cycles {
	return scaleBy(m.Model.CopyCost(frameLen)+m.Model.VhostDesc, d.cfg.DeqScale)
}

// HostEnqueue delivers one frame to the guest at time now: the host core
// pays for copying the frame into guest memory and posting a used
// descriptor; the guest sees it after the notify delay. On success the
// device takes ownership of the buffer; if the vring is full the caller
// keeps ownership.
func (d *Device) HostEnqueue(now units.Time, m *cost.Meter, b *pkt.Buf) bool {
	if d.rxRing.Free() == 0 {
		d.rxRing.Drops++
		return false
	}
	b.AvailAt = now + d.cfg.GuestNotifyDelay
	d.rxRing.Push(b)
	m.Charge(d.enqCost(m, b.Len()))
	d.HostCopies++
	return true
}

// HostEnqueueBurst delivers a batch of frames to the guest, charging the
// whole batch's crossing costs in one pass. Frames the full vring rejects
// are dropped and freed — exactly what a per-frame HostEnqueue loop whose
// caller frees rejected frames produces. Returns the delivered count.
func (d *Device) HostEnqueueBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int {
	avail := now + d.cfg.GuestNotifyDelay
	var total units.Cycles
	sent := 0
	for _, b := range in {
		if d.rxRing.Free() == 0 {
			d.rxRing.Drops++
			b.Free()
			continue
		}
		b.AvailAt = avail
		d.rxRing.Push(b)
		total += d.enqCost(m, b.Len())
		sent++
	}
	if total > 0 {
		m.Charge(total)
	}
	d.HostCopies += int64(sent)
	return sent
}

// HostDequeue takes up to len(out) frames the guest transmitted, charging
// each crossing individually (the reference path; HostDequeueBurst is the
// equivalent one-pass version).
func (d *Device) HostDequeue(m *cost.Meter, out []*pkt.Buf) int {
	n := 0
	for n < len(out) {
		g := d.txRing.Pop()
		if g == nil {
			break
		}
		g.AvailAt = 0
		m.Charge(d.deqCost(m, g.Len()))
		d.HostCopies++
		out[n] = g
		n++
	}
	return n
}

// HostDequeueBurst takes up to len(out) guest-transmitted frames, charging
// the whole batch's crossing costs in one pass. Cycle-identical to
// HostDequeue: the per-frame costs are integers and the meter is additive.
func (d *Device) HostDequeueBurst(m *cost.Meter, out []*pkt.Buf) int {
	n := d.txRing.DrainTo(out)
	if n == 0 {
		return 0
	}
	var total units.Cycles
	for _, g := range out[:n] {
		g.AvailAt = 0
		total += d.deqCost(m, g.Len())
	}
	m.Charge(total)
	d.HostCopies += int64(n)
	return n
}

// GuestSend posts one guest frame for transmission (guest driver side: pure
// descriptor work, no copy — the buffer is guest memory). On failure the
// caller keeps ownership.
func (d *Device) GuestSend(m *cost.Meter, b *pkt.Buf) bool {
	if !d.txRing.Push(b) {
		return false
	}
	m.Charge(m.Model.VhostDesc)
	return true
}

// GuestSendBurst posts a batch of guest frames, charging descriptor work
// once for the batch. Frames the full vring rejects are dropped and freed
// (matching a per-frame GuestSend loop whose caller frees failures).
// Returns the accepted count.
func (d *Device) GuestSendBurst(m *cost.Meter, in []*pkt.Buf) int {
	n := d.txRing.PushBurst(in)
	for _, b := range in[n:] {
		d.txRing.Drops++
		b.Free()
	}
	if n > 0 {
		m.Charge(units.Cycles(n) * m.Model.VhostDesc)
	}
	return n
}

// GuestSendSpace reports how many frames GuestSendBurst can currently
// accept without dropping.
func (d *Device) GuestSendSpace() int { return d.txRing.Free() }

// GuestRecv takes up to len(out) received frames visible at time now
// (guest driver side).
func (d *Device) GuestRecv(now units.Time, m *cost.Meter, out []*pkt.Buf) int {
	n := d.rxRing.DrainVisibleTo(now, out)
	if n > 0 {
		m.Charge(units.Cycles(n) * m.Model.VhostDesc)
	}
	return n
}

// GuestPending returns the number of frames awaiting the guest.
func (d *Device) GuestPending() int { return d.rxRing.Len() }

// HostPending returns the number of frames awaiting the host.
func (d *Device) HostPending() int { return d.txRing.Len() }

// RxDrops returns frames lost because the guest receive ring was full.
func (d *Device) RxDrops() int64 { return d.rxRing.Drops }

// TxDrops returns frames lost because the guest transmit ring was full.
func (d *Device) TxDrops() int64 { return d.txRing.Drops }
