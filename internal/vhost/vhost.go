// Package vhost models a vhost-user virtio network device: the mechanism
// Snabb introduced and DPDK adopted for direct packet exchange between a
// user-space switch and a QEMU guest.
//
// The defining property the paper measures is its copy semantics: the host
// switch reads and writes guest memory, so every crossing of the device
// costs the host core one packet copy plus descriptor handling — the "vhost
// tax" that separates p2v/v2v/loopback results from p2p.
package vhost

import (
	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/ring"
	"repro/internal/units"
)

// Config sizes a device.
type Config struct {
	Name string
	// QueueLen is the vring depth (default 256, the QEMU default).
	QueueLen int
	// GuestPool allocates the guest-memory buffers; HostPool the host
	// mbufs produced when dequeuing.
	GuestPool, HostPool *pkt.Pool
	// CostScale scales the crossing costs, letting Snabb's independent
	// vhost implementation price differently from DPDK's (default 1.0).
	CostScale float64
	// EnqScale and DeqScale override CostScale per direction when
	// non-zero: EnqScale prices host→guest delivery (copy into guest
	// memory plus notification), DeqScale guest→host retrieval.
	EnqScale, DeqScale float64
	// GuestNotifyDelay is the host→guest availability latency (used
	// descriptor publication + notification); the guest driver sees an
	// enqueued frame only after it elapses.
	GuestNotifyDelay units.Time
}

// DefaultGuestNotifyDelay matches a vhost-user used-ring publication plus
// guest wakeup path.
const DefaultGuestNotifyDelay = 8 * units.Microsecond

// Device is one virtio-net device with a vhost-user backend.
type Device struct {
	cfg Config

	// rxRing carries host→guest frames (the guest's receive queue);
	// txRing carries guest→host frames.
	rxRing, txRing *ring.SPSC

	// HostCopies counts data copies performed by the host core.
	HostCopies int64
}

// New returns a device with empty rings.
func New(cfg Config) *Device {
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 256
	}
	if cfg.CostScale == 0 {
		cfg.CostScale = 1
	}
	if cfg.EnqScale == 0 {
		cfg.EnqScale = cfg.CostScale
	}
	if cfg.DeqScale == 0 {
		cfg.DeqScale = cfg.CostScale
	}
	if cfg.GuestNotifyDelay == 0 {
		cfg.GuestNotifyDelay = DefaultGuestNotifyDelay
	}
	if cfg.GuestPool == nil || cfg.HostPool == nil {
		panic("vhost: missing pools")
	}
	return &Device{
		cfg:    cfg,
		rxRing: ring.New(cfg.QueueLen),
		txRing: ring.New(cfg.QueueLen),
	}
}

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

func scaleBy(c units.Cycles, s float64) units.Cycles {
	if s == 1 {
		return c
	}
	return units.Cycles(float64(c) * s)
}

// HostEnqueue delivers one frame to the guest at time now: the host core
// copies the frame into guest memory and posts a used descriptor; the
// guest sees it after the notify delay. On success the original buffer is
// freed and true is returned; if the vring is full the caller keeps
// ownership.
func (d *Device) HostEnqueue(now units.Time, m *cost.Meter, b *pkt.Buf) bool {
	if d.rxRing.Free() == 0 {
		d.rxRing.Drops++
		return false
	}
	g := d.cfg.GuestPool.Clone(b)
	g.AvailAt = now + d.cfg.GuestNotifyDelay
	d.rxRing.Push(g)
	m.Charge(scaleBy(m.Model.CopyCost(b.Len())+m.Model.VhostDesc, d.cfg.EnqScale))
	d.HostCopies++
	b.Free()
	return true
}

// HostDequeue takes up to len(out) frames the guest transmitted, copying
// each into a host mbuf. Costs are charged to the host core.
func (d *Device) HostDequeue(m *cost.Meter, out []*pkt.Buf) int {
	n := 0
	for n < len(out) {
		g := d.txRing.Pop()
		if g == nil {
			break
		}
		h := d.cfg.HostPool.Clone(g)
		h.AvailAt = 0
		m.Charge(scaleBy(m.Model.CopyCost(g.Len())+m.Model.VhostDesc, d.cfg.DeqScale))
		d.HostCopies++
		g.Free()
		out[n] = h
		n++
	}
	return n
}

// GuestSend posts one guest frame for transmission (guest driver side: pure
// descriptor work, no copy — the buffer is guest memory). On failure the
// caller keeps ownership.
func (d *Device) GuestSend(m *cost.Meter, b *pkt.Buf) bool {
	if !d.txRing.Push(b) {
		return false
	}
	m.Charge(m.Model.VhostDesc)
	return true
}

// GuestRecv takes up to len(out) received frames visible at time now
// (guest driver side).
func (d *Device) GuestRecv(now units.Time, m *cost.Meter, out []*pkt.Buf) int {
	n := 0
	for n < len(out) {
		head := d.rxRing.Peek()
		if head == nil || head.AvailAt > now {
			break
		}
		out[n] = d.rxRing.Pop()
		n++
	}
	if n > 0 {
		m.Charge(units.Cycles(n) * m.Model.VhostDesc)
	}
	return n
}

// GuestPending returns the number of frames awaiting the guest.
func (d *Device) GuestPending() int { return d.rxRing.Len() }

// HostPending returns the number of frames awaiting the host.
func (d *Device) HostPending() int { return d.txRing.Len() }

// RxDrops returns frames lost because the guest receive ring was full.
func (d *Device) RxDrops() int64 { return d.rxRing.Drops }

// TxDrops returns frames lost because the guest transmit ring was full.
func (d *Device) TxDrops() int64 { return d.txRing.Drops }
