package vhost

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/units"
)

func newDev(cfg Config) (*Device, *pkt.Pool, *pkt.Pool) {
	host, guest := pkt.NewPool(2048), pkt.NewPool(2048)
	cfg.GuestPool, cfg.HostPool = guest, host
	return New(cfg), host, guest
}

func TestHostEnqueueCopiesIntoGuestMemory(t *testing.T) {
	dev, host, guest := newDev(Config{Name: "v0"})
	m := cost.NewMeter(cost.Default(), nil)
	b := host.Get(64)
	for i := range b.Bytes() {
		b.Bytes()[i] = byte(i)
	}
	if !dev.HostEnqueue(0, m, b) {
		t.Fatal("enqueue failed")
	}
	// The original host buffer was freed; the guest holds a copy.
	if host.Live() != 0 || guest.Live() != 1 {
		t.Fatalf("host live=%d guest live=%d", host.Live(), guest.Live())
	}
	if dev.HostCopies != 1 {
		t.Fatalf("copies = %d", dev.HostCopies)
	}
	if m.Pending() == 0 {
		t.Fatal("copy charged nothing")
	}
}

func TestGuestNotifyDelayGatesVisibility(t *testing.T) {
	dev, host, _ := newDev(Config{Name: "v0", GuestNotifyDelay: 5 * units.Microsecond})
	m := cost.NewMeter(cost.Default(), nil)
	dev.HostEnqueue(0, m, host.Get(64))
	var out [4]*pkt.Buf
	if n := dev.GuestRecv(2*units.Microsecond, m, out[:]); n != 0 {
		t.Fatalf("frame visible before notify delay: %d", n)
	}
	if n := dev.GuestRecv(6*units.Microsecond, m, out[:]); n != 1 {
		t.Fatalf("frame not visible after delay: %d", n)
	}
	out[0].Free()
}

func TestVringOverflowDrops(t *testing.T) {
	dev, host, _ := newDev(Config{Name: "v0", QueueLen: 4})
	m := cost.NewMeter(cost.Default(), nil)
	accepted := 0
	for i := 0; i < 10; i++ {
		b := host.Get(64)
		if dev.HostEnqueue(0, m, b) {
			accepted++
		} else {
			b.Free()
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted = %d, want ring size", accepted)
	}
	if dev.RxDrops() != 6 {
		t.Fatalf("drops = %d", dev.RxDrops())
	}
	if host.Live() != 0 {
		t.Fatalf("host buffers leaked: %d", host.Live())
	}
}

func TestGuestSendHostDequeue(t *testing.T) {
	dev, host, guest := newDev(Config{Name: "v0"})
	gm := cost.NewMeter(cost.Default(), nil)
	g := guest.Get(128)
	g.Seq = 42
	if !dev.GuestSend(gm, g) {
		t.Fatal("guest send failed")
	}
	if dev.HostPending() != 1 {
		t.Fatal("host pending wrong")
	}
	hm := cost.NewMeter(cost.Default(), nil)
	var out [4]*pkt.Buf
	if n := dev.HostDequeue(hm, out[:]); n != 1 {
		t.Fatalf("dequeue = %d", n)
	}
	if out[0].Seq != 42 || out[0].Len() != 128 {
		t.Fatal("payload mismatch")
	}
	// Dequeue copies guest→host and frees guest memory.
	if guest.Live() != 0 || host.Live() != 1 {
		t.Fatalf("guest live=%d host live=%d", guest.Live(), host.Live())
	}
	if hm.Pending() == 0 {
		t.Fatal("dequeue copy charged nothing")
	}
	out[0].Free()
}

func TestCostScaleDirections(t *testing.T) {
	cheap, _, _ := newDev(Config{Name: "a", CostScale: 1})
	costly, _, _ := newDev(Config{Name: "b", EnqScale: 2, DeqScale: 0.5})

	chargeEnq := func(d *Device) units.Cycles {
		m := cost.NewMeter(cost.Default(), nil)
		b := d.cfg.HostPool.Get(64)
		d.HostEnqueue(0, m, b)
		return m.Pending()
	}
	if 2*chargeEnq(cheap) != chargeEnq(costly) {
		t.Fatalf("enq scale: base=%d scaled=%d", chargeEnq(cheap), chargeEnq(costly))
	}
}

func TestCopyCostGrowsWithFrameSize(t *testing.T) {
	dev, host, _ := newDev(Config{Name: "v0"})
	charge := func(size int) units.Cycles {
		m := cost.NewMeter(cost.Default(), nil)
		dev.HostEnqueue(0, m, host.Get(size))
		return m.Pending()
	}
	if charge(64) >= charge(1024) {
		t.Fatal("1024B crossing not costlier than 64B")
	}
}

func TestMissingPoolsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{Name: "bad"})
}
