package vhost

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/units"
)

func TestHostEnqueueTransfersOwnership(t *testing.T) {
	dev := New(Config{Name: "v0"})
	pool := pkt.NewPool(2048)
	m := cost.NewMeter(cost.Default(), nil)
	b := pool.Get(64)
	b.Seq = 9
	if !dev.HostEnqueue(0, m, b) {
		t.Fatal("enqueue failed")
	}
	// The buffer crosses by ownership transfer: no clone, no free — the
	// same *Buf comes out the guest side, only the simulated copy is
	// charged.
	if pool.Live() != 1 {
		t.Fatalf("live = %d, want the transferred buffer", pool.Live())
	}
	if dev.HostCopies != 1 {
		t.Fatalf("copies = %d", dev.HostCopies)
	}
	if m.Pending() == 0 {
		t.Fatal("copy charged nothing")
	}
	var out [4]*pkt.Buf
	if n := dev.GuestRecv(units.Second, m, out[:]); n != 1 || out[0] != b {
		t.Fatalf("guest did not receive the transferred buffer (n=%d)", n)
	}
	if out[0].Seq != 9 {
		t.Fatal("metadata lost in transfer")
	}
	out[0].Free()
}

func TestGuestNotifyDelayGatesVisibility(t *testing.T) {
	const delay = 5 * units.Microsecond
	dev := New(Config{Name: "v0", GuestNotifyDelay: delay})
	pool := pkt.NewPool(2048)
	m := cost.NewMeter(cost.Default(), nil)
	dev.HostEnqueue(0, m, pool.Get(64))
	var out [4]*pkt.Buf
	if n := dev.GuestRecv(2*units.Microsecond, m, out[:]); n != 0 {
		t.Fatalf("frame visible before notify delay: %d", n)
	}
	// Exact boundary: a frame whose AvailAt equals now is visible.
	if n := dev.GuestRecv(delay-units.Nanosecond, m, out[:]); n != 0 {
		t.Fatalf("frame visible 1ns before the boundary: %d", n)
	}
	if n := dev.GuestRecv(delay, m, out[:]); n != 1 {
		t.Fatalf("frame not visible at the exact boundary: %d", n)
	}
	out[0].Free()
}

func TestVringOverflowDrops(t *testing.T) {
	dev := New(Config{Name: "v0", QueueLen: 4})
	pool := pkt.NewPool(2048)
	m := cost.NewMeter(cost.Default(), nil)
	accepted := 0
	for i := 0; i < 10; i++ {
		b := pool.Get(64)
		if dev.HostEnqueue(0, m, b) {
			accepted++
		} else {
			b.Free()
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted = %d, want ring size", accepted)
	}
	if dev.RxDrops() != 6 {
		t.Fatalf("drops = %d", dev.RxDrops())
	}
	// Accepted frames live on in the vring; rejected ones went back.
	if pool.Live() != 4 {
		t.Fatalf("live = %d, want the 4 enqueued frames", pool.Live())
	}
}

func TestBurstEnqueueBackpressure(t *testing.T) {
	dev := New(Config{Name: "v0", QueueLen: 4})
	pool := pkt.NewPool(2048)
	m := cost.NewMeter(cost.Default(), nil)
	in := make([]*pkt.Buf, 10)
	for i := range in {
		in[i] = pool.Get(64)
	}
	if n := dev.HostEnqueueBurst(0, m, in); n != 4 {
		t.Fatalf("burst enqueue = %d, want ring size", n)
	}
	if dev.RxDrops() != 6 {
		t.Fatalf("drops = %d", dev.RxDrops())
	}
	if dev.HostCopies != 4 {
		t.Fatalf("copies = %d, rejects must not be charged as copies", dev.HostCopies)
	}
	// The burst frees rejects itself (unlike per-frame HostEnqueue, whose
	// caller keeps ownership on failure).
	if pool.Live() != 4 {
		t.Fatalf("live = %d, rejects leaked", pool.Live())
	}
}

func TestGuestSendHostDequeue(t *testing.T) {
	dev := New(Config{Name: "v0"})
	pool := pkt.NewPool(2048)
	gm := cost.NewMeter(cost.Default(), nil)
	g := pool.Get(128)
	g.Seq = 42
	if !dev.GuestSend(gm, g) {
		t.Fatal("guest send failed")
	}
	if dev.HostPending() != 1 {
		t.Fatal("host pending wrong")
	}
	hm := cost.NewMeter(cost.Default(), nil)
	var out [4]*pkt.Buf
	if n := dev.HostDequeue(hm, out[:]); n != 1 {
		t.Fatalf("dequeue = %d", n)
	}
	if out[0] != g || out[0].Seq != 42 || out[0].Len() != 128 {
		t.Fatal("transferred buffer mismatch")
	}
	if hm.Pending() == 0 {
		t.Fatal("dequeue copy charged nothing")
	}
	out[0].Free()
	if pool.Live() != 0 {
		t.Fatalf("leak: %d live", pool.Live())
	}
}

// TestPerFrameVsBurstEquivalence drives two identical devices — one with
// the per-frame reference calls, one with the burst calls — through the
// same overloaded traffic and requires identical charges, copies, drops,
// and frame order (the bit-identity contract of the fast path).
func TestPerFrameVsBurstEquivalence(t *testing.T) {
	const queue, offered = 8, 13
	mkFrames := func(pool *pkt.Pool) []*pkt.Buf {
		in := make([]*pkt.Buf, offered)
		for i := range in {
			in[i] = pool.Get(64 + i*17)
			in[i].Seq = uint64(i + 1)
		}
		return in
	}

	// Host→guest direction.
	refDev, refPool := New(Config{Name: "ref", QueueLen: queue}), pkt.NewPool(2048)
	refM := cost.NewMeter(cost.Default(), nil)
	for _, b := range mkFrames(refPool) {
		if !refDev.HostEnqueue(units.Microsecond, refM, b) {
			b.Free()
		}
	}
	optDev, optPool := New(Config{Name: "opt", QueueLen: queue}), pkt.NewPool(2048)
	optM := cost.NewMeter(cost.Default(), nil)
	optDev.HostEnqueueBurst(units.Microsecond, optM, mkFrames(optPool))

	if refM.Pending() != optM.Pending() {
		t.Fatalf("enqueue charges diverge: ref=%d opt=%d", refM.Pending(), optM.Pending())
	}
	if refDev.HostCopies != optDev.HostCopies || refDev.RxDrops() != optDev.RxDrops() {
		t.Fatalf("enqueue accounting diverges: copies %d/%d drops %d/%d",
			refDev.HostCopies, optDev.HostCopies, refDev.RxDrops(), optDev.RxDrops())
	}
	var refOut, optOut [queue]*pkt.Buf
	rn := refDev.GuestRecv(units.Second, refM, refOut[:])
	on := optDev.GuestRecv(units.Second, optM, optOut[:])
	if rn != on {
		t.Fatalf("delivered counts diverge: %d vs %d", rn, on)
	}
	for i := 0; i < rn; i++ {
		if refOut[i].Seq != optOut[i].Seq || refOut[i].Len() != optOut[i].Len() {
			t.Fatalf("frame %d diverges: seq %d/%d len %d/%d",
				i, refOut[i].Seq, optOut[i].Seq, refOut[i].Len(), optOut[i].Len())
		}
	}

	// Guest→host direction, reusing the delivered frames.
	refGM, optGM := cost.NewMeter(cost.Default(), nil), cost.NewMeter(cost.Default(), nil)
	for _, b := range refOut[:rn] {
		if !refDev.GuestSend(refGM, b) {
			b.Free()
		}
	}
	optDev.GuestSendBurst(optGM, append([]*pkt.Buf(nil), optOut[:on]...))
	if refGM.Pending() != optGM.Pending() {
		t.Fatalf("guest send charges diverge: ref=%d opt=%d", refGM.Pending(), optGM.Pending())
	}
	refHM, optHM := cost.NewMeter(cost.Default(), nil), cost.NewMeter(cost.Default(), nil)
	var refBack, optBack [queue]*pkt.Buf
	rb := refDev.HostDequeue(refHM, refBack[:])
	ob := optDev.HostDequeueBurst(optHM, optBack[:])
	if rb != ob || refHM.Pending() != optHM.Pending() {
		t.Fatalf("dequeue diverges: n %d/%d charge %d/%d", rb, ob, refHM.Pending(), optHM.Pending())
	}
	for i := 0; i < rb; i++ {
		if refBack[i].Seq != optBack[i].Seq {
			t.Fatalf("dequeue order diverges at %d: %d vs %d", i, refBack[i].Seq, optBack[i].Seq)
		}
		refBack[i].Free()
		optBack[i].Free()
	}
}

func TestCostScaleDirections(t *testing.T) {
	cheap := New(Config{Name: "a", CostScale: 1})
	costly := New(Config{Name: "b", EnqScale: 2, DeqScale: 0.5})
	pool := pkt.NewPool(2048)

	chargeEnq := func(d *Device) units.Cycles {
		m := cost.NewMeter(cost.Default(), nil)
		d.HostEnqueue(0, m, pool.Get(64))
		return m.Pending()
	}
	if 2*chargeEnq(cheap) != chargeEnq(costly) {
		t.Fatalf("enq scale: base=%d scaled=%d", chargeEnq(cheap), chargeEnq(costly))
	}
}

func TestCopyCostGrowsWithFrameSize(t *testing.T) {
	dev := New(Config{Name: "v0"})
	pool := pkt.NewPool(2048)
	charge := func(size int) units.Cycles {
		m := cost.NewMeter(cost.Default(), nil)
		dev.HostEnqueue(0, m, pool.Get(size))
		return m.Pending()
	}
	if charge(64) >= charge(1024) {
		t.Fatal("1024B crossing not costlier than 64B")
	}
}
