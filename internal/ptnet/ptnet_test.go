package ptnet

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/cpu"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestZeroCopyBothDirections(t *testing.T) {
	p := New(Config{Name: "pt0"})
	pool := pkt.NewPool(2048)
	hm := cost.NewMeter(cost.Default(), nil)
	gm := cost.NewMeter(cost.Default(), nil)

	h := pool.Get(64)
	if !p.HostSend(hm, h) {
		t.Fatal("host send failed")
	}
	var out [1]*pkt.Buf
	if p.GuestRecv(gm, out[:]) != 1 || out[0] != h {
		t.Fatal("guest did not receive the same buffer")
	}
	if !p.GuestSend(0, gm, out[0]) {
		t.Fatal("guest send failed")
	}
	if p.HostRecv(hm, out[:]) != 1 || out[0] != h {
		t.Fatal("host did not receive the same buffer")
	}
	out[0].Free()
	// Descriptor-only costs: cheaper than any copy.
	if hm.Pending() >= cost.Default().CopyCost(64) {
		t.Fatalf("ptnet host cost %d not below a copy", hm.Pending())
	}
}

func TestRingOverflow(t *testing.T) {
	p := New(Config{Name: "pt0", Slots: 2})
	pool := pkt.NewPool(2048)
	m := cost.NewMeter(cost.Default(), nil)
	ok := 0
	for i := 0; i < 5; i++ {
		b := pool.Get(64)
		if p.HostSend(m, b) {
			ok++
		} else {
			b.Free()
		}
	}
	if ok != 2 || p.Drops() != 3 {
		t.Fatalf("ok=%d drops=%d", ok, p.Drops())
	}
}

func TestGuestSendWakesHost(t *testing.T) {
	s := sim.NewScheduler()
	p := New(Config{Name: "pt0", NotifyDelay: 3 * units.Microsecond})
	pool := pkt.NewPool(2048)

	var served int
	core := cpu.NewIRQCore(s, "host", cost.NewMeter(cost.Default(), sim.NewRNG(1)),
		func(now units.Time, m *cost.Meter) bool {
			var out [8]*pkt.Buf
			n := p.HostRecv(m, out[:])
			for _, b := range out[:n] {
				b.Free()
			}
			served += n
			return n > 0
		})
	p.BindHostIRQ(core)

	gm := cost.NewMeter(cost.Default(), nil)
	if !p.GuestSend(0, gm, pool.Get(64)) {
		t.Fatal("send failed")
	}
	s.RunUntil(units.Millisecond)
	if served != 1 {
		t.Fatalf("served = %d", served)
	}
	if core.Wakeups != 1 {
		t.Fatalf("wakeups = %d", core.Wakeups)
	}
}

func TestPendingCounts(t *testing.T) {
	p := New(Config{Name: "pt0"})
	pool := pkt.NewPool(2048)
	m := cost.NewMeter(cost.Default(), nil)
	p.HostSend(m, pool.Get(64))
	p.HostSend(m, pool.Get(64))
	if p.GuestPending() != 2 || p.HostPending() != 0 {
		t.Fatalf("pending = %d, %d", p.GuestPending(), p.HostPending())
	}
}
