// Package ptnet models the netmap passthrough device that VALE uses for VM
// networking: the guest maps the host's netmap rings directly, so frames
// cross the host/guest boundary with descriptor work only — no copies.
// (The price of this efficiency, as the paper notes, is weaker host/VM
// memory isolation; that trade-off is metadata here, not mechanism.)
package ptnet

import (
	"repro/internal/cost"
	"repro/internal/cpu"
	"repro/internal/pkt"
	"repro/internal/ring"
	"repro/internal/units"
)

// Config sizes a port.
type Config struct {
	Name string
	// Slots is the netmap ring depth (default 1024, netmap's default).
	Slots int
	// NotifyDelay is the doorbell-to-wakeup latency for the host-side
	// interrupt when the guest posts frames.
	NotifyDelay units.Time
}

// Port is one ptnet device: a pair of shared netmap rings.
type Port struct {
	cfg Config

	toGuest, toHost *ring.SPSC

	hostIRQ  *cpu.IRQCore
	irqArmed bool
}

// New returns an empty ptnet port.
func New(cfg Config) *Port {
	if cfg.Slots == 0 {
		cfg.Slots = 1024
	}
	return &Port{
		cfg:     cfg,
		toGuest: ring.New(cfg.Slots),
		toHost:  ring.New(cfg.Slots),
	}
}

// Name returns the port name.
func (p *Port) Name() string { return p.cfg.Name }

// BindHostIRQ makes guest transmissions wake the (interrupt-driven) host
// core after the notify delay; the core re-arms the doorbell when it goes
// back to sleep.
func (p *Port) BindHostIRQ(c *cpu.IRQCore) {
	p.hostIRQ = c
	c.AddSleeper(p.ReArm)
}

func (p *Port) notify(now units.Time) {
	if p.hostIRQ == nil || p.irqArmed {
		return
	}
	p.irqArmed = true
	p.hostIRQ.Wake(now + p.cfg.NotifyDelay)
}

// ReArm re-enables the host-side doorbell after the host exits its poll
// loop, re-firing immediately if guest frames are already waiting.
func (p *Port) ReArm(now units.Time) {
	if p.hostIRQ == nil {
		return
	}
	p.irqArmed = false
	if p.toHost.Len() > 0 {
		p.notify(now)
	}
}

// HostSend passes one frame to the guest, zero-copy. On failure the caller
// keeps ownership.
func (p *Port) HostSend(m *cost.Meter, b *pkt.Buf) bool {
	if !p.toGuest.Push(b) {
		return false
	}
	m.Charge(m.Model.PtnetDesc)
	return true
}

// HostSendBurst passes a batch of frames to the guest, charging descriptor
// work once. Frames the full ring rejects are dropped and freed (matching
// a per-frame HostSend loop whose caller frees failures). Returns the
// accepted count.
func (p *Port) HostSendBurst(m *cost.Meter, in []*pkt.Buf) int {
	n := p.toGuest.PushBurst(in)
	for _, b := range in[n:] {
		p.toGuest.Drops++
		b.Free()
	}
	if n > 0 {
		m.Charge(units.Cycles(n) * m.Model.PtnetDesc)
	}
	return n
}

// HostRecv takes up to len(out) guest-transmitted frames, zero-copy.
func (p *Port) HostRecv(m *cost.Meter, out []*pkt.Buf) int {
	n := p.toHost.DrainTo(out)
	if n > 0 {
		m.Charge(units.Cycles(n) * m.Model.PtnetDesc)
	}
	return n
}

// GuestSend posts one frame toward the host. On failure the caller keeps
// ownership. now is needed to schedule the host notify.
func (p *Port) GuestSend(now units.Time, m *cost.Meter, b *pkt.Buf) bool {
	if !p.toHost.Push(b) {
		return false
	}
	m.Charge(m.Model.PtnetDesc)
	p.notify(now)
	return true
}

// GuestSendBurst posts a batch of frames toward the host, charging
// descriptor work once and ringing the doorbell once (the notify is
// already level-triggered, so one ring per burst is what a per-frame loop
// produced anyway). Frames the full ring rejects are dropped and freed.
// Returns the accepted count.
func (p *Port) GuestSendBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int {
	n := p.toHost.PushBurst(in)
	for _, b := range in[n:] {
		p.toHost.Drops++
		b.Free()
	}
	if n > 0 {
		m.Charge(units.Cycles(n) * m.Model.PtnetDesc)
		p.notify(now)
	}
	return n
}

// GuestSendSpace reports how many frames GuestSendBurst can currently
// accept without dropping.
func (p *Port) GuestSendSpace() int { return p.toHost.Free() }

// GuestRecv takes up to len(out) frames from the host.
func (p *Port) GuestRecv(m *cost.Meter, out []*pkt.Buf) int {
	n := p.toGuest.DrainTo(out)
	if n > 0 {
		m.Charge(units.Cycles(n) * m.Model.PtnetDesc)
	}
	return n
}

// GuestPending returns frames awaiting the guest.
func (p *Port) GuestPending() int { return p.toGuest.Len() }

// HostPending returns frames awaiting the host.
func (p *Port) HostPending() int { return p.toHost.Len() }

// Drops returns frames lost to full rings in either direction.
func (p *Port) Drops() int64 { return p.toGuest.Drops + p.toHost.Drops }
