package multicore

import (
	"repro/internal/cost"
	"repro/internal/flowtab"
	"repro/internal/nic"
	"repro/internal/pkt"
	"repro/internal/ring"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// rssViews builds the per-core views of one port under RSS dispatch.
//
// A physical port with q hardware queues (q = cores under PolicyFlowHash,
// the node's declared queue count otherwise) is demuxed: the NIC hashes
// each flow onto a queue — for free, it is hardware — and each queue is
// owned by one core, which pays the usual PMD receive prices when it
// drains it. Single-queue ports and guest interfaces go whole to one
// owner core. Non-owning cores get a transmit-only passthrough, since any
// core's instance may need to forward to any port.
func (f *Fleet) rssViews(idx int, p switchdef.DevPort) []switchdef.DevPort {
	views := make([]switchdef.DevPort, f.opt.Cores)
	if pp, ok := p.(*switchdef.PhysPort); ok && !pp.Unpriced {
		nq := 1
		if f.opt.Policy == PolicyFlowHash {
			nq = f.opt.Cores
		} else if pp.Queues > 1 {
			nq = pp.Queues
			if nq > f.opt.Cores {
				nq = f.opt.Cores
			}
		}
		if nq > 1 {
			d := newDemux(pp.Port, nq, f.opt.QueueCap)
			for j := range d.owners {
				if f.opt.Policy == PolicyFlowHash {
					d.owners[j] = j
				} else {
					d.owners[j] = f.srcOrdinal % f.opt.Cores
					f.srcOrdinal++
				}
			}
			f.demuxes = append(f.demuxes, d)
			f.rxOwner = append(f.rxOwner, -1)
			for k := range views {
				var qs []int
				for j, o := range d.owners {
					if o == k {
						qs = append(qs, j)
					}
				}
				if len(qs) == 0 {
					views[k] = f.wrapRemote(k, &txOnlyPort{inner: pp})
					continue
				}
				views[k] = f.wrapRemote(k, &rssQueuePort{phys: pp, d: d, queues: qs})
			}
			return views
		}
	}
	var owner int
	if f.opt.Policy == PolicyFlowHash && p.Kind() != switchdef.PhysKind {
		owner = f.guestOrdinal % f.opt.Cores
		f.guestOrdinal++
	} else {
		owner = f.srcOrdinal % f.opt.Cores
		f.srcOrdinal++
	}
	f.rxOwner = append(f.rxOwner, owner)
	for k := range views {
		if k == owner {
			views[k] = f.wrapRemote(k, p)
		} else {
			views[k] = f.wrapRemote(k, &txOnlyPort{inner: p})
		}
	}
	return views
}

// wrapRemote adds the cross-socket access tax when core k does not live
// on the device's home socket (devices and packet memory sit on socket 0,
// the paper's Fig. 3 placement).
func (f *Fleet) wrapRemote(k int, p switchdef.DevPort) switchdef.DevPort {
	if !f.opt.NUMA.Remote(k, 0) {
		return p
	}
	return &remotePort{inner: p}
}

// txOnlyPort is a non-owning core's view of a port: transmit passes
// through to the device, receive always comes up empty (the owner core
// polls it), at no cost — real PMDs do not poll queues they do not own.
type txOnlyPort struct {
	inner switchdef.DevPort
}

func (p *txOnlyPort) Kind() switchdef.PortKind { return p.inner.Kind() }
func (p *txOnlyPort) Name() string             { return p.inner.Name() }

func (p *txOnlyPort) RxBurst(now units.Time, m *cost.Meter, out []*pkt.Buf) int { return 0 }

func (p *txOnlyPort) TxBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int {
	return p.inner.TxBurst(now, m, in)
}

func (p *txOnlyPort) Pending(now units.Time) int { return 0 }

// remotePort charges the NUMA remote-access tax per frame on top of the
// wrapped view's own prices: descriptor and payload touches cross the
// socket interconnect.
type remotePort struct {
	inner switchdef.DevPort
}

func (p *remotePort) Kind() switchdef.PortKind { return p.inner.Kind() }
func (p *remotePort) Name() string             { return p.inner.Name() }

func (p *remotePort) RxBurst(now units.Time, m *cost.Meter, out []*pkt.Buf) int {
	n := p.inner.RxBurst(now, m, out)
	for _, b := range out[:n] {
		m.Charge(m.Model.RemoteCost(b.Len()))
	}
	return n
}

func (p *remotePort) TxBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int {
	for _, b := range in {
		m.Charge(m.Model.RemoteCost(b.Len()))
	}
	return p.inner.TxBurst(now, m, in)
}

func (p *remotePort) Pending(now units.Time) int { return p.inner.Pending(now) }

// demux models a multi-queue NIC: arriving frames are hashed onto
// per-queue rings by the hardware (free), and each queue is drained by
// its owning core at the usual PMD prices. A full queue drops, as a real
// NIC queue would.
type demux struct {
	port   *nic.Port
	queues []*ring.SPSC
	owners []int // queue → owning core

	// memo caches flowHash per packet template: frames sharing a template
	// are byte-identical, so their RSS hash is too.
	memo *flowtab.Map[uint64, uint64]

	scratch [scratchLen]*pkt.Buf
}

func newDemux(port *nic.Port, nq, qcap int) *demux {
	d := &demux{port: port, owners: make([]int, nq), memo: flowtab.NewMap[uint64, uint64](16)}
	for i := 0; i < nq; i++ {
		d.queues = append(d.queues, ring.New(qcap))
	}
	return d
}

// pump moves every frame pending on the wire at `now` into its queue.
// Whichever owner core polls first does the (free) classification for
// all queues — the simulation's stand-in for the NIC doing it on arrival.
func (d *demux) pump(now units.Time) {
	noMemo := switchdef.MemoDisabled()
	for {
		n := d.port.RxBurst(now, d.scratch[:])
		if n == 0 {
			return
		}
		for _, b := range d.scratch[:n] {
			var h uint64
			if t := b.Template(); t != nil && !noMemo {
				id := t.ID()
				var ok bool
				if h, ok = d.memo.Get(flowtab.HashUint64(id), id); !ok {
					h = flowHash(b)
					d.memo.Put(flowtab.HashUint64(id), id, h)
				}
			} else {
				h = flowHash(b)
			}
			q := d.queues[h%uint64(len(d.queues))]
			if !q.Push(b) {
				b.Free()
			}
		}
		if n < len(d.scratch) {
			return
		}
	}
}

// flowHash is FNV-1a over the flow identity: Ethernet addresses plus the
// IPv4 source/destination and L4 ports when the frame is long enough to
// carry them — the 5-tuple-ish hash every RSS implementation uses.
func flowHash(b *pkt.Buf) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(bs []byte) {
		for _, c := range bs {
			h ^= uint64(c)
			h *= prime
		}
	}
	v := b.View()
	if len(v) >= 38 {
		mix(v[0:12])  // dst+src MAC
		mix(v[26:38]) // IPv4 src/dst + L4 ports
	} else {
		mix(v)
	}
	return h
}

// rssQueuePort is an owner core's view of its share of a demuxed
// physical port: receive drains the core's own hardware queues, priced
// exactly like the PMD path (fixed burst cost plus per-frame descriptor
// and DMA work); transmit passes through to the shared port.
type rssQueuePort struct {
	phys   *switchdef.PhysPort
	d      *demux
	queues []int
}

func (p *rssQueuePort) Kind() switchdef.PortKind { return switchdef.PhysKind }
func (p *rssQueuePort) Name() string             { return p.phys.Name() }

func (p *rssQueuePort) RxBurst(now units.Time, m *cost.Meter, out []*pkt.Buf) int {
	p.d.pump(now)
	m.Charge(m.Model.RxBurst)
	n := 0
	for _, q := range p.queues {
		if n == len(out) {
			break
		}
		n += p.d.queues[q].DrainTo(out[n:])
	}
	for _, b := range out[:n] {
		m.Charge(m.Model.RxPkt + m.Model.DMAPerByteMilli*units.Cycles(b.Len())/1000)
	}
	return n
}

func (p *rssQueuePort) TxBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int {
	return p.phys.TxBurst(now, m, in)
}

func (p *rssQueuePort) Pending(now units.Time) int {
	n := p.port().RxPending(now)
	for _, q := range p.queues {
		n += p.d.queues[q].Len()
	}
	return n
}

func (p *rssQueuePort) port() *nic.Port { return p.phys.Port }
