package multicore

import (
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/nic"
	"repro/internal/pkt"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

func newMeter() *cost.Meter {
	return cost.NewMeter(cost.Default(), sim.NewRNG(1))
}

// fakeDev is a guest-like device: a scripted receive queue and a
// transmit log, with no cycle prices of its own.
type fakeDev struct {
	name string
	kind switchdef.PortKind
	rx   []*pkt.Buf
	tx   []*pkt.Buf
}

func (d *fakeDev) Kind() switchdef.PortKind { return d.kind }
func (d *fakeDev) Name() string             { return d.name }

func (d *fakeDev) RxBurst(now units.Time, m *cost.Meter, out []*pkt.Buf) int {
	n := copy(out, d.rx)
	d.rx = d.rx[n:]
	return n
}

func (d *fakeDev) TxBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int {
	d.tx = append(d.tx, in...)
	return len(in)
}

func (d *fakeDev) Pending(now units.Time) int { return len(d.rx) }

// fakeInst records the per-core views a Fleet hands out.
type fakeInst struct {
	switchdef.NoRuntimeRules

	core  int
	views []switchdef.DevPort
}

func (s *fakeInst) Info() switchdef.Info { return switchdef.Info{Name: "fake"} }

func (s *fakeInst) AddPort(p switchdef.DevPort) int {
	s.views = append(s.views, p)
	return len(s.views) - 1
}

func (s *fakeInst) CrossConnect(a, b int) error { return nil }

func (s *fakeInst) Poll(now units.Time, m *cost.Meter) bool { return false }

// fakeFleet builds a Fleet over fakeInst instances and returns both.
func fakeFleet(t *testing.T, opt Options) (*Fleet, []*fakeInst) {
	t.Helper()
	var insts []*fakeInst
	opt.NewInstance = func(core int) (switchdef.Switch, error) {
		in := &fakeInst{core: core}
		insts = append(insts, in)
		return in, nil
	}
	f, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return f, insts
}

func TestNewValidation(t *testing.T) {
	mk := func(core int) (switchdef.Switch, error) { return &fakeInst{core: core}, nil }
	bad := []Options{
		{Cores: 1, Dispatch: ModeRSS, Policy: PolicyRoundRobin, NewInstance: mk},
		{Cores: 2, Dispatch: ModeRSS, Policy: "spray", NewInstance: mk},
		{Cores: 2, Dispatch: "pipeline", NewInstance: mk},
	}
	for _, opt := range bad {
		if _, err := New(opt); err == nil {
			t.Errorf("New(%+v) accepted an invalid option set", opt)
		}
	}
	f, err := New(Options{Cores: 2, Dispatch: ModeRTC, NewInstance: mk})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.insts) != 1 {
		t.Errorf("2-core rtc built %d process instances, want 1", len(f.insts))
	}
	f, err = New(Options{Cores: 4, Dispatch: ModeRSS, Policy: PolicyRoundRobin, NewInstance: mk})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.insts) != 4 {
		t.Errorf("4-core rss built %d instances, want 4", len(f.insts))
	}
}

func TestRSSRoundRobinOwnership(t *testing.T) {
	f, insts := fakeFleet(t, Options{Cores: 2, Dispatch: ModeRSS, Policy: PolicyRoundRobin})
	devs := make([]*fakeDev, 4)
	for i := range devs {
		devs[i] = &fakeDev{name: fmt.Sprintf("vhost%d", i), kind: switchdef.VhostKind}
		f.AddPort(devs[i])
	}
	// Receive queues are assigned round-robin in declaration order.
	for i, want := range []int{0, 1, 0, 1} {
		if got := f.rxOwner[i]; got != want {
			t.Errorf("port %d owned by core %d, want %d", i, got, want)
		}
		for k, inst := range insts {
			_, txOnly := inst.views[i].(*txOnlyPort)
			if k == want && txOnly {
				t.Errorf("port %d: owner core %d got a tx-only view", i, k)
			}
			if k != want && !txOnly {
				t.Errorf("port %d: non-owner core %d got a receive-capable view", i, k)
			}
		}
	}
	polls := f.Polls()
	if len(polls) != 2 || polls[0].Name != "sut-core0" || polls[1].Name != "sut-core1" {
		t.Errorf("polls = %+v, want sut-core0 and sut-core1", polls)
	}
}

// TestEffectiveCoresClamp: with more cores than receive queues, the
// surplus cores own nothing and are not polled (the ShardPorts clamp).
func TestEffectiveCoresClamp(t *testing.T) {
	f, _ := fakeFleet(t, Options{Cores: 4, Dispatch: ModeRSS, Policy: PolicyRoundRobin})
	f.AddPort(&fakeDev{name: "a", kind: switchdef.VhostKind})
	f.AddPort(&fakeDev{name: "b", kind: switchdef.VhostKind})
	if got := f.EffectiveCores(); got != 2 {
		t.Errorf("EffectiveCores = %d, want 2 (only 2 receive queues)", got)
	}
}

func TestTxOnlyPort(t *testing.T) {
	dev := &fakeDev{name: "d", kind: switchdef.VhostKind}
	pool := pkt.NewPool(2048)
	dev.rx = append(dev.rx, pool.Get(64))
	v := &txOnlyPort{inner: dev}
	m := newMeter()
	var out [8]*pkt.Buf
	if n := v.RxBurst(0, m, out[:]); n != 0 {
		t.Errorf("tx-only view received %d frames", n)
	}
	if m.Pending() != 0 {
		t.Errorf("tx-only receive charged %d cycles", m.Pending())
	}
	if v.Pending(0) != 0 {
		t.Error("tx-only view reports pending frames")
	}
	b := pool.Get(64)
	if n := v.TxBurst(0, m, []*pkt.Buf{b}); n != 1 || len(dev.tx) != 1 {
		t.Errorf("tx-only transmit: sent %d, device saw %d", n, len(dev.tx))
	}
}

func TestRemotePortTax(t *testing.T) {
	dev := &fakeDev{name: "d", kind: switchdef.VhostKind}
	pool := pkt.NewPool(2048)
	dev.rx = append(dev.rx, pool.Get(64))
	v := &remotePort{inner: dev}
	m := newMeter()
	var out [8]*pkt.Buf
	if n := v.RxBurst(0, m, out[:]); n != 1 {
		t.Fatalf("remote receive returned %d frames", n)
	}
	want := m.Model.RemoteCost(64)
	if m.Pending() != want {
		t.Errorf("remote receive charged %d cycles, want %d", m.Pending(), want)
	}
	m2 := newMeter()
	v.TxBurst(0, m2, []*pkt.Buf{pool.Get(128)})
	if want := m2.Model.RemoteCost(128); m2.Pending() != want {
		t.Errorf("remote transmit charged %d cycles, want %d", m2.Pending(), want)
	}
}

// TestFlowHashShardIsolation: under hardware RSS every flow lands on
// exactly one core, every time — a flow steered to core A never appears
// on core B, so it can never warm core B's caches.
func TestFlowHashShardIsolation(t *testing.T) {
	gen := nic.NewPort(nic.Config{Name: "gen", RxLatency: nic.NoLatency, TxLatency: nic.NoLatency})
	sut := nic.NewPort(nic.Config{Name: "sut", RxLatency: nic.NoLatency, TxLatency: nic.NoLatency})
	nic.Connect(gen, sut)

	f, insts := fakeFleet(t, Options{Cores: 2, Dispatch: ModeRSS, Policy: PolicyFlowHash})
	idx := f.AddPort(&switchdef.PhysPort{Port: sut})

	const flows, perFlow = 32, 4
	pool := pkt.NewPool(2048)
	now := units.Time(0)
	for r := 0; r < perFlow; r++ {
		for fl := 0; fl < flows; fl++ {
			b := pool.Get(64)
			// Distinct flows differ in their source MAC.
			b.Bytes()[11] = byte(fl)
			if !gen.Send(now, b) {
				t.Fatal("generator TX ring full")
			}
		}
		now += units.Millisecond
	}
	now += units.Millisecond

	flowCore := map[byte]int{}
	total := 0
	var out [64]*pkt.Buf
	for k, inst := range insts {
		m := newMeter()
		for {
			n := inst.views[idx].RxBurst(now, m, out[:])
			if n == 0 {
				break
			}
			total += n
			for _, b := range out[:n] {
				fl := b.View()[11]
				if prev, seen := flowCore[fl]; seen && prev != k {
					t.Fatalf("flow %d migrated from core %d to core %d", fl, prev, k)
				}
				flowCore[fl] = k
				b.Free()
			}
		}
	}
	if total != flows*perFlow {
		t.Errorf("delivered %d frames, want %d", total, flows*perFlow)
	}
	perCore := map[int]int{}
	for _, k := range flowCore {
		perCore[k]++
	}
	if len(perCore) != 2 {
		t.Errorf("flows spread over %d cores, want 2 (got %v)", len(perCore), perCore)
	}
}

func TestRTCLayout(t *testing.T) {
	f, insts := fakeFleet(t, Options{Cores: 4, Dispatch: ModeRTC})
	if len(insts) != 2 {
		t.Fatalf("4-core rtc built %d process instances, want 2", len(insts))
	}
	f.AddPort(&fakeDev{name: "a", kind: switchdef.VhostKind})
	polls := f.Polls()
	want := []string{"sut-rx", "sut-proc0", "sut-proc1", "sut-tx"}
	if len(polls) != len(want) {
		t.Fatalf("polls = %d, want %d", len(polls), len(want))
	}
	for i, cp := range polls {
		if cp.Name != want[i] {
			t.Errorf("poll %d = %s, want %s", i, cp.Name, want[i])
		}
	}
	if got := f.EffectiveCores(); got != 4 {
		t.Errorf("EffectiveCores = %d, want 4", got)
	}

	// The 2-core layout drops the dedicated receive core: the process
	// stage polls the devices directly.
	f2, insts2 := fakeFleet(t, Options{Cores: 2, Dispatch: ModeRTC})
	idx := f2.AddPort(&fakeDev{name: "a", kind: switchdef.VhostKind})
	polls2 := f2.Polls()
	if len(polls2) != 2 || polls2[0].Name != "sut-proc0" || polls2[1].Name != "sut-tx" {
		t.Errorf("2-core rtc polls = %+v, want sut-proc0 and sut-tx", polls2)
	}
	v, ok := insts2[0].views[idx].(*rtcProcPort)
	if !ok || v.direct == nil {
		t.Error("2-core rtc process stage should poll the device directly")
	}
}

func TestRTCProcPortTaxes(t *testing.T) {
	pool := pkt.NewPool(2048)
	in, out := ring.New(8), ring.New(2)
	p := &rtcProcPort{dev: &fakeDev{name: "d", kind: switchdef.VhostKind}, in: in, out: out}

	m := newMeter()
	sent := p.TxBurst(0, m, []*pkt.Buf{pool.Get(64), pool.Get(64), pool.Get(64)})
	if sent != 2 {
		t.Errorf("TxBurst into a 2-slot ring sent %d, want 2", sent)
	}
	if want := 3 * m.Model.HandoffPush; m.Pending() != want {
		t.Errorf("TxBurst charged %d cycles, want %d (3 pushes)", m.Pending(), want)
	}
	if out.Drops != 1 {
		t.Errorf("full handoff ring counted %d drops, want 1", out.Drops)
	}

	in.Push(pool.Get(64))
	in.Push(pool.Get(64))
	m2 := newMeter()
	var buf [8]*pkt.Buf
	if n := p.RxBurst(0, m2, buf[:]); n != 2 {
		t.Fatalf("RxBurst popped %d frames, want 2", n)
	}
	if want := 2 * m2.Model.HandoffPop; m2.Pending() != want {
		t.Errorf("RxBurst charged %d cycles, want %d (2 pops)", m2.Pending(), want)
	}

	// A cross-socket consumer additionally pays the remote touch tax.
	in.Push(pool.Get(64))
	p.remoteIn = true
	m3 := newMeter()
	p.RxBurst(0, m3, buf[:])
	if want := m3.Model.HandoffPop + m3.Model.RemoteCost(64); m3.Pending() != want {
		t.Errorf("remote RxBurst charged %d cycles, want %d", m3.Pending(), want)
	}
}

// TestRTCPipelineFlow walks one burst through the full 3-core pipeline:
// receive/steer → handoff ring → process stage view → outbound ring →
// transmit core → wire.
func TestRTCPipelineFlow(t *testing.T) {
	gen := nic.NewPort(nic.Config{Name: "gen", RxLatency: nic.NoLatency, TxLatency: nic.NoLatency})
	sut := nic.NewPort(nic.Config{Name: "sut", RxLatency: nic.NoLatency, TxLatency: nic.NoLatency})
	nic.Connect(gen, sut)

	f, insts := fakeFleet(t, Options{Cores: 3, Dispatch: ModeRTC})
	idx := f.AddPort(&switchdef.PhysPort{Port: sut})

	pool := pkt.NewPool(2048)
	const n = 8
	for i := 0; i < n; i++ {
		b := pool.Get(64)
		b.Bytes()[0] = byte(i)
		if !gen.Send(0, b) {
			t.Fatal("generator TX ring full")
		}
	}
	now := units.Millisecond

	// Stage 1: the receive core drains the device and steers.
	m := newMeter()
	if !f.rtcRxPoll(now, m) {
		t.Fatal("receive core found nothing to steer")
	}
	if got := f.rtc.in[idx].Len(); got != n {
		t.Fatalf("steer ring holds %d frames, want %d", got, n)
	}
	if m.Pending() == 0 {
		t.Error("receive/steer stage charged nothing")
	}

	// Stage 2: the process stage pops its handoff ring, in order.
	var out [16]*pkt.Buf
	got := insts[0].views[idx].RxBurst(now, newMeter(), out[:])
	if got != n {
		t.Fatalf("process stage received %d frames, want %d", got, n)
	}
	for i, b := range out[:got] {
		if b.View()[0] != byte(i) {
			t.Fatalf("frame %d out of order", i)
		}
	}

	// Stage 3: process transmit stages onto the outbound ring; the
	// transmit core drains it onto the wire.
	insts[0].views[idx].TxBurst(now, newMeter(), out[:got])
	if !f.rtcTxPoll(now, newMeter()) {
		t.Fatal("transmit core found nothing to drain")
	}
	if tx := sut.Stats.TxPackets; tx != n {
		t.Errorf("wire saw %d frames, want %d", tx, n)
	}
	if f.Drops() != 0 {
		t.Errorf("pipeline dropped %d frames", f.Drops())
	}
}
