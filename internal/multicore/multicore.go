// Package multicore turns a single-core switch data plane into a
// multi-core one — the paper's §6 "multi-core solutions" future work,
// following the journal extension's methodology of scaling each switch
// with its native worker model.
//
// A Fleet implements switchdef.Switch by running one private switch
// instance per worker core. Per-core instances are the load-bearing
// design decision: every core owns its own flow caches, MAC tables,
// match/action state, and vector scratch (OvS's per-PMD EMC/megaflow
// caches, VPP's per-worker graph runtime, FastClick's per-thread element
// state, BESS's per-worker scheduler wheel), so a flow that migrates
// across cores re-misses — exactly as on real hardware.
//
// Two dispatch modes distribute work:
//
//   - RSS (ModeRSS): receive-side scaling. Every receive queue is owned
//     by exactly one core, whose instance polls it; all cores can
//     transmit to any port. PolicyRoundRobin statically assigns queues
//     to cores in declaration order (the classic DPDK port/queue →
//     lcore map); PolicyFlowHash models hardware RSS, spreading each
//     physical port over one queue per core by flow hash, which is the
//     only way a single port scales past one core.
//
//   - RTC pipeline (ModeRTC): the run-to-completion path is split into
//     pipeline stages chained across cores with SPSC handoff rings —
//     receive/steer, process, transmit. Every ring crossing charges the
//     calibrated handoff taxes from internal/cost.
//
// Cores map onto sockets via cost.NUMA; devices and packet memory are
// homed on socket 0, and any core on a remote socket pays the remote
// touch tax on device I/O and cross-socket ring pops. Single-core runs
// never construct a Fleet, so none of this affects the calibrated
// single-core model.
package multicore

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// Dispatch modes.
const (
	ModeRSS = "rss"
	ModeRTC = "rtc"
)

// RSS queue-assignment policies.
const (
	PolicyRoundRobin = "roundrobin"
	PolicyFlowHash   = "flowhash"
)

// scratchLen sizes the fleet's reusable burst buffers (the DPDK burst).
const scratchLen = 32

// Options configures a Fleet.
type Options struct {
	// Cores is the worker core count (must be > 1).
	Cores int
	// Dispatch is ModeRSS or ModeRTC.
	Dispatch string
	// Policy is the RSS queue-assignment policy (ModeRSS only).
	Policy string
	// NUMA maps cores onto sockets for remote-access penalties.
	NUMA cost.NUMA
	// QueueCap bounds every demux and handoff ring (default 512).
	QueueCap int
	// NewInstance builds the private switch instance for one core. Each
	// instance must be backed by its own state (callers derive a
	// distinct RNG per instance).
	NewInstance func(core int) (switchdef.Switch, error)
}

// CorePoll is one core's poll loop, ready to be mounted on a cpu.PollCore.
type CorePoll struct {
	Name string
	Fn   func(now units.Time, m *cost.Meter) bool
}

// Fleet runs one switch instance per worker core behind a single
// switchdef.Switch facade: the testbed attaches ports and installs
// cross-connects once, and the fleet fans both out to every instance.
type Fleet struct {
	opt   Options
	insts []switchdef.Switch
	ports []switchdef.DevPort

	// rxOwner notes, per port, which core owns its receive side under
	// RSS (-1 = demuxed across all cores). Unused under RTC.
	rxOwner []int
	// srcOrdinal counts receive queues in declaration order (the DPDK
	// port/queue → lcore map is filled round-robin in this order).
	srcOrdinal int
	// guestOrdinal counts guest interfaces for flow-hash guest placement.
	guestOrdinal int

	demuxes []*demux
	rtc     *rtcState

	scratch [scratchLen]*pkt.Buf
}

// New builds a fleet. The returned Fleet is a switchdef.Switch; mount
// its Polls on one cpu.PollCore each after wiring.
func New(opt Options) (*Fleet, error) {
	if opt.Cores < 2 {
		return nil, fmt.Errorf("multicore: need at least 2 cores, got %d", opt.Cores)
	}
	if opt.QueueCap <= 0 {
		opt.QueueCap = 512
	}
	switch opt.Dispatch {
	case ModeRSS:
		switch opt.Policy {
		case PolicyRoundRobin, PolicyFlowHash:
		default:
			return nil, fmt.Errorf("multicore: unknown rss policy %q", opt.Policy)
		}
	case ModeRTC:
	default:
		return nil, fmt.Errorf("multicore: unknown dispatch mode %q", opt.Dispatch)
	}
	f := &Fleet{opt: opt}
	workers := opt.Cores
	if opt.Dispatch == ModeRTC {
		// Dedicated receive/steer and transmit cores bracket the
		// processing stages; with only two cores the process stage
		// polls the devices itself.
		workers = opt.Cores - 2
		if workers < 1 {
			workers = 1
		}
		f.rtc = newRTCState(opt)
	}
	for k := 0; k < workers; k++ {
		inst, err := opt.NewInstance(k)
		if err != nil {
			return nil, err
		}
		f.insts = append(f.insts, inst)
	}
	return f, nil
}

// Info implements switchdef.Switch.
func (f *Fleet) Info() switchdef.Info { return f.insts[0].Info() }

// AddPort implements switchdef.Switch: the device is registered with
// every instance at the same index, each instance seeing the view its
// core's role grants (owned queue, transmit-only passthrough, or
// handoff ring).
func (f *Fleet) AddPort(p switchdef.DevPort) int {
	idx := len(f.ports)
	f.ports = append(f.ports, p)
	var views []switchdef.DevPort
	if f.opt.Dispatch == ModeRTC {
		views = f.rtcViews(idx, p)
	} else {
		views = f.rssViews(idx, p)
	}
	for k, inst := range f.insts {
		if got := inst.AddPort(views[k]); got != idx {
			panic(fmt.Sprintf("multicore: instance %d assigned port %d, want %d", k, got, idx))
		}
	}
	return idx
}

// CrossConnect implements switchdef.Switch: forwarding state is
// installed in every instance, since any core may see any flow.
func (f *Fleet) CrossConnect(a, b int) error {
	for _, inst := range f.insts {
		if err := inst.CrossConnect(a, b); err != nil {
			return err
		}
	}
	return nil
}

// Install implements switchdef.Programmer: a rule broadcast. The control
// plane programs every per-core shard (any core may see any flow), and
// each shard re-misses its own caches independently — the same
// amplification a real multi-queue deployment pays on a table update.
func (f *Fleet) Install(r switchdef.Rule) error {
	for _, inst := range f.insts {
		if err := inst.Install(r); err != nil {
			return err
		}
	}
	return nil
}

// Revoke implements switchdef.Programmer, broadcast like Install.
func (f *Fleet) Revoke(r switchdef.Rule) error {
	for _, inst := range f.insts {
		if err := inst.Revoke(r); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot implements switchdef.Programmer. All shards hold the same
// program, so shard 0 speaks for the fleet.
func (f *Fleet) Snapshot() []switchdef.Rule { return f.insts[0].Snapshot() }

// EMCEvictionCount sums per-shard exact-match-cache evictions for
// instances exposing that stats surface.
func (f *Fleet) EMCEvictionCount() int64 {
	var n int64
	for _, inst := range f.insts {
		if s, ok := inst.(interface{ EMCEvictionCount() int64 }); ok {
			n += s.EMCEvictionCount()
		}
	}
	return n
}

// Poll implements switchdef.Switch by running every core's poll against
// one meter — a single-threaded fallback. The testbed never uses it: it
// mounts Polls on one simulated core each.
func (f *Fleet) Poll(now units.Time, m *cost.Meter) bool {
	did := false
	for _, cp := range f.Polls() {
		if cp.Fn(now, m) {
			did = true
		}
	}
	return did
}

// Polls returns one poll loop per effective core. Under RSS, cores that
// own no receive queue are omitted (they would only burn idle cycles);
// under RTC every pipeline stage polls.
func (f *Fleet) Polls() []CorePoll {
	if f.opt.Dispatch == ModeRTC {
		var polls []CorePoll
		if f.opt.Cores >= 3 {
			polls = append(polls, CorePoll{Name: "sut-rx", Fn: f.rtcRxPoll})
		}
		for k, inst := range f.insts {
			polls = append(polls, CorePoll{Name: fmt.Sprintf("sut-proc%d", k), Fn: inst.Poll})
		}
		polls = append(polls, CorePoll{Name: "sut-tx", Fn: f.rtcTxPoll})
		return polls
	}
	active := f.activeCores()
	polls := make([]CorePoll, 0, len(active))
	for _, k := range active {
		polls = append(polls, CorePoll{Name: fmt.Sprintf("sut-core%d", k), Fn: f.insts[k].Poll})
	}
	return polls
}

// activeCores lists the RSS cores owning at least one receive queue.
func (f *Fleet) activeCores() []int {
	owned := make([]bool, f.opt.Cores)
	for _, o := range f.rxOwner {
		if o >= 0 {
			owned[o] = true
		}
	}
	for _, d := range f.demuxes {
		for _, k := range d.owners {
			owned[k] = true
		}
	}
	var active []int
	for k, ok := range owned {
		if ok {
			active = append(active, k)
		}
	}
	return active
}

// EffectiveCores reports how many cores actually carry the data plane —
// min(cores, receive queues) under RSS, all cores under RTC.
func (f *Fleet) EffectiveCores() int { return len(f.Polls()) }

// Drops counts frames lost in the fleet's own queues: demux queue
// overflows and full handoff rings.
func (f *Fleet) Drops() int64 {
	var n int64
	for _, d := range f.demuxes {
		for _, q := range d.queues {
			n += q.Drops
		}
	}
	if f.rtc != nil {
		n += f.rtc.drops()
	}
	return n
}
