package multicore

import (
	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/ring"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// RTC pipeline core layout: core 0 receives and steers, the last core
// drains transmissions, and the cores in between each run a full switch
// instance as a processing stage. With only two cores the process stage
// absorbs the receive role and polls the devices itself.
//
// Every ring crossing charges the calibrated handoff taxes; a crossing
// between cores on different sockets additionally pays the remote touch
// tax on the consumer side.
type rtcState struct {
	opt rtcLayout

	// Per port, in attachment order.
	rxViews []switchdef.DevPort // receive-core device views (3+ cores)
	txViews []switchdef.DevPort // transmit-core device views
	in      []*ring.SPSC        // steer → process handoff (nil when direct)

	// outs[k][port]: process stage k → transmit core handoff.
	outs [][]*ring.SPSC
	// remoteOut notes process stages on a different socket than the
	// transmit core (the drain pop crosses the interconnect).
	remoteOut []bool
}

// rtcLayout is the fleet geometry the rtc state needs.
type rtcLayout struct {
	cores    int
	procs    int
	queueCap int
	numa     cost.NUMA
}

func newRTCState(opt Options) *rtcState {
	procs := opt.Cores - 2
	if procs < 1 {
		procs = 1
	}
	st := &rtcState{
		opt:       rtcLayout{cores: opt.Cores, procs: procs, queueCap: opt.QueueCap, numa: opt.NUMA},
		outs:      make([][]*ring.SPSC, procs),
		remoteOut: make([]bool, procs),
	}
	for k := 0; k < procs; k++ {
		st.remoteOut[k] = st.opt.numa.SocketOf(st.procCore(k)) != st.opt.numa.SocketOf(opt.Cores-1)
	}
	return st
}

// procCore maps a process stage to its core index.
func (st *rtcState) procCore(k int) int {
	if st.opt.cores == 2 {
		return 0
	}
	return 1 + k
}

// direct reports whether the process stage polls devices itself.
func (st *rtcState) direct() bool { return st.opt.cores == 2 }

func (st *rtcState) drops() int64 {
	var n int64
	for _, r := range st.in {
		if r != nil {
			n += r.Drops
		}
	}
	for _, rs := range st.outs {
		for _, r := range rs {
			n += r.Drops
		}
	}
	return n
}

// rtcViews builds the per-process-stage views of one port.
func (f *Fleet) rtcViews(idx int, p switchdef.DevPort) []switchdef.DevPort {
	st := f.rtc
	st.txViews = append(st.txViews, f.wrapRemote(f.opt.Cores-1, p))
	if st.direct() {
		st.in = append(st.in, nil)
	} else {
		st.rxViews = append(st.rxViews, f.wrapRemote(0, p))
		st.in = append(st.in, ring.New(st.opt.queueCap))
	}
	views := make([]switchdef.DevPort, st.opt.procs)
	for k := 0; k < st.opt.procs; k++ {
		st.outs[k] = append(st.outs[k], ring.New(st.opt.queueCap))
		v := &rtcProcPort{dev: p, out: st.outs[k][idx]}
		switch {
		case st.direct():
			v.direct = p // core 0 is on the device's home socket
		case idx%st.opt.procs == k:
			// Static port → stage steering keeps each handoff ring
			// single-producer/single-consumer and preserves per-port
			// frame order.
			v.in = st.in[idx]
			v.remoteIn = st.opt.numa.Remote(st.procCore(k), 0)
		}
		views[k] = v
	}
	return views
}

// rtcRxPoll is the receive/steer core: drain every device at full PMD
// price, classify (steer tax), and hand each burst to the port's process
// stage. A full handoff ring drops, like any full queue.
func (f *Fleet) rtcRxPoll(now units.Time, m *cost.Meter) bool {
	st := f.rtc
	did := false
	for i, rv := range st.rxViews {
		n := rv.RxBurst(now, m, f.scratch[:])
		if n == 0 {
			continue
		}
		did = true
		m.Charge(m.Model.SteerPerPkt * units.Cycles(n))
		r := st.in[i]
		for _, b := range f.scratch[:n] {
			m.Charge(m.Model.HandoffPush)
			if !r.Push(b) {
				b.Free()
			}
		}
	}
	return did
}

// rtcTxPoll is the transmit core: pop every process stage's staged
// frames (handoff tax, plus the remote tax for cross-socket stages) and
// send them through the real device at full PMD price.
func (f *Fleet) rtcTxPoll(now units.Time, m *cost.Meter) bool {
	st := f.rtc
	did := false
	for i := range f.ports {
		tv := st.txViews[i]
		for k := range st.outs {
			r := st.outs[k][i]
			n := r.DrainTo(f.scratch[:])
			if n == 0 {
				continue
			}
			did = true
			for _, b := range f.scratch[:n] {
				m.Charge(m.Model.HandoffPop)
				if st.remoteOut[k] {
					m.Charge(m.Model.RemoteCost(b.Len()))
				}
			}
			tv.TxBurst(now, m, f.scratch[:n])
		}
	}
	return did
}

// rtcProcPort is a process stage's view of one port: receive pops the
// steer core's handoff ring (or polls the device directly in the 2-core
// layout), transmit pushes to the stage's outbound ring toward the
// transmit core.
type rtcProcPort struct {
	dev    switchdef.DevPort
	direct switchdef.DevPort // non-nil: 2-core layout, poll the device
	in     *ring.SPSC        // nil for ports steered to another stage
	out    *ring.SPSC

	remoteIn bool
}

func (p *rtcProcPort) Kind() switchdef.PortKind { return p.dev.Kind() }
func (p *rtcProcPort) Name() string             { return p.dev.Name() }

func (p *rtcProcPort) RxBurst(now units.Time, m *cost.Meter, out []*pkt.Buf) int {
	if p.direct != nil {
		return p.direct.RxBurst(now, m, out)
	}
	if p.in == nil {
		return 0
	}
	n := p.in.DrainTo(out)
	for _, b := range out[:n] {
		m.Charge(m.Model.HandoffPop)
		if p.remoteIn {
			m.Charge(m.Model.RemoteCost(b.Len()))
		}
	}
	return n
}

func (p *rtcProcPort) TxBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int {
	sent := 0
	for _, b := range in {
		m.Charge(m.Model.HandoffPush)
		if p.out.Push(b) {
			sent++
		} else {
			b.Free()
		}
	}
	return sent
}

func (p *rtcProcPort) Pending(now units.Time) int {
	if p.direct != nil {
		return p.direct.Pending(now)
	}
	if p.in == nil {
		return 0
	}
	return p.in.Len()
}
