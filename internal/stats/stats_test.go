package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, v := range raw {
			d := float64(v) - mean
			m2 += d * d
		}
		naiveVar := m2 / float64(len(raw))
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-naiveVar) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMinMax(t *testing.T) {
	var w Welford
	for _, v := range []float64{5, -3, 12, 0} {
		w.Add(v)
	}
	if w.Min() != -3 || w.Max() != 12 || w.N() != 4 {
		t.Fatalf("min=%v max=%v n=%d", w.Min(), w.Max(), w.N())
	}
	var empty Welford
	if empty.Mean() != 0 || empty.Var() != 0 || empty.Std() != 0 {
		t.Fatal("empty accumulator not zero")
	}
}

func TestHistogramExactMean(t *testing.T) {
	var h Histogram
	vals := []units.Time{10 * units.Microsecond, 20 * units.Microsecond, 30 * units.Microsecond}
	for _, v := range vals {
		h.Add(v)
	}
	if h.Mean() != 20*units.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 10*units.Microsecond || h.Max() != 30*units.Microsecond {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Against a sorted sample, quantiles should be within the histogram's
	// ~3.2% relative resolution.
	rng := sim.NewRNG(11)
	var h Histogram
	var raw []float64
	for i := 0; i < 50000; i++ {
		// Log-uniform latencies between 1us and 10ms.
		v := math.Exp(math.Log(1e6) + rng.Float64()*math.Log(1e4))
		raw = append(raw, v)
		h.Add(units.Time(v))
	}
	sort.Float64s(raw)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		want := raw[int(q*float64(len(raw)))]
		got := float64(h.Quantile(q))
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("q=%.2f: got %.0f want %.0f (rel err %.3f)", q, got, want, rel)
		}
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		var h Histogram
		for i := 0; i < 500; i++ {
			h.Add(units.Time(rng.Uint64() % uint64(10*units.Millisecond)))
		}
		prev := units.Time(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Quantile(0) == h.Min() && h.Quantile(1) == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Property: every value lands in a bucket whose bounds contain it.
	f := func(raw uint32) bool {
		v := units.Time(raw) * units.Nanosecond
		i := bucketIndex(v)
		lo, hi := bucketLow(i), bucketLow(i+1)
		return lo <= v && (v < hi || i == len(Histogram{}.buckets)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-5 * units.Nanosecond)
	if h.Min() != 0 || h.N() != 1 {
		t.Fatalf("min=%v n=%d", h.Min(), h.N())
	}
}

func TestHistogramStd(t *testing.T) {
	var h Histogram
	// Constant distribution: std must be (near) zero relative to mean.
	for i := 0; i < 1000; i++ {
		h.Add(100 * units.Microsecond)
	}
	if std := h.Std(); float64(std) > 0.04*float64(h.Mean()) {
		t.Fatalf("std = %v for constant data (mean %v)", std, h.Mean())
	}
	// Bimodal: std should be close to the half-gap.
	var h2 Histogram
	for i := 0; i < 1000; i++ {
		h2.Add(10 * units.Microsecond)
		h2.Add(1000 * units.Microsecond)
	}
	want := 495.0 // us
	if got := h2.Std().Microseconds(); math.Abs(got-want)/want > 0.05 {
		t.Fatalf("bimodal std = %.1fus, want ~%.0fus", got, want)
	}
}

func TestSummarize(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(units.Time(i) * units.Microsecond)
	}
	s := h.Summarize()
	if s.N != 100 {
		t.Fatalf("n=%d", s.N)
	}
	if math.Abs(s.MeanUs-50.5) > 0.01 {
		t.Fatalf("mean=%f", s.MeanUs)
	}
	if s.P50Us < 45 || s.P50Us > 55 {
		t.Fatalf("p50=%f", s.P50Us)
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

func TestCounterSub(t *testing.T) {
	var c Counter
	c.Add(10, 640)
	snap := c
	c.Add(5, 320)
	d := c.Sub(snap)
	if d.Packets != 5 || d.Bytes != 320 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Std() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramMerge(t *testing.T) {
	// Two histograms merged must equal one histogram fed every sample.
	var a, b, all Histogram
	for i := 1; i <= 500; i++ {
		v := units.Time(i) * 37 * units.Nanosecond
		a.Add(v)
		all.Add(v)
	}
	for i := 1; i <= 300; i++ {
		v := units.Time(i) * 113 * units.Nanosecond
		b.Add(v)
		all.Add(v)
	}
	a.Merge(&b)
	if a != all {
		t.Fatalf("merged histogram differs from direct accumulation:\nmerged %+v\ndirect %+v", a.Summarize(), all.Summarize())
	}
	if a.N() != 800 {
		t.Fatalf("merged N = %d, want 800", a.N())
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	var h Histogram
	h.Add(5 * units.Microsecond)
	before := h
	var empty Histogram
	h.Merge(&empty)
	h.Merge(nil)
	if h != before {
		t.Fatal("merging empty/nil histograms changed the receiver")
	}
	// Merging into an empty receiver copies min/max.
	var dst Histogram
	dst.Merge(&before)
	if dst != before {
		t.Fatal("merge into empty receiver is not a copy")
	}
}
