// Package stats provides the streaming statistics the benchmark harness
// reports: running mean/variance (Welford), an HDR-style log-linear latency
// histogram with quantiles, and packet/byte rate counters.
package stats

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/units"
)

// Welford accumulates mean and variance in one pass, numerically stably.
// The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (0 if fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// Histogram is a log-linear histogram over units.Time values, HDR-style:
// 32 linear buckets per power-of-two decade, covering 1 ns to ~4.5 h with
// ≤3.2% relative error. The zero value is ready to use.
type Histogram struct {
	buckets [64 * sub]int64
	count   int64
	sum     units.Time
	min     units.Time
	max     units.Time
}

const sub = 32 // linear subdivisions per power of two

func bucketIndex(t units.Time) int {
	v := uint64(t) / uint64(units.Nanosecond)
	if v < sub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of top bit, >= 5 here
	shift := exp - 5
	mant := (v >> uint(shift)) & (sub - 1)
	return (shift+1)*sub + int(mant)
}

// bucketLow returns the lower bound of bucket i, inverse of bucketIndex.
func bucketLow(i int) units.Time {
	if i < sub {
		return units.Time(i) * units.Nanosecond
	}
	shift := i/sub - 1
	mant := uint64(i%sub) | sub
	return units.Time(mant<<uint(shift)) * units.Nanosecond
}

// Add records one latency observation. Negative values are clamped to zero.
func (h *Histogram) Add(t units.Time) {
	if t < 0 {
		t = 0
	}
	if h.count == 0 {
		h.min, h.max = t, t
	} else {
		if t < h.min {
			h.min = t
		}
		if t > h.max {
			h.max = t
		}
	}
	h.count++
	h.sum += t
	h.buckets[bucketIndex(t)]++
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.count }

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Merge folds o's observations into h. Bucket counts, totals and sums add
// exactly, so merging per-direction histograms of a bidirectional run
// yields the same distribution as recording every sample into one
// histogram. A nil or empty o is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 {
		h.min, h.max = o.min, o.max
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.count += o.count
	h.sum += o.sum
	for i, c := range o.buckets {
		if c != 0 {
			h.buckets[i] += c
		}
	}
}

// Mean returns the exact mean (sums are kept exactly).
func (h *Histogram) Mean() units.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / units.Time(h.count)
}

// Min returns the smallest observation.
func (h *Histogram) Min() units.Time { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() units.Time { return h.max }

// Quantile returns an approximation of the q-quantile (0 ≤ q ≤ 1).
func (h *Histogram) Quantile(q float64) units.Time {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(q * float64(h.count))
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			lo := bucketLow(i)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// Std returns the standard deviation estimated from bucket midpoints.
func (h *Histogram) Std() units.Time {
	if h.count < 2 {
		return 0
	}
	mean := float64(h.Mean())
	var acc float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		mid := float64(bucketLow(i)) + float64(bucketLow(i+1)-bucketLow(i))/2
		d := mid - mean
		acc += d * d * float64(c)
	}
	return units.Time(math.Sqrt(acc / float64(h.count)))
}

// Summary is a frozen snapshot of a latency distribution, in microseconds
// (the unit the paper's tables use).
type Summary struct {
	N                  int64
	MeanUs, StdUs      float64
	MinUs, MaxUs       float64
	P50Us, P99Us, P999 float64
}

// Summarize freezes the histogram into a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		N:      h.count,
		MeanUs: h.Mean().Microseconds(),
		StdUs:  h.Std().Microseconds(),
		MinUs:  h.min.Microseconds(),
		MaxUs:  h.max.Microseconds(),
		P50Us:  h.Quantile(0.50).Microseconds(),
		P99Us:  h.Quantile(0.99).Microseconds(),
		P999:   h.Quantile(0.999).Microseconds(),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fus std=%.1fus p50=%.1fus p99=%.1fus max=%.1fus",
		s.N, s.MeanUs, s.StdUs, s.P50Us, s.P99Us, s.MaxUs)
}

// Counter tracks packets and bytes, with a snapshot-window helper so a
// measurement window can exclude warmup traffic.
type Counter struct {
	Packets int64
	Bytes   int64
}

// Add records n packets totalling b bytes.
func (c *Counter) Add(n, b int64) {
	c.Packets += n
	c.Bytes += b
}

// Sub returns c - o (used to subtract a warmup snapshot).
func (c Counter) Sub(o Counter) Counter {
	return Counter{Packets: c.Packets - o.Packets, Bytes: c.Bytes - o.Bytes}
}
