package sim

import "math"

// RNG is a small, fast, deterministic random source (SplitMix64 core).
// Every component derives its own RNG from the run seed so that adding or
// reordering components does not perturb unrelated random streams.
type RNG struct {
	state uint64
	// cached second normal variate from Box-Muller
	haveGauss bool
	gauss     float64
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Derive returns an independent RNG deterministically derived from r's seed
// and the given label, without consuming r's stream.
func (r *RNG) Derive(label string) *RNG {
	h := r.state + 0x9e3779b97f4a7c15
	for _, c := range []byte(label) {
		h ^= uint64(c)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return NewRNG(h)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v float64
	for u == 0 {
		u = r.Float64()
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.gauss = mag * math.Sin(2*math.Pi*v)
	r.haveGauss = true
	return mag * math.Cos(2*math.Pi*v)
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }
