// Package sim provides a deterministic discrete-event scheduler.
//
// The whole testbed runs on a single goroutine: every active component
// (CPU cores, traffic generators, NIC pacers) is an Actor stepped in global
// timestamp order. Ties are broken by registration order, making every run
// bit-for-bit reproducible for a given seed.
//
// The dispatch loop is the hottest code in the repository — every simulated
// cell pushes millions of events through it — so the priority queue is an
// inlined, monomorphic 4-ary min-heap on (when, seq) rather than
// container/heap: no interface dispatch, no per-Push boxing, and a
// shallower tree than a binary heap (packet schedules are dominated by
// sift-downs after Pop). Because (when, seq) is a total order (seq is
// unique), the dispatch sequence is a pure function of the schedule: any
// correct heap — and the run-next fast path below — yields bit-identical
// simulations.
package sim

import (
	"fmt"

	"repro/internal/units"
)

// Actor is a simulated active component.
//
// Step runs the actor at time now and returns the time of its next step.
// Returning ok=false parks the actor: it will not run again until something
// calls Scheduler.WakeAt on its Task (used by interrupt-driven components).
type Actor interface {
	Step(now units.Time) (next units.Time, ok bool)
}

// Task is a scheduler handle for one registered actor.
type Task struct {
	actor Actor
	name  string
	seq   int // registration order; breaks timestamp ties deterministically

	when      units.Time
	index     int // heap index, -1 when not queued
	scheduled bool
}

// Name returns the name the task was registered under.
func (t *Task) Name() string { return t.name }

// Scheduled reports whether the task is currently queued to run.
func (t *Task) Scheduled() bool { return t.scheduled }

// When returns the task's queued run time (meaningless if !Scheduled).
func (t *Task) When() units.Time { return t.when }

// before is the dispatch total order: earlier time first, registration
// order on ties.
func (t *Task) before(u *Task) bool {
	if t.when != u.when {
		return t.when < u.when
	}
	return t.seq < u.seq
}

// Scheduler orders and dispatches actor steps.
type Scheduler struct {
	now      units.Time
	queue    taskHeap
	tasks    []*Task
	steps    uint64
	deadline units.Time // active RunUntil bound (see Deadline)

	// fastHits counts dispatches served by the run-next fast path
	// (diagnostics for benchmarks; not part of simulation state).
	fastHits uint64
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() units.Time { return s.now }

// Steps returns the total number of actor steps dispatched so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// FastPathHits returns how many steps skipped the heap via the run-next
// fast path (engine diagnostics).
func (s *Scheduler) FastPathHits() uint64 { return s.fastHits }

// Deadline returns the bound of the RunUntil call currently executing
// (zero outside RunUntil). Actors that emit time-stamped work ahead of the
// clock — the batched traffic generators — must not stamp anything past
// this bound: events beyond it would not have been dispatched, so state
// observed between RunUntil calls must not include them.
func (s *Scheduler) Deadline() units.Time { return s.deadline }

// Register adds an actor (initially parked) and returns its task handle.
func (s *Scheduler) Register(name string, a Actor) *Task {
	t := &Task{actor: a, name: name, seq: len(s.tasks), index: -1}
	s.tasks = append(s.tasks, t)
	return t
}

// WakeAt schedules (or reschedules) the task to run at time at. If the task
// is already queued, the earlier of the two times wins. Scheduling in the
// past is clamped to the present.
func (s *Scheduler) WakeAt(t *Task, at units.Time) {
	if at < s.now {
		at = s.now
	}
	if t.scheduled {
		if at < t.when {
			t.when = at
			s.queue.siftUp(t.index)
		}
		return
	}
	t.when = at
	t.scheduled = true
	s.queue.push(t)
}

// RunUntil dispatches steps in timestamp order until the queue is empty or
// the next step would occur after deadline. The clock is left at the last
// dispatched step (or at deadline if nothing ran at/after it).
func (s *Scheduler) RunUntil(deadline units.Time) {
	s.RunUntilSlice(deadline, deadline)
}

// RunUntilSlice dispatches steps in timestamp order up to edge, while
// reporting horizon through Deadline(). It is the partitioned engine's
// inner loop: a partition executes one lookahead window at a time
// (edge = its conservative safe bound) within a user-level phase
// (horizon = the RunUntil bound the sequential engine would have used).
// Keeping Deadline() at the phase bound is what makes window slicing
// invisible to actors: the batched rate-mode generators stamp work
// against Deadline(), so slicing at edges must not shrink their batches —
// that would change the dispatch count (Result.Steps, a pinned
// determinism fingerprint) even though the traffic would not move.
//
// Slicing cannot reorder dispatches: every pending event with when <=
// edge runs in this slice, and an event dispatched in a later slice has
// when > edge, so anything it schedules lands at >= its own when > edge —
// no later slice can create work for an earlier one. The sliced dispatch
// sequence is therefore identical to one RunUntil(horizon), wherever the
// edges fall.
func (s *Scheduler) RunUntilSlice(edge, horizon units.Time) {
	s.deadline = horizon
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.when > edge {
			break
		}
		s.queue.popMin()
		next.scheduled = false
		for {
			if next.when > s.now {
				s.now = next.when
			}
			s.steps++
			when, ok := next.actor.Step(s.now)
			if !ok {
				break
			}
			if when < s.now {
				panic(fmt.Sprintf("sim: actor %q scheduled into the past (%v < %v)", next.name, when, s.now))
			}
			// Run-next fast path: if the stepped actor rescheduled itself
			// ahead of everything queued (the dominant "self-reschedule at
			// now+Δ" pattern of pollers, pacers, and sinks), dispatch it
			// again directly — no push, no pop, no sift. The guard is the
			// exact dispatch order: the task must precede the heap minimum
			// under (when, seq), be within the deadline, and not have been
			// re-queued by its own side effects mid-step.
			if !next.scheduled && when <= edge {
				if len(s.queue) == 0 || (when < s.queue[0].when || (when == s.queue[0].when && next.seq < s.queue[0].seq)) {
					next.when = when
					s.fastHits++
					continue
				}
			}
			s.WakeAt(next, when)
			break
		}
	}
	s.deadline = 0
	if s.now < edge {
		s.now = edge
	}
}

// Idle reports whether no task is queued.
func (s *Scheduler) Idle() bool { return len(s.queue) == 0 }

// taskHeap is an inlined 4-ary min-heap on (when, seq). Four children per
// node halve the tree depth of the binary heap: pops — the common
// operation under heavy same-timestamp load — trade deeper sift-downs for
// more comparisons per level, which is a win once the comparisons are
// monomorphic and branch-predictable.
type taskHeap []*Task

// push appends t and restores the heap property.
func (h *taskHeap) push(t *Task) {
	t.index = len(*h)
	*h = append(*h, t)
	h.siftUp(t.index)
}

// popMin removes the minimum element ((*h)[0]). The caller has already
// read it.
func (h *taskHeap) popMin() {
	old := *h
	n := len(old) - 1
	min := old[0]
	last := old[n]
	old[n] = nil
	*h = old[:n]
	min.index = -1
	if n > 0 {
		old[0] = last
		last.index = 0
		h.siftDown(0)
	}
}

// siftUp restores the heap property from index i toward the root.
func (h taskHeap) siftUp(i int) {
	t := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if !t.before(p) {
			break
		}
		h[i] = p
		p.index = i
		i = parent
	}
	h[i] = t
	t.index = i
}

// siftDown restores the heap property from index i toward the leaves.
func (h taskHeap) siftDown(i int) {
	n := len(h)
	t := h[i]
	for {
		first := i<<2 + 1 // leftmost child
		if first >= n {
			break
		}
		// Find the smallest of up to four children.
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(h[min]) {
				min = c
			}
		}
		if !h[min].before(t) {
			break
		}
		h[i] = h[min]
		h[i].index = i
		i = min
	}
	h[i] = t
	t.index = i
}

// StepFunc adapts a function to the Actor interface.
type StepFunc func(now units.Time) (units.Time, bool)

// Step implements Actor.
func (f StepFunc) Step(now units.Time) (units.Time, bool) { return f(now) }
