// Package sim provides a deterministic discrete-event scheduler.
//
// The whole testbed runs on a single goroutine: every active component
// (CPU cores, traffic generators, NIC pacers) is an Actor stepped in global
// timestamp order. Ties are broken by registration order, making every run
// bit-for-bit reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// Actor is a simulated active component.
//
// Step runs the actor at time now and returns the time of its next step.
// Returning ok=false parks the actor: it will not run again until something
// calls Scheduler.WakeAt on its Task (used by interrupt-driven components).
type Actor interface {
	Step(now units.Time) (next units.Time, ok bool)
}

// Task is a scheduler handle for one registered actor.
type Task struct {
	actor Actor
	name  string
	seq   int // registration order; breaks timestamp ties deterministically

	when      units.Time
	index     int // heap index, -1 when not queued
	scheduled bool
}

// Name returns the name the task was registered under.
func (t *Task) Name() string { return t.name }

// Scheduled reports whether the task is currently queued to run.
func (t *Task) Scheduled() bool { return t.scheduled }

// When returns the task's queued run time (meaningless if !Scheduled).
func (t *Task) When() units.Time { return t.when }

// Scheduler orders and dispatches actor steps.
type Scheduler struct {
	now   units.Time
	queue taskHeap
	tasks []*Task
	steps uint64
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() units.Time { return s.now }

// Steps returns the total number of actor steps dispatched so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// Register adds an actor (initially parked) and returns its task handle.
func (s *Scheduler) Register(name string, a Actor) *Task {
	t := &Task{actor: a, name: name, seq: len(s.tasks), index: -1}
	s.tasks = append(s.tasks, t)
	return t
}

// WakeAt schedules (or reschedules) the task to run at time at. If the task
// is already queued, the earlier of the two times wins. Scheduling in the
// past is clamped to the present.
func (s *Scheduler) WakeAt(t *Task, at units.Time) {
	if at < s.now {
		at = s.now
	}
	if t.scheduled {
		if at < t.when {
			t.when = at
			heap.Fix(&s.queue, t.index)
		}
		return
	}
	t.when = at
	t.scheduled = true
	heap.Push(&s.queue, t)
}

// RunUntil dispatches steps in timestamp order until the queue is empty or
// the next step would occur after deadline. The clock is left at the last
// dispatched step (or at deadline if nothing ran at/after it).
func (s *Scheduler) RunUntil(deadline units.Time) {
	for s.queue.Len() > 0 {
		next := s.queue[0]
		if next.when > deadline {
			break
		}
		heap.Pop(&s.queue)
		next.scheduled = false
		if next.when > s.now {
			s.now = next.when
		}
		s.steps++
		when, ok := next.actor.Step(s.now)
		if ok {
			if when < s.now {
				panic(fmt.Sprintf("sim: actor %q scheduled into the past (%v < %v)", next.name, when, s.now))
			}
			s.WakeAt(next, when)
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Idle reports whether no task is queued.
func (s *Scheduler) Idle() bool { return s.queue.Len() == 0 }

// taskHeap is a min-heap on (when, seq).
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *taskHeap) Push(x any) {
	t := x.(*Task)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// StepFunc adapts a function to the Actor interface.
type StepFunc func(now units.Time) (units.Time, bool)

// Step implements Actor.
func (f StepFunc) Step(now units.Time) (units.Time, bool) { return f(now) }
