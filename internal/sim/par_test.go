package sim

import (
	"testing"

	"repro/internal/units"
)

// TestRunUntilSliceEquivalence: dispatching a phase as many lookahead-sized
// slices produces the same step times, step count, and final clock as one
// unsliced RunUntil — the property the partitioned engine's windows rest on.
func TestRunUntilSliceEquivalence(t *testing.T) {
	run := func(slice units.Time) (*tick, *tick, *Scheduler) {
		s := NewScheduler()
		a := &tick{interval: 3 * units.Nanosecond, limit: 100}
		b := &tick{interval: 7 * units.Nanosecond, limit: 40}
		s.WakeAt(s.Register("a", a), 0)
		s.WakeAt(s.Register("b", b), 0)
		const horizon = units.Microsecond
		if slice <= 0 {
			s.RunUntil(horizon)
		} else {
			for edge := slice; ; edge += slice {
				if edge > horizon {
					edge = horizon
				}
				s.RunUntilSlice(edge, horizon)
				if edge == horizon {
					break
				}
			}
		}
		return a, b, s
	}

	refA, refB, refS := run(0)
	// Slice widths chosen to land edges both between and exactly on event
	// times (3ns and 7ns grids): the inclusive edge must not double- or
	// zero-count a boundary event.
	for _, slice := range []units.Time{units.Nanosecond, 3 * units.Nanosecond,
		7 * units.Nanosecond, 21 * units.Nanosecond, 100 * units.Nanosecond} {
		a, b, s := run(slice)
		if len(a.times) != len(refA.times) || len(b.times) != len(refB.times) {
			t.Fatalf("slice %v: step counts a=%d b=%d, want a=%d b=%d",
				slice, len(a.times), len(b.times), len(refA.times), len(refB.times))
		}
		for i := range a.times {
			if a.times[i] != refA.times[i] {
				t.Fatalf("slice %v: a step %d at %v, want %v", slice, i, a.times[i], refA.times[i])
			}
		}
		for i := range b.times {
			if b.times[i] != refB.times[i] {
				t.Fatalf("slice %v: b step %d at %v, want %v", slice, i, b.times[i], refB.times[i])
			}
		}
		if s.Now() != refS.Now() {
			t.Errorf("slice %v: clock %v, want %v", slice, s.Now(), refS.Now())
		}
		if s.Steps() != refS.Steps() {
			t.Errorf("slice %v: steps %d, want %d", slice, s.Steps(), refS.Steps())
		}
	}
}

// TestRunUntilSliceDeadline: during a slice, Deadline() reports the phase
// horizon (not the slice edge), so deadline-aware actors (batched rate
// generators) make the same choices as under an unsliced run.
func TestRunUntilSliceDeadline(t *testing.T) {
	s := NewScheduler()
	var seen units.Time
	probe := actorFunc(func(now units.Time) (units.Time, bool) {
		seen = s.Deadline()
		return 0, false
	})
	s.WakeAt(s.Register("probe", probe), 10*units.Nanosecond)
	s.RunUntilSlice(50*units.Nanosecond, units.Microsecond)
	if seen != units.Microsecond {
		t.Errorf("Deadline inside slice = %v, want the phase horizon %v", seen, units.Microsecond)
	}
	if s.Now() != 50*units.Nanosecond {
		t.Errorf("clock after slice = %v, want the slice edge", s.Now())
	}
}

type actorFunc func(units.Time) (units.Time, bool)

func (f actorFunc) Step(now units.Time) (units.Time, bool) { return f(now) }

// TestPartitionedRunUntil: two linked partitions both reach the phase end,
// counters aggregate, and per-partition step times are what a sequential
// scheduler would have produced — regardless of how the windows land.
func TestPartitionedRunUntil(t *testing.T) {
	s0, s1 := NewScheduler(), NewScheduler()
	a := &tick{interval: 3 * units.Nanosecond, limit: 200}
	b := &tick{interval: 5 * units.Nanosecond, limit: 150}
	s0.WakeAt(s0.Register("a", a), 0)
	s1.WakeAt(s1.Register("b", b), 0)

	p := NewPartitioned([]*Scheduler{s0, s1})
	p.Link(0, 1, 10*units.Nanosecond)
	p.Link(1, 0, 10*units.Nanosecond)
	var windows0 int
	p.OnWindow(0, func() { windows0++ })

	const phase = units.Microsecond
	p.RunUntil(phase)

	if s0.Now() != phase || s1.Now() != phase {
		t.Fatalf("clocks = %v, %v, want both at %v", s0.Now(), s1.Now(), phase)
	}
	if len(a.times) != 200 || len(b.times) != 150 {
		t.Fatalf("step counts a=%d b=%d", len(a.times), len(b.times))
	}
	for i, at := range a.times {
		if at != units.Time(i)*3*units.Nanosecond {
			t.Fatalf("a step %d at %v", i, at)
		}
	}
	if p.Steps() != s0.Steps()+s1.Steps() {
		t.Errorf("Steps() = %d, want %d", p.Steps(), s0.Steps()+s1.Steps())
	}
	if windows0 == 0 {
		t.Error("window hook on partition 0 never ran")
	}
}

// TestPartitionedPanics pins the constructor and Link misuse guards.
func TestPartitionedPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("NewPartitioned(1)", func() { NewPartitioned([]*Scheduler{NewScheduler()}) })
	p := NewPartitioned([]*Scheduler{NewScheduler(), NewScheduler()})
	expectPanic("zero lookahead", func() { p.Link(0, 1, 0) })
	expectPanic("self-loop", func() { p.Link(0, 0, units.Nanosecond) })
}
