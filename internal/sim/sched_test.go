package sim

import (
	"fmt"
	"testing"

	"repro/internal/units"
)

// TestHeavySameTimestampTieBreak floods one instant with wakes issued in
// adversarial order: dispatch must follow registration order exactly, for
// several rounds, including tasks that re-wake into the same instant.
func TestHeavySameTimestampTieBreak(t *testing.T) {
	const n = 97 // not a power of four: exercises ragged heap levels
	s := NewScheduler()
	var order []int
	tasks := make([]*Task, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = s.Register(fmt.Sprintf("t%d", i), StepFunc(func(now units.Time) (units.Time, bool) {
			order = append(order, i)
			return 0, false
		}))
	}
	for round := 0; round < 3; round++ {
		order = order[:0]
		at := units.Time(round+1) * units.Microsecond
		// Wake in a scrambled order: reversed, then odds before evens.
		for i := n - 1; i >= 0; i -= 2 {
			s.WakeAt(tasks[i], at)
		}
		for i := n - 2; i >= 0; i -= 2 {
			s.WakeAt(tasks[i], at)
		}
		s.RunUntil(at)
		if len(order) != n {
			t.Fatalf("round %d: dispatched %d of %d", round, len(order), n)
		}
		for i, got := range order {
			if got != i {
				t.Fatalf("round %d: dispatch %d was task %d, want %d (tie-break broken)", round, i, got, i)
			}
		}
	}
}

// TestWakeAtPastClampDuringRun wakes tasks into the past from inside
// another actor's step: the wake must clamp to the current instant and
// still dispatch after the waker finishes (same instant, later seq wins by
// registration order only).
func TestWakeAtPastClampDuringRun(t *testing.T) {
	s := NewScheduler()
	var order []string
	var late *Task
	early := s.Register("early", StepFunc(func(now units.Time) (units.Time, bool) {
		order = append(order, "early")
		s.WakeAt(late, now-50*units.Nanosecond) // in the past: clamps to now
		return 0, false
	}))
	late = s.Register("late", StepFunc(func(now units.Time) (units.Time, bool) {
		order = append(order, fmt.Sprintf("late@%d", now))
		return 0, false
	}))
	s.WakeAt(early, 100*units.Nanosecond)
	s.RunUntil(units.Microsecond)
	if len(order) != 2 || order[0] != "early" || order[1] != "late@100000" {
		t.Fatalf("order = %v, want [early late@100000]", order)
	}
}

// TestParkAndExternalWake exercises the interrupt-driven pattern: an actor
// parks itself (ok=false) and is re-armed by another actor, repeatedly.
// The parked task must not run until woken, and a wake while it is mid-
// step (self-wake from its own side effects) must not be lost.
func TestParkAndExternalWake(t *testing.T) {
	s := NewScheduler()
	var irqRuns []units.Time
	var irqTask *Task
	selfWake := false
	irqTask = s.Register("irq", StepFunc(func(now units.Time) (units.Time, bool) {
		irqRuns = append(irqRuns, now)
		if selfWake {
			selfWake = false
			// A device re-arms the task during its own step (the NAPI
			// re-arm path): the park return below must not cancel it.
			s.WakeAt(irqTask, now+30*units.Nanosecond)
		}
		return 0, false // park
	}))
	ticker := s.Register("ticker", StepFunc(func(now units.Time) (units.Time, bool) {
		if now == 100*units.Nanosecond {
			s.WakeAt(irqTask, now+10*units.Nanosecond)
		}
		if now == 300*units.Nanosecond {
			selfWake = true
			s.WakeAt(irqTask, now)
			return 0, false
		}
		return now + 100*units.Nanosecond, true
	}))
	s.WakeAt(ticker, 100*units.Nanosecond)
	s.RunUntil(units.Microsecond)

	want := []units.Time{110, 300, 330}
	if len(irqRuns) != len(want) {
		t.Fatalf("irq ran %d times at %v, want %d", len(irqRuns), irqRuns, len(want))
	}
	for i, w := range want {
		if irqRuns[i] != w*units.Nanosecond {
			t.Errorf("irq run %d at %v, want %v", i, irqRuns[i], w*units.Nanosecond)
		}
	}
	if irqTask.Scheduled() {
		t.Error("irq task still queued after final park")
	}
}

// TestDispatchOrderMatchesReference drives a pseudo-random schedule
// through the scheduler and through a naive O(n²) reference dispatcher:
// the dispatch sequences must be identical. This pins the 4-ary heap and
// the run-next fast path to the (when, seq) total order.
func TestDispatchOrderMatchesReference(t *testing.T) {
	const (
		actors = 13
		limit  = 2000
		until  = 50 * units.Microsecond
	)

	// nextDelay is a deterministic pseudo-random step delta; some actors
	// collide on timestamps constantly (delta quantized to 80ns), some
	// self-reschedule at tiny deltas (fast-path food), some park.
	nextDelay := func(id int, k uint64) (units.Time, bool) {
		h := uint64(id)*0x9e3779b97f4a7c15 + k*0xbf58476d1ce4e5b9
		h ^= h >> 29
		h *= 0x94d049bb133111eb
		h ^= h >> 32
		switch id % 3 {
		case 0: // collider: multiples of 80ns, frequent ties
			return units.Time(1+h%4) * 80 * units.Nanosecond, true
		case 1: // sprinter: 1-16ns self-reschedule
			return units.Time(1 + h%16), true
		default: // parker: parks every 5th step
			if k%5 == 4 {
				return 0, false
			}
			return units.Time(1+h%7) * 33 * units.Nanosecond, true
		}
	}

	type ev struct {
		id int
		at units.Time
	}

	// Real scheduler.
	var got []ev
	{
		s := NewScheduler()
		counts := make([]uint64, actors)
		tasks := make([]*Task, actors)
		for i := 0; i < actors; i++ {
			i := i
			tasks[i] = s.Register(fmt.Sprintf("a%d", i), StepFunc(func(now units.Time) (units.Time, bool) {
				got = append(got, ev{i, now})
				if len(got) >= limit {
					return 0, false
				}
				d, ok := nextDelay(i, counts[i])
				counts[i]++
				if !ok {
					// Parked actors get revived by a later wake from actor 0's
					// schedule position — emulate via immediate re-wake at a
					// fixed offset so both dispatchers see the same schedule.
					s.WakeAt(tasks[i], now+units.Microsecond)
					return 0, false
				}
				return now + d, true
			}))
			s.WakeAt(tasks[i], units.Time(i)*10*units.Nanosecond)
		}
		s.RunUntil(until)
	}

	// Reference dispatcher: linear scan for min (when, seq).
	var want []ev
	{
		type slot struct {
			when      units.Time
			scheduled bool
		}
		slots := make([]slot, actors)
		counts := make([]uint64, actors)
		for i := 0; i < actors; i++ {
			slots[i] = slot{when: units.Time(i) * 10 * units.Nanosecond, scheduled: true}
		}
		now := units.Time(0)
		for {
			min := -1
			for i := range slots {
				if !slots[i].scheduled {
					continue
				}
				if min < 0 || slots[i].when < slots[min].when {
					min = i
				}
			}
			if min < 0 || slots[min].when > until {
				break
			}
			slots[min].scheduled = false
			if slots[min].when > now {
				now = slots[min].when
			}
			want = append(want, ev{min, now})
			if len(want) >= limit {
				continue
			}
			d, ok := nextDelay(min, counts[min])
			counts[min]++
			next := now + units.Microsecond // parked-revive offset
			if ok {
				next = now + d
			}
			slots[min].when = next
			slots[min].scheduled = true
		}
	}

	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: scheduler ran actor %d at %v, reference actor %d at %v",
				i, got[i].id, got[i].at, want[i].id, want[i].at)
		}
	}
}

// TestFastPathCountsHits sanity-checks the run-next fast path fires for a
// lone self-rescheduling actor (and never changes observable behaviour —
// covered by the reference test above).
func TestFastPathCountsHits(t *testing.T) {
	s := NewScheduler()
	n := 0
	task := s.Register("solo", StepFunc(func(now units.Time) (units.Time, bool) {
		n++
		return now + 10*units.Nanosecond, true
	}))
	s.WakeAt(task, 0)
	s.RunUntil(10 * units.Microsecond)
	if n != 1001 {
		t.Fatalf("steps = %d, want 1001", n)
	}
	if s.FastPathHits() < 1000 {
		t.Errorf("fast path hits = %d, want ~1000 (solo actor should never touch the heap)", s.FastPathHits())
	}
}

// BenchmarkSchedulerChurn measures raw dispatch throughput: many actors
// perpetually rescheduling at staggered offsets (worst case for the heap:
// every step displaces the minimum).
func BenchmarkSchedulerChurn(b *testing.B) {
	for _, actors := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("actors=%d", actors), func(b *testing.B) {
			s := NewScheduler()
			for i := 0; i < actors; i++ {
				step := units.Time(100+i) * units.Nanosecond
				task := s.Register(fmt.Sprintf("a%d", i), nil)
				task.actor = StepFunc(func(now units.Time) (units.Time, bool) {
					return now + step, true
				})
				s.WakeAt(task, units.Time(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			// Each RunUntil slice dispatches ~b.N/loops steps; run one
			// horizon sized so total steps ≈ b.N.
			perStep := 150 * units.Nanosecond / units.Time(actors)
			if perStep <= 0 {
				perStep = 1
			}
			s.RunUntil(s.Now() + units.Time(b.N)*perStep)
			b.ReportMetric(float64(s.Steps())/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkSchedulerSelfReschedule measures the fast-path pattern: one
// actor far ahead of a quiet background set.
func BenchmarkSchedulerSelfReschedule(b *testing.B) {
	s := NewScheduler()
	hot := s.Register("hot", StepFunc(func(now units.Time) (units.Time, bool) {
		return now + units.Nanosecond, true
	}))
	for i := 0; i < 8; i++ {
		t := s.Register(fmt.Sprintf("cold%d", i), StepFunc(func(now units.Time) (units.Time, bool) {
			return now + units.Millisecond, true
		}))
		s.WakeAt(t, 0)
	}
	s.WakeAt(hot, 0)
	b.ReportAllocs()
	b.ResetTimer()
	s.RunUntil(s.Now() + units.Time(b.N)*units.Nanosecond)
}
