package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// tick is an actor that records its step times and re-runs every interval.
type tick struct {
	interval units.Time
	limit    int
	times    []units.Time
}

func (t *tick) Step(now units.Time) (units.Time, bool) {
	t.times = append(t.times, now)
	if len(t.times) >= t.limit {
		return 0, false
	}
	return now + t.interval, true
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	a := &tick{interval: 3 * units.Nanosecond, limit: 4}
	b := &tick{interval: 5 * units.Nanosecond, limit: 3}
	ta := s.Register("a", a)
	tb := s.Register("b", b)
	s.WakeAt(ta, 0)
	s.WakeAt(tb, 0)
	s.RunUntil(units.Microsecond)

	wantA := []units.Time{0, 3000, 6000, 9000}
	wantB := []units.Time{0, 5000, 10000}
	if len(a.times) != len(wantA) || len(b.times) != len(wantB) {
		t.Fatalf("step counts: a=%d b=%d", len(a.times), len(b.times))
	}
	for i, w := range wantA {
		if a.times[i] != w {
			t.Errorf("a step %d at %v, want %v", i, a.times[i], w)
		}
	}
	for i, w := range wantB {
		if b.times[i] != w {
			t.Errorf("b step %d at %v, want %v", i, b.times[i], w)
		}
	}
	if s.Now() != units.Microsecond {
		t.Errorf("clock = %v, want deadline", s.Now())
	}
}

func TestSchedulerTieBreakByRegistration(t *testing.T) {
	s := NewScheduler()
	var order []string
	mk := func(name string) *Task {
		var task *Task
		task = s.Register(name, StepFunc(func(now units.Time) (units.Time, bool) {
			order = append(order, name)
			return 0, false
		}))
		return task
	}
	t1 := mk("first")
	t2 := mk("second")
	t3 := mk("third")
	// Wake in reverse order at the same instant; registration order must win.
	s.WakeAt(t3, 10)
	s.WakeAt(t2, 10)
	s.WakeAt(t1, 10)
	s.RunUntil(20)
	if len(order) != 3 || order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("order = %v", order)
	}
}

func TestWakeAtEarlierWins(t *testing.T) {
	s := NewScheduler()
	var ran units.Time = -1
	task := s.Register("x", StepFunc(func(now units.Time) (units.Time, bool) {
		ran = now
		return 0, false
	}))
	s.WakeAt(task, 100*units.Nanosecond)
	s.WakeAt(task, 40*units.Nanosecond) // earlier: should win
	s.WakeAt(task, 70*units.Nanosecond) // later: ignored
	s.RunUntil(units.Microsecond)
	if ran != 40*units.Nanosecond {
		t.Fatalf("ran at %v, want 40ns", ran)
	}
}

func TestWakeInPastClamps(t *testing.T) {
	s := NewScheduler()
	count := 0
	var task *Task
	task = s.Register("x", StepFunc(func(now units.Time) (units.Time, bool) {
		count++
		if count == 1 {
			return now + 50*units.Nanosecond, true
		}
		return 0, false
	}))
	s.WakeAt(task, 10*units.Nanosecond)
	s.RunUntil(20 * units.Nanosecond)
	// Now s.Now()==20ns; waking at 5ns must clamp to now, not panic.
	s.WakeAt(task, 5*units.Nanosecond)
	if task.When() < 20*units.Nanosecond {
		t.Fatalf("clamped wake time = %v", task.When())
	}
}

func TestDeadlineExcludesLaterSteps(t *testing.T) {
	s := NewScheduler()
	a := &tick{interval: 10 * units.Nanosecond, limit: 1000}
	ta := s.Register("a", a)
	s.WakeAt(ta, 0)
	s.RunUntil(35 * units.Nanosecond)
	if len(a.times) != 4 { // 0, 10, 20, 30
		t.Fatalf("steps before deadline = %d, want 4", len(a.times))
	}
	s.RunUntil(55 * units.Nanosecond)
	if len(a.times) != 6 {
		t.Fatalf("resume steps = %d, want 6", len(a.times))
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincide %d/1000 times", same)
	}
}

func TestRNGDeriveIndependent(t *testing.T) {
	r := NewRNG(7)
	d1 := r.Derive("alpha")
	d2 := r.Derive("beta")
	d1again := r.Derive("alpha")
	if d1.Uint64() != d1again.Uint64() {
		t.Fatal("Derive not deterministic by label")
	}
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("different labels produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(1)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %f", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %f", variance)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(2)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %f", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c == 0 {
			t.Errorf("value %d never drawn", v)
		}
	}
}
