// Conservative parallel dispatch (dist-gem5-style synchronization).
//
// A PartitionedScheduler runs K independent Schedulers — one per actor-graph
// partition — on K goroutines. Safety comes from lookahead, not locks: every
// cross-partition influence travels over a link with a known minimum latency
// L, so when partition j's published clock reads c, nothing j does can become
// visible inside partition i before c + L. Partition i may therefore freely
// dispatch every event up to
//
//	safe(i) = min over inbound links (from j, lookahead L): clock(j) + L
//
// without ever seeing an effect out of timestamp order. Each partition loops:
// drain inbound handoff queues, dispatch one window with RunUntilSlice(safe,
// phase), publish its new clock. There is no global barrier — partitions
// advance as their senders allow, spinning (with Gosched) only when starved.
//
// Bit-identity with the sequential engine follows from three properties:
// per-partition dispatch order is unchanged (same heap, same (when, seq)
// order — see RunUntilSlice); cross-partition frames carry the same
// timestamps they would have carried in-process and are delivered before the
// receiver's clock can reach them (the drain runs at the top of every window,
// and a frame stamped t was pushed while its sender's clock was < t - L <
// every subsequent window edge of the receiver); and no other mutable state
// crosses a cut. Where the window edges fall is a pure host-scheduling
// artifact that no actor can observe.
//
// Liveness: let m be the minimum clock over unfinished partitions. Every
// inbound sender of a partition sitting at m has clock >= m, so its bound is
// >= m + L > m and the partition at m can always advance. Positive lookahead
// on every link is therefore required (Link panics on L <= 0).
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/units"
)

// parEdge is one inbound cross-partition link: the receiver may run to
// clock(from) + lookahead.
type parEdge struct {
	from      int
	lookahead units.Time
}

// paddedClock keeps each partition's published clock on its own cache line;
// the clocks are the only cross-goroutine hot state.
type paddedClock struct {
	t atomic.Int64
	_ [56]byte
}

// PartitionedScheduler coordinates K partition schedulers under
// conservative lookahead synchronization.
type PartitionedScheduler struct {
	scheds  []*Scheduler
	inbound [][]parEdge
	windows [][]func()
	clocks  []paddedClock
}

// NewPartitioned wraps the given per-partition schedulers. The caller wires
// links (Link) and window hooks (OnWindow) before the first RunUntil.
func NewPartitioned(scheds []*Scheduler) *PartitionedScheduler {
	if len(scheds) < 2 {
		panic("sim: partitioned run needs at least 2 schedulers")
	}
	return &PartitionedScheduler{
		scheds:  scheds,
		inbound: make([][]parEdge, len(scheds)),
		windows: make([][]func(), len(scheds)),
		clocks:  make([]paddedClock, len(scheds)),
	}
}

// Parts returns the partition count K.
func (p *PartitionedScheduler) Parts() int { return len(p.scheds) }

// Sched returns partition i's scheduler.
func (p *PartitionedScheduler) Sched(i int) *Scheduler { return p.scheds[i] }

// Link declares that partition `to` receives time-stamped work from
// partition `from` with at least `lookahead` of delay. The lookahead must be
// strictly positive or the conservative loop could deadlock.
func (p *PartitionedScheduler) Link(from, to int, lookahead units.Time) {
	if lookahead <= 0 {
		panic("sim: cross-partition link needs positive lookahead")
	}
	if from == to {
		panic("sim: cross-partition link cannot be a self-loop")
	}
	p.inbound[to] = append(p.inbound[to], parEdge{from: from, lookahead: lookahead})
}

// OnWindow registers fn to run at the top of every dispatch window of
// partition part (and once more after each phase ends). Hooks drain inbound
// frame handoffs and reclaim remotely freed pool buffers; they run on the
// partition's own goroutine, so anything partition-local is safe to touch.
func (p *PartitionedScheduler) OnWindow(part int, fn func()) {
	p.windows[part] = append(p.windows[part], fn)
}

// RunUntil advances all partitions to time to. It blocks until every
// partition has reached it; the final drain leaves all cross-partition
// queues empty, so between phases the testbed state matches what the
// sequential engine would hold (in-flight frames staged at their receiving
// ports, clocks equal). Counter reads after RunUntil returns are ordered
// behind all partition work by the join.
func (p *PartitionedScheduler) RunUntil(to units.Time) {
	for i := range p.scheds {
		p.clocks[i].t.Store(int64(p.scheds[i].Now()))
	}
	if runtime.GOMAXPROCS(0) == 1 {
		// One hardware thread: goroutine workers would only steal the
		// core from each other (a starved partition's spin evicts the
		// one that could progress). Interleave the same windows on this
		// goroutine instead — identical dispatch, no scheduler churn.
		p.runCoop(to)
	} else {
		var wg sync.WaitGroup
		for i := 1; i < len(p.scheds); i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p.runPart(i, to)
			}(i)
		}
		p.runPart(0, to)
		wg.Wait()
	}
	for i := range p.windows {
		for _, fn := range p.windows[i] {
			fn()
		}
	}
}

// safeBound returns how far partition i may dispatch: the phase end,
// lowered to clock + lookahead over each inbound link whose sender has not
// itself finished the phase.
func (p *PartitionedScheduler) safeBound(i int, to units.Time) units.Time {
	safe := to
	for _, e := range p.inbound[i] {
		c := units.Time(p.clocks[e.from].t.Load())
		if c >= to {
			continue
		}
		if b := c + e.lookahead; b < safe {
			safe = b
		}
	}
	return safe
}

// runPart is one partition's conservative dispatch loop (goroutine mode).
func (p *PartitionedScheduler) runPart(i int, to units.Time) {
	s := p.scheds[i]
	now := s.Now()
	for now < to {
		safe := p.safeBound(i, to)
		if safe <= now {
			runtime.Gosched() // starved: a sender must publish first
			continue
		}
		for _, fn := range p.windows[i] {
			fn()
		}
		s.RunUntilSlice(safe, to)
		now = safe
		p.clocks[i].t.Store(int64(now))
	}
}

// runCoop interleaves every partition's windows on the calling goroutine.
// Same conservative bounds, same dispatch, same published clocks — only
// the host-side execution is serialized, so it is used when there is no
// second hardware thread to win (and it still benefits from the smaller
// per-partition heaps). The round-robin always progresses: the partition
// holding the minimum clock has safeBound > now by positive lookahead.
func (p *PartitionedScheduler) runCoop(to units.Time) {
	for {
		allDone := true
		for i := range p.scheds {
			s := p.scheds[i]
			now := s.Now()
			if now >= to {
				continue
			}
			allDone = false
			safe := p.safeBound(i, to)
			if safe <= now {
				continue
			}
			for _, fn := range p.windows[i] {
				fn()
			}
			s.RunUntilSlice(safe, to)
			p.clocks[i].t.Store(int64(safe))
		}
		if allDone {
			return
		}
	}
}

// Steps returns the dispatch count summed over partitions, in partition
// order. The per-partition counts — and hence the sum — are independent of
// where the window edges fell, so Steps is bit-identical to the sequential
// engine's (it is pinned in golden Result digests).
func (p *PartitionedScheduler) Steps() uint64 {
	var n uint64
	for _, s := range p.scheds {
		n += s.Steps()
	}
	return n
}

// FastPathHits returns the run-next fast-path count summed over partitions,
// in partition order. Unlike Steps, this IS window-edge dependent (a heap
// bypass only triggers when the next event fits the current window), so it
// is engine diagnostics only and must never feed a digested output.
func (p *PartitionedScheduler) FastPathHits() uint64 {
	var n uint64
	for _, s := range p.scheds {
		n += s.FastPathHits()
	}
	return n
}
