package cost

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestMeterDrain(t *testing.T) {
	m := NewMeter(Default(), nil)
	m.Charge(26) // 26 cycles at 2.6GHz = 10ns
	if d := m.Drain(); d != 10*units.Nanosecond {
		t.Fatalf("drain = %v, want 10ns", d)
	}
	if m.Pending() != 0 {
		t.Fatal("pending not reset")
	}
	if m.Total() != 26 {
		t.Fatalf("total = %d", m.Total())
	}
	if d := m.Drain(); d != 0 {
		t.Fatalf("second drain = %v", d)
	}
}

func TestCopyCostScalesWithBytes(t *testing.T) {
	mod := Default()
	c64 := mod.CopyCost(64)
	c1024 := mod.CopyCost(1024)
	if c64 >= c1024 {
		t.Fatalf("copy cost not increasing: %d vs %d", c64, c1024)
	}
	// Base must dominate for tiny copies, bytes for big ones.
	if c64 > 3*mod.CopyBase {
		t.Fatalf("64B copy unexpectedly expensive: %d", c64)
	}
	if c1024 < 5*mod.CopyBase {
		t.Fatalf("1024B copy unexpectedly cheap: %d", c1024)
	}
}

func TestChargeNoisyMeanAboveBase(t *testing.T) {
	m := NewMeter(Default(), sim.NewRNG(5))
	const base, n = 100, 20000
	for i := 0; i < n; i++ {
		m.ChargeNoisy(base, 0.5)
	}
	mean := float64(m.Pending()) / n
	// E[c(1+0.5·Exp)] = 150.
	if mean < 140 || mean > 160 {
		t.Fatalf("noisy mean = %f, want ~150", mean)
	}
}

func TestChargeNoisyZeroFracDeterministic(t *testing.T) {
	m := NewMeter(Default(), sim.NewRNG(5))
	m.ChargeNoisy(100, 0)
	if m.Pending() != 100 {
		t.Fatalf("pending = %d", m.Pending())
	}
}

func TestStallRoundTrip(t *testing.T) {
	f := func(us uint16) bool {
		m := NewMeter(Default(), nil)
		d := units.Time(us) * units.Microsecond
		m.Stall(d)
		got := m.Drain()
		diff := got - d
		if diff < 0 {
			diff = -diff
		}
		return diff <= units.Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMeter(Default(), nil).Charge(-1)
}

func TestDefaultModelBudgetSanity(t *testing.T) {
	// A p2p forwarding path (rx burst + tx burst + per-packet handling)
	// must fit inside the 64B@10G budget of 174 cycles/packet for the
	// fastest switches to be able to saturate the link.
	mod := Default()
	perPkt := mod.RxPkt + mod.TxPkt // amortized burst costs are ~2 cycles/pkt at 32
	if perPkt > 100 {
		t.Fatalf("primitive I/O cost %d cycles/pkt leaves no room for switching", perPkt)
	}
}

func TestModulationPhases(t *testing.T) {
	mo := Modulation{HighFactor: 1.2, HighDur: units.Millisecond, LowFactor: 0.9, LowDur: units.Millisecond}
	if f := mo.Factor(100 * units.Microsecond); f != 1.2 {
		t.Fatalf("high phase factor = %f", f)
	}
	if f := mo.Factor(1500 * units.Microsecond); f != 0.9 {
		t.Fatalf("low phase factor = %f", f)
	}
	// Periodic.
	if f := mo.Factor(2100 * units.Microsecond); f != 1.2 {
		t.Fatalf("wrapped factor = %f", f)
	}
	if got := mo.Scale(0, 1000); got != 1200 {
		t.Fatalf("scale = %d", got)
	}
	var zero Modulation
	if zero.Factor(units.Second) != 1 || zero.Scale(0, 77) != 77 {
		t.Fatal("zero modulation must be identity")
	}
}

func TestModulationAverageNearUnity(t *testing.T) {
	// The instability models must keep the time-averaged factor close to
	// 1 relative to their amplitude, so R⁺ calibration stays valid.
	mo := Modulation{HighFactor: 1.15, HighDur: 1200 * units.Microsecond,
		LowFactor: 0.97, LowDur: 800 * units.Microsecond}
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		// Sample exactly one 2 ms period.
		sum += mo.Factor(units.Time(i) * 200 * units.Nanosecond)
	}
	avg := sum / n
	if avg < 1.0 || avg > 1.09 {
		t.Fatalf("avg factor = %f", avg)
	}
}
