package cost

import "repro/internal/units"

// NUMA-ish locality model for multi-core runs. The testbed mirrors the
// paper's dual-socket server (Fig. 3): the SUT's NICs and packet memory
// are homed on socket 0, and a data plane core on the remote socket pays
// a surcharge for every frame it touches through the interconnect
// (QPI-era remote cache-line fills). The model deliberately stays at the
// gem5-kernel-bypass level of abstraction — charge the architectural
// cost per touched frame, do not simulate the cache hierarchy.
//
// Single-core runs never consult this file: core 0 is on socket 0, where
// every device lives, so no surcharge path is reachable and the
// calibrated single-core outputs (ModelVersion "conext19-cal1") are
// untouched.

// NUMA maps simulated cores onto sockets.
type NUMA struct {
	// CoresPerSocket is the socket stride: core k lives on socket
	// k/CoresPerSocket. The testbed's machine has two 8-core sockets.
	CoresPerSocket int
}

// DefaultNUMA returns the testbed topology: two sockets of eight cores,
// devices and packet memory homed on socket 0.
func DefaultNUMA() NUMA { return NUMA{CoresPerSocket: 8} }

// SocketOf returns the socket housing core k.
func (n NUMA) SocketOf(k int) int {
	if n.CoresPerSocket <= 0 {
		return 0
	}
	return k / n.CoresPerSocket
}

// Remote reports whether core k is on a different socket than home.
func (n NUMA) Remote(k, home int) bool { return n.SocketOf(k) != home }

// RemoteCost returns the locality surcharge for one frame of len bytes
// touched across the socket interconnect.
func (m *Model) RemoteCost(frameLen int) units.Cycles {
	return m.RemoteTouch + m.RemotePerByteMilli*units.Cycles(frameLen)/1000
}
