// Package cost models CPU time. Switch data planes run real Go code over
// real data structures, but the *simulated* time they consume is accounted
// here: every primitive operation (poll, descriptor ring access, byte copy,
// hash lookup, interrupt, syscall) charges cycles to a Meter, and the
// simulated core advances its clock by the drained total.
//
// The primitive prices below are shared by every switch; per-switch pipeline
// constants live in the switch packages and are calibrated against the
// paper's measured throughputs (see DESIGN.md §7).
package cost

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// ModelVersion identifies the calibrated cost-model generation. Bump it
// whenever any cycle price here or in a switch package changes: cached
// campaign results are keyed on it, so a bump invalidates every cached
// measurement taken under the old prices.
const ModelVersion = "conext19-cal1"

// Model holds the primitive operation prices for one simulated machine.
type Model struct {
	Freq units.Freq

	// IdlePoll is an empty poll-mode iteration (DPDK rx_burst returning 0).
	IdlePoll units.Cycles

	// RxBurst/TxBurst are the fixed per-burst costs of a PMD rx/tx call;
	// RxPkt/TxPkt the per-descriptor costs.
	RxBurst, RxPkt units.Cycles
	TxBurst, TxPkt units.Cycles

	// CopyBase + CopyPerByteMilli/1000·len is the price of one packet
	// copy (the vhost-user tax; ptnet avoids it).
	CopyBase         units.Cycles
	CopyPerByteMilli units.Cycles // milli-cycles per byte

	// VhostDesc is the per-packet descriptor/avail/used-ring handling on
	// each virtio crossing, beyond the data copy itself.
	VhostDesc units.Cycles

	// PtnetDesc is the per-packet descriptor cost of a zero-copy netmap
	// passthrough crossing.
	PtnetDesc units.Cycles

	// DMAPerByteMilli prices the per-byte share of moving a frame across
	// a physical port (descriptor DMA, cache interaction), in
	// milli-cycles per byte.
	DMAPerByteMilli units.Cycles

	// HashLookup is one hash-table probe (EMC, MAC table, flow table).
	HashLookup units.Cycles

	// Interrupt and Syscall price netmap-style kernel I/O (VALE).
	Interrupt units.Cycles
	Syscall   units.Cycles

	// Multi-core dispatch prices (internal/multicore). None of these is
	// reachable on a single-core run, so they live outside the
	// ModelVersion calibration envelope.
	//
	// HandoffPush/HandoffPop price one packet crossing an inter-core
	// handoff ring (RTC pipeline mode): the producer's store + doorbell
	// share, and the consumer's cache-line pull of descriptor + header.
	HandoffPush, HandoffPop units.Cycles
	// SteerPerPkt is the RX/steering core's per-packet share of hashing
	// a frame and picking its worker ring.
	SteerPerPkt units.Cycles
	// RemoteTouch + RemotePerByteMilli/1000·len surcharges every frame a
	// core touches on the far socket (device rings and packet memory are
	// homed on socket 0 — see numa.go).
	RemoteTouch        units.Cycles
	RemotePerByteMilli units.Cycles // milli-cycles per byte
}

// Default returns the testbed's machine model: a 2.6 GHz Haswell-class core
// with DPDK-era primitive costs.
func Default() *Model {
	return &Model{
		Freq:             units.DefaultCPUFreq,
		IdlePoll:         60,
		RxBurst:          30,
		RxPkt:            14,
		TxBurst:          30,
		TxPkt:            14,
		CopyBase:         20,
		CopyPerByteMilli: 220, // 0.22 cycles/B ≈ 11 GB/s effective small-copy bandwidth
		VhostDesc:        60,
		PtnetDesc:        10,
		DMAPerByteMilli:  100, // 0.1 cycles/B
		HashLookup:       28,
		Interrupt:        2600, // ~1 us wakeup path
		Syscall:          1300, // ~0.5 us

		HandoffPush:        40, // SPSC enqueue + line ownership transfer
		HandoffPop:         45, // dequeue + remote-dirty line pull
		SteerPerPkt:        25, // RSS hash over the 5-tuple + ring pick
		RemoteTouch:        60, // cross-socket descriptor/header fill
		RemotePerByteMilli: 80, // 0.08 cycles/B of remote payload traffic
	}
}

// CopyCost returns the price of copying n bytes.
func (m *Model) CopyCost(n int) units.Cycles {
	return m.CopyBase + m.CopyPerByteMilli*units.Cycles(n)/1000
}

// Modulation is a slow square-wave efficiency modulation: phases of
// degraded throughput (flow revalidation sweeps, trace-cache churn, buffer
// reclamation) that a saturated R⁺ measurement averages over but that a
// 0.99·R⁺ constant-bit-rate run collides with, producing the paper's
// congested-tail latencies (Table 3). During HighDur every charge is
// scaled by HighFactor (>1), then by LowFactor (<1) for LowDur.
type Modulation struct {
	HighFactor, LowFactor float64
	HighDur, LowDur       units.Time
}

// Factor returns the multiplier in effect at time now.
func (mo Modulation) Factor(now units.Time) float64 {
	period := mo.HighDur + mo.LowDur
	if period <= 0 {
		return 1
	}
	if now%period < mo.HighDur {
		return mo.HighFactor
	}
	return mo.LowFactor
}

// Scale applies the modulation to a cycle count.
func (mo Modulation) Scale(now units.Time, c units.Cycles) units.Cycles {
	f := mo.Factor(now)
	if f == 1 || f == 0 {
		return c
	}
	return units.Cycles(float64(c) * f)
}

// Meter accumulates cycles consumed by one simulated core between
// scheduler steps.
type Meter struct {
	Model *Model
	RNG   *sim.RNG
	acc   units.Cycles
	total units.Cycles
}

// NewMeter returns a meter over the given model and random stream.
func NewMeter(m *Model, rng *sim.RNG) *Meter {
	return &Meter{Model: m, RNG: rng}
}

// Charge adds c cycles.
func (mt *Meter) Charge(c units.Cycles) {
	if c < 0 {
		panic("cost: negative charge")
	}
	mt.acc += c
}

// ChargeCopy adds the price of copying n bytes.
func (mt *Meter) ChargeCopy(n int) { mt.Charge(mt.Model.CopyCost(n)) }

// ChargeNoisy adds c cycles plus a one-sided noise term: c·frac·Exp(1).
// Exponential noise gives the heavy(ish) tail that distinguishes unstable
// pipelines (t4p4s) from stable ones (VPP) in the paper's 0.99·R⁺ rows.
func (mt *Meter) ChargeNoisy(c units.Cycles, frac float64) {
	n := c
	if frac > 0 && mt.RNG != nil {
		n += units.Cycles(float64(c) * frac * mt.RNG.ExpFloat64())
	}
	mt.Charge(n)
}

// ChargeBatch adds n frames' worth of a fixed per-frame cost in one call.
// Bit-identical to n individual Charge(c) calls: integer cycle sums are
// associative, so only the host-side call count changes.
func (mt *Meter) ChargeBatch(c units.Cycles, n int) {
	if n <= 0 {
		return
	}
	mt.Charge(c * units.Cycles(n))
}

// ChargeNoisyBatch adds n frames' worth of ChargeNoisy(c, frac), consuming
// the RNG stream exactly as n individual calls would: one ExpFloat64 draw
// per frame, each converted to whole cycles *before* summing (the per-frame
// truncation is what makes the total bit-identical to the per-frame path).
// Only the Charge call count is amortized.
func (mt *Meter) ChargeNoisyBatch(c units.Cycles, frac float64, n int) {
	if n <= 0 {
		return
	}
	if frac <= 0 || mt.RNG == nil {
		mt.Charge(c * units.Cycles(n))
		return
	}
	total := units.Cycles(0)
	for i := 0; i < n; i++ {
		total += c + units.Cycles(float64(c)*frac*mt.RNG.ExpFloat64())
	}
	mt.Charge(total)
}

// ScaleBy applies a modulation factor sampled earlier with Factor(now),
// identically to Modulation.Scale at that instant. Hot paths hoist the
// Factor call out of per-frame loops (now is constant within one poll) and
// apply the cached factor here.
func ScaleBy(f float64, c units.Cycles) units.Cycles {
	if f == 1 || f == 0 {
		return c
	}
	return units.Cycles(float64(c) * f)
}

// Stall charges a wall-clock duration (converted to cycles), used for
// modelled pauses such as OvS revalidation or LuaJIT trace compilation.
func (mt *Meter) Stall(d units.Time) {
	mt.Charge(mt.Model.Freq.CyclesIn(d))
}

// Pending returns the not-yet-drained cycles.
func (mt *Meter) Pending() units.Cycles { return mt.acc }

// Total returns all cycles ever charged.
func (mt *Meter) Total() units.Cycles { return mt.total }

// Drain converts the accumulated cycles to simulated time and resets the
// accumulator.
func (mt *Meter) Drain() units.Time {
	c := mt.acc
	mt.acc = 0
	mt.total += c
	return mt.Model.Freq.Duration(c)
}
