package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/cost"
)

// ManifestRecord is one JSONL line of a campaign manifest: one cell's
// content-addressed key, status, and (for completed cells) its result.
// A manifest is the campaign's durable progress ledger — re-running a
// killed campaign against the same manifest replays the recorded cells
// and executes only the remainder.
type ManifestRecord struct {
	Index   int    `json:"index"`
	ID      string `json:"id"`
	Key     string `json:"key"`
	Version string `json:"version"`
	Status  string `json:"status"` // "done"
	Worker  string `json:"worker,omitempty"`

	Result *core.Result `json:"result,omitempty"`
}

// Manifest is an append-only JSONL campaign progress ledger, keyed by the
// cells' content addresses (CacheKey). Only error-free completions are
// recorded: failed, panicked, and timed-out cells re-run on resume.
// Records from a different cost-model version are ignored on load — a
// recalibration invalidates a manifest exactly as it invalidates the
// result cache. Unparsable lines (a run killed mid-append) are skipped,
// never fatal: the worst case is re-measuring one cell.
type Manifest struct {
	mu   sync.Mutex
	path string
	f    *os.File
	enc  *json.Encoder
	done map[string]*core.Result // key -> recorded result
}

// OpenManifest opens (creating if needed) a manifest file and loads its
// completed-cell records.
func OpenManifest(path string) (*Manifest, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: opening manifest: %w", err)
	}
	m := &Manifest{path: path, f: f, done: make(map[string]*core.Result)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var size int64
	sawNewline := true
	for sc.Scan() {
		line := sc.Bytes()
		size += int64(len(line)) + 1
		var rec ManifestRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn or foreign line: the cell re-runs
		}
		if rec.Status != "done" || rec.Version != cost.ModelVersion || rec.Result == nil {
			continue
		}
		m.done[rec.Key] = rec.Result
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: reading manifest: %w", err)
	}
	// Appends must start on a fresh line even if the previous run died
	// mid-write; a lone newline is harmless and keeps every later record
	// parsable.
	if fi, err := f.Stat(); err == nil && fi.Size() > 0 {
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, fi.Size()-1); err == nil {
			sawNewline = buf[0] == '\n'
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: seeking manifest: %w", err)
	}
	if !sawNewline {
		f.Write([]byte{'\n'})
	}
	m.enc = json.NewEncoder(f)
	return m, nil
}

// Path returns the manifest file path.
func (m *Manifest) Path() string { return m.path }

// Len counts the loaded completed-cell records.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.done)
}

// Lookup returns the recorded result for a cell key, if any.
func (m *Manifest) Lookup(key string) (core.Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if res, ok := m.done[key]; ok {
		return *res, true
	}
	return core.Result{}, false
}

// Record appends a completed cell. Re-recording a key already in the
// ledger is a no-op, so replayed and re-issued cells never duplicate
// lines. Write errors are swallowed like cache Put errors: a manifest
// that cannot persist degrades to re-measurement on the next resume.
func (m *Manifest) Record(index int, id, worker, key string, res core.Result) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.done[key]; ok {
		return
	}
	r := res
	m.done[key] = &r
	m.enc.Encode(ManifestRecord{
		Index: index, ID: id, Key: key,
		Version: cost.ModelVersion, Status: "done",
		Worker: worker, Result: &r,
	})
}

// Close flushes and closes the manifest file.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.f.Close()
}
