package campaign

import (
	"os"
	"path/filepath"
	"sort"
	"time"
)

// PruneStats summarizes one cache GC pass.
type PruneStats struct {
	// Scanned is the number of intact entries found.
	Scanned int
	// Removed is how many entries the pass evicted.
	Removed int
	// BytesBefore/BytesAfter are the cache's total entry bytes around the
	// pass.
	BytesBefore int64
	BytesAfter  int64
}

// Prune evicts entries until the cache's total size is at or below
// maxBytes, oldest access time first (falling back to modification time on
// filesystems that don't surface atime). Eviction order is deterministic:
// ties on timestamp break by key, so two prunes of identical trees remove
// identical sets. maxBytes <= 0 empties the cache.
func (c *Cache) Prune(maxBytes int64) (PruneStats, error) {
	type ent struct {
		path string
		size int64
		at   time.Time
	}
	var (
		ents  []ent
		stats PruneStats
	)
	err := filepath.Walk(c.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		ents = append(ents, ent{path: path, size: info.Size(), at: atime(info)})
		stats.BytesBefore += info.Size()
		return nil
	})
	if err != nil {
		return stats, err
	}
	stats.Scanned = len(ents)
	stats.BytesAfter = stats.BytesBefore
	sort.Slice(ents, func(i, j int) bool {
		if !ents[i].at.Equal(ents[j].at) {
			return ents[i].at.Before(ents[j].at)
		}
		return ents[i].path < ents[j].path
	})
	for _, e := range ents {
		if stats.BytesAfter <= maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil {
			return stats, err
		}
		stats.Removed++
		stats.BytesAfter -= e.size
		// Drop the fan-out directory if this was its last entry; an empty
		// shard dir is recreated on demand by the next Put.
		os.Remove(filepath.Dir(e.path))
	}
	return stats, nil
}
