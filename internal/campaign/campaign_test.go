package campaign

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/units"
)

// quickCfg is a sub-millisecond measurement so pool tests stay fast.
func quickCfg(name string, scn core.ScenarioKind) core.Config {
	return core.Config{
		Switch: name, Scenario: scn,
		Duration: 500 * units.Microsecond,
		Warmup:   200 * units.Microsecond,
	}
}

// smallCampaign mixes switches and scenarios across 8 cells.
func smallCampaign(name string) Campaign {
	var specs []Spec
	for _, sw := range []string{"vpp", "ovs", "bess", "vale"} {
		specs = append(specs, Spec{Cfg: quickCfg(sw, core.P2P)})
		specs = append(specs, Spec{Cfg: quickCfg(sw, core.V2V)})
	}
	return Campaign{Name: name, Specs: specs}
}

func TestCampaignRunsAllCells(t *testing.T) {
	o := New(context.Background(), Options{Workers: 4})
	rep, err := o.Run(smallCampaign("small"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("failed = %d: %v", rep.Failed, rep.Err())
	}
	if len(rep.Outcomes) != 8 {
		t.Fatalf("outcomes = %d", len(rep.Outcomes))
	}
	for i, out := range rep.Outcomes {
		if out.Err != nil {
			t.Fatalf("cell %d (%s): %v", i, out.Spec.ID, out.Err)
		}
		if out.Result.Gbps <= 0 {
			t.Fatalf("cell %d (%s): no traffic", i, out.Spec.ID)
		}
		if out.Spec.ID == "" {
			t.Fatalf("cell %d: empty auto ID", i)
		}
	}
}

// TestPanicIsolation is the acceptance scenario: one artificially
// panicking cell fails with a captured stack, every other cell succeeds,
// and the campaign reports a non-nil error (non-zero exit in the CLI).
func TestPanicIsolation(t *testing.T) {
	c := smallCampaign("panic")
	c.Specs = append(c.Specs, Spec{ID: "boom", Cfg: quickCfg("snabb", core.P2P)})
	o := New(context.Background(), Options{Workers: 4})
	o.run = func(cfg core.Config) (core.Result, error) {
		if cfg.Switch == "snabb" {
			panic("simulated diverging cell")
		}
		return core.Run(cfg)
	}
	rep, err := o.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Fatalf("failed = %d, want 1", rep.Failed)
	}
	boom := rep.Outcomes[len(rep.Outcomes)-1]
	if !boom.Panicked || !errors.Is(boom.Err, ErrCellPanicked) {
		t.Fatalf("panicking cell outcome: %+v", boom)
	}
	if !strings.Contains(boom.Err.Error(), "simulated diverging cell") {
		t.Fatalf("panic message lost: %v", boom.Err)
	}
	if !strings.Contains(boom.Stack, "goroutine") {
		t.Fatalf("no stack captured: %q", boom.Stack)
	}
	for _, out := range rep.Outcomes[:len(rep.Outcomes)-1] {
		if out.Err != nil {
			t.Fatalf("healthy cell %s infected: %v", out.Spec.ID, out.Err)
		}
	}
	if rep.Err() == nil || !strings.Contains(rep.Err().Error(), "boom") {
		t.Fatalf("report error = %v", rep.Err())
	}
}

func TestCellTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	stall := func(cfg core.Config) (core.Result, error) {
		if cfg.Switch == "t4p4s" {
			<-release // stall until test teardown
			return core.Result{}, nil
		}
		return core.Run(cfg)
	}

	// The timeout must be generous enough that healthy cells always beat
	// it, even race-instrumented on a loaded single-core host: only the
	// artificially stuck cell may trip it.
	c := Campaign{Name: "timeout", Specs: []Spec{
		{Cfg: quickCfg("vpp", core.P2P)},
		{Cfg: quickCfg("ovs", core.P2P)},
		{ID: "stuck", Cfg: quickCfg("t4p4s", core.P2P)},
	}}
	o := New(context.Background(), Options{Workers: 2, Timeout: 3 * time.Second})
	o.run = stall
	rep, err := o.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	stuck := rep.Outcomes[len(rep.Outcomes)-1]
	if !errors.Is(stuck.Err, ErrCellTimeout) {
		t.Fatalf("stuck cell err = %v", stuck.Err)
	}
	if rep.Failed != 1 {
		t.Fatalf("failed = %d: %v", rep.Failed, rep.Err())
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	c := smallCampaign("cancel")
	o := New(ctx, Options{Workers: 1})
	o.run = func(cfg core.Config) (core.Result, error) {
		once.Do(cancel) // cancel as soon as the first cell runs
		return core.Run(cfg)
	}
	rep, err := o.Run(c)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var canceled int
	for _, out := range rep.Outcomes {
		if errors.Is(out.Err, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no cell recorded the cancellation")
	}
}

func TestEventsStream(t *testing.T) {
	var mu sync.Mutex
	counts := map[EventType]int{}
	var lastDone int
	o := New(context.Background(), Options{
		Workers: 2,
		Events: func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			counts[ev.Type]++
			if ev.Total != 8 {
				t.Errorf("event total = %d", ev.Total)
			}
			lastDone = ev.Done
		},
	})
	rep, err := o.Run(smallCampaign("events"))
	if err != nil || rep.Failed != 0 {
		t.Fatalf("run: %v / %v", err, rep.Err())
	}
	if counts[EventStarted] != 8 || counts[EventFinished] != 8 {
		t.Fatalf("event counts = %v", counts)
	}
	if lastDone != 8 {
		t.Fatalf("final done = %d", lastDone)
	}
}

func TestRunAllImplementsRunner(t *testing.T) {
	var _ core.Runner = (*Orchestrator)(nil)
	o := New(context.Background(), Options{Workers: 4})
	specs := []core.Config{quickCfg("vpp", core.P2P), quickCfg("ovs", core.P2P)}
	outs := o.RunAll(specs)
	if len(outs) != 2 {
		t.Fatalf("outs = %d", len(outs))
	}
	for i, out := range outs {
		if out.Err != nil || out.Result.Gbps <= 0 {
			t.Fatalf("spec %d: %+v", i, out)
		}
	}
}

func TestBuiltinCampaigns(t *testing.T) {
	for _, name := range BuiltinNames() {
		c, err := Builtin(name, core.Quick)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(c.Specs) == 0 {
			t.Fatalf("%s: empty campaign", name)
		}
		seen := map[string]bool{}
		for _, s := range c.Specs {
			if s.ID == "" {
				t.Fatalf("%s: spec without ID", name)
			}
			if seen[s.ID] {
				t.Fatalf("%s: duplicate spec ID %s", name, s.ID)
			}
			seen[s.ID] = true
		}
		if BuiltinDescription(name) == "" {
			t.Fatalf("%s: no description", name)
		}
	}
	if _, err := Builtin("nope", core.Quick); err == nil {
		t.Fatal("unknown campaign resolved")
	}
}
