// Package campaign orchestrates experiment campaigns: named sets of
// independent deterministic measurements (the cells behind every figure
// and table of the paper) executed by a bounded worker pool, with a
// content-addressed result cache, per-cell panic isolation and wall-clock
// timeouts, a progress/event stream, and a machine-readable JSONL
// artifact log.
//
// One simulation is single-threaded and deterministic; a campaign fans
// many of them out across GOMAXPROCS-bounded workers while preserving
// deterministic result ordering — outcomes are indexed by spec position,
// never by completion order, so a Workers=8 campaign is bit-identical to
// the same campaign at Workers=1.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// Spec is one campaign cell: a named measurement configuration.
type Spec struct {
	// ID is a stable human-readable cell name, e.g. "fig4a/vpp-p2p-64".
	// AutoID derives one from the config when the caller doesn't care.
	ID string
	// Cfg is the measurement. It is canonicalized (defaults applied)
	// before hashing and execution.
	Cfg core.Config
}

// AutoID derives a stable cell name from a config.
func AutoID(cfg core.Config) string {
	c := cfg.Canonical()
	var b strings.Builder
	fmt.Fprintf(&b, "%s-%s", c.Switch, c.Scenario)
	if c.Scenario == core.Loopback {
		fmt.Fprintf(&b, "-c%d", c.Chain)
	}
	if c.IMIX {
		b.WriteString("-imix")
	} else {
		fmt.Fprintf(&b, "-%d", c.FrameLen)
	}
	if c.Bidir {
		b.WriteString("-bidir")
	}
	if c.Flows > 1 {
		fmt.Fprintf(&b, "-%df", c.Flows)
	}
	if c.ZipfSkew > 0 {
		fmt.Fprintf(&b, "-zipf%g", c.ZipfSkew)
	}
	if c.RuleUpdateRate > 0 {
		fmt.Fprintf(&b, "-%gups", c.RuleUpdateRate)
	}
	if c.SUTCores > 1 {
		fmt.Fprintf(&b, "-%dcore-%s", c.SUTCores, c.Dispatch)
		if c.Dispatch == core.DispatchRSS && c.RSSPolicy != "" {
			fmt.Fprintf(&b, "-%s", c.RSSPolicy)
		}
	}
	if c.Reversed {
		b.WriteString("-rev")
	}
	if c.LatencyTopology {
		b.WriteString("-lat")
	}
	if c.Rate == 0 {
		b.WriteString("-sat")
	} else {
		fmt.Fprintf(&b, "-%.0fmbps", float64(c.Rate)/1e6)
	}
	if c.ProbeEvery > 0 {
		b.WriteString("-probed")
	}
	return b.String()
}

// Campaign is a named set of specs.
type Campaign struct {
	Name  string
	Specs []Spec
}

// Options configures an Orchestrator.
type Options struct {
	// Workers bounds the pool; <=0 means GOMAXPROCS. Workers=1 is the
	// serial path — same code, one goroutine.
	Workers int
	// Timeout is the per-cell wall-clock budget (0 = unlimited). A cell
	// that exceeds it fails with ErrCellTimeout; because a simulation
	// cannot be preempted mid-step, its goroutine is abandoned and the
	// worker slot moves on.
	Timeout time.Duration
	// Cache, when non-nil, serves repeated configs and stores fresh
	// results. A *Cache is the local on-disk store; internal/fabric
	// supplies HTTP-backed and tiered implementations.
	Cache Store
	// Manifest, when non-nil, is the campaign's durable progress ledger:
	// cells it records as done replay without running, and fresh
	// completions are appended, so a killed campaign resumes from where
	// it stopped.
	Manifest *Manifest
	// Events receives progress events (nil = silent). Callbacks are
	// serialized; they must not block for long.
	Events func(Event)
}

// Orchestrator executes campaigns under one Options set. It implements
// core.Runner, so the figure/table suites run through it directly.
type Orchestrator struct {
	opts Options
	ctx  context.Context
	// run executes one simulation; tests swap it to inject panics and
	// stalls.
	run func(core.Config) (core.Result, error)
}

// New returns an orchestrator. ctx cancels campaign execution between
// cells (nil means context.Background()).
func New(ctx context.Context, opts Options) *Orchestrator {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Orchestrator{opts: opts, ctx: ctx, run: core.Run}
}

// ErrCellTimeout marks a cell that exceeded Options.Timeout.
var ErrCellTimeout = errors.New("campaign: cell exceeded its wall-clock timeout")

// ErrCellPanicked marks a cell whose simulation panicked; Outcome.Stack
// holds the captured stack.
var ErrCellPanicked = errors.New("campaign: cell panicked")

// Outcome is one cell's execution record, in spec order.
type Outcome struct {
	Spec   Spec
	Result core.Result
	Err    error
	// Cached reports a result served without running: a cache hit or a
	// manifest replay.
	Cached bool
	// Worker identifies the executor: "local" for in-process execution
	// and cache hits, "manifest" for resume replays, and the worker's ID
	// for cells a fabric worker ran.
	Worker string
	// Panicked cells carry the recovered value's message in Err and the
	// goroutine stack here.
	Panicked bool
	Stack    string
	// Wall is host wall-clock time spent executing the cell (a timing
	// field: excluded from determinism comparisons).
	Wall time.Duration
}

// Report is a completed campaign.
type Report struct {
	Name     string
	Outcomes []Outcome // spec order
	// Wall is the campaign's host wall-clock time.
	Wall time.Duration
	// CacheHits counts cells served from the cache.
	CacheHits int
	// Failed counts cells with a non-nil error (ErrChainTooLong is a
	// legitimate per-switch limit, not a failure).
	Failed int
}

// Err summarizes the failed cells, nil if none failed.
func (r *Report) Err() error {
	if r.Failed == 0 {
		return nil
	}
	var ids []string
	for _, o := range r.Outcomes {
		if cellFailed(o.Err) {
			ids = append(ids, o.Spec.ID)
		}
	}
	return fmt.Errorf("campaign %s: %d/%d cells failed: %s",
		r.Name, r.Failed, len(r.Outcomes), strings.Join(ids, ", "))
}

func cellFailed(err error) bool { return CellFailed(err) }

// CellFailed reports whether a cell error is a real failure.
// ErrChainTooLong is a legitimate per-switch limit the figures render as
// "-", not a failure; everything else (panics, timeouts, hard errors) is.
func CellFailed(err error) bool {
	return err != nil && !errors.Is(err, core.ErrChainTooLong)
}

// WorkerCounts aggregates completed cells per executor identity — the
// straggler view of a fabric run ("worker-a: 40 cells, worker-b: 7").
func (r *Report) WorkerCounts() map[string]int {
	counts := make(map[string]int)
	for _, o := range r.Outcomes {
		if o.Worker != "" {
			counts[o.Worker]++
		}
	}
	return counts
}

// Run executes the campaign: every cell exactly once, fanned out over the
// worker pool, outcomes in spec order. Cell failures (errors, panics,
// timeouts) do not abort the campaign — they are collected in the report;
// only context cancellation returns an error with a partial report.
func (o *Orchestrator) Run(c Campaign) (*Report, error) {
	start := time.Now()
	rep := &Report{Name: c.Name, Outcomes: make([]Outcome, len(c.Specs))}
	for i := range c.Specs {
		if c.Specs[i].ID == "" {
			c.Specs[i].ID = AutoID(c.Specs[i].Cfg)
		}
	}

	var (
		mu   sync.Mutex // guards done/emit state
		done int
	)
	emit := func(ev Event) {
		if o.opts.Events == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		ev.Total = len(c.Specs)
		ev.Done = done
		ev.Elapsed = time.Since(start)
		if done > 0 && done < ev.Total {
			perCell := ev.Elapsed / time.Duration(done)
			ev.ETA = perCell * time.Duration(ev.Total-done)
			ev.Rate = float64(done) / ev.Elapsed.Seconds()
		}
		o.opts.Events(ev)
	}
	finish := func(i int, out Outcome) {
		rep.Outcomes[i] = out
		mu.Lock()
		done++
		mu.Unlock()
		typ := EventFinished
		switch {
		case cellFailed(out.Err):
			typ = EventFailed
		case out.Cached:
			typ = EventCached
		}
		emit(Event{Type: typ, Index: i, ID: out.Spec.ID, Err: out.Err, Wall: out.Wall, Worker: out.Worker})
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	workers := o.opts.Workers
	// Oversubscription guard: cells running the conservative-parallel
	// engine each occupy up to SimWorkers goroutines, so the campaign
	// pool is clamped to keep workers × sim-workers within GOMAXPROCS —
	// oversubscribing makes the lookahead loops spin against each other
	// and is strictly slower. Results are unaffected (spec-order output
	// is pool-size independent by construction).
	maxSim := 1
	for i := range c.Specs {
		if sw := c.Specs[i].Cfg.SimWorkers; sw > maxSim {
			maxSim = sw
		}
	}
	if maxSim > 1 && workers*maxSim > runtime.GOMAXPROCS(0) {
		if workers = runtime.GOMAXPROCS(0) / maxSim; workers < 1 {
			workers = 1
		}
	}
	if workers > len(c.Specs) && len(c.Specs) > 0 {
		workers = len(c.Specs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				spec := c.Specs[i]
				emit(Event{Type: EventStarted, Index: i, ID: spec.ID, Worker: "local"})
				finish(i, o.runCell(i, spec))
			}
		}()
	}

	var ctxErr error
feed:
	for i := range c.Specs {
		// The upfront check makes cancellation deterministic: a racing
		// select could otherwise keep winning the send case.
		if err := o.ctx.Err(); err != nil {
			ctxErr = err
		} else {
			select {
			case idx <- i:
				continue
			case <-o.ctx.Done():
				ctxErr = o.ctx.Err()
			}
		}
		// Cells never handed to a worker fail with the context error
		// (indices >= i were not yet scheduled).
		for j := i; j < len(c.Specs); j++ {
			rep.Outcomes[j] = Outcome{Spec: c.Specs[j], Err: ctxErr}
		}
		break feed
	}
	close(idx)
	wg.Wait()

	rep.Wall = time.Since(start)
	for _, out := range rep.Outcomes {
		if out.Cached {
			rep.CacheHits++
		}
		if cellFailed(out.Err) {
			rep.Failed++
		}
	}
	return rep, ctxErr
}

// runCell executes one cell: manifest replay, cache lookup, then a
// recovered, timed run whose result feeds back into both ledgers.
func (o *Orchestrator) runCell(index int, spec Spec) (out Outcome) {
	start := time.Now()
	defer func() { out.Wall = time.Since(start) }()

	var key string
	if o.opts.Manifest != nil {
		key = CacheKey(spec.Cfg)
		if res, ok := o.opts.Manifest.Lookup(key); ok {
			return Outcome{Spec: spec, Result: res, Cached: true, Worker: "manifest"}
		}
	}
	if o.opts.Cache != nil {
		if res, ok := o.opts.Cache.Get(spec.Cfg); ok {
			out = Outcome{Spec: spec, Result: res, Cached: true, Worker: "local"}
			o.record(index, spec, key, out.Result)
			return out
		}
	}

	out = ExecuteCell(o.ctx, o.run, spec, o.opts.Timeout)
	out.Worker = "local"
	if out.Err == nil {
		if o.opts.Cache != nil {
			o.opts.Cache.Put(spec.Cfg, out.Result)
		}
		o.record(index, spec, key, out.Result)
	}
	return out
}

// record appends a completed cell to the manifest (key pre-computed when
// the manifest is enabled; empty otherwise).
func (o *Orchestrator) record(index int, spec Spec, key string, res core.Result) {
	if o.opts.Manifest == nil {
		return
	}
	o.opts.Manifest.Record(index, spec.ID, "local", key, res)
}

// ExecuteCell runs one cell with panic recovery and an optional
// wall-clock timeout — the single per-cell isolation path shared by the
// local orchestrator and the fabric workers. Because a simulation cannot
// be preempted mid-step, a timed-out or cancelled cell's goroutine is
// abandoned and the caller moves on. The returned Outcome carries the
// host wall-clock time; the caller stamps executor identity.
func ExecuteCell(ctx context.Context, run func(core.Config) (core.Result, error), spec Spec, timeout time.Duration) Outcome {
	out := Outcome{Spec: spec}
	start := time.Now()
	defer func() { out.Wall = time.Since(start) }()
	if ctx == nil {
		ctx = context.Background()
	}
	if run == nil {
		run = core.Run
	}

	type cellRet struct {
		res      core.Result
		err      error
		panicked bool
		stack    string
	}
	ch := make(chan cellRet, 1)
	go func() {
		var ret cellRet
		defer func() {
			if r := recover(); r != nil {
				ret = cellRet{
					err:      fmt.Errorf("%w: %v", ErrCellPanicked, r),
					panicked: true,
					stack:    string(debug.Stack()),
				}
			}
			ch <- ret
		}()
		ret.res, ret.err = run(spec.Cfg)
	}()

	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case ret := <-ch:
		out.Result, out.Err = ret.res, ret.err
		out.Panicked, out.Stack = ret.panicked, ret.stack
	case <-expired:
		out.Err = fmt.Errorf("%w (%v)", ErrCellTimeout, timeout)
	case <-ctx.Done():
		out.Err = ctx.Err()
	}
	return out
}

// RunAll implements core.Runner: the figure/table suites fan their grids
// out through the orchestrator's pool and cache.
func (o *Orchestrator) RunAll(specs []core.Config) []core.SpecOutcome {
	c := Campaign{Name: "batch", Specs: make([]Spec, len(specs))}
	for i, cfg := range specs {
		c.Specs[i] = Spec{Cfg: cfg}
	}
	rep, _ := o.Run(c)
	outs := make([]core.SpecOutcome, len(specs))
	for i, out := range rep.Outcomes {
		outs[i] = core.SpecOutcome{Result: out.Result, Err: out.Err}
	}
	return outs
}

// SortedIDs returns the campaign's cell IDs sorted, for display.
func (c Campaign) SortedIDs() []string {
	ids := make([]string, len(c.Specs))
	for i, s := range c.Specs {
		ids[i] = s.ID
		if ids[i] == "" {
			ids[i] = AutoID(s.Cfg)
		}
	}
	sort.Strings(ids)
	return ids
}
