package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestParallelCampaignIsDeterministic is the determinism regression: a
// campaign at Workers=8 must produce bit-identical Results — and identical
// JSONL artifacts modulo timing fields — to the same campaign at
// Workers=1. Each cell is one single-threaded deterministic simulation;
// the pool must neither share state between cells nor let completion
// order leak into the outcomes.
func TestParallelCampaignIsDeterministic(t *testing.T) {
	c := smallCampaign("determinism")
	serial := New(context.Background(), Options{Workers: 1})
	parallel := New(context.Background(), Options{Workers: 8})

	rep1, err := serial.Run(c)
	if err != nil || rep1.Failed != 0 {
		t.Fatalf("serial: %v / %v", err, rep1.Err())
	}
	rep8, err := parallel.Run(c)
	if err != nil || rep8.Failed != 0 {
		t.Fatalf("parallel: %v / %v", err, rep8.Err())
	}

	for i := range rep1.Outcomes {
		r1, r8 := rep1.Outcomes[i].Result, rep8.Outcomes[i].Result
		if !reflect.DeepEqual(r1, r8) {
			t.Errorf("cell %d (%s): Workers=1 and Workers=8 results differ:\n  w1: %+v\n  w8: %+v",
				i, rep1.Outcomes[i].Spec.ID, r1, r8)
		}
		if r1.Steps != r8.Steps {
			t.Errorf("cell %d: scheduler fingerprints differ (%d vs %d)", i, r1.Steps, r8.Steps)
		}
	}

	a1 := artifactsModuloTiming(t, rep1)
	a8 := artifactsModuloTiming(t, rep8)
	if !bytes.Equal(a1, a8) {
		t.Fatalf("artifact logs differ modulo timing fields:\n--- w1 ---\n%s\n--- w8 ---\n%s", a1, a8)
	}
}

// artifactsModuloTiming renders the JSONL artifact log with the
// run-to-run timing fields stripped.
func artifactsModuloTiming(t *testing.T, rep *Report) []byte {
	t.Helper()
	var raw bytes.Buffer
	if err := WriteArtifacts(&raw, rep); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	dec := json.NewDecoder(&raw)
	enc := json.NewEncoder(&out)
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatal(err)
		}
		for _, f := range TimingFields {
			delete(m, f)
		}
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	return out.Bytes()
}

// TestCampaignMatchesDirectRuns pins the orchestrator to the ground
// truth: outcomes equal calling core.Run directly, cell by cell.
func TestCampaignMatchesDirectRuns(t *testing.T) {
	c := smallCampaign("direct")
	o := New(context.Background(), Options{Workers: 8})
	rep, err := o.Run(c)
	if err != nil || rep.Failed != 0 {
		t.Fatalf("run: %v / %v", err, rep.Err())
	}
	for i, spec := range c.Specs {
		want, err := core.Run(spec.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Outcomes[i].Result, want) {
			t.Errorf("cell %d (%s): campaign result differs from direct core.Run", i, spec.ID)
		}
	}
}
