//go:build !linux

package campaign

import (
	"os"
	"time"
)

// atime approximates last access with ModTime on platforms where the
// stat access time is not portably available; eviction order stays
// deterministic either way.
func atime(fi os.FileInfo) time.Time { return fi.ModTime() }
