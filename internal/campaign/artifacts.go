package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/stats"
)

// ArtifactRecord is one JSONL line of a campaign's artifact log: the full
// provenance and measurements of one cell. Records are written in spec
// order, so two runs of the same campaign produce identical logs modulo
// the timing fields (wall_ms, campaign_wall_ms, cells_per_sec).
type ArtifactRecord struct {
	Campaign string `json:"campaign"`
	Index    int    `json:"index"`
	ID       string `json:"id"`
	Version  string `json:"cost_model_version"`

	Config core.Config `json:"config"`

	Cached   bool   `json:"cached,omitempty"`
	Worker   string `json:"worker,omitempty"`
	Err      string `json:"err,omitempty"`
	Panicked bool   `json:"panicked,omitempty"`
	Stack    string `json:"stack,omitempty"`

	Gbps        float64       `json:"gbps"`
	Mpps        float64       `json:"mpps"`
	Drops       int64         `json:"drops"`
	Steps       uint64        `json:"steps"`
	SUTBusyFrac float64       `json:"sut_busy_frac"`
	Latency     stats.Summary `json:"latency"`

	// WallMs is host time — a timing field, excluded from determinism
	// comparisons.
	WallMs float64 `json:"wall_ms"`
}

// TimingFields lists the ArtifactRecord JSON keys that vary between runs
// of an identical campaign (host timing and executor identity — a fabric
// run and a local run of the same campaign differ only here);
// determinism checks strip them.
var TimingFields = []string{"wall_ms", "worker", "cached"}

// Record converts one outcome into its artifact line.
func Record(campaignName string, index int, out Outcome) ArtifactRecord {
	rec := ArtifactRecord{
		Campaign: campaignName,
		Index:    index,
		ID:       out.Spec.ID,
		Version:  cost.ModelVersion,
		Config:   out.Spec.Cfg.Canonical(),
		Cached:   out.Cached,
		Worker:   out.Worker,
		Panicked: out.Panicked,
		Stack:    out.Stack,
		WallMs:   float64(out.Wall.Microseconds()) / 1e3,
	}
	if out.Err != nil {
		rec.Err = out.Err.Error()
	} else {
		rec.Gbps = out.Result.Gbps
		rec.Mpps = out.Result.Mpps
		rec.Drops = out.Result.Drops
		rec.Steps = out.Result.Steps
		rec.SUTBusyFrac = out.Result.SUTBusyFrac
		rec.Latency = out.Result.Latency
	}
	return rec
}

// WriteArtifacts writes the report's JSONL artifact log to w, one record
// per cell in spec order.
func WriteArtifacts(w io.Writer, rep *Report) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, out := range rep.Outcomes {
		if err := enc.Encode(Record(rep.Name, i, out)); err != nil {
			return fmt.Errorf("campaign: writing artifact record %d: %w", i, err)
		}
	}
	return bw.Flush()
}
