package campaign

import (
	"context"
	"os"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/units"
)

func TestCacheHitOnSameConfig(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg("vpp", core.P2P)
	if _, ok := cache.Get(cfg); ok {
		t.Fatal("empty cache hit")
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(cfg, res)
	got, ok := cache.Get(cfg)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("cached result differs: %+v vs %+v", got, res)
	}
	// A config spelled differently but canonically equal hits too: the
	// explicit defaults match cfg's implied ones.
	explicit := cfg
	explicit.FrameLen = 64
	explicit.Chain = 1
	explicit.Seed = 1
	explicit.SUTCores = 1
	if _, ok := cache.Get(explicit); !ok {
		t.Fatal("canonically-equal config missed")
	}
}

func TestCacheMissOnAnyFieldChange(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg("vpp", core.P2P)
	cache.Put(cfg, core.Result{Gbps: 1})

	variants := []core.Config{}
	v := cfg
	v.Switch = "ovs"
	variants = append(variants, v)
	v = cfg
	v.Scenario = core.V2V
	variants = append(variants, v)
	v = cfg
	v.FrameLen = 256
	variants = append(variants, v)
	v = cfg
	v.Bidir = true
	variants = append(variants, v)
	v = cfg
	v.Rate = 5 * units.Gbps
	variants = append(variants, v)
	v = cfg
	v.Seed = 7
	variants = append(variants, v)
	v = cfg
	v.Duration = units.Millisecond
	variants = append(variants, v)
	v = cfg
	v.Flows = 16
	variants = append(variants, v)
	for i, vc := range variants {
		if _, ok := cache.Get(vc); ok {
			t.Fatalf("variant %d unexpectedly hit (key collision with base?)", i)
		}
	}
}

func TestCacheMissOnCostModelVersionBump(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg("vpp", core.P2P)
	cache.Put(cfg, core.Result{Gbps: 1})
	if _, ok := cache.Get(cfg); !ok {
		t.Fatal("baseline miss")
	}
	// A recalibrated cost model must invalidate every entry.
	bumped := &Cache{dir: dir, version: "conext19-cal2"}
	if _, ok := bumped.Get(cfg); ok {
		t.Fatal("version bump did not invalidate the cache")
	}
}

func TestCacheCorruptedEntryRecomputed(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg("vpp", core.P2P)
	cache.Put(cfg, core.Result{Gbps: 42})
	path := cache.path(cache.Key(cfg))

	for _, garbage := range []string{"", "{", "not json at all", `{"key":"wrong","version":"x"}`} {
		if err := os.WriteFile(path, []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := cache.Get(cfg); ok {
			t.Fatalf("corrupted entry %q served as a hit", garbage)
		}
	}

	// A campaign over the corrupted cache recomputes and heals it — no
	// fatal error.
	o := New(context.Background(), Options{Workers: 2, Cache: cache})
	rep, err := o.Run(Campaign{Name: "heal", Specs: []Spec{{Cfg: cfg}}})
	if err != nil || rep.Failed != 0 {
		t.Fatalf("campaign over corrupted cache: %v / %v", err, rep.Err())
	}
	if rep.CacheHits != 0 {
		t.Fatal("corrupted entry counted as a hit")
	}
	if got, ok := cache.Get(cfg); !ok || got.Gbps <= 0 {
		t.Fatalf("cache not healed: ok=%v res=%+v", ok, got)
	}
}

func TestCampaignCacheRoundTrip(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := smallCampaign("cached")
	cold := New(context.Background(), Options{Workers: 4, Cache: cache})
	rep1, err := cold.Run(c)
	if err != nil || rep1.Failed != 0 {
		t.Fatalf("cold run: %v / %v", err, rep1.Err())
	}
	if rep1.CacheHits != 0 {
		t.Fatalf("cold run hit the cache %d times", rep1.CacheHits)
	}
	warm := New(context.Background(), Options{Workers: 4, Cache: cache})
	rep2, err := warm.Run(c)
	if err != nil || rep2.Failed != 0 {
		t.Fatalf("warm run: %v / %v", err, rep2.Err())
	}
	if rep2.CacheHits != len(c.Specs) {
		t.Fatalf("warm hits = %d, want %d", rep2.CacheHits, len(c.Specs))
	}
	for i := range rep1.Outcomes {
		if !reflect.DeepEqual(rep1.Outcomes[i].Result, rep2.Outcomes[i].Result) {
			t.Fatalf("cell %d: cached result differs from measured", i)
		}
	}
}

// TestLadderReusesSaturatingRun verifies the EstimateRPlus →
// MeasureLatencyAt ladder shares one saturating simulation through the
// cache: profiling two load levels runs the R+ cell once.
func TestLadderReusesSaturatingRun(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := New(context.Background(), Options{Workers: 2, Cache: cache})
	cfg := quickCfg("bess", core.P2P)

	sat := core.RPlusConfig(cfg)
	outs := o.RunAll([]core.Config{sat})
	if outs[0].Err != nil {
		t.Fatal(outs[0].Err)
	}
	// The ladder's own saturating re-run must now be a hit.
	rep, err := o.Run(Campaign{Name: "ladder", Specs: []Spec{{Cfg: sat}}})
	if err != nil || rep.CacheHits != 1 {
		t.Fatalf("saturating run not reused: err=%v hits=%d", err, rep.CacheHits)
	}
}
