package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// TestManifestResume is the resume regression: a campaign interrupted
// after k cells, resumed against the same manifest, re-runs exactly the
// remaining cells — proven by an execution counter, not by timing.
func TestManifestResume(t *testing.T) {
	full := smallCampaign("resume")
	const k = 3

	path := filepath.Join(t.TempDir(), "resume.jsonl")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}

	// "Interrupted" first run: only the first k cells ever happened.
	partial := Campaign{Name: full.Name, Specs: full.Specs[:k]}
	o := New(context.Background(), Options{Workers: 2, Manifest: m})
	var firstExecs atomic.Int64
	o.run = func(cfg core.Config) (core.Result, error) {
		firstExecs.Add(1)
		return core.Run(cfg)
	}
	firstRep, err := o.Run(partial)
	if err != nil || firstRep.Failed != 0 {
		t.Fatalf("partial run: %v / %v", err, firstRep.Err())
	}
	if n := firstExecs.Load(); n != k {
		t.Fatalf("partial run executed %d cells, want %d", n, k)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: reopen the ledger, run the FULL campaign.
	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != k {
		t.Fatalf("reloaded manifest has %d cells, want %d", m2.Len(), k)
	}
	var resumeExecs atomic.Int64
	o2 := New(context.Background(), Options{Workers: 2, Manifest: m2})
	o2.run = func(cfg core.Config) (core.Result, error) {
		resumeExecs.Add(1)
		return core.Run(cfg)
	}
	rep, err := o2.Run(full)
	if err != nil || rep.Failed != 0 {
		t.Fatalf("resume run: %v / %v", err, rep.Err())
	}
	if n := resumeExecs.Load(); n != int64(len(full.Specs)-k) {
		t.Fatalf("resume executed %d cells, want %d (only the remaining ones)", n, len(full.Specs)-k)
	}
	if rep.CacheHits != k {
		t.Fatalf("resume replayed %d cells, want %d", rep.CacheHits, k)
	}

	// Replayed cells carry the manifest identity and the recorded bytes.
	for i, out := range rep.Outcomes {
		if i < k {
			if !out.Cached || out.Worker != "manifest" {
				t.Fatalf("cell %d not replayed from manifest: %+v", i, out)
			}
			a, _ := json.Marshal(firstRep.Outcomes[i].Result)
			b, _ := json.Marshal(out.Result)
			if !bytes.Equal(a, b) {
				t.Fatalf("cell %d: replay diverged from recorded result", i)
			}
		} else if out.Cached {
			t.Fatalf("cell %d replayed but was never recorded", i)
		}
	}

	// A third run replays everything: the resume completed the ledger.
	m3, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if m3.Len() != len(full.Specs) {
		t.Fatalf("completed manifest has %d cells, want %d", m3.Len(), len(full.Specs))
	}
}

// TestManifestFailuresNotRecorded: failed cells must re-run on resume,
// so only error-free completions land in the ledger.
func TestManifestFailuresNotRecorded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fail.jsonl")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Name: "fail", Specs: []Spec{
		{Cfg: quickCfg("vpp", core.P2P)},
		{ID: "boom", Cfg: quickCfg("snabb", core.P2P)},
	}}
	o := New(context.Background(), Options{Workers: 1, Manifest: m})
	o.run = func(cfg core.Config) (core.Result, error) {
		if cfg.Switch == "snabb" {
			panic("injected")
		}
		return core.Run(cfg)
	}
	if _, err := o.Run(c); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != 1 {
		t.Fatalf("manifest recorded %d cells, want only the healthy one", m2.Len())
	}
	if _, ok := m2.Lookup(CacheKey(c.Specs[1].Cfg)); ok {
		t.Fatal("failed cell was recorded as done")
	}
}

// TestManifestTornLine: a crash mid-append leaves a torn trailing line;
// loading must skip it and appending must not corrupt the next record.
func TestManifestTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := quickCfg("vpp", core.P2P)
	resA, err := core.Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	m.Record(0, "a", "local", CacheKey(cfgA), resA)
	m.Close()

	// Simulate the crash: append half a record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"index":1,"id":"torn","status":"do`)
	f.Close()

	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 1 {
		t.Fatalf("torn manifest loaded %d cells, want 1", m2.Len())
	}
	if _, ok := m2.Lookup(CacheKey(cfgA)); !ok {
		t.Fatal("intact record lost")
	}

	// The next append starts on a fresh line and reloads cleanly.
	cfgB := quickCfg("ovs", core.P2P)
	resB, err := core.Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	m2.Record(1, "b", "local", CacheKey(cfgB), resB)
	m2.Close()

	m3, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if m3.Len() != 2 {
		t.Fatalf("after torn-line append: %d cells, want 2", m3.Len())
	}
	if res, ok := m3.Lookup(CacheKey(cfgB)); !ok {
		t.Fatal("post-torn record lost")
	} else if a, b := mustJSON(t, resB), mustJSON(t, res); !bytes.Equal(a, b) {
		t.Fatalf("post-torn record corrupted: %s vs %s", a, b)
	}
}

// TestManifestVersionFiltered: records from a different cost-model
// version must not replay.
func TestManifestVersionFiltered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vers.jsonl")
	cfg := quickCfg("vpp", core.P2P)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := ManifestRecord{
		Index: 0, ID: "old", Key: CacheKey(cfg), Version: "ancient/0.0",
		Status: "done", Worker: "local", Result: &res,
	}
	blob, _ := json.Marshal(rec)
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 0 {
		t.Fatal("stale-version record replayed")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
