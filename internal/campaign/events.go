package campaign

import "time"

// EventType classifies a progress event.
type EventType int

// The event types, one per cell state transition.
const (
	// EventStarted fires when a worker picks a cell up.
	EventStarted EventType = iota
	// EventFinished fires when a cell's simulation completes (including
	// ErrChainTooLong cells — an expected per-switch limit).
	EventFinished
	// EventCached fires when the result cache answers without running.
	EventCached
	// EventFailed fires when a cell errors, panics, or times out.
	EventFailed
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case EventStarted:
		return "started"
	case EventFinished:
		return "finished"
	case EventCached:
		return "cached"
	case EventFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Event is one progress notification. Done/Total/Elapsed/ETA/Rate are
// campaign-level aggregates stamped at emission time.
type Event struct {
	Type  EventType
	Index int    // spec index
	ID    string // spec ID
	Err   error  // failed/finished cells
	Wall  time.Duration
	// Worker is the executor identity: "local" for in-process cells,
	// "manifest" for resume replays, the worker ID for fabric cells.
	Worker string

	Done    int
	Total   int
	Elapsed time.Duration
	ETA     time.Duration // zero until the first cell completes
	Rate    float64       // cells per second
}
