//go:build linux

package campaign

import (
	"os"
	"syscall"
	"time"
)

// atime returns the file's last-access time, the eviction clock cache
// pruning sorts by. Falls back to ModTime if the stat shape is unexpected
// (e.g. a synthetic test FileInfo).
func atime(fi os.FileInfo) time.Time {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return time.Unix(st.Atim.Sec, st.Atim.Nsec)
	}
	return fi.ModTime()
}
