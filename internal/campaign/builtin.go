package campaign

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/switches/switchdef"
)

// builtinDef builds one named campaign's spec list.
type builtinDef struct {
	desc  string
	specs func(o core.RunOpts) ([]Spec, error)
}

func figureCampaign(id string) func(o core.RunOpts) ([]Spec, error) {
	return func(o core.RunOpts) ([]Spec, error) {
		cfgs, err := core.FigureSpecs(id, o)
		if err != nil {
			return nil, err
		}
		return prefixed("fig"+id, cfgs), nil
	}
}

func prefixed(prefix string, cfgs []core.Config) []Spec {
	specs := make([]Spec, len(cfgs))
	for i, cfg := range cfgs {
		specs[i] = Spec{ID: prefix + "/" + AutoID(cfg), Cfg: cfg}
	}
	return specs
}

var builtins = map[string]builtinDef{
	"fig4a": {"p2p throughput grid (Fig. 4a)", figureCampaign("4a")},
	"fig4b": {"p2v throughput grid (Fig. 4b)", figureCampaign("4b")},
	"fig4c": {"v2v throughput grid (Fig. 4c)", figureCampaign("4c")},
	"fig5":  {"unidirectional loopback chain sweep (Fig. 5)", figureCampaign("5")},
	"fig6":  {"bidirectional loopback chain sweep (Fig. 6)", figureCampaign("6")},
	"table4": {"v2v software-timestamped latency (Table 4)", func(o core.RunOpts) ([]Spec, error) {
		return prefixed("table4", core.Table4Specs(o)), nil
	}},
	"rplus": {"saturating R+ grid: every switch x scenario", func(o core.RunOpts) ([]Spec, error) {
		var cfgs []core.Config
		for _, name := range core.Switches {
			for _, scn := range []core.ScenarioKind{core.P2P, core.P2V, core.V2V} {
				cfgs = append(cfgs, core.RPlusConfig(o.Apply(core.Config{Switch: name, Scenario: scn})))
			}
			for _, chain := range core.Chains {
				cfgs = append(cfgs, core.RPlusConfig(o.Apply(core.Config{
					Switch: name, Scenario: core.Loopback, Chain: chain,
				})))
			}
		}
		return prefixed("rplus", cfgs), nil
	}},
	"scaling": {"multi-core scaling curves: cores x dispatch x size x switch", func(o core.RunOpts) ([]Spec, error) {
		// The figure grid repeats the shared 1-core cells once per
		// dispatch mode, and includes multi-core cells for switches
		// that cannot run them (the figure renders those as "-"); a
		// campaign measures each runnable cell exactly once.
		var cfgs []core.Config
		for _, cfg := range core.ScalingSpecs(o) {
			if cfg.SUTCores > 1 {
				if info, err := switchdef.Lookup(cfg.Switch); err == nil && info.IOMode == switchdef.InterruptMode {
					continue
				}
			}
			cfgs = append(cfgs, cfg)
		}
		specs := prefixed("scaling", cfgs)
		seen := make(map[string]bool, len(specs))
		var out []Spec
		for _, s := range specs {
			if seen[s.ID] {
				continue
			}
			seen[s.ID] = true
			out = append(out, s)
		}
		return out, nil
	}},
	"churn": {"cache-churn grid: flow mix x update rate x flows x switch", func(o core.RunOpts) ([]Spec, error) {
		// The figure grid includes rule-update cells for switches that
		// cannot take runtime rule edits (rendered as "-"); a campaign
		// measures each runnable cell exactly once.
		var cfgs []core.Config
		for _, cfg := range core.ChurnSpecs(o) {
			if cfg.RuleUpdateRate > 0 {
				if info, err := switchdef.Lookup(cfg.Switch); err == nil && !info.RuntimeRules {
					continue
				}
			}
			cfgs = append(cfgs, cfg)
		}
		specs := prefixed("churn", cfgs)
		seen := make(map[string]bool, len(specs))
		var out []Spec
		for _, s := range specs {
			if seen[s.ID] {
				continue
			}
			seen[s.ID] = true
			out = append(out, s)
		}
		return out, nil
	}},
	"throughput": {"every throughput figure grid (Figs. 4a-c, 5, 6)", func(o core.RunOpts) ([]Spec, error) {
		var specs []Spec
		for _, id := range []string{"4a", "4b", "4c", "5", "6"} {
			s, err := figureCampaign(id)(o)
			if err != nil {
				return nil, err
			}
			specs = append(specs, s...)
		}
		return specs, nil
	}},
}

// Builtin returns the named campaign with o applied to every spec.
func Builtin(name string, o core.RunOpts) (Campaign, error) {
	def, ok := builtins[name]
	if !ok {
		return Campaign{}, fmt.Errorf("campaign: unknown campaign %q (have %s)",
			name, strings.Join(BuiltinNames(), ", "))
	}
	specs, err := def.specs(o)
	if err != nil {
		return Campaign{}, err
	}
	return Campaign{Name: name, Specs: specs}, nil
}

// BuiltinNames lists the registered campaign names, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuiltinDescription returns the one-line description of a campaign name.
func BuiltinDescription(name string) string {
	return builtins[name].desc
}
