package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/cost"
)

// Cache is a content-addressed on-disk result cache. The key is a SHA-256
// over the canonicalized Config (defaults applied, stable JSON field
// order) plus the cost-model version, so any config change — or a
// recalibration bump of cost.ModelVersion — misses and re-measures.
// Entries are self-describing JSON files; a corrupted or truncated entry
// reads as a miss and is overwritten by the recomputed result, never a
// fatal error.
type Cache struct {
	dir     string
	version string
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: opening cache: %w", err)
	}
	return &Cache{dir: dir, version: cost.ModelVersion}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// entry is the on-disk format. Key and Version are stored redundantly so
// an entry validates itself on read.
type entry struct {
	Key     string      `json:"key"`
	Version string      `json:"version"`
	Config  core.Config `json:"config"`
	Result  core.Result `json:"result"`
}

// Key returns the content address of cfg under the current cost model.
func (c *Cache) Key(cfg core.Config) string {
	blob, err := json.Marshal(cfg.Canonical())
	if err != nil {
		// Config is a plain value struct; Marshal cannot fail.
		panic(fmt.Sprintf("campaign: marshaling config: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(c.version))
	h.Write([]byte{0})
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil))
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get returns the cached result for cfg, if present and intact.
func (c *Cache) Get(cfg core.Config) (core.Result, bool) {
	key := c.Key(cfg)
	blob, err := os.ReadFile(c.path(key))
	if err != nil {
		return core.Result{}, false
	}
	var e entry
	if err := json.Unmarshal(blob, &e); err != nil {
		return core.Result{}, false // corrupted: recompute
	}
	if e.Key != key || e.Version != c.version {
		return core.Result{}, false // stale or mangled entry
	}
	return e.Result, true
}

// Put stores a result. Write errors are swallowed: a cache that cannot
// persist degrades to recomputation, it does not fail the campaign.
func (c *Cache) Put(cfg core.Config, res core.Result) {
	key := c.Key(cfg)
	blob, err := json.Marshal(entry{
		Key: key, Version: c.version,
		Config: cfg.Canonical(), Result: res,
	})
	if err != nil {
		return
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	// Write-rename so concurrent workers and interrupted runs never leave
	// a half-written entry at the final path.
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

// Len counts intact entries (test and stats helper).
func (c *Cache) Len() int {
	n := 0
	filepath.Walk(c.dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}
