package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/cost"
)

// Store is the result-store contract the orchestrator (and the fabric
// workers) run against: a content-addressed map from canonical Config to
// Result. *Cache is the local on-disk implementation; internal/fabric
// layers an HTTP client and a tiered (local + remote) composition over
// the same interface.
type Store interface {
	// Get returns the stored result for cfg, if present and intact.
	Get(cfg core.Config) (core.Result, bool)
	// Put stores a result. Implementations swallow storage errors: a
	// store that cannot persist degrades to recomputation, it does not
	// fail the campaign.
	Put(cfg core.Config, res core.Result)
}

// Cache is a content-addressed on-disk result cache. The key is a SHA-256
// over the canonicalized Config (defaults applied, stable JSON field
// order) plus the cost-model version, so any config change — or a
// recalibration bump of cost.ModelVersion — misses and re-measures.
// Entries are self-describing JSON files; a corrupted or truncated entry
// reads as a miss and is overwritten by the recomputed result, never a
// fatal error.
type Cache struct {
	dir     string
	version string
}

var _ Store = (*Cache)(nil)

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: opening cache: %w", err)
	}
	return &Cache{dir: dir, version: cost.ModelVersion}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// entry is the on-disk format. Key and Version are stored redundantly so
// an entry validates itself on read.
type entry struct {
	Key     string      `json:"key"`
	Version string      `json:"version"`
	Config  core.Config `json:"config"`
	Result  core.Result `json:"result"`
}

// keyFor is the content-address function: SHA-256 over the version string
// and the canonical config JSON, NUL-separated.
func keyFor(version string, cfg core.Config) string {
	blob, err := json.Marshal(cfg.Canonical())
	if err != nil {
		// Config is a plain value struct; Marshal cannot fail.
		panic(fmt.Sprintf("campaign: marshaling config: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(version))
	h.Write([]byte{0})
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil))
}

// CacheKey returns cfg's content address under the current cost model.
// It is what every result store — local dir, cache server, campaign
// manifest — addresses by, and what makes remote execution safe: two
// machines agreeing on a key agree on the canonical config and the cost
// model, so either one's result is valid for both.
func CacheKey(cfg core.Config) string { return keyFor(cost.ModelVersion, cfg) }

// Key returns the content address of cfg under the cache's cost model.
func (c *Cache) Key(cfg core.Config) string { return keyFor(c.version, cfg) }

// EncodeEntry renders (cfg, res) as a self-describing cache entry blob
// under the current cost model, returning its content address. The blob
// is exactly what Cache persists and what the fabric cache protocol
// carries.
func EncodeEntry(cfg core.Config, res core.Result) (key string, blob []byte, err error) {
	key = CacheKey(cfg)
	blob, err = json.Marshal(entry{
		Key: key, Version: cost.ModelVersion,
		Config: cfg.Canonical(), Result: res,
	})
	return key, blob, err
}

// DecodeEntry validates blob as a cache entry for key — well-formed JSON,
// matching embedded key and current cost-model version, and a content
// address that recomputes from the embedded config — and returns its
// result. This recomputation is the integrity check the cache server
// applies to every PUT: a client cannot poison key K with a result
// measured under a different config or cost model.
func DecodeEntry(key string, blob []byte) (core.Result, bool) {
	var e entry
	if err := json.Unmarshal(blob, &e); err != nil {
		return core.Result{}, false
	}
	if e.Key != key || e.Version != cost.ModelVersion {
		return core.Result{}, false
	}
	if keyFor(e.Version, e.Config) != key {
		return core.Result{}, false
	}
	return e.Result, true
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get returns the cached result for cfg, if present and intact.
func (c *Cache) Get(cfg core.Config) (core.Result, bool) {
	key := c.Key(cfg)
	blob, err := os.ReadFile(c.path(key))
	if err != nil {
		return core.Result{}, false
	}
	var e entry
	if err := json.Unmarshal(blob, &e); err != nil {
		return core.Result{}, false // corrupted: recompute
	}
	if e.Key != key || e.Version != c.version {
		return core.Result{}, false // stale or mangled entry
	}
	return e.Result, true
}

// Put stores a result. Write errors are swallowed: a cache that cannot
// persist degrades to recomputation, it does not fail the campaign.
func (c *Cache) Put(cfg core.Config, res core.Result) {
	key := c.Key(cfg)
	blob, err := json.Marshal(entry{
		Key: key, Version: c.version,
		Config: cfg.Canonical(), Result: res,
	})
	if err != nil {
		return
	}
	c.writeAtomic(key, blob)
}

// GetBlob returns the raw entry blob stored under key, validated — a
// corrupted or stale entry reads as a miss, exactly like Get.
func (c *Cache) GetBlob(key string) ([]byte, bool) {
	blob, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	if _, ok := DecodeEntry(key, blob); !ok {
		return nil, false
	}
	return blob, true
}

// PutBlob validates blob as an entry for key (recomputing the content
// address from the embedded config) and writes it atomically. Unlike Put,
// validation failures are reported: the cache server turns them into a
// rejected request rather than silently dropping a poisoned entry.
func (c *Cache) PutBlob(key string, blob []byte) error {
	if _, ok := DecodeEntry(key, blob); !ok {
		return fmt.Errorf("campaign: cache entry fails integrity check for key %.12s… (config/cost-model mismatch or corrupt blob)", key)
	}
	if !c.writeAtomic(key, blob) {
		return fmt.Errorf("campaign: persisting cache entry %.12s…", key)
	}
	return nil
}

// writeAtomic write-renames blob to key's path so concurrent workers and
// interrupted runs never leave a half-written entry at the final path.
func (c *Cache) writeAtomic(key string, blob []byte) bool {
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return false
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*")
	if err != nil {
		return false
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return false
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return false
	}
	return true
}

// Len counts intact entries (test and stats helper).
func (c *Cache) Len() int {
	n, _ := c.Stats()
	return n
}

// Stats reports the cache's entry count and total size in bytes.
func (c *Cache) Stats() (entries int, bytes int64) {
	filepath.Walk(c.dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(path) == ".json" {
			entries++
			bytes += info.Size()
		}
		return nil
	})
	return entries, bytes
}
