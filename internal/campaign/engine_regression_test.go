package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/units"
)

// The golden digests below were produced by the pre-optimization engine
// (container/heap scheduler, eager frame materialization, one event per
// rate-paced frame). The optimized engine must reproduce them bit for bit:
// every Result field including the Steps fingerprint for the saturating
// fig4a grid, and every campaign cache key. They are tied to the cost
// model generation — a deliberate recalibration bumps cost.ModelVersion
// and re-pins them; anything else that moves these digests is a silent
// behaviour change in the engine.
//
// The results digest was re-pinned once after the guest-path fast-path PR:
// Result gained the HostCopies field and the Drops window-accounting fix
// (warmup drops no longer pollute the measured window). Sim packets,
// throughput, latency, and Steps were byte-identical across the re-pin
// (verified by bench.Compare against the pre-PR engine); the cache-key
// digest is unchanged.
const (
	goldenModelVersion     = "conext19-cal1"
	goldenFig4aResultsHash = "3f3a9342e21c9678376dc463046c88640efae7dba769685d53fa73ee6148fcdd"
	goldenFig4aKeysHash    = "b8c26c28d80f66b71a9c111af59d9249cd6fece89177bdbdd94fede2012d80e4"
)

// regressionOpts pins the window the digests were recorded under.
var regressionOpts = core.RunOpts{Duration: units.Millisecond, Warmup: 500 * units.Microsecond}

// fig4aDigests runs the fixed-seed fig4a campaign and returns a digest of
// the outcomes (full Results, spec order) and a digest of the sorted
// content-addressed cache keys.
func fig4aDigests(t *testing.T) (resultsHash, keysHash string) {
	t.Helper()
	c, err := Builtin("fig4a", regressionOpts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(context.Background(), Options{}).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("fig4a cells failed: %v", rep.Err())
	}

	type cell struct {
		ID     string      `json:"id"`
		Result core.Result `json:"result"`
	}
	cells := make([]cell, len(rep.Outcomes))
	for i, out := range rep.Outcomes {
		cells[i] = cell{ID: out.Spec.ID, Result: out.Result}
	}
	blob, err := json.Marshal(cells)
	if err != nil {
		t.Fatal(err)
	}
	rh := sha256.Sum256(blob)

	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(c.Specs))
	for i, spec := range c.Specs {
		keys[i] = cache.Key(spec.Cfg)
	}
	sort.Strings(keys)
	kblob, err := json.Marshal(keys)
	if err != nil {
		t.Fatal(err)
	}
	kh := sha256.Sum256(kblob)
	return hex.EncodeToString(rh[:]), hex.EncodeToString(kh[:])
}

// TestEngineOutputMatchesSeedPath is the cross-build determinism
// regression for the engine's perf work: the optimized scheduler, lazy
// frame materialization, and batched generators must leave every simulated
// observable — and the campaign cache addressing — bit-identical to the
// seed engine that recorded the golden digests.
func TestEngineOutputMatchesSeedPath(t *testing.T) {
	if cost.ModelVersion != goldenModelVersion {
		t.Skipf("cost model recalibrated (%s -> %s): re-pin the golden digests", goldenModelVersion, cost.ModelVersion)
	}
	if testing.Short() {
		t.Skip("fig4a grid is too slow for -short")
	}
	resultsHash, keysHash := fig4aDigests(t)
	if os.Getenv("SWBENCH_PRINT_DIGESTS") != "" {
		t.Logf("fig4a results digest: %s", resultsHash)
		t.Logf("fig4a cache-key digest: %s", keysHash)
	}
	if resultsHash != goldenFig4aResultsHash {
		t.Errorf("fig4a results digest = %s, want %s (engine output diverged from the seed path)", resultsHash, goldenFig4aResultsHash)
	}
	if keysHash != goldenFig4aKeysHash {
		t.Errorf("fig4a cache-key digest = %s, want %s (campaign cache addressing changed)", keysHash, goldenFig4aKeysHash)
	}
}
