package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/pkt"
	"repro/internal/units"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(2048)
	for i := 0; i < 5; i++ {
		b := pool.Get(64 + i*10)
		pkt.FrameSpec{
			SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
			FrameLen: 64 + i*10,
		}.Build(b)
		b.Bytes()[60] = byte(i)
		if err := w.WritePacket(units.Time(i)*units.Millisecond, b); err != nil {
			t.Fatal(err)
		}
		b.Free()
	}
	if w.Count() != 5 {
		t.Fatalf("count = %d", w.Count())
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, r := range recs {
		if len(r.Data) != 64+i*10 {
			t.Errorf("record %d length = %d", i, len(r.Data))
		}
		if r.Data[60] != byte(i) {
			t.Errorf("record %d payload corrupted", i)
		}
		if r.At != units.Time(i)*units.Millisecond {
			t.Errorf("record %d at %v", i, r.At)
		}
	}
}

func TestGlobalHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	h := buf.Bytes()
	if len(h) != 24 {
		t.Fatalf("header length = %d", len(h))
	}
	if binary.LittleEndian.Uint32(h[0:]) != 0xa1b2c3d4 {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint16(h[4:]) != 2 || binary.LittleEndian.Uint16(h[6:]) != 4 {
		t.Fatal("bad version")
	}
	if binary.LittleEndian.Uint32(h[20:]) != 1 {
		t.Fatal("link type not Ethernet")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a pcap file, definitely"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestPropertyRoundTripPayloads(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		pool := pkt.NewPool(70000)
		var want [][]byte
		for _, p := range payloads {
			if len(p) < 14 {
				continue // runt frames are not valid Ethernet
			}
			if len(p) > 65535 {
				p = p[:65535]
			}
			b := pool.Get(len(p))
			copy(b.Bytes(), p)
			if err := w.WritePacket(units.Second, b); err != nil {
				return false
			}
			b.Free()
			want = append(want, append([]byte(nil), p...))
		}
		recs, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(recs) != len(want) {
			return false
		}
		for i := range recs {
			if !bytes.Equal(recs[i].Data, want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
