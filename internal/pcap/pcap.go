// Package pcap writes classic libpcap capture files (the 24-byte global
// header followed by per-record headers), so simulated traffic can be
// inspected with tcpdump/Wireshark. Timestamps come from the simulation
// clock: simulated picoseconds map to capture microseconds.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/pkt"
	"repro/internal/units"
)

// File format constants.
const (
	magicMicros   = 0xa1b2c3d4
	versionMajor  = 2
	versionMinor  = 4
	linkTypeEther = 1
	maxSnapLen    = 65535
)

// Writer streams packets into a pcap file.
type Writer struct {
	w       io.Writer
	snapLen int
	count   int64
}

// NewWriter writes the global header and returns a ready Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], maxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linkTypeEther)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing header: %w", err)
	}
	return &Writer{w: w, snapLen: maxSnapLen}, nil
}

// WritePacket records one frame at the given simulated time.
func (pw *Writer) WritePacket(at units.Time, b *pkt.Buf) error {
	data := b.Bytes()
	capLen := len(data)
	if capLen > pw.snapLen {
		capLen = pw.snapLen
	}
	micros := int64(at / units.Microsecond)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(micros/1_000_000))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(micros%1_000_000))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(capLen))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(data)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := pw.w.Write(data[:capLen]); err != nil {
		return fmt.Errorf("pcap: writing record: %w", err)
	}
	pw.count++
	return nil
}

// Count returns the number of packets written.
func (pw *Writer) Count() int64 { return pw.count }

// Record is one parsed capture record.
type Record struct {
	At   units.Time
	Data []byte
}

// Read parses a pcap stream written by this package (little-endian,
// microsecond resolution) — used by tests and tooling.
func Read(r io.Reader) ([]Record, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magicMicros {
		return nil, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != linkTypeEther {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	var out []Record
	for {
		var rh [16]byte
		if _, err := io.ReadFull(r, rh[:]); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("pcap: reading record header: %w", err)
		}
		sec := binary.LittleEndian.Uint32(rh[0:])
		usec := binary.LittleEndian.Uint32(rh[4:])
		capLen := binary.LittleEndian.Uint32(rh[8:])
		if capLen > maxSnapLen {
			return nil, fmt.Errorf("pcap: oversized record (%d bytes)", capLen)
		}
		data := make([]byte, capLen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("pcap: reading record body: %w", err)
		}
		at := units.Time(sec)*units.Second + units.Time(usec)*units.Microsecond
		out = append(out, Record{At: at, Data: data})
	}
}
