package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"os"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
)

// WorkerOptions configures one worker daemon.
type WorkerOptions struct {
	// ID names the worker in leases, completions, and progress events.
	// Empty derives host-pid.
	ID string
	// Coordinator is the coordinator base URL (http://host:port).
	Coordinator string
	// Cache, when non-nil, is checked before running a leased cell and
	// filled after — typically a Tiered(local dir, shared server) store
	// so the whole fleet dedupes work.
	Cache campaign.Store
	// Timeout is the worker's own per-cell wall-clock budget; the
	// coordinator's per-cell budget (Cell.TimeoutMs), when set, wins.
	Timeout time.Duration
	// Batch is the lease size (work-stealing granularity): small enough
	// that a slow worker cannot hoard cells, large enough to amortize a
	// round trip. 0 means 4.
	Batch int
	// Poll is the idle re-poll interval when the coordinator has no
	// pending cells. 0 means 250ms.
	Poll time.Duration
	// MaxErrors bounds consecutive coordinator request failures before
	// the worker gives up (the coordinator process is gone). 0 means 8.
	MaxErrors int
	// Log receives one line per executed cell (nil = silent).
	Log io.Writer
	// run substitutes the measurement function in tests.
	run func(core.Config) (core.Result, error)
}

// RunWorker joins a coordinator and executes leased cells until the
// coordinator signals shutdown, the context is cancelled, or the
// coordinator stays unreachable past MaxErrors. Each cell runs through
// the same per-cell panic/timeout isolation as the local orchestrator
// (campaign.ExecuteCell), checks the shared cache first, and streams its
// completion back.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		opts.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.Batch <= 0 {
		opts.Batch = 4
	}
	if opts.Poll <= 0 {
		opts.Poll = 250 * time.Millisecond
	}
	if opts.MaxErrors <= 0 {
		opts.MaxErrors = 8
	}
	base := opts.Coordinator
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	errs := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lr, err := leaseCells(ctx, client, base, opts.Batch, opts.ID)
		if err != nil {
			errs++
			if errs >= opts.MaxErrors {
				return fmt.Errorf("fabric: worker %s: coordinator unreachable after %d attempts: %w", opts.ID, errs, err)
			}
			if !sleepCtx(ctx, opts.Poll) {
				return ctx.Err()
			}
			continue
		}
		errs = 0
		if lr.Shutdown {
			return nil
		}
		if len(lr.Cells) == 0 {
			if !sleepCtx(ctx, opts.Poll) {
				return ctx.Err()
			}
			continue
		}
		comps := make([]Completion, 0, len(lr.Cells))
		for _, cell := range lr.Cells {
			comps = append(comps, executeCell(ctx, opts, cell))
		}
		if err := postCompletions(ctx, client, base, comps); err != nil {
			// The lease TTL re-issues these cells elsewhere; treat the
			// failed report like any other coordinator outage.
			errs++
			if errs >= opts.MaxErrors {
				return fmt.Errorf("fabric: worker %s: reporting completions: %w", opts.ID, err)
			}
		}
	}
}

// executeCell runs one leased cell: key handshake, shared-cache lookup,
// then the shared isolation path, then cache write-through.
func executeCell(ctx context.Context, opts WorkerOptions, cell Cell) Completion {
	comp := Completion{Job: cell.Job, Index: cell.Index, Worker: opts.ID}
	start := time.Now()
	defer func() { comp.WallMs = float64(time.Since(start).Microseconds()) / 1e3 }()

	// The content address is the correctness handshake: if this binary
	// canonicalizes the config or versions the cost model differently
	// than the coordinator, running the cell would produce a result the
	// requester cannot trust (or cache) — refuse instead.
	if localKey := campaign.CacheKey(cell.Config); localKey != cell.Key {
		comp.ErrKind, comp.Err = encodeErr(versionSkewErr(cell, localKey))
		return comp
	}

	if opts.Cache != nil {
		if res, ok := opts.Cache.Get(cell.Config); ok {
			r := res
			comp.Result, comp.Cached = &r, true
			logCell(opts.Log, opts.ID, cell, "cached", time.Since(start))
			return comp
		}
	}

	timeout := opts.Timeout
	if cell.TimeoutMs > 0 {
		timeout = time.Duration(cell.TimeoutMs) * time.Millisecond
	}
	out := campaign.ExecuteCell(ctx, opts.run, campaign.Spec{ID: cell.ID, Cfg: cell.Config}, timeout)
	if out.Err != nil {
		comp.ErrKind, comp.Err = encodeErr(out.Err)
		comp.Panicked, comp.Stack = out.Panicked, out.Stack
		logCell(opts.Log, opts.ID, cell, "FAILED: "+out.Err.Error(), time.Since(start))
		return comp
	}
	r := out.Result
	comp.Result = &r
	if opts.Cache != nil {
		opts.Cache.Put(cell.Config, out.Result)
	}
	logCell(opts.Log, opts.ID, cell, "ok", time.Since(start))
	return comp
}

func logCell(w io.Writer, id string, cell Cell, status string, wall time.Duration) {
	if w != nil {
		fmt.Fprintf(w, "worker %s: %-44s %-6s %6.2fs\n", id, cell.ID, status, wall.Seconds())
	}
}

func leaseCells(ctx context.Context, client *http.Client, base string, n int, worker string) (LeaseResponse, error) {
	url := fmt.Sprintf("%s/lease?n=%d&worker=%s", base, n, neturl.QueryEscape(worker))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return LeaseResponse{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return LeaseResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return LeaseResponse{}, fmt.Errorf("fabric: lease: %s", resp.Status)
	}
	var lr LeaseResponse
	if err := decodeJSON(io.LimitReader(resp.Body, maxEntryBytes), &lr); err != nil {
		return LeaseResponse{}, err
	}
	return lr, nil
}

func postCompletions(ctx context.Context, client *http.Client, base string, comps []Completion) error {
	blob, err := json.Marshal(comps)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/complete", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fabric: complete: %s", resp.Status)
	}
	return nil
}

// sleepCtx sleeps d unless the context fires first; reports whether the
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
