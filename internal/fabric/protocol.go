// Package fabric promotes the campaign orchestrator to a fleet: a
// coordinator shards campaign cells to worker daemons over HTTP in a
// work-stealing pull model, a cache server exports the content-addressed
// result store so machines dedupe each other's measurements, and a
// fabric.Runner slots the outcomes back into deterministic spec order
// behind the same core.Runner seam the figure/table suites already use.
//
// The fleet is a pure wall-clock optimization: cells are the same
// deterministic single-host simulations, addressed by the same content
// keys (canonical Config + cost.ModelVersion), so a fabric run is
// byte-identical to a local run of the same campaign — and any worker's
// result is valid for any requester that agrees on the key.
package fabric

import (
	"errors"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
)

// Cell is one leased unit of work: a campaign cell plus its routing
// coordinates (job, index) and its content address. Key doubles as a
// version handshake — a worker whose locally recomputed key disagrees
// must not run the cell, because its cost model or config
// canonicalization differs from the coordinator's.
type Cell struct {
	Job   int    `json:"job"`
	Index int    `json:"index"`
	ID    string `json:"id"`
	Key   string `json:"key"`

	Config core.Config `json:"config"`

	// TimeoutMs is the coordinator's per-cell wall-clock budget
	// (0 = unlimited); workers honor it with the shared per-cell
	// isolation path.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// LeaseResponse answers POST /lease.
type LeaseResponse struct {
	Cells []Cell `json:"cells"`
	// Shutdown tells an idle worker the coordinator is draining for good:
	// stop polling and exit.
	Shutdown bool `json:"shutdown,omitempty"`
}

// Completion reports one executed cell back to the coordinator.
type Completion struct {
	Job    int    `json:"job"`
	Index  int    `json:"index"`
	Worker string `json:"worker"`

	Result *core.Result `json:"result,omitempty"`

	Err      string `json:"err,omitempty"`
	ErrKind  string `json:"err_kind,omitempty"`
	Panicked bool   `json:"panicked,omitempty"`
	Stack    string `json:"stack,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	WallMs   float64 `json:"wall_ms"`
}

// The wire error kinds. Sentinel identity must survive the HTTP hop:
// campaign.CellFailed and the figure renderers distinguish
// ErrChainTooLong (a legitimate per-switch limit) from real failures
// with errors.Is, which a bare string cannot satisfy.
const (
	errKindChainTooLong   = "chain_too_long"
	errKindNoMultiCore    = "no_multicore"
	errKindNoRuntimeRules = "no_runtime_rules"
	errKindTimeout        = "timeout"
	errKindPanicked       = "panicked"
	errKindVersionSkew    = "version_skew"
	errKindOther          = "other"
)

// encodeErr maps an outcome error to its wire (kind, message) pair.
func encodeErr(err error) (kind, msg string) {
	if err == nil {
		return "", ""
	}
	switch {
	case errors.Is(err, core.ErrChainTooLong):
		kind = errKindChainTooLong
	case errors.Is(err, core.ErrNoMultiCore):
		kind = errKindNoMultiCore
	case errors.Is(err, core.ErrNoRuntimeRules):
		kind = errKindNoRuntimeRules
	case errors.Is(err, campaign.ErrCellTimeout):
		kind = errKindTimeout
	case errors.Is(err, campaign.ErrCellPanicked):
		kind = errKindPanicked
	case errors.Is(err, ErrVersionSkew):
		kind = errKindVersionSkew
	default:
		kind = errKindOther
	}
	return kind, err.Error()
}

// wireError reconstructs a remote error: the exact remote message, with
// the sentinel restored behind Unwrap so errors.Is still works.
type wireError struct {
	msg      string
	sentinel error
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }

// decodeErr restores a wire (kind, message) pair to an error preserving
// both the message bytes and sentinel identity.
func decodeErr(kind, msg string) error {
	if kind == "" && msg == "" {
		return nil
	}
	var sentinel error
	switch kind {
	case errKindChainTooLong:
		sentinel = core.ErrChainTooLong
	case errKindNoMultiCore:
		sentinel = core.ErrNoMultiCore
	case errKindNoRuntimeRules:
		sentinel = core.ErrNoRuntimeRules
	case errKindTimeout:
		sentinel = campaign.ErrCellTimeout
	case errKindPanicked:
		sentinel = campaign.ErrCellPanicked
	case errKindVersionSkew:
		sentinel = ErrVersionSkew
	}
	if sentinel == nil {
		return errors.New(msg)
	}
	if sentinel.Error() == msg {
		return sentinel
	}
	return &wireError{msg: msg, sentinel: sentinel}
}

// ErrVersionSkew reports a worker whose locally computed content address
// for a leased cell disagrees with the coordinator's — its binary runs a
// different cost model or config canonicalization, so executing the cell
// would silently mix incompatible measurements.
var ErrVersionSkew = errors.New("fabric: worker/coordinator cache-key mismatch (cost model or config canonicalization skew)")

func versionSkewErr(cell Cell, localKey string) error {
	return fmt.Errorf("%w: cell %s: coordinator key %.12s…, worker key %.12s…",
		ErrVersionSkew, cell.ID, cell.Key, localKey)
}
