package fabric

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
)

// CacheClient is the campaign.Store view of a remote cache server. Every
// failure — network, server, integrity — degrades to a miss (Get) or a
// dropped write (Put), matching the local cache's "recompute, never
// fail" contract. Entries are validated client-side too: a hostile or
// skewed server cannot inject a result whose content address does not
// recompute.
type CacheClient struct {
	base string
	http *http.Client
}

var _ campaign.Store = (*CacheClient)(nil)

// NewCacheClient returns a client for a cache server at base
// (e.g. "http://host:8711"; a bare host:port gets http:// prepended).
func NewCacheClient(base string) *CacheClient {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &CacheClient{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// Base returns the server URL the client talks to.
func (c *CacheClient) Base() string { return c.base }

func (c *CacheClient) url(key string) string { return c.base + "/cache/" + key }

// Get implements campaign.Store.
func (c *CacheClient) Get(cfg core.Config) (core.Result, bool) {
	key := campaign.CacheKey(cfg)
	resp, err := c.http.Get(c.url(key))
	if err != nil {
		return core.Result{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return core.Result{}, false
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes))
	if err != nil {
		return core.Result{}, false
	}
	return campaign.DecodeEntry(key, blob)
}

// Put implements campaign.Store.
func (c *CacheClient) Put(cfg core.Config, res core.Result) {
	key, blob, err := campaign.EncodeEntry(cfg, res)
	if err != nil {
		return
	}
	req, err := http.NewRequest(http.MethodPut, c.url(key), bytes.NewReader(blob))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// Stats fetches the server's counters.
func (c *CacheClient) Stats() (CacheStats, error) {
	resp, err := c.http.Get(c.base + "/stats")
	if err != nil {
		return CacheStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return CacheStats{}, fmt.Errorf("fabric: cache stats: %s", resp.Status)
	}
	var st CacheStats
	if err := decodeJSON(resp.Body, &st); err != nil {
		return CacheStats{}, err
	}
	return st, nil
}

// Tiered composes a local and a remote result store: reads check the
// local tier first and write remote hits through to it, writes go to
// both. Either tier may be nil. This is what gives a worker (or a
// resubmitting user) warm-start behaviour: recalibrations and R+/latency
// ladders dedupe across machines via the remote tier while repeated
// local sweeps stay disk-fast.
type Tiered struct {
	Local  campaign.Store
	Remote campaign.Store
}

var _ campaign.Store = (*Tiered)(nil)

// NewTiered builds the composition, collapsing to the single non-nil
// tier when only one is configured (nil when both are).
func NewTiered(local, remote campaign.Store) campaign.Store {
	switch {
	case local == nil && remote == nil:
		return nil
	case local == nil:
		return remote
	case remote == nil:
		return local
	}
	return &Tiered{Local: local, Remote: remote}
}

// Get implements campaign.Store: local, then remote with write-through.
func (t *Tiered) Get(cfg core.Config) (core.Result, bool) {
	if res, ok := t.Local.Get(cfg); ok {
		return res, true
	}
	if res, ok := t.Remote.Get(cfg); ok {
		t.Local.Put(cfg, res)
		return res, true
	}
	return core.Result{}, false
}

// Put implements campaign.Store: write-through to both tiers.
func (t *Tiered) Put(cfg core.Config, res core.Result) {
	t.Local.Put(cfg, res)
	t.Remote.Put(cfg, res)
}
