package fabric

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/campaign"
)

// maxEntryBytes bounds a PUT body; a result entry is a few KB, so this is
// generous headroom, not a real limit.
const maxEntryBytes = 1 << 24

// CacheServer exports a local content-addressed result cache over HTTP:
//
//	GET  /cache/{key}  -> entry blob (404 on miss)
//	PUT  /cache/{key}  -> 204 (400 when the entry fails integrity)
//	GET  /stats        -> CacheStats JSON
//
// Every PUT is integrity-checked server-side by recomputing the content
// address from the entry's embedded config and cost-model version, and
// written atomically. Concurrent PUTs of the same key are single-flighted:
// one writer persists, the rest wait for its outcome — N workers finishing
// the same recalibration cell cost one disk write, not N.
type CacheServer struct {
	cache *campaign.Cache

	mu       sync.Mutex
	inflight map[string]*flight
	stats    CacheStats

	// putGate, when non-nil, runs in the single-flight leader just before
	// the store — a test hook to hold the flight open while followers
	// pile up.
	putGate func(key string)
}

// flight is one in-progress PUT other writers of the same key wait on.
type flight struct {
	done chan struct{}
	err  error
}

// CacheStats is the server's observability surface, served at /stats.
type CacheStats struct {
	// Entries/Bytes describe the underlying store.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Gets/Hits/Puts count requests served; Deduped counts PUTs answered
	// by another in-flight identical PUT without touching disk.
	Gets    int64 `json:"gets"`
	Hits    int64 `json:"hits"`
	Puts    int64 `json:"puts"`
	Stores  int64 `json:"stores"`
	Deduped int64 `json:"deduped"`
}

// NewCacheServer wraps an open result cache in the HTTP service.
func NewCacheServer(cache *campaign.Cache) *CacheServer {
	return &CacheServer{cache: cache, inflight: make(map[string]*flight)}
}

// Stats snapshots the counters plus the store's entry count and size.
func (s *CacheServer) Stats() CacheStats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	st.Entries, st.Bytes = s.cache.Stats()
	return st
}

// ServeHTTP implements http.Handler.
func (s *CacheServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/stats" && r.Method == http.MethodGet:
		writeJSON(w, s.Stats())
	case strings.HasPrefix(r.URL.Path, "/cache/"):
		key := strings.TrimPrefix(r.URL.Path, "/cache/")
		if !validKey(key) {
			http.Error(w, "fabric: malformed cache key", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			s.get(w, key)
		case http.MethodPut:
			s.put(w, r, key)
		default:
			http.Error(w, "fabric: GET or PUT", http.StatusMethodNotAllowed)
		}
	default:
		http.NotFound(w, r)
	}
}

// validKey accepts exactly the hex SHA-256 shape CacheKey produces.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *CacheServer) get(w http.ResponseWriter, key string) {
	s.mu.Lock()
	s.stats.Gets++
	s.mu.Unlock()
	blob, ok := s.cache.GetBlob(key)
	if !ok {
		http.Error(w, "fabric: cache miss", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
}

func (s *CacheServer) put(w http.ResponseWriter, r *http.Request, key string) {
	blob, err := io.ReadAll(io.LimitReader(r.Body, maxEntryBytes))
	if err != nil {
		http.Error(w, "fabric: reading entry body", http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	s.stats.Puts++
	if f, ok := s.inflight[key]; ok {
		// Another writer is persisting this key right now; its outcome is
		// ours — identical key means identical (config, cost model) and a
		// deterministic result.
		s.stats.Deduped++
		s.mu.Unlock()
		<-f.done
		replyPut(w, f.err)
		return
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.stats.Stores++
	gate := s.putGate
	s.mu.Unlock()

	if gate != nil {
		gate(key)
	}
	f.err = s.cache.PutBlob(key, blob)

	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(f.done)
	replyPut(w, f.err)
}

func replyPut(w http.ResponseWriter, err error) {
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
