package fabric

import (
	"context"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
)

// RunnerOptions configures a fabric Runner.
type RunnerOptions struct {
	// Cache, when non-nil, answers cells before they are enqueued and
	// absorbs fleet results (typically a Tiered local+shared store).
	Cache campaign.Store
	// Manifest, when non-nil, replays recorded cells and logs fresh
	// completions, making fleet campaigns resumable.
	Manifest *campaign.Manifest
	// Timeout is the per-cell wall-clock budget workers enforce.
	Timeout time.Duration
	// Events receives progress events (serialized; Worker carries the
	// executing worker's ID).
	Events func(campaign.Event)
}

// Runner executes campaigns on the fleet: cells answered by the manifest
// or cache are replayed locally, the rest are submitted to the
// coordinator and executed by whichever workers lease them, and outcomes
// come back in deterministic spec order. It implements core.Runner, so
// every figure/table suite runs on the fleet unchanged.
type Runner struct {
	ctx  context.Context
	co   *Coordinator
	opts RunnerOptions
}

var _ core.Runner = (*Runner)(nil)

// NewRunner wraps a coordinator in the campaign-level runner. ctx
// cancels in-flight campaigns (nil means context.Background()).
func NewRunner(ctx context.Context, co *Coordinator, opts RunnerOptions) *Runner {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Runner{ctx: ctx, co: co, opts: opts}
}

// RunCampaign executes the campaign on the fleet: every cell exactly
// once, outcomes in spec order, failures collected rather than aborting
// — the fabric twin of Orchestrator.Run.
func (r *Runner) RunCampaign(c campaign.Campaign) (*campaign.Report, error) {
	start := time.Now()
	rep := &campaign.Report{Name: c.Name, Outcomes: make([]campaign.Outcome, len(c.Specs))}
	for i := range c.Specs {
		if c.Specs[i].ID == "" {
			c.Specs[i].ID = campaign.AutoID(c.Specs[i].Cfg)
		}
	}

	var (
		mu   sync.Mutex
		done int
	)
	emit := func(ev campaign.Event) {
		if r.opts.Events == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		ev.Total = len(c.Specs)
		ev.Done = done
		ev.Elapsed = time.Since(start)
		if done > 0 && done < ev.Total {
			perCell := ev.Elapsed / time.Duration(done)
			ev.ETA = perCell * time.Duration(ev.Total-done)
			ev.Rate = float64(done) / ev.Elapsed.Seconds()
		}
		r.opts.Events(ev)
	}
	finished := func(ev campaign.Event) {
		mu.Lock()
		done++
		mu.Unlock()
		emit(ev)
	}

	// Local pass: manifest replays and cache hits never reach the fleet.
	var (
		remote  []campaign.Spec
		mapping []int
	)
	for i, spec := range c.Specs {
		key := campaign.CacheKey(spec.Cfg)
		if r.opts.Manifest != nil {
			if res, ok := r.opts.Manifest.Lookup(key); ok {
				rep.Outcomes[i] = campaign.Outcome{Spec: spec, Result: res, Cached: true, Worker: "manifest"}
				finished(campaign.Event{Type: campaign.EventCached, Index: i, ID: spec.ID, Worker: "manifest"})
				continue
			}
		}
		if r.opts.Cache != nil {
			if res, ok := r.opts.Cache.Get(spec.Cfg); ok {
				rep.Outcomes[i] = campaign.Outcome{Spec: spec, Result: res, Cached: true, Worker: "local"}
				r.record(i, spec, key, res)
				finished(campaign.Event{Type: campaign.EventCached, Index: i, ID: spec.ID, Worker: "local"})
				continue
			}
		}
		remote = append(remote, spec)
		mapping = append(mapping, i)
	}

	var ctxErr error
	if len(remote) > 0 {
		// Remap job-local event indices back to campaign spec indices.
		job := r.co.Submit(remote, r.opts.Timeout, func(ev campaign.Event) {
			ev.Index = mapping[ev.Index]
			if ev.Type == campaign.EventStarted {
				emit(ev)
			} else {
				finished(ev)
			}
		})
		outs, err := job.Wait(r.ctx)
		ctxErr = err
		for k, out := range outs {
			i := mapping[k]
			rep.Outcomes[i] = out
			if out.Err == nil {
				if r.opts.Cache != nil && !out.Cached {
					// Workers already fed the shared tier; this warms the
					// submitter's local tier (and covers cache-less workers).
					r.opts.Cache.Put(out.Spec.Cfg, out.Result)
				}
				r.record(i, out.Spec, campaign.CacheKey(out.Spec.Cfg), out.Result)
			}
		}
	}

	rep.Wall = time.Since(start)
	for _, out := range rep.Outcomes {
		if out.Cached {
			rep.CacheHits++
		}
		if campaign.CellFailed(out.Err) {
			rep.Failed++
		}
	}
	return rep, ctxErr
}

func (r *Runner) record(index int, spec campaign.Spec, key string, res core.Result) {
	if r.opts.Manifest != nil {
		worker := "local"
		r.opts.Manifest.Record(index, spec.ID, worker, key, res)
	}
}

// RunAll implements core.Runner: the figure/table suites fan their grids
// out over the fleet.
func (r *Runner) RunAll(specs []core.Config) []core.SpecOutcome {
	c := campaign.Campaign{Name: "batch", Specs: make([]campaign.Spec, len(specs))}
	for i, cfg := range specs {
		c.Specs[i] = campaign.Spec{Cfg: cfg}
	}
	rep, _ := r.RunCampaign(c)
	outs := make([]core.SpecOutcome, len(specs))
	for i, out := range rep.Outcomes {
		outs[i] = core.SpecOutcome{Result: out.Result, Err: out.Err}
	}
	return outs
}
