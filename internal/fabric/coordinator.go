package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/campaign"
)

// DefaultLeaseTTL is how long a leased cell may stay unreported before
// the coordinator hands it back to the pending queue for re-issue.
const DefaultLeaseTTL = 2 * time.Minute

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// LeaseTTL bounds how long a worker may hold a cell without
	// completing it; an expired lease is re-issued to the next /lease
	// call, so a dead worker's cells migrate instead of hanging the
	// campaign. 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
}

// Coordinator shards campaign cells to workers over HTTP in a
// work-stealing pull model:
//
//	POST /lease?n=N&worker=ID -> LeaseResponse (up to N cells, leased)
//	POST /complete            -> []Completion
//	GET  /status              -> CoordinatorStatus
//
// Workers pull batches at their own pace — a fast machine simply leases
// more often, which is all the load balancing a grid of independent
// deterministic cells needs. Completions are slotted by (job, index), so
// outcome order is spec order regardless of which worker finished when,
// and a late duplicate completion of a re-issued cell is ignored.
type Coordinator struct {
	opts CoordinatorOptions

	mu      sync.Mutex
	jobs    map[int]*Job
	order   []int // job submission order: leases drain older jobs first
	nextJob int
	closed  bool

	reissued int64
	leases   map[string]int64 // worker -> cells leased (liveness view)
}

// cellState is one cell's lifecycle within a job.
type cellState uint8

const (
	statePending cellState = iota
	stateLeased
	stateDone
)

// Job is one submitted batch of cells awaiting fleet execution.
type Job struct {
	id       int
	co       *Coordinator
	specs    []campaign.Spec
	timeout  time.Duration
	emit     func(campaign.Event)
	state    []cellState
	deadline []time.Time
	pending  []int // FIFO of pending cell indices
	outcomes []campaign.Outcome
	left     int
	done     chan struct{}
}

// NewCoordinator returns an empty coordinator; expose it with any
// http.Server (it implements http.Handler) and feed it with Submit.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	return &Coordinator{
		opts:   opts,
		jobs:   make(map[int]*Job),
		leases: make(map[string]int64),
	}
}

// Submit enqueues a batch of cells for the fleet. emit (optional)
// receives per-cell progress events with job-local indices and worker
// identities; timeout is the per-cell wall-clock budget workers enforce.
func (co *Coordinator) Submit(specs []campaign.Spec, timeout time.Duration, emit func(campaign.Event)) *Job {
	co.mu.Lock()
	defer co.mu.Unlock()
	j := &Job{
		id:       co.nextJob,
		co:       co,
		specs:    specs,
		timeout:  timeout,
		emit:     emit,
		state:    make([]cellState, len(specs)),
		deadline: make([]time.Time, len(specs)),
		pending:  make([]int, 0, len(specs)),
		outcomes: make([]campaign.Outcome, len(specs)),
		left:     len(specs),
		done:     make(chan struct{}),
	}
	co.nextJob++
	for i := range specs {
		j.pending = append(j.pending, i)
	}
	if j.left == 0 {
		close(j.done)
	} else {
		co.jobs[j.id] = j
		co.order = append(co.order, j.id)
	}
	return j
}

// Wait blocks until every cell of the job completed, returning outcomes
// in spec order. Context cancellation abandons the job: cells not yet
// completed report the context error, mirroring the local orchestrator.
func (j *Job) Wait(ctx context.Context) ([]campaign.Outcome, error) {
	select {
	case <-j.done:
		return j.outcomes, nil
	case <-ctx.Done():
	}
	j.co.mu.Lock()
	defer j.co.mu.Unlock()
	select {
	case <-j.done:
		// Completed while we were acquiring the lock.
		return j.outcomes, nil
	default:
	}
	for i := range j.specs {
		if j.state[i] != stateDone {
			j.state[i] = stateDone
			j.outcomes[i] = campaign.Outcome{Spec: j.specs[i], Err: ctx.Err()}
		}
	}
	j.left = 0
	j.co.drop(j.id)
	close(j.done)
	return j.outcomes, ctx.Err()
}

// drop removes a job from the dispatch rotation. Caller holds co.mu.
func (co *Coordinator) drop(id int) {
	delete(co.jobs, id)
	for i, jid := range co.order {
		if jid == id {
			co.order = append(co.order[:i], co.order[i+1:]...)
			break
		}
	}
}

// Close marks the coordinator as draining: once the jobs in flight
// finish, idle workers are told to shut down instead of polling forever.
func (co *Coordinator) Close() {
	co.mu.Lock()
	co.closed = true
	co.mu.Unlock()
}

// Reissued counts leases that expired and were handed back for re-issue.
func (co *Coordinator) Reissued() int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.reissued
}

// reap hands expired leases back to their pending queues. Caller holds
// co.mu.
func (co *Coordinator) reap(now time.Time) {
	for _, jid := range co.order {
		j := co.jobs[jid]
		for i := range j.specs {
			if j.state[i] == stateLeased && now.After(j.deadline[i]) {
				j.state[i] = statePending
				j.pending = append(j.pending, i)
				co.reissued++
			}
		}
	}
}

// lease hands out up to n cells across jobs in submission order.
func (co *Coordinator) lease(n int, worker string) LeaseResponse {
	now := time.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	co.reap(now)
	var cells []Cell
	for _, jid := range co.order {
		j := co.jobs[jid]
		for len(cells) < n && len(j.pending) > 0 {
			i := j.pending[0]
			j.pending = j.pending[1:]
			if j.state[i] != statePending {
				continue
			}
			j.state[i] = stateLeased
			j.deadline[i] = now.Add(co.opts.LeaseTTL)
			spec := j.specs[i]
			cells = append(cells, Cell{
				Job: j.id, Index: i, ID: spec.ID,
				Key:       campaign.CacheKey(spec.Cfg),
				Config:    spec.Cfg,
				TimeoutMs: j.timeout.Milliseconds(),
			})
			if j.emit != nil {
				j.emit(campaign.Event{Type: campaign.EventStarted, Index: i, ID: spec.ID, Worker: worker})
			}
		}
		if len(cells) >= n {
			break
		}
	}
	co.leases[worker] += int64(len(cells))
	return LeaseResponse{Cells: cells, Shutdown: co.closed && len(cells) == 0 && len(co.order) == 0}
}

// complete slots finished cells back into their jobs.
func (co *Coordinator) complete(comps []Completion) {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, c := range comps {
		j, ok := co.jobs[c.Job]
		if !ok || c.Index < 0 || c.Index >= len(j.specs) {
			continue // abandoned job or garbage index
		}
		if j.state[c.Index] == stateDone {
			continue // late duplicate of a re-issued cell
		}
		j.state[c.Index] = stateDone
		out := campaign.Outcome{
			Spec:     j.specs[c.Index],
			Err:      decodeErr(c.ErrKind, c.Err),
			Cached:   c.Cached,
			Panicked: c.Panicked,
			Stack:    c.Stack,
			Worker:   c.Worker,
			Wall:     time.Duration(c.WallMs * float64(time.Millisecond)),
		}
		if c.Result != nil {
			out.Result = *c.Result
		}
		j.outcomes[c.Index] = out
		j.left--
		if j.emit != nil {
			typ := campaign.EventFinished
			switch {
			case campaign.CellFailed(out.Err):
				typ = campaign.EventFailed
			case out.Cached:
				typ = campaign.EventCached
			}
			j.emit(campaign.Event{Type: typ, Index: c.Index, ID: out.Spec.ID, Err: out.Err, Wall: out.Wall, Worker: out.Worker})
		}
		if j.left == 0 {
			co.drop(j.id)
			close(j.done)
		}
	}
}

// CoordinatorStatus is the /status JSON.
type CoordinatorStatus struct {
	Jobs     int              `json:"jobs"`
	Pending  int              `json:"pending"`
	Leased   int              `json:"leased"`
	Reissued int64            `json:"reissued"`
	Closed   bool             `json:"closed"`
	Workers  map[string]int64 `json:"workers"`
}

// Status snapshots the coordinator.
func (co *Coordinator) Status() CoordinatorStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	st := CoordinatorStatus{
		Jobs: len(co.order), Reissued: co.reissued, Closed: co.closed,
		Workers: make(map[string]int64, len(co.leases)),
	}
	for w, n := range co.leases {
		st.Workers[w] = n
	}
	for _, jid := range co.order {
		j := co.jobs[jid]
		for i := range j.specs {
			switch j.state[i] {
			case statePending:
				st.Pending++
			case stateLeased:
				st.Leased++
			}
		}
	}
	return st
}

// ServeHTTP implements http.Handler.
func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/lease" && r.Method == http.MethodPost:
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		if n <= 0 {
			n = 1
		}
		worker := r.URL.Query().Get("worker")
		if worker == "" {
			worker = "anonymous"
		}
		writeJSON(w, co.lease(n, worker))
	case r.URL.Path == "/complete" && r.Method == http.MethodPost:
		var comps []Completion
		if err := decodeJSON(io.LimitReader(r.Body, maxEntryBytes), &comps); err != nil {
			http.Error(w, fmt.Sprintf("fabric: decoding completions: %v", err), http.StatusBadRequest)
			return
		}
		co.complete(comps)
		w.WriteHeader(http.StatusNoContent)
	case r.URL.Path == "/status" && r.Method == http.MethodGet:
		writeJSON(w, co.Status())
	default:
		http.NotFound(w, r)
	}
}

func decodeJSON(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }
