package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/units"
)

// quickCfg is a sub-millisecond measurement so fleet tests stay fast.
func quickCfg(name string, scn core.ScenarioKind) core.Config {
	return core.Config{
		Switch: name, Scenario: scn,
		Duration: 500 * units.Microsecond,
		Warmup:   200 * units.Microsecond,
	}
}

// fleetCampaign mixes switches/scenarios and includes one cell that hits
// BESS's chain cap, so the wire path carries a sentinel error too.
func fleetCampaign() campaign.Campaign {
	var specs []campaign.Spec
	for _, sw := range []string{"vpp", "ovs", "bess", "vale", "snabb", "fastclick"} {
		specs = append(specs, campaign.Spec{Cfg: quickCfg(sw, core.P2P)})
		specs = append(specs, campaign.Spec{Cfg: quickCfg(sw, core.V2V)})
	}
	specs = append(specs, campaign.Spec{
		ID:  "bess-chain-cap",
		Cfg: core.Config{Switch: "bess", Scenario: core.Loopback, Chain: 4},
	})
	return campaign.Campaign{Name: "fleet", Specs: specs}
}

// startFleet wires a coordinator + cache server over real HTTP and joins
// n loopback workers sharing the remote cache tier.
func startFleet(t *testing.T, co *Coordinator, n int) (cacheURL string, wait func()) {
	t.Helper()
	coSrv := httptest.NewServer(co)
	t.Cleanup(coSrv.Close)
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	caSrv := httptest.NewServer(NewCacheServer(cache))
	t.Cleanup(caSrv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			err := RunWorker(ctx, WorkerOptions{
				ID:          fmt.Sprintf("w%d", id),
				Coordinator: coSrv.URL,
				Cache:       NewCacheClient(caSrv.URL),
				Poll:        5 * time.Millisecond,
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("worker w%d: %v", id, err)
			}
		}(i)
	}
	return caSrv.URL, wg.Wait
}

// TestFleetMatchesSerial is the acceptance bar: a campaign run on two
// HTTP workers yields byte-identical results, in spec order, to the
// serial single-process run — the fabric is a pure wall-clock optimization.
func TestFleetMatchesSerial(t *testing.T) {
	c := fleetCampaign()
	co := NewCoordinator(CoordinatorOptions{})
	defer co.Close()
	_, _ = startFleet(t, co, 2)

	var mu sync.Mutex
	workers := map[string]int{}
	r := NewRunner(context.Background(), co, RunnerOptions{
		Events: func(ev campaign.Event) {
			if ev.Type == campaign.EventFinished || ev.Type == campaign.EventFailed {
				mu.Lock()
				workers[ev.Worker]++
				mu.Unlock()
			}
		},
	})
	rep, err := r.RunCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != len(c.Specs) {
		t.Fatalf("outcomes = %d, want %d", len(rep.Outcomes), len(c.Specs))
	}

	serial := core.SerialRunner{}
	var cfgs []core.Config
	for _, s := range c.Specs {
		cfgs = append(cfgs, s.Cfg)
	}
	want := serial.RunAll(cfgs)

	for i, out := range rep.Outcomes {
		if out.Spec.Cfg.Switch != c.Specs[i].Cfg.Switch || out.Spec.Cfg.Scenario != c.Specs[i].Cfg.Scenario {
			t.Fatalf("cell %d out of spec order: got %s/%v", i, out.Spec.Cfg.Switch, out.Spec.Cfg.Scenario)
		}
		if (out.Err == nil) != (want[i].Err == nil) {
			t.Fatalf("cell %d error mismatch: fleet=%v serial=%v", i, out.Err, want[i].Err)
		}
		if out.Err != nil {
			// Sentinel identity and message bytes must survive the HTTP hop.
			if !errors.Is(out.Err, core.ErrChainTooLong) {
				t.Fatalf("cell %d: sentinel lost over the wire: %v", i, out.Err)
			}
			if out.Err.Error() != want[i].Err.Error() {
				t.Fatalf("cell %d: error text diverged:\nfleet:  %q\nserial: %q", i, out.Err.Error(), want[i].Err.Error())
			}
			continue
		}
		got, _ := json.Marshal(out.Result)
		exp, _ := json.Marshal(want[i].Result)
		if !bytes.Equal(got, exp) {
			t.Fatalf("cell %d (%s): result bytes diverged:\nfleet:  %s\nserial: %s", i, out.Spec.ID, got, exp)
		}
	}
	if rep.Failed != 0 {
		t.Fatalf("failed = %d (chain-cap cells are not failures): %v", rep.Failed, rep.Err())
	}

	mu.Lock()
	defer mu.Unlock()
	total := 0
	for w, n := range workers {
		if !strings.HasPrefix(w, "w") {
			t.Fatalf("unexpected executor identity %q", w)
		}
		total += n
	}
	if total != len(c.Specs) {
		t.Fatalf("per-worker counts sum to %d, want %d: %v", total, len(c.Specs), workers)
	}
}

// TestRunAllOnFleet exercises the core.Runner seam the figure/table
// suites use.
func TestRunAllOnFleet(t *testing.T) {
	co := NewCoordinator(CoordinatorOptions{})
	defer co.Close()
	_, _ = startFleet(t, co, 2)
	r := NewRunner(context.Background(), co, RunnerOptions{})
	specs := []core.Config{quickCfg("vpp", core.P2P), quickCfg("ovs", core.P2P)}
	outs := r.RunAll(specs)
	if len(outs) != 2 {
		t.Fatalf("outs = %d", len(outs))
	}
	for i, out := range outs {
		if out.Err != nil || out.Result.Gbps <= 0 {
			t.Fatalf("spec %d: %+v", i, out)
		}
	}
}

// TestSharedCacheDedupesAcrossSubmissions runs the same campaign twice
// against one fleet: the second pass must be answered by the shared cache
// without re-executing any cell.
func TestSharedCacheDedupesAcrossSubmissions(t *testing.T) {
	c := fleetCampaign()
	co := NewCoordinator(CoordinatorOptions{})
	defer co.Close()
	cacheURL, _ := startFleet(t, co, 2)

	r := NewRunner(context.Background(), co, RunnerOptions{Cache: NewCacheClient(cacheURL)})
	first, err := r.RunCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.RunCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	// Every successful cell of the second pass is a cache hit (the
	// chain-cap cell errors, so it is never cached and re-runs).
	wantHits := 0
	for _, out := range first.Outcomes {
		if out.Err == nil {
			wantHits++
		}
	}
	if second.CacheHits != wantHits {
		t.Fatalf("second pass cache hits = %d, want %d", second.CacheHits, wantHits)
	}
	for i := range first.Outcomes {
		if first.Outcomes[i].Err != nil {
			continue
		}
		a, _ := json.Marshal(first.Outcomes[i].Result)
		b, _ := json.Marshal(second.Outcomes[i].Result)
		if !bytes.Equal(a, b) {
			t.Fatalf("cell %d: cached replay diverged", i)
		}
	}
}

// TestLeaseExpiryReissue leases cells to a ghost that never completes
// them; after the TTL a live worker must pick them up and finish the job.
func TestLeaseExpiryReissue(t *testing.T) {
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: 50 * time.Millisecond})
	defer co.Close()
	coSrv := httptest.NewServer(co)
	defer coSrv.Close()

	specs := []campaign.Spec{
		{ID: "a", Cfg: quickCfg("vpp", core.P2P)},
		{ID: "b", Cfg: quickCfg("ovs", core.P2P)},
		{ID: "c", Cfg: quickCfg("vale", core.P2P)},
	}
	job := co.Submit(specs, 0, nil)

	// The ghost worker leases everything and vanishes without completing.
	resp, err := http.Post(coSrv.URL+"/lease?n=8&worker=ghost", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var lr LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(lr.Cells) != len(specs) {
		t.Fatalf("ghost leased %d cells, want %d", len(lr.Cells), len(specs))
	}

	// A live worker joins; nothing is pending until the leases expire.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go RunWorker(ctx, WorkerOptions{
		ID: "live", Coordinator: coSrv.URL, Poll: 5 * time.Millisecond,
	})

	waitCtx, waitCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer waitCancel()
	outs, err := job.Wait(waitCtx)
	if err != nil {
		t.Fatalf("job did not recover from the dead lease: %v", err)
	}
	if co.Reissued() == 0 {
		t.Fatal("no lease was re-issued")
	}
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("cell %d: %v", i, out.Err)
		}
		if out.Worker != "live" {
			t.Fatalf("cell %d executed by %q, want the live worker", i, out.Worker)
		}
	}
	st := co.Status()
	if st.Workers["ghost"] != 3 || st.Workers["live"] == 0 {
		t.Fatalf("lease accounting: %v", st.Workers)
	}
}

// TestConcurrentPutSingleFlight drives N identical PUTs through the
// cache server under the race detector: exactly one hits disk, the rest
// are deduped against the in-flight write.
func TestConcurrentPutSingleFlight(t *testing.T) {
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCacheServer(cache)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cfg := quickCfg("vpp", core.P2P)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	key, blob, err := campaign.EncodeEntry(cfg, res)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	// The gate holds the single-flight leader open until every follower
	// has issued its PUT, making the dedup deterministic rather than a
	// race the test might lose.
	followersIn := make(chan struct{})
	srv.putGate = func(string) { <-followersIn }

	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPut, ts.URL+"/cache/"+key, bytes.NewReader(blob))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				errs[i] = fmt.Errorf("status %s", resp.Status)
			}
		}(i)
	}

	// Wait until all followers are parked on the flight, then release.
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv.mu.Lock()
		deduped := srv.stats.Deduped
		srv.mu.Unlock()
		if deduped == writers-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deduped = %d, want %d", deduped, writers-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(followersIn)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if st.Stores != 1 || st.Deduped != writers-1 || st.Puts != writers {
		t.Fatalf("stats = %+v, want 1 store / %d deduped / %d puts", st, writers-1, writers)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d", st.Entries)
	}
	if _, ok := cache.Get(cfg); !ok {
		t.Fatal("entry did not land in the store")
	}
}

// TestPutIntegrityRejected sends a blob whose content address does not
// recompute; the server must refuse to store it.
func TestPutIntegrityRejected(t *testing.T) {
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewCacheServer(cache))
	defer ts.Close()

	cfg := quickCfg("vpp", core.P2P)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, blob, err := campaign.EncodeEntry(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	wrongKey := strings.Repeat("ab", 32)
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/cache/"+wrongKey, bytes.NewReader(blob))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged PUT accepted: %s", resp.Status)
	}
	if n, _ := cache.Stats(); n != 0 {
		t.Fatalf("forged entry persisted (%d entries)", n)
	}

	// Malformed keys never reach the store either.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/cache/not-a-key", bytes.NewReader(blob))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key accepted: %s", resp.Status)
	}
}

// TestVersionSkewRefused hands a worker a cell whose content address
// disagrees with its local canonicalization: it must refuse to run it.
func TestVersionSkewRefused(t *testing.T) {
	comp := executeCell(context.Background(), WorkerOptions{ID: "w"}, Cell{
		Job: 0, Index: 0, ID: "skew",
		Key:    strings.Repeat("00", 32), // not what CacheKey(cfg) computes
		Config: quickCfg("vpp", core.P2P),
	})
	if comp.Result != nil {
		t.Fatal("skewed cell was executed")
	}
	if !strings.Contains(comp.Err, "cache-key mismatch") {
		t.Fatalf("err = %q", comp.Err)
	}
	if decoded := decodeErr(comp.ErrKind, comp.Err); !errors.Is(decoded, ErrVersionSkew) {
		t.Fatalf("sentinel lost: %v", decoded)
	}
}

// TestWireErrorRoundTrip checks every sentinel survives encode/decode
// with identical message bytes.
func TestWireErrorRoundTrip(t *testing.T) {
	cases := []error{
		core.ErrChainTooLong,
		core.ErrNoMultiCore,
		core.ErrNoRuntimeRules,
		campaign.ErrCellTimeout,
		campaign.ErrCellPanicked,
		fmt.Errorf("%w: bess supports at most 3 loopback VNFs", core.ErrChainTooLong),
		fmt.Errorf("plain failure"),
	}
	for _, in := range cases {
		kind, msg := encodeErr(in)
		out := decodeErr(kind, msg)
		if out.Error() != in.Error() {
			t.Fatalf("message bytes diverged: %q -> %q", in.Error(), out.Error())
		}
		for _, sentinel := range []error{core.ErrChainTooLong, core.ErrNoMultiCore, core.ErrNoRuntimeRules, campaign.ErrCellTimeout, campaign.ErrCellPanicked} {
			if errors.Is(in, sentinel) != errors.Is(out, sentinel) {
				t.Fatalf("%v: errors.Is(%v) flipped over the wire", in, sentinel)
			}
		}
	}
	if decodeErr("", "") != nil {
		t.Fatal("empty error decoded to non-nil")
	}
}

// TestCachePruneDeterministic fills a cache past a budget and prunes:
// eviction is oldest-first and the survivor set is stable.
func TestCachePruneDeterministic(t *testing.T) {
	dir := t.TempDir()
	cache, err := campaign.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var cfgs []core.Config
	for _, sw := range []string{"vpp", "ovs", "bess", "vale"} {
		cfg := quickCfg(sw, core.P2P)
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cache.Put(cfg, res)
		cfgs = append(cfgs, cfg)
	}
	entries, bytesBefore := cache.Stats()
	if entries != 4 {
		t.Fatalf("entries = %d", entries)
	}
	st, err := cache.Prune(bytesBefore / 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 4 || st.Removed == 0 {
		t.Fatalf("prune stats = %+v", st)
	}
	if st.BytesAfter > bytesBefore/2 {
		t.Fatalf("still over budget: %+v", st)
	}
	if n, b := cache.Stats(); n != 4-st.Removed || b != st.BytesAfter {
		t.Fatalf("stats disagree with prune: %d entries / %d bytes vs %+v", n, b, st)
	}
	// Prune to zero clears everything and is idempotent.
	if st, err = cache.Prune(0); err != nil || st.BytesAfter != 0 {
		t.Fatalf("prune(0): %+v / %v", st, err)
	}
	for _, cfg := range cfgs {
		if _, ok := cache.Get(cfg); ok {
			t.Fatal("entry survived prune(0)")
		}
	}
	if st, err = cache.Prune(0); err != nil || st.Scanned != 0 || st.Removed != 0 {
		t.Fatalf("idempotent prune: %+v / %v", st, err)
	}
}
