package topo

import "fmt"

// NoPort marks an absent port reference in Assembler calls (e.g. a VNF
// direction with no destination-MAC rewrite).
const NoPort = -1

// Assembler is the target a compiled graph is materialized into. The
// compiler calls it in a fixed order — every attachable node in node
// order (AddPhysPair/AddGuestIf return the SUT port index), every
// cross-connect in edge order, then every endpoint in node order — so
// two assemblers fed the same graph build identical structures.
//
// Port arguments are SUT port indices as returned by the Add methods.
// Egress is the cross-connect peer of the injection port: the port the
// generated traffic is addressed to (its MAC/IP/UDP tuple derives from
// the (at, egress) pair). VNF rewrite arguments are the egress ports of
// the two forwarding directions, or NoPort for "leave the destination
// MAC alone".
type Assembler interface {
	// AddPhysPair creates a SUT NIC port wired to a generator-side NIC
	// port and attaches the SUT side to the switch.
	AddPhysPair(name string) (port int, err error)
	// AddGuestIf creates one guest interface of VM vm and attaches its
	// host side to the switch.
	AddGuestIf(name, vm string) (port int, err error)
	// CrossConnect installs bidirectional L2 forwarding between two
	// attached ports.
	CrossConnect(a, b int) error
	// Generator starts a NIC-side traffic source on the generator NIC
	// of the phys pair holding port at.
	Generator(name string, at, egress int, probes bool) error
	// GuestGenerator starts a guest-side traffic source on the guest
	// interface holding port at.
	GuestGenerator(name string, at, egress int, probes bool) error
	// Sink starts a NIC-side counting endpoint on the generator NIC of
	// the phys pair holding port at.
	Sink(name string, at int) error
	// Monitor starts a guest-side counting endpoint on the guest
	// interface holding port at.
	Monitor(name string, at int) error
	// VNF starts a forwarding network function bridging the guest
	// interfaces at ports a and b. srcMAC is the port whose MAC the VNF
	// writes as Ethernet source; rewriteAB/rewriteBA are the ports
	// whose MACs it writes as destination per direction (NoPort: no
	// rewrite). app is "", "l2fwd", or "vale" (see Node.App).
	VNF(name string, a, b, srcMAC, rewriteAB, rewriteBA int, app string) error
	// Controller starts the control-plane actor that programs rules into
	// the switch mid-run. It owns no SUT port.
	Controller(name string) error
}

// Compile validates g and materializes it into asm. It subsumes what the
// legacy per-scenario wiring functions each duplicated by hand: port
// attachment order, cross-connect installation, generator frame-spec
// steering (egress = the injection port's cross-connect peer), and the
// chain MAC-rewrite computation (each VNF direction rewrites to the
// cross-connect peer of its egress interface).
func Compile(g *Graph, asm Assembler) error {
	r, err := g.resolve()
	if err != nil {
		return err
	}

	// Pass 1: attach ports, in node order.
	ports := make(map[string]int, len(r.nodes))
	for i := range r.nodes {
		n := &r.nodes[i]
		var p int
		var err error
		switch n.Kind {
		case KindPhysPair:
			p, err = asm.AddPhysPair(n.Name)
		case KindGuestIf:
			p, err = asm.AddGuestIf(n.Name, vmOf(n))
		default:
			continue
		}
		if err != nil {
			return fmt.Errorf("topo: attaching %q: %w", n.Name, err)
		}
		ports[n.Name] = p
	}

	// Pass 2: cross-connects, in edge order.
	for _, e := range r.crosses {
		if err := asm.CrossConnect(ports[e.A], ports[e.B]); err != nil {
			return fmt.Errorf("topo: cross-connecting %q—%q: %w", e.A, e.B, err)
		}
	}
	// egress returns the port traffic leaving SUT port name is steered
	// to: its cross-connect peer, or NoPort if unconnected.
	egress := func(name string) int {
		if p, ok := r.peer[name]; ok {
			return ports[p]
		}
		return NoPort
	}

	// Pass 3: endpoints, in node order.
	for i := range r.nodes {
		n := &r.nodes[i]
		var err error
		switch n.Kind {
		case KindGenerator:
			if r.byName[n.At].Kind == KindPhysPair {
				err = asm.Generator(n.Name, ports[n.At], egress(n.At), n.Probes)
			} else {
				err = asm.GuestGenerator(n.Name, ports[n.At], egress(n.At), n.Probes)
			}
		case KindSink:
			err = asm.Sink(n.Name, ports[n.At])
		case KindMonitor:
			err = asm.Monitor(n.Name, ports[n.At])
		case KindVNF:
			srcIf := n.SrcMACIf
			if srcIf == "" {
				srcIf = n.A
			}
			rewBA := NoPort
			if !n.OneWay {
				rewBA = egress(n.A)
			}
			err = asm.VNF(n.Name, ports[n.A], ports[n.B], ports[srcIf], egress(n.B), rewBA, n.App)
		case KindController:
			err = asm.Controller(n.Name)
		default:
			continue
		}
		if err != nil {
			return fmt.Errorf("topo: placing %q: %w", n.Name, err)
		}
	}
	return nil
}
