package topo

import (
	"fmt"
	"strings"
)

// PlanPort is one attached SUT port of a compiled plan.
type PlanPort struct {
	Index int      `json:"index"`
	Node  string   `json:"node"`
	Kind  NodeKind `json:"kind"`
	VM    string   `json:"vm,omitempty"`
}

// PlanCross is one installed cross-connect.
type PlanCross struct {
	A int `json:"a"`
	B int `json:"b"`
}

// PlanActor is one placed traffic endpoint or VNF. Port references are
// SUT port indices; NoPort (-1) means absent or not applicable.
type PlanActor struct {
	Name   string   `json:"name"`
	Kind   NodeKind `json:"kind"`
	Guest  bool     `json:"guest,omitempty"` // generator: guest-side
	At     int      `json:"at"`              // generator/sink/monitor
	Egress int      `json:"egress"`          // generator steering
	Probes bool     `json:"probes,omitempty"`

	A         int    `json:"a"` // vnf ports
	B         int    `json:"b"`
	SrcMAC    int    `json:"src_mac"`    // vnf source-MAC port
	RewriteAB int    `json:"rewrite_ab"` // vnf per-direction rewrites
	RewriteBA int    `json:"rewrite_ba"`
	App       string `json:"app,omitempty"`
}

// nonActor returns a PlanActor with every port reference absent.
func nonActor(name string, kind NodeKind) PlanActor {
	return PlanActor{
		Name: name, Kind: kind,
		At: NoPort, Egress: NoPort,
		A: NoPort, B: NoPort, SrcMAC: NoPort,
		RewriteAB: NoPort, RewriteBA: NoPort,
	}
}

// Plan records the materialization steps of a compiled graph, in
// execution order. It implements Assembler, so compiling a graph into a
// Plan yields exactly the port indices, cross-connect pairs, steering,
// and MAC-rewrite decisions the testbed assembler would make — without
// building a testbed. That makes it the medium for validation (swbench
// topo -validate), rendering (DOT/JSON), and wiring-equivalence tests.
type Plan struct {
	Topology string      `json:"topology,omitempty"`
	Ports    []PlanPort  `json:"ports"`
	Crosses  []PlanCross `json:"cross_connects"`
	Actors   []PlanActor `json:"actors"`
}

var _ Assembler = (*Plan)(nil)

// NewPlan compiles g into a fresh Plan.
func NewPlan(g *Graph) (*Plan, error) {
	p := &Plan{Topology: g.Name}
	if err := Compile(g, p); err != nil {
		return nil, err
	}
	return p, nil
}

// AddPhysPair implements Assembler.
func (p *Plan) AddPhysPair(name string) (int, error) {
	idx := len(p.Ports)
	p.Ports = append(p.Ports, PlanPort{Index: idx, Node: name, Kind: KindPhysPair})
	return idx, nil
}

// AddGuestIf implements Assembler.
func (p *Plan) AddGuestIf(name, vm string) (int, error) {
	idx := len(p.Ports)
	p.Ports = append(p.Ports, PlanPort{Index: idx, Node: name, Kind: KindGuestIf, VM: vm})
	return idx, nil
}

// CrossConnect implements Assembler.
func (p *Plan) CrossConnect(a, b int) error {
	p.Crosses = append(p.Crosses, PlanCross{A: a, B: b})
	return nil
}

// Generator implements Assembler.
func (p *Plan) Generator(name string, at, egress int, probes bool) error {
	a := nonActor(name, KindGenerator)
	a.At, a.Egress, a.Probes = at, egress, probes
	p.Actors = append(p.Actors, a)
	return nil
}

// GuestGenerator implements Assembler.
func (p *Plan) GuestGenerator(name string, at, egress int, probes bool) error {
	a := nonActor(name, KindGenerator)
	a.Guest = true
	a.At, a.Egress, a.Probes = at, egress, probes
	p.Actors = append(p.Actors, a)
	return nil
}

// Sink implements Assembler.
func (p *Plan) Sink(name string, at int) error {
	a := nonActor(name, KindSink)
	a.At = at
	p.Actors = append(p.Actors, a)
	return nil
}

// Monitor implements Assembler.
func (p *Plan) Monitor(name string, at int) error {
	a := nonActor(name, KindMonitor)
	a.At = at
	p.Actors = append(p.Actors, a)
	return nil
}

// VNF implements Assembler.
func (p *Plan) VNF(name string, a, b, srcMAC, rewriteAB, rewriteBA int, app string) error {
	pa := nonActor(name, KindVNF)
	pa.A, pa.B, pa.SrcMAC = a, b, srcMAC
	pa.RewriteAB, pa.RewriteBA, pa.App = rewriteAB, rewriteBA, app
	p.Actors = append(p.Actors, pa)
	return nil
}

// Controller implements Assembler.
func (p *Plan) Controller(name string) error {
	p.Actors = append(p.Actors, nonActor(name, KindController))
	return nil
}

// DOT renders a validated graph as Graphviz DOT: SUT ports as boxes
// (guest ifs clustered per VM), endpoints as ellipses, cross-connects as
// bold edges, wires and vifs as plain and dashed edges.
func DOT(g *Graph) (string, error) {
	r, err := g.resolve()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	name := g.Name
	if name == "" {
		name = "topology"
	}
	fmt.Fprintf(&sb, "graph %q {\n  rankdir=LR;\n  node [fontsize=10];\n", name)

	// Guest ifs grouped into VM clusters.
	vms := map[string][]*Node{}
	var vmOrder []string
	for i := range r.nodes {
		n := &r.nodes[i]
		if n.Kind != KindGuestIf {
			continue
		}
		vm := vmOf(n)
		if _, seen := vms[vm]; !seen {
			vmOrder = append(vmOrder, vm)
		}
		vms[vm] = append(vms[vm], n)
	}
	for i, vm := range vmOrder {
		fmt.Fprintf(&sb, "  subgraph cluster_vm%d {\n    label=%q;\n    style=rounded;\n", i, vm)
		for _, n := range vms[vm] {
			fmt.Fprintf(&sb, "    %q [shape=box];\n", n.Name)
		}
		fmt.Fprintf(&sb, "  }\n")
	}
	for i := range r.nodes {
		n := &r.nodes[i]
		switch n.Kind {
		case KindPhysPair:
			fmt.Fprintf(&sb, "  %q [shape=box, style=filled, fillcolor=lightgrey];\n", n.Name)
		case KindGenerator:
			fmt.Fprintf(&sb, "  %q [shape=ellipse, label=\"%s\\n(generator)\"];\n", n.Name, n.Name)
		case KindSink:
			fmt.Fprintf(&sb, "  %q [shape=ellipse, label=\"%s\\n(sink)\"];\n", n.Name, n.Name)
		case KindMonitor:
			fmt.Fprintf(&sb, "  %q [shape=ellipse, label=\"%s\\n(monitor)\"];\n", n.Name, n.Name)
		case KindVNF:
			fmt.Fprintf(&sb, "  %q [shape=component, label=\"%s\\n(vnf)\"];\n", n.Name, n.Name)
		case KindController:
			fmt.Fprintf(&sb, "  %q [shape=diamond, label=\"%s\\n(controller)\"];\n", n.Name, n.Name)
		}
	}
	for _, e := range r.crosses {
		fmt.Fprintf(&sb, "  %q -- %q [style=bold, label=\"x-conn\"];\n", e.A, e.B)
	}
	for i := range r.nodes {
		n := &r.nodes[i]
		switch n.Kind {
		case KindGenerator, KindSink, KindMonitor:
			style := "dashed" // vif
			if r.byName[n.At].Kind == KindPhysPair {
				style = "solid" // wire
			}
			fmt.Fprintf(&sb, "  %q -- %q [style=%s];\n", n.Name, n.At, style)
		case KindVNF:
			fmt.Fprintf(&sb, "  %q -- %q [style=dashed, label=\"a\"];\n", n.Name, n.A)
			fmt.Fprintf(&sb, "  %q -- %q [style=dashed, label=\"b\"];\n", n.Name, n.B)
		}
	}
	sb.WriteString("}\n")
	return sb.String(), nil
}
