package topo

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// chainGraph builds a p2p-terminated n-VNF chain programmatically (the
// loopback shape, but authored through the IR like any custom topology).
func chainGraph(n int) *Graph {
	g := &Graph{Name: fmt.Sprintf("chain-%d", n)}
	g.Nodes = append(g.Nodes, Node{Name: "p0", Kind: KindPhysPair})
	g.Edges = append(g.Edges, Edge{Kind: EdgeCross, A: "p0", B: "vm1-if0"})
	for k := 1; k <= n; k++ {
		vm := fmt.Sprintf("vm%d", k)
		g.Nodes = append(g.Nodes,
			Node{Name: vm + "-if0", Kind: KindGuestIf, VM: vm},
			Node{Name: vm + "-if1", Kind: KindGuestIf, VM: vm})
		if k < n {
			g.Edges = append(g.Edges, Edge{Kind: EdgeCross, A: vm + "-if1", B: fmt.Sprintf("vm%d-if0", k+1)})
		}
	}
	g.Nodes = append(g.Nodes, Node{Name: "p1", Kind: KindPhysPair})
	g.Edges = append(g.Edges, Edge{Kind: EdgeCross, A: fmt.Sprintf("vm%d-if1", n), B: "p1"})
	for k := 1; k <= n; k++ {
		vm := fmt.Sprintf("vm%d", k)
		g.Nodes = append(g.Nodes, Node{Name: "vnf-" + vm, Kind: KindVNF, A: vm + "-if0", B: vm + "-if1"})
	}
	g.Nodes = append(g.Nodes,
		Node{Name: "tx0", Kind: KindGenerator, At: "p0", Probes: true},
		Node{Name: "rx1", Kind: KindSink, At: "p1"})
	return g
}

func TestValidateAcceptsChain(t *testing.T) {
	if err := chainGraph(3).Validate(); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestValidateReportsAllViolationsJoined(t *testing.T) {
	g := &Graph{
		Nodes: []Node{
			{Name: "p0", Kind: KindPhysPair},
			{Name: "p0", Kind: KindPhysPair},           // duplicate name
			{Name: "gen", Kind: KindGenerator},         // no attachment
			{Name: "mon", Kind: KindMonitor, At: "p0"}, // monitor on a phys pair
		},
		Edges: []Edge{
			{Kind: EdgeCross, A: "p0", B: "ghost"}, // dangling edge
		},
	}
	err := g.Validate()
	if err == nil {
		t.Fatal("broken graph accepted")
	}
	msg := err.Error()
	for _, want := range []string{"duplicate node name", "missing node", "needs an attachment", "want"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error lacks %q:\n%s", want, msg)
		}
	}
	// All four violations surface at once, not just the first.
	if got := len(strings.Split(msg, "\n")); got < 4 {
		t.Errorf("only %d violations reported:\n%s", got, msg)
	}
}

func TestValidateRejects(t *testing.T) {
	pp := Node{Name: "p0", Kind: KindPhysPair}
	pp2 := Node{Name: "p1", Kind: KindPhysPair}
	gi := Node{Name: "g0", Kind: KindGuestIf}
	gen := Node{Name: "tx", Kind: KindGenerator, At: "p0"}
	snk := Node{Name: "rx", Kind: KindSink, At: "p1"}
	x := Edge{Kind: EdgeCross, A: "p0", B: "p1"}
	cases := map[string]*Graph{
		"empty":              {},
		"unknown kind":       {Nodes: []Node{pp, pp2, gen, snk, {Name: "w", Kind: "warp"}}, Edges: []Edge{x}},
		"self cross-connect": {Nodes: []Node{pp, gen, snk}, Edges: []Edge{{Kind: EdgeCross, A: "p0", B: "p0"}}},
		"port crossed twice": {Nodes: []Node{pp, pp2, gi, gen, snk},
			Edges: []Edge{x, {Kind: EdgeCross, A: "p0", B: "g0"}}},
		"steerless generator": {Nodes: []Node{pp, pp2, gen, snk}},
		"no generator":        {Nodes: []Node{pp, pp2, snk}, Edges: []Edge{x}},
		"no endpoint":         {Nodes: []Node{pp, pp2, gen}, Edges: []Edge{x}},
		"vnf self bridge": {Nodes: []Node{pp, pp2, gi, gen, snk,
			{Name: "v", Kind: KindVNF, A: "g0", B: "g0"}}, Edges: []Edge{x}},
		"vnf bad src_mac_if": {Nodes: []Node{pp, pp2, gi, gen, snk,
			{Name: "g1", Kind: KindGuestIf}, {Name: "v", Kind: KindVNF, A: "g0", B: "g1", SrcMACIf: "p0"}}, Edges: []Edge{x}},
		"sink on guest if": {Nodes: []Node{pp, pp2, gi, gen, {Name: "rx", Kind: KindSink, At: "g0"}}, Edges: []Edge{x}},
		"wire to guest if": {Nodes: []Node{pp, pp2, gi, gen, snk},
			Edges: []Edge{x, {Kind: EdgeWire, A: "tx", B: "g0"}}},
		"conflicting attachments": {Nodes: []Node{pp, pp2, gen, snk},
			Edges: []Edge{x, {Kind: EdgeWire, A: "tx", B: "p1"}}},
	}
	for name, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestEdgeAttachmentEquivalentToFields(t *testing.T) {
	// The same topology authored with explicit wire/vif edges instead
	// of node At/A/B fields compiles to an identical plan.
	fields := chainGraph(1)
	edges := &Graph{
		Name: "chain-1",
		Nodes: []Node{
			{Name: "p0", Kind: KindPhysPair},
			{Name: "vm1-if0", Kind: KindGuestIf, VM: "vm1"},
			{Name: "vm1-if1", Kind: KindGuestIf, VM: "vm1"},
			{Name: "p1", Kind: KindPhysPair},
			{Name: "vnf-vm1", Kind: KindVNF},
			{Name: "tx0", Kind: KindGenerator, Probes: true},
			{Name: "rx1", Kind: KindSink},
		},
		Edges: []Edge{
			{Kind: EdgeCross, A: "p0", B: "vm1-if0"},
			{Kind: EdgeCross, A: "vm1-if1", B: "p1"},
			{Kind: EdgeVif, A: "vnf-vm1", B: "vm1-if0", Role: "a"},
			{Kind: EdgeVif, A: "vnf-vm1", B: "vm1-if1", Role: "b"},
			{Kind: EdgeWire, A: "tx0", B: "p0"},
			{Kind: EdgeWire, A: "rx1", B: "p1"},
		},
	}
	pf, err := NewPlan(fields)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewPlan(edges)
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := json.Marshal(pf)
	be, _ := json.Marshal(pe)
	if string(bf) != string(be) {
		t.Fatalf("plans differ:\nfields: %s\nedges:  %s", bf, be)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := chainGraph(2)
	blob, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, _ := json.Marshal(back)
	if string(blob) != string(blob2) {
		t.Fatalf("round trip changed the graph:\n%s\n%s", blob, blob2)
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	if _, err := Parse([]byte(`{"nodes": [{"name": "x", "kind": "physpair"}]}`)); err == nil {
		t.Fatal("invalid graph parsed")
	}
	if _, err := Parse([]byte(`{"nodes": [`)); err == nil {
		t.Fatal("malformed JSON parsed")
	}
}

func TestPlanChainRewrites(t *testing.T) {
	p, err := NewPlan(chainGraph(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ports) != 6 || len(p.Crosses) != 3 || len(p.Actors) != 4 {
		t.Fatalf("plan shape: %d ports, %d crosses, %d actors", len(p.Ports), len(p.Crosses), len(p.Actors))
	}
	// vnf-vm1 forwards to vm2-if0 (port 3) and reverses to p0 (0);
	// vnf-vm2 forwards to p1 (5) and reverses to vm1-if1 (2).
	v1, v2 := p.Actors[0], p.Actors[1]
	if v1.RewriteAB != 3 || v1.RewriteBA != 0 || v1.SrcMAC != 1 {
		t.Errorf("vnf-vm1 = %+v", v1)
	}
	if v2.RewriteAB != 5 || v2.RewriteBA != 2 || v2.SrcMAC != 3 {
		t.Errorf("vnf-vm2 = %+v", v2)
	}
}

func TestFanOutGraphValidates(t *testing.T) {
	// A shape the legacy wire* functions could not express: one ingress
	// fanned out to two parallel VNF paths with separate egress pairs.
	g := &Graph{
		Name: "fanout",
		Nodes: []Node{
			{Name: "pA", Kind: KindPhysPair}, {Name: "pB", Kind: KindPhysPair},
			{Name: "va-if0", Kind: KindGuestIf, VM: "va"}, {Name: "va-if1", Kind: KindGuestIf, VM: "va"},
			{Name: "vb-if0", Kind: KindGuestIf, VM: "vb"}, {Name: "vb-if1", Kind: KindGuestIf, VM: "vb"},
			{Name: "pA2", Kind: KindPhysPair}, {Name: "pB2", Kind: KindPhysPair},
			{Name: "vnf-a", Kind: KindVNF, A: "va-if0", B: "va-if1"},
			{Name: "vnf-b", Kind: KindVNF, A: "vb-if0", B: "vb-if1"},
			{Name: "txA", Kind: KindGenerator, At: "pA", Probes: true},
			{Name: "txB", Kind: KindGenerator, At: "pB", Probes: true},
			{Name: "rxA", Kind: KindSink, At: "pA2"},
			{Name: "rxB", Kind: KindSink, At: "pB2"},
		},
		Edges: []Edge{
			{Kind: EdgeCross, A: "pA", B: "va-if0"},
			{Kind: EdgeCross, A: "pB", B: "vb-if0"},
			{Kind: EdgeCross, A: "va-if1", B: "pA2"},
			{Kind: EdgeCross, A: "vb-if1", B: "pB2"},
		},
	}
	p, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ports) != 8 || len(p.Actors) != 6 {
		t.Fatalf("plan shape: %d ports, %d actors", len(p.Ports), len(p.Actors))
	}
}

func TestDOT(t *testing.T) {
	out, err := DOT(chainGraph(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"graph \"chain-1\"", "cluster_vm0", "x-conn", "vnf-vm1"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output lacks %q:\n%s", want, out)
		}
	}
	if _, err := DOT(&Graph{}); err == nil {
		t.Error("DOT validated an empty graph")
	}
}

// BenchmarkCompileTopology guards compiler overhead: compiling a graph
// must stay negligible next to the simulation it sets up.
func BenchmarkCompileTopology(b *testing.B) {
	g := chainGraph(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlan(g); err != nil {
			b.Fatal(err)
		}
	}
}
