package topo

import "testing"

// p2pGraph is the p2p bidir shape: two phys pairs, a generator and sink
// on each pair (the switch itself is implicit in the compiled testbed).
func p2pGraph() *Graph {
	return &Graph{
		Nodes: []Node{
			{Name: "p0", Kind: KindPhysPair},
			{Name: "p1", Kind: KindPhysPair},
			{Name: "tx0", Kind: KindGenerator, At: "p0"},
			{Name: "rx1", Kind: KindSink, At: "p1"},
			{Name: "tx1", Kind: KindGenerator, At: "p1"},
			{Name: "rx0", Kind: KindSink, At: "p0"},
		},
	}
}

func TestPartitionP2P(t *testing.T) {
	cut := Partition(p2pGraph(), 4)
	if cut.Parts != 3 {
		t.Fatalf("Parts = %d, want 3 (SUT + one per pair)", cut.Parts)
	}
	want := map[string]int{
		"p0": 1, "tx0": 1, "rx0": 1,
		"p1": 2, "tx1": 2, "rx1": 2,
	}
	for name, part := range want {
		if cut.Of[name] != part {
			t.Errorf("%s in partition %d, want %d", name, cut.Of[name], part)
		}
	}
}

// TestPartitionMerges: fewer workers than pairs folds pairs together
// round-robin but always keeps the SUT side alone in partition 0.
func TestPartitionMerges(t *testing.T) {
	cut := Partition(p2pGraph(), 2)
	if cut.Parts != 2 {
		t.Fatalf("Parts = %d, want 2", cut.Parts)
	}
	for _, name := range []string{"p0", "p1", "tx0", "tx1", "rx0", "rx1"} {
		if cut.Of[name] != 1 {
			t.Errorf("%s in partition %d, want 1", name, cut.Of[name])
		}
	}
}

// TestPartitionNoWires: a graph without phys pairs (v2v) has no
// positive-lookahead edge to cut — sequential fallback.
func TestPartitionNoWires(t *testing.T) {
	g := &Graph{
		Nodes: []Node{
			{Name: "g0", Kind: KindGuestIf, VM: "vm0"},
			{Name: "g1", Kind: KindGuestIf, VM: "vm1"},
			{Name: "gen", Kind: KindGenerator, At: "g0"},
			{Name: "sink", Kind: KindSink, At: "g1"},
		},
	}
	cut := Partition(g, 8)
	if cut.Parts != 1 {
		t.Fatalf("Parts = %d, want 1 (no cuttable wire)", cut.Parts)
	}
}

// TestPartitionGuestEndpointsStayOnSUT: endpoints attached to a guest
// interface (p2v's VM-side sink) share memory with their VM and must
// stay in partition 0 even when wires are cut.
func TestPartitionGuestEndpointsStayOnSUT(t *testing.T) {
	g := &Graph{
		Nodes: []Node{
			{Name: "p0", Kind: KindPhysPair},
			{Name: "g0", Kind: KindGuestIf, VM: "vm0"},
			{Name: "tx", Kind: KindGenerator, At: "p0"},
			{Name: "vsink", Kind: KindSink, At: "g0"},
		},
	}
	cut := Partition(g, 4)
	if cut.Parts != 2 {
		t.Fatalf("Parts = %d, want 2", cut.Parts)
	}
	if cut.Of["tx"] != 1 || cut.Of["p0"] != 1 {
		t.Errorf("generator side: p0=%d tx=%d, want both 1", cut.Of["p0"], cut.Of["tx"])
	}
	for _, name := range []string{"g0", "vsink"} {
		if cut.Of[name] != 0 {
			t.Errorf("%s in partition %d, want 0 (SUT side)", name, cut.Of[name])
		}
	}
}

// TestPartitionDisabled: maxParts <= 1 is the explicit sequential choice.
func TestPartitionDisabled(t *testing.T) {
	for _, mp := range []int{0, 1, -3} {
		cut := Partition(p2pGraph(), mp)
		if cut.Parts != 1 {
			t.Errorf("maxParts=%d: Parts = %d, want 1", mp, cut.Parts)
		}
		for name, part := range cut.Of {
			if part != 0 {
				t.Errorf("maxParts=%d: %s in partition %d", mp, name, part)
			}
		}
	}
}
