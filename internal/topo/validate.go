package topo

import (
	"errors"
	"fmt"
)

// resolved is a validated, normalized view of a graph: wire and vif
// edges folded into node attachment fields, cross-connect peers indexed.
type resolved struct {
	g *Graph
	// nodes is a normalized copy of g.Nodes, in declaration order, with
	// attachment edges folded into the At/A/B fields.
	nodes  []Node
	byName map[string]*Node
	// crosses holds the cross-connect edges in declaration order.
	crosses []Edge
	// peer maps an attachable node to its cross-connect peer.
	peer map[string]string
}

// resolve normalizes and validates g, reporting every violation found
// (joined), not just the first.
func (g *Graph) resolve() (*resolved, error) {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("topo: "+format, args...))
	}

	r := &resolved{
		g:      g,
		nodes:  append([]Node(nil), g.Nodes...),
		byName: make(map[string]*Node, len(g.Nodes)),
		peer:   make(map[string]string),
	}
	if len(g.Nodes) == 0 {
		fail("graph has no nodes")
	}

	// Node names and kinds.
	for i := range r.nodes {
		n := &r.nodes[i]
		if n.Name == "" {
			fail("node %d has no name", i)
			continue
		}
		if _, dup := r.byName[n.Name]; dup {
			fail("duplicate node name %q", n.Name)
			continue
		}
		r.byName[n.Name] = n
		switch n.Kind {
		case KindPhysPair, KindGuestIf, KindVNF, KindGenerator, KindSink, KindMonitor, KindController:
		default:
			fail("node %q has unknown kind %q", n.Name, n.Kind)
		}
	}

	// Edges: fold wire/vif into attachment fields, index cross-connects.
	// A dangling edge — one referencing a node that does not exist — is
	// an error, as is re-attaching an already-attached endpoint.
	setAt := func(field *string, val, what, name string) {
		if *field != "" && *field != val {
			fail("%s %q attached to both %q and %q", what, name, *field, val)
			return
		}
		*field = val
	}
	for i, e := range g.Edges {
		a, aok := r.byName[e.A]
		b, bok := r.byName[e.B]
		if !aok || !bok {
			fail("edge %d (%s %q—%q) references a missing node", i, e.Kind, e.A, e.B)
			continue
		}
		switch e.Kind {
		case EdgeCross:
			if !attachable(a.Kind) || !attachable(b.Kind) {
				fail("cross-connect %q—%q must join phys pairs or guest ifs", e.A, e.B)
				continue
			}
			if e.A == e.B {
				fail("cross-connect %q—%q joins a port to itself", e.A, e.B)
				continue
			}
			for _, name := range []string{e.A, e.B} {
				if p, dup := r.peer[name]; dup {
					fail("port %q cross-connected twice (to %q and %q)", name, p, map[bool]string{true: e.B, false: e.A}[name == e.A])
				}
			}
			r.peer[e.A], r.peer[e.B] = e.B, e.A
			r.crosses = append(r.crosses, e)
		case EdgeWire:
			if (a.Kind != KindGenerator && a.Kind != KindSink) || b.Kind != KindPhysPair {
				fail("wire %q—%q must join a generator or sink to a phys pair", e.A, e.B)
				continue
			}
			setAt(&a.At, e.B, string(a.Kind), a.Name)
		case EdgeVif:
			if b.Kind != KindGuestIf {
				fail("vif %q—%q must end on a guest if", e.A, e.B)
				continue
			}
			switch a.Kind {
			case KindGenerator, KindMonitor:
				setAt(&a.At, e.B, string(a.Kind), a.Name)
			case KindVNF:
				switch e.Role {
				case "a":
					setAt(&a.A, e.B, "vnf port a of", a.Name)
				case "b":
					setAt(&a.B, e.B, "vnf port b of", a.Name)
				default:
					fail("vif %q—%q to a vnf needs role \"a\" or \"b\"", e.A, e.B)
				}
			default:
				fail("vif %q—%q must start at a generator, monitor, or vnf", e.A, e.B)
			}
		default:
			fail("edge %d has unknown kind %q", i, e.Kind)
		}
	}

	// Per-kind field checks, now that attachments are normalized.
	want := func(name, field string, kinds ...NodeKind) *Node {
		if field == "" {
			fail("node %q needs an attachment (%v)", name, kinds)
			return nil
		}
		t, ok := r.byName[field]
		if !ok {
			fail("node %q attaches to missing node %q", name, field)
			return nil
		}
		for _, k := range kinds {
			if t.Kind == k {
				return t
			}
		}
		fail("node %q attaches to %q (%s), want %v", name, field, t.Kind, kinds)
		return nil
	}
	generators, measured, controllers := 0, 0, 0
	for i := range r.nodes {
		n := &r.nodes[i]
		if n.Queues < 0 {
			fail("node %q declares %d receive queues", n.Name, n.Queues)
		}
		if n.Queues > 0 && n.Kind != KindPhysPair {
			fail("node %q declares receive queues, which only phys pairs carry", n.Name)
		}
		switch n.Kind {
		case KindGenerator:
			generators++
			if at := want(n.Name, n.At, KindPhysPair, KindGuestIf); at != nil {
				if _, ok := r.peer[at.Name]; !ok {
					fail("generator %q injects at %q, which has no cross-connect to steer its traffic", n.Name, at.Name)
				}
			}
		case KindSink:
			measured++
			want(n.Name, n.At, KindPhysPair)
		case KindMonitor:
			measured++
			want(n.Name, n.At, KindGuestIf)
		case KindVNF:
			want(n.Name, n.A, KindGuestIf)
			want(n.Name, n.B, KindGuestIf)
			if n.A != "" && n.A == n.B {
				fail("vnf %q bridges %q to itself", n.Name, n.A)
			}
			if n.SrcMACIf != "" && n.SrcMACIf != n.A && n.SrcMACIf != n.B {
				fail("vnf %q src_mac_if %q is neither of its ports", n.Name, n.SrcMACIf)
			}
			switch n.App {
			case "", "l2fwd", "vale":
			default:
				fail("vnf %q has unknown app %q", n.Name, n.App)
			}
		case KindController:
			controllers++
			if controllers == 2 {
				fail("graph declares more than one controller")
			}
			if n.At != "" || n.A != "" || n.B != "" {
				fail("controller %q carries attachment fields; it speaks to the switch over the management channel, not a port", n.Name)
			}
		case KindPhysPair, KindGuestIf:
			if n.At != "" || n.A != "" || n.B != "" {
				fail("port node %q carries endpoint attachment fields", n.Name)
			}
		}
	}
	if g.SUTCores < 0 {
		fail("graph declares %d SUT cores", g.SUTCores)
	}
	switch g.Dispatch {
	case "", "rss", "rtc":
	default:
		fail("graph has unknown dispatch mode %q (want \"rss\" or \"rtc\")", g.Dispatch)
	}
	switch g.RSSPolicy {
	case "", "roundrobin", "flowhash":
	default:
		fail("graph has unknown rss policy %q (want \"roundrobin\" or \"flowhash\")", g.RSSPolicy)
	}
	if len(errs) == 0 && generators == 0 {
		fail("graph has no traffic generator")
	}
	if len(errs) == 0 && measured == 0 {
		fail("graph has no measurement endpoint (sink or monitor)")
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return r, nil
}

// Validate checks the graph and reports every violation found, joined
// into one error: unknown kinds, duplicate or missing node names,
// dangling edges, conflicting or ill-typed attachments, twice-connected
// ports, steerless generators, and missing endpoints.
func (g *Graph) Validate() error {
	_, err := g.resolve()
	return err
}
