// Package topo defines a declarative topology graph IR for the testbed.
//
// A Graph is pure data: typed nodes (physical port pairs, guest
// interfaces, VNFs, generators, sinks, monitors) and typed edges (wires,
// cross-connects, virtual interfaces). The paper's four scenarios compile
// into this IR, and arbitrary new topologies — longer chains, fan-out,
// asymmetric paths — can be expressed in it directly, either
// programmatically or as a JSON file.
//
// The IR is materialized by Compile, which walks a validated graph in
// declaration order and drives an Assembler: the production assembler
// lives in internal/core and builds a runnable testbed; the in-package
// Plan assembler records the materialization steps for inspection,
// rendering, and tests. Declaration order is semantic: ports are attached
// to the switch in node order, cross-connects are installed in edge
// order, and traffic endpoints start in node order — which pins the
// simulation's deterministic event interleaving.
package topo

import (
	"encoding/json"
	"fmt"
)

// NodeKind types a topology node.
type NodeKind string

// The node kinds.
const (
	// KindPhysPair is a physical SUT NIC port wired back-to-back to a
	// traffic-generator NIC port (one end of the paper's Fig. 3 cabling).
	KindPhysPair NodeKind = "physpair"
	// KindGuestIf is one guest-side network interface of a VM
	// (vhost-user/virtio or ptnet, depending on the switch under test).
	KindGuestIf NodeKind = "guestif"
	// KindVNF is a forwarding network function occupying a VM and
	// bridging two guest interfaces (DPDK l2fwd or a guest VALE).
	KindVNF NodeKind = "vnf"
	// KindGenerator is a traffic source: MoonGen TX on a phys pair's
	// generator NIC, or MoonGen/pkt-gen TX inside a VM on a guest if.
	KindGenerator NodeKind = "generator"
	// KindSink is a NIC-side counting endpoint (MoonGen RX) on a phys
	// pair's generator NIC.
	KindSink NodeKind = "sink"
	// KindMonitor is a guest-side counting endpoint (FloWatcher-DPDK /
	// pkt-gen RX) on a guest interface.
	KindMonitor NodeKind = "monitor"
	// KindController is the control-plane actor: it programs rules into
	// the SUT switch mid-run (install/revoke churn) over the management
	// channel, so it owns no SUT port and attaches to nothing. At most
	// one per graph.
	KindController NodeKind = "controller"
)

// EdgeKind types a topology edge.
type EdgeKind string

// The edge kinds.
const (
	// EdgeCross is a switch cross-connect: bidirectional L2 forwarding
	// installed between the SUT ports of two attachable nodes.
	EdgeCross EdgeKind = "cross-connect"
	// EdgeWire is the physical cable between a NIC-side endpoint
	// (generator or sink) and a phys pair. Equivalent to the endpoint
	// node's "at" field.
	EdgeWire EdgeKind = "wire"
	// EdgeVif binds a guest-side endpoint (generator, monitor, or VNF)
	// to a guest interface. Equivalent to the endpoint node's "at" (or,
	// for VNFs, "a"/"b") field; VNF vif edges carry a role.
	EdgeVif EdgeKind = "vif"
)

// Node is one typed topology node. Only the fields of its kind apply:
//
//   - physpair: Name.
//   - guestif: Name, VM (defaults to the node name — a single-interface
//     VM).
//   - vnf: Name, A, B (guest-if node names), and optionally App
//     ("l2fwd" forces DPDK l2fwd even on ptnet switches; "" picks the
//     switch's native VNF), SrcMACIf (the guest if whose SUT port MAC
//     the VNF writes as Ethernet source; defaults to A), and OneWay
//     (suppress the B→A destination-MAC rewrite — reflector VNFs).
//   - generator: Name, At (a physpair or guestif), Probes.
//   - sink: Name, At (a physpair).
//   - monitor: Name, At (a guestif).
type Node struct {
	Name string   `json:"name"`
	Kind NodeKind `json:"kind"`

	// VM identifies the virtual machine owning a guest interface; guest
	// interfaces sharing a VM share guest packet memory.
	VM string `json:"vm,omitempty"`

	// A and B are the guest interfaces a VNF bridges (its first and
	// second port, in that order).
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// App selects the VNF application: "" (the switch's native chain
	// VNF: guest VALE over ptnet, DPDK l2fwd otherwise), "l2fwd", or
	// "vale".
	App string `json:"app,omitempty"`
	// SrcMACIf names the guest interface (A or B) whose SUT-port MAC
	// the VNF writes as the Ethernet source of forwarded frames.
	// Defaults to A.
	SrcMACIf string `json:"src_mac_if,omitempty"`
	// OneWay suppresses the B→A destination-MAC rewrite (the v2v
	// latency reflector forwards only A→B).
	OneWay bool `json:"one_way,omitempty"`

	// At is the attachment point of a generator, sink, or monitor.
	At string `json:"at,omitempty"`
	// Probes makes a generator emit latency probes when the run
	// requests them.
	Probes bool `json:"probes,omitempty"`

	// Queues declares a phys pair's hardware receive queue count
	// (0 or 1 = single queue). Multi-core RSS runs spread the port's
	// flows across its queues; single-core runs ignore it.
	Queues int `json:"queues,omitempty"`
}

// Edge is one typed topology edge between two named nodes.
type Edge struct {
	Kind EdgeKind `json:"kind"`
	A    string   `json:"a"`
	B    string   `json:"b"`
	// Role distinguishes a VNF's two vif edges: "a" or "b".
	Role string `json:"role,omitempty"`
}

// Graph is a declarative topology: pure data, serializable as JSON.
// Node and edge order is semantic (see the package comment).
type Graph struct {
	// Name labels the topology (reports, DOT output).
	Name  string `json:"name,omitempty"`
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`

	// SUTCores, Dispatch, and RSSPolicy optionally carry the multi-core
	// dimension with the topology: the switch data plane's core count,
	// its dispatch mode ("rss" or "rtc"), and the rss queue-assignment
	// policy ("roundrobin" or "flowhash"). Zero values defer to the run
	// configuration, which also wins on conflict.
	SUTCores  int    `json:"sut_cores,omitempty"`
	Dispatch  string `json:"dispatch,omitempty"`
	RSSPolicy string `json:"rss_policy,omitempty"`
}

// Parse decodes a JSON topology graph and validates it.
func Parse(data []byte) (*Graph, error) {
	var g Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("topo: parsing graph: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// Node returns the named node, or nil.
func (g *Graph) Node(name string) *Node { return g.node(name) }

// HasController reports whether the graph declares a control-plane node.
func (g *Graph) HasController() bool {
	for i := range g.Nodes {
		if g.Nodes[i].Kind == KindController {
			return true
		}
	}
	return false
}

// node returns the named node, or nil.
func (g *Graph) node(name string) *Node {
	for i := range g.Nodes {
		if g.Nodes[i].Name == name {
			return &g.Nodes[i]
		}
	}
	return nil
}

// vmOf returns the VM identity of a guest interface node: the declared
// VM, defaulting to the node's own name (a single-interface VM).
func vmOf(n *Node) string {
	if n.VM != "" {
		return n.VM
	}
	return n.Name
}

// attachable reports whether a node owns a SUT switch port.
func attachable(k NodeKind) bool { return k == KindPhysPair || k == KindGuestIf }

// endpoint reports whether a node is a traffic endpoint created after
// wiring (generator, sink, monitor, VNF, or controller).
func endpoint(k NodeKind) bool {
	switch k {
	case KindGenerator, KindSink, KindMonitor, KindVNF, KindController:
		return true
	}
	return false
}
