// Partition discovery for the conservative parallel engine.
//
// A compiled graph can run on several goroutines only where an edge carries
// enough latency to serve as lookahead. In this testbed exactly one edge
// class qualifies: the physical wire inside a phys pair, whose NIC
// descriptor-path delays (TxLatency + RxLatency, 3.5 µs by default) bound
// cross-side influence in *both* directions. Vif crossings do not — the
// guest→host doorbell is zero-delay — and RTC handoff rings are synchronous,
// so everything reachable without crossing a wire (the switch, its cores,
// every VM, guest-side endpoints) stays in one partition: the SUT side,
// partition 0. Each phys pair's generator-side NIC and the endpoints
// attached to it form its own partition; the generator side vs SUT side
// split is the guaranteed 2-cut, and multi-port topologies cut further.
package topo

// Cut assigns every node of a compiled graph to a partition.
type Cut struct {
	// Parts is the partition count K. 1 means no usable cut: run the
	// sequential engine.
	Parts int
	// Of maps node name → partition index. Partition 0 is the SUT side.
	Of map[string]int
}

// Partition computes the wire-boundary cut of g, bounded by maxParts
// simulation workers (maxParts <= 1 disables partitioning). Phys pairs are
// distributed round-robin over the non-SUT partitions; NIC-side generators
// and sinks follow the pair they attach to. Graphs without a phys pair
// (v2v) have no positive-lookahead edge and fall back to Parts = 1.
func Partition(g *Graph, maxParts int) *Cut {
	cut := &Cut{Parts: 1, Of: make(map[string]int, len(g.Nodes))}
	for i := range g.Nodes {
		cut.Of[g.Nodes[i].Name] = 0
	}
	if maxParts <= 1 {
		return cut
	}
	genParts := maxParts - 1
	pairs := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Kind != KindPhysPair {
			continue
		}
		cut.Of[n.Name] = 1 + pairs%genParts
		pairs++
	}
	if pairs == 0 {
		return cut
	}
	if pairs < genParts {
		genParts = pairs
	}
	cut.Parts = 1 + genParts
	// NIC-side endpoints live behind their pair's wire, on the generator
	// side of the cut. Guest-side endpoints (At = a guestif) stay on the
	// SUT partition with their VM.
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Kind != KindGenerator && n.Kind != KindSink {
			continue
		}
		if at := g.node(n.At); at != nil && at.Kind == KindPhysPair {
			cut.Of[n.Name] = cut.Of[at.Name]
		}
	}
	return cut
}
