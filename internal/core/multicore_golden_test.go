package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"repro/internal/units"
)

func resultDigest(t *testing.T, res Result) string {
	t.Helper()
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(blob)
	return hex.EncodeToString(h[:16])
}

// TestMultiCoreGoldenDigests pins full Result JSON digests for the
// multi-core dispatch paths: RSS under both steering policies and the
// RTC pipeline, with the NUMA boundary crossed by the 16-core case.
// These are the multi-core counterpart of TestGuestPathGoldenDigests:
// any change to the fleet fan-out, the demux/handoff rings, the steer
// and remote taxes, or per-core accounting shows up here as a digest
// mismatch. Re-pin only with an argued equivalence (see DESIGN.md §3.3).
func TestMultiCoreGoldenDigests(t *testing.T) {
	cases := []struct {
		cfg    Config
		digest string
	}{
		{Config{Switch: "vpp", Scenario: P2P, FrameLen: 64, Bidir: true, SUTCores: 2}, "9606ad8900076a88214c1d88e8d84f19"},
		{Config{Switch: "ovs", Scenario: P2P, FrameLen: 64, Bidir: true, Flows: 64,
			SUTCores: 4, Dispatch: DispatchRSS, RSSPolicy: RSSFlowHash}, "145925ef8cc95e458a37e745dccb2988"},
		{Config{Switch: "vpp", Scenario: P2P, FrameLen: 64, Bidir: true, Flows: 64,
			SUTCores: 4, Dispatch: DispatchRTC}, "c2660b6f055c1bf654be77e12c3d23bf"},
		{Config{Switch: "fastclick", Scenario: Loopback, Chain: 2, FrameLen: 64,
			SUTCores: 4, Dispatch: DispatchRSS, RSSPolicy: RSSFlowHash}, "f42c686be10634810d28ba1ec2323a6a"},
		{Config{Switch: "ovs", Scenario: P2P, FrameLen: 1500, Bidir: true, Flows: 64,
			SUTCores: 16, Dispatch: DispatchRSS, RSSPolicy: RSSFlowHash}, "a49f950d4b8b45419e9c9f57677571e9"},
	}
	for _, tc := range cases {
		cfg := tc.cfg
		cfg.Duration = 2 * units.Millisecond
		cfg.Warmup = units.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", tc.cfg, err)
		}
		if got := resultDigest(t, res); got != tc.digest {
			t.Errorf("%s/%s/%d-core: digest %s, want %s (multi-core data plane diverged)",
				tc.cfg.Switch, cfg.Dispatch, cfg.SUTCores, got, tc.digest)
		}
		if res.EffectiveCores == 0 || len(res.Cores) != res.EffectiveCores {
			t.Errorf("%s: EffectiveCores=%d with %d per-core records",
				tc.cfg.Switch, res.EffectiveCores, len(res.Cores))
		}
	}
}

// TestMultiCoreDigestDeterminism: a fixed seed reproduces the entire
// multi-core Result bit for bit, demuxes, handoff rings and all.
func TestMultiCoreDigestDeterminism(t *testing.T) {
	cfg := Config{Switch: "vpp", Scenario: P2P, FrameLen: 64, Bidir: true, Flows: 64,
		SUTCores: 4, Dispatch: DispatchRTC,
		Duration: 2 * units.Millisecond, Warmup: units.Millisecond}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if da, db := resultDigest(t, a), resultDigest(t, b); da != db {
		t.Fatalf("non-deterministic multi-core run: %s vs %s", da, db)
	}
}

// TestValidateMultiCore covers the dispatch-dimension rejection rules.
func TestValidateMultiCore(t *testing.T) {
	bad := []Config{
		// Dispatch dimensions are meaningless on one core.
		{Switch: "vpp", Scenario: P2P, SUTCores: 1, Dispatch: DispatchRSS},
		{Switch: "vpp", Scenario: P2P, SUTCores: 1, Dispatch: DispatchRTC},
		{Switch: "vpp", Scenario: P2P, RSSPolicy: RSSFlowHash},
		// Unknown enum values.
		{Switch: "vpp", Scenario: P2P, SUTCores: 2, Dispatch: "pipeline"},
		{Switch: "vpp", Scenario: P2P, SUTCores: 2, Dispatch: DispatchRSS, RSSPolicy: "spray"},
		// RSS policy on an RTC pipeline.
		{Switch: "vpp", Scenario: P2P, SUTCores: 4, Dispatch: DispatchRTC, RSSPolicy: RSSFlowHash},
		// Round-robin cannot feed 4 cores from p2p's 2 single-queue ports.
		{Switch: "vpp", Scenario: P2P, SUTCores: 4, Dispatch: DispatchRSS, RSSPolicy: RSSRoundRobin},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", cfg)
		}
	}
	good := []Config{
		{Switch: "vpp", Scenario: P2P, SUTCores: 2},
		{Switch: "vpp", Scenario: P2P, SUTCores: 4, Dispatch: DispatchRSS, RSSPolicy: RSSFlowHash},
		{Switch: "vpp", Scenario: P2P, SUTCores: 2, Dispatch: DispatchRTC},
		{Switch: "vpp", Scenario: Loopback, Chain: 3, SUTCores: 4, Dispatch: DispatchRSS},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", cfg, err)
		}
	}
}
