package core

import (
	"testing"

	"repro/internal/units"
)

// BenchmarkP2P64B runs the paper's headline cell — saturating 64-byte
// p2p forwarding — end to end: scheduler, generators, NIC model, switch
// datapath, and sink. It is the engine's composite hot-path benchmark;
// the per-layer microbenchmarks live next to their packages.
func BenchmarkP2P64B(b *testing.B) {
	cfg := Config{
		Switch: "vpp", Scenario: P2P, FrameLen: 64,
		Duration: 2 * units.Millisecond, Warmup: 500 * units.Microsecond,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dirs) == 0 || res.Dirs[0].RxPackets == 0 {
			b.Fatal("no traffic delivered")
		}
	}
}
