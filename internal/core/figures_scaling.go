package core

import (
	"errors"

	"repro/internal/switches/switchdef"
)

// The scaling experiment follows the journal extension of the paper: the
// multi-core future work of §6, measured as throughput-vs-cores curves.
// Every cell is bidirectional p2p over 64 flows — flow-hashed RSS needs
// flow diversity to spread a port across cores, and the RTC pipeline is
// measured on the identical workload so the two dispatch modes compare
// like for like. The 1-core point of every curve is the paper's original
// single-core methodology (no dispatch dimension at all), shared between
// the rss and rtc curves of a switch.

// ScalingCores is the core-count sweep of the scaling figure.
var ScalingCores = []int{1, 2, 4, 8, 16}

// ScalingSizes are the frame sizes of the scaling figure: the hardest
// (64B, CPU-bound) and the easiest (1500B, line-rate-bound) workloads.
var ScalingSizes = []int{64, 1500}

// ScalingDispatches are the two multi-core dispatch modes, in plotting
// order.
var ScalingDispatches = []string{DispatchRSS, DispatchRTC}

// ScalingFlows is the flow count of every scaling cell.
const ScalingFlows = 64

// ScalingPoint is one (switch, dispatch, size, cores) measurement.
type ScalingPoint struct {
	Cores int
	// EffectiveCores is how many cores carried the data plane (echoed
	// from the Result; equals Cores unless queues ran short).
	EffectiveCores int
	Gbps           float64
	Mpps           float64
	// Unsupported marks switches that cannot run multi-core (VALE).
	Unsupported bool
}

// ScalingCurve is one line of the scaling figure: a switch under one
// dispatch mode at one frame size, across the core sweep.
type ScalingCurve struct {
	Switch   string
	Display  string
	Dispatch string
	FrameLen int
	Points   []ScalingPoint
}

// ScalingFigure is the reproduced scaling-curve family.
type ScalingFigure struct {
	Curves []ScalingCurve
}

// scalingConfig builds the cell config for one point. A single-core
// point carries no dispatch dimension: it is the paper's methodology,
// byte-identical to the calibrated baseline (and shared by both curves).
func scalingConfig(name string, dispatch string, size, cores int, o RunOpts) Config {
	cfg := Config{
		Switch: name, Scenario: P2P, FrameLen: size,
		Bidir: true, Flows: ScalingFlows, SUTCores: cores,
	}
	if cores > 1 {
		cfg.Dispatch = dispatch
		if dispatch == DispatchRSS {
			// roundrobin cannot feed more than 2 cores from 2 ports;
			// the scaling curves model hardware RSS.
			cfg.RSSPolicy = RSSFlowHash
		}
	}
	return o.apply(cfg)
}

// ScalingSpecs returns the flat measurement grid behind the scaling
// figure — the spec set a campaign executes. Shared 1-core cells repeat
// across dispatch modes; content-addressed caches collapse them.
func ScalingSpecs(o RunOpts) []Config {
	var specs []Config
	for _, d := range ScalingDispatches {
		for _, size := range ScalingSizes {
			for _, name := range Switches {
				for _, n := range ScalingCores {
					specs = append(specs, scalingConfig(name, d, size, n, o))
				}
			}
		}
	}
	return specs
}

// FigureScaling reproduces the scaling-curve family (throughput vs. SUT
// cores, every switch, RSS and RTC dispatch, 64B and 1500B frames).
func FigureScaling(o RunOpts) (*ScalingFigure, error) {
	return FigureScalingOn(SerialRunner{}, o)
}

// FigureScalingOn is FigureScaling on an explicit runner.
func FigureScalingOn(r Runner, o RunOpts) (*ScalingFigure, error) {
	specs := ScalingSpecs(o)
	outs := r.RunAll(specs)
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	fig := &ScalingFigure{}
	i := 0
	for _, d := range ScalingDispatches {
		for _, size := range ScalingSizes {
			for _, name := range Switches {
				info, err := switchdef.Lookup(name)
				if err != nil {
					return nil, err
				}
				curve := ScalingCurve{
					Switch: name, Display: info.Display,
					Dispatch: d, FrameLen: size,
				}
				for _, n := range ScalingCores {
					out := outs[i]
					i++
					pt := ScalingPoint{Cores: n}
					switch {
					case errors.Is(out.Err, ErrNoMultiCore):
						pt.Unsupported = true
					case out.Err != nil:
						return nil, out.Err
					default:
						pt.Gbps, pt.Mpps = out.Result.Gbps, out.Result.Mpps
						pt.EffectiveCores = out.Result.EffectiveCores
						if pt.EffectiveCores == 0 {
							pt.EffectiveCores = n // single-core point
						}
					}
					curve.Points = append(curve.Points, pt)
				}
				fig.Curves = append(fig.Curves, curve)
			}
		}
	}
	return fig, nil
}
