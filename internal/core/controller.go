package core

import (
	"fmt"

	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// shadowRuleWindow is how many shadow rules the controller keeps live
// before it starts revoking the oldest: the first window of operations is
// pure install, after which every install is paired with a revoke —
// steady-state table churn at a constant table size.
const shadowRuleWindow = 32

// shadowRule is the i-th rule of the controller's deterministic schedule:
// a destination-MAC-exact drop on a locally administered address outside
// the PortMAC space (02:00:00:00:xx:xx), so it never matches generated
// traffic. The churn is therefore control-plane-pure — delivery is
// untouched, but every install/revoke invalidates the data plane's
// classification caches (OvS EMC/megaflow generations, t4p4s table
// versions, FastClick classifier memos), and the re-classification cost
// lands on the SUT cores.
func shadowRule(i uint64) switchdef.Rule {
	return switchdef.Rule{
		Match: switchdef.Match{
			Fields: switchdef.FEthDst,
			EthDst: pkt.MAC{0x0e, 0xc4, byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)},
		},
		Actions: []switchdef.RuleAction{{Kind: switchdef.RuleDrop}},
	}
}

// ruleController is the control-plane actor: a sim-time task that programs
// rules into the SUT switch mid-run at a fixed operation rate, the way an
// SDN controller (or OVSDB manager) reshapes a deployed switch's tables
// while traffic flows. Its schedule is a pure function of the operation
// index, so runs are deterministic across seeds, engines, and core counts.
type ruleController struct {
	sw       switchdef.Programmer
	sched    *sim.Scheduler
	task     *sim.Task
	interval units.Time

	seq  uint64 // next shadow-rule ordinal
	live []switchdef.Rule

	// Installs and Revokes count completed operations; Err records the
	// first failed one (the run reports it).
	Installs, Revokes int64
	Err               error
}

// newRuleController registers a controller stepping at rate ops/second.
func newRuleController(s *sim.Scheduler, name string, sw switchdef.Programmer, rate float64) *ruleController {
	c := &ruleController{
		sw:       sw,
		sched:    s,
		interval: units.Time(float64(units.Second) / rate),
	}
	if c.interval < 1 {
		c.interval = 1
	}
	c.task = s.Register(name, c)
	return c
}

// Start schedules the first operation one period after at.
func (c *ruleController) Start(at units.Time) {
	c.sched.WakeAt(c.task, at+c.interval)
}

// Step implements sim.Actor: one rule operation per period.
func (c *ruleController) Step(now units.Time) (units.Time, bool) {
	if len(c.live) < shadowRuleWindow {
		r := shadowRule(c.seq)
		c.seq++
		if err := c.sw.Install(r); err != nil {
			c.Err = fmt.Errorf("core: controller install: %w", err)
			return 0, false
		}
		c.live = append(c.live, r)
		c.Installs++
	} else {
		r := c.live[0]
		c.live = c.live[1:]
		if err := c.sw.Revoke(r); err != nil {
			c.Err = fmt.Errorf("core: controller revoke: %w", err)
			return 0, false
		}
		c.Revokes++
	}
	return now + c.interval, true
}

// Updates returns the completed operation count.
func (c *ruleController) Updates() int64 { return c.Installs + c.Revokes }
