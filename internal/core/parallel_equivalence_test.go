package core

import (
	"testing"

	"repro/internal/units"
)

// The tests in this file pin the conservative parallel engine
// (Config.SimWorkers > 1) to the sequential one: same Result JSON bit for
// bit, same Steps, on every scenario family that exercises a distinct
// cut shape — and directly against the pinned golden digests, proving
// that the engine choice is invisible to every digested output.

// runBoth runs cfg under the sequential engine and under SimWorkers=4 and
// returns both results.
func runBoth(t *testing.T, cfg Config) (seq, par Result) {
	t.Helper()
	seq, err := Run(cfg)
	if err != nil {
		t.Fatalf("sequential Run(%+v): %v", cfg, err)
	}
	cfg.SimWorkers = 4
	par, err = Run(cfg)
	if err != nil {
		t.Fatalf("parallel Run(%+v): %v", cfg, err)
	}
	return seq, par
}

// TestParallelMatchesSequential: for every cut shape — unidirectional and
// bidirectional phys pairs, guest paths behind one pair, loopback's two
// pairs, multi-core fleets behind a demux, and the no-pair fallback — the
// partitioned engine reproduces the sequential Result digest and step
// count exactly.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		parts int // expected Result.SimPartitions under SimWorkers=4
	}{
		{"p2p", Config{Switch: "vpp", Scenario: P2P, FrameLen: 64}, 3},
		{"p2p-bidir-probed", Config{Switch: "vpp", Scenario: P2P, FrameLen: 64, Bidir: true,
			ProbeEvery: 100 * units.Microsecond}, 3},
		{"p2v", Config{Switch: "vpp", Scenario: P2V, FrameLen: 64}, 2},
		{"v2v-fallback", Config{Switch: "vpp", Scenario: V2V, FrameLen: 64}, 0},
		{"loopback-c4", Config{Switch: "vpp", Scenario: Loopback, Chain: 4, FrameLen: 64}, 3},
		{"ovs-4core-rss", Config{Switch: "ovs", Scenario: P2P, FrameLen: 64, Bidir: true, Flows: 64,
			SUTCores: 4, Dispatch: DispatchRSS, RSSPolicy: RSSFlowHash}, 3},
		{"vpp-4core-rtc", Config{Switch: "vpp", Scenario: P2P, FrameLen: 64, Bidir: true,
			SUTCores: 4, Dispatch: DispatchRTC}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Duration = 2 * units.Millisecond
			cfg.Warmup = units.Millisecond
			seq, par := runBoth(t, cfg)
			if ds, dp := resultDigest(t, seq), resultDigest(t, par); ds != dp {
				t.Errorf("digest: sequential %s vs parallel %s (engines diverged)", ds, dp)
			}
			if seq.Steps != par.Steps {
				t.Errorf("Steps: sequential %d vs parallel %d", seq.Steps, par.Steps)
			}
			if seq.SimPartitions != 0 {
				t.Errorf("sequential SimPartitions = %d, want 0", seq.SimPartitions)
			}
			if par.SimPartitions != tc.parts {
				t.Errorf("parallel SimPartitions = %d, want %d", par.SimPartitions, tc.parts)
			}
		})
	}
}

// TestParallelMatchesPinnedGoldens runs a cross-section of the pinned
// golden configs (guest-path, multi-core) under the parallel engine and
// asserts the exact pinned digests: SimWorkers is json:"-", so the engine
// must not shift a single byte of the golden Results.
func TestParallelMatchesPinnedGoldens(t *testing.T) {
	cases := []struct {
		cfg    Config
		digest string
	}{
		// From TestGuestPathGoldenDigests.
		{Config{Switch: "vpp", Scenario: P2V, FrameLen: 64}, "ea7585bb3974810c0ae06cc1ff2b27f8"},
		{Config{Switch: "vpp", Scenario: V2V, FrameLen: 64}, "ed5442a6088be0e4cb4809d01ad69672"},
		{Config{Switch: "vpp", Scenario: Loopback, Chain: 4, FrameLen: 64}, "e7979e2b67320861df5ae5c5c5e14aaa"},
		// From TestMultiCoreGoldenDigests.
		{Config{Switch: "ovs", Scenario: P2P, FrameLen: 64, Bidir: true, Flows: 64,
			SUTCores: 4, Dispatch: DispatchRSS, RSSPolicy: RSSFlowHash}, "145925ef8cc95e458a37e745dccb2988"},
		{Config{Switch: "vpp", Scenario: P2P, FrameLen: 64, Bidir: true, Flows: 64,
			SUTCores: 4, Dispatch: DispatchRTC}, "c2660b6f055c1bf654be77e12c3d23bf"},
	}
	for _, tc := range cases {
		cfg := tc.cfg
		cfg.Duration = 2 * units.Millisecond
		cfg.Warmup = units.Millisecond
		cfg.SimWorkers = 4
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", tc.cfg, err)
		}
		if got := resultDigest(t, res); got != tc.digest {
			t.Errorf("%s/%v parallel: digest %s, want pinned %s",
				tc.cfg.Switch, tc.cfg.Scenario, got, tc.digest)
		}
	}
}

// TestParallelDeterminism: with K > 1 live partitions the wall-clock
// interleaving of windows varies run to run, but the Result must not.
// This test is the race-detector anchor for the engine: under -race it
// also proves the handoff rings, shared pools, and published clocks are
// data-race free.
func TestParallelDeterminism(t *testing.T) {
	cfg := Config{Switch: "vpp", Scenario: P2P, FrameLen: 64, Bidir: true,
		SimWorkers: 4, Duration: 2 * units.Millisecond, Warmup: units.Millisecond}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if da, db := resultDigest(t, a), resultDigest(t, b); da != db {
		t.Fatalf("non-deterministic parallel run: %s vs %s", da, db)
	}
	if a.SimPartitions < 2 {
		t.Fatalf("SimPartitions = %d, want a live partitioned run", a.SimPartitions)
	}
}

// TestInterruptModeFallsBackSequential: cutting a wire into an IRQ-bound
// port is forbidden (the sender would schedule interrupts cross-thread),
// so interrupt-mode switches must ignore SimWorkers — and still match
// their pinned golden digest.
func TestInterruptModeFallsBackSequential(t *testing.T) {
	cfg := Config{Switch: "vale", Scenario: Loopback, Chain: 2, FrameLen: 64,
		SimWorkers: 4, Duration: 2 * units.Millisecond, Warmup: units.Millisecond}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimPartitions != 0 {
		t.Errorf("SimPartitions = %d, want 0 (sequential fallback)", res.SimPartitions)
	}
	// Pinned in TestGuestPathGoldenDigests for the sequential engine.
	if got := resultDigest(t, res); got != "d4e10b4b84738c3f85352573647de49f" {
		t.Errorf("vale fallback digest %s, want pinned d4e10b4b84738c3f85352573647de49f", got)
	}
}

// TestValidateSimWorkers covers the SimWorkers validation rule.
func TestValidateSimWorkers(t *testing.T) {
	bad := Config{Switch: "vpp", Scenario: P2P, SimWorkers: -1}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted SimWorkers=-1")
	}
	for _, w := range []int{0, 1, 4, 64} {
		cfg := Config{Switch: "vpp", Scenario: P2P, SimWorkers: w}
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(SimWorkers=%d): %v", w, err)
		}
	}
}
