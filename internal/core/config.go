// Package core implements the paper's benchmarking methodology: the four
// test scenarios (p2p, p2v, v2v, loopback), testbed assembly mirroring the
// paper's two-NUMA-node server (Fig. 3), saturated-throughput and
// rate-controlled latency measurement, R⁺ estimation, and the experiment
// definitions that regenerate every figure and table.
package core

import (
	"errors"
	"fmt"

	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/units"
)

// ScenarioKind selects one of the paper's four test scenarios (Fig. 2),
// or Custom for a user-supplied topology graph.
type ScenarioKind int

// The four paper scenarios, plus the declarative fifth.
const (
	P2P      ScenarioKind = iota // physical → physical
	P2V                          // physical → virtual
	V2V                          // virtual → virtual
	Loopback                     // NIC → VNF chain → NIC
	Custom                       // user-supplied topology graph (Config.Topology)
)

// String implements fmt.Stringer.
func (k ScenarioKind) String() string {
	switch k {
	case P2P:
		return "p2p"
	case P2V:
		return "p2v"
	case V2V:
		return "v2v"
	case Loopback:
		return "loopback"
	case Custom:
		return "custom"
	default:
		return fmt.Sprintf("ScenarioKind(%d)", int(k))
	}
}

// Config describes one measurement run.
type Config struct {
	// Switch is the registry name of the SUT ("bess", "fastclick",
	// "ovs", "snabb", "t4p4s", "vale", "vpp").
	Switch string
	// Scenario picks the topology.
	Scenario ScenarioKind
	// Chain is the loopback VNF count (default 1; loopback only).
	Chain int
	// FrameLen is the synthetic frame size in bytes (default 64).
	FrameLen int
	// IMIX replaces the fixed frame size with the classic Internet mix
	// (7×64B : 4×570B : 1×1518B, ≈340B average — cf. the paper's remark
	// that realistic traffic averages ~850B and is easy for every
	// switch). FrameLen is ignored for generation but still bounds
	// probe frames.
	IMIX bool
	// Bidir drives traffic in both directions simultaneously.
	Bidir bool
	// Reversed measures the p2v VM→NIC direction instead (the paper's
	// "reversed unidirectional" probe of VPP's vhost RX penalty).
	Reversed bool
	// Rate is the offered load per direction; 0 saturates.
	Rate units.BitRate
	// Flows spreads the synthetic traffic over this many flows (distinct
	// source MAC and UDP source port). The paper uses a single flow
	// ("identical packets, corresponding to a single flow"); higher
	// values stress flow caches and learning tables (ablations).
	Flows int
	// ProbeEvery injects latency probes at this interval (0 = none).
	ProbeEvery units.Time
	// LatencyTopology selects the v2v latency wiring (two interfaces per
	// VM with an l2fwd reflector, §5.3) instead of the v2v throughput
	// wiring.
	LatencyTopology bool

	// Topology is the declarative graph run by the Custom scenario —
	// arbitrary chains, fan-out, and asymmetric paths beyond the
	// paper's four wirings (see internal/topo and `swbench topo`). It
	// must be nil for the named scenarios, whose graphs derive from the
	// fields above (Config.Graph).
	Topology *topo.Graph `json:",omitempty"`

	// Containers hosts the VNFs in containers instead of QEMU VMs (the
	// paper's second future-work item): cheaper virtio crossings and
	// notifications, and no QEMU-specific constraints (BESS's chain cap
	// is a QEMU incompatibility and does not apply).
	Containers bool

	// SUTCores runs the switch data plane on several cores with its
	// receive ports sharded RSS-style (default 1 — the paper's
	// methodology; >1 implements the paper's "multi-core solutions"
	// future work for poll-mode switches).
	SUTCores int

	// Duration is the measurement window (default 20 ms simulated).
	Duration units.Time
	// Warmup precedes the window (default 4 ms; also covers Snabb's JIT
	// warmup region).
	Warmup units.Time
	// Seed drives all randomness (default 1).
	Seed uint64
	// CapturePath, when set, dumps every frame delivered to the first
	// measurement endpoint into a pcap file (tcpdump/Wireshark-readable).
	CapturePath string
}

// withDefaults returns cfg with defaults applied.
func (cfg Config) withDefaults() Config {
	if cfg.FrameLen == 0 {
		cfg.FrameLen = 64
	}
	if cfg.Chain == 0 {
		cfg.Chain = 1
	}
	if cfg.Duration == 0 {
		cfg.Duration = 20 * units.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 4 * units.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.SUTCores == 0 {
		cfg.SUTCores = 1
	}
	return cfg
}

// Validate reports configuration errors without running anything. Every
// violation found is reported, joined into one error, not just the
// first — a config fixed iteratively surfaces all its problems at once.
func (cfg Config) Validate() error {
	c := cfg.withDefaults()
	var errs []error
	if c.FrameLen < 64 || c.FrameLen > units.MaxFrameBytes {
		errs = append(errs, fmt.Errorf("core: frame length %d outside [64, %d]", c.FrameLen, units.MaxFrameBytes))
	}
	if c.Scenario == Loopback && c.Chain < 1 {
		errs = append(errs, errors.New("core: loopback needs a chain of at least 1 VNF"))
	}
	if c.Reversed && c.Scenario != P2V {
		errs = append(errs, errors.New("core: Reversed applies to p2v only"))
	}
	if c.LatencyTopology && c.Scenario != V2V {
		errs = append(errs, errors.New("core: LatencyTopology applies to v2v only"))
	}
	if c.SUTCores < 1 {
		errs = append(errs, errors.New("core: SUTCores must be at least 1"))
	}
	switch {
	case c.Scenario == Custom && c.Topology == nil:
		errs = append(errs, errors.New("core: the custom scenario needs a Topology graph"))
	case c.Scenario != Custom && c.Topology != nil:
		errs = append(errs, fmt.Errorf("core: Topology applies to the custom scenario only (got %v)", c.Scenario))
	case c.Topology != nil:
		// The graph validator reports its own joined list: dangling
		// edges, duplicate node names, missing endpoints, ...
		if err := c.Topology.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ErrChainTooLong reports a switch-specific VM-count limit (BESS's QEMU
// incompatibility, paper footnote 5). Experiments render it as "-".
var ErrChainTooLong = errors.New("core: switch cannot host this many VMs (QEMU incompatibility)")

// DirResult is per-direction throughput.
type DirResult struct {
	// RxPackets/RxBytes were delivered to the direction's measurement
	// endpoint during the window.
	RxPackets int64
	RxBytes   int64
	// Gbps is wire throughput (frame + preamble/IFG bits, the paper's
	// convention); Mpps is the packet rate.
	Gbps float64
	Mpps float64
}

// Result is one run's measurements.
type Result struct {
	Config  Config
	Display string // switch display name

	// Dirs holds one entry per traffic direction (1 or 2).
	Dirs []DirResult
	// Gbps and Mpps aggregate all directions (the paper's bidirectional
	// plots report aggregated throughput).
	Gbps float64
	Mpps float64
	// OfferedGbps is the total offered load.
	OfferedGbps float64

	// Latency summarizes probe RTTs (zero-valued when no probes ran).
	Latency stats.Summary

	// SUTBusyFrac is the fraction of SUT core cycles doing useful work
	// (averaged over cores in multi-core runs).
	SUTBusyFrac float64
	// Drops counts frames lost anywhere in the data path.
	Drops int64
	// HostCopies counts the vhost guest-memory copies the SUT core paid
	// for during the window — the per-crossing "vhost tax" that separates
	// p2v/v2v/loopback from p2p.
	HostCopies int64
	// Steps is the scheduler step count (determinism fingerprint).
	Steps uint64
}
