// Package core implements the paper's benchmarking methodology: the four
// test scenarios (p2p, p2v, v2v, loopback), testbed assembly mirroring the
// paper's two-NUMA-node server (Fig. 3), saturated-throughput and
// rate-controlled latency measurement, R⁺ estimation, and the experiment
// definitions that regenerate every figure and table.
package core

import (
	"errors"
	"fmt"

	"repro/internal/multicore"
	"repro/internal/stats"
	"repro/internal/switches/switchdef"
	"repro/internal/topo"
	"repro/internal/units"
)

// ScenarioKind selects one of the paper's four test scenarios (Fig. 2),
// or Custom for a user-supplied topology graph.
type ScenarioKind int

// The four paper scenarios, plus the declarative fifth.
const (
	P2P      ScenarioKind = iota // physical → physical
	P2V                          // physical → virtual
	V2V                          // virtual → virtual
	Loopback                     // NIC → VNF chain → NIC
	Custom                       // user-supplied topology graph (Config.Topology)
)

// String implements fmt.Stringer.
func (k ScenarioKind) String() string {
	switch k {
	case P2P:
		return "p2p"
	case P2V:
		return "p2v"
	case V2V:
		return "v2v"
	case Loopback:
		return "loopback"
	case Custom:
		return "custom"
	default:
		return fmt.Sprintf("ScenarioKind(%d)", int(k))
	}
}

// Config describes one measurement run.
type Config struct {
	// Switch is the registry name of the SUT ("bess", "fastclick",
	// "ovs", "snabb", "t4p4s", "vale", "vpp").
	Switch string
	// Scenario picks the topology.
	Scenario ScenarioKind
	// Chain is the loopback VNF count (default 1; loopback only).
	Chain int
	// FrameLen is the synthetic frame size in bytes (default 64).
	FrameLen int
	// IMIX replaces the fixed frame size with the classic Internet mix
	// (7×64B : 4×570B : 1×1518B, ≈340B average — cf. the paper's remark
	// that realistic traffic averages ~850B and is easy for every
	// switch). FrameLen is ignored for generation but still bounds
	// probe frames.
	IMIX bool
	// Bidir drives traffic in both directions simultaneously.
	Bidir bool
	// Reversed measures the p2v VM→NIC direction instead (the paper's
	// "reversed unidirectional" probe of VPP's vhost RX penalty).
	Reversed bool
	// Rate is the offered load per direction; 0 saturates.
	Rate units.BitRate
	// Flows spreads the synthetic traffic over this many flows (distinct
	// source MAC and UDP source port). The paper uses a single flow
	// ("identical packets, corresponding to a single flow"); higher
	// values stress flow caches and learning tables (ablations).
	Flows int
	// ZipfSkew, when > 0, draws each frame's flow from a Zipf
	// distribution with this exponent over [0, Flows) instead of cycling
	// round-robin — the heavy-tailed flow mix real traces show, which
	// keeps hot flows cached while the tail churns the EMC. 0 keeps the
	// paper's round-robin cycle byte-identical.
	ZipfSkew float64 `json:",omitempty"`
	// RuleUpdateRate, when > 0, runs a control-plane actor that installs
	// and revokes rules against the SUT at this many operations per
	// second of simulated time (mid-run rule churn: megaflow
	// revalidation, EMC invalidation, per-shard re-misses). It requires
	// a switch whose Info().RuntimeRules is true.
	RuleUpdateRate float64 `json:",omitempty"`
	// ProbeEvery injects latency probes at this interval (0 = none).
	ProbeEvery units.Time
	// LatencyTopology selects the v2v latency wiring (two interfaces per
	// VM with an l2fwd reflector, §5.3) instead of the v2v throughput
	// wiring.
	LatencyTopology bool

	// Topology is the declarative graph run by the Custom scenario —
	// arbitrary chains, fan-out, and asymmetric paths beyond the
	// paper's four wirings (see internal/topo and `swbench topo`). It
	// must be nil for the named scenarios, whose graphs derive from the
	// fields above (Config.Graph).
	Topology *topo.Graph `json:",omitempty"`

	// Containers hosts the VNFs in containers instead of QEMU VMs (the
	// paper's second future-work item): cheaper virtio crossings and
	// notifications, and no QEMU-specific constraints (BESS's chain cap
	// is a QEMU incompatibility and does not apply).
	Containers bool

	// SUTCores runs the switch data plane on several cores (default 1 —
	// the paper's methodology; >1 implements the paper's "multi-core
	// solutions" future work for poll-mode switches, each core running
	// its own switch instance with private caches and tables).
	SUTCores int
	// Dispatch selects how a multi-core run distributes work:
	// DispatchRSS (receive-side scaling: each core owns receive queues
	// and runs the full data plane over them) or DispatchRTC (the path
	// is split into steer/process/transmit pipeline stages chained
	// across cores with handoff rings). Empty means DispatchRSS when
	// SUTCores > 1; it must stay empty for single-core runs, keeping
	// the paper-methodology configs byte-identical.
	Dispatch string `json:",omitempty"`
	// RSSPolicy picks how DispatchRSS assigns receive queues to cores:
	// RSSRoundRobin (static queue → core map in declaration order, the
	// default) or RSSFlowHash (hardware RSS: every physical port is
	// spread over one queue per core by flow hash — the only way a
	// single port scales past one core).
	RSSPolicy string `json:",omitempty"`

	// Duration is the measurement window (default 20 ms simulated).
	Duration units.Time
	// Warmup precedes the window (default 4 ms; also covers Snabb's JIT
	// warmup region).
	Warmup units.Time
	// Seed drives all randomness (default 1).
	Seed uint64
	// CapturePath, when set, dumps every frame delivered to the first
	// measurement endpoint into a pcap file (tcpdump/Wireshark-readable).
	CapturePath string

	// SimWorkers runs the simulation itself on up to this many goroutines
	// using conservative parallel DES: the actor graph is partitioned at
	// wire boundaries (internal/topo.Partition) and each partition
	// advances within its lookahead window (internal/sim
	// PartitionedScheduler). 0 or 1 selects the sequential engine.
	// Outputs are bit-identical either way, so the field is excluded
	// from JSON: golden Result digests and campaign cache keys must not
	// depend on which engine produced them (a cached sequential result
	// is equally valid for a parallel request).
	SimWorkers int `json:"-"`
}

// Dispatch modes and RSS policies (see internal/multicore).
const (
	DispatchRSS = multicore.ModeRSS
	DispatchRTC = multicore.ModeRTC

	RSSRoundRobin = multicore.PolicyRoundRobin
	RSSFlowHash   = multicore.PolicyFlowHash
)

// withDefaults returns cfg with defaults applied.
func (cfg Config) withDefaults() Config {
	if cfg.Topology != nil {
		// A topology graph may carry the multi-core dimension; explicit
		// Config fields win.
		if cfg.SUTCores == 0 && cfg.Topology.SUTCores > 0 {
			cfg.SUTCores = cfg.Topology.SUTCores
		}
		if cfg.Dispatch == "" {
			cfg.Dispatch = cfg.Topology.Dispatch
		}
		if cfg.RSSPolicy == "" {
			cfg.RSSPolicy = cfg.Topology.RSSPolicy
		}
	}
	if cfg.FrameLen == 0 {
		cfg.FrameLen = 64
	}
	if cfg.Chain == 0 {
		cfg.Chain = 1
	}
	if cfg.Duration == 0 {
		cfg.Duration = 20 * units.Millisecond
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 4 * units.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.SUTCores == 0 {
		cfg.SUTCores = 1
	}
	if cfg.SUTCores > 1 {
		if cfg.Dispatch == "" {
			cfg.Dispatch = DispatchRSS
		}
		if cfg.Dispatch == DispatchRSS && cfg.RSSPolicy == "" {
			cfg.RSSPolicy = RSSRoundRobin
		}
	}
	return cfg
}

// Validate reports configuration errors without running anything. Every
// violation found is reported, joined into one error, not just the
// first — a config fixed iteratively surfaces all its problems at once.
func (cfg Config) Validate() error {
	c := cfg.withDefaults()
	var errs []error
	if c.FrameLen < 64 || c.FrameLen > units.MaxFrameBytes {
		errs = append(errs, fmt.Errorf("core: frame length %d outside [64, %d]", c.FrameLen, units.MaxFrameBytes))
	}
	if c.Scenario == Loopback && c.Chain < 1 {
		errs = append(errs, errors.New("core: loopback needs a chain of at least 1 VNF"))
	}
	if c.Reversed && c.Scenario != P2V {
		errs = append(errs, errors.New("core: Reversed applies to p2v only"))
	}
	if c.LatencyTopology && c.Scenario != V2V {
		errs = append(errs, errors.New("core: LatencyTopology applies to v2v only"))
	}
	if c.SUTCores < 1 {
		errs = append(errs, errors.New("core: SUTCores must be at least 1"))
	}
	if c.Flows < 0 {
		errs = append(errs, fmt.Errorf("core: Flows must be non-negative (got %d)", c.Flows))
	}
	if c.ZipfSkew < 0 {
		errs = append(errs, fmt.Errorf("core: ZipfSkew must be positive when set (got %g)", c.ZipfSkew))
	}
	if c.ZipfSkew > 0 && c.Flows < 2 {
		errs = append(errs, fmt.Errorf("core: ZipfSkew needs Flows > 1 to have a distribution to skew (got Flows=%d)", c.Flows))
	}
	if c.RuleUpdateRate < 0 {
		errs = append(errs, fmt.Errorf("core: RuleUpdateRate must be non-negative (got %g)", c.RuleUpdateRate))
	}
	if c.RuleUpdateRate > 0 {
		if info, err := switchdef.Lookup(c.Switch); err == nil && !info.RuntimeRules {
			errs = append(errs, fmt.Errorf("core: %s cannot take rule updates at runtime: %w", c.Switch, ErrNoRuntimeRules))
		}
		if c.Scenario == Custom && c.Topology != nil && !c.Topology.HasController() {
			errs = append(errs, errors.New("core: RuleUpdateRate needs a controller node in the custom topology"))
		}
	}
	if c.SimWorkers < 0 {
		errs = append(errs, fmt.Errorf("core: SimWorkers must be non-negative (got %d)", c.SimWorkers))
	}
	switch c.Dispatch {
	case "":
		// Single-core: the multi-core dimension must stay unset.
		if c.RSSPolicy != "" {
			errs = append(errs, fmt.Errorf("core: RSSPolicy %q needs SUTCores > 1", c.RSSPolicy))
		}
	case DispatchRSS:
		if c.SUTCores == 1 {
			errs = append(errs, errors.New("core: rss dispatch needs SUTCores > 1"))
		}
		switch c.RSSPolicy {
		case RSSRoundRobin, RSSFlowHash:
		default:
			errs = append(errs, fmt.Errorf("core: unknown rss policy %q (want %q or %q)", c.RSSPolicy, RSSRoundRobin, RSSFlowHash))
		}
		if c.SUTCores > 1 {
			if err := c.validateRSSQueues(); err != nil {
				errs = append(errs, err)
			}
		}
	case DispatchRTC:
		if c.SUTCores < 2 {
			errs = append(errs, errors.New("core: rtc dispatch chains its pipeline stages (steer, process, transmit) across at least 2 cores"))
		}
		if c.RSSPolicy != "" {
			errs = append(errs, fmt.Errorf("core: RSSPolicy %q applies to rss dispatch only", c.RSSPolicy))
		}
	default:
		errs = append(errs, fmt.Errorf("core: unknown dispatch mode %q (want %q or %q)", c.Dispatch, DispatchRSS, DispatchRTC))
	}
	switch {
	case c.Scenario == Custom && c.Topology == nil:
		errs = append(errs, errors.New("core: the custom scenario needs a Topology graph"))
	case c.Scenario != Custom && c.Topology != nil:
		errs = append(errs, fmt.Errorf("core: Topology applies to the custom scenario only (got %v)", c.Scenario))
	case c.Topology != nil:
		// The graph validator reports its own joined list: dangling
		// edges, duplicate node names, missing endpoints, ...
		if err := c.Topology.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// validateRSSQueues rejects an RSS core count the topology cannot feed:
// under the round-robin policy each core needs a receive queue of its
// own, and a flow-hashed run with no physical port is still bounded by
// its guest interface count. Cores beyond the queue count would only
// burn cycles idling.
func (c Config) validateRSSQueues() error {
	g, err := c.Graph()
	if err != nil {
		return nil // the scenario/topology checks already reported this
	}
	phys, physQueues, guests := 0, 0, 0
	for _, n := range g.Nodes {
		switch n.Kind {
		case topo.KindPhysPair:
			phys++
			q := n.Queues
			if q < 1 {
				q = 1
			}
			physQueues += q
		case topo.KindGuestIf:
			guests++
		}
	}
	switch {
	case c.RSSPolicy == RSSRoundRobin && c.SUTCores > physQueues+guests:
		return fmt.Errorf("core: rss/roundrobin cannot feed %d cores from %d receive queues (%d physical, %d guest) — declare more NIC queues, use the flowhash policy, or drop cores",
			c.SUTCores, physQueues+guests, physQueues, guests)
	case c.RSSPolicy == RSSFlowHash && phys == 0 && c.SUTCores > guests:
		return fmt.Errorf("core: rss/flowhash has no physical port to spread; %d cores exceed the %d guest interfaces", c.SUTCores, guests)
	}
	return nil
}

// ErrChainTooLong reports a switch-specific VM-count limit (BESS's QEMU
// incompatibility, paper footnote 5). Experiments render it as "-".
var ErrChainTooLong = errors.New("core: switch cannot host this many VMs (QEMU incompatibility)")

// ErrNoMultiCore reports a switch that cannot run its data plane on
// several cores (VALE's interrupt-driven kernel path). Scaling figures
// render it as unsupported.
var ErrNoMultiCore = errors.New("core: switch does not support multi-core operation")

// ErrNoRuntimeRules reports a switch whose data plane cannot be
// reprogrammed while running (Snabb/BESS rebuild their graphs, VALE
// learns). Churn figures render it as unsupported.
var ErrNoRuntimeRules = switchdef.ErrNoRuntimeRules

// DirResult is per-direction throughput.
type DirResult struct {
	// RxPackets/RxBytes were delivered to the direction's measurement
	// endpoint during the window.
	RxPackets int64
	RxBytes   int64
	// Gbps is wire throughput (frame + preamble/IFG bits, the paper's
	// convention); Mpps is the packet rate.
	Gbps float64
	Mpps float64
}

// Result is one run's measurements.
type Result struct {
	Config  Config
	Display string // switch display name

	// Dirs holds one entry per traffic direction (1 or 2).
	Dirs []DirResult
	// Gbps and Mpps aggregate all directions (the paper's bidirectional
	// plots report aggregated throughput).
	Gbps float64
	Mpps float64
	// OfferedGbps is the total offered load.
	OfferedGbps float64

	// Latency summarizes probe RTTs (zero-valued when no probes ran).
	Latency stats.Summary

	// SUTBusyFrac is the fraction of SUT core cycles doing useful work
	// (averaged over cores in multi-core runs).
	SUTBusyFrac float64
	// EffectiveCores is how many SUT cores actually carried the data
	// plane — min(SUTCores, receive queues) under RSS dispatch, all of
	// them under RTC. Zero for single-core runs.
	EffectiveCores int `json:",omitempty"`
	// Cores breaks utilization down per SUT core in multi-core runs.
	Cores []CoreUtil `json:",omitempty"`
	// Drops counts frames lost anywhere in the data path.
	Drops int64
	// HostCopies counts the vhost guest-memory copies the SUT core paid
	// for during the window — the per-crossing "vhost tax" that separates
	// p2v/v2v/loopback from p2p.
	HostCopies int64
	// RuleUpdates counts the control-plane rule operations (installs +
	// revokes) completed during the window (0 without churn).
	RuleUpdates int64 `json:",omitempty"`
	// EMCEvictions counts exact-match-cache entries replaced while live
	// during the window — OvS's first cache tier overflowing under flow
	// diversity. Zero for switches without an EMC.
	EMCEvictions int64 `json:",omitempty"`
	// Steps is the scheduler step count (determinism fingerprint). It is
	// engine-independent: the partitioned engine dispatches the same
	// events and sums per-partition counts.
	Steps uint64
	// SimPartitions is how many partitions the parallel engine ran on;
	// 0 means the sequential engine (also what a JSON round trip yields:
	// the field is diagnostics only, excluded from JSON for the same
	// reason Config.SimWorkers is — digests must not see the engine).
	SimPartitions int `json:"-"`
}

// CoreUtil is one SUT core's utilization over the measurement window.
type CoreUtil struct {
	// Name is the core's role label (sut-core0, sut-rx, sut-proc0, ...).
	Name string
	// BusyFrac is the fraction of its cycles doing useful work.
	BusyFrac float64
}
