package core

import (
	"fmt"
	"testing"

	"repro/internal/units"
)

// TestSmokeP2PAllSwitches pushes traffic through every switch in the p2p
// scenario and prints the 64B unidirectional throughput (calibration aid).
func TestSmokeP2PAllSwitches(t *testing.T) {
	for _, name := range []string{"bess", "fastclick", "ovs", "snabb", "t4p4s", "vale", "vpp"} {
		res, err := Run(Config{
			Switch:   name,
			Scenario: P2P,
			Duration: 5 * units.Millisecond,
			Warmup:   2 * units.Millisecond,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Gbps <= 0.1 {
			t.Errorf("%s: no traffic forwarded (%.3f Gbps)", name, res.Gbps)
		}
		fmt.Printf("p2p uni 64B %-10s %6.2f Gbps %6.2f Mpps drops=%d steps=%d\n",
			name, res.Gbps, res.Mpps, res.Drops, res.Steps)
	}
}
