package core

import (
	"fmt"
	"testing"

	"repro/internal/units"
)

var allSwitches = []string{"bess", "fastclick", "vpp", "snabb", "ovs", "vale", "t4p4s"}

// TestCalibrationMatrix prints the 64B throughput matrix used to fit the
// per-switch cost constants to the paper's Fig. 4. Run with -v.
func TestCalibrationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration matrix is slow")
	}
	run := func(cfg Config) float64 {
		cfg.Duration = 5 * units.Millisecond
		cfg.Warmup = 3 * units.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		return res.Gbps
	}
	fmt.Printf("%-10s %8s %8s %8s %8s %8s %8s\n", "switch", "p2p-u", "p2p-b", "p2v-u", "p2v-b", "v2v-u", "v2v-b")
	for _, name := range allSwitches {
		fmt.Printf("%-10s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n", name,
			run(Config{Switch: name, Scenario: P2P}),
			run(Config{Switch: name, Scenario: P2P, Bidir: true}),
			run(Config{Switch: name, Scenario: P2V}),
			run(Config{Switch: name, Scenario: P2V, Bidir: true}),
			run(Config{Switch: name, Scenario: V2V}),
			run(Config{Switch: name, Scenario: V2V, Bidir: true}),
		)
	}
}
