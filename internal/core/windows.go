package core

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/units"
)

// WindowPoint is one measurement window of a RunWindows series.
type WindowPoint struct {
	// Start is the window's offset from the beginning of the run
	// (warmup excluded).
	Start units.Time
	Gbps  float64
	Mpps  float64
}

// RunWindows runs one simulation and measures cfg.Duration in n consecutive
// windows, exposing time dynamics that a single aggregate hides: Snabb's
// JIT warmup ramp, the instability phases behind the 0.99·R⁺ tails, or
// queue-fill transients. The aggregate Result matches Run over the full
// duration.
func RunWindows(cfg Config, n int) ([]WindowPoint, Result, error) {
	if n < 1 {
		return nil, Result{}, fmt.Errorf("core: need at least one window")
	}
	tb, err := build(cfg)
	if err != nil {
		return nil, Result{}, err
	}
	cfg = tb.cfg

	// Unlike Run, no warmup is skipped by default here unless requested:
	// the transient is the point. Honour cfg.Warmup as a lead-in.
	tb.run(cfg.Warmup)

	window := cfg.Duration / units.Time(n)
	points := make([]WindowPoint, 0, n)
	var startSnap []stats.Counter
	snap := func() []stats.Counter {
		out := make([]stats.Counter, len(tb.dirRx))
		for i, fn := range tb.dirRx {
			out[i] = fn()
		}
		return out
	}
	startSnap = snap()
	prev := startSnap
	for w := 0; w < n; w++ {
		end := cfg.Warmup + units.Time(w+1)*window
		tb.run(end)
		cur := snap()
		var pkts, bytes int64
		for i := range cur {
			d := cur[i].Sub(prev[i])
			pkts += d.Packets
			bytes += d.Bytes
		}
		points = append(points, WindowPoint{
			Start: units.Time(w) * window,
			Gbps:  units.WireGbpsBytes(pkts, bytes, window),
			Mpps:  units.Mpps(pkts, window),
		})
		prev = cur
	}

	// Aggregate result over the full measured span.
	res := Result{Config: cfg, Display: tb.info.Display, Steps: tb.steps(), SimPartitions: tb.partitions()}
	final := snap()
	for i := range final {
		d := final[i].Sub(startSnap[i])
		dir := DirResult{
			RxPackets: d.Packets,
			RxBytes:   d.Bytes,
			Gbps:      units.WireGbpsBytes(d.Packets, d.Bytes, cfg.Duration),
			Mpps:      units.Mpps(d.Packets, cfg.Duration),
		}
		res.Dirs = append(res.Dirs, dir)
		res.Gbps += dir.Gbps
		res.Mpps += dir.Mpps
	}
	for _, fn := range tb.dropFns {
		res.Drops += fn()
	}
	tb.releasePools()
	return points, res, nil
}
