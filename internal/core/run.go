package core

import (
	"repro/internal/stats"
	"repro/internal/units"
)

// emcEvictioner is the optional stats surface a switch (or fleet facade)
// exposes when its data plane maintains an exact-match cache.
type emcEvictioner interface {
	EMCEvictionCount() int64
}

// Run executes one measurement: assemble the testbed, run the warmup,
// then measure over the configured window.
func Run(cfg Config) (Result, error) {
	tb, err := build(cfg)
	if err != nil {
		return Result{}, err
	}
	cfg = tb.cfg // defaults applied

	if cfg.CapturePath != "" {
		stop, err := tb.attachCapture(cfg.CapturePath)
		if err != nil {
			return Result{}, err
		}
		defer stop()
	}

	// Warmup: caches fill, MAC tables learn, JIT traces compile, queues
	// reach steady state.
	tb.run(cfg.Warmup)

	// Snapshot counters and reset latency histograms at window start.
	snaps := make([]stats.Counter, len(tb.dirRx))
	for i, fn := range tb.dirRx {
		snaps[i] = fn()
	}
	for _, h := range tb.hists {
		h.Reset()
	}
	// Loss and copy counters accumulate from time zero, so window totals
	// must be deltas — otherwise warmup-phase drops (queues filling, MAC
	// tables learning) pollute the measurement the way warmup frames
	// would pollute RxPackets.
	drop0 := make([]int64, len(tb.dropFns))
	for i, fn := range tb.dropFns {
		drop0[i] = fn()
	}
	copy0 := make([]int64, len(tb.copyFns))
	for i, fn := range tb.copyFns {
		copy0[i] = fn()
	}
	busy0 := make([]units.Cycles, len(tb.sutPolls))
	idle0 := make([]units.Cycles, len(tb.sutPolls))
	for i, c := range tb.sutPolls {
		busy0[i], idle0[i] = c.Busy, c.Idle
	}
	var updates0, evict0 int64
	if tb.controller != nil {
		updates0 = tb.controller.Updates()
	}
	if ec, ok := tb.sw.(emcEvictioner); ok {
		evict0 = ec.EMCEvictionCount()
	}

	tb.run(cfg.Warmup + cfg.Duration)

	if tb.controller != nil && tb.controller.Err != nil {
		return Result{}, tb.controller.Err
	}

	// Collect.
	res := Result{Config: cfg, Display: tb.info.Display, Steps: tb.steps(), SimPartitions: tb.partitions()}
	for i, fn := range tb.dirRx {
		d := fn().Sub(snaps[i])
		dir := DirResult{
			RxPackets: d.Packets,
			RxBytes:   d.Bytes,
			Gbps:      units.WireGbpsBytes(d.Packets, d.Bytes, cfg.Duration),
			Mpps:      units.Mpps(d.Packets, cfg.Duration),
		}
		res.Dirs = append(res.Dirs, dir)
		res.Gbps += dir.Gbps
		res.Mpps += dir.Mpps
	}
	offered := cfg.Rate
	if offered == 0 {
		offered = units.TenGigE
	}
	res.OfferedGbps = float64(offered) / 1e9 * float64(len(res.Dirs))
	// Merge every direction's probe samples: bidirectional runs fill one
	// histogram per measurement endpoint, and dropping all but the first
	// would silently discard the reverse direction.
	var merged stats.Histogram
	for _, h := range tb.hists {
		merged.Merge(h)
	}
	res.Latency = merged.Summarize()
	for i, fn := range tb.dropFns {
		res.Drops += fn() - drop0[i]
	}
	for i, fn := range tb.copyFns {
		res.HostCopies += fn() - copy0[i]
	}
	if tb.controller != nil {
		res.RuleUpdates = tb.controller.Updates() - updates0
	}
	if ec, ok := tb.sw.(emcEvictioner); ok {
		res.EMCEvictions = ec.EMCEvictionCount() - evict0
	}
	var busy, idle units.Cycles
	for i, c := range tb.sutPolls {
		busy += c.Busy - busy0[i]
		idle += c.Idle - idle0[i]
	}
	if busy+idle > 0 {
		res.SUTBusyFrac = float64(busy) / float64(busy+idle)
	}
	if cfg.SUTCores > 1 {
		res.EffectiveCores = len(tb.sutPolls)
		for i, c := range tb.sutPolls {
			b, id := c.Busy-busy0[i], c.Idle-idle0[i]
			cu := CoreUtil{Name: c.Name()}
			if b+id > 0 {
				cu.BusyFrac = float64(b) / float64(b+id)
			}
			res.Cores = append(res.Cores, cu)
		}
	}
	// The measurement is collected; release the buffer high-water mark
	// before the caller (often a many-cell campaign) moves on.
	tb.releasePools()
	return res, nil
}
