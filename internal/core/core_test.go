package core

import (
	"errors"
	"testing"

	"repro/internal/units"
)

func quickRun(t *testing.T, cfg Config) Result {
	t.Helper()
	cfg.Duration = 4 * units.Millisecond
	cfg.Warmup = 2 * units.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	return res
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Switch: "vpp", FrameLen: 40},
		{Switch: "vpp", FrameLen: 4000},
		{Switch: "vpp", Scenario: P2P, Reversed: true},
		{Switch: "vpp", Scenario: P2P, LatencyTopology: true},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", cfg)
		}
	}
	if err := (Config{Switch: "vpp"}).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestUnknownSwitchFails(t *testing.T) {
	if _, err := Run(Config{Switch: "hyperswitch"}); err == nil {
		t.Fatal("unknown switch ran")
	}
}

func TestBESSChainCap(t *testing.T) {
	_, err := Run(Config{Switch: "bess", Scenario: Loopback, Chain: 4})
	if !errors.Is(err, ErrChainTooLong) {
		t.Fatalf("err = %v", err)
	}
	// Chain of 3 is fine.
	res := quickRun(t, Config{Switch: "bess", Scenario: Loopback, Chain: 3})
	if res.Gbps <= 0 {
		t.Fatal("3-VNF chain forwarded nothing")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	cfg := Config{Switch: "ovs", Scenario: Loopback, Chain: 2, Bidir: true,
		ProbeEvery: 40 * units.Microsecond,
		Duration:   3 * units.Millisecond, Warmup: units.Millisecond}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Gbps != b.Gbps || a.Drops != b.Drops ||
		a.Latency.MeanUs != b.Latency.MeanUs {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
	// A different seed must actually change something (jitter paths).
	cfg.Seed = 99
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Steps == a.Steps && c.Latency.MeanUs == a.Latency.MeanUs {
		t.Fatal("seed had no effect")
	}
}

func TestNoLossWellBelowRPlus(t *testing.T) {
	// At half load every switch must deliver (virtually) everything —
	// the paper's premise for latency measurements below R⁺.
	for _, name := range []string{"bess", "vpp", "vale", "t4p4s"} {
		for _, scn := range []ScenarioKind{P2P, P2V, Loopback} {
			base := Config{Switch: name, Scenario: scn,
				Duration: 3 * units.Millisecond, Warmup: 2 * units.Millisecond}
			rp, err := EstimateRPlus(base)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, scn, err)
			}
			base.Rate = units.RateForPPS(rp*0.5, 64)
			res, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			offered := rp * 0.5 * res.Config.Duration.Seconds()
			if res.Dirs[0].RxPackets < int64(offered*0.98) {
				t.Errorf("%s/%v: delivered %d of ~%.0f at half load (drops=%d)",
					name, scn, res.Dirs[0].RxPackets, offered, res.Drops)
			}
		}
	}
}

func TestSaturatedThroughputOrderingP2P(t *testing.T) {
	// The paper's Fig. 4a ordering at 64B must hold.
	g := map[string]float64{}
	for _, name := range Switches {
		g[name] = quickRun(t, Config{Switch: name, Scenario: P2P}).Gbps
	}
	for _, fast := range []string{"bess", "fastclick", "vpp"} {
		if g[fast] < 9.9 {
			t.Errorf("%s = %.2f, want line rate", fast, g[fast])
		}
	}
	if !(g["snabb"] > g["ovs"] && g["ovs"] > g["vale"]) {
		t.Errorf("ordering violated: snabb=%.2f ovs=%.2f vale=%.2f", g["snabb"], g["ovs"], g["vale"])
	}
	if g["vale"] > 6.5 || g["t4p4s"] > 6.5 {
		t.Errorf("vale/t4p4s too fast: %.2f / %.2f", g["vale"], g["t4p4s"])
	}
}

func TestBESSBidirP2PDominates(t *testing.T) {
	best := quickRun(t, Config{Switch: "bess", Scenario: P2P, Bidir: true}).Gbps
	if best < 14 || best > 18 {
		t.Fatalf("BESS bidir p2p = %.2f, want ~16 (paper)", best)
	}
	for _, other := range []string{"fastclick", "vpp"} {
		got := quickRun(t, Config{Switch: other, Scenario: P2P, Bidir: true}).Gbps
		if got >= best {
			t.Errorf("%s (%.2f) beats BESS (%.2f) bidir p2p", other, got, best)
		}
		if got < 10 {
			t.Errorf("%s bidir = %.2f, paper says it exceeds 10G", other, got)
		}
	}
}

func TestVhostTaxP2VvsP2P(t *testing.T) {
	// The vhost-user copy tax: p2v < p2p for the DPDK switches at 64B…
	for _, name := range []string{"fastclick", "vpp", "ovs", "snabb", "t4p4s"} {
		p2p := quickRun(t, Config{Switch: name, Scenario: P2P}).Gbps
		p2v := quickRun(t, Config{Switch: name, Scenario: P2V}).Gbps
		if p2v >= p2p {
			t.Errorf("%s: p2v (%.2f) not below p2p (%.2f)", name, p2v, p2p)
		}
	}
	// …while VALE improves slightly thanks to zero-copy ptnet, and BESS
	// still saturates.
	p2p := quickRun(t, Config{Switch: "vale", Scenario: P2P}).Gbps
	p2v := quickRun(t, Config{Switch: "vale", Scenario: P2V}).Gbps
	if p2v <= p2p {
		t.Errorf("vale: p2v (%.2f) not above p2p (%.2f)", p2v, p2p)
	}
	if bess := quickRun(t, Config{Switch: "bess", Scenario: P2V}).Gbps; bess < 9.9 {
		t.Errorf("bess p2v = %.2f, want line rate", bess)
	}
}

func TestVALEDominatesV2V(t *testing.T) {
	vale := quickRun(t, Config{Switch: "vale", Scenario: V2V}).Gbps
	if vale < 9.5 {
		t.Fatalf("vale v2v = %.2f, want ~10.5", vale)
	}
	for _, other := range []string{"bess", "vpp", "snabb", "ovs", "t4p4s", "fastclick"} {
		got := quickRun(t, Config{Switch: other, Scenario: V2V}).Gbps
		if got >= vale {
			t.Errorf("%s v2v (%.2f) beats VALE (%.2f)", other, got, vale)
		}
		if got > 7.6 {
			t.Errorf("%s v2v = %.2f, paper caps others below 7.4", other, got)
		}
	}
}

func TestSnabbV2VBeatsItsP2V(t *testing.T) {
	p2v := quickRun(t, Config{Switch: "snabb", Scenario: P2V}).Gbps
	v2v := quickRun(t, Config{Switch: "snabb", Scenario: V2V}).Gbps
	if v2v <= p2v {
		t.Fatalf("snabb v2v (%.2f) not above p2v (%.2f) — paper §5.2", v2v, p2v)
	}
}

func TestVPPReversedP2VPenalty(t *testing.T) {
	fwd := quickRun(t, Config{Switch: "vpp", Scenario: P2V}).Gbps
	rev := quickRun(t, Config{Switch: "vpp", Scenario: P2V, Reversed: true}).Gbps
	if rev >= fwd {
		t.Fatalf("reversed p2v (%.2f) not below forward (%.2f) — paper §5.2", rev, fwd)
	}
}

func TestLoopbackThroughputDecreasesWithChain(t *testing.T) {
	for _, name := range []string{"vpp", "vale", "ovs"} {
		prev := 1e9
		for chain := 1; chain <= 4; chain++ {
			got := quickRun(t, Config{Switch: name, Scenario: Loopback, Chain: chain}).Gbps
			if got > prev*1.02 {
				t.Errorf("%s: chain %d (%.2f) above chain %d (%.2f)", name, chain, got, chain-1, prev)
			}
			prev = got
		}
	}
}

func TestVALEOvertakesInLongChains(t *testing.T) {
	// Paper Fig. 5: as chains grow, VALE leads.
	for _, other := range []string{"vpp", "fastclick", "snabb", "ovs", "t4p4s"} {
		vale := quickRun(t, Config{Switch: "vale", Scenario: Loopback, Chain: 4}).Gbps
		got := quickRun(t, Config{Switch: other, Scenario: Loopback, Chain: 4}).Gbps
		if got >= vale {
			t.Errorf("%s (%.2f) beats VALE (%.2f) at 4-VNF", other, got, vale)
		}
	}
}

func TestSnabbCollapsesAtFourVNFs(t *testing.T) {
	three := quickRun(t, Config{Switch: "snabb", Scenario: Loopback, Chain: 3}).Gbps
	four := quickRun(t, Config{Switch: "snabb", Scenario: Loopback, Chain: 4}).Gbps
	if four > three*0.6 {
		t.Fatalf("no collapse: 3-VNF %.2f vs 4-VNF %.2f", three, four)
	}
}

func TestAllSaturateAt1024Uni(t *testing.T) {
	// Paper: everything ≥256B saturates unidirectional p2p.
	for _, name := range Switches {
		got := quickRun(t, Config{Switch: name, Scenario: P2P, FrameLen: 1024}).Gbps
		if got < 9.9 {
			t.Errorf("%s p2p 1024B = %.2f, want line rate", name, got)
		}
	}
}

func TestOnlyVALEAndT4P4SMissBidir20G(t *testing.T) {
	for _, name := range Switches {
		got := quickRun(t, Config{Switch: name, Scenario: P2P, FrameLen: 1024, Bidir: true}).Gbps
		limited := name == "vale" || name == "t4p4s"
		if limited && got >= 19.9 {
			t.Errorf("%s reaches 20G at 1024B bidir, paper says it cannot", name)
		}
		if !limited && got < 19.9 {
			t.Errorf("%s = %.2f at 1024B bidir, want 20G", name, got)
		}
	}
}

func TestSUTBusyFracSaturated(t *testing.T) {
	// A CPU-limited switch at saturation is ~100% busy; a lightly loaded
	// one mostly idle-polls.
	ovs := quickRun(t, Config{Switch: "ovs", Scenario: P2P})
	if ovs.SUTBusyFrac < 0.85 {
		t.Errorf("ovs busy = %.2f at saturation", ovs.SUTBusyFrac)
	}
	bess := quickRun(t, Config{Switch: "bess", Scenario: P2P, Rate: units.Gbps})
	if bess.SUTBusyFrac > 0.7 {
		t.Errorf("bess busy = %.2f at 10%% load, should be mostly idle", bess.SUTBusyFrac)
	}
}

func TestLatencyLoadLadder(t *testing.T) {
	// 0.99·R⁺ latency ≥ 0.50·R⁺ latency for every switch in p2p.
	for _, name := range []string{"vpp", "ovs", "t4p4s"} {
		pts, err := LatencyProfile(Config{Switch: name, Scenario: P2P,
			Duration: 4 * units.Millisecond, Warmup: 2 * units.Millisecond}, []float64{0.50, 0.99})
		if err != nil {
			t.Fatal(err)
		}
		if pts[1].Summary.MeanUs < pts[0].Summary.MeanUs*0.95 {
			t.Errorf("%s: 0.99R+ (%.1f) below 0.50R+ (%.1f)",
				name, pts[1].Summary.MeanUs, pts[0].Summary.MeanUs)
		}
	}
}

func TestLoopbackLowLoadBatchingInflation(t *testing.T) {
	// Table 3: 0.10·R⁺ loopback latency exceeds 0.50·R⁺ for DPDK
	// switches (strict l2fwd batching) but not for VALE.
	for _, name := range []string{"vpp", "bess", "fastclick"} {
		pts, err := LatencyProfile(Config{Switch: name, Scenario: Loopback, Chain: 1,
			Duration: 4 * units.Millisecond, Warmup: 2 * units.Millisecond}, []float64{0.10, 0.50})
		if err != nil {
			t.Fatal(err)
		}
		if pts[0].Summary.MeanUs <= pts[1].Summary.MeanUs {
			t.Errorf("%s: 0.10R+ (%.1f) not above 0.50R+ (%.1f)",
				name, pts[0].Summary.MeanUs, pts[1].Summary.MeanUs)
		}
	}
	pts, err := LatencyProfile(Config{Switch: "vale", Scenario: Loopback, Chain: 1,
		Duration: 4 * units.Millisecond, Warmup: 2 * units.Millisecond}, []float64{0.10, 0.50})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Summary.MeanUs > pts[1].Summary.MeanUs*2 {
		t.Errorf("vale low-load inflation too strong: %.1f vs %.1f",
			pts[0].Summary.MeanUs, pts[1].Summary.MeanUs)
	}
}

func TestVALEBestV2VLatency(t *testing.T) {
	rows, err := Table4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Switch] = r.MeanUs
	}
	for name, v := range byName {
		if name == "vale" {
			continue
		}
		if byName["vale"] >= v {
			t.Errorf("vale (%.1f) not below %s (%.1f) in Table 4", byName["vale"], name, v)
		}
	}
	if byName["t4p4s"] < byName["vpp"] {
		t.Errorf("t4p4s (%.1f) should be worst-tier vs vpp (%.1f)", byName["t4p4s"], byName["vpp"])
	}
}

func TestInterruptModeLatencyFloor(t *testing.T) {
	// VALE's p2p latency floor is interrupt moderation (~ITR), an order
	// of magnitude above the DPDK switches at low load.
	valePts, err := LatencyProfile(Config{Switch: "vale", Scenario: P2P,
		Duration: 4 * units.Millisecond, Warmup: 2 * units.Millisecond}, []float64{0.10})
	if err != nil {
		t.Fatal(err)
	}
	vppPts, err := LatencyProfile(Config{Switch: "vpp", Scenario: P2P,
		Duration: 4 * units.Millisecond, Warmup: 2 * units.Millisecond}, []float64{0.10})
	if err != nil {
		t.Fatal(err)
	}
	if valePts[0].Summary.MeanUs < 5*vppPts[0].Summary.MeanUs {
		t.Fatalf("vale floor %.1f not ≫ vpp floor %.1f",
			valePts[0].Summary.MeanUs, vppPts[0].Summary.MeanUs)
	}
}

// TestFigure1NegativeCorrelation asserts the paper's opening observation:
// ranking the switches by bidirectional p2p throughput inverts the ranking
// by latency (Spearman correlation strongly negative).
func TestFigure1NegativeCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	pts, err := Figure1(RunOpts{Duration: 3 * units.Millisecond, Warmup: 2 * units.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rank := func(vals []float64) []int {
		r := make([]int, len(vals))
		for i := range vals {
			for j := range vals {
				if vals[j] < vals[i] || (vals[j] == vals[i] && j < i) {
					r[i]++
				}
			}
		}
		return r
	}
	var thr, lat []float64
	for _, p := range pts {
		thr = append(thr, p.Gbps)
		lat = append(lat, p.MeanUs)
	}
	rt, rl := rank(thr), rank(lat)
	// Spearman rho.
	n := float64(len(pts))
	var d2 float64
	for i := range rt {
		d := float64(rt[i] - rl[i])
		d2 += d * d
	}
	rho := 1 - 6*d2/(n*(n*n-1))
	if rho > -0.4 {
		t.Fatalf("Spearman rho = %.2f, want strongly negative (paper Fig. 1)", rho)
	}
}

// TestOverloadDropsAccounted: at saturation the slow switches must drop the
// difference between offered and capacity — and account for it.
func TestOverloadDropsAccounted(t *testing.T) {
	res := quickRun(t, Config{Switch: "t4p4s", Scenario: P2P})
	offered := units.TenGigE.MaxPPS(64) * res.Config.Duration.Seconds()
	delivered := float64(res.Dirs[0].RxPackets)
	lost := offered - delivered
	if lost < offered*0.3 {
		t.Fatalf("t4p4s at saturation lost only %.0f of %.0f", lost, offered)
	}
	// The loss shows up in the drop counters (within the in-flight slack
	// of rings and staged buffers).
	if float64(res.Drops) < lost*0.9 {
		t.Fatalf("drops=%d do not account for %.0f lost frames", res.Drops, lost)
	}
}

// TestProbesSurviveChain: latency probes must traverse every copy along a
// 3-VNF chain and come back countable.
func TestProbesSurviveChain(t *testing.T) {
	res, err := Run(Config{Switch: "ovs", Scenario: Loopback, Chain: 3,
		Rate:       units.Gbps / 2,
		ProbeEvery: 50 * units.Microsecond,
		Duration:   4 * units.Millisecond, Warmup: 2 * units.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.N < 60 {
		t.Fatalf("probes returned = %d", res.Latency.N)
	}
	if res.Latency.MeanUs <= 0 {
		t.Fatal("non-positive RTT")
	}
}

// TestSeedsProduceDistinctButCloseThroughput: different seeds shift jitter
// streams without changing capacity materially.
func TestSeedsProduceDistinctButCloseThroughput(t *testing.T) {
	a := quickRun(t, Config{Switch: "ovs", Scenario: P2P, Seed: 1})
	b := quickRun(t, Config{Switch: "ovs", Scenario: P2P, Seed: 12345})
	rel := (a.Gbps - b.Gbps) / a.Gbps
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.05 {
		t.Fatalf("seed sensitivity too high: %.2f vs %.2f", a.Gbps, b.Gbps)
	}
}
