package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/topo"
	"repro/internal/units"
)

// The tests in this file pin the graph compiler to the legacy wire*
// functions it replaced. The Plan-level tests assert the exact attach
// order, cross-connect pairs, traffic steering, and MAC-rewrite ports
// the hand-rolled builders produced; the digest test pins full Result
// JSON for a grid of configs captured on the legacy engine immediately
// before the refactor.

// plan compiles cfg's scenario graph into a recording plan.
func planFor(t *testing.T, cfg Config) *topo.Plan {
	t.Helper()
	g, err := cfg.Graph()
	if err != nil {
		t.Fatalf("Graph(%+v): %v", cfg, err)
	}
	p, err := topo.NewPlan(g)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	return p
}

func wantPorts(t *testing.T, p *topo.Plan, names ...string) {
	t.Helper()
	var got []string
	for i, pp := range p.Ports {
		if pp.Index != i {
			t.Fatalf("port %d self-reports index %d", i, pp.Index)
		}
		got = append(got, pp.Node)
	}
	if !reflect.DeepEqual(got, names) {
		t.Fatalf("attach order = %v, want %v", got, names)
	}
}

func wantCrosses(t *testing.T, p *topo.Plan, pairs ...[2]int) {
	t.Helper()
	var got [][2]int
	for _, c := range p.Crosses {
		got = append(got, [2]int{c.A, c.B})
	}
	if !reflect.DeepEqual(got, pairs) {
		t.Fatalf("cross-connects = %v, want %v", got, pairs)
	}
}

func TestP2PWiringMatchesLegacy(t *testing.T) {
	p := planFor(t, Config{Switch: "vpp", Scenario: P2P, Bidir: true})
	wantPorts(t, p, "p0", "p1")
	wantCrosses(t, p, [2]int{0, 1})
	// Legacy wireP2P: tx0(p0→p1), rx1, then the reverse pair.
	want := []struct {
		name       string
		kind       topo.NodeKind
		guest      bool
		at, egress int
	}{
		{"moongen-tx0", topo.KindGenerator, false, 0, 1},
		{"moongen-rx1", topo.KindSink, false, 1, topo.NoPort},
		{"moongen-tx1", topo.KindGenerator, false, 1, 0},
		{"moongen-rx0", topo.KindSink, false, 0, topo.NoPort},
	}
	if len(p.Actors) != len(want) {
		t.Fatalf("actors = %+v", p.Actors)
	}
	for i, w := range want {
		a := p.Actors[i]
		if a.Name != w.name || a.Kind != w.kind || a.Guest != w.guest || a.At != w.at {
			t.Errorf("actor %d = %+v, want %+v", i, a, w)
		}
		if w.kind == topo.KindGenerator && (a.Egress != w.egress || !a.Probes) {
			t.Errorf("generator %s: egress %d probes %v, want egress %d probes", a.Name, a.Egress, a.Probes, w.egress)
		}
	}
}

func TestP2VWiringMatchesLegacy(t *testing.T) {
	// Forward: NIC generator p0→vm0, guest monitor.
	p := planFor(t, Config{Switch: "vpp", Scenario: P2V})
	wantPorts(t, p, "p0", "vm0-if0")
	wantCrosses(t, p, [2]int{0, 1})
	if p.Actors[0].Name != "moongen-tx0" || p.Actors[0].At != 0 || p.Actors[0].Egress != 1 || p.Actors[0].Guest {
		t.Fatalf("forward gen = %+v", p.Actors[0])
	}
	if p.Actors[1].Name != "flowatcher-vm0" || p.Actors[1].Kind != topo.KindMonitor || p.Actors[1].At != 1 {
		t.Fatalf("monitor = %+v", p.Actors[1])
	}

	// Reversed: guest generator vm0→p0, NIC sink. Legacy wireP2V skips
	// the forward pair entirely.
	p = planFor(t, Config{Switch: "vpp", Scenario: P2V, Reversed: true})
	if len(p.Actors) != 2 {
		t.Fatalf("reversed actors = %+v", p.Actors)
	}
	if a := p.Actors[0]; a.Name != "guestgen-vm0" || !a.Guest || a.At != 1 || a.Egress != 0 || !a.Probes {
		t.Fatalf("reversed gen = %+v", a)
	}
	if a := p.Actors[1]; a.Name != "moongen-rx0" || a.Kind != topo.KindSink || a.At != 0 {
		t.Fatalf("reversed sink = %+v", a)
	}

	// Bidir: forward pair then reverse pair, four actors.
	p = planFor(t, Config{Switch: "vpp", Scenario: P2V, Bidir: true})
	var names []string
	for _, a := range p.Actors {
		names = append(names, a.Name)
	}
	if !reflect.DeepEqual(names, []string{"moongen-tx0", "flowatcher-vm0", "guestgen-vm0", "moongen-rx0"}) {
		t.Fatalf("bidir order = %v", names)
	}
}

func TestV2VWiringMatchesLegacy(t *testing.T) {
	p := planFor(t, Config{Switch: "vpp", Scenario: V2V, Bidir: true})
	wantPorts(t, p, "vm1-if0", "vm2-if0")
	wantCrosses(t, p, [2]int{0, 1})
	// Legacy wireV2V: guest generators run without latency probes.
	want := []string{"guestgen-vm1", "monitor-vm2", "guestgen-vm2", "monitor-vm1"}
	for i, a := range p.Actors {
		if a.Name != want[i] {
			t.Fatalf("actor order = %+v", p.Actors)
		}
		if a.Kind == topo.KindGenerator && (a.Probes || !a.Guest) {
			t.Fatalf("v2v generator %s: guest=%v probes=%v, want guest probe-less", a.Name, a.Guest, a.Probes)
		}
	}
}

func TestV2VLatencyWiringMatchesLegacy(t *testing.T) {
	p := planFor(t, Config{Switch: "vpp", Scenario: V2V, LatencyTopology: true})
	// Legacy wireV2VLatency attach order: vm1.if0, vm2.if0, vm2.if1,
	// vm1.if1; cross-connects (0,1) and (2,3).
	wantPorts(t, p, "vm1-if0", "vm2-if0", "vm2-if1", "vm1-if1")
	wantCrosses(t, p, [2]int{0, 1}, [2]int{2, 3})
	if len(p.Actors) != 3 {
		t.Fatalf("actors = %+v", p.Actors)
	}
	if a := p.Actors[0]; a.Name != "moongen-vm1-tx" || !a.Guest || a.At != 0 || a.Egress != 1 || !a.Probes {
		t.Fatalf("tx = %+v", a)
	}
	// The reflector: forced l2fwd (even on ptnet switches), source MAC
	// from vm2.if1's port (2), forward rewrite to vm1.if1's port (3),
	// no reverse rewrite — exactly wireV2VLatency's hand-built L2Fwd.
	if a := p.Actors[1]; a.Name != "l2fwd-vm2" || a.Kind != topo.KindVNF ||
		a.A != 1 || a.B != 2 || a.SrcMAC != 2 ||
		a.RewriteAB != 3 || a.RewriteBA != topo.NoPort || a.App != "l2fwd" {
		t.Fatalf("reflector = %+v", a)
	}
	if a := p.Actors[2]; a.Name != "moongen-vm1-rx" || a.Kind != topo.KindMonitor || a.At != 3 {
		t.Fatalf("rx = %+v", a)
	}
}

func TestLoopbackWiringMatchesLegacy(t *testing.T) {
	p := planFor(t, Config{Switch: "vpp", Scenario: Loopback, Chain: 3, Bidir: true})
	wantPorts(t, p, "p0", "vm1-if0", "vm1-if1", "vm2-if0", "vm2-if1", "vm3-if0", "vm3-if1", "p1")
	wantCrosses(t, p, [2]int{0, 1}, [2]int{2, 3}, [2]int{4, 5}, [2]int{6, 7})

	// Legacy wireLoopback: the VNF cores first, then the generators.
	// Each VNF rewrites forward to the peer of its if1 cross-connect and
	// reverse to the peer of its if0 cross-connect, sourcing its if0
	// port MAC.
	type vnf struct{ a, b, src, ab, ba int }
	wantVNFs := []vnf{
		{1, 2, 1, 3, 0}, // vm1: fwd → vm2.if0, rev → p0
		{3, 4, 3, 5, 2}, // vm2: fwd → vm3.if0, rev → vm1.if1
		{5, 6, 5, 7, 4}, // vm3: fwd → p1,      rev → vm2.if1
	}
	for i, w := range wantVNFs {
		a := p.Actors[i]
		if a.Kind != topo.KindVNF || a.A != w.a || a.B != w.b || a.SrcMAC != w.src ||
			a.RewriteAB != w.ab || a.RewriteBA != w.ba || a.App != "" {
			t.Errorf("vnf %d = %+v, want %+v", i, a, w)
		}
	}
	rest := p.Actors[3:]
	if rest[0].Name != "moongen-tx0" || rest[0].At != 0 || rest[0].Egress != 1 {
		t.Errorf("tx0 = %+v", rest[0])
	}
	if rest[1].Name != "moongen-rx1" || rest[1].At != 7 {
		t.Errorf("rx1 = %+v", rest[1])
	}
	// Reverse direction steers into the chain tail (vm3.if1), like
	// legacy frameSpec(p1, vms[n-1].pIf1).
	if rest[2].Name != "moongen-tx1" || rest[2].At != 7 || rest[2].Egress != 6 {
		t.Errorf("tx1 = %+v", rest[2])
	}
	if rest[3].Name != "moongen-rx0" || rest[3].At != 0 {
		t.Errorf("rx0 = %+v", rest[3])
	}
}

// TestScenarioResultsMatchLegacyEngine pins full Result JSON digests for
// a grid covering every scenario variant (uni/bidir, reversed, latency
// topology, containers, ptnet chains, multi-core). The goldens were
// captured on the legacy wire*-function engine immediately before the
// graph-compiler refactor: matching them proves the compiler is
// behavior-preserving bit-for-bit, not just structurally.
func TestScenarioResultsMatchLegacyEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is slow for -short")
	}
	cases := []struct {
		cfg    Config
		digest string
	}{
		{Config{Switch: "vpp", Scenario: P2P}, "fc71da34ccde934cd9be7b23096ad4f5"},
		{Config{Switch: "vpp", Scenario: P2P, Bidir: true, ProbeEvery: 40 * units.Microsecond}, "6ce9d14f855c6120b4b13863d62080e3"},
		{Config{Switch: "bess", Scenario: P2V}, "a04e1922b3b62dea8921add2caab4012"},
		{Config{Switch: "vpp", Scenario: P2V, Reversed: true}, "05d0678245cf1735cb1d9e10643a1e82"},
		{Config{Switch: "ovs", Scenario: P2V, Bidir: true, ProbeEvery: 40 * units.Microsecond}, "8912f5a00bc4ab5d70677cbd28f56e03"},
		{Config{Switch: "snabb", Scenario: V2V}, "801be70b9d1b4a6059576de0464d89d7"},
		{Config{Switch: "vale", Scenario: V2V, Bidir: true}, "6435effb82837b1eaf68bfa73672085c"},
		{Config{Switch: "vpp", Scenario: V2V, LatencyTopology: true, Rate: units.Gbps, ProbeEvery: 20 * units.Microsecond}, "57050451eebd1ea9d1980e92fbe01124"},
		{Config{Switch: "vale", Scenario: V2V, LatencyTopology: true, Rate: units.Gbps, ProbeEvery: 20 * units.Microsecond}, "2cefaf78051dd26f475193bf8b0f4c2a"},
		{Config{Switch: "ovs", Scenario: Loopback, Chain: 1}, "2474e0f6ad1caa9fed48960188f94c54"},
		{Config{Switch: "t4p4s", Scenario: Loopback, Chain: 3, Bidir: true, ProbeEvery: 40 * units.Microsecond}, "5336e6455ebefc18fd74e757bda13155"},
		{Config{Switch: "vale", Scenario: Loopback, Chain: 2}, "d4e10b4b84738c3f85352573647de49f"},
		{Config{Switch: "fastclick", Scenario: Loopback, Chain: 2, Containers: true}, "42d6b06f89028ff812dcf1e8bede9268"},
		// Re-pinned when multi-core dispatch moved from shared-state port
		// sharding to per-core switch instances (internal/multicore).
		{Config{Switch: "vpp", Scenario: P2P, SUTCores: 2, Bidir: true}, "9606ad8900076a88214c1d88e8d84f19"},
	}
	for _, tc := range cases {
		cfg := tc.cfg
		cfg.Duration = 2 * units.Millisecond
		cfg.Warmup = units.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", tc.cfg, err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.Sum256(blob)
		if got := hex.EncodeToString(h[:16]); got != tc.digest {
			t.Errorf("%s/%v: result digest %s, want %s (compiled wiring diverged from legacy)",
				tc.cfg.Switch, tc.cfg.Scenario, got, tc.digest)
		}
	}
}
