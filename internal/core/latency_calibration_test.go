package core

import (
	"fmt"
	"testing"

	"repro/internal/units"
)

// TestCalibrationLatencyP2P prints the p2p section of Table 3.
func TestCalibrationLatencyP2P(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fmt.Printf("p2p RTT us (paper: bess 4.0/4.6/6.4 fc 5.3/7.8/8.4 ovs 4.3/5.2/9.6 snabb 7.3/11.3/22 vpp 4.5/5.9/13.1 vale 32/34/59 t4p4s 32/31/174)\n")
	for _, name := range allSwitches {
		pts, err := LatencyProfile(Config{
			Switch: name, Scenario: P2P,
			Duration: 10 * units.Millisecond, Warmup: 3 * units.Millisecond,
		}, Table3Loads)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-10s", name)
		for _, p := range pts {
			fmt.Printf("  %.2f: %7.1f (n=%d std=%.1f)", p.Load, p.Summary.MeanUs, p.Summary.N, p.Summary.StdUs)
		}
		fmt.Println()
	}
}

// TestCalibrationLatencyLoopback prints the 1-VNF loopback row of Table 3.
func TestCalibrationLatencyLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fmt.Printf("1-VNF loopback RTT us (paper: bess 35/15/39 fc 69/26/37 ovs 50/23/514 snabb 70/27/74 vpp 41/20/47 vale 32/35/65 t4p4s 169/65/2259)\n")
	for _, name := range allSwitches {
		pts, err := LatencyProfile(Config{
			Switch: name, Scenario: Loopback, Chain: 1,
			Duration: 10 * units.Millisecond, Warmup: 3 * units.Millisecond,
		}, Table3Loads)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-10s", name)
		for _, p := range pts {
			fmt.Printf("  %.2f: %7.1f (n=%d)", p.Load, p.Summary.MeanUs, p.Summary.N)
		}
		fmt.Println()
	}
}

// TestCalibrationLatencyV2V prints Table 4 (v2v RTT at 1 Mpps).
func TestCalibrationLatencyV2V(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fmt.Printf("v2v RTT us at 1Mpps (paper: bess 37 fc 45 ovs 43 snabb 67 vpp 42 vale 21 t4p4s 70)\n")
	for _, name := range allSwitches {
		res, err := Run(Config{
			Switch: name, Scenario: V2V, LatencyTopology: true,
			Rate:       units.RateForPPS(1e6, 64),
			ProbeEvery: DefaultProbeEvery,
			Duration:   10 * units.Millisecond, Warmup: 3 * units.Millisecond,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-10s %7.1f us (n=%d)\n", name, res.Latency.MeanUs, res.Latency.N)
	}
}
