package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"repro/internal/units"
)

// TestGuestPathGoldenDigests pins full Result JSON digests for the
// virtio/vhost data-plane scenarios (p2v, v2v, loopback) across the
// switches that exercise every guest-side actor: the vhost burst
// crossings, the guest generator and l2fwd VNF, the ptnet path, and the
// notify-delay visibility gate. These are the guest-path counterpart of
// the fig4a campaign golden: any change to the fast path that shifts a
// charged cycle, a timestamp, or a drop shows up here as a digest
// mismatch. Re-pin only with an argued equivalence (see DESIGN.md §3.3).
func TestGuestPathGoldenDigests(t *testing.T) {
	cases := []struct {
		cfg    Config
		digest string
	}{
		{Config{Switch: "vpp", Scenario: P2V, FrameLen: 64}, "ea7585bb3974810c0ae06cc1ff2b27f8"},
		{Config{Switch: "snabb", Scenario: P2V, FrameLen: 1024, Bidir: true}, "bae4f3dea8501b04da08c71ff660852a"},
		{Config{Switch: "vpp", Scenario: V2V, FrameLen: 64}, "ed5442a6088be0e4cb4809d01ad69672"},
		{Config{Switch: "ovs", Scenario: V2V, FrameLen: 256, Bidir: true}, "42b9e89fe1a5bd54bdefc75ec7d9a04f"},
		{Config{Switch: "vale", Scenario: V2V, FrameLen: 64}, "ce79e22a6277bde7ac09fb0e94ee4f8e"},
		{Config{Switch: "vpp", Scenario: Loopback, Chain: 4, FrameLen: 64}, "e7979e2b67320861df5ae5c5c5e14aaa"},
		{Config{Switch: "vale", Scenario: Loopback, Chain: 2, FrameLen: 64}, "d4e10b4b84738c3f85352573647de49f"},
		{Config{Switch: "vpp", Scenario: V2V, FrameLen: 64, LatencyTopology: true, Rate: units.Gbps, ProbeEvery: 20 * units.Microsecond}, "57050451eebd1ea9d1980e92fbe01124"},
	}
	for _, tc := range cases {
		cfg := tc.cfg
		cfg.Duration = 2 * units.Millisecond
		cfg.Warmup = units.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", tc.cfg, err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.Sum256(blob)
		if got := hex.EncodeToString(h[:16]); got != tc.digest {
			t.Errorf("%s/%v: guest-path digest %s, want %s (guest data plane diverged)",
				tc.cfg.Switch, tc.cfg.Scenario, got, tc.digest)
		}
	}
}
