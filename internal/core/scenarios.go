package core

import (
	"fmt"

	"repro/internal/nic"
	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/vm"
)

// wire builds the scenario topology onto the switch, mirroring the paper's
// Fig. 3 placements: the SUT (and everything it drives) on NUMA node 0,
// MoonGen TX/RX on node 1 behind the physical wires.
func (tb *testbed) wire() error {
	switch tb.cfg.Scenario {
	case P2P:
		return tb.wireP2P()
	case P2V:
		return tb.wireP2V()
	case V2V:
		if tb.cfg.LatencyTopology {
			return tb.wireV2VLatency()
		}
		return tb.wireV2V()
	case Loopback:
		return tb.wireLoopback()
	}
	return fmt.Errorf("core: unknown scenario %v", tb.cfg.Scenario)
}

func (tb *testbed) attach(sp *sutPort) int {
	tb.portCount++
	return tb.sw.AddPort(sp.dev)
}

// wireP2P: gen0 —wire— SUT[0 ↔ 1] —wire— gen1.
func (tb *testbed) wireP2P() error {
	sp0, gen0 := tb.addPhysPair("p0")
	sp1, gen1 := tb.addPhysPair("p1")
	p0, p1 := tb.attach(sp0), tb.attach(sp1)
	if err := tb.sw.CrossConnect(p0, p1); err != nil {
		return err
	}
	// Direction 0: node-1 port0 → SUT → node-1 port1.
	tb.nicGenerator("moongen-tx0", gen0, tb.frameSpec(p0, p1), true)
	tb.nicSink("moongen-rx1", gen1)
	if tb.cfg.Bidir {
		tb.nicGenerator("moongen-tx1", gen1, tb.frameSpec(p1, p0), true)
		tb.nicSink("moongen-rx0", gen0)
	}
	return nil
}

// wireP2V: gen0 —wire— SUT[0 ↔ 1] —vif— VM(monitor / generator).
func (tb *testbed) wireP2V() error {
	sp0, gen0 := tb.addPhysPair("p0")
	guestPool := tb.newPool(bufSize)
	spV, vif := tb.addGuestIf("vm0-if0", guestPool)
	p0, pv := tb.attach(sp0), tb.attach(spV)
	if err := tb.sw.CrossConnect(p0, pv); err != nil {
		return err
	}
	if !tb.cfg.Reversed {
		tb.nicGenerator("moongen-tx0", gen0, tb.frameSpec(p0, pv), true)
		tb.guestMonitor("flowatcher-vm0", vif)
	}
	if tb.cfg.Reversed || tb.cfg.Bidir {
		tb.guestGenerator("guestgen-vm0", vif, guestPool, tb.frameSpec(pv, p0), true)
		tb.nicSink("moongen-rx0", gen0)
	}
	return nil
}

// wireV2V (throughput topology): VM1(gen) —vif— SUT[0 ↔ 1] —vif— VM2(mon).
func (tb *testbed) wireV2V() error {
	pool1 := tb.newPool(bufSize)
	pool2 := tb.newPool(bufSize)
	sp1, if1 := tb.addGuestIf("vm1-if0", pool1)
	sp2, if2 := tb.addGuestIf("vm2-if0", pool2)
	p1, p2 := tb.attach(sp1), tb.attach(sp2)
	if err := tb.sw.CrossConnect(p1, p2); err != nil {
		return err
	}
	tb.guestGenerator("guestgen-vm1", if1, pool1, tb.frameSpec(p1, p2), false)
	tb.guestMonitor("monitor-vm2", if2)
	if tb.cfg.Bidir {
		tb.guestGenerator("guestgen-vm2", if2, pool2, tb.frameSpec(p2, p1), false)
		tb.guestMonitor("monitor-vm1", if1)
	}
	return nil
}

// wireV2VLatency (§5.3): VM1 holds the MoonGen TX (if0) and RX (if1)
// threads with software timestamping; VM2 reflects with l2fwd. The SUT
// cross-connects (vm1.if0 ↔ vm2.if0) and (vm2.if1 ↔ vm1.if1).
func (tb *testbed) wireV2VLatency() error {
	pool1 := tb.newPool(bufSize)
	pool2 := tb.newPool(bufSize)
	sp10, if10 := tb.addGuestIf("vm1-if0", pool1)
	sp20, if20 := tb.addGuestIf("vm2-if0", pool2)
	sp21, if21 := tb.addGuestIf("vm2-if1", pool2)
	sp11, if11 := tb.addGuestIf("vm1-if1", pool1)
	p10, p20 := tb.attach(sp10), tb.attach(sp20)
	p21, p11 := tb.attach(sp21), tb.attach(sp11)
	if err := tb.sw.CrossConnect(p10, p20); err != nil {
		return err
	}
	if err := tb.sw.CrossConnect(p21, p11); err != nil {
		return err
	}
	tb.guestGenerator("moongen-vm1-tx", if10, pool1, tb.frameSpec(p10, p20), true)
	rewrite := switchdef.PortMAC(p11)
	fwd := &vm.L2Fwd{A: if20, B: if21, OwnMAC: switchdef.PortMAC(p21), RewriteAB: &rewrite}
	tb.guestCore("l2fwd-vm2", fwd.Poll)
	tb.guestMonitor("moongen-vm1-rx", if11)
	return nil
}

// wireLoopback: gen0 — SUT[phys0 ↔ vm1.if0], VM k l2fwd, [vmk.if1 ↔
// vm(k+1).if0] ..., [vmN.if1 ↔ phys1] — gen1. With the VALE SUT each
// cross-connect is its own VALE bridge (N+1 instances) and the VNFs are
// guest VALE instances over ptnet, as in the paper's appendix A.4.
func (tb *testbed) wireLoopback() error {
	n := tb.cfg.Chain
	sp0, gen0 := tb.addPhysPair("p0")
	p0 := tb.attach(sp0)

	type vmIfs struct {
		if0, if1 vm.NetIf
		pIf0     int
		pIf1     int
		pool     *pkt.Pool
	}
	vms := make([]vmIfs, n)
	for k := 0; k < n; k++ {
		pool := tb.newPool(bufSize)
		spa, ifa := tb.addGuestIf(fmt.Sprintf("vm%d-if0", k+1), pool)
		spb, ifb := tb.addGuestIf(fmt.Sprintf("vm%d-if1", k+1), pool)
		vms[k] = vmIfs{if0: ifa, if1: ifb, pIf0: tb.attach(spa), pIf1: tb.attach(spb), pool: pool}
	}
	sp1, gen1 := tb.addPhysPair("p1")
	p1 := tb.attach(sp1)

	// Cross-connects along the chain.
	if err := tb.sw.CrossConnect(p0, vms[0].pIf0); err != nil {
		return err
	}
	for k := 0; k+1 < n; k++ {
		if err := tb.sw.CrossConnect(vms[k].pIf1, vms[k+1].pIf0); err != nil {
			return err
		}
	}
	if err := tb.sw.CrossConnect(vms[n-1].pIf1, p1); err != nil {
		return err
	}

	// The VNFs.
	for k := 0; k < n; k++ {
		name := fmt.Sprintf("vnf-vm%d", k+1)
		if tb.info.VirtualIface == "ptnet" {
			fwd := &vm.ValeFwd{A: vms[k].if0, B: vms[k].if1, Pool: vms[k].pool}
			tb.guestCore(name, fwd.Poll)
			continue
		}
		// Forward egress after vmK.if1 is the peer of that
		// cross-connect; reverse egress after vmK.if0 likewise.
		var fwdDst, revDst pkt.MAC
		if k+1 < n {
			fwdDst = switchdef.PortMAC(vms[k+1].pIf0)
		} else {
			fwdDst = switchdef.PortMAC(p1)
		}
		if k > 0 {
			revDst = switchdef.PortMAC(vms[k-1].pIf1)
		} else {
			revDst = switchdef.PortMAC(p0)
		}
		fDst, rDst := fwdDst, revDst
		fwd := &vm.L2Fwd{
			A: vms[k].if0, B: vms[k].if1,
			OwnMAC:    switchdef.PortMAC(vms[k].pIf0),
			RewriteAB: &fDst,
			RewriteBA: &rDst,
		}
		tb.guestCore(name, fwd.Poll)
	}

	// Traffic.
	tb.nicGenerator("moongen-tx0", gen0, tb.frameSpec(p0, vms[0].pIf0), true)
	tb.nicSink("moongen-rx1", gen1)
	if tb.cfg.Bidir {
		tb.nicGenerator("moongen-tx1", gen1, tb.frameSpec(p1, vms[n-1].pIf1), true)
		tb.nicSink("moongen-rx0", gen0)
	}
	return nil
}

// unusedNIC keeps the import of nic for the sutPort struct fields.
var _ = nic.Connect
