package core

import (
	"errors"
	"fmt"

	"repro/internal/topo"
)

// Graph returns the declarative topology graph cfg describes: the
// paper's four scenarios (Fig. 2) are pure functions from Config to
// topo.Graph, and the Custom scenario passes the user's graph through.
// The graph is switch-independent; how its guest interfaces and VNFs
// materialize (vhost-user vs. ptnet, l2fwd vs. guest VALE) is decided by
// the testbed assembler when the graph is compiled.
func (cfg Config) Graph() (*topo.Graph, error) {
	cfg = cfg.withDefaults()
	var g *topo.Graph
	switch cfg.Scenario {
	case P2P:
		g = p2pGraph(cfg)
	case P2V:
		g = p2vGraph(cfg)
	case V2V:
		if cfg.LatencyTopology {
			g = v2vLatencyGraph(cfg)
		} else {
			g = v2vGraph(cfg)
		}
	case Loopback:
		g = loopbackGraph(cfg)
	case Custom:
		if cfg.Topology == nil {
			return nil, errors.New("core: custom scenario without a Topology graph")
		}
		return cfg.Topology, nil
	default:
		return nil, fmt.Errorf("core: unknown scenario %v", cfg.Scenario)
	}
	// Mid-run rule churn adds the control-plane actor to any named
	// scenario; custom graphs declare their own controller node.
	if cfg.RuleUpdateRate > 0 {
		g.Nodes = append(g.Nodes, topo.Node{Name: "controller", Kind: topo.KindController})
	}
	return g, nil
}

// Node/edge shorthands for the scenario builders.
func physPair(name string) topo.Node { return topo.Node{Name: name, Kind: topo.KindPhysPair} }
func guestIf(name, vm string) topo.Node {
	return topo.Node{Name: name, Kind: topo.KindGuestIf, VM: vm}
}
func generator(name, at string) topo.Node {
	return topo.Node{Name: name, Kind: topo.KindGenerator, At: at, Probes: true}
}
func sink(name, at string) topo.Node { return topo.Node{Name: name, Kind: topo.KindSink, At: at} }
func monitor(name, at string) topo.Node {
	return topo.Node{Name: name, Kind: topo.KindMonitor, At: at}
}
func cross(a, b string) topo.Edge { return topo.Edge{Kind: topo.EdgeCross, A: a, B: b} }

// p2pGraph: gen0 —wire— SUT[0 ↔ 1] —wire— gen1.
func p2pGraph(cfg Config) *topo.Graph {
	g := &topo.Graph{
		Name:  "p2p",
		Nodes: []topo.Node{physPair("p0"), physPair("p1")},
		Edges: []topo.Edge{cross("p0", "p1")},
	}
	// Direction 0: node-1 port0 → SUT → node-1 port1.
	g.Nodes = append(g.Nodes, generator("moongen-tx0", "p0"), sink("moongen-rx1", "p1"))
	if cfg.Bidir {
		g.Nodes = append(g.Nodes, generator("moongen-tx1", "p1"), sink("moongen-rx0", "p0"))
	}
	return g
}

// p2vGraph: gen0 —wire— SUT[0 ↔ 1] —vif— VM(monitor / generator).
func p2vGraph(cfg Config) *topo.Graph {
	g := &topo.Graph{
		Name:  "p2v",
		Nodes: []topo.Node{physPair("p0"), guestIf("vm0-if0", "vm0")},
		Edges: []topo.Edge{cross("p0", "vm0-if0")},
	}
	if !cfg.Reversed {
		g.Nodes = append(g.Nodes, generator("moongen-tx0", "p0"), monitor("flowatcher-vm0", "vm0-if0"))
	}
	if cfg.Reversed || cfg.Bidir {
		g.Nodes = append(g.Nodes, generator("guestgen-vm0", "vm0-if0"), sink("moongen-rx0", "p0"))
	}
	return g
}

// v2vGraph (throughput topology): VM1(gen) —vif— SUT[0 ↔ 1] —vif—
// VM2(mon). The guest generators run probe-less: the throughput wiring
// has no return path, so the paper measures v2v latency with the
// dedicated LatencyTopology instead.
func v2vGraph(cfg Config) *topo.Graph {
	gen1 := generator("guestgen-vm1", "vm1-if0")
	gen1.Probes = false
	g := &topo.Graph{
		Name: "v2v",
		Nodes: []topo.Node{
			guestIf("vm1-if0", "vm1"), guestIf("vm2-if0", "vm2"),
			gen1, monitor("monitor-vm2", "vm2-if0"),
		},
		Edges: []topo.Edge{cross("vm1-if0", "vm2-if0")},
	}
	if cfg.Bidir {
		gen2 := generator("guestgen-vm2", "vm2-if0")
		gen2.Probes = false
		g.Nodes = append(g.Nodes, gen2, monitor("monitor-vm1", "vm1-if0"))
	}
	return g
}

// v2vLatencyGraph (§5.3): VM1 holds the MoonGen TX (if0) and RX (if1)
// threads with software timestamping; VM2 reflects with l2fwd. The SUT
// cross-connects (vm1.if0 ↔ vm2.if0) and (vm2.if1 ↔ vm1.if1). The
// reflector forwards one way only and stamps vm2.if1's port MAC as its
// Ethernet source (the interface it transmits from).
func v2vLatencyGraph(cfg Config) *topo.Graph {
	return &topo.Graph{
		Name: "v2v-latency",
		Nodes: []topo.Node{
			guestIf("vm1-if0", "vm1"), guestIf("vm2-if0", "vm2"),
			guestIf("vm2-if1", "vm2"), guestIf("vm1-if1", "vm1"),
			generator("moongen-vm1-tx", "vm1-if0"),
			{
				Name: "l2fwd-vm2", Kind: topo.KindVNF,
				A: "vm2-if0", B: "vm2-if1",
				App: "l2fwd", SrcMACIf: "vm2-if1", OneWay: true,
			},
			monitor("moongen-vm1-rx", "vm1-if1"),
		},
		Edges: []topo.Edge{cross("vm1-if0", "vm2-if0"), cross("vm2-if1", "vm1-if1")},
	}
}

// loopbackGraph: gen0 — SUT[phys0 ↔ vm1.if0], VM k l2fwd, [vmk.if1 ↔
// vm(k+1).if0] ..., [vmN.if1 ↔ phys1] — gen1. With the VALE SUT each
// cross-connect is its own VALE bridge (N+1 instances) and the VNFs are
// guest VALE instances over ptnet, as in the paper's appendix A.4 — the
// VNF nodes leave App empty so the assembler picks the switch's native
// chain VNF.
func loopbackGraph(cfg Config) *topo.Graph {
	n := cfg.Chain
	g := &topo.Graph{Name: "loopback"}
	g.Nodes = append(g.Nodes, physPair("p0"))
	g.Edges = append(g.Edges, cross("p0", "vm1-if0"))
	for k := 1; k <= n; k++ {
		vm := fmt.Sprintf("vm%d", k)
		g.Nodes = append(g.Nodes, guestIf(vm+"-if0", vm), guestIf(vm+"-if1", vm))
		if k < n {
			g.Edges = append(g.Edges, cross(vm+"-if1", fmt.Sprintf("vm%d-if0", k+1)))
		}
	}
	g.Nodes = append(g.Nodes, physPair("p1"))
	g.Edges = append(g.Edges, cross(fmt.Sprintf("vm%d-if1", n), "p1"))

	// The VNFs: forward egress after vmK.if1 is the peer of that
	// cross-connect; reverse egress after vmK.if0 likewise — both fall
	// out of the compiler's rewrite derivation.
	for k := 1; k <= n; k++ {
		vm := fmt.Sprintf("vm%d", k)
		g.Nodes = append(g.Nodes, topo.Node{
			Name: "vnf-" + vm, Kind: topo.KindVNF,
			A: vm + "-if0", B: vm + "-if1",
		})
	}

	// Traffic.
	g.Nodes = append(g.Nodes, generator("moongen-tx0", "p0"), sink("moongen-rx1", "p1"))
	if cfg.Bidir {
		g.Nodes = append(g.Nodes, generator("moongen-tx1", "p1"), sink("moongen-rx0", "p0"))
	}
	return g
}
