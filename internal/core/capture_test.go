package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pcap"
	"repro/internal/pkt"
	"repro/internal/units"
)

func TestCaptureWritesReadablePcap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p2p.pcap")
	res, err := Run(Config{
		Switch: "vpp", Scenario: P2P,
		Rate:        units.Gbps,
		Duration:    units.Millisecond,
		Warmup:      units.Millisecond,
		CapturePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := pcap.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	// Warmup + window traffic, all 64B Ethernet frames parseable.
	if int64(len(recs)) < res.Dirs[0].RxPackets {
		t.Fatalf("captured %d < delivered %d", len(recs), res.Dirs[0].RxPackets)
	}
	for _, r := range recs[:10] {
		if len(r.Data) != 64 {
			t.Fatalf("frame length %d", len(r.Data))
		}
		if _, err := pkt.ParseEth(r.Data); err != nil {
			t.Fatalf("unparseable frame: %v", err)
		}
	}
}

func TestCaptureV2VUsesGuestMonitor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2v.pcap")
	_, err := Run(Config{
		Switch: "ovs", Scenario: V2V,
		Rate:        units.Gbps,
		Duration:    units.Millisecond,
		Warmup:      units.Millisecond,
		CapturePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := pcap.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty capture")
	}
}
