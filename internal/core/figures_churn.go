package core

import (
	"errors"

	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// The churn experiment family probes the control-plane dimension the
// paper's single-flow methodology deliberately holds still: what happens
// to a software switch when its rule tables are edited while traffic
// flows, and when that traffic spreads over more flows than the fast-path
// caches hold. OvS's three-tier cache hierarchy (EMC → megaflow → slow
// path) is the motivating case — the EMC holds 8192 entries, so the flow
// sweep crosses its capacity — but every switch runs the same grid:
// t4p4s pays table-version invalidations, FastClick classifier-memo
// resets, VPP its ACL arc, and the fixed-function switches (Snabb, BESS,
// VALE) appear as unsupported cells whenever rule updates are requested,
// exactly as their reprogrammability column in Table 1 predicts.

// ChurnFlowCounts is the active-flow sweep (the x-axis). It crosses the
// OvS EMC capacity (8192) so the cache-overflow knee is visible.
var ChurnFlowCounts = []int{512, 2048, 8192, 32768}

// ChurnUpdateRates is the rule-update sweep (one curve per rate), in
// control-plane operations per second of simulated time. Rate 0 is the
// churn-free baseline — byte-identical to the paper's methodology.
var ChurnUpdateRates = []float64{0, 10000, 100000}

// ChurnSkews is the flow-mix sweep: 0 cycles flows round-robin (every
// flow equally active — worst case for caches), 1.1 draws them from a
// heavy-tailed Zipf (hot flows stay cached while the tail churns).
var ChurnSkews = []float64{0, 1.1}

// churnProbeEvery is the latency-probe interval of every churn cell: the
// figure reports latency under load next to throughput, so rule-update
// stalls show up as RTT inflation too.
const churnProbeEvery = 100 * units.Microsecond

// ChurnPoint is one (switch, skew, rate, flows) measurement.
type ChurnPoint struct {
	Flows int
	Gbps  float64
	Mpps  float64
	// MeanLatencyUs is the mean probe RTT under saturation.
	MeanLatencyUs float64
	// RuleUpdates and EMCEvictions echo the Result's control-plane and
	// cache-pressure counters for the measurement window.
	RuleUpdates  int64
	EMCEvictions int64
	// Unsupported marks switches that cannot take runtime rule updates
	// (Snabb, BESS, VALE) in cells with a non-zero update rate.
	Unsupported bool
}

// ChurnCurve is one line of the churn figure: a switch under one flow
// mix and one rule-update rate, across the flow-count sweep.
type ChurnCurve struct {
	Switch     string
	Display    string
	ZipfSkew   float64
	UpdateRate float64
	Points     []ChurnPoint
}

// ChurnFigure is the cache-churn figure family.
type ChurnFigure struct {
	Curves []ChurnCurve
}

// churnConfig builds the cell config for one point. A rate-0 skew-0 cell
// carries no churn dimension at all: it differs from the paper's p2p
// methodology only by its flow count and probes.
func churnConfig(name string, skew, rate float64, flows int, o RunOpts) Config {
	cfg := Config{
		Switch: name, Scenario: P2P, FrameLen: 64,
		Flows: flows, ZipfSkew: skew, RuleUpdateRate: rate,
		ProbeEvery: churnProbeEvery,
	}
	return o.apply(cfg)
}

// ChurnSpecs returns the flat measurement grid behind the churn figure —
// the spec set a campaign executes.
func ChurnSpecs(o RunOpts) []Config {
	var specs []Config
	for _, skew := range ChurnSkews {
		for _, rate := range ChurnUpdateRates {
			for _, name := range Switches {
				for _, flows := range ChurnFlowCounts {
					specs = append(specs, churnConfig(name, skew, rate, flows, o))
				}
			}
		}
	}
	return specs
}

// FigureChurn reproduces the cache-churn figure family (throughput and
// latency vs. active-flow count and rule-update rate, every switch).
func FigureChurn(o RunOpts) (*ChurnFigure, error) {
	return FigureChurnOn(SerialRunner{}, o)
}

// FigureChurnOn is FigureChurn on an explicit runner.
func FigureChurnOn(r Runner, o RunOpts) (*ChurnFigure, error) {
	specs := ChurnSpecs(o)
	outs := r.RunAll(specs)
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	fig := &ChurnFigure{}
	i := 0
	for _, skew := range ChurnSkews {
		for _, rate := range ChurnUpdateRates {
			for _, name := range Switches {
				info, err := switchdef.Lookup(name)
				if err != nil {
					return nil, err
				}
				curve := ChurnCurve{
					Switch: name, Display: info.Display,
					ZipfSkew: skew, UpdateRate: rate,
				}
				for _, flows := range ChurnFlowCounts {
					out := outs[i]
					i++
					pt := ChurnPoint{Flows: flows}
					switch {
					case errors.Is(out.Err, ErrNoRuntimeRules):
						pt.Unsupported = true
					case out.Err != nil:
						return nil, out.Err
					default:
						pt.Gbps, pt.Mpps = out.Result.Gbps, out.Result.Mpps
						pt.MeanLatencyUs = out.Result.Latency.MeanUs
						pt.RuleUpdates = out.Result.RuleUpdates
						pt.EMCEvictions = out.Result.EMCEvictions
					}
					curve.Points = append(curve.Points, pt)
				}
				fig.Curves = append(fig.Curves, curve)
			}
		}
	}
	return fig, nil
}
