package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/units"
)

var quickOpts = RunOpts{Duration: 2 * units.Millisecond, Warmup: units.Millisecond}

func TestRenderStaticTables(t *testing.T) {
	var b bytes.Buffer
	RenderTable1(&b)
	out := b.String()
	for _, want := range []string{"OvS-DPDK", "match/action", "ptnet", "pipeline", "Lua"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
	b.Reset()
	RenderTable2(&b)
	out = b.String()
	for _, want := range []string{"4096", "flow control", "MAC learning"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 missing %q", want)
		}
	}
	b.Reset()
	RenderTable5(&b)
	if !strings.Contains(b.String(), "QEMU") {
		t.Error("table 5 missing the BESS remark")
	}
}

func TestFigureStructureAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fig, err := Figure4a(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	// 7 switches × 3 sizes × 2 directions.
	if len(fig.Pts) != 42 {
		t.Fatalf("points = %d", len(fig.Pts))
	}
	for _, pt := range fig.Pts {
		if pt.Unsupported {
			t.Errorf("unexpected unsupported point %+v", pt)
		}
		if pt.Gbps <= 0 || pt.Gbps > 20.2 {
			t.Errorf("point out of range: %+v", pt)
		}
	}
	var b bytes.Buffer
	RenderFigure(&b, fig, true)
	out := b.String()
	if !strings.Contains(out, "unidirectional") || !strings.Contains(out, "bidirectional") {
		t.Error("directions missing from render")
	}
	if !strings.Contains(out, "(paper)") {
		t.Error("compare columns missing")
	}
}

func TestFigure5MarksBESSUnsupported(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fig, err := Figure5(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	unsupported := 0
	for _, pt := range fig.Pts {
		if pt.Switch == "bess" && pt.Chain > 3 {
			if !pt.Unsupported {
				t.Errorf("bess chain %d not marked unsupported", pt.Chain)
			}
			unsupported++
		}
	}
	if unsupported != 6 { // chains 4,5 × 3 sizes
		t.Fatalf("unsupported points = %d", unsupported)
	}
	var b bytes.Buffer
	RenderFigure(&b, fig, false)
	if !strings.Contains(b.String(), "-") {
		t.Error("missing '-' markers in render")
	}
}

func TestRenderTable3And4(t *testing.T) {
	cells := []Table3Cell{
		{Switch: "vpp", Scenario: "p2p", MeanUs: [3]float64{4.5, 5.9, 13.1}},
		{Switch: "bess", Scenario: "4-VNF loopback", Unsupported: true},
	}
	var b bytes.Buffer
	RenderTable3(&b, cells, true)
	out := b.String()
	if !strings.Contains(out, "4.5") || !strings.Contains(out, "paper") {
		t.Errorf("table 3 render: %q", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("unsupported marker missing")
	}
	b.Reset()
	RenderTable4(&b, []Table4Row{{Switch: "vale", MeanUs: 19.9}}, true)
	if !strings.Contains(b.String(), "19.9") || !strings.Contains(b.String(), "21") {
		t.Errorf("table 4 render: %q", b.String())
	}
}

func TestRenderResultFormats(t *testing.T) {
	res, err := Run(Config{Switch: "vpp", Scenario: Loopback, Chain: 2,
		ProbeEvery: 50 * units.Microsecond,
		Duration:   2 * units.Millisecond, Warmup: units.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	RenderResult(&b, res)
	out := b.String()
	for _, want := range []string{"VPP", "loopback", "chain=2", "Gbps", "rtt"} {
		if !strings.Contains(out, want) {
			t.Errorf("result render missing %q: %q", want, out)
		}
	}
}

func TestPaperDataCoversAllSwitches(t *testing.T) {
	for _, name := range Switches {
		if _, ok := PaperTable4[name]; !ok {
			t.Errorf("PaperTable4 missing %s", name)
		}
		rows, ok := PaperTable3[name]
		if !ok {
			t.Errorf("PaperTable3 missing %s", name)
			continue
		}
		if _, ok := rows["p2p"]; !ok {
			t.Errorf("PaperTable3[%s] missing p2p", name)
		}
		// BESS has no 4-VNF row (the paper prints "-").
		_, has4 := rows["4-VNF loopback"]
		if name == "bess" && has4 {
			t.Error("PaperTable3[bess] must not have a 4-VNF row")
		}
		if name != "bess" && !has4 {
			t.Errorf("PaperTable3[%s] missing 4-VNF row", name)
		}
	}
}

func TestCSVExports(t *testing.T) {
	fig := &Figure{ID: "4a", Scenario: P2P, Pts: []ThroughputPoint{
		{Switch: "vpp", FrameLen: 64, Gbps: 10, Mpps: 14.88, Chain: 1},
		{Switch: "bess", FrameLen: 64, Bidir: true, Gbps: 16.4, Mpps: 24.4, Chain: 1},
	}}
	var b bytes.Buffer
	if err := WriteFigureCSV(&b, fig); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "switch,scenario") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "bess,p2p,1,true,64,16.4000") {
		t.Fatalf("row = %q", lines[2])
	}

	b.Reset()
	if err := WriteFigure1CSV(&b, []Figure1Point{{Switch: "vale", Gbps: 5.7, MeanUs: 10, StdUs: 4.8}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "vale,5.7000,10.00,4.80") {
		t.Fatalf("fig1 csv = %q", b.String())
	}

	b.Reset()
	cells := []Table3Cell{
		{Switch: "vpp", Scenario: "p2p", MeanUs: [3]float64{4, 5, 13}},
		{Switch: "bess", Scenario: "4-VNF loopback", Unsupported: true},
	}
	if err := WriteTable3CSV(&b, cells); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(rows) != 4 { // header + three loads for vpp; bess skipped
		t.Fatalf("rows = %v", rows)
	}

	b.Reset()
	if err := WriteWindowsCSV(&b, []WindowPoint{{Start: 500 * units.Microsecond, Gbps: 9.5, Mpps: 14.1}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "500.0,9.5000,14.1000") {
		t.Fatalf("windows csv = %q", b.String())
	}
}
