package core

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/units"
)

// DefaultProbeEvery spaces latency probes so a measurement window gathers
// on the order of a thousand RTT samples.
const DefaultProbeEvery = 20 * units.Microsecond

// RPlusConfig returns the saturating, probe-free variant of cfg that an R⁺
// estimation runs. Exposing it lets batch orchestrators address the
// saturating run in their result cache, so an EstimateRPlus →
// MeasureLatencyAt ladder reuses one simulation.
func RPlusConfig(cfg Config) Config {
	cfg.Rate = 0
	cfg.ProbeEvery = 0
	return cfg
}

// rPlusFromResult extracts R⁺ (first-direction packets/second) from a
// saturating run's result.
func rPlusFromResult(cfg Config, res Result) (float64, error) {
	if len(res.Dirs) == 0 || res.Dirs[0].Mpps == 0 {
		return 0, fmt.Errorf("core: no traffic delivered estimating R+ for %s/%v", cfg.Switch, cfg.Scenario)
	}
	return res.Dirs[0].Mpps * 1e6, nil
}

// EstimateRPlus measures R⁺ — the paper's maximal forwarding rate, defined
// (§5.3, following Linguaglossa et al.) as the average throughput achieved
// under saturating input — in packets/second for the first direction.
func EstimateRPlus(cfg Config) (float64, error) {
	res, err := Run(RPlusConfig(cfg))
	if err != nil {
		return 0, err
	}
	return rPlusFromResult(cfg, res)
}

// LatencyPoint is one row cell of the paper's Table 3: mean RTT at a load
// expressed as a fraction of R⁺.
type LatencyPoint struct {
	Load    float64 // fraction of R⁺
	RPlus   float64 // packets/second
	Summary stats.Summary
}

// LatencyConfig returns the rate-controlled, probe-injecting variant of
// cfg that measures RTT at load·R⁺.
func LatencyConfig(cfg Config, rPlusPPS, load float64) Config {
	cfg.Rate = units.RateForPPS(rPlusPPS*load, cfg.withDefaults().FrameLen)
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = DefaultProbeEvery
	}
	return cfg
}

// MeasureLatencyAt measures RTT with offered load load·R⁺.
func MeasureLatencyAt(cfg Config, rPlusPPS, load float64) (LatencyPoint, error) {
	res, err := Run(LatencyConfig(cfg, rPlusPPS, load))
	if err != nil {
		return LatencyPoint{}, err
	}
	return LatencyPoint{Load: load, RPlus: rPlusPPS, Summary: res.Latency}, nil
}

// LatencyProfile runs the paper's 0.10/0.50/0.99·R⁺ ladder for one
// scenario configuration.
func LatencyProfile(cfg Config, loads []float64) ([]LatencyPoint, error) {
	rp, err := EstimateRPlus(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]LatencyPoint, 0, len(loads))
	for _, l := range loads {
		p, err := MeasureLatencyAt(cfg, rp, l)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Table3Loads are the paper's load levels.
var Table3Loads = []float64{0.10, 0.50, 0.99}
