package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/units"
)

// TestCalibrationSizes prints throughput across frame sizes (Fig. 4 shape).
func TestCalibrationSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	run := func(cfg Config) float64 {
		cfg.Duration = 5 * units.Millisecond
		cfg.Warmup = 3 * units.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		return res.Gbps
	}
	fmt.Printf("%-10s %9s %9s %9s %9s %9s %9s\n", "switch", "p2pb-256", "p2pb-1024", "v2vu-256", "v2vu-1024", "v2vb-1024", "p2vu-256")
	for _, name := range allSwitches {
		fmt.Printf("%-10s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f\n", name,
			run(Config{Switch: name, Scenario: P2P, Bidir: true, FrameLen: 256}),
			run(Config{Switch: name, Scenario: P2P, Bidir: true, FrameLen: 1024}),
			run(Config{Switch: name, Scenario: V2V, FrameLen: 256}),
			run(Config{Switch: name, Scenario: V2V, FrameLen: 1024}),
			run(Config{Switch: name, Scenario: V2V, Bidir: true, FrameLen: 1024}),
			run(Config{Switch: name, Scenario: P2V, FrameLen: 256}),
		)
	}
}

// TestCalibrationLoopback prints the chain-length sweep (Fig. 5 shape).
func TestCalibrationLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	run := func(cfg Config) string {
		cfg.Duration = 5 * units.Millisecond
		cfg.Warmup = 3 * units.Millisecond
		res, err := Run(cfg)
		if errors.Is(err, ErrChainTooLong) {
			return "     -"
		}
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		return fmt.Sprintf("%6.2f", res.Gbps)
	}
	for _, size := range []int{64, 1024} {
		fmt.Printf("loopback uni %dB:\n%-10s %6s %6s %6s %6s %6s\n", size, "switch", "n=1", "n=2", "n=3", "n=4", "n=5")
		for _, name := range allSwitches {
			row := fmt.Sprintf("%-10s", name)
			for n := 1; n <= 5; n++ {
				row += " " + run(Config{Switch: name, Scenario: Loopback, Chain: n, FrameLen: size})
			}
			fmt.Println(row)
		}
	}
}
