package core

// This file embeds the paper's reported measurements so the harness can
// print measured-vs-paper comparisons (EXPERIMENTS.md, `swbench --compare`).
// Values are read from the paper's text and Table 3/4; figure-only values
// (bars without printed numbers) are included where the text states them
// and omitted otherwise.

// PaperTable3 holds the paper's Table 3 (RTT in µs at 0.10/0.50/0.99·R⁺).
// Key: switch name → scenario label → three loads. BESS 4-VNF is absent
// (the paper prints "-").
var PaperTable3 = map[string]map[string][3]float64{
	"bess": {
		"p2p":            {4.0, 4.6, 6.4},
		"1-VNF loopback": {35, 15, 39},
		"2-VNF loopback": {67, 33, 136},
		"3-VNF loopback": {167, 55, 147},
	},
	"fastclick": {
		"p2p":            {5.3, 7.8, 8.4},
		"1-VNF loopback": {69, 26, 37},
		"2-VNF loopback": {164, 47, 70},
		"3-VNF loopback": {368, 73, 129},
		"4-VNF loopback": {978, 107, 149},
	},
	"ovs": {
		"p2p":            {4.3, 5.2, 9.6},
		"1-VNF loopback": {50, 23, 514},
		"2-VNF loopback": {124, 42, 909},
		"3-VNF loopback": {182, 90, 1052},
		"4-VNF loopback": {235, 124, 336},
	},
	"snabb": {
		"p2p":            {7.3, 11.3, 22},
		"1-VNF loopback": {70, 27, 74},
		"2-VNF loopback": {123, 53, 146},
		"3-VNF loopback": {186, 95, 266},
		"4-VNF loopback": {406, 365, 1181},
	},
	"vpp": {
		"p2p":            {4.5, 5.9, 13.1},
		"1-VNF loopback": {41, 20, 47},
		"2-VNF loopback": {116, 47, 74},
		"3-VNF loopback": {175, 73, 98},
		"4-VNF loopback": {231, 87, 131},
	},
	"vale": {
		"p2p":            {32, 34, 59},
		"1-VNF loopback": {32, 35, 65},
		"2-VNF loopback": {41, 51, 90},
		"3-VNF loopback": {54, 74, 132},
		"4-VNF loopback": {67, 100, 166},
	},
	"t4p4s": {
		"p2p":            {32, 31, 174},
		"1-VNF loopback": {169, 65, 2259},
		"2-VNF loopback": {274, 117, 3911},
		"3-VNF loopback": {434, 192, 5535},
		"4-VNF loopback": {548, 228, 7275},
	},
}

// PaperTable4 holds the paper's Table 4 (v2v RTT in µs at 1 Mpps).
var PaperTable4 = map[string]float64{
	"bess":      37,
	"fastclick": 45,
	"ovs":       43,
	"snabb":     67,
	"vpp":       42,
	"vale":      21,
	"t4p4s":     70,
}

// paperThroughputKey identifies one throughput data point stated in the
// paper's prose (Gbps).
type paperThroughputKey struct {
	Switch   string
	Scenario ScenarioKind
	FrameLen int
	Bidir    bool
}

// PaperThroughput64B holds the throughput values the paper's §5.2 text
// states explicitly (all at 64B).
var PaperThroughput64B = map[paperThroughputKey]float64{
	{"bess", P2P, 64, false}:      10,
	{"fastclick", P2P, 64, false}: 10,
	{"vpp", P2P, 64, false}:       10,
	{"snabb", P2P, 64, false}:     8.9,
	{"ovs", P2P, 64, false}:       8.05,
	{"vale", P2P, 64, false}:      5.56,
	{"t4p4s", P2P, 64, false}:     5.6,
	{"bess", P2P, 64, true}:       16,
	{"bess", P2V, 64, false}:      10,
	{"t4p4s", P2V, 64, false}:     4.04,
	{"vale", P2V, 64, false}:      5.77,
	{"bess", P2V, 64, true}:       11.38,
	{"vale", V2V, 64, false}:      10.50,
	{"snabb", V2V, 64, false}:     6.42,
}

// PaperThroughputFor returns the paper-stated throughput for a point, if
// the prose gives one. (Loopback bars are not stated numerically.)
func PaperThroughputFor(scn ScenarioKind, pt ThroughputPoint) (float64, bool) {
	v, ok := PaperThroughput64B[paperThroughputKey{pt.Switch, scn, pt.FrameLen, pt.Bidir}]
	return v, ok
}
