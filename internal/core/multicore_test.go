package core

import (
	"testing"

	"repro/internal/units"
)

// TestMultiCoreScaling: the paper's future-work extension. With the two
// p2p ports sharded across two cores, a CPU-limited switch's bidirectional
// aggregate should roughly double (until the 2×10G line cap).
func TestMultiCoreScaling(t *testing.T) {
	for _, name := range []string{"ovs", "t4p4s", "vpp", "fastclick", "bess"} {
		one := quickRun(t, Config{Switch: name, Scenario: P2P, Bidir: true, SUTCores: 1})
		two := quickRun(t, Config{Switch: name, Scenario: P2P, Bidir: true, SUTCores: 2})
		if two.Gbps < one.Gbps*0.99 {
			t.Errorf("%s: 2 cores (%.2f) below 1 core (%.2f)", name, two.Gbps, one.Gbps)
		}
		// CPU-limited switches must gain substantially.
		if name == "ovs" || name == "t4p4s" {
			if two.Gbps < one.Gbps*1.6 {
				t.Errorf("%s: 2 cores (%.2f) not ~2x of 1 core (%.2f)", name, two.Gbps, one.Gbps)
			}
		}
		// Never exceed the 20G line cap.
		if two.Gbps > 20.01 {
			t.Errorf("%s: 2 cores exceed line rate: %.2f", name, two.Gbps)
		}
	}
}

func TestMultiCoreLoopback(t *testing.T) {
	one := quickRun(t, Config{Switch: "vpp", Scenario: Loopback, Chain: 2, SUTCores: 1})
	four := quickRun(t, Config{Switch: "vpp", Scenario: Loopback, Chain: 2, SUTCores: 4})
	if four.Gbps < one.Gbps*1.5 {
		t.Errorf("4 cores (%.2f) not well above 1 core (%.2f)", four.Gbps, one.Gbps)
	}
}

func TestMultiCoreUnsupportedForVALE(t *testing.T) {
	_, err := Run(Config{Switch: "vale", Scenario: P2P, SUTCores: 2,
		Duration: units.Millisecond, Warmup: units.Millisecond})
	if err == nil {
		t.Fatal("multi-core VALE accepted")
	}
}

func TestMultiCoreDeterministic(t *testing.T) {
	cfg := Config{Switch: "ovs", Scenario: P2P, Bidir: true, SUTCores: 2,
		Duration: 2 * units.Millisecond, Warmup: units.Millisecond}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Gbps != b.Gbps {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}
