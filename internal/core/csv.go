package core

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV exports, for plotting the reproduced figures with external tools.

// WriteFigureCSV emits a throughput figure as CSV with the columns
// switch,scenario,chain,bidir,frame_bytes,gbps,mpps,unsupported.
func WriteFigureCSV(w io.Writer, fig *Figure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"switch", "scenario", "chain", "bidir", "frame_bytes", "gbps", "mpps", "unsupported"}); err != nil {
		return err
	}
	for _, pt := range fig.Pts {
		rec := []string{
			pt.Switch,
			fig.Scenario.String(),
			fmt.Sprint(pt.Chain),
			fmt.Sprint(pt.Bidir),
			fmt.Sprint(pt.FrameLen),
			fmt.Sprintf("%.4f", pt.Gbps),
			fmt.Sprintf("%.4f", pt.Mpps),
			fmt.Sprint(pt.Unsupported),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteChurnCSV emits the cache-churn family as CSV with the columns
// switch,zipf_skew,update_rate,flows,gbps,mpps,mean_rtt_us,rule_updates,
// emc_evictions,unsupported.
func WriteChurnCSV(w io.Writer, fig *ChurnFigure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"switch", "zipf_skew", "update_rate", "flows", "gbps", "mpps", "mean_rtt_us", "rule_updates", "emc_evictions", "unsupported"}); err != nil {
		return err
	}
	for _, c := range fig.Curves {
		for _, pt := range c.Points {
			rec := []string{
				c.Switch,
				fmt.Sprintf("%g", c.ZipfSkew),
				fmt.Sprintf("%g", c.UpdateRate),
				fmt.Sprint(pt.Flows),
				fmt.Sprintf("%.4f", pt.Gbps),
				fmt.Sprintf("%.4f", pt.Mpps),
				fmt.Sprintf("%.2f", pt.MeanLatencyUs),
				fmt.Sprint(pt.RuleUpdates),
				fmt.Sprint(pt.EMCEvictions),
				fmt.Sprint(pt.Unsupported),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScalingCSV emits the scaling-curve family as CSV with the columns
// switch,dispatch,frame_bytes,cores,effective_cores,gbps,mpps,unsupported.
func WriteScalingCSV(w io.Writer, fig *ScalingFigure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"switch", "dispatch", "frame_bytes", "cores", "effective_cores", "gbps", "mpps", "unsupported"}); err != nil {
		return err
	}
	for _, c := range fig.Curves {
		for _, pt := range c.Points {
			rec := []string{
				c.Switch,
				c.Dispatch,
				fmt.Sprint(c.FrameLen),
				fmt.Sprint(pt.Cores),
				fmt.Sprint(pt.EffectiveCores),
				fmt.Sprintf("%.4f", pt.Gbps),
				fmt.Sprintf("%.4f", pt.Mpps),
				fmt.Sprint(pt.Unsupported),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure1CSV emits the scatter data with the columns
// switch,gbps,mean_us,std_us.
func WriteFigure1CSV(w io.Writer, pts []Figure1Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"switch", "gbps", "mean_us", "std_us"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{p.Switch,
			fmt.Sprintf("%.4f", p.Gbps),
			fmt.Sprintf("%.2f", p.MeanUs),
			fmt.Sprintf("%.2f", p.StdUs)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV emits the latency table with the columns
// switch,scenario,load,mean_us.
func WriteTable3CSV(w io.Writer, cells []Table3Cell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"switch", "scenario", "load", "mean_us"}); err != nil {
		return err
	}
	for _, c := range cells {
		if c.Unsupported {
			continue
		}
		for i, load := range Table3Loads {
			if err := cw.Write([]string{c.Switch, c.Scenario,
				fmt.Sprintf("%.2f", load),
				fmt.Sprintf("%.2f", c.MeanUs[i])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteWindowsCSV emits a RunWindows series with the columns
// start_us,gbps,mpps.
func WriteWindowsCSV(w io.Writer, pts []WindowPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start_us", "gbps", "mpps"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			fmt.Sprintf("%.1f", p.Start.Microseconds()),
			fmt.Sprintf("%.4f", p.Gbps),
			fmt.Sprintf("%.4f", p.Mpps)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
