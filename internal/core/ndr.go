package core

import (
	"repro/internal/units"
)

// This file implements the RFC 2544 Non-Drop Rate binary search — the
// classical alternative to the paper's R⁺ methodology. The paper rejects
// it for software switches (footnote 3): "a binary search for the NDR is
// not suited for evaluating software solutions as it may converge to
// unreliable points due to even a single packet drop caused at the driver
// level". Both are provided so the critique can be demonstrated (see
// TestNDRUnderestimatesRPlus and examples/latencystudy).

// NDRResult is the outcome of a binary search for the non-drop rate.
type NDRResult struct {
	// PPS is the highest zero-loss rate found (packets/second).
	PPS float64
	// Trials records every probed rate and whether it passed.
	Trials []NDRTrial
}

// NDRTrial is one step of the search.
type NDRTrial struct {
	PPS    float64
	Lost   int64
	Passed bool
}

// NDROptions tunes the search.
type NDROptions struct {
	// Resolution stops the search when the bracket is this tight
	// (fraction of line rate; default 0.01).
	Resolution float64
	// MaxTrials bounds the number of measurement runs (default 12).
	MaxTrials int
	// LossTolerance allows this many lost frames per trial before
	// declaring failure (RFC 2544 uses 0).
	LossTolerance int64
}

// FindNDR runs the RFC 2544 binary search for cfg's scenario. Rates are
// probed between 1% and 100% of the frame-size line rate.
func FindNDR(cfg Config, opts NDROptions) (NDRResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return NDRResult{}, err
	}
	if opts.Resolution == 0 {
		opts.Resolution = 0.01
	}
	if opts.MaxTrials == 0 {
		opts.MaxTrials = 12
	}
	line := units.TenGigE.MaxPPS(cfg.FrameLen)
	lo, hi := 0.01*line, line
	var best float64
	var res NDRResult

	trial := func(pps float64) (bool, int64, error) {
		c := cfg
		c.Rate = units.RateForPPS(pps, cfg.FrameLen)
		c.ProbeEvery = 0
		r, err := Run(c)
		if err != nil {
			return false, 0, err
		}
		// Offered during the window vs delivered; the generator is CBR
		// so the expectation is exact up to one frame interval.
		offered := int64(pps * c.Duration.Seconds())
		lost := offered - r.Dirs[0].RxPackets
		if lost < 0 {
			lost = 0
		}
		return lost <= opts.LossTolerance, lost, nil
	}

	for i := 0; i < opts.MaxTrials && (hi-lo)/line > opts.Resolution; i++ {
		mid := (lo + hi) / 2
		ok, lost, err := trial(mid)
		if err != nil {
			return NDRResult{}, err
		}
		res.Trials = append(res.Trials, NDRTrial{PPS: mid, Lost: lost, Passed: ok})
		if ok {
			best = mid
			lo = mid
		} else {
			hi = mid
		}
	}
	res.PPS = best
	return res, nil
}
