package core

import (
	"errors"
	"fmt"

	"repro/internal/stats"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// Switches lists the seven evaluated switches in the paper's plotting order.
var Switches = []string{"bess", "fastclick", "vpp", "snabb", "ovs", "vale", "t4p4s"}

// FrameSizes are the evaluated packet sizes (§5.2).
var FrameSizes = []int{64, 256, 1024}

// RunOpts sets the per-measurement simulation windows. The zero value uses
// the defaults (20 ms window, 4 ms warmup); Quick shrinks runs for CI.
type RunOpts struct {
	Duration, Warmup units.Time
	Seed             uint64
}

// Quick is a fast profile for tests and demos.
var Quick = RunOpts{Duration: 4 * units.Millisecond, Warmup: 2 * units.Millisecond}

// Full is the profile used for EXPERIMENTS.md numbers.
var Full = RunOpts{Duration: 20 * units.Millisecond, Warmup: 4 * units.Millisecond}

func (o RunOpts) apply(cfg Config) Config {
	if o.Duration != 0 {
		cfg.Duration = o.Duration
	}
	if o.Warmup != 0 {
		cfg.Warmup = o.Warmup
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return cfg
}

// ThroughputPoint is one bar of a throughput figure.
type ThroughputPoint struct {
	Switch   string
	Display  string
	FrameLen int
	Chain    int // loopback only
	Bidir    bool
	Gbps     float64
	Mpps     float64
	// Unsupported marks configurations the switch cannot run (BESS with
	// more than 3 VMs); the paper renders these as missing bars.
	Unsupported bool
}

// Figure is a reproduced throughput figure: a series of points.
type Figure struct {
	ID       string
	Title    string
	Scenario ScenarioKind
	Pts      []ThroughputPoint
}

func throughputFigure(id, title string, scn ScenarioKind, chains []int, dirs []bool, o RunOpts) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, Scenario: scn}
	for _, chain := range chains {
		for _, bidir := range dirs {
			for _, size := range FrameSizes {
				for _, name := range Switches {
					pt, err := throughputPoint(o, Config{
						Switch: name, Scenario: scn, Chain: chain,
						FrameLen: size, Bidir: bidir,
					})
					if err != nil {
						return nil, err
					}
					fig.Pts = append(fig.Pts, pt)
				}
			}
		}
	}
	return fig, nil
}

var bothDirs = []bool{false, true}

func throughputPoint(o RunOpts, cfg Config) (ThroughputPoint, error) {
	info, err := switchdef.Lookup(cfg.Switch)
	if err != nil {
		return ThroughputPoint{}, err
	}
	pt := ThroughputPoint{
		Switch: cfg.Switch, Display: info.Display,
		FrameLen: cfg.FrameLen, Chain: cfg.Chain, Bidir: cfg.Bidir,
	}
	res, err := Run(o.apply(cfg))
	if errors.Is(err, ErrChainTooLong) {
		pt.Unsupported = true
		return pt, nil
	}
	if err != nil {
		return ThroughputPoint{}, err
	}
	pt.Gbps, pt.Mpps = res.Gbps, res.Mpps
	return pt, nil
}

// Figure4a reproduces the p2p throughput figure (uni + bidir × frame sizes).
func Figure4a(o RunOpts) (*Figure, error) {
	return throughputFigure("4a", "Throughput in physical-to-physical (p2p)", P2P, []int{1}, bothDirs, o)
}

// Figure4b reproduces the p2v throughput figure.
func Figure4b(o RunOpts) (*Figure, error) {
	return throughputFigure("4b", "Throughput in physical-to-virtual (p2v)", P2V, []int{1}, bothDirs, o)
}

// Figure4c reproduces the v2v throughput figure.
func Figure4c(o RunOpts) (*Figure, error) {
	return throughputFigure("4c", "Throughput in virtual-to-virtual (v2v)", V2V, []int{1}, bothDirs, o)
}

// Chains is the loopback chain-length sweep (§5.2: 1 to 5 VNFs).
var Chains = []int{1, 2, 3, 4, 5}

// Figure5 reproduces the unidirectional loopback throughput figure.
func Figure5(o RunOpts) (*Figure, error) {
	return throughputFigure("5", "Unidirectional throughput of loopback", Loopback, Chains, []bool{false}, o)
}

// Figure6 reproduces the bidirectional loopback throughput figure.
func Figure6(o RunOpts) (*Figure, error) {
	return throughputFigure("6", "Bidirectional throughput of loopback", Loopback, Chains, []bool{true}, o)
}

// Figure1Point is one switch's dot on the paper's opening scatter plots:
// bidirectional p2p 64B throughput vs. RTT at 0.95·R⁺.
type Figure1Point struct {
	Switch  string
	Display string
	Gbps    float64
	MeanUs  float64
	StdUs   float64
}

// Figure1 reproduces the scatter data of Fig. 1 (both panels share it).
func Figure1(o RunOpts) ([]Figure1Point, error) {
	var out []Figure1Point
	for _, name := range Switches {
		base := o.apply(Config{Switch: name, Scenario: P2P, FrameLen: 64, Bidir: true})
		res, err := Run(base)
		if err != nil {
			return nil, err
		}
		// Latency at 95% of the measured bidirectional rate, per dir.
		rp := res.Dirs[0].Mpps * 1e6
		lat, err := MeasureLatencyAt(base, rp, 0.95)
		if err != nil {
			return nil, err
		}
		info, _ := switchdef.Lookup(name)
		out = append(out, Figure1Point{
			Switch: name, Display: info.Display,
			Gbps:   res.Gbps,
			MeanUs: lat.Summary.MeanUs,
			StdUs:  lat.Summary.StdUs,
		})
	}
	return out, nil
}

// Table3Scenarios are the latency scenarios of Table 3 in column order.
type Table3Scenario struct {
	Label string
	Cfg   Config
}

// Table3Columns returns the p2p + 1..4-VNF loopback scenario set.
func Table3Columns() []Table3Scenario {
	cols := []Table3Scenario{{Label: "p2p", Cfg: Config{Scenario: P2P, FrameLen: 64}}}
	for n := 1; n <= 4; n++ {
		cols = append(cols, Table3Scenario{
			Label: fmt.Sprintf("%d-VNF loopback", n),
			Cfg:   Config{Scenario: Loopback, Chain: n, FrameLen: 64},
		})
	}
	return cols
}

// Table3Cell is one (switch, scenario) group of Table 3: mean RTT at the
// three loads.
type Table3Cell struct {
	Switch      string
	Scenario    string
	MeanUs      [3]float64 // at 0.10, 0.50, 0.99 · R⁺
	Unsupported bool
}

// Table3 reproduces the RTT latency table.
func Table3(o RunOpts) ([]Table3Cell, error) {
	var out []Table3Cell
	for _, name := range Switches {
		for _, col := range Table3Columns() {
			cfg := col.Cfg
			cfg.Switch = name
			cell := Table3Cell{Switch: name, Scenario: col.Label}
			pts, err := LatencyProfile(o.apply(cfg), Table3Loads)
			if errors.Is(err, ErrChainTooLong) {
				cell.Unsupported = true
				out = append(out, cell)
				continue
			}
			if err != nil {
				return nil, err
			}
			for i, p := range pts {
				cell.MeanUs[i] = p.Summary.MeanUs
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// Table4Row is one switch's v2v RTT at 1 Mpps (software timestamping).
type Table4Row struct {
	Switch  string
	Display string
	MeanUs  float64
	Summary stats.Summary
}

// Table4 reproduces the v2v latency table.
func Table4(o RunOpts) ([]Table4Row, error) {
	var out []Table4Row
	for _, name := range Switches {
		res, err := Run(o.apply(Config{
			Switch: name, Scenario: V2V, LatencyTopology: true,
			FrameLen:   64,
			Rate:       units.RateForPPS(1e6, 64), // "672 Mbps (=1 Mpps)"
			ProbeEvery: DefaultProbeEvery,
		}))
		if err != nil {
			return nil, err
		}
		info, _ := switchdef.Lookup(name)
		out = append(out, Table4Row{Switch: name, Display: info.Display,
			MeanUs: res.Latency.MeanUs, Summary: res.Latency})
	}
	return out, nil
}
