package core

import (
	"errors"
	"fmt"

	"repro/internal/stats"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// Switches lists the seven evaluated switches in the paper's plotting order.
var Switches = []string{"bess", "fastclick", "vpp", "snabb", "ovs", "vale", "t4p4s"}

// FrameSizes are the evaluated packet sizes (§5.2).
var FrameSizes = []int{64, 256, 1024}

// RunOpts sets the per-measurement simulation windows. The zero value uses
// the defaults (20 ms window, 4 ms warmup); Quick shrinks runs for CI.
type RunOpts struct {
	Duration, Warmup units.Time
	Seed             uint64
	// SimWorkers forwards Config.SimWorkers to every measurement (the
	// conservative-parallel engine; 0 keeps the sequential default).
	SimWorkers int
}

// Quick is a fast profile for tests and demos.
var Quick = RunOpts{Duration: 4 * units.Millisecond, Warmup: 2 * units.Millisecond}

// Full is the profile used for EXPERIMENTS.md numbers.
var Full = RunOpts{Duration: 20 * units.Millisecond, Warmup: 4 * units.Millisecond}

func (o RunOpts) apply(cfg Config) Config {
	if o.Duration != 0 {
		cfg.Duration = o.Duration
	}
	if o.Warmup != 0 {
		cfg.Warmup = o.Warmup
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	if o.SimWorkers != 0 {
		cfg.SimWorkers = o.SimWorkers
	}
	return cfg
}

// Apply merges the options into a config, exported for campaign builders.
func (o RunOpts) Apply(cfg Config) Config { return o.apply(cfg) }

// ThroughputPoint is one bar of a throughput figure.
type ThroughputPoint struct {
	Switch   string
	Display  string
	FrameLen int
	Chain    int // loopback only
	Bidir    bool
	Gbps     float64
	Mpps     float64
	// Unsupported marks configurations the switch cannot run (BESS with
	// more than 3 VMs); the paper renders these as missing bars.
	Unsupported bool
}

// Figure is a reproduced throughput figure: a series of points.
type Figure struct {
	ID       string
	Title    string
	Scenario ScenarioKind
	Pts      []ThroughputPoint
}

// throughputSpecs enumerates the measurement grid of one throughput figure
// in the paper's rendering order (chain, direction, frame size, switch).
func throughputSpecs(scn ScenarioKind, chains []int, dirs []bool, o RunOpts) []Config {
	var specs []Config
	for _, chain := range chains {
		for _, bidir := range dirs {
			for _, size := range FrameSizes {
				for _, name := range Switches {
					specs = append(specs, o.apply(Config{
						Switch: name, Scenario: scn, Chain: chain,
						FrameLen: size, Bidir: bidir,
					}))
				}
			}
		}
	}
	return specs
}

func throughputFigureOn(r Runner, id, title string, scn ScenarioKind, chains []int, dirs []bool, o RunOpts) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, Scenario: scn}
	specs := throughputSpecs(scn, chains, dirs, o)
	outs := r.RunAll(specs)
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	for i, cfg := range specs {
		info, err := switchdef.Lookup(cfg.Switch)
		if err != nil {
			return nil, err
		}
		pt := ThroughputPoint{
			Switch: cfg.Switch, Display: info.Display,
			FrameLen: cfg.FrameLen, Chain: cfg.Chain, Bidir: cfg.Bidir,
		}
		if errors.Is(outs[i].Err, ErrChainTooLong) {
			pt.Unsupported = true
		} else {
			pt.Gbps, pt.Mpps = outs[i].Result.Gbps, outs[i].Result.Mpps
		}
		fig.Pts = append(fig.Pts, pt)
	}
	return fig, nil
}

var bothDirs = []bool{false, true}

// figureGrids maps throughput figure ids to their grids.
var figureGrids = map[string]struct {
	Title  string
	Scn    ScenarioKind
	Chains []int
	Dirs   []bool
}{
	"4a": {"Throughput in physical-to-physical (p2p)", P2P, []int{1}, bothDirs},
	"4b": {"Throughput in physical-to-virtual (p2v)", P2V, []int{1}, bothDirs},
	"4c": {"Throughput in virtual-to-virtual (v2v)", V2V, []int{1}, bothDirs},
	"5":  {"Unidirectional throughput of loopback", Loopback, Chains, []bool{false}},
	"6":  {"Bidirectional throughput of loopback", Loopback, Chains, []bool{true}},
}

// FigureSpecs returns the flat measurement grid behind throughput figure
// id ("4a", "4b", "4c", "5", "6") — the spec set a campaign executes.
func FigureSpecs(id string, o RunOpts) ([]Config, error) {
	g, ok := figureGrids[id]
	if !ok {
		return nil, fmt.Errorf("core: no spec grid for figure %q", id)
	}
	return throughputSpecs(g.Scn, g.Chains, g.Dirs, o), nil
}

// FigureOn reproduces throughput figure id on runner r.
func FigureOn(r Runner, id string, o RunOpts) (*Figure, error) {
	g, ok := figureGrids[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown throughput figure %q", id)
	}
	return throughputFigureOn(r, id, g.Title, g.Scn, g.Chains, g.Dirs, o)
}

// Figure4a reproduces the p2p throughput figure (uni + bidir × frame sizes).
func Figure4a(o RunOpts) (*Figure, error) { return Figure4aOn(SerialRunner{}, o) }

// Figure4aOn is Figure4a on an explicit runner.
func Figure4aOn(r Runner, o RunOpts) (*Figure, error) { return FigureOn(r, "4a", o) }

// Figure4b reproduces the p2v throughput figure.
func Figure4b(o RunOpts) (*Figure, error) { return Figure4bOn(SerialRunner{}, o) }

// Figure4bOn is Figure4b on an explicit runner.
func Figure4bOn(r Runner, o RunOpts) (*Figure, error) { return FigureOn(r, "4b", o) }

// Figure4c reproduces the v2v throughput figure.
func Figure4c(o RunOpts) (*Figure, error) { return Figure4cOn(SerialRunner{}, o) }

// Figure4cOn is Figure4c on an explicit runner.
func Figure4cOn(r Runner, o RunOpts) (*Figure, error) { return FigureOn(r, "4c", o) }

// Chains is the loopback chain-length sweep (§5.2: 1 to 5 VNFs).
var Chains = []int{1, 2, 3, 4, 5}

// Figure5 reproduces the unidirectional loopback throughput figure.
func Figure5(o RunOpts) (*Figure, error) { return Figure5On(SerialRunner{}, o) }

// Figure5On is Figure5 on an explicit runner.
func Figure5On(r Runner, o RunOpts) (*Figure, error) { return FigureOn(r, "5", o) }

// Figure6 reproduces the bidirectional loopback throughput figure.
func Figure6(o RunOpts) (*Figure, error) { return Figure6On(SerialRunner{}, o) }

// Figure6On is Figure6 on an explicit runner.
func Figure6On(r Runner, o RunOpts) (*Figure, error) { return FigureOn(r, "6", o) }

// Figure1Point is one switch's dot on the paper's opening scatter plots:
// bidirectional p2p 64B throughput vs. RTT at 0.95·R⁺.
type Figure1Point struct {
	Switch  string
	Display string
	Gbps    float64
	MeanUs  float64
	StdUs   float64
}

// Figure1 reproduces the scatter data of Fig. 1 (both panels share it).
func Figure1(o RunOpts) ([]Figure1Point, error) { return Figure1On(SerialRunner{}, o) }

// Figure1On is Figure1 on an explicit runner. It runs two waves: first the
// saturating bidirectional p2p runs (one per switch, all independent),
// then the latency runs at 95% of each measured rate.
func Figure1On(r Runner, o RunOpts) ([]Figure1Point, error) {
	bases := make([]Config, len(Switches))
	for i, name := range Switches {
		bases[i] = o.apply(Config{Switch: name, Scenario: P2P, FrameLen: 64, Bidir: true})
	}
	satOuts := r.RunAll(bases)
	if err := firstErr(satOuts); err != nil {
		return nil, err
	}
	// Latency at 95% of the measured bidirectional rate, per dir.
	latSpecs := make([]Config, len(Switches))
	rps := make([]float64, len(Switches))
	for i := range bases {
		rps[i] = satOuts[i].Result.Dirs[0].Mpps * 1e6
		latSpecs[i] = LatencyConfig(bases[i], rps[i], 0.95)
	}
	latOuts := r.RunAll(latSpecs)
	if err := firstErr(latOuts); err != nil {
		return nil, err
	}
	var out []Figure1Point
	for i, name := range Switches {
		info, _ := switchdef.Lookup(name)
		out = append(out, Figure1Point{
			Switch: name, Display: info.Display,
			Gbps:   satOuts[i].Result.Gbps,
			MeanUs: latOuts[i].Result.Latency.MeanUs,
			StdUs:  latOuts[i].Result.Latency.StdUs,
		})
	}
	return out, nil
}

// Table3Scenarios are the latency scenarios of Table 3 in column order.
type Table3Scenario struct {
	Label string
	Cfg   Config
}

// Table3Columns returns the p2p + 1..4-VNF loopback scenario set.
func Table3Columns() []Table3Scenario {
	cols := []Table3Scenario{{Label: "p2p", Cfg: Config{Scenario: P2P, FrameLen: 64}}}
	for n := 1; n <= 4; n++ {
		cols = append(cols, Table3Scenario{
			Label: fmt.Sprintf("%d-VNF loopback", n),
			Cfg:   Config{Scenario: Loopback, Chain: n, FrameLen: 64},
		})
	}
	return cols
}

// Table3Cell is one (switch, scenario) group of Table 3: mean RTT at the
// three loads.
type Table3Cell struct {
	Switch      string
	Scenario    string
	MeanUs      [3]float64 // at 0.10, 0.50, 0.99 · R⁺
	Unsupported bool
}

// Table3 reproduces the RTT latency table.
func Table3(o RunOpts) ([]Table3Cell, error) { return Table3On(SerialRunner{}, o) }

// Table3On is Table3 on an explicit runner. Wave one runs every cell's
// saturating R⁺ estimation; wave two fans out the three rate-controlled
// latency runs per supported cell.
func Table3On(r Runner, o RunOpts) ([]Table3Cell, error) {
	type cellDef struct {
		cfg  Config
		cell Table3Cell
	}
	var cells []cellDef
	for _, name := range Switches {
		for _, col := range Table3Columns() {
			cfg := col.Cfg
			cfg.Switch = name
			cells = append(cells, cellDef{
				cfg:  o.apply(cfg),
				cell: Table3Cell{Switch: name, Scenario: col.Label},
			})
		}
	}
	satSpecs := make([]Config, len(cells))
	for i, c := range cells {
		satSpecs[i] = RPlusConfig(c.cfg)
	}
	satOuts := r.RunAll(satSpecs)
	if err := firstErr(satOuts); err != nil {
		return nil, err
	}
	// Supported cells fan out one latency spec per load level.
	var latSpecs []Config
	type latRef struct{ cell, load int }
	var refs []latRef
	rps := make([]float64, len(cells))
	for i, c := range cells {
		if errors.Is(satOuts[i].Err, ErrChainTooLong) {
			cells[i].cell.Unsupported = true
			continue
		}
		rp, err := rPlusFromResult(c.cfg, satOuts[i].Result)
		if err != nil {
			return nil, err
		}
		rps[i] = rp
		for li, load := range Table3Loads {
			latSpecs = append(latSpecs, LatencyConfig(c.cfg, rp, load))
			refs = append(refs, latRef{cell: i, load: li})
		}
	}
	latOuts := r.RunAll(latSpecs)
	if err := firstErr(latOuts); err != nil {
		return nil, err
	}
	for j, ref := range refs {
		if err := latOuts[j].Err; err != nil {
			return nil, err
		}
		cells[ref.cell].cell.MeanUs[ref.load] = latOuts[j].Result.Latency.MeanUs
	}
	out := make([]Table3Cell, len(cells))
	for i, c := range cells {
		out[i] = c.cell
	}
	return out, nil
}

// Table4Row is one switch's v2v RTT at 1 Mpps (software timestamping).
type Table4Row struct {
	Switch  string
	Display string
	MeanUs  float64
	Summary stats.Summary
}

// Table4Specs returns the flat v2v software-timestamping latency grid.
func Table4Specs(o RunOpts) []Config {
	specs := make([]Config, len(Switches))
	for i, name := range Switches {
		specs[i] = o.apply(Config{
			Switch: name, Scenario: V2V, LatencyTopology: true,
			FrameLen:   64,
			Rate:       units.RateForPPS(1e6, 64), // "672 Mbps (=1 Mpps)"
			ProbeEvery: DefaultProbeEvery,
		})
	}
	return specs
}

// Table4 reproduces the v2v latency table.
func Table4(o RunOpts) ([]Table4Row, error) { return Table4On(SerialRunner{}, o) }

// Table4On is Table4 on an explicit runner.
func Table4On(r Runner, o RunOpts) ([]Table4Row, error) {
	specs := Table4Specs(o)
	outs := r.RunAll(specs)
	if err := firstErr(outs); err != nil {
		return nil, err
	}
	var out []Table4Row
	for i, name := range Switches {
		res := outs[i].Result
		info, _ := switchdef.Lookup(name)
		out = append(out, Table4Row{Switch: name, Display: info.Display,
			MeanUs: res.Latency.MeanUs, Summary: res.Latency})
	}
	return out, nil
}
