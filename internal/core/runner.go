package core

import "errors"

// Runner executes a batch of independent measurement specs and returns one
// outcome per spec, in spec order regardless of completion order. It is the
// seam through which the experiment suites (Figure*, Table*) run their
// grids: SerialRunner is the in-package default, and internal/campaign
// provides a parallel, cached, panic-isolating implementation.
type Runner interface {
	RunAll(specs []Config) []SpecOutcome
}

// SpecOutcome is one cell's result of a batch execution.
type SpecOutcome struct {
	Result Result
	Err    error
}

// SerialRunner runs specs one after another on the calling goroutine — the
// paper's original single-threaded methodology.
type SerialRunner struct{}

// RunAll implements Runner.
func (SerialRunner) RunAll(specs []Config) []SpecOutcome {
	out := make([]SpecOutcome, len(specs))
	for i, cfg := range specs {
		out[i].Result, out[i].Err = Run(cfg)
	}
	return out
}

// Canonical returns cfg with all defaults applied: two configs describing
// the same measurement canonicalize identically, which is what
// content-addressed result caches key on.
func (cfg Config) Canonical() Config { return cfg.withDefaults() }

// firstErr returns the first hard error in outs, if any. ErrChainTooLong
// and ErrNoMultiCore are not failures: the suites render those cells as
// missing bars ("-"), matching the paper.
func firstErr(outs []SpecOutcome) error {
	for _, o := range outs {
		if o.Err != nil && !errors.Is(o.Err, ErrChainTooLong) && !errors.Is(o.Err, ErrNoMultiCore) && !errors.Is(o.Err, ErrNoRuntimeRules) {
			return o.Err
		}
	}
	return nil
}
