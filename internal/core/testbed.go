package core

import (
	"fmt"
	"os"

	"repro/internal/cost"
	"repro/internal/cpu"
	"repro/internal/multicore"
	"repro/internal/nic"
	"repro/internal/pcap"
	"repro/internal/pkt"
	"repro/internal/ptnet"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/switches/switchdef"
	"repro/internal/tgen"
	"repro/internal/topo"
	"repro/internal/units"
	"repro/internal/vhost"
	"repro/internal/vm"

	// Register the seven evaluated switches.
	_ "repro/internal/switches/bess"
	_ "repro/internal/switches/fastclick"
	_ "repro/internal/switches/ovs"
	_ "repro/internal/switches/snabb"
	_ "repro/internal/switches/t4p4s"
	_ "repro/internal/switches/vale"
	_ "repro/internal/switches/vpp"
)

// Testbed parameters mirroring the measurement platform (§5.1).
const (
	bufSize        = 2048
	genRingSize    = 4096 // generator-side NIC rings never drop
	defaultNICRing = 512
	valeITR        = 50 * units.Microsecond // NIC interrupt moderation for netmap
	ptnetNotify    = 3 * units.Microsecond  // ptnet doorbell→host wakeup
	guestIdleStep  = 400 * units.Nanosecond // guest core poll granularity when idle
	swStampNoise   = 2 * units.Microsecond  // software timestamping inaccuracy

	// Container-mode virtio parameters (virtio-user: no VM exits).
	containerScale  = 0.8
	containerNotify = 3 * units.Microsecond
)

// orOne resolves the per-direction vhost scale fallback chain.
func orOne(v ...float64) float64 {
	for _, x := range v {
		if x != 0 {
			return x
		}
	}
	return 1
}

// testbed is one assembled simulation.
type testbed struct {
	cfg   Config
	info  switchdef.Info
	sched *sim.Scheduler // partition 0 (SUT side); == scheds[0]
	rng   *sim.RNG
	model *cost.Model

	// Conservative-parallel engine state (SimWorkers > 1 with a usable
	// wire cut): one scheduler per partition plus the coordinating
	// runner. par == nil means sequential — every helper below
	// degenerates to tb.sched and the single shared pools.
	scheds []*sim.Scheduler
	cut    *topo.Cut
	par    *sim.PartitionedScheduler

	sw        switchdef.Switch
	fleet     *multicore.Fleet // non-nil when SUTCores > 1 (then sw == fleet)
	graph     *topo.Graph
	sutPolls  []*cpu.PollCore
	sutIRQ    *cpu.IRQCore
	portCount int

	hostPool *pkt.Pool
	// genPools holds one generator pool per partition: generators on
	// different partitions allocate concurrently, so they cannot share a
	// free list. Sequential runs use a single entry (partition 0),
	// preserving the old one-pool-for-all-generators behaviour. Which Go
	// allocation backs a frame's bytes is not simulation state, so the
	// split cannot move any output.
	genPools map[int]*pkt.Pool
	// pools tracks every packet pool the testbed created so Run can
	// release their free lists once the measurement is collected: a
	// saturating cell's pools grow to the high-water mark of in-flight
	// frames, and a campaign holds many cells' worth of testbeds between
	// GC cycles.
	pools []*pkt.Pool
	// poolParts records which partition owns each pool (missing = 0);
	// the owner runs its Reclaim hook at every dispatch window.
	poolParts map[*pkt.Pool]int

	gens     []*tgen.Generator
	sinks    []*tgen.Sink
	monitors []*vm.Monitor
	// controller is the control-plane churn actor (nil unless the graph
	// declares one).
	controller *ruleController

	guestCores []*cpu.PollCore

	// dirRx returns, per direction, the delivered-frame counter.
	dirRx []func() stats.Counter
	// hists are the latency histograms in use.
	hists []*stats.Histogram
	// dropFns report loss points.
	dropFns []func() int64
	// copyFns report host-side guest-memory copy counts (vhost devices).
	copyFns []func() int64
}

// newPool creates a packet pool registered for end-of-run release.
func (tb *testbed) newPool(bufSize int) *pkt.Pool {
	p := pkt.NewPool(bufSize)
	tb.pools = append(tb.pools, p)
	return p
}

// releasePools drops every pool's free list so the GC can reclaim the
// cell's buffer high-water mark as soon as the measurement is done.
// Single-threaded by the time it runs (all partition workers joined);
// Trim reclaims remotely freed buffers first.
func (tb *testbed) releasePools() {
	for _, p := range tb.pools {
		p.Trim(0)
	}
}

// partOf returns the partition holding the named topology node.
func (tb *testbed) partOf(name string) int {
	if tb.cut == nil {
		return 0
	}
	return tb.cut.Of[name]
}

// schedOf returns the scheduler driving the given partition.
func (tb *testbed) schedOf(part int) *sim.Scheduler {
	if tb.par == nil {
		return tb.sched
	}
	return tb.scheds[part]
}

// genPoolOf returns (creating on first use) the generator pool owned by
// the given partition.
func (tb *testbed) genPoolOf(part int) *pkt.Pool {
	if p, ok := tb.genPools[part]; ok {
		return p
	}
	p := tb.newPool(bufSize)
	tb.genPools[part] = p
	if part != 0 {
		tb.poolParts[p] = part
	}
	return p
}

// run advances the whole simulation to time to on whichever engine the
// testbed was built for.
func (tb *testbed) run(to units.Time) {
	if tb.par != nil {
		tb.par.RunUntil(to)
	} else {
		tb.sched.RunUntil(to)
	}
}

// steps returns the dispatched-step count aggregated across partitions.
func (tb *testbed) steps() uint64 {
	if tb.par != nil {
		return tb.par.Steps()
	}
	return tb.sched.Steps()
}

// partitions returns how many partitions the parallel engine runs on, or
// 0 for the sequential engine (keeping sequential Results bit-equal to
// their JSON round trip — the campaign cache relies on that).
func (tb *testbed) partitions() int {
	if tb.par != nil {
		return tb.par.Parts()
	}
	return 0
}

// sutPorts tracks what was attached to the switch, in port-index order.
type sutPort struct {
	dev     switchdef.DevPort
	nicPort *nic.Port     // non-nil for phys
	vdev    *vhost.Device // non-nil for vhost
	pdev    *ptnet.Port   // non-nil for ptnet
}

// build assembles the testbed for cfg.
func build(cfg Config) (*testbed, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	info, err := switchdef.Lookup(cfg.Switch)
	if err != nil {
		return nil, err
	}
	if cfg.Scenario == Loopback && !cfg.Containers && info.MaxLoopbackVNFs > 0 && cfg.Chain > info.MaxLoopbackVNFs {
		return nil, fmt.Errorf("%w: %s supports at most %d loopback VNFs", ErrChainTooLong, info.Display, info.MaxLoopbackVNFs)
	}

	tb := &testbed{
		cfg:       cfg,
		info:      info,
		rng:       sim.NewRNG(cfg.Seed),
		model:     cost.Default(),
		genPools:  make(map[int]*pkt.Pool),
		poolParts: make(map[*pkt.Pool]int),
	}

	// Partition discovery must precede assembly: endpoints are registered
	// on their partition's scheduler as they are wired. Interrupt-mode
	// switches (VALE) are excluded — a cut wire cannot deliver the IRQ
	// side effects arrive() charges at send time — and graphs without a
	// phys wire (v2v) have no positive-lookahead edge; both fall back to
	// the sequential engine.
	g, err := cfg.Graph()
	if err != nil {
		return nil, err
	}
	tb.graph = g
	parts := 1
	if cfg.SimWorkers > 1 && info.IOMode == switchdef.PollMode {
		tb.cut = topo.Partition(g, cfg.SimWorkers)
		parts = tb.cut.Parts
	}
	tb.scheds = make([]*sim.Scheduler, parts)
	for i := range tb.scheds {
		tb.scheds[i] = sim.NewScheduler()
	}
	tb.sched = tb.scheds[0]
	if parts > 1 {
		tb.par = sim.NewPartitioned(tb.scheds)
	}

	tb.hostPool = tb.newPool(bufSize)

	if cfg.SUTCores > 1 {
		if info.IOMode == switchdef.InterruptMode {
			return nil, fmt.Errorf("%w: interrupt-driven %s runs its data plane in one kernel context", ErrNoMultiCore, info.Display)
		}
		// Multi-core: one private switch instance per worker core behind
		// the fleet facade, so wiring fans out to every instance.
		fleet, err := multicore.New(multicore.Options{
			Cores:    cfg.SUTCores,
			Dispatch: cfg.Dispatch,
			Policy:   cfg.RSSPolicy,
			NUMA:     cost.DefaultNUMA(),
			QueueCap: tb.nicRing(),
			NewInstance: func(k int) (switchdef.Switch, error) {
				return switchdef.New(cfg.Switch, switchdef.Env{
					Model: tb.model,
					RNG:   tb.rng.Derive(fmt.Sprintf("mc-inst%d", k)),
					Pool:  tb.hostPool,
				})
			},
		})
		if err != nil {
			return nil, err
		}
		tb.sw = fleet
		tb.fleet = fleet
		tb.dropFns = append(tb.dropFns, fleet.Drops)
	} else {
		sw, err := switchdef.New(cfg.Switch, switchdef.Env{
			Model: tb.model,
			RNG:   tb.rng,
			Pool:  tb.hostPool,
		})
		if err != nil {
			return nil, err
		}
		tb.sw = sw
		// Interrupt-driven SUTs need their core before wiring (devices
		// bind their IRQ lines to it); poll-mode cores are created after
		// wiring.
		if info.IOMode == switchdef.InterruptMode {
			meter := cost.NewMeter(tb.model, tb.rng.Derive("sut"))
			tb.sutIRQ = cpu.NewIRQCore(tb.sched, "sut", meter, sw.Poll)
		}
	}

	if err := tb.wire(); err != nil {
		return nil, err
	}

	if tb.par != nil {
		// Buffers routinely cross the cut (frames travel, sinks free on
		// the far side), so every pool takes the shared-free path; each
		// owner reclaims its remote returns at its window edges.
		for _, p := range tb.pools {
			p.MarkShared()
			part := tb.poolParts[p]
			tb.par.OnWindow(part, p.Reclaim)
		}
	}

	if info.IOMode == switchdef.PollMode {
		if tb.fleet == nil {
			meter := cost.NewMeter(tb.model, tb.rng.Derive("sut"))
			c := cpu.NewPollCore(tb.sched, "sut", meter, tb.sw.Poll)
			c.Start(0)
			tb.sutPolls = append(tb.sutPolls, c)
		} else {
			for _, cp := range tb.fleet.Polls() {
				meter := cost.NewMeter(tb.model, tb.rng.Derive(cp.Name))
				c := cpu.NewPollCore(tb.sched, cp.Name, meter, cp.Fn)
				c.Start(0)
				tb.sutPolls = append(tb.sutPolls, c)
			}
		}
	}
	return tb, nil
}

// attach hands a SUT port to the switch and returns its port index.
func (tb *testbed) attach(sp *sutPort) int {
	tb.portCount++
	return tb.sw.AddPort(sp.dev)
}

// nicRing returns the SUT-side descriptor ring size (Table 2 tunings).
func (tb *testbed) nicRing() int {
	if tb.info.RxRingOverride > 0 {
		return tb.info.RxRingOverride
	}
	return defaultNICRing
}

// addPhysPair creates a SUT NIC port wired to a generator-side NIC port.
func (tb *testbed) addPhysPair(name string) (*sutPort, *nic.Port) {
	itr := units.Time(0)
	if tb.info.IOMode == switchdef.InterruptMode {
		itr = valeITR
	}
	sutNIC := nic.NewPort(nic.Config{
		Name:   "sut-" + name,
		TxRing: tb.nicRing(), RxRing: tb.nicRing(),
		ITR: itr,
	})
	genNIC := nic.NewPort(nic.Config{
		Name:   "gen-" + name,
		TxRing: genRingSize, RxRing: genRingSize,
		HWTimestamp: true,
	})
	nic.Connect(sutNIC, genNIC)
	if tb.sutIRQ != nil {
		sutNIC.BindIRQ(tb.sutIRQ)
	}
	if part := tb.partOf(name); part != 0 {
		tb.cutWire(sutNIC, genNIC, part)
	}
	tb.dropFns = append(tb.dropFns,
		func() int64 { return sutNIC.Stats.RxDropsFull + sutNIC.Stats.TxDropsFull },
		func() int64 { return genNIC.Stats.RxDropsFull + genNIC.Stats.TxDropsFull },
	)
	queues := 0
	if tb.graph != nil {
		if n := tb.graph.Node(name); n != nil {
			queues = n.Queues
		}
	}
	sp := &sutPort{
		dev: &switchdef.PhysPort{
			Port:     sutNIC,
			Unpriced: tb.info.IOMode == switchdef.InterruptMode,
			Queues:   queues,
		},
		nicPort: sutNIC,
	}
	return sp, genNIC
}

// cutWire severs the phys wire between a SUT NIC and its generator-side
// NIC into two cross-partition handoff queues — both directions, always:
// the wire is the partition boundary, and cutting only the loaded
// direction would leave the other partition without an inbound clock
// bound, letting it race arbitrarily far ahead and flood the queues. Each
// direction's lookahead (TxLatency + RxLatency) becomes the receiver's
// window bound; each receiver drains its queue at its window edges.
func (tb *testbed) cutWire(sutNIC, genNIC *nic.Port, genPart int) {
	toSUT := nic.CutWire(genNIC, 0)
	toGen := nic.CutWire(sutNIC, 0)
	tb.par.Link(genPart, 0, nic.WireLookahead(genNIC))
	tb.par.Link(0, genPart, nic.WireLookahead(sutNIC))
	tb.par.OnWindow(0, toSUT.Drain)
	tb.par.OnWindow(genPart, toGen.Drain)
}

// addGuestIf creates one guest interface pair (host DevPort + guest NetIf)
// of the kind the switch uses.
func (tb *testbed) addGuestIf(name string) (*sutPort, vm.NetIf) {
	if tb.info.VirtualIface == "ptnet" {
		dev := ptnet.New(ptnet.Config{Name: name, NotifyDelay: ptnetNotify})
		if tb.sutIRQ != nil {
			dev.BindHostIRQ(tb.sutIRQ)
		}
		tb.dropFns = append(tb.dropFns, dev.Drops)
		return &sutPort{dev: &switchdef.PtnetPort{Dev: dev}, pdev: dev}, &vm.PtnetIf{Dev: dev}
	}
	vcfg := vhost.Config{
		Name:      name,
		CostScale: tb.info.VhostCostScale,
		EnqScale:  tb.info.VhostEnqScale,
		DeqScale:  tb.info.VhostDeqScale,
	}
	if tb.cfg.Containers {
		// Container networking (virtio-user) skips the VM exit path:
		// cheaper crossings and faster notification.
		vcfg.EnqScale = containerScale * orOne(vcfg.EnqScale, vcfg.CostScale)
		vcfg.DeqScale = containerScale * orOne(vcfg.DeqScale, vcfg.CostScale)
		vcfg.GuestNotifyDelay = containerNotify
	}
	dev := vhost.New(vcfg)
	tb.dropFns = append(tb.dropFns, func() int64 { return dev.RxDrops() + dev.TxDrops() })
	tb.copyFns = append(tb.copyFns, func() int64 { return dev.HostCopies })
	return &sutPort{dev: &switchdef.VhostPort{Dev: dev}, vdev: dev}, &vm.VirtioIf{Dev: dev}
}

// guestCore starts a poll-mode guest vCPU running fn.
func (tb *testbed) guestCore(name string, fn cpu.PollFunc) *cpu.PollCore {
	m := cost.NewMeter(tb.model, tb.rng.Derive(name))
	c := cpu.NewPollCore(tb.sched, name, m, fn)
	c.IdleStep = guestIdleStep
	tb.guestCores = append(tb.guestCores, c)
	c.Start(0)
	return c
}

// frameSpec builds the synthetic single-flow template for a direction whose
// traffic enters the SUT on port `in` and must leave on port `out`.
func (tb *testbed) frameSpec(in, out int) pkt.FrameSpec {
	return pkt.FrameSpec{
		SrcMAC:   switchdef.PortMAC(in),
		DstMAC:   switchdef.PortMAC(out),
		SrcIP:    [4]byte{10, 0, byte(in), 1},
		DstIP:    [4]byte{10, 0, byte(out), 2},
		SrcPort:  1000 + uint16(in),
		DstPort:  2000 + uint16(out),
		FrameLen: tb.cfg.FrameLen,
	}
}

// nicGenerator starts a MoonGen TX thread on a generator NIC port. The
// actor registers on its topology node's partition (the generator side of
// its phys pair's wire) and draws frames from that partition's pool.
func (tb *testbed) nicGenerator(name string, port *nic.Port, spec pkt.FrameSpec, probes bool) *tgen.Generator {
	part := tb.partOf(name)
	cfg := tgen.Config{
		Name:  name,
		Port:  port,
		Pool:  tb.genPoolOf(part),
		Spec:  spec,
		Rate:  tb.cfg.Rate,
		Flows: tb.cfg.Flows,
		IMIX:  tb.cfg.IMIX,
	}
	if tb.cfg.ZipfSkew > 0 {
		cfg.ZipfSkew = tb.cfg.ZipfSkew
		cfg.RNG = tb.rng.Derive("zipf-" + name)
	}
	if probes && tb.cfg.ProbeEvery > 0 {
		cfg.ProbeEvery = tb.cfg.ProbeEvery
	}
	g := tgen.NewGenerator(tb.schedOf(part), cfg)
	g.Start(0)
	tb.gens = append(tb.gens, g)
	return g
}

// nicSink starts a MoonGen RX / monitor thread on a generator NIC port and
// registers it as the delivery endpoint of one direction; like the
// generator, it runs on its node's partition.
func (tb *testbed) nicSink(name string, port *nic.Port) *tgen.Sink {
	s := tgen.NewSink(tb.schedOf(tb.partOf(name)), name, port)
	s.Start(0)
	tb.sinks = append(tb.sinks, s)
	tb.dirRx = append(tb.dirRx, func() stats.Counter { return s.Rx })
	tb.hists = append(tb.hists, &s.Hist)
	return s
}

// guestMonitor starts FloWatcher/pkt-gen-RX on a guest interface and
// registers it as a direction endpoint.
func (tb *testbed) guestMonitor(name string, ifc vm.NetIf) *vm.Monitor {
	mo := &vm.Monitor{If: ifc, SWStampNoise: swStampNoise, RNG: tb.rng.Derive(name)}
	tb.monitors = append(tb.monitors, mo)
	tb.guestCore(name, mo.Poll)
	tb.dirRx = append(tb.dirRx, func() stats.Counter { return mo.Rx })
	tb.hists = append(tb.hists, &mo.Hist)
	return mo
}

// guestGenerator starts MoonGen/pkt-gen TX inside a VM. MoonGen's port
// profile caps virtio guests at 10 Gbps; pkt-gen over ptnet is unlimited.
func (tb *testbed) guestGenerator(name string, ifc vm.NetIf, pool *pkt.Pool, spec pkt.FrameSpec, probes bool) *vm.Generator {
	g := &vm.Generator{
		If:   ifc,
		Pool: pool,
		Spec: spec,
	}
	if tb.info.VirtualIface != "ptnet" {
		g.VirtualRate = units.TenGigE
	}
	if tb.cfg.Rate > 0 {
		g.VirtualRate = tb.cfg.Rate
	}
	if probes && tb.cfg.ProbeEvery > 0 {
		g.ProbeEvery = tb.cfg.ProbeEvery
	}
	m := cost.NewMeter(tb.model, tb.rng.Derive(name))
	vm.StartGenerator(tb.sched, name, g, m, 0)
	return g
}

// attachCapture dumps frames delivered to the first NIC sink (or guest
// monitor) into a pcap file; the returned function closes it.
func (tb *testbed) attachCapture(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := pcap.NewWriter(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	hook := func(at units.Time, b *pkt.Buf) { _ = w.WritePacket(at, b) }
	switch {
	case len(tb.sinks) > 0:
		tb.sinks[0].Capture = hook
	case len(tb.monitors) > 0:
		tb.monitors[0].Capture = hook
	default:
		f.Close()
		return nil, fmt.Errorf("core: no measurement endpoint to capture")
	}
	return func() { f.Close() }, nil
}
