package core

import (
	"testing"

	"repro/internal/units"
)

// TestNDRConvergesNearRPlusForStableSwitch: for a stable switch (VPP), the
// RFC 2544 NDR lands in the same region as R⁺.
func TestNDRConvergesNearRPlusForStableSwitch(t *testing.T) {
	base := Config{Switch: "vpp", Scenario: P2P,
		Duration: 3 * units.Millisecond, Warmup: units.Millisecond}
	rp, err := EstimateRPlus(base)
	if err != nil {
		t.Fatal(err)
	}
	ndr, err := FindNDR(base, NDROptions{LossTolerance: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ndr.PPS < 0.5*rp {
		t.Fatalf("NDR %.2f Mpps way below R+ %.2f Mpps", ndr.PPS/1e6, rp/1e6)
	}
	if ndr.PPS > rp*1.05 {
		t.Fatalf("NDR %.2f Mpps above R+ %.2f Mpps", ndr.PPS/1e6, rp/1e6)
	}
	if len(ndr.Trials) < 3 {
		t.Fatalf("trials = %d", len(ndr.Trials))
	}
}

// TestNDRUnderestimatesRPlusForUnstableSwitch demonstrates the paper's
// footnote-3 critique: a strict zero-loss binary search converges to
// unreliable low points for jittery switches, while the R⁺ average does
// not.
func TestNDRUnderestimatesRPlusForUnstableSwitch(t *testing.T) {
	base := Config{Switch: "t4p4s", Scenario: P2P,
		Duration: 3 * units.Millisecond, Warmup: units.Millisecond}
	rp, err := EstimateRPlus(base)
	if err != nil {
		t.Fatal(err)
	}
	ndr, err := FindNDR(base, NDROptions{}) // strict RFC 2544: zero loss
	if err != nil {
		t.Fatal(err)
	}
	if ndr.PPS > 0.9*rp {
		t.Fatalf("strict NDR %.2f Mpps suspiciously close to R+ %.2f Mpps for an unstable pipeline",
			ndr.PPS/1e6, rp/1e6)
	}
}

func TestMultiFlowStressesOvSCaches(t *testing.T) {
	// Single flow: everything hits the EMC. Many thousands of flows:
	// the 8192-entry EMC thrashes and throughput falls (the paper notes
	// its single-flow traffic makes OvS's flow cache moot — this is the
	// complementary ablation).
	one := quickRun(t, Config{Switch: "ovs", Scenario: P2P, Flows: 1})
	many := quickRun(t, Config{Switch: "ovs", Scenario: P2P, Flows: 20000})
	if many.Gbps >= one.Gbps {
		t.Fatalf("20k flows (%.2f) not below 1 flow (%.2f)", many.Gbps, one.Gbps)
	}
	// A port-based forwarder without per-flow state barely notices.
	vone := quickRun(t, Config{Switch: "vpp", Scenario: P2P, Flows: 1})
	vmany := quickRun(t, Config{Switch: "vpp", Scenario: P2P, Flows: 20000})
	if vmany.Gbps < vone.Gbps*0.95 {
		t.Fatalf("vpp multi-flow dropped: %.2f vs %.2f", vmany.Gbps, vone.Gbps)
	}
}

func TestContainersRelaxBESSChainCap(t *testing.T) {
	// The QEMU incompatibility does not apply to containers.
	res := quickRun(t, Config{Switch: "bess", Scenario: Loopback, Chain: 5, Containers: true})
	if res.Gbps <= 0 {
		t.Fatal("containerized 5-VNF BESS chain forwarded nothing")
	}
}

func TestContainersOutperformVMs(t *testing.T) {
	for _, name := range []string{"vpp", "ovs"} {
		vm := quickRun(t, Config{Switch: name, Scenario: Loopback, Chain: 2})
		ct := quickRun(t, Config{Switch: name, Scenario: Loopback, Chain: 2, Containers: true})
		if ct.Gbps <= vm.Gbps {
			t.Errorf("%s: containers (%.2f) not above VMs (%.2f)", name, ct.Gbps, vm.Gbps)
		}
	}
}

func TestIMIXTraffic(t *testing.T) {
	// The paper notes realistic (large-average) traffic is easy for
	// every switch; the classic IMIX (~340B average) saturates the link
	// even for VALE and t4p4s.
	for _, name := range []string{"vale", "t4p4s", "ovs"} {
		res := quickRun(t, Config{Switch: name, Scenario: P2P, IMIX: true})
		if res.Gbps < 9.5 {
			t.Errorf("%s IMIX p2p = %.2f Gbps, want ~line rate", name, res.Gbps)
		}
		// Mixed sizes: mean frame length ≈ 340B, not 64B.
		mean := float64(res.Dirs[0].RxBytes) / float64(res.Dirs[0].RxPackets)
		if mean < 300 || mean > 380 {
			t.Errorf("%s IMIX mean frame = %.0fB, want ~340", name, mean)
		}
	}
}

func TestBytesBasedGbpsMatchesFixedSize(t *testing.T) {
	// For fixed-size traffic the bytes-based accounting must agree with
	// the frame-size formula.
	res := quickRun(t, Config{Switch: "bess", Scenario: P2P, FrameLen: 256})
	want := units.WireGbps(res.Dirs[0].RxPackets, 256, res.Config.Duration)
	if diff := res.Dirs[0].Gbps - want; diff > 0.001 || diff < -0.001 {
		t.Fatalf("gbps = %f, want %f", res.Dirs[0].Gbps, want)
	}
}

func TestRunWindowsShowsSnabbWarmup(t *testing.T) {
	// With no warmup lead-in, the first windows run on cold LuaJIT traces
	// and must be slower than the steady state.
	pts, res, err := RunWindows(Config{Switch: "snabb", Scenario: P2P,
		Warmup: units.Microsecond, Duration: 8 * units.Millisecond}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("windows = %d", len(pts))
	}
	first, last := pts[0].Gbps, pts[len(pts)-1].Gbps
	if first >= last*0.85 {
		t.Fatalf("no warmup ramp: first=%.2f last=%.2f", first, last)
	}
	if res.Gbps <= 0 {
		t.Fatal("aggregate missing")
	}
}

func TestRunWindowsStableForBESS(t *testing.T) {
	pts, _, err := RunWindows(Config{Switch: "bess", Scenario: P2P,
		Warmup: units.Millisecond, Duration: 4 * units.Millisecond}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Gbps < 9.9 || p.Gbps > 10.1 {
			t.Fatalf("window at %v = %.2f Gbps", p.Start, p.Gbps)
		}
	}
}

func TestRunWindowsValidation(t *testing.T) {
	if _, _, err := RunWindows(Config{Switch: "vpp"}, 0); err == nil {
		t.Fatal("zero windows accepted")
	}
}
