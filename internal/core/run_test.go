package core

import (
	"testing"

	"repro/internal/units"
)

// TestBidirLatencyMergesBothDirections covers the two-histogram case: a
// bidirectional run fills one latency histogram per measurement endpoint,
// and Run must accumulate all of them instead of keeping the first
// non-empty one (which silently dropped the reverse direction's samples).
func TestBidirLatencyMergesBothDirections(t *testing.T) {
	base := Config{
		Switch: "vpp", Scenario: P2P,
		Rate:       2 * units.Gbps,
		ProbeEvery: DefaultProbeEvery,
		Duration:   4 * units.Millisecond,
		Warmup:     units.Millisecond,
	}
	uni, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	bi := base
	bi.Bidir = true
	both, err := Run(bi)
	if err != nil {
		t.Fatal(err)
	}
	if uni.Latency.N == 0 {
		t.Fatal("unidirectional run recorded no probes")
	}
	// With probes injected in both directions, the merged histogram must
	// hold roughly twice the unidirectional sample count; the old
	// first-non-empty logic would report ~1x.
	if both.Latency.N < uni.Latency.N*3/2 {
		t.Fatalf("bidir latency samples = %d, want >= 1.5x the unidirectional %d (reverse direction dropped?)",
			both.Latency.N, uni.Latency.N)
	}
	if both.Latency.MeanUs <= 0 {
		t.Fatalf("bidir latency mean = %v", both.Latency)
	}
}
