package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/switches/switchdef"
)

// This file renders experiments as fixed-width text tables — the output of
// the swbench CLI and the source of EXPERIMENTS.md.

// RenderFigure writes a throughput figure as one table per (direction ×
// chain) group, columns = frame sizes, rows = switches. With compare=true a
// "paper" column is added where the paper's prose states a value.
func RenderFigure(w io.Writer, fig *Figure, compare bool) {
	fmt.Fprintf(w, "Figure %s: %s (Gbps)\n", fig.ID, fig.Title)
	type groupKey struct {
		chain int
		bidir bool
	}
	groups := map[groupKey]map[string]map[int]ThroughputPoint{}
	var order []groupKey
	for _, pt := range fig.Pts {
		k := groupKey{pt.Chain, pt.Bidir}
		if groups[k] == nil {
			groups[k] = map[string]map[int]ThroughputPoint{}
			order = append(order, k)
		}
		if groups[k][pt.Switch] == nil {
			groups[k][pt.Switch] = map[int]ThroughputPoint{}
		}
		groups[k][pt.Switch][pt.FrameLen] = pt
	}
	for _, k := range order {
		dir := "unidirectional"
		if k.bidir {
			dir = "bidirectional"
		}
		if fig.Scenario == Loopback {
			fmt.Fprintf(w, "\n  %s, %d-VNF chain:\n", dir, k.chain)
		} else {
			fmt.Fprintf(w, "\n  %s:\n", dir)
		}
		fmt.Fprintf(w, "  %-10s", "switch")
		for _, size := range FrameSizes {
			fmt.Fprintf(w, " %7dB", size)
			if compare {
				fmt.Fprintf(w, " %9s", "(paper)")
			}
		}
		fmt.Fprintln(w)
		for _, name := range Switches {
			fmt.Fprintf(w, "  %-10s", name)
			for _, size := range FrameSizes {
				pt, ok := groups[k][name][size]
				switch {
				case !ok || pt.Unsupported:
					fmt.Fprintf(w, " %8s", "-")
				default:
					fmt.Fprintf(w, " %8.2f", pt.Gbps)
				}
				if compare {
					if ref, has := PaperThroughputFor(fig.Scenario, pt); has {
						fmt.Fprintf(w, " %9.2f", ref)
					} else {
						fmt.Fprintf(w, " %9s", "")
					}
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderChurnFigure writes the cache-churn family as one table per
// (flow mix × update rate) group, columns = active-flow counts, rows =
// switches; each cell is throughput with mean probe RTT alongside.
func RenderChurnFigure(w io.Writer, fig *ChurnFigure) {
	fmt.Fprintln(w, "Churn: p2p 64B throughput (Gbps) / mean RTT (us) vs. active flows and rule-update rate")
	type groupKey struct {
		skew float64
		rate float64
	}
	groups := map[groupKey]map[string]ChurnCurve{}
	var order []groupKey
	for _, c := range fig.Curves {
		k := groupKey{c.ZipfSkew, c.UpdateRate}
		if groups[k] == nil {
			groups[k] = map[string]ChurnCurve{}
			order = append(order, k)
		}
		groups[k][c.Switch] = c
	}
	for _, k := range order {
		mix := "round-robin flows"
		if k.skew > 0 {
			mix = fmt.Sprintf("zipf(%.1f) flows", k.skew)
		}
		fmt.Fprintf(w, "\n  %s, %.0f rule updates/s:\n", mix, k.rate)
		fmt.Fprintf(w, "  %-10s", "switch")
		for _, n := range ChurnFlowCounts {
			fmt.Fprintf(w, " %14df", n)
		}
		fmt.Fprintln(w)
		for _, name := range Switches {
			c, ok := groups[k][name]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "  %-10s", name)
			for _, pt := range c.Points {
				if pt.Unsupported {
					fmt.Fprintf(w, " %15s", "-")
				} else {
					fmt.Fprintf(w, " %7.2f/%6.1fu", pt.Gbps, pt.MeanLatencyUs)
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderScalingFigure writes the scaling-curve family as one table per
// (dispatch × frame size) group, columns = core counts, rows = switches.
func RenderScalingFigure(w io.Writer, fig *ScalingFigure) {
	fmt.Fprintln(w, "Scaling: bidirectional p2p throughput vs. SUT cores (Gbps)")
	type groupKey struct {
		dispatch string
		frameLen int
	}
	groups := map[groupKey]map[string]ScalingCurve{}
	var order []groupKey
	for _, c := range fig.Curves {
		k := groupKey{c.Dispatch, c.FrameLen}
		if groups[k] == nil {
			groups[k] = map[string]ScalingCurve{}
			order = append(order, k)
		}
		groups[k][c.Switch] = c
	}
	for _, k := range order {
		fmt.Fprintf(w, "\n  %s dispatch, %dB frames:\n", k.dispatch, k.frameLen)
		fmt.Fprintf(w, "  %-10s", "switch")
		for _, n := range ScalingCores {
			fmt.Fprintf(w, " %6d-c", n)
		}
		fmt.Fprintln(w)
		for _, name := range Switches {
			c, ok := groups[k][name]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "  %-10s", name)
			for _, pt := range c.Points {
				if pt.Unsupported {
					fmt.Fprintf(w, " %8s", "-")
				} else {
					fmt.Fprintf(w, " %8.2f", pt.Gbps)
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderFigure1 writes the scatter data of Fig. 1.
func RenderFigure1(w io.Writer, pts []Figure1Point) {
	fmt.Fprintln(w, "Figure 1: bidirectional p2p, 64B — throughput vs RTT at 0.95·R⁺")
	fmt.Fprintf(w, "  %-10s %10s %12s %12s\n", "switch", "Gbps", "mean RTT us", "std RTT us")
	for _, p := range pts {
		fmt.Fprintf(w, "  %-10s %10.2f %12.1f %12.1f\n", p.Switch, p.Gbps, p.MeanUs, p.StdUs)
	}
}

// RenderTable1 writes the design-space taxonomy (paper Table 1) from the
// switch registry.
func RenderTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: taxonomy of the evaluated switches")
	fmt.Fprintf(w, "  %-10s %-15s %-13s %-13s %-11s %-8s %-10s %s\n",
		"switch", "architecture", "paradigm", "processing", "virt iface", "reprog", "languages", "main purpose")
	for _, name := range Switches {
		info, err := switchdef.Lookup(name)
		if err != nil {
			continue
		}
		arch := "modular"
		if info.SelfContained {
			arch = "self-contained"
		}
		fmt.Fprintf(w, "  %-10s %-15s %-13s %-13s %-11s %-8s %-10s %s\n",
			info.Display, arch, info.Paradigm, info.ProcessingModel,
			info.VirtualIface, info.Reprogrammability, info.Languages, info.MainPurpose)
	}
}

// RenderTable2 writes the parameter tunings (paper Table 2).
func RenderTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: applied parameter tunings")
	for _, name := range Switches {
		info, err := switchdef.Lookup(name)
		if err != nil || info.Tuning == "" {
			continue
		}
		fmt.Fprintf(w, "  %-10s %s\n", info.Display, info.Tuning)
	}
}

// RenderTable3 writes the RTT latency table, optionally with the paper's
// values inline.
func RenderTable3(w io.Writer, cells []Table3Cell, compare bool) {
	fmt.Fprintln(w, "Table 3: RTT latency (µs) for p2p and loopback, 64B")
	byScenario := map[string]map[string]Table3Cell{}
	var scenarios []string
	for _, c := range cells {
		if byScenario[c.Scenario] == nil {
			byScenario[c.Scenario] = map[string]Table3Cell{}
			scenarios = append(scenarios, c.Scenario)
		}
		byScenario[c.Scenario][c.Switch] = c
	}
	// Dedup preserve first-seen order.
	seen := map[string]bool{}
	var ordered []string
	for _, s := range scenarios {
		if !seen[s] {
			seen[s] = true
			ordered = append(ordered, s)
		}
	}
	for _, scn := range ordered {
		fmt.Fprintf(w, "\n  %s (loads 0.10 / 0.50 / 0.99 · R⁺):\n", scn)
		for _, name := range Switches {
			c, ok := byScenario[scn][name]
			if !ok {
				continue
			}
			if c.Unsupported {
				fmt.Fprintf(w, "  %-10s %28s\n", name, "-")
				continue
			}
			fmt.Fprintf(w, "  %-10s %8.1f %8.1f %8.1f", name, c.MeanUs[0], c.MeanUs[1], c.MeanUs[2])
			if compare {
				if ref, ok := PaperTable3[name][scn]; ok {
					fmt.Fprintf(w, "   (paper: %.1f / %.1f / %.1f)", ref[0], ref[1], ref[2])
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderTable4 writes the v2v latency table.
func RenderTable4(w io.Writer, rows []Table4Row, compare bool) {
	fmt.Fprintln(w, "Table 4: RTT latency (µs) for v2v at 1 Mpps (software timestamps)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %8.1f", r.Switch, r.MeanUs)
		if compare {
			if ref, ok := PaperTable4[r.Switch]; ok {
				fmt.Fprintf(w, "   (paper: %.0f)", ref)
			}
		}
		fmt.Fprintln(w)
	}
}

// RenderTable5 writes the use-case summary (paper Table 5).
func RenderTable5(w io.Writer) {
	fmt.Fprintln(w, "Table 5: software switch use cases")
	fmt.Fprintf(w, "  %-10s %-42s %s\n", "switch", "best at", "remarks")
	for _, name := range Switches {
		info, err := switchdef.Lookup(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "  %-10s %-42s %s\n", info.Display, info.BestAt, info.Remarks)
	}
}

// RenderResult writes one Run result compactly.
func RenderResult(w io.Writer, res Result) {
	cfg := res.Config
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", res.Display, cfg.Scenario)
	if cfg.Scenario == Loopback {
		fmt.Fprintf(&b, " chain=%d", cfg.Chain)
	}
	dir := "uni"
	if cfg.Bidir {
		dir = "bidir"
	}
	fmt.Fprintf(&b, " %dB %s: %.2f Gbps (%.2f Mpps", cfg.FrameLen, dir, res.Gbps, res.Mpps)
	for _, d := range res.Dirs {
		fmt.Fprintf(&b, "; dir %.2f", d.Gbps)
	}
	fmt.Fprintf(&b, ") drops=%d sut-busy=%.0f%%", res.Drops, res.SUTBusyFrac*100)
	if res.EffectiveCores > 0 {
		fmt.Fprintf(&b, " cores=%d/%d(%s)", res.EffectiveCores, cfg.SUTCores, cfg.Dispatch)
	}
	if res.Latency.N > 0 {
		fmt.Fprintf(&b, " rtt: %s", res.Latency)
	}
	fmt.Fprintln(w, b.String())
}
