package core

import (
	"fmt"

	"repro/internal/nic"
	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/topo"
	"repro/internal/vm"
)

// wire builds the scenario topology onto the switch by compiling the
// config's declarative graph, mirroring the paper's Fig. 3 placements:
// the SUT (and everything it drives) on NUMA node 0, MoonGen TX/RX on
// node 1 behind the physical wires.
func (tb *testbed) wire() error {
	// build() already compiled and stored the graph (it needs it for
	// partition discovery before any endpoint is registered).
	return topo.Compile(tb.graph, newAssembler(tb))
}

// asmPort is what the assembler remembers about one attached SUT port.
type asmPort struct {
	gen  *nic.Port // phys pair: the generator-side NIC behind the wire
	ifc  vm.NetIf  // guest if: the guest-side interface
	pool *pkt.Pool // guest if: the owning VM's packet pool
}

// assembler materializes a topology graph into a testbed; it implements
// topo.Assembler. Placement primitives (addPhysPair, addGuestIf, attach,
// frameSpec, the endpoint starters) stay on testbed — the assembler
// decides what to call with which ports, the testbed knows how.
type assembler struct {
	tb      *testbed
	ports   map[int]asmPort
	vmPools map[string]*pkt.Pool
}

func newAssembler(tb *testbed) *assembler {
	return &assembler{
		tb:      tb,
		ports:   make(map[int]asmPort),
		vmPools: make(map[string]*pkt.Pool),
	}
}

// AddPhysPair implements topo.Assembler.
func (a *assembler) AddPhysPair(name string) (int, error) {
	sp, gen := a.tb.addPhysPair(name)
	p := a.tb.attach(sp)
	a.ports[p] = asmPort{gen: gen}
	return p, nil
}

// AddGuestIf implements topo.Assembler. Guest interfaces of the same VM
// share one guest packet pool.
func (a *assembler) AddGuestIf(name, vmName string) (int, error) {
	pool, ok := a.vmPools[vmName]
	if !ok {
		pool = a.tb.newPool(bufSize)
		a.vmPools[vmName] = pool
	}
	sp, ifc := a.tb.addGuestIf(name)
	p := a.tb.attach(sp)
	a.ports[p] = asmPort{ifc: ifc, pool: pool}
	return p, nil
}

// CrossConnect implements topo.Assembler.
func (a *assembler) CrossConnect(x, y int) error {
	return a.tb.sw.CrossConnect(x, y)
}

// Generator implements topo.Assembler.
func (a *assembler) Generator(name string, at, egress int, probes bool) error {
	a.tb.nicGenerator(name, a.ports[at].gen, a.tb.frameSpec(at, egress), probes)
	return nil
}

// GuestGenerator implements topo.Assembler.
func (a *assembler) GuestGenerator(name string, at, egress int, probes bool) error {
	p := a.ports[at]
	a.tb.guestGenerator(name, p.ifc, p.pool, a.tb.frameSpec(at, egress), probes)
	return nil
}

// Sink implements topo.Assembler.
func (a *assembler) Sink(name string, at int) error {
	a.tb.nicSink(name, a.ports[at].gen)
	return nil
}

// Monitor implements topo.Assembler.
func (a *assembler) Monitor(name string, at int) error {
	a.tb.guestMonitor(name, a.ports[at].ifc)
	return nil
}

// Controller implements topo.Assembler: the control-plane actor programs
// the switch facade directly (multi-core runs broadcast through the
// fleet), stepping on the SUT partition's scheduler. With no update rate
// configured it stays idle — a declared controller with nothing to do.
func (a *assembler) Controller(name string) error {
	if a.tb.cfg.RuleUpdateRate <= 0 {
		return nil
	}
	c := newRuleController(a.tb.schedOf(a.tb.partOf(name)), name, a.tb.sw, a.tb.cfg.RuleUpdateRate)
	c.Start(0)
	a.tb.controller = c
	return nil
}

// VNF implements topo.Assembler. An empty app picks the switch's native
// chain VNF: a guest VALE instance over ptnet, DPDK l2fwd otherwise.
func (a *assembler) VNF(name string, pa, pb, srcMAC, rewriteAB, rewriteBA int, app string) error {
	if app == "" {
		if a.tb.info.VirtualIface == "ptnet" {
			app = "vale"
		} else {
			app = "l2fwd"
		}
	}
	switch app {
	case "vale":
		fwd := &vm.ValeFwd{A: a.ports[pa].ifc, B: a.ports[pb].ifc, Pool: a.ports[pa].pool}
		a.tb.guestCore(name, fwd.Poll)
	case "l2fwd":
		fwd := &vm.L2Fwd{
			A: a.ports[pa].ifc, B: a.ports[pb].ifc,
			OwnMAC: switchdef.PortMAC(srcMAC),
		}
		if rewriteAB != topo.NoPort {
			mac := switchdef.PortMAC(rewriteAB)
			fwd.RewriteAB = &mac
		}
		if rewriteBA != topo.NoPort {
			mac := switchdef.PortMAC(rewriteBA)
			fwd.RewriteBA = &mac
		}
		a.tb.guestCore(name, fwd.Poll)
	default:
		return fmt.Errorf("core: unknown VNF app %q", app)
	}
	return nil
}
