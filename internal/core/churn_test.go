package core

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/topo"
	"repro/internal/units"
)

// churnCfg is the shared churn cell of these tests: mid-run rule edits
// against a Zipf flow mix, probes on (so rule-edit stalls show in RTT).
func churnCfg(name string) Config {
	return Config{Switch: name, Scenario: P2P, FrameLen: 64,
		Flows: 8192, ZipfSkew: 1.1, RuleUpdateRate: 10000,
		ProbeEvery: 100 * units.Microsecond,
		Duration:   2 * units.Millisecond, Warmup: units.Millisecond}
}

// TestChurnGoldenDigests pins full Result JSON digests for the mid-run
// rule-churn path on every programmable switch: the controller schedule,
// each switch's rule lowering and cache invalidation, the Zipf flow
// draw, and the RuleUpdates/EMCEvictions counters all feed the digest.
// Re-pin only with an argued equivalence (see DESIGN.md §3.7).
func TestChurnGoldenDigests(t *testing.T) {
	cases := []struct {
		name   string
		digest string
	}{
		{"ovs", "e579bc12b700791432fcf5f22f7d1b65"},
		{"vpp", "afd04577735a4ccfa6f2098f6d25e8f3"},
		{"fastclick", "80e07d4d7e2470c412e53f5746596ff1"},
		{"t4p4s", "8204a6564bfbe6a07de3a13bfc07effe"},
	}
	for _, tc := range cases {
		res, err := Run(churnCfg(tc.name))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.RuleUpdates == 0 {
			t.Errorf("%s: no rule updates recorded in the measurement window", tc.name)
		}
		if got := resultDigest(t, res); got != tc.digest {
			t.Errorf("%s churn: digest %s, want %s (rule-churn path diverged)", tc.name, got, tc.digest)
		}
	}
}

// TestChurnEngineEquivalence: the churn cell is bit-identical under the
// sequential engine and the conservative parallel engine — the
// controller actor partitions like any other wire-boundary actor.
func TestChurnEngineEquivalence(t *testing.T) {
	cfg := churnCfg("ovs")
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SimWorkers = 4
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := resultDigest(t, seq), resultDigest(t, par); a != b {
		t.Fatalf("sequential digest %s != parallel digest %s", a, b)
	}
}

// TestChurnCountersAndEMCKnee: the acceptance behavior of the churn
// family — OvS's EMC evicts past its 8192-entry capacity and throughput
// degrades, while the update counter tracks the configured rate.
func TestChurnCountersAndEMCKnee(t *testing.T) {
	under := Config{Switch: "ovs", Scenario: P2P, FrameLen: 64, Flows: 2048,
		Duration: 2 * units.Millisecond, Warmup: units.Millisecond}
	over := under
	over.Flows = 32768
	ru, err := Run(under)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Run(over)
	if err != nil {
		t.Fatal(err)
	}
	if ro.EMCEvictions == 0 {
		t.Error("32768 flows: no EMC evictions past the 8192-entry capacity")
	}
	if ro.Gbps >= ru.Gbps {
		t.Errorf("EMC overflow did not degrade throughput: %.2f (32768f) >= %.2f (2048f)", ro.Gbps, ru.Gbps)
	}

	res, err := Run(churnCfg("ovs"))
	if err != nil {
		t.Fatal(err)
	}
	// 10k updates/s over a 2 ms window = 20 operations.
	if res.RuleUpdates != 20 {
		t.Errorf("RuleUpdates = %d, want 20 (10k ops/s over 2 ms)", res.RuleUpdates)
	}
}

// TestChurnValidate: every churn-knob violation is reported at once
// (errors.Join), and a non-programmable switch under rule churn fails
// with the typed ErrNoRuntimeRules.
func TestChurnValidate(t *testing.T) {
	bad := Config{Switch: "vale", Scenario: P2P,
		Flows: -1, ZipfSkew: -2, RuleUpdateRate: -5}
	err := bad.Validate()
	if err == nil {
		t.Fatal("invalid churn knobs validated clean")
	}
	for _, want := range []string{"Flows", "ZipfSkew", "RuleUpdateRate"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined validation error misses the %s violation: %v", want, err)
		}
	}

	skewNoFlows := Config{Switch: "ovs", Scenario: P2P, ZipfSkew: 1.1}
	if err := skewNoFlows.Validate(); err == nil {
		t.Error("ZipfSkew without Flows > 1 validated clean")
	}

	fixed := Config{Switch: "vale", Scenario: P2P, RuleUpdateRate: 1000}
	if err := fixed.Validate(); !errors.Is(err, ErrNoRuntimeRules) {
		t.Errorf("vale churn validation = %v, want ErrNoRuntimeRules", err)
	}
	if _, err := Run(fixed); !errors.Is(err, ErrNoRuntimeRules) {
		t.Errorf("vale churn run = %v, want ErrNoRuntimeRules", err)
	}

	// A custom topology can only take rule churn if it declares who
	// edits the rules.
	g := &topo.Graph{
		Nodes: []topo.Node{
			{Name: "p0", Kind: topo.KindPhysPair},
			{Name: "p1", Kind: topo.KindPhysPair},
			{Name: "tx", Kind: topo.KindGenerator, At: "p0"},
			{Name: "rx", Kind: topo.KindSink, At: "p1"},
		},
		Edges: []topo.Edge{{Kind: topo.EdgeCross, A: "p0", B: "p1"}},
	}
	noCtl := Config{Switch: "ovs", Scenario: Custom, Topology: g, RuleUpdateRate: 1000}
	if err := noCtl.Validate(); err == nil {
		t.Error("custom churn topology without a controller validated clean")
	}
	g.Nodes = append(g.Nodes, topo.Node{Name: "ctl", Kind: topo.KindController})
	withCtl := Config{Switch: "ovs", Scenario: Custom, Topology: g, RuleUpdateRate: 1000}
	if err := withCtl.Validate(); err != nil {
		t.Errorf("custom churn topology with a controller rejected: %v", err)
	}
}

// TestChurnFreeCacheKeysUnchanged: a config without churn knobs
// canonicalizes to JSON that never mentions them, so campaign cache keys
// of every pre-churn result are untouched by this feature.
func TestChurnFreeCacheKeysUnchanged(t *testing.T) {
	cfg := Config{Switch: "ovs", Scenario: P2P, FrameLen: 64}.Canonical()
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"ZipfSkew", "RuleUpdateRate"} {
		if strings.Contains(string(blob), field) {
			t.Errorf("churn-free canonical config leaks %s into the cache key: %s", field, blob)
		}
	}
}

// TestZipfSkewShiftsLoadToHotFlows: with a heavy-tailed flow mix the OvS
// EMC stays warm (hot flows dominate), so throughput at a flow count far
// past EMC capacity is strictly better than under the round-robin mix.
func TestZipfSkewShiftsLoadToHotFlows(t *testing.T) {
	rr := Config{Switch: "ovs", Scenario: P2P, FrameLen: 64, Flows: 32768,
		Duration: 2 * units.Millisecond, Warmup: units.Millisecond}
	zipf := rr
	zipf.ZipfSkew = 1.1
	r1, err := Run(rr)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(zipf)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Gbps <= r1.Gbps {
		t.Errorf("zipf(1.1) mix (%.2f Gbps) not above round-robin (%.2f Gbps) at 32768 flows", r2.Gbps, r1.Gbps)
	}
	if r2.EMCEvictions >= r1.EMCEvictions {
		t.Errorf("zipf(1.1) evictions (%d) not below round-robin (%d)", r2.EMCEvictions, r1.EMCEvictions)
	}
}
