package pkt

import (
	"encoding/binary"

	"repro/internal/units"
)

// FrameSpec describes the synthetic UDP-in-IPv4-in-Ethernet frames the
// traffic generators emit — the paper's "synthetic traffic of identical
// packets, corresponding to a single flow".
type FrameSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     [4]byte
	SrcPort, DstPort uint16
	FrameLen         int // total Ethernet frame length in bytes
}

// MinProbeFrameLen is the smallest frame that can carry a probe payload.
const MinProbeFrameLen = EthHdrLen + IPv4HdrLen + UDPHdrLen + probeLen

// Build writes the frame into buf (which must have FrameLen capacity).
func (s FrameSpec) Build(b *Buf) {
	b.SetLen(s.FrameLen)
	b.tmpl = nil // overwriting: the old image is irrelevant
	s.buildInto(b.data[:s.FrameLen])
}

// Template pre-serializes the frame image for flow index `flow` (0 for
// single-flow traffic). Generators build one Template per (spec, flow) and
// stamp emitted buffers with SetTemplate, deferring all byte work to the
// first consumer that actually reads the frame.
func (s FrameSpec) Template(flow int) *Template {
	p := make([]byte, s.FrameLen)
	s.buildInto(p)
	if flow != 0 {
		patchFlowBytes(p, s, flow)
	}
	return NewTemplate(p)
}

// buildInto serializes the frame into p (len must be FrameLen).
func (s FrameSpec) buildInto(p []byte) {
	if s.FrameLen < MinProbeFrameLen {
		panic("pkt: frame too short for headers")
	}
	EthHdr{Dst: s.DstMAC, Src: s.SrcMAC, EtherType: EtherTypeIPv4}.Put(p)
	ip := IPv4Hdr{
		TotalLen: uint16(s.FrameLen - EthHdrLen),
		TTL:      64,
		Proto:    ProtoUDP,
		Src:      s.SrcIP,
		Dst:      s.DstIP,
	}
	ip.Put(p[EthHdrLen:])
	udp := UDPHdr{
		SrcPort: s.SrcPort,
		DstPort: s.DstPort,
		Len:     uint16(s.FrameLen - EthHdrLen - IPv4HdrLen),
	}
	udp.Put(p[EthHdrLen+IPv4HdrLen:])
	for i := EthHdrLen + IPv4HdrLen + UDPHdrLen; i < s.FrameLen; i++ {
		p[i] = 0
	}
}

// Probe payload layout (inside the UDP payload), mimicking MoonGen's PTP
// timestamping packets: a magic marker, a sequence number, and the TX
// timestamp.
const (
	probeMagic  = 0x50545030 // "PTP0"
	probeLen    = 4 + 8 + 8
	probeOffset = EthHdrLen + IPv4HdrLen + UDPHdrLen
)

// MarkProbe stamps b as a latency probe with the given sequence number and
// transmit timestamp, writing the probe payload into the frame.
func MarkProbe(b *Buf, seq uint64, tx units.Time) {
	p := b.Bytes()
	binary.BigEndian.PutUint32(p[probeOffset:], probeMagic)
	binary.BigEndian.PutUint64(p[probeOffset+4:], seq)
	binary.BigEndian.PutUint64(p[probeOffset+12:], uint64(tx))
	b.Probe = true
	b.Seq = seq
	b.TxStamp = tx
}

// ProbeInfo extracts the probe sequence and TX timestamp from a frame, if it
// carries the probe marker.
func ProbeInfo(b *Buf) (seq uint64, tx units.Time, ok bool) {
	p := b.Bytes()
	if len(p) < probeOffset+probeLen {
		return 0, 0, false
	}
	if binary.BigEndian.Uint32(p[probeOffset:]) != probeMagic {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(p[probeOffset+4:]),
		units.Time(binary.BigEndian.Uint64(p[probeOffset+12:])),
		true
}

// PatchFlow rewrites an already-built frame to belong to flow index i of a
// multi-flow stream: the source MAC's low bytes and the UDP source port are
// offset by i. (The IPv4 header checksum does not cover either field, and
// the generators leave the UDP checksum zero, so no recomputation is
// needed.)
func PatchFlow(b *Buf, spec FrameSpec, i int) {
	patchFlowBytes(b.Bytes(), spec, i)
}

func patchFlowBytes(p []byte, spec FrameSpec, i int) {
	mac := spec.SrcMAC
	mac[4] += byte(i >> 8)
	mac[5] += byte(i)
	SetEthSrc(p, mac)
	binary.BigEndian.PutUint16(p[EthHdrLen+IPv4HdrLen:], spec.SrcPort+uint16(i))
}
