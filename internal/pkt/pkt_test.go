package pkt

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestPoolReuse(t *testing.T) {
	p := NewPool(2048)
	a := p.Get(64)
	if p.Live() != 1 || p.Allocated() != 1 {
		t.Fatalf("live=%d allocated=%d", p.Live(), p.Allocated())
	}
	a.Free()
	b := p.Get(128)
	if p.Allocated() != 1 {
		t.Fatalf("expected reuse, allocated=%d", p.Allocated())
	}
	if b.Len() != 128 {
		t.Fatalf("len=%d", b.Len())
	}
	if b.Probe || b.Seq != 0 || b.TxStamp != 0 {
		t.Fatal("metadata not reset on reuse")
	}
}

func TestPoolDoubleFreePanics(t *testing.T) {
	p := NewPool(64)
	b := p.Get(64)
	b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	b.Free()
}

func TestPoolGrows(t *testing.T) {
	p := NewPool(64)
	var bufs []*Buf
	for i := 0; i < 100; i++ {
		bufs = append(bufs, p.Get(64))
	}
	if p.Allocated() != 100 || p.Live() != 100 {
		t.Fatalf("allocated=%d live=%d", p.Allocated(), p.Live())
	}
	for _, b := range bufs {
		b.Free()
	}
	if p.Live() != 0 {
		t.Fatalf("live=%d after freeing all", p.Live())
	}
}

func TestBufCopyFrom(t *testing.T) {
	p := NewPool(256)
	src := p.Get(100)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i)
	}
	src.Seq, src.Probe, src.TxStamp = 42, true, 7*units.Microsecond
	dst := p.Get(64)
	dst.CopyFrom(src)
	if dst.Len() != 100 || !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("payload not copied")
	}
	if dst.Seq != 42 || !dst.Probe || dst.TxStamp != 7*units.Microsecond {
		t.Fatal("metadata not copied")
	}
}

func TestMACRoundTrip(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	s := m.String()
	if s != "de:ad:be:ef:00:01" {
		t.Fatalf("String = %q", s)
	}
	back, err := ParseMAC(s)
	if err != nil || back != m {
		t.Fatalf("ParseMAC(%q) = %v, %v", s, back, err)
	}
	if _, err := ParseMAC("zz:00:00:00:00:00"); err == nil {
		t.Fatal("bad MAC accepted")
	}
	if _, err := ParseMAC("short"); err == nil {
		t.Fatal("short MAC accepted")
	}
}

func TestMACClassification(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Fatal("broadcast misclassified")
	}
	uni := MAC{0x02, 0, 0, 0, 0, 1}
	if uni.IsBroadcast() || uni.IsMulticast() {
		t.Fatal("unicast misclassified")
	}
	multi := MAC{0x01, 0, 0x5e, 0, 0, 1}
	if !multi.IsMulticast() || multi.IsBroadcast() {
		t.Fatal("multicast misclassified")
	}
}

func TestEthRoundTripProperty(t *testing.T) {
	f := func(dst, src [6]byte, et uint16) bool {
		h := EthHdr{Dst: MAC(dst), Src: MAC(src), EtherType: et}
		var b [EthHdrLen]byte
		h.Put(b[:])
		got, err := ParseEth(b[:])
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEthAccessors(t *testing.T) {
	h := EthHdr{Dst: MAC{1, 2, 3, 4, 5, 6}, Src: MAC{7, 8, 9, 10, 11, 12}, EtherType: EtherTypeIPv4}
	var b [64]byte
	h.Put(b[:])
	if EthDst(b[:]) != h.Dst || EthSrc(b[:]) != h.Src {
		t.Fatal("accessor mismatch")
	}
	SetEthDst(b[:], MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff})
	if EthDst(b[:]) != (MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}) {
		t.Fatal("SetEthDst failed")
	}
	SetEthSrc(b[:], MAC{1, 1, 1, 1, 1, 1})
	if EthSrc(b[:]) != (MAC{1, 1, 1, 1, 1, 1}) {
		t.Fatal("SetEthSrc failed")
	}
}

func TestParseEthTruncated(t *testing.T) {
	if _, err := ParseEth(make([]byte, 13)); err != ErrTruncated {
		t.Fatalf("err = %v", err)
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(tos uint8, tl, id uint16, ttl, proto uint8, src, dst [4]byte) bool {
		h := IPv4Hdr{TOS: tos, TotalLen: tl, ID: id, TTL: ttl, Proto: proto, Src: src, Dst: dst}
		var b [IPv4HdrLen]byte
		h.Put(b[:])
		got, err := ParseIPv4(b[:])
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	h := IPv4Hdr{TotalLen: 50, TTL: 64, Proto: ProtoUDP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}}
	var b [IPv4HdrLen]byte
	h.Put(b[:])
	b[8] ^= 0xff // corrupt TTL
	if _, err := ParseIPv4(b[:]); err != ErrChecksum {
		t.Fatalf("err = %v, want checksum error", err)
	}
}

func TestIPv4RejectsNonIPv4(t *testing.T) {
	var b [IPv4HdrLen]byte
	b[0] = 0x60 // IPv6
	if _, err := ParseIPv4(b[:]); err != ErrVersion {
		t.Fatalf("err = %v", err)
	}
	if _, err := ParseIPv4(b[:10]); err != ErrTruncated {
		t.Fatalf("err = %v", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Classic RFC 1071 example header.
	b := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
		0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
	}
	if got := Checksum16(b); got != 0xb861 {
		t.Fatalf("checksum = %#04x, want 0xb861", got)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	f := func(sp, dp, l uint16) bool {
		h := UDPHdr{SrcPort: sp, DstPort: dp, Len: l}
		var b [UDPHdrLen]byte
		h.Put(b[:])
		got, err := ParseUDP(b[:])
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseUDP(make([]byte, 4)); err != ErrTruncated {
		t.Fatal("truncated UDP accepted")
	}
}

func TestFrameSpecBuildParses(t *testing.T) {
	p := NewPool(2048)
	spec := FrameSpec{
		SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2},
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 1234, DstPort: 5678, FrameLen: 64,
	}
	b := p.Get(64)
	spec.Build(b)
	if b.Len() != 64 {
		t.Fatalf("len=%d", b.Len())
	}
	eth, err := ParseEth(b.Bytes())
	if err != nil || eth.Dst != spec.DstMAC || eth.EtherType != EtherTypeIPv4 {
		t.Fatalf("eth = %+v, %v", eth, err)
	}
	ip, err := ParseIPv4(b.Bytes()[EthHdrLen:])
	if err != nil || ip.Proto != ProtoUDP || ip.TotalLen != 50 {
		t.Fatalf("ip = %+v, %v", ip, err)
	}
	udp, err := ParseUDP(b.Bytes()[EthHdrLen+IPv4HdrLen:])
	if err != nil || udp.DstPort != 5678 {
		t.Fatalf("udp = %+v, %v", udp, err)
	}
}

func TestProbeRoundTrip(t *testing.T) {
	p := NewPool(2048)
	spec := FrameSpec{FrameLen: 64, SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2}}
	b := p.Get(64)
	spec.Build(b)
	if _, _, ok := ProbeInfo(b); ok {
		t.Fatal("non-probe frame recognized as probe")
	}
	MarkProbe(b, 99, 123*units.Microsecond)
	seq, tx, ok := ProbeInfo(b)
	if !ok || seq != 99 || tx != 123*units.Microsecond {
		t.Fatalf("probe = %d, %v, %v", seq, tx, ok)
	}
	// Probe survives a copy (vhost path).
	c := p.Clone(b)
	seq, tx, ok = ProbeInfo(c)
	if !ok || seq != 99 || tx != 123*units.Microsecond {
		t.Fatal("probe lost in copy")
	}
}

func TestFrameTooShortPanics(t *testing.T) {
	p := NewPool(64)
	b := p.Get(40)
	defer func() {
		if recover() == nil {
			t.Fatal("short frame did not panic")
		}
	}()
	FrameSpec{FrameLen: 40}.Build(b)
}

func TestVLANPushPop(t *testing.T) {
	p := NewPool(2048)
	b := p.Get(64)
	FrameSpec{
		SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2},
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 1, DstPort: 2, FrameLen: 64,
	}.Build(b)
	orig := append([]byte(nil), b.Bytes()...)

	if _, ok := VLANID(b.Bytes()); ok {
		t.Fatal("untagged frame reports a VLAN")
	}
	PushVLAN(b, 100)
	if b.Len() != 68 {
		t.Fatalf("len after push = %d", b.Len())
	}
	id, ok := VLANID(b.Bytes())
	if !ok || id != 100 {
		t.Fatalf("vlan = %d, %v", id, ok)
	}
	// MACs untouched, inner payload after the tag intact.
	if EthDst(b.Bytes()) != (MAC{2, 0, 0, 0, 0, 2}) {
		t.Fatal("dst MAC moved")
	}
	if !PopVLAN(b) {
		t.Fatal("pop failed")
	}
	if b.Len() != 64 || string(b.Bytes()) != string(orig) {
		t.Fatal("pop did not restore the original frame")
	}
	if PopVLAN(b) {
		t.Fatal("pop on untagged frame succeeded")
	}
}

func TestVLANIDMasksPCP(t *testing.T) {
	p := NewPool(2048)
	b := p.Get(64)
	FrameSpec{SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2}, FrameLen: 64}.Build(b)
	PushVLAN(b, 0x0fff)
	// Set PCP bits on the wire; VLANID must mask them off.
	b.Bytes()[14] |= 0xe0
	id, ok := VLANID(b.Bytes())
	if !ok || id != 0x0fff {
		t.Fatalf("vlan = %#x", id)
	}
}

func TestPatchFlowVariesSrcFields(t *testing.T) {
	p := NewPool(2048)
	spec := FrameSpec{
		SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, FrameLen: 64,
	}
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		b := p.Get(64)
		spec.Build(b)
		PatchFlow(b, spec, i)
		key := string(b.Bytes()[6:12]) + string(b.Bytes()[EthHdrLen+IPv4HdrLen:EthHdrLen+IPv4HdrLen+2])
		if seen[key] {
			t.Fatalf("flow %d collides", i)
		}
		seen[key] = true
		// Destination stays fixed (the forwarding key).
		if EthDst(b.Bytes()) != spec.DstMAC {
			t.Fatal("dst MAC changed")
		}
		b.Free()
	}
}
