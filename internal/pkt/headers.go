package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// String formats m in the canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// ParseMAC parses a colon-separated hardware address.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	if len(s) != 17 {
		return m, fmt.Errorf("pkt: bad MAC %q", s)
	}
	for i := 0; i < 6; i++ {
		var b byte
		for j := 0; j < 2; j++ {
			c := s[i*3+j]
			switch {
			case c >= '0' && c <= '9':
				b = b<<4 | (c - '0')
			case c >= 'a' && c <= 'f':
				b = b<<4 | (c - 'a' + 10)
			case c >= 'A' && c <= 'F':
				b = b<<4 | (c - 'A' + 10)
			default:
				return MAC{}, fmt.Errorf("pkt: bad MAC %q", s)
			}
		}
		if i < 5 && s[i*3+2] != ':' {
			return MAC{}, fmt.Errorf("pkt: bad MAC %q", s)
		}
		m[i] = b
	}
	return m, nil
}

// IsBroadcast reports whether m is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// Broadcast is the all-ones address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// EtherType values used by the testbed.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100
)

// EthHdrLen is the length of an untagged Ethernet header.
const EthHdrLen = 14

// EthHdr is an Ethernet II header.
type EthHdr struct {
	Dst, Src  MAC
	EtherType uint16
}

// Errors returned by the header decoders.
var (
	ErrTruncated = errors.New("pkt: truncated header")
	ErrChecksum  = errors.New("pkt: bad IPv4 checksum")
	ErrVersion   = errors.New("pkt: not IPv4")
)

// ParseEth decodes an Ethernet header from the start of b.
func ParseEth(b []byte) (EthHdr, error) {
	var h EthHdr
	if len(b) < EthHdrLen {
		return h, ErrTruncated
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return h, nil
}

// Put encodes the header into the first EthHdrLen bytes of b.
func (h EthHdr) Put(b []byte) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.EtherType)
}

// EthDst reads only the destination address (the hot-path accessor L2
// switches use without a full parse).
func EthDst(b []byte) MAC {
	var m MAC
	copy(m[:], b[0:6])
	return m
}

// EthSrc reads only the source address.
func EthSrc(b []byte) MAC {
	var m MAC
	copy(m[:], b[6:12])
	return m
}

// SetEthDst overwrites the destination address in place.
func SetEthDst(b []byte, m MAC) { copy(b[0:6], m[:]) }

// SetEthSrc overwrites the source address in place.
func SetEthSrc(b []byte, m MAC) { copy(b[6:12], m[:]) }

// IPv4HdrLen is the length of an option-less IPv4 header.
const IPv4HdrLen = 20

// IPv4Hdr is an option-less IPv4 header.
type IPv4Hdr struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Proto    uint8
	Src, Dst [4]byte
}

// IP protocol numbers used by the testbed.
const (
	ProtoUDP uint8 = 17
	ProtoTCP uint8 = 6
)

// ParseIPv4 decodes an IPv4 header (without options) from the start of b,
// verifying version, length, and checksum.
func ParseIPv4(b []byte) (IPv4Hdr, error) {
	var h IPv4Hdr
	if len(b) < IPv4HdrLen {
		return h, ErrTruncated
	}
	if b[0] != 0x45 { // version 4, IHL 5
		return h, ErrVersion
	}
	if Checksum16(b[:IPv4HdrLen]) != 0 {
		return h, ErrChecksum
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Proto = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return h, nil
}

// Put encodes the header (with a freshly computed checksum) into the first
// IPv4HdrLen bytes of b.
func (h IPv4Hdr) Put(b []byte) {
	b[0] = 0x45
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	b[6], b[7] = 0, 0 // flags/fragment
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0 // checksum placeholder
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(b[10:12], Checksum16(b[:IPv4HdrLen]))
}

// Checksum16 computes the ones-complement checksum over b (the Internet
// checksum). Computing it over a header with a correct checksum field
// yields zero.
func Checksum16(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// UDPHdrLen is the length of a UDP header.
const UDPHdrLen = 8

// UDPHdr is a UDP header. The checksum is left zero (legal for IPv4), as
// high-speed traffic generators do.
type UDPHdr struct {
	SrcPort, DstPort uint16
	Len              uint16
}

// ParseUDP decodes a UDP header from the start of b.
func ParseUDP(b []byte) (UDPHdr, error) {
	var h UDPHdr
	if len(b) < UDPHdrLen {
		return h, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Len = binary.BigEndian.Uint16(b[4:6])
	return h, nil
}

// Put encodes the header into the first UDPHdrLen bytes of b.
func (h UDPHdr) Put(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Len)
	b[6], b[7] = 0, 0
}
