// Package pkt provides packet buffers, a free-list pool, and from-scratch
// Ethernet/IPv4/UDP header parsing and serialization.
//
// Buffers are single-owner: whichever component holds a *Buf is responsible
// for eventually freeing it (or handing it off). Copies — the expensive
// operation that vhost-user imposes and ptnet avoids — are always explicit.
package pkt

import (
	"fmt"

	"repro/internal/units"
)

// Buf is one packet buffer plus simulation metadata.
type Buf struct {
	data []byte // backing storage, fixed capacity
	len  int    // frame length

	// Seq is a generator-assigned sequence number.
	Seq uint64
	// Probe marks latency-measurement (PTP) packets.
	Probe bool
	// TxStamp is the probe's transmit timestamp: hardware (taken by the
	// NIC as the frame hits the wire) in p2p/loopback runs, software
	// (taken by the generator) in v2v runs.
	TxStamp units.Time
	// Ingress is the time the frame finished arriving at the last
	// receiving port (hardware RX timestamp).
	Ingress units.Time
	// AvailAt gates visibility to the next consumer (virtio guest
	// notification delay); zero means immediately visible.
	AvailAt units.Time

	pool   *Pool
	inPool bool
}

// Bytes returns the frame contents.
func (b *Buf) Bytes() []byte { return b.data[:b.len] }

// Len returns the frame length in bytes.
func (b *Buf) Len() int { return b.len }

// SetLen resizes the frame within the buffer's capacity.
func (b *Buf) SetLen(n int) {
	if n < 0 || n > cap(b.data) {
		panic(fmt.Sprintf("pkt: SetLen(%d) outside capacity %d", n, cap(b.data)))
	}
	b.data = b.data[:cap(b.data)]
	b.len = n
}

// CopyFrom replaces b's contents and metadata with src's. This is the
// primitive behind vhost-user's per-packet copies.
func (b *Buf) CopyFrom(src *Buf) {
	b.SetLen(src.len)
	copy(b.data[:src.len], src.data[:src.len])
	b.Seq = src.Seq
	b.Probe = src.Probe
	b.TxStamp = src.TxStamp
	b.Ingress = src.Ingress
	b.AvailAt = src.AvailAt
}

// Free returns the buffer to its pool. Freeing a pool-less buffer is a no-op;
// double frees panic.
func (b *Buf) Free() {
	if b.pool != nil {
		b.pool.put(b)
	}
}

// Pool is a free list of equal-capacity buffers. It grows on demand so that
// component buffering limits (rings) — not the pool — bound memory use.
type Pool struct {
	free    []*Buf
	bufSize int
	live    int // checked-out buffers
	total   int // ever allocated
}

// NewPool returns a pool of buffers with the given capacity each.
func NewPool(bufSize int) *Pool {
	if bufSize <= 0 {
		panic("pkt: non-positive buffer size")
	}
	return &Pool{bufSize: bufSize}
}

// Get returns a zero-metadata buffer of the given frame length.
func (p *Pool) Get(frameLen int) *Buf {
	if frameLen > p.bufSize {
		panic(fmt.Sprintf("pkt: frame %dB exceeds pool buffer size %dB", frameLen, p.bufSize))
	}
	var b *Buf
	if n := len(p.free); n > 0 {
		b = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		b = &Buf{data: make([]byte, p.bufSize), pool: p}
		p.total++
	}
	p.live++
	b.inPool = false
	b.len = frameLen
	b.Seq = 0
	b.Probe = false
	b.TxStamp = 0
	b.Ingress = 0
	b.AvailAt = 0
	return b
}

// Clone returns a pool buffer holding a copy of src.
func (p *Pool) Clone(src *Buf) *Buf {
	b := p.Get(src.len)
	b.CopyFrom(src)
	return b
}

func (p *Pool) put(b *Buf) {
	if b.inPool {
		panic("pkt: double free")
	}
	b.inPool = true
	p.live--
	p.free = append(p.free, b)
}

// Live returns the number of buffers currently checked out.
func (p *Pool) Live() int { return p.live }

// Allocated returns the number of buffers ever created by the pool.
func (p *Pool) Allocated() int { return p.total }
