// Package pkt provides packet buffers, a free-list pool, and from-scratch
// Ethernet/IPv4/UDP header parsing and serialization.
//
// Buffers are single-owner: whichever component holds a *Buf is responsible
// for eventually freeing it (or handing it off). Copies — the expensive
// operation that vhost-user imposes and ptnet avoids — are always explicit.
//
// # Lazy materialization
//
// Synthetic generator frames are identical per (FrameSpec, flow), so a Buf
// can carry a shared *Template instead of materialized bytes: Bytes()
// builds the contents on first use with a single copy, and CopyFrom/Clone
// on an unmaterialized buffer moves only metadata. Simulated cycle cost is
// charged by the components exactly as before — host bytes moving (or not)
// is invisible to the simulation. Anything that inspects or edits real
// bytes (probe stamping, pcap capture, header-parsing switches) goes
// through Bytes() and therefore transparently forces materialization.
package pkt

import (
	"fmt"
	"sync/atomic"

	"repro/internal/units"
)

// Buf is one packet buffer plus simulation metadata.
type Buf struct {
	data []byte // backing storage, fixed capacity
	len  int    // frame length

	// tmpl, when non-nil, is the frame image this buffer logically
	// contains; data[:len] is stale until materialize copies it in.
	tmpl *Template

	// Seq is a generator-assigned sequence number.
	Seq uint64
	// Probe marks latency-measurement (PTP) packets.
	Probe bool
	// TxStamp is the probe's transmit timestamp: hardware (taken by the
	// NIC as the frame hits the wire) in p2p/loopback runs, software
	// (taken by the generator) in v2v runs.
	TxStamp units.Time
	// Ingress is the time the frame finished arriving at the last
	// receiving port (hardware RX timestamp).
	Ingress units.Time
	// AvailAt gates visibility to the next consumer (virtio guest
	// notification delay); zero means immediately visible.
	AvailAt units.Time

	pool   *Pool
	inPool bool
	// nextFree links buffers on a shared pool's remote free stack
	// (see Pool.MarkShared); nil whenever the buffer is checked out.
	nextFree *Buf
}

// Bytes returns the frame contents, materializing them first if the buffer
// is template-backed.
func (b *Buf) Bytes() []byte {
	if b.tmpl != nil {
		b.materialize()
	}
	return b.data[:b.len]
}

// View returns the frame contents for read-only inspection without forcing
// materialization: a template-backed buffer exposes the shared image
// directly. Callers must not write through the returned slice — header
// parsing, MAC learning, and flow-key extraction belong here; rewrites go
// through Bytes(). (A buffer whose logical length outgrew its template
// image falls back to materializing, so the zero-extension is visible.)
func (b *Buf) View() []byte {
	if b.tmpl != nil {
		if b.len <= len(b.tmpl.data) {
			return b.tmpl.data[:b.len]
		}
		b.materialize()
	}
	return b.data[:b.len]
}

// Template returns the shared frame image backing b, or nil once the
// buffer has been materialized.
func (b *Buf) Template() *Template { return b.tmpl }

// materialize copies the template image into the buffer (one memcpy; the
// template is pre-serialized). Lengths can disagree only after an explicit
// SetLen on a lazy buffer; the image is truncated or zero-extended to
// match, mirroring what Build-then-SetLen would have produced.
func (b *Buf) materialize() {
	t := b.tmpl
	b.tmpl = nil
	n := copy(b.data[:b.len], t.data)
	for i := n; i < b.len; i++ {
		b.data[i] = 0
	}
}

// Materialized reports whether the frame's bytes are backed by real
// storage (false while the buffer only references a Template).
func (b *Buf) Materialized() bool { return b.tmpl == nil }

// SetTemplate makes b a metadata-only frame whose logical contents are t's
// image. No bytes move until someone calls Bytes().
func (b *Buf) SetTemplate(t *Template) {
	b.SetLen(len(t.data))
	b.tmpl = t
}

// Len returns the frame length in bytes.
func (b *Buf) Len() int { return b.len }

// SetLen resizes the frame within the buffer's capacity.
func (b *Buf) SetLen(n int) {
	if n < 0 || n > cap(b.data) {
		panic(fmt.Sprintf("pkt: SetLen(%d) outside capacity %d", n, cap(b.data)))
	}
	b.data = b.data[:cap(b.data)]
	b.len = n
}

// CopyFrom replaces b's contents and metadata with src's. This is the
// primitive behind vhost-user's per-packet copies. If src is still
// template-backed, only the template reference moves — the simulated copy
// cost is charged by the caller either way; host bytes are not part of the
// simulation.
func (b *Buf) CopyFrom(src *Buf) {
	b.SetLen(src.len)
	if src.tmpl != nil {
		b.tmpl = src.tmpl
	} else {
		b.tmpl = nil
		copy(b.data[:src.len], src.data[:src.len])
	}
	b.Seq = src.Seq
	b.Probe = src.Probe
	b.TxStamp = src.TxStamp
	b.Ingress = src.Ingress
	b.AvailAt = src.AvailAt
}

// Free returns the buffer to its pool. Freeing a pool-less buffer is a no-op;
// double frees panic.
func (b *Buf) Free() {
	if b.pool != nil {
		b.pool.put(b)
	}
}

// Template is an immutable, pre-serialized frame image shared by every
// lazy buffer of one (FrameSpec, flow) pair. Building it costs one full
// header serialization; every frame emitted against it afterwards costs
// nothing until (unless) its bytes are inspected.
type Template struct {
	data []byte
	id   uint64
}

// templateIDs hands out process-unique template identities. Atomic so
// templates may be built from any partition goroutine; the counter's order
// is irrelevant — only uniqueness matters.
var templateIDs atomic.Uint64

// NewTemplate wraps data (which the caller must never mutate afterwards)
// as a frame image with a fresh identity.
func NewTemplate(data []byte) *Template {
	return &Template{data: data, id: templateIDs.Add(1)}
}

// ID returns the template's process-unique, always-nonzero identity.
// Frames sharing a template are byte-identical, so the switch data planes
// key their classification memos on it.
func (t *Template) ID() uint64 { return t.id }

// Len returns the image's frame length.
func (t *Template) Len() int { return len(t.data) }

// Image returns a copy of the frame image (diagnostics/tests; the shared
// image itself must never be handed out mutable).
func (t *Template) Image() []byte {
	out := make([]byte, len(t.data))
	copy(out, t.data)
	return out
}

// Derive returns a new template whose image is t's with edit applied.
// This is how a VNF's deterministic header rewrite (l2fwd's MAC swap)
// stays template-backed: the edit runs once per distinct input template
// and every subsequent frame moves only its template pointer.
func (t *Template) Derive(edit func(data []byte)) *Template {
	data := make([]byte, len(t.data))
	copy(data, t.data)
	edit(data)
	return NewTemplate(data)
}

// Pool is a free list of equal-capacity buffers. It grows on demand so that
// component buffering limits (rings) — not the pool — bound memory use.
// Growth carves buffers out of slab allocations (DPDK mempool style) so
// warming a pool to its high-water mark costs a handful of allocations,
// not one per buffer.
type Pool struct {
	free    []*Buf
	bufSize int
	live    int // checked-out buffers
	total   int // ever allocated

	slabData []byte // unclaimed backing storage
	slabBufs []Buf  // unclaimed headers

	// shared marks a pool whose buffers may be freed from goroutines
	// other than the owner's (partitioned runs: a generator-side sink
	// frees frames the SUT partition's pool allocated, and vice versa).
	// Frees then route through remote — a lock-free Treiber stack —
	// which only the owning partition empties (Reclaim). Sequential
	// pools never set it and pay nothing.
	shared bool
	remote atomic.Pointer[Buf]
}

// slabCount is how many buffers each slab allocation provides.
const slabCount = 256

// NewPool returns a pool of buffers with the given capacity each.
func NewPool(bufSize int) *Pool {
	if bufSize <= 0 {
		panic("pkt: non-positive buffer size")
	}
	return &Pool{bufSize: bufSize}
}

// Get returns a zero-metadata buffer of the given frame length.
func (p *Pool) Get(frameLen int) *Buf {
	if frameLen > p.bufSize {
		panic(fmt.Sprintf("pkt: frame %dB exceeds pool buffer size %dB", frameLen, p.bufSize))
	}
	if len(p.free) == 0 {
		p.Reclaim() // cheaper than growing if remote frees are waiting
	}
	var b *Buf
	if n := len(p.free); n > 0 {
		b = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		if len(p.slabBufs) == 0 {
			p.slabData = make([]byte, slabCount*p.bufSize)
			p.slabBufs = make([]Buf, slabCount)
		}
		b = &p.slabBufs[0]
		p.slabBufs = p.slabBufs[1:]
		b.data = p.slabData[:p.bufSize:p.bufSize]
		p.slabData = p.slabData[p.bufSize:]
		b.pool = p
		p.total++
	}
	p.live++
	b.inPool = false
	b.len = frameLen
	b.tmpl = nil
	b.Seq = 0
	b.Probe = false
	b.TxStamp = 0
	b.Ingress = 0
	b.AvailAt = 0
	return b
}

// Clone returns a pool buffer holding a copy of src (metadata-only if src
// is still template-backed).
func (p *Pool) Clone(src *Buf) *Buf {
	b := p.Get(src.len)
	b.CopyFrom(src)
	return b
}

func (p *Pool) put(b *Buf) {
	if b.inPool {
		panic("pkt: double free")
	}
	b.inPool = true
	b.tmpl = nil // drop the template reference while parked
	if p.shared {
		// Possibly-foreign free: park on the remote stack; the owner
		// folds it back into the free list at its next Reclaim.
		for {
			head := p.remote.Load()
			b.nextFree = head
			if p.remote.CompareAndSwap(head, b) {
				return
			}
		}
	}
	p.live--
	p.free = append(p.free, b)
}

// MarkShared flags the pool as freed-from-anywhere: put() routes through a
// lock-free return stack instead of the (owner-only) free list. The
// partitioned engine marks every pool, since frames allocated on one side
// of a cut are routinely freed on the other. One-way door by design — the
// flag is only ever set before concurrent execution starts.
func (p *Pool) MarkShared() { p.shared = true }

// Reclaim folds remotely freed buffers back into the free list. Owner-only:
// the partitioned engine calls it at every dispatch-window edge, when the
// free list runs dry in Get, and before Trim. Between a remote free and the
// next Reclaim, Live overcounts by the buffers still parked on the stack.
func (p *Pool) Reclaim() {
	if !p.shared {
		return
	}
	b := p.remote.Swap(nil)
	for b != nil {
		next := b.nextFree
		b.nextFree = nil
		p.live--
		p.free = append(p.free, b)
		b = next
	}
}

// Trim releases free-list buffers beyond max, letting the GC reclaim their
// backing storage. Without it the free list pins every buffer a cell ever
// allocated (its high-water mark) for the life of the pool; callers that
// finish a measurement release the pool with Trim(0).
func (p *Pool) Trim(max int) {
	p.Reclaim()
	if max < 0 {
		max = 0
	}
	if len(p.free) <= max {
		return
	}
	for i := max; i < len(p.free); i++ {
		p.free[i] = nil
	}
	p.free = p.free[:max]
	if max == 0 {
		p.free = nil // release the spine too
		p.slabData, p.slabBufs = nil, nil
	}
}

// Live returns the number of buffers currently checked out.
func (p *Pool) Live() int { return p.live }

// Allocated returns the number of buffers ever created by the pool.
func (p *Pool) Allocated() int { return p.total }

// Idle returns the number of buffers parked on the free list.
func (p *Pool) Idle() int { return len(p.free) }
