package pkt

import (
	"bytes"
	"testing"
)

func lazySpec(frameLen int) FrameSpec {
	return FrameSpec{
		SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2},
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 1234, DstPort: 5678, FrameLen: frameLen,
	}
}

// TestTemplateMatchesBuild pins the lazy path to the eager one: a
// template-backed buffer must read back byte-for-byte what Build writes,
// for every frame size and flow index the generators use.
func TestTemplateMatchesBuild(t *testing.T) {
	p := NewPool(2048)
	for _, frameLen := range []int{64, 570, 1518} {
		for _, flow := range []int{0, 1, 7, 300} {
			spec := lazySpec(frameLen)
			eager := p.Get(frameLen)
			spec.Build(eager)
			if flow != 0 {
				PatchFlow(eager, spec, flow)
			}
			lazy := p.Get(frameLen)
			lazy.SetTemplate(spec.Template(flow))
			if lazy.Materialized() {
				t.Fatalf("len=%d flow=%d: buffer materialized before first read", frameLen, flow)
			}
			if !bytes.Equal(lazy.Bytes(), eager.Bytes()) {
				t.Fatalf("len=%d flow=%d: template bytes differ from Build+PatchFlow", frameLen, flow)
			}
			if !lazy.Materialized() {
				t.Fatalf("len=%d flow=%d: Bytes did not materialize", frameLen, flow)
			}
			eager.Free()
			lazy.Free()
		}
	}
}

// TestLazyCopyPropagatesTemplate verifies that copying an unmaterialized
// buffer moves only the template reference (the vhost copy path), that the
// copy still reads the right bytes, and that materializing the copy leaves
// the source lazy.
func TestLazyCopyPropagatesTemplate(t *testing.T) {
	p := NewPool(2048)
	spec := lazySpec(64)
	tmpl := spec.Template(0)

	src := p.Get(64)
	src.SetTemplate(tmpl)
	src.Seq = 42

	dst := p.Clone(src)
	if dst.Materialized() {
		t.Fatal("clone of a lazy buffer materialized")
	}
	if dst.Seq != 42 || dst.Len() != 64 {
		t.Fatalf("clone metadata = seq %d len %d", dst.Seq, dst.Len())
	}
	if !bytes.Equal(dst.Bytes(), tmpl.Image()) {
		t.Fatal("clone bytes differ from template image")
	}
	if src.Materialized() {
		t.Fatal("materializing the clone materialized the source")
	}

	// Mutating the materialized clone must not leak into the shared image.
	dst.Bytes()[EthHdrLen] = 0xFF
	if src.Bytes()[EthHdrLen] == 0xFF {
		t.Fatal("clone write corrupted the shared template")
	}

	// Copying a materialized buffer still copies real bytes.
	dst2 := p.Clone(dst)
	if !dst2.Materialized() {
		t.Fatal("clone of a materialized buffer stayed lazy")
	}
	if dst2.Bytes()[EthHdrLen] != 0xFF {
		t.Fatal("materialized clone lost its bytes")
	}
}

// TestLazyProbeMarkMaterializes checks that probe stamping — which writes
// into the payload — forces materialization and leaves the rest of the
// frame equal to the template image.
func TestLazyProbeMarkMaterializes(t *testing.T) {
	p := NewPool(2048)
	spec := lazySpec(64)
	b := p.Get(64)
	b.SetTemplate(spec.Template(0))
	MarkProbe(b, 7, 1000)
	if !b.Materialized() {
		t.Fatal("MarkProbe left the buffer lazy")
	}
	seq, tx, ok := ProbeInfo(b)
	if !ok || seq != 7 || tx != 1000 {
		t.Fatalf("probe = (%d, %v, %v)", seq, tx, ok)
	}
	// Headers must still come from the template image.
	eth, err := ParseEth(b.Bytes())
	if err != nil || eth.Src != spec.SrcMAC {
		t.Fatalf("eth after probe = %+v, %v", eth, err)
	}
}

// TestPoolGetResetsTemplate guards against a recycled buffer resurrecting
// the previous owner's template.
func TestPoolGetResetsTemplate(t *testing.T) {
	p := NewPool(2048)
	b := p.Get(64)
	b.SetTemplate(lazySpec(64).Template(0))
	b.Free()
	b2 := p.Get(64)
	if !b2.Materialized() {
		t.Fatal("recycled buffer still template-backed")
	}
}

// TestPoolTrim exercises the free-list release path.
func TestPoolTrim(t *testing.T) {
	p := NewPool(2048)
	bufs := make([]*Buf, 8)
	for i := range bufs {
		bufs[i] = p.Get(64)
	}
	for _, b := range bufs {
		b.Free()
	}
	if p.Idle() != 8 {
		t.Fatalf("idle = %d, want 8", p.Idle())
	}
	p.Trim(3)
	if p.Idle() != 3 {
		t.Fatalf("after Trim(3): idle = %d, want 3", p.Idle())
	}
	p.Trim(5) // larger than the free list: no-op
	if p.Idle() != 3 {
		t.Fatalf("after Trim(5): idle = %d, want 3", p.Idle())
	}
	p.Trim(0)
	if p.Idle() != 0 {
		t.Fatalf("after Trim(0): idle = %d, want 0", p.Idle())
	}
	// The pool still works after a full release.
	b := p.Get(128)
	if b.Len() != 128 {
		t.Fatalf("post-trim Get len = %d", b.Len())
	}
	b.Free()
	if p.Live() != 0 {
		t.Fatalf("live = %d, want 0", p.Live())
	}
}

// BenchmarkMaterialize compares the eager per-frame serialization the
// generators used to pay against the lazy template path (stamp only) and
// the worst case for laziness (stamp plus an immediate read).
func BenchmarkMaterialize(b *testing.B) {
	p := NewPool(2048)
	spec := lazySpec(64)
	tmpl := spec.Template(0)
	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := p.Get(64)
			spec.Build(buf)
			buf.Free()
		}
	})
	b.Run("template", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := p.Get(64)
			buf.SetTemplate(tmpl)
			buf.Free()
		}
	})
	b.Run("template+read", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := p.Get(64)
			buf.SetTemplate(tmpl)
			_ = buf.Bytes()[0]
			buf.Free()
		}
	})
}

// TestViewDoesNotMaterialize pins the read-only fast path: View on a
// template-backed buffer exposes the shared image without materializing,
// and falls back to Bytes when the frame is longer than the image
// (zero-extension).
func TestViewDoesNotMaterialize(t *testing.T) {
	p := NewPool(2048)
	spec := lazySpec(64)
	b := p.Get(64)
	b.SetTemplate(spec.Template(0))
	v := b.View()
	if b.Materialized() {
		t.Fatal("View materialized the buffer")
	}
	if !bytes.Equal(v, spec.Template(0).Image()) {
		t.Fatal("View bytes differ from the template image")
	}
	// A frame grown past the template image (the fastclick unstrip path)
	// must take the materialize path so the zero-extended tail is real.
	long := p.Get(1518)
	long.SetTemplate(spec.Template(0))
	long.SetLen(1518) // 64B image under a 1518B frame
	lv := long.View()
	if len(lv) != 1518 {
		t.Fatalf("long view = %dB", len(lv))
	}
	if !long.Materialized() {
		t.Fatal("oversized View did not materialize")
	}
	b.Free()
	long.Free()
}

// TestTemplateDerive checks that a derived template reads back exactly
// what edit wrote, without touching the parent image.
func TestTemplateDerive(t *testing.T) {
	spec := lazySpec(64)
	parent := spec.Template(0)
	before := append([]byte(nil), parent.Image()...)
	d := parent.Derive(func(data []byte) {
		SetEthSrc(data, MAC{2, 0xAA, 0, 0, 0, 1})
	})
	if !bytes.Equal(parent.Image(), before) {
		t.Fatal("Derive mutated the parent template")
	}
	if EthSrc(d.Image()) != (MAC{2, 0xAA, 0, 0, 0, 1}) {
		t.Fatal("derived image missing the edit")
	}
	if !bytes.Equal(d.Image()[EthHdrLen:], parent.Image()[EthHdrLen:]) {
		t.Fatal("derived image diverged beyond the edit")
	}
}
