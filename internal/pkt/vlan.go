package pkt

import "encoding/binary"

// 802.1Q VLAN tagging: insert/strip the 4-byte tag after the source MAC.
// Used by the OvS push_vlan/pop_vlan actions.

// VLANTagLen is the length of an 802.1Q tag.
const VLANTagLen = 4

// VLANID extracts the VLAN ID if the frame is tagged (ok=false otherwise).
func VLANID(b []byte) (id uint16, ok bool) {
	if len(b) < EthHdrLen+VLANTagLen {
		return 0, false
	}
	if binary.BigEndian.Uint16(b[12:14]) != EtherTypeVLAN {
		return 0, false
	}
	return binary.BigEndian.Uint16(b[14:16]) & 0x0fff, true
}

// PushVLAN inserts an 802.1Q tag with the given VLAN ID. The buffer grows
// by VLANTagLen; the frame must fit in the buffer's capacity.
func PushVLAN(b *Buf, id uint16) {
	old := b.Len()
	b.SetLen(old + VLANTagLen)
	data := b.Bytes()
	// Shift everything after the MAC addresses right by 4.
	copy(data[12+VLANTagLen:], data[12:old])
	binary.BigEndian.PutUint16(data[12:14], EtherTypeVLAN)
	binary.BigEndian.PutUint16(data[14:16], id&0x0fff)
}

// PopVLAN removes the outer 802.1Q tag, if present, and reports whether it
// did.
func PopVLAN(b *Buf) bool {
	data := b.Bytes()
	if _, ok := VLANID(data); !ok {
		return false
	}
	copy(data[12:], data[12+VLANTagLen:])
	b.SetLen(b.Len() - VLANTagLen)
	return true
}
