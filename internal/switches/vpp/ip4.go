package vpp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/units"
)

// The L3 data path: ip4-input → ip4-lookup → ip4-rewrite. Routes are
// installed with:
//
//	ip route add 10.1.0.0/16 via port1 02:00:00:00:00:02
//
// and interfaces opt into L3 with "set interface ip port0". The FIB is the
// mtrie in fib.go; adjacencies rewrite the Ethernet header (new dst MAC,
// port MAC as src) and decrement the TTL, recomputing the IPv4 checksum —
// a faithful miniature of VPP's ip4-rewrite.

// adjacency is one next hop.
type adjacency struct {
	port   int
	nhMAC  pkt.MAC
	srcMAC pkt.MAC
}

// ip4State hangs the L3 configuration off the Switch.
type ip4State struct {
	enabled map[int]bool
	fib     *Mtrie
	adjs    []adjacency // index+1 == Leaf
}

func (sw *Switch) ip4() *ip4State {
	if sw.l3 == nil {
		sw.l3 = &ip4State{enabled: map[int]bool{}, fib: NewMtrie()}
	}
	return sw.l3
}

// EnableIP4 puts a port into L3 mode (its RX feeds ip4-input).
func (sw *Switch) EnableIP4(port int) error {
	if err := sw.checkPort(port); err != nil {
		return err
	}
	sw.ip4().enabled[port] = true
	return nil
}

// AddRoute installs prefix → (egress port, next-hop MAC).
func (sw *Switch) AddRoute(cidr string, port int, nhMAC pkt.MAC) error {
	if err := sw.checkPort(port); err != nil {
		return err
	}
	prefix, plen, err := ParseCIDR(cidr)
	if err != nil {
		return err
	}
	l3 := sw.ip4()
	l3.adjs = append(l3.adjs, adjacency{
		port:   port,
		nhMAC:  nhMAC,
		srcMAC: pkt.MAC{0x02, 0x00, 0x5e, 0x00, 0x00, byte(port)},
	})
	return l3.fib.Insert(prefix, plen, Leaf(len(l3.adjs)))
}

// FIB exposes the mtrie (tests, examples).
func (sw *Switch) FIB() *Mtrie { return sw.ip4().fib }

// ipCLI handles the "ip route add" and "set interface ip" commands; it is
// called from CLI for commands it does not itself recognize.
func (sw *Switch) ipCLI(f []string) error {
	switch {
	case len(f) == 7 && f[0] == "ip" && f[1] == "route" && f[2] == "add" && f[4] == "via" && strings.HasPrefix(f[5], "port"):
		port, err := strconv.Atoi(strings.TrimPrefix(f[5], "port"))
		if err != nil {
			return fmt.Errorf("vpp: bad port %q", f[5])
		}
		mac, err := pkt.ParseMAC(f[6])
		if err != nil {
			return err
		}
		return sw.AddRoute(f[3], port, mac)
	case len(f) == 4 && f[0] == "set" && f[1] == "interface" && f[2] == "ip":
		var p int
		if _, err := fmt.Sscanf(f[3], "port%d", &p); err != nil {
			return fmt.Errorf("vpp: bad port %q", f[3])
		}
		return sw.EnableIP4(p)
	}
	return fmt.Errorf("vpp: unknown command %q", strings.Join(f, " "))
}

// L3 node costs.
const (
	ip4InputPerPkt   = 24 // sanity checks, TTL test
	ip4LookupPerPkt  = 20 // beyond the mtrie loads (modelled as HashLookup)
	ip4RewritePerPkt = 30 // MAC rewrite + checksum update
)

type ip4InputNode struct{}

func (ip4InputNode) Name() string { return "ip4-input" }
func (ip4InputNode) Process(sw *Switch, now units.Time, m *cost.Meter, ctx int, v []*pkt.Buf) {
	m.ChargeNoisy(nodeFixed+units.Cycles(len(v))*ip4InputPerPkt, costJitterFrac)
	keep := v[:0]
	for _, b := range v {
		data := b.View()
		if len(data) < pkt.EthHdrLen+pkt.IPv4HdrLen {
			sw.enqueue1(nodeDrop, ctx, b)
			continue
		}
		eth, err := pkt.ParseEth(data)
		if err != nil || eth.EtherType != pkt.EtherTypeIPv4 {
			sw.enqueue1(nodeDrop, ctx, b)
			continue
		}
		ip, err := pkt.ParseIPv4(data[pkt.EthHdrLen:])
		if err != nil || ip.TTL <= 1 {
			sw.enqueue1(nodeDrop, ctx, b)
			continue
		}
		keep = append(keep, b)
	}
	if len(keep) > 0 {
		sw.enqueue(nodeIP4Lookup, ctx, keep)
	}
}

type ip4LookupNode struct{}

func (ip4LookupNode) Name() string { return "ip4-lookup" }
func (ip4LookupNode) Process(sw *Switch, now units.Time, m *cost.Meter, ctx int, v []*pkt.Buf) {
	m.Charge(nodeFixed + units.Cycles(len(v))*(m.Model.HashLookup+ip4LookupPerPkt))
	l3 := sw.ip4()
	for _, b := range v {
		ip, _ := pkt.ParseIPv4(b.View()[pkt.EthHdrLen:])
		leaf := l3.fib.Lookup(ip.Dst)
		if leaf == 0 {
			sw.enqueue1(nodeDrop, ctx, b)
			continue
		}
		sw.enqueue1(nodeIP4Rewrite, int(leaf-1), b)
	}
}

type ip4RewriteNode struct{}

func (ip4RewriteNode) Name() string { return "ip4-rewrite" }
func (ip4RewriteNode) Process(sw *Switch, now units.Time, m *cost.Meter, ctx int, v []*pkt.Buf) {
	m.ChargeNoisy(nodeFixed+units.Cycles(len(v))*ip4RewritePerPkt, costJitterFrac)
	l3 := sw.ip4()
	if ctx < 0 || ctx >= len(l3.adjs) {
		sw.enqueue(nodeDrop, 0, v)
		return
	}
	adj := l3.adjs[ctx]
	for _, b := range v {
		data := b.Bytes()
		pkt.SetEthDst(data, adj.nhMAC)
		pkt.SetEthSrc(data, adj.srcMAC)
		ip, _ := pkt.ParseIPv4(data[pkt.EthHdrLen:])
		ip.TTL--
		ip.Put(data[pkt.EthHdrLen:]) // re-serialize with fresh checksum
	}
	sw.enqueue(nodeOutput, adj.port, v)
}
