package vpp

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// This file implements VPP's IPv4 FIB as a 16-8-8 mtrie — the structure
// VPP actually uses for ip4-lookup — plus the route CLI. The paper
// classifies VPP as a "full router" (Table 1): beyond the l2patch used by
// the benchmark scenarios, this gives the testbed a real L3 data path
// ("ip4-input → ip4-lookup → ip4-rewrite") for router-style experiments.

// Leaf is an mtrie lookup result: a next-hop index (adjacency), or 0 for
// no route.
type Leaf uint32

// mtrie node fan-outs: one 64K root stride, then 256-way strides.
const (
	rootStride = 1 << 16
	leafStride = 1 << 8
)

type mtrieNode struct {
	// leaves holds either a terminal Leaf or an index into children
	// (flagged); children[i] may be nil.
	leaves   []Leaf
	children []*mtrieNode
	// plen of the route that installed each leaf, for longest-prefix
	// overwrite semantics.
	plens []uint8
}

func newNode(size int) *mtrieNode {
	return &mtrieNode{
		leaves:   make([]Leaf, size),
		children: make([]*mtrieNode, size),
		plens:    make([]uint8, size),
	}
}

// Mtrie is a 16-8-8 IPv4 longest-prefix-match trie.
type Mtrie struct {
	root   *mtrieNode
	routes int
}

// NewMtrie returns an empty FIB.
func NewMtrie() *Mtrie { return &Mtrie{root: newNode(rootStride)} }

// Routes returns the number of installed prefixes.
func (t *Mtrie) Routes() int { return t.routes }

// Insert installs prefix/plen → leaf (leaf must be non-zero). Longer
// prefixes win on overlap; equal-length reinsertions overwrite.
func (t *Mtrie) Insert(prefix [4]byte, plen int, leaf Leaf) error {
	if plen < 0 || plen > 32 {
		return fmt.Errorf("vpp: bad prefix length %d", plen)
	}
	if leaf == 0 {
		return fmt.Errorf("vpp: leaf 0 is reserved for no-route")
	}
	addr := binary.BigEndian.Uint32(prefix[:])
	addr &= mask32(plen)
	t.insert(t.root, addr, plen, 16, 16, leaf)
	t.routes++
	return nil
}

func mask32(plen int) uint32 {
	if plen == 0 {
		return 0
	}
	return ^uint32(0) << (32 - plen)
}

// insert fills the node covering bits [shiftDone-stride, shiftDone) of the
// address.
func (t *Mtrie) insert(n *mtrieNode, addr uint32, plen, strideBits, bitsDone int, leaf Leaf) {
	shift := 32 - bitsDone
	idx := int(addr >> shift & uint32(len(n.leaves)-1))
	if plen <= bitsDone {
		// The prefix ends within this stride: fill the covered range.
		span := 1 << (bitsDone - plen)
		base := idx &^ (span - 1)
		for i := base; i < base+span; i++ {
			if n.children[i] != nil {
				// Push down into the child so longer prefixes
				// beneath stay intact.
				t.fillDefault(n.children[i], uint8(plen), leaf)
				continue
			}
			if n.plens[i] <= uint8(plen) {
				n.leaves[i] = leaf
				n.plens[i] = uint8(plen)
			}
		}
		return
	}
	// Descend (create the child, seeding it with the current leaf).
	child := n.children[idx]
	if child == nil {
		child = newNode(leafStride)
		for i := range child.leaves {
			child.leaves[i] = n.leaves[idx]
			child.plens[i] = n.plens[idx]
		}
		n.children[idx] = child
	}
	t.insert(child, addr, plen, 8, bitsDone+8, leaf)
}

// fillDefault overwrites child entries whose installing prefix is shorter.
func (t *Mtrie) fillDefault(n *mtrieNode, plen uint8, leaf Leaf) {
	for i := range n.leaves {
		if n.children[i] != nil {
			t.fillDefault(n.children[i], plen, leaf)
			continue
		}
		if n.plens[i] <= plen {
			n.leaves[i] = leaf
			n.plens[i] = plen
		}
	}
}

// Lookup returns the leaf for addr (0 = no route). It is the hot path:
// at most three indexed loads, as in VPP.
func (t *Mtrie) Lookup(addr [4]byte) Leaf {
	a := binary.BigEndian.Uint32(addr[:])
	n := t.root
	idx := int(a >> 16)
	if n.children[idx] == nil {
		return n.leaves[idx]
	}
	n = n.children[idx]
	idx = int(a >> 8 & 0xff)
	if n.children[idx] == nil {
		return n.leaves[idx]
	}
	n = n.children[idx]
	return n.leaves[int(a&0xff)]
}

// ParseCIDR parses "10.1.0.0/16".
func ParseCIDR(s string) ([4]byte, int, error) {
	var p [4]byte
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return p, 0, fmt.Errorf("vpp: bad prefix %q", s)
	}
	parts := strings.Split(s[:slash], ".")
	if len(parts) != 4 {
		return p, 0, fmt.Errorf("vpp: bad prefix %q", s)
	}
	for i, part := range parts {
		n, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return p, 0, fmt.Errorf("vpp: bad prefix %q", s)
		}
		p[i] = byte(n)
	}
	plen, err := strconv.Atoi(s[slash+1:])
	if err != nil || plen < 0 || plen > 32 {
		return p, 0, fmt.Errorf("vpp: bad prefix length in %q", s)
	}
	return p, plen, nil
}
