// Package vpp models FD.io VPP 19.04: a self-contained software router that
// processes packets in vectors through a forwarding graph.
//
// The data plane here is a real graph: dpdk-input pulls bursts from the
// attached devices and hands per-port vectors to either the l2-patch node
// (the paper's p2p/p2v/v2v configuration: "test l2patch rx port0 tx port1")
// or to the ethernet-input → l2-learn → l2-fwd learning-bridge path, ending
// at interface-output. Vector processing amortizes per-node fixed costs over
// up to 256 packets, which is exactly why VPP stays fast under load and why
// its low-load latency is batch-bound.
package vpp

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/l2"
	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// VectorSize is VPP's maximum vector length.
const VectorSize = 256

// Cost constants, calibrated so the end-to-end p2p per-packet cost lands at
// ≈ 58 ns (the paper's Fig. 4a: VPP exceeds 10 Gbps bidirectional at 64B but
// stays below BESS's 16 Gbps).
const (
	nodeFixed      = 35 // per node visit per vector
	inputPerPkt    = 28 // dpdk-input bookkeeping, beyond PMD costs
	patchPerPkt    = 52 // l2-patch rewrite + validation work
	ethInputPerPkt = 26 // header parse + classification
	l2fwdPerPkt    = 18 // beyond the MAC table hash probes
	outputPerPkt   = 29 // interface-output buffering
	aclPerPkt      = 14 // l2patch runtime drop-list check, beyond the hash probe
	costJitterFrac = 0.02
	vhostRxPenalty = 80 // paper §5.2: VPP pays extra receiving from vhost
	vhostTxPenalty = 25 // and a smaller toll transmitting to it
)

// Node is one graph node.
type Node interface {
	Name() string
	// Process handles a vector arriving with the given context (port
	// index for port-scoped nodes; adjacency index for ip4-rewrite).
	Process(sw *Switch, now units.Time, m *cost.Meter, ctx int, v []*pkt.Buf)
}

// Dense node identities, in registration order. Per-packet enqueues index
// an array with these instead of hashing a (name, ctx) map key.
const (
	nodeL2Patch = iota
	nodeEthInput
	nodeL2Learn
	nodeL2Fwd
	nodeOutput
	nodeDrop
	nodeIP4Input
	nodeIP4Lookup
	nodeIP4Rewrite
	numNodes
)

// pendingVec is one not-yet-dispatched (node, ctx) vector on the frame's
// FIFO work queue.
type pendingVec struct {
	node int32
	ctx  int32
	vec  []*pkt.Buf
}

// Switch is a VPP instance.
type Switch struct {
	// rxScratch is the receive staging array, reused across polls: a
	// stack array handed through the DevPort interface escapes, which
	// costs one heap allocation per poll.
	rxScratch [VectorSize]*pkt.Buf

	env   switchdef.Env
	ports []switchdef.DevPort

	nodes [numNodes]Node

	// q/qHead are the dispatch frame's FIFO of pending vectors. This is
	// exactly equivalent to the two-level rounds loop it replaced (merge
	// into any not-yet-processed (node, ctx) entry, else append), but
	// with a linear scan over the few live tail entries instead of a
	// map insert/delete pair per node visit.
	q     []pendingVec
	qHead int

	// vecFree recycles dispatch-frame vectors across polls; a graph
	// frame otherwise allocates one vector per (node, ctx) pair it
	// visits, every poll.
	vecFree [][]*pkt.Buf

	patchTo  []int // l2patch: rx port -> tx port (-1 = none)
	bridgeOn []bool
	mac      *l2.MACTable
	l3       *ip4State

	// acl is the runtime drop list on the l2patch path (program.go): a
	// feature-arc-style dl_dst filter consulted only while non-empty, so
	// rule-free runs charge nothing extra. prog backs Snapshot.
	acl  map[pkt.MAC]bool
	prog switchdef.RuleLedger
	// ACLDropped counts frames the runtime drop list discarded.
	ACLDropped int64

	txStage [][]*pkt.Buf // per-port tx staging, flushed at frame end

	// Forwarded and Dropped count data-plane outcomes.
	Forwarded, Dropped int64
}

// New returns an unconfigured VPP instance.
func New(env switchdef.Env) *Switch {
	sw := &Switch{
		env: env,
		mac: l2.NewMACTable(1024, 0),
	}
	sw.nodes = [numNodes]Node{
		nodeL2Patch:    patchNode{},
		nodeEthInput:   ethInputNode{},
		nodeL2Learn:    l2LearnNode{},
		nodeL2Fwd:      l2FwdNode{},
		nodeOutput:     outputNode{},
		nodeDrop:       dropNode{},
		nodeIP4Input:   ip4InputNode{},
		nodeIP4Lookup:  ip4LookupNode{},
		nodeIP4Rewrite: ip4RewriteNode{},
	}
	return sw
}

// Info implements switchdef.Switch.
func (sw *Switch) Info() switchdef.Info { return info }

var info = switchdef.Info{
	Name:              "vpp",
	Display:           "VPP",
	Version:           "19.04",
	SelfContained:     true,
	Paradigm:          "structured",
	ProcessingModel:   "RTC",
	VirtualIface:      "vhost-user",
	Reprogrammability: "medium",
	Languages:         "C",
	MainPurpose:       "Full router",
	BestAt:            "VNF chaining",
	Remarks:           "Supports live migration",
	IOMode:            switchdef.PollMode,
	RuntimeRules:      true,
}

// AddPort implements switchdef.Switch.
func (sw *Switch) AddPort(p switchdef.DevPort) int {
	sw.ports = append(sw.ports, p)
	sw.txStage = append(sw.txStage, nil)
	sw.patchTo = append(sw.patchTo, -1)
	sw.bridgeOn = append(sw.bridgeOn, false)
	return len(sw.ports) - 1
}

// CrossConnect implements switchdef.Switch as the canned rule program
// over the l2patch feature, as in the paper's appendix ("test l2patch rx
// port0 tx port1").
func (sw *Switch) CrossConnect(a, b int) error {
	if err := sw.checkPort(a); err != nil {
		return err
	}
	if err := sw.checkPort(b); err != nil {
		return err
	}
	for _, r := range switchdef.CrossConnectRules(a, b) {
		if err := sw.Install(r); err != nil {
			return err
		}
	}
	return nil
}

func (sw *Switch) checkPort(i int) error {
	if i < 0 || i >= len(sw.ports) {
		return fmt.Errorf("vpp: no port %d", i)
	}
	return nil
}

// CLI executes a small subset of the VPP command line:
//
//	test l2patch rx portA tx portB
//	set interface l2 bridge portA
func (sw *Switch) CLI(cmd string) error {
	f := strings.Fields(cmd)
	if len(f) == 6 && f[0] == "test" && f[1] == "l2patch" && f[2] == "rx" && f[4] == "tx" {
		var rx, tx int
		if _, err := fmt.Sscanf(f[3], "port%d", &rx); err != nil {
			return fmt.Errorf("vpp: bad rx %q", f[3])
		}
		if _, err := fmt.Sscanf(f[5], "port%d", &tx); err != nil {
			return fmt.Errorf("vpp: bad tx %q", f[5])
		}
		if e := sw.checkPort(rx); e != nil {
			return e
		}
		if e := sw.checkPort(tx); e != nil {
			return e
		}
		sw.patchTo[rx] = tx
		return nil
	}
	if len(f) == 5 && f[0] == "set" && f[1] == "interface" && f[2] == "l2" && f[3] == "bridge" {
		var p int
		if _, err := fmt.Sscanf(f[4], "port%d", &p); err != nil {
			return fmt.Errorf("vpp: bad port %q", f[4])
		}
		if e := sw.checkPort(p); e != nil {
			return e
		}
		sw.bridgeOn[p] = true
		return nil
	}
	return sw.ipCLI(f)
}

// getVec returns a recycled (empty) vector for a dispatch frame.
func (sw *Switch) getVec() []*pkt.Buf {
	if n := len(sw.vecFree); n > 0 {
		v := sw.vecFree[n-1]
		sw.vecFree = sw.vecFree[:n-1]
		return v
	}
	return make([]*pkt.Buf, 0, VectorSize)
}

// putVec parks a consumed vector for reuse.
func (sw *Switch) putVec(v []*pkt.Buf) {
	v = v[:0]
	sw.vecFree = append(sw.vecFree, v)
}

// enqueue hands a vector to a node for this dispatch frame. The contents
// are copied into a per-(node, ctx) pending vector, so callers keep
// ownership of the slice itself. Merging targets any not-yet-dispatched
// queue entry; the scan is linear but the live tail is a handful of
// entries at most (one per distinct (node, ctx) still in flight).
func (sw *Switch) enqueue(node, ctx int, bufs []*pkt.Buf) {
	for i := sw.qHead; i < len(sw.q); i++ {
		e := &sw.q[i]
		if int(e.node) == node && int(e.ctx) == ctx {
			e.vec = append(e.vec, bufs...)
			return
		}
	}
	sw.q = append(sw.q, pendingVec{node: int32(node), ctx: int32(ctx), vec: append(sw.getVec(), bufs...)})
}

// enqueue1 is enqueue for a single frame, avoiding the slice header a
// []*pkt.Buf{b} literal would heap-allocate per packet.
func (sw *Switch) enqueue1(node, ctx int, b *pkt.Buf) {
	for i := sw.qHead; i < len(sw.q); i++ {
		e := &sw.q[i]
		if int(e.node) == node && int(e.ctx) == ctx {
			e.vec = append(e.vec, b)
			return
		}
	}
	sw.q = append(sw.q, pendingVec{node: int32(node), ctx: int32(ctx), vec: append(sw.getVec(), b)})
}

// Poll implements switchdef.Switch: one graph dispatch frame over every
// attached port. Multi-core runs give each worker core its own Switch
// instance with private vector-graph scratch — see internal/multicore.
func (sw *Switch) Poll(now units.Time, m *cost.Meter) bool {
	// dpdk-input: pull one vector per port.
	burst := &sw.rxScratch
	got := false
	for i := range sw.ports {
		p := sw.ports[i]
		n := p.RxBurst(now, m, burst[:])
		if n == 0 {
			continue
		}
		got = true
		m.ChargeNoisy(nodeFixed+units.Cycles(n)*inputPerPkt, costJitterFrac)
		if p.Kind() == switchdef.VhostKind {
			// Receiving from vhost-user ports costs VPP extra (the
			// paper's "reversed unidirectional" finding).
			m.Charge(units.Cycles(n) * vhostRxPenalty)
		}
		v := burst[:n]
		switch {
		case sw.patchTo[i] >= 0:
			sw.enqueue(nodeL2Patch, i, v)
		case sw.bridgeOn[i]:
			sw.enqueue(nodeEthInput, i, v)
		case sw.l3 != nil && sw.l3.enabled[i]:
			sw.enqueue(nodeIP4Input, i, v)
		default:
			sw.enqueue(nodeDrop, i, v)
		}
	}
	// Graph dispatch until quiescent: plain FIFO over pending vectors.
	for sw.qHead < len(sw.q) {
		ent := sw.q[sw.qHead]
		// Drop the queue's reference before Process may grow sw.q.
		sw.q[sw.qHead].vec = nil
		sw.qHead++
		sw.nodes[ent.node].Process(sw, now, m, int(ent.ctx), ent.vec)
		// Nodes pass frames onward by value (enqueue copies), so the
		// vector itself is dead once Process returns.
		sw.putVec(ent.vec)
	}
	sw.q = sw.q[:0]
	sw.qHead = 0
	// Flush staged tx.
	for i := range sw.ports {
		stage := sw.txStage[i]
		if len(stage) == 0 {
			continue
		}
		got = true
		if sw.ports[i].Kind() == switchdef.VhostKind {
			m.Charge(units.Cycles(len(stage)) * vhostTxPenalty)
		}
		sent := sw.ports[i].TxBurst(now, m, stage)
		sw.Forwarded += int64(sent)
		sw.Dropped += int64(len(stage) - sent)
		sw.txStage[i] = stage[:0]
	}
	return got
}

type patchNode struct{}

func (patchNode) Name() string { return "l2-patch" }
func (patchNode) Process(sw *Switch, now units.Time, m *cost.Meter, ctx int, v []*pkt.Buf) {
	m.ChargeNoisy(nodeFixed+units.Cycles(len(v))*patchPerPkt, costJitterFrac)
	if len(sw.acl) > 0 {
		// Feature arc: the runtime drop list is consulted only while
		// rules are installed, so rule-free runs charge nothing here.
		m.Charge(units.Cycles(len(v)) * (m.Model.HashLookup + aclPerPkt))
		keep := v[:0]
		for _, b := range v {
			if sw.acl[pkt.EthDst(b.View())] {
				sw.ACLDropped++
				sw.enqueue1(nodeDrop, ctx, b)
				continue
			}
			keep = append(keep, b)
		}
		if len(keep) == 0 {
			return
		}
		v = keep
	}
	sw.enqueue(nodeOutput, sw.patchTo[ctx], v)
}

type ethInputNode struct{}

func (ethInputNode) Name() string { return "ethernet-input" }
func (ethInputNode) Process(sw *Switch, now units.Time, m *cost.Meter, ctx int, v []*pkt.Buf) {
	m.ChargeNoisy(nodeFixed+units.Cycles(len(v))*ethInputPerPkt, costJitterFrac)
	keep := v[:0]
	for _, b := range v {
		if _, err := pkt.ParseEth(b.View()); err != nil {
			sw.enqueue1(nodeDrop, ctx, b)
			continue
		}
		keep = append(keep, b)
	}
	if len(keep) > 0 {
		sw.enqueue(nodeL2Learn, ctx, keep)
	}
}

type l2LearnNode struct{}

func (l2LearnNode) Name() string { return "l2-learn" }
func (l2LearnNode) Process(sw *Switch, now units.Time, m *cost.Meter, ctx int, v []*pkt.Buf) {
	m.Charge(nodeFixed + units.Cycles(len(v))*m.Model.HashLookup)
	for _, b := range v {
		sw.mac.Learn(pkt.EthSrc(b.View()), ctx, now)
	}
	sw.enqueue(nodeL2Fwd, ctx, v)
}

type l2FwdNode struct{}

func (l2FwdNode) Name() string { return "l2-fwd" }
func (l2FwdNode) Process(sw *Switch, now units.Time, m *cost.Meter, ctx int, v []*pkt.Buf) {
	m.Charge(nodeFixed + units.Cycles(len(v))*(m.Model.HashLookup+l2fwdPerPkt))
	for _, b := range v {
		dst, ok := sw.mac.Lookup(pkt.EthDst(b.View()), now)
		if ok && dst != ctx {
			sw.enqueue1(nodeOutput, dst, b)
			continue
		}
		if ok && dst == ctx {
			sw.enqueue1(nodeDrop, ctx, b)
			continue
		}
		// Flood to all other bridge ports (in port order, for
		// deterministic replay).
		flooded := false
		for p := range sw.ports {
			if p == ctx || !sw.bridgeOn[p] {
				continue
			}
			out := b
			if flooded {
				out = sw.env.Pool.Clone(b)
				m.ChargeCopy(b.Len())
			}
			sw.enqueue1(nodeOutput, p, out)
			flooded = true
		}
		if !flooded {
			sw.enqueue1(nodeDrop, ctx, b)
		}
	}
}

type outputNode struct{}

func (outputNode) Name() string { return "interface-output" }
func (outputNode) Process(sw *Switch, now units.Time, m *cost.Meter, ctx int, v []*pkt.Buf) {
	m.ChargeNoisy(nodeFixed+units.Cycles(len(v))*outputPerPkt, costJitterFrac)
	sw.txStage[ctx] = append(sw.txStage[ctx], v...)
}

type dropNode struct{}

func (dropNode) Name() string { return "error-drop" }
func (dropNode) Process(sw *Switch, now units.Time, m *cost.Meter, ctx int, v []*pkt.Buf) {
	for _, b := range v {
		b.Free()
	}
	sw.Dropped += int64(len(v))
}

// MACTable exposes the bridge table for tests.
func (sw *Switch) MACTable() *l2.MACTable { return sw.mac }

func init() {
	switchdef.Register(info, func(env switchdef.Env) switchdef.Switch { return New(env) })
}
