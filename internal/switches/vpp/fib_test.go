package vpp

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/switches/switchtest"
	"repro/internal/units"
)

func ip(a, b, c, d byte) [4]byte { return [4]byte{a, b, c, d} }

func TestMtrieBasicLPM(t *testing.T) {
	m := NewMtrie()
	if err := m.Insert(ip(10, 0, 0, 0), 8, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(ip(10, 1, 0, 0), 16, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(ip(10, 1, 2, 0), 24, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(ip(10, 1, 2, 3), 32, 4); err != nil {
		t.Fatal(err)
	}
	cases := map[[4]byte]Leaf{
		ip(10, 9, 9, 9):  1,
		ip(10, 1, 9, 9):  2,
		ip(10, 1, 2, 9):  3,
		ip(10, 1, 2, 3):  4,
		ip(11, 0, 0, 0):  0,
		ip(9, 255, 0, 0): 0,
	}
	for addr, want := range cases {
		if got := m.Lookup(addr); got != want {
			t.Errorf("Lookup(%v) = %d, want %d", addr, got, want)
		}
	}
	if m.Routes() != 4 {
		t.Fatalf("routes = %d", m.Routes())
	}
}

func TestMtrieDefaultRoute(t *testing.T) {
	m := NewMtrie()
	if err := m.Insert(ip(0, 0, 0, 0), 0, 7); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(ip(192, 168, 0, 0), 16, 8); err != nil {
		t.Fatal(err)
	}
	if got := m.Lookup(ip(8, 8, 8, 8)); got != 7 {
		t.Fatalf("default = %d", got)
	}
	if got := m.Lookup(ip(192, 168, 1, 1)); got != 8 {
		t.Fatalf("specific = %d", got)
	}
}

func TestMtrieInsertOrderIndependent(t *testing.T) {
	// Installing the covering /8 after the /24 must not clobber it.
	m := NewMtrie()
	_ = m.Insert(ip(10, 1, 2, 0), 24, 3)
	_ = m.Insert(ip(10, 0, 0, 0), 8, 1)
	if got := m.Lookup(ip(10, 1, 2, 9)); got != 3 {
		t.Fatalf("later short prefix clobbered /24: %d", got)
	}
	if got := m.Lookup(ip(10, 9, 9, 9)); got != 1 {
		t.Fatalf("/8 missing: %d", got)
	}
}

func TestMtrieErrors(t *testing.T) {
	m := NewMtrie()
	if err := m.Insert(ip(1, 2, 3, 4), 33, 1); err == nil {
		t.Fatal("plen 33 accepted")
	}
	if err := m.Insert(ip(1, 2, 3, 4), 8, 0); err == nil {
		t.Fatal("leaf 0 accepted")
	}
}

// naiveLPM is the reference model for the property test.
type naiveRoute struct {
	addr uint32
	plen int
	leaf Leaf
}

func naiveLookup(routes []naiveRoute, addr uint32) Leaf {
	best, bestLen := Leaf(0), -1
	for _, r := range routes {
		if addr&mask32(r.plen) == r.addr && r.plen > bestLen {
			best, bestLen = r.leaf, r.plen
		}
	}
	return best
}

// TestPropertyMtrieMatchesNaiveLPM inserts random route sets and checks the
// mtrie agrees with a brute-force longest-prefix match on random addresses.
func TestPropertyMtrieMatchesNaiveLPM(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		m := NewMtrie()
		var routes []naiveRoute
		for i := 0; i < 40; i++ {
			plen := rng.Intn(33)
			addr := uint32(rng.Uint64()) & mask32(plen)
			leaf := Leaf(i + 1)
			var p [4]byte
			binary.BigEndian.PutUint32(p[:], addr)
			if err := m.Insert(p, plen, leaf); err != nil {
				return false
			}
			// The naive model keeps last-insert-wins for identical
			// (addr, plen); mirror by removing duplicates.
			for j := range routes {
				if routes[j].addr == addr && routes[j].plen == plen {
					routes = append(routes[:j], routes[j+1:]...)
					break
				}
			}
			routes = append(routes, naiveRoute{addr, plen, leaf})
		}
		for i := 0; i < 200; i++ {
			a := uint32(rng.Uint64())
			var addr [4]byte
			binary.BigEndian.PutUint32(addr[:], a)
			if m.Lookup(addr) != naiveLookup(routes, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestParseCIDR(t *testing.T) {
	p, plen, err := ParseCIDR("10.1.0.0/16")
	if err != nil || p != ip(10, 1, 0, 0) || plen != 16 {
		t.Fatalf("got %v/%d, %v", p, plen, err)
	}
	for _, bad := range []string{"10.1.0.0", "10.1.0/16", "10.1.0.0/33", "a.b.c.d/8", "300.0.0.0/8"} {
		if _, _, err := ParseCIDR(bad); err == nil {
			t.Errorf("ParseCIDR(%q) accepted", bad)
		}
	}
}

func TestIP4PathRoutesAndRewrites(t *testing.T) {
	sw, fps, env := newSUT(t, 3)
	if err := sw.CLI("set interface ip port0"); err != nil {
		t.Fatal(err)
	}
	if err := sw.CLI("ip route add 10.1.0.0/16 via port1 02:00:00:00:00:11"); err != nil {
		t.Fatal(err)
	}
	if err := sw.CLI("ip route add 10.2.0.0/16 via port2 02:00:00:00:00:22"); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	mk := func(dst [4]byte) *pkt.Buf {
		b := env.Pool.Get(64)
		pkt.FrameSpec{
			SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 0xfe},
			SrcIP: ip(192, 168, 0, 1), DstIP: dst,
			SrcPort: 1, DstPort: 2, FrameLen: 64,
		}.Build(b)
		return b
	}
	fps[0].In = append(fps[0].In, mk(ip(10, 1, 5, 5)), mk(ip(10, 2, 5, 5)), mk(ip(172, 16, 0, 1)))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 || len(fps[2].Out) != 1 {
		t.Fatalf("routed = %d, %d", len(fps[1].Out), len(fps[2].Out))
	}
	// No route for 172.16/12: dropped.
	if sw.Dropped != 1 {
		t.Fatalf("dropped = %d", sw.Dropped)
	}
	// Rewrite semantics: next-hop MAC, decremented TTL, valid checksum.
	out := fps[1].Out[0].Bytes()
	wantMAC, _ := pkt.ParseMAC("02:00:00:00:00:11")
	if pkt.EthDst(out) != wantMAC {
		t.Fatal("next-hop MAC not written")
	}
	iph, err := pkt.ParseIPv4(out[pkt.EthHdrLen:])
	if err != nil {
		t.Fatalf("rewritten header invalid: %v", err)
	}
	if iph.TTL != 63 {
		t.Fatalf("TTL = %d, want 63", iph.TTL)
	}
}

func TestIP4TTLExpiryDrops(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	_ = sw.CLI("set interface ip port0")
	_ = sw.CLI("ip route add 0.0.0.0/0 via port1 02:00:00:00:00:11")
	b := env.Pool.Get(64)
	pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: ip(1, 1, 1, 1), DstIP: ip(2, 2, 2, 2),
		SrcPort: 1, DstPort: 2, FrameLen: 64,
	}.Build(b)
	// Force TTL 1 and fix the checksum.
	iph, _ := pkt.ParseIPv4(b.Bytes()[pkt.EthHdrLen:])
	iph.TTL = 1
	iph.Put(b.Bytes()[pkt.EthHdrLen:])
	fps[0].In = append(fps[0].In, b)
	m := switchtest.Meter(env)
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 0 || sw.Dropped != 1 {
		t.Fatalf("TTL-1 frame forwarded (out=%d dropped=%d)", len(fps[1].Out), sw.Dropped)
	}
}

func TestIP4RouteCLIErrors(t *testing.T) {
	sw, _, _ := newSUT(t, 1)
	for _, cmd := range []string{
		"ip route add 10.0.0.0/8 via port9 02:00:00:00:00:11",
		"ip route add bogus via port0 02:00:00:00:00:11",
		"ip route add 10.0.0.0/8 via port0 zz",
		"set interface ip portx",
	} {
		if err := sw.CLI(cmd); err == nil {
			t.Errorf("CLI(%q) accepted", cmd)
		}
	}
}

func BenchmarkMtrieLookup(b *testing.B) {
	m := NewMtrie()
	rng := sim.NewRNG(1)
	for i := 0; i < 10000; i++ {
		plen := 8 + rng.Intn(25)
		addr := uint32(rng.Uint64()) & mask32(plen)
		var p [4]byte
		binary.BigEndian.PutUint32(p[:], addr)
		_ = m.Insert(p, plen, Leaf(i+1))
	}
	addrs := make([][4]byte, 1024)
	for i := range addrs {
		binary.BigEndian.PutUint32(addrs[i][:], uint32(rng.Uint64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Lookup(addrs[i&1023])
	}
}

var _ = units.Time(0)
