package vpp

import (
	"fmt"

	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
)

// VPP's Programmer lowers typed rules onto its two runtime-configurable
// surfaces: in_port → output rules become l2patch entries (the CLI's
// "test l2patch rx portN tx portM"), and destination-MAC drop rules
// become a feature-arc drop list consulted on the patch path only while
// non-empty. VPP has no classification memo, so no generation counter is
// needed — the patch table and ACL are read per dispatch.

// Install implements switchdef.Programmer.
func (sw *Switch) Install(r switchdef.Rule) error {
	if r.Priority != 0 && r.Priority != switchdef.DefaultRulePriority {
		return fmt.Errorf("vpp: l2patch rules carry no priority")
	}
	switch {
	case r.Match.Fields == switchdef.FInPort &&
		len(r.Actions) == 1 && r.Actions[0].Kind == switchdef.RuleOutput:
		rx, tx := r.Match.InPort, r.Actions[0].Port
		if err := sw.checkPort(rx); err != nil {
			return err
		}
		if err := sw.checkPort(tx); err != nil {
			return err
		}
		sw.patchTo[rx] = tx
	case r.Match.Fields == switchdef.FEthDst &&
		len(r.Actions) == 1 && r.Actions[0].Kind == switchdef.RuleDrop:
		if sw.acl == nil {
			sw.acl = make(map[pkt.MAC]bool)
		}
		sw.acl[r.Match.EthDst] = true
	default:
		return fmt.Errorf("vpp: unsupported rule (want in_port→output or dl_dst→drop)")
	}
	sw.prog.Put(r)
	return nil
}

// Revoke implements switchdef.Programmer.
func (sw *Switch) Revoke(r switchdef.Rule) error {
	if _, ok := sw.prog.Get(r); !ok {
		return fmt.Errorf("vpp: revoke of absent rule")
	}
	switch {
	case r.Match.Fields == switchdef.FInPort:
		sw.patchTo[r.Match.InPort] = -1
	case r.Match.Fields == switchdef.FEthDst:
		delete(sw.acl, r.Match.EthDst)
	}
	sw.prog.Delete(r)
	return nil
}

// Snapshot implements switchdef.Programmer.
func (sw *Switch) Snapshot() []switchdef.Rule { return sw.prog.Snapshot() }
