package vpp

import (
	"testing"

	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/switches/switchtest"
)

func newSUT(t *testing.T, ports int) (*Switch, []*switchtest.FakePort, switchdef.Env) {
	t.Helper()
	env := switchtest.Env()
	sw := New(env)
	fps := make([]*switchtest.FakePort, ports)
	for i := range fps {
		fps[i] = switchtest.NewFakePort("p")
		sw.AddPort(fps[i])
	}
	return sw, fps, env
}

func TestL2PatchForwards(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	if err := sw.CrossConnect(0, 1); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	fps[1].In = append(fps[1].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 2}, pkt.MAC{2, 0, 0, 0, 0, 1}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 || len(fps[0].Out) != 1 {
		t.Fatalf("out counts = %d, %d", len(fps[0].Out), len(fps[1].Out))
	}
	if sw.Forwarded != 2 {
		t.Fatalf("forwarded = %d", sw.Forwarded)
	}
}

func TestCLIL2Patch(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	// Unidirectional patch via the CLI, as the paper's appendix does.
	if err := sw.CLI("test l2patch rx port0 tx port1"); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	fps[1].In = append(fps[1].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 2}, pkt.MAC{2, 0, 0, 0, 0, 1}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 {
		t.Fatalf("patched direction out = %d", len(fps[1].Out))
	}
	// The un-patched reverse direction drops.
	if len(fps[0].Out) != 0 || sw.Dropped != 1 {
		t.Fatalf("reverse out=%d dropped=%d", len(fps[0].Out), sw.Dropped)
	}
}

func TestCLIErrors(t *testing.T) {
	sw, _, _ := newSUT(t, 2)
	for _, cmd := range []string{
		"test l2patch rx port0 tx port9",
		"test l2patch rx nope tx port1",
		"show version",
		"set interface l2 bridge portx",
	} {
		if err := sw.CLI(cmd); err == nil {
			t.Errorf("CLI(%q) accepted", cmd)
		}
	}
}

func TestBridgeLearningAndFlood(t *testing.T) {
	sw, fps, env := newSUT(t, 3)
	for i := 0; i < 3; i++ {
		if err := sw.CLI("set interface l2 bridge port" + string(rune('0'+i))); err != nil {
			t.Fatal(err)
		}
	}
	m := switchtest.Meter(env)
	a := pkt.MAC{2, 0, 0, 0, 0, 0xa}
	b := pkt.MAC{2, 0, 0, 0, 0, 0xb}
	// Unknown destination floods to the other two ports.
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, a, b, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 || len(fps[2].Out) != 1 {
		t.Fatalf("flood outputs = %d, %d", len(fps[1].Out), len(fps[2].Out))
	}
	// b replies from port 2: a was learned on port 0 so no flood.
	fps[2].In = append(fps[2].In, switchtest.Frame(env.Pool, b, a, 64))
	switchtest.PollUntilIdle(sw, m, 1)
	if len(fps[0].Out) != 1 {
		t.Fatalf("unicast to learned MAC = %d", len(fps[0].Out))
	}
	if len(fps[1].Out) != 1 {
		t.Fatalf("flooded despite learned destination: %d", len(fps[1].Out))
	}
	if sw.MACTable().Len() != 2 {
		t.Fatalf("table len = %d", sw.MACTable().Len())
	}
}

func TestBridgeHairpinDrops(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	_ = sw.CLI("set interface l2 bridge port0")
	_ = sw.CLI("set interface l2 bridge port1")
	m := switchtest.Meter(env)
	a := pkt.MAC{2, 0, 0, 0, 0, 0xa}
	// Learn a on port 0, then send a frame for a arriving on port 0:
	// destination is the ingress port — must drop.
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, a, pkt.Broadcast, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	fps[0].Out = nil
	fps[1].Out = nil
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 0xb}, a, 64))
	switchtest.PollUntilIdle(sw, m, 1)
	if len(fps[0].Out) != 0 || len(fps[1].Out) != 0 {
		t.Fatal("hairpin frame forwarded")
	}
}

func TestCrossConnectValidation(t *testing.T) {
	sw, _, _ := newSUT(t, 2)
	if err := sw.CrossConnect(0, 7); err == nil {
		t.Fatal("bad port accepted")
	}
	if err := sw.CrossConnect(-1, 1); err == nil {
		t.Fatal("negative port accepted")
	}
}

func TestUnconfiguredPortDrops(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if sw.Dropped != 1 {
		t.Fatalf("dropped = %d", sw.Dropped)
	}
	if env.Pool.Live() != 0 {
		t.Fatalf("leaked %d buffers", env.Pool.Live())
	}
}

func TestInfoTaxonomy(t *testing.T) {
	sw, _, _ := newSUT(t, 0)
	info := sw.Info()
	if !info.SelfContained || info.Paradigm != "structured" || info.ProcessingModel != "RTC" {
		t.Fatalf("taxonomy mismatch: %+v", info)
	}
	if info.VirtualIface != "vhost-user" || info.Reprogrammability != "medium" {
		t.Fatalf("taxonomy mismatch: %+v", info)
	}
}

func TestPollChargesCycles(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	m := switchtest.Meter(env)
	for i := 0; i < 32; i++ {
		fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	}
	sw.Poll(0, m)
	if m.Pending() == 0 {
		t.Fatal("forwarding charged no cycles")
	}
	// The 64B p2p path must fit well under 100 ns/packet for VPP to beat
	// 10 Gbps bidirectional (Fig. 4a).
	perPkt := float64(m.Pending()) / 32
	if perPkt < 60 || perPkt > 260 {
		t.Fatalf("per-packet cost = %.0f cycles, outside sanity band", perPkt)
	}
}
