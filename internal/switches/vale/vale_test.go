package vale

import (
	"testing"

	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/switches/switchtest"
)

func newSUT(t *testing.T, ports int) (*Switch, []*switchtest.FakePort, switchdef.Env) {
	t.Helper()
	env := switchtest.Env()
	sw := New(env)
	fps := make([]*switchtest.FakePort, ports)
	for i := range fps {
		fps[i] = switchtest.NewFakePort("p")
		sw.AddPort(fps[i])
	}
	return sw, fps, env
}

func TestLearningBridgeForwards(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	if err := sw.CrossConnect(0, 1); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	a, b := pkt.MAC{2, 0, 0, 0, 0, 0xa}, pkt.MAC{2, 0, 0, 0, 0, 0xb}
	// Unknown dst floods (to the only other port).
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, a, b, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 {
		t.Fatalf("out = %d", len(fps[1].Out))
	}
	// Reply: a is learned, unicast.
	fps[1].In = append(fps[1].In, switchtest.Frame(env.Pool, b, a, 64))
	switchtest.PollUntilIdle(sw, m, 1)
	if len(fps[0].Out) != 1 {
		t.Fatalf("reverse out = %d", len(fps[0].Out))
	}
	br := sw.Bridges()[0]
	if br.MACTable().Len() != 2 {
		t.Fatalf("learned = %d", br.MACTable().Len())
	}
}

func TestInterPortCopySemantics(t *testing.T) {
	// VALE copies between ports: the delivered buffer must be a distinct
	// allocation with identical bytes (memory isolation, paper §3.5).
	sw, fps, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	m := switchtest.Meter(env)
	in := switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64)
	fps[0].In = append(fps[0].In, in)
	switchtest.PollUntilIdle(sw, m, 0)
	out := fps[1].Out[0]
	if out == in {
		t.Fatal("buffer passed by reference, not copied")
	}
	if string(out.Bytes()) != string(in.Bytes()) {
		t.Fatal("copy corrupted payload")
	}
}

func TestThreePortFloodClones(t *testing.T) {
	sw, fps, env := newSUT(t, 3)
	if _, err := sw.NewBridge("vale0", 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 0x99}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 || len(fps[2].Out) != 1 {
		t.Fatalf("flood = %d, %d", len(fps[1].Out), len(fps[2].Out))
	}
	if fps[1].Out[0] == fps[2].Out[0] {
		t.Fatal("flood shared one buffer")
	}
}

func TestPortExclusivity(t *testing.T) {
	sw, _, _ := newSUT(t, 3)
	if _, err := sw.NewBridge("vale0", 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.NewBridge("vale1", 1, 2); err == nil {
		t.Fatal("port reuse across bridges accepted")
	}
	if _, err := sw.NewBridge("vale1", 9); err == nil {
		t.Fatal("bad port accepted")
	}
}

func TestMultipleBridgeInstances(t *testing.T) {
	// The loopback scenario needs N+1 independent VALE instances on one
	// core: traffic on bridge 0 must never leak to bridge 1.
	sw, fps, env := newSUT(t, 4)
	_ = sw.CrossConnect(0, 1)
	_ = sw.CrossConnect(2, 3)
	if len(sw.Bridges()) != 2 {
		t.Fatalf("bridges = %d", len(sw.Bridges()))
	}
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 || len(fps[2].Out) != 0 || len(fps[3].Out) != 0 {
		t.Fatalf("leak: %d %d %d", len(fps[1].Out), len(fps[2].Out), len(fps[3].Out))
	}
}

func TestHairpinDrop(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	m := switchtest.Meter(env)
	a := pkt.MAC{2, 0, 0, 0, 0, 0xa}
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, a, pkt.Broadcast, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	fps[1].Out = nil
	// Destination learned on the ingress port itself: drop.
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 0xb}, a, 64))
	switchtest.PollUntilIdle(sw, m, 1)
	if len(fps[1].Out) != 0 {
		t.Fatal("hairpin forwarded")
	}
	if env.Pool.Live() != 1 { // only the first (flooded) frame is live
		t.Fatalf("live = %d", env.Pool.Live())
	}
}

func TestCopyCostScalesWithFrameSize(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	sw.Poll(0, m)
	small := m.Drain()
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 1024))
	sw.Poll(0, m)
	big := m.Drain()
	if big <= small {
		t.Fatalf("1024B (%v) not costlier than 64B (%v)", big, small)
	}
}

func TestInfoTaxonomy(t *testing.T) {
	sw, _, _ := newSUT(t, 0)
	info := sw.Info()
	if info.IOMode != switchdef.InterruptMode {
		t.Fatal("VALE must be interrupt-driven")
	}
	if info.VirtualIface != "ptnet" {
		t.Fatalf("virtual iface = %q", info.VirtualIface)
	}
	if info.Tuning == "" {
		t.Fatal("Table 2 tuning note missing")
	}
}

func TestValeCtl(t *testing.T) {
	sw, fps, env := newSUT(t, 3)
	for _, cmd := range []string{
		"vale-ctl -n v0",
		"vale-ctl -a vale0:p0",
		"vale-ctl -a vale0:p1",
		"-a vale1:p2", // bare form without the binary name
	} {
		if err := sw.ValeCtl(cmd); err != nil {
			t.Fatalf("ValeCtl(%q): %v", cmd, err)
		}
	}
	if len(sw.Bridges()) != 2 {
		t.Fatalf("bridges = %d", len(sw.Bridges()))
	}
	// vale0 forwards between p0 and p1.
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 || len(fps[2].Out) != 0 {
		t.Fatalf("out = %d, %d", len(fps[1].Out), len(fps[2].Out))
	}
	// Detach and verify traffic stops.
	if err := sw.ValeCtl("vale-ctl -d vale0:p1"); err != nil {
		t.Fatal(err)
	}
	fps[1].Out = nil
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	switchtest.PollUntilIdle(sw, m, 1)
	if len(fps[1].Out) != 0 {
		t.Fatal("detached port still receives")
	}
}

func TestValeCtlErrors(t *testing.T) {
	sw, _, _ := newSUT(t, 2)
	_ = sw.ValeCtl("-a vale0:p0")
	for _, cmd := range []string{
		"",
		"-a",
		"-a vale0p1",
		"-a vale0:px",
		"-a vale0:p9",
		"-a vale0:p0", // duplicate
		"-d vale0:p1", // not attached
		"-z vale0:p1",
	} {
		if err := sw.ValeCtl(cmd); err == nil {
			t.Errorf("ValeCtl(%q) accepted", cmd)
		}
	}
}
