// Package vale models the VALE/mSwitch L2 software switch (netmap commit
// 1b5361d): a learning Ethernet bridge in the netmap kernel module.
//
// Three properties from the paper are modelled explicitly:
//
//   - interrupt-driven I/O: unlike the DPDK switches, VALE's core sleeps
//     and is woken by NIC interrupts (moderated) or ptnet doorbells — the
//     source of its ~32 µs p2p latency floor and of its adaptive batching
//     (it processes everything pending per wakeup, so low-load latency
//     does not degrade the way strict-batch DPDK pipelines do);
//   - per-hop copies: VALE copies every frame between its ports to
//     preserve memory isolation (the paper's explanation for its p2p
//     numbers), while ptnet makes the guest crossing itself zero-copy;
//   - NIC path tax: packets touching a physical port pay the netmap
//     driver/IRQ bookkeeping that ptnet ports avoid, which is why v2v
//     (10.5 Gbps at 64B) far outruns p2p/p2v (≈5.6 Gbps).
//
// A Switch hosts multiple VALE bridge instances (vale0, vale1, ...) — the
// loopback scenario needs N+1 of them — all served by the same core, as in
// the paper's single-core SUT deployment.
package vale

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cost"
	"repro/internal/l2"
	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// Burst bounds how many frames one bridge-port service takes per wakeup;
// VALE adapts the batch to what is pending.
const Burst = 256

// Cost constants, calibrated against Fig. 4: p2p ≈ 5.56 Gbps, p2v ≈ 5.77,
// v2v ≈ 10.5 (64B, unidirectional).
const (
	copyBase         = 12  // per-frame copy setup
	copyPerByteMilli = 200 // 0.3 cycles/B inter-port copy
	lookupPerPkt     = 22  // bridge forwarding logic beyond the hash probes
	ptnetPerPkt      = 21  // ptnet port crossing (beyond model PtnetDesc)
	physPerPkt       = 36  // netmap NIC ring handling per frame
	physPerByteMilli = 360 // 0.4 cycles/B NIC DMA/cache share
	physFixedPerPkt  = 85  // driver/IRQ bookkeeping, once per frame touching a NIC
	jitterFrac       = 0.03
)

// Bridge is one VALE instance (e.g. "vale0").
type Bridge struct {
	Name  string
	ports []int
	mac   *l2.MACTable
}

// Switch hosts one or more VALE bridges on a single (interrupt-driven) core.
// VALE's learning bridge has no operator-facing rule table (the MAC table is
// learned, not programmed), so the Programmer surface reports
// ErrNoRuntimeRules.
type Switch struct {
	switchdef.NoRuntimeRules

	// rxScratch is the receive staging array, reused across polls: a
	// stack array handed through the DevPort interface escapes, which
	// costs one heap allocation per poll.
	rxScratch [Burst]*pkt.Buf
	// txScratch is the single-frame transmit slice deliver reuses; ports
	// do not retain their TxBurst argument.
	txScratch [1]*pkt.Buf

	env     switchdef.Env
	ports   []switchdef.DevPort
	bridges []*Bridge

	// Forwarded and Dropped count data-plane outcomes.
	Forwarded, Dropped int64
}

var info = switchdef.Info{
	Name:              "vale",
	Display:           "VALE",
	Version:           "1b5361d",
	SelfContained:     true,
	Paradigm:          "structured",
	ProcessingModel:   "RTC",
	VirtualIface:      "ptnet",
	Reprogrammability: "low",
	Languages:         "C",
	MainPurpose:       "Virtual L2 Ethernet",
	BestAt:            "VNF chaining with high workload",
	Remarks:           "Limited traffic classification and live migration capability",
	Tuning:            "Disable flow control for NIC interfaces",
	IOMode:            switchdef.InterruptMode,
}

// New returns a Switch with no bridges.
func New(env switchdef.Env) *Switch { return &Switch{env: env} }

// Info implements switchdef.Switch.
func (sw *Switch) Info() switchdef.Info { return info }

// AddPort implements switchdef.Switch (vale-ctl -a).
func (sw *Switch) AddPort(p switchdef.DevPort) int {
	sw.ports = append(sw.ports, p)
	return len(sw.ports) - 1
}

// NewBridge creates a VALE instance and attaches the given ports to it
// (vale-ctl -a valeN:port). A port may belong to only one bridge.
func (sw *Switch) NewBridge(name string, ports ...int) (*Bridge, error) {
	for _, p := range ports {
		if p < 0 || p >= len(sw.ports) {
			return nil, fmt.Errorf("vale: no port %d", p)
		}
		for _, br := range sw.bridges {
			for _, q := range br.ports {
				if q == p {
					return nil, fmt.Errorf("vale: port %d already in bridge %s", p, br.Name)
				}
			}
		}
	}
	br := &Bridge{Name: name, ports: append([]int(nil), ports...), mac: l2.NewMACTable(1024, 0)}
	sw.bridges = append(sw.bridges, br)
	return br, nil
}

// CrossConnect implements switchdef.Switch: a fresh two-port bridge. The
// learning/flooding bridge forwards between two ports in both directions.
func (sw *Switch) CrossConnect(a, b int) error {
	_, err := sw.NewBridge(fmt.Sprintf("vale%d", len(sw.bridges)), a, b)
	return err
}

// Poll implements switchdef.Switch: service every bridge port, forwarding
// everything pending (VALE's adaptive batching).
func (sw *Switch) Poll(now units.Time, m *cost.Meter) bool {
	did := false
	burst := &sw.rxScratch
	for _, br := range sw.bridges {
		for _, src := range br.ports {
			dev := sw.ports[src]
			n := dev.RxBurst(now, m, burst[:])
			if n == 0 {
				continue
			}
			did = true
			sw.chargeIngress(m, dev, burst[:n])
			for _, b := range burst[:n] {
				sw.forward(br, now, m, src, b)
			}
		}
	}
	return did
}

// chargeIngress prices the NIC-side receive work for a batch. Frames with
// equal cost are charged through one batched call (same per-frame RNG draws,
// fewer meter crossings); the physical-port cost is length-dependent, so
// runs of equal-length frames batch together.
func (sw *Switch) chargeIngress(m *cost.Meter, dev switchdef.DevPort, batch []*pkt.Buf) {
	if dev.Kind() != switchdef.PhysKind {
		m.ChargeNoisyBatch(ptnetPerPkt, jitterFrac, len(batch))
		return
	}
	for i := 0; i < len(batch); {
		l := batch[i].Len()
		j := i + 1
		for j < len(batch) && batch[j].Len() == l {
			j++
		}
		c := physPerPkt + physFixedPerPkt + physPerByteMilli*units.Cycles(l)/1000
		m.ChargeNoisyBatch(c, jitterFrac, j-i)
		i = j
	}
}

// forward runs one frame through a bridge: learn, look up, copy, transmit.
func (sw *Switch) forward(br *Bridge, now units.Time, m *cost.Meter, src int, b *pkt.Buf) {
	data := b.View()
	br.mac.Learn(pkt.EthSrc(data), src, now)
	m.Charge(2*m.Model.HashLookup + lookupPerPkt)
	dst, known := br.mac.Lookup(pkt.EthDst(data), now)
	if known && dst != src {
		sw.deliver(br, now, m, b, dst, false)
		return
	}
	if known && dst == src {
		b.Free()
		sw.Dropped++
		return
	}
	// Flood to every other bridge port.
	targets := 0
	for _, p := range br.ports {
		if p != src {
			targets++
		}
	}
	if targets == 0 {
		b.Free()
		sw.Dropped++
		return
	}
	seen := 0
	for _, p := range br.ports {
		if p == src {
			continue
		}
		seen++
		sw.deliver(br, now, m, b, p, seen < targets)
	}
}

// deliver copies the frame into the destination port and transmits. When
// clone is true the original buffer is retained for further flooding.
func (sw *Switch) deliver(br *Bridge, now units.Time, m *cost.Meter, b *pkt.Buf, dst int, clone bool) {
	dev := sw.ports[dst]
	// The VALE inter-port copy (always; this is VALE's isolation price).
	out := sw.env.Pool.Clone(b)
	m.Charge(copyBase + copyPerByteMilli*units.Cycles(b.Len())/1000)
	if !clone {
		b.Free()
	}
	// Egress-side NIC work.
	if dev.Kind() == switchdef.PhysKind {
		m.Charge(physPerPkt + physPerByteMilli*units.Cycles(out.Len())/1000)
	} else {
		m.Charge(ptnetPerPkt)
	}
	sw.txScratch[0] = out
	if dev.TxBurst(now, m, sw.txScratch[:]) == 1 {
		sw.Forwarded++
	} else {
		sw.Dropped++
	}
}

// Bridges returns the configured VALE instances.
func (sw *Switch) Bridges() []*Bridge { return sw.bridges }

// MACTable exposes a bridge's table for tests.
func (br *Bridge) MACTable() *l2.MACTable { return br.mac }

func init() {
	switchdef.Register(info, func(env switchdef.Env) switchdef.Switch { return New(env) })
}

// ValeCtl executes a vale-ctl command string, the tool the paper's appendix
// configures VALE with:
//
//	vale-ctl -a vale0:p2   (attach switch port 2 to bridge vale0)
//	vale-ctl -n v0         (a no-op here: virtual ports are created by the
//	                        testbed, but the syntax is accepted)
func (sw *Switch) ValeCtl(cmd string) error {
	f := strings.Fields(strings.TrimPrefix(strings.TrimSpace(cmd), "vale-ctl"))
	if len(f) != 2 {
		return fmt.Errorf("vale: bad vale-ctl command %q", cmd)
	}
	switch f[0] {
	case "-a":
		bridge, port, err := splitBridgePort(f[1])
		if err != nil {
			return err
		}
		for _, br := range sw.bridges {
			if br.Name == bridge {
				for _, q := range br.ports {
					if q == port {
						return fmt.Errorf("vale: port %d already attached to %s", port, bridge)
					}
				}
				for _, other := range sw.bridges {
					for _, q := range other.ports {
						if q == port {
							return fmt.Errorf("vale: port %d already in bridge %s", port, other.Name)
						}
					}
				}
				if port < 0 || port >= len(sw.ports) {
					return fmt.Errorf("vale: no port %d", port)
				}
				br.ports = append(br.ports, port)
				return nil
			}
		}
		_, err = sw.NewBridge(bridge, port)
		return err
	case "-n":
		return nil // virtual port creation is the testbed's job
	case "-d":
		bridge, port, err := splitBridgePort(f[1])
		if err != nil {
			return err
		}
		for _, br := range sw.bridges {
			if br.Name != bridge {
				continue
			}
			for i, q := range br.ports {
				if q == port {
					br.ports = append(br.ports[:i], br.ports[i+1:]...)
					return nil
				}
			}
		}
		return fmt.Errorf("vale: port %d not attached to %s", port, bridge)
	}
	return fmt.Errorf("vale: unsupported vale-ctl flag %q", f[0])
}

// splitBridgePort parses "vale0:p2" (or "vale0:2") into (bridge, port).
func splitBridgePort(s string) (string, int, error) {
	colon := strings.IndexByte(s, ':')
	if colon <= 0 {
		return "", 0, fmt.Errorf("vale: bad bridge:port %q", s)
	}
	portStr := strings.TrimPrefix(s[colon+1:], "p")
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", 0, fmt.Errorf("vale: bad port in %q", s)
	}
	return s[:colon], port, nil
}
