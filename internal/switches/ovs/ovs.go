// Package ovs models Open vSwitch with the DPDK datapath (OvS-DPDK 2.11):
// a self-contained match/action SDN switch.
//
// The data plane implements OvS's real three-tier lookup:
//
//  1. EMC — the exact-match cache, a bounded hash table from the full
//     packet key to the matched rule;
//  2. the megaflow cache (dpcls) — tuple-space search: one hash table per
//     in-use wildcard mask, probed in order of decreasing max priority;
//  3. the slow path — the full OpenFlow table, after which megaflow and
//     EMC entries are installed.
//
// Rules are installed with an ovs-ofctl–style add-flow parser (flow.go).
// The paper's p2p result (8.05 Gbps at 64B) reflects the match/action
// pipeline tax even when the EMC hits on every packet of a single flow.
package ovs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cost"
	"repro/internal/flowtab"
	"repro/internal/l2"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// Burst is the DPDK RX burst size.
const Burst = 32

// EMCCapacity matches OvS's per-PMD exact match cache size.
const EMCCapacity = 8192

// Cost constants, calibrated to land p2p 64B at ≈ 83 ns/packet (Fig. 4a:
// 8.05 Gbps unidirectional).
const (
	parsePerPkt    = 30  // miniflow extraction
	emcHitPerPkt   = 40  // beyond the hash probe itself
	applyPerPkt    = 26  // action execution + batching to output
	megaflowExtra  = 90  // per megaflow-tier probe (beyond hash cost)
	slowPathCost   = 900 // full classifier walk + cache installs
	perPktOverhead = 50  // dp_netdev per-packet bookkeeping
	jitterFrac     = 0.04

	// Revalidation: a periodic bookkeeping stall (flow stats, EMC sweep).
	revalInterval = 10 * units.Millisecond
	revalStall    = 25 * units.Microsecond
)

// vhostMod models OvS's instability when vhost-user ports are in play
// (the paper's loopback 0.99·R⁺ rows): sustained phases where per-packet
// cost degrades faster than the post-phase headroom can drain the backlog.
var vhostMod = cost.Modulation{
	HighFactor: 1.15, HighDur: 1200 * units.Microsecond,
	LowFactor: 0.97, LowDur: 800 * units.Microsecond,
}

type maskGroup struct {
	mask    mask
	maxPrio int
	flows   map[packedKey]*Rule
}

// megaEntry is one megaflow-cache decision plus the mask that produced it
// (the old separate megaOf map, folded in so a probe is one table access).
type megaEntry struct {
	rule *Rule
	mk   mask
}

// memoKey identifies one classification decision: frames sharing a
// template are byte-identical, so (template, in_port) determines the full
// flow key and therefore the entire lookup outcome.
type memoKey struct {
	tmpl uint64
	port int32
}

// Memo entry kinds: what the per-frame reference path would do for the
// next frame of this (template, port), recorded right after classify ran.
const (
	memoEMCHit  uint8 = iota + 1 // EMC probe hits (EMC enabled)
	memoMegaHit                  // megaflow walk hits (EMC disabled)
	memoNoMatch                  // full walk misses; frame dropped
)

// memoEntry is a recorded charge script: the exact simulated cycles the
// reference classify path charges for a repeat frame, plus the counter
// side effects to replay. Valid only while gen matches the switch's
// cacheGen — any table or cache mutation invalidates every memo.
type memoEntry struct {
	gen    uint64
	cycles units.Cycles
	kind   uint8
	rule   *Rule
}

func memoHash(k memoKey) uint64 {
	return flowtab.HashUint64(k.tmpl ^ uint64(uint32(k.port))<<32)
}

func keyHash(k *packedKey) uint64 { return flowtab.HashBytes(k[:]) }

// Switch is an OvS-DPDK instance.
type Switch struct {
	// rxScratch is the receive staging array, reused across polls: a
	// stack array handed through the DevPort interface escapes, which
	// costs one heap allocation per poll.
	rxScratch [Burst]*pkt.Buf

	env   switchdef.Env
	ports []switchdef.DevPort
	rng   *sim.RNG

	rules  []*Rule
	groups []*maskGroup // tuple-space, sorted by maxPrio desc

	// emc is the exact-match cache: set-associative, fixed capacity,
	// deterministic clock-hand eviction (the map it replaced evicted by
	// randomized iteration, making overflow workloads run-dependent).
	emc *flowtab.Cache[packedKey, *Rule]
	// The megaflow cache. Entries are installed by the slow path under
	// an "unwildcarded" mask — the union of every subtable mask that
	// could have decided the packet — so cached decisions can never
	// shadow a higher-priority rule (OvS's correctness invariant).
	mega      *flowtab.Map[packedKey, megaEntry]
	megaMasks []mask       // distinct installed megaflow masks
	mac       *l2.MACTable // for the NORMAL action
	nextRev   units.Time
	hasVhost  bool
	noEMC     bool

	// memo caches classification decisions by (template, in_port); see
	// memoEntry. cacheGen invalidates it wholesale on any mutation of the
	// rule table, megaflow cache, EMC membership, or the EMC knob.
	memo     *flowtab.Map[memoKey, memoEntry]
	cacheGen uint64

	// prog tracks the typed rules installed through the Programmer
	// surface (program.go), backing Snapshot.
	prog switchdef.RuleLedger

	txStage [][]*pkt.Buf

	// Stats.
	EMCHits, MegaHits, SlowHits, NoMatch int64
	Forwarded, Dropped                   int64
	// EMCEvictions counts clock-hand replacements of live EMC entries.
	EMCEvictions int64
}

var info = switchdef.Info{
	Name:              "ovs",
	Display:           "OvS-DPDK",
	Version:           "2.11.90",
	SelfContained:     true,
	Paradigm:          "match/action",
	ProcessingModel:   "RTC",
	VirtualIface:      "vhost-user",
	Reprogrammability: "medium",
	Languages:         "C",
	MainPurpose:       "SDN switch",
	BestAt:            "Stateless SDN deployments",
	Remarks:           "Supports OpenFlow protocol",
	IOMode:            switchdef.PollMode,
	RuntimeRules:      true,
}

// New returns an OvS instance with an empty flow table.
func New(env switchdef.Env) *Switch {
	return &Switch{
		env:  env,
		rng:  env.RNG.Derive("ovs"),
		emc:  flowtab.NewCache[packedKey, *Rule](EMCCapacity),
		mega: flowtab.NewMap[packedKey, megaEntry](64),
		memo: flowtab.NewMap[memoKey, memoEntry](16),
		mac:  l2.NewMACTable(4096, 0),
	}
}

// Info implements switchdef.Switch.
func (sw *Switch) Info() switchdef.Info { return info }

// AddPort implements switchdef.Switch.
func (sw *Switch) AddPort(p switchdef.DevPort) int {
	sw.ports = append(sw.ports, p)
	sw.txStage = append(sw.txStage, nil)
	if p.Kind() == switchdef.VhostKind {
		sw.hasVhost = true
	}
	return len(sw.ports) - 1
}

// AddFlow installs one rule from ovs-ofctl add-flow syntax.
func (sw *Switch) AddFlow(flow string) error {
	r, err := parseFlow(flow)
	if err != nil {
		return err
	}
	for _, a := range r.Actions {
		if a.Kind == ActOutput && a.Port >= len(sw.ports) {
			return fmt.Errorf("ovs: flow %q outputs to missing port %d", flow, a.Port)
		}
	}
	r.seq = len(sw.rules)
	sw.rules = append(sw.rules, r)
	sw.rebuildGroups()
	sw.invalidateCaches()
	return nil
}

// DelFlows clears the flow table (ovs-ofctl del-flows).
func (sw *Switch) DelFlows() {
	sw.rules = nil
	sw.groups = nil
	sw.invalidateCaches()
}

func (sw *Switch) invalidateCaches() {
	sw.emc.Reset()
	sw.mega.Reset()
	sw.megaMasks = nil
	sw.cacheGen++
}

func (sw *Switch) rebuildGroups() {
	byMask := map[mask]*maskGroup{}
	var order []*maskGroup
	for _, r := range sw.rules {
		g, ok := byMask[r.Mask]
		if !ok {
			g = &maskGroup{mask: r.Mask, maxPrio: r.Priority, flows: map[packedKey]*Rule{}}
			byMask[r.Mask] = g
			order = append(order, g)
		}
		if r.Priority > g.maxPrio {
			g.maxPrio = r.Priority
		}
		// Highest priority wins within identical masked matches.
		if old, dup := g.flows[r.Match]; !dup || r.beats(old) {
			g.flows[r.Match] = r
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].maxPrio > order[j].maxPrio })
	sw.groups = order
}

// CrossConnect implements switchdef.Switch as the canned rule program of
// two port-based rules over the Programmer surface — the typed equivalent
// of what the paper's appendix installs via ovs-ofctl.
func (sw *Switch) CrossConnect(a, b int) error {
	if a < 0 || a >= len(sw.ports) || b < 0 || b >= len(sw.ports) {
		return fmt.Errorf("ovs: bad ports %d,%d", a, b)
	}
	for _, r := range switchdef.CrossConnectRules(a, b) {
		if err := sw.Install(r); err != nil {
			return err
		}
	}
	return nil
}

// classify finds the rule for a key, exercising EMC → megaflow → slow path,
// charging lookup costs as it goes. This is the per-frame reference path;
// the memoized fast path (Poll) must replay exactly the charges and
// counter increments a repeat frame would collect here.
func (sw *Switch) classify(now units.Time, m *cost.Meter, key FlowKey) *Rule {
	full := key.pack()
	if !sw.noEMC {
		m.Charge(m.Model.HashLookup)
		if r, ok := sw.emc.Get(keyHash(&full), full); ok {
			sw.EMCHits++
			m.Charge(emcHitPerPkt)
			r.Hits++
			return r
		}
	}
	// Megaflow (tuple space) tier: probe each installed megaflow mask.
	for _, mk := range sw.megaMasks {
		masked := mk.apply(full)
		m.Charge(m.Model.HashLookup + megaflowExtra)
		if e, ok := sw.mega.Get(keyHash(&masked), masked); ok && e.mk == mk {
			sw.MegaHits++
			e.rule.Hits++
			sw.installEMC(full, e.rule)
			return e.rule
		}
	}
	// Slow path: full tuple-space search over the OpenFlow table.
	m.Charge(slowPathCost)
	var best *Rule
	for _, g := range sw.groups {
		masked := g.mask.apply(full)
		if r, ok := g.flows[masked]; ok && r.beats(best) {
			best = r
		}
	}
	if best == nil {
		sw.NoMatch++
		return nil
	}
	sw.SlowHits++
	best.Hits++
	sw.installMegaflow(full, best)
	sw.installEMC(full, best)
	return best
}

// installMegaflow caches the decision under the unwildcarded mask: the
// union of every subtable mask whose priority range could have decided
// this packet. Any packet matching the resulting entry is guaranteed to
// resolve to the same rule in the full table.
func (sw *Switch) installMegaflow(full packedKey, best *Rule) {
	var union mask
	for _, g := range sw.groups {
		if g.maxPrio < best.Priority {
			continue
		}
		for i := range union {
			union[i] |= g.mask[i]
		}
	}
	masked := union.apply(full)
	known := false
	for _, mk := range sw.megaMasks {
		if mk == union {
			known = true
			break
		}
	}
	if !known {
		sw.megaMasks = append(sw.megaMasks, union)
	}
	sw.mega.Put(keyHash(&masked), masked, megaEntry{rule: best, mk: union})
	// A new megaflow entry (or mask) can change a later frame's probe
	// sequence or outcome — every recorded memo is stale.
	sw.cacheGen++
}

// SetEMC enables or disables the exact-match cache (the
// other_config:emc-insert-inv-prob=0 ablation).
func (sw *Switch) SetEMC(enabled bool) {
	sw.noEMC = !enabled
	sw.cacheGen++
}

func (sw *Switch) installEMC(full packedKey, r *Rule) {
	if sw.noEMC {
		return
	}
	if sw.emc.Put(keyHash(&full), full, r) {
		// Clock-hand eviction of a live entry: some memoized EMC-hit
		// script may now be wrong, so invalidate them all. Refreshing an
		// existing key changes nothing and keeps memos valid.
		sw.EMCEvictions++
		sw.cacheGen++
	}
}

// Poll implements switchdef.Switch: one PMD thread iteration over every
// attached port. Multi-core runs give each core its own Switch instance
// (private EMC/megaflow/table state) over per-core port views — see
// internal/multicore.
func (sw *Switch) Poll(now units.Time, m *cost.Meter) bool {
	if sw.nextRev == 0 {
		sw.nextRev = now + revalInterval
	}
	if now >= sw.nextRev {
		m.Stall(revalStall)
		sw.nextRev = now + revalInterval
	}
	// The modulation factor depends only on now, which is constant for
	// the whole poll — hoisted out of the per-burst loop.
	factor := 1.0
	if sw.hasVhost {
		factor = vhostMod.Factor(now)
	}
	perPkt := units.Cycles(float64(parsePerPkt+perPktOverhead) * factor)
	noMemo := switchdef.MemoDisabled()
	burst := &sw.rxScratch
	did := false
	for i := range sw.ports {
		p := sw.ports[i]
		n := p.RxBurst(now, m, burst[:])
		if n == 0 {
			continue
		}
		did = true
		// One noisy draw per frame, batched into a single charge; the
		// classify path below draws nothing, so the RNG stream is
		// consumed exactly as the per-frame order did.
		m.ChargeNoisyBatch(perPkt, jitterFrac, n)
		for _, b := range burst[:n] {
			if !noMemo {
				if t := b.Template(); t != nil {
					k := memoKey{tmpl: t.ID(), port: int32(i)}
					if e, ok := sw.memo.Get(memoHash(k), k); ok && e.gen == sw.cacheGen {
						sw.replayMemo(now, m, b, i, e)
						continue
					}
				}
			}
			key := extractKey(b, i)
			rule := sw.classify(now, m, key)
			if !noMemo {
				if t := b.Template(); t != nil {
					sw.recordMemo(t, i, key, rule)
				}
			}
			if rule == nil {
				b.Free()
				sw.Dropped++
				continue
			}
			sw.apply(now, m, b, i, key, rule)
		}
	}
	for i := range sw.ports {
		stage := sw.txStage[i]
		if len(stage) == 0 {
			continue
		}
		did = true
		sent := sw.ports[i].TxBurst(now, m, stage)
		sw.Forwarded += int64(sent)
		sw.Dropped += int64(len(stage) - sent)
		sw.txStage[i] = stage[:0]
	}
	return did
}

// replayMemo executes a recorded charge script: the identical simulated
// cycles and counters the reference classify path produces for a repeat
// frame, without extracting, packing, or probing anything.
func (sw *Switch) replayMemo(now units.Time, m *cost.Meter, b *pkt.Buf, inPort int, e memoEntry) {
	m.Charge(e.cycles)
	switch e.kind {
	case memoEMCHit:
		sw.EMCHits++
	case memoMegaHit:
		sw.MegaHits++
	case memoNoMatch:
		sw.NoMatch++
		b.Free()
		sw.Dropped++
		return
	}
	e.rule.Hits++
	// apply never reads the key except for ActNormal, which recordMemo
	// refuses to memoize (MAC learning is a per-frame side effect).
	sw.apply(now, m, b, inPort, FlowKey{}, e.rule)
}

// recordMemo captures what the reference path will do for the *next* frame
// of this (template, in_port), given the caches classify just left behind.
// Rules with a NORMAL action are never memoized: MAC learning must see
// every frame. The entry stays valid while cacheGen is unchanged.
func (sw *Switch) recordMemo(t *pkt.Template, inPort int, key FlowKey, rule *Rule) {
	e := memoEntry{gen: sw.cacheGen}
	switch {
	case rule == nil:
		// Repeat frames re-walk every tier and drop.
		e.kind = memoNoMatch
		if !sw.noEMC {
			e.cycles += sw.env.Model.HashLookup
		}
		e.cycles += units.Cycles(len(sw.megaMasks)) * (sw.env.Model.HashLookup + megaflowExtra)
		e.cycles += slowPathCost
	case ruleMemoizable(rule):
		e.rule = rule
		full := key.pack()
		if !sw.noEMC {
			// classify just installed (or refreshed) the EMC entry, so
			// the next frame is an EMC hit.
			if r, ok := sw.emc.Get(keyHash(&full), full); !ok || r != rule {
				return
			}
			e.kind = memoEMCHit
			e.cycles = sw.env.Model.HashLookup + emcHitPerPkt
		} else {
			// EMC disabled: the next frame re-walks the megaflow masks
			// in order until the installed entry hits.
			found := false
			for _, mk := range sw.megaMasks {
				e.cycles += sw.env.Model.HashLookup + megaflowExtra
				masked := mk.apply(full)
				if me, ok := sw.mega.Get(keyHash(&masked), masked); ok && me.mk == mk {
					if me.rule != rule {
						return
					}
					found = true
					break
				}
			}
			if !found {
				return
			}
			e.kind = memoMegaHit
		}
	default:
		return
	}
	k := memoKey{tmpl: t.ID(), port: int32(inPort)}
	sw.memo.Put(memoHash(k), k, e)
}

// ruleMemoizable reports whether a rule's actions are a pure function of
// (template, in_port) — everything except NORMAL, whose MAC learn/lookup
// must run per frame.
func ruleMemoizable(r *Rule) bool {
	for _, a := range r.Actions {
		if a.Kind == ActNormal {
			return false
		}
	}
	return true
}

func (sw *Switch) apply(now units.Time, m *cost.Meter, b *pkt.Buf, inPort int, key FlowKey, r *Rule) {
	m.Charge(applyPerPkt)
	out := -1
	for _, a := range r.Actions {
		switch a.Kind {
		case ActDrop:
			b.Free()
			sw.Dropped++
			return
		case ActOutput:
			out = a.Port
		case ActModDlDst:
			pkt.SetEthDst(b.Bytes(), a.MAC)
		case ActModDlSrc:
			pkt.SetEthSrc(b.Bytes(), a.MAC)
		case ActModVlanVid:
			pkt.PopVLAN(b)
			pkt.PushVLAN(b, uint16(a.Port))
			m.Charge(20)
		case ActStripVlan:
			pkt.PopVLAN(b)
			m.Charge(12)
		case ActNormal:
			sw.mac.Learn(key.EthSrc, inPort, now)
			m.Charge(2 * m.Model.HashLookup)
			if p, ok := sw.mac.Lookup(key.EthDst, now); ok && p != inPort {
				out = p
			} else {
				// Flood.
				for p := range sw.ports {
					if p == inPort {
						continue
					}
					clone := sw.env.Pool.Clone(b)
					m.ChargeCopy(b.Len())
					sw.txStage[p] = append(sw.txStage[p], clone)
				}
				b.Free()
				return
			}
		}
	}
	if out < 0 || out >= len(sw.ports) {
		b.Free()
		sw.Dropped++
		return
	}
	sw.txStage[out] = append(sw.txStage[out], b)
}

// Rules returns the installed rules (for tests and the CLI).
func (sw *Switch) Rules() []*Rule { return sw.rules }

// DumpFlows renders the flow table in ovs-ofctl dump-flows style: one line
// per rule with its hit counter.
func (sw *Switch) DumpFlows() string {
	var b strings.Builder
	for _, r := range sw.rules {
		fmt.Fprintf(&b, "n_packets=%d, priority=%d, %s\n", r.Hits, r.Priority, r.Text)
	}
	return b.String()
}

func init() {
	switchdef.Register(info, func(env switchdef.Env) switchdef.Switch { return New(env) })
}
