package ovs

import (
	"fmt"
	"repro/internal/sim"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/switches/switchtest"
)

func newSUT(t *testing.T, ports int) (*Switch, []*switchtest.FakePort, switchdef.Env) {
	t.Helper()
	env := switchtest.Env()
	sw := New(env)
	fps := make([]*switchtest.FakePort, ports)
	for i := range fps {
		fps[i] = switchtest.NewFakePort("p")
		sw.AddPort(fps[i])
	}
	return sw, fps, env
}

func TestParseFlowBasics(t *testing.T) {
	r, err := parseFlow("priority=100,in_port=1,dl_dst=02:00:00:00:00:02,actions=output:2")
	if err != nil {
		t.Fatal(err)
	}
	if r.Priority != 100 || len(r.Actions) != 1 || r.Actions[0].Kind != ActOutput || r.Actions[0].Port != 2 {
		t.Fatalf("rule = %+v", r)
	}
	r2, err := parseFlow("actions=NORMAL")
	if err != nil || r2.Actions[0].Kind != ActNormal {
		t.Fatalf("NORMAL: %+v, %v", r2, err)
	}
	r3, err := parseFlow("in_port=2,actions=mod_dl_dst:02:00:00:00:00:01,output:1")
	if err != nil || len(r3.Actions) != 2 || r3.Actions[0].Kind != ActModDlDst {
		t.Fatalf("mod_dl_dst: %+v, %v", r3, err)
	}
}

func TestParseFlowFields(t *testing.T) {
	r, err := parseFlow("dl_type=0x0800,nw_src=10.0.0.1,nw_proto=17,tp_dst=2000,actions=drop")
	if err != nil {
		t.Fatal(err)
	}
	// The mask must cover exactly the named fields.
	named := 0
	for _, f := range []string{"dl_type", "nw_src", "nw_proto", "tp_dst"} {
		span := fieldSpans[f]
		for i := span.off; i < span.off+span.len; i++ {
			if r.Mask[i] != 0xff {
				t.Fatalf("field %s not masked", f)
			}
			named++
		}
	}
	for i, m := range r.Mask {
		if m == 0 {
			continue
		}
		in := false
		for _, f := range []string{"dl_type", "nw_src", "nw_proto", "tp_dst"} {
			span := fieldSpans[f]
			if i >= span.off && i < span.off+span.len {
				in = true
			}
		}
		if !in {
			t.Fatalf("unexpected mask byte at %d", i)
		}
	}
}

func TestParseFlowErrors(t *testing.T) {
	for _, s := range []string{
		"in_port=1",                  // no actions
		"bogus=3,actions=drop",       // unknown field
		"in_port=x,actions=drop",     // bad value
		"actions=output:-2",          // bad port
		"actions=teleport",           // unknown action
		"actions=",                   // empty
		"nw_src=10.0.0,actions=drop", // bad IP
		"dl_dst=zz,actions=drop",     // bad MAC
		"priority=abc,actions=drop",  // bad priority
	} {
		if _, err := parseFlow(s); err == nil {
			t.Errorf("parseFlow(%q) accepted", s)
		}
	}
}

func TestCrossConnectForwardsAndCaches(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	if err := sw.CrossConnect(0, 1); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	for i := 0; i < 3; i++ {
		fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
		switchtest.PollUntilIdle(sw, m, 0)
	}
	if len(fps[1].Out) != 3 {
		t.Fatalf("out = %d", len(fps[1].Out))
	}
	// First packet takes the slow path, the rest hit the EMC: the
	// three-tier cache behaviour the paper's single-flow traffic shows.
	if sw.SlowHits != 1 {
		t.Fatalf("slow hits = %d", sw.SlowHits)
	}
	if sw.EMCHits != 2 {
		t.Fatalf("EMC hits = %d", sw.EMCHits)
	}
}

func TestMegaflowHitAfterEMCMiss(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	// Wildcard rule on in_port only: different flows share a megaflow.
	if err := sw.AddFlow("in_port=0,actions=output:1"); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	// Two different source MACs: both miss the EMC initially; the second
	// hits the megaflow installed by the first.
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 0xaa}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 0xbb}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	switchtest.PollUntilIdle(sw, m, 1)
	if sw.SlowHits != 1 || sw.MegaHits != 1 {
		t.Fatalf("slow=%d mega=%d", sw.SlowHits, sw.MegaHits)
	}
	if len(fps[1].Out) != 2 {
		t.Fatalf("out = %d", len(fps[1].Out))
	}
}

func TestPriorityWins(t *testing.T) {
	sw, fps, env := newSUT(t, 3)
	if err := sw.AddFlow("priority=1,in_port=0,actions=output:1"); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddFlow("priority=10,in_port=0,dl_dst=02:00:00:00:00:99,actions=output:2"); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 0x99}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[2].Out) != 1 || len(fps[1].Out) != 0 {
		t.Fatalf("priority violated: out1=%d out2=%d", len(fps[1].Out), len(fps[2].Out))
	}
}

func TestNoMatchDrops(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	if err := sw.AddFlow("in_port=1,actions=output:0"); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if sw.NoMatch != 1 || sw.Dropped != 1 {
		t.Fatalf("nomatch=%d dropped=%d", sw.NoMatch, sw.Dropped)
	}
	if env.Pool.Live() != 0 {
		t.Fatal("leaked buffer")
	}
}

func TestDropActionAndModDl(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	if err := sw.AddFlow("in_port=0,dl_type=0x0806,actions=drop"); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddFlow("priority=1,in_port=0,actions=mod_dl_src:aa:aa:aa:aa:aa:aa,output:1"); err != nil {
		t.Fatal(err)
	}
	arp := switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64)
	arp.Bytes()[12], arp.Bytes()[13] = 0x08, 0x06
	ip := switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64)
	fps[0].In = append(fps[0].In, arp, ip)
	m := switchtest.Meter(env)
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 {
		t.Fatalf("out = %d", len(fps[1].Out))
	}
	want, _ := pkt.ParseMAC("aa:aa:aa:aa:aa:aa")
	if pkt.EthSrc(fps[1].Out[0].Bytes()) != want {
		t.Fatal("mod_dl_src not applied")
	}
}

func TestNormalActionLearnsAndFloods(t *testing.T) {
	sw, fps, env := newSUT(t, 3)
	if err := sw.AddFlow("actions=NORMAL"); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	a, b := pkt.MAC{2, 0, 0, 0, 0, 0xa}, pkt.MAC{2, 0, 0, 0, 0, 0xb}
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, a, b, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 || len(fps[2].Out) != 1 {
		t.Fatalf("flood = %d, %d", len(fps[1].Out), len(fps[2].Out))
	}
	fps[1].In = append(fps[1].In, switchtest.Frame(env.Pool, b, a, 64))
	switchtest.PollUntilIdle(sw, m, 1)
	if len(fps[0].Out) != 1 || len(fps[2].Out) != 1 {
		t.Fatalf("unicast after learn = %d, %d", len(fps[0].Out), len(fps[2].Out))
	}
}

func TestAddFlowValidatesOutputPort(t *testing.T) {
	sw, _, _ := newSUT(t, 2)
	if err := sw.AddFlow("in_port=0,actions=output:9"); err == nil {
		t.Fatal("flow to missing port accepted")
	}
}

func TestDelFlowsInvalidatesCaches(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	sw.DelFlows()
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	switchtest.PollUntilIdle(sw, m, 1)
	if sw.NoMatch != 1 {
		t.Fatalf("stale cache served after del-flows: nomatch=%d", sw.NoMatch)
	}
}

// Property: key pack/mask arithmetic — masked keys are idempotent and
// packing is injective for distinct in_port/MAC combinations.
func TestPropertyMaskIdempotent(t *testing.T) {
	f := func(inPort uint16, dst, src [6]byte, maskBytes [keyLen]byte) bool {
		k := FlowKey{InPort: inPort, EthDst: pkt.MAC(dst), EthSrc: pkt.MAC(src)}
		full := k.pack()
		m := mask(maskBytes)
		once := m.apply(full)
		twice := m.apply(once)
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRuleTextPreserved(t *testing.T) {
	sw, _, _ := newSUT(t, 2)
	const text = "in_port=0,actions=output:1"
	if err := sw.AddFlow(text); err != nil {
		t.Fatal(err)
	}
	if got := sw.Rules()[0].Text; got != text {
		t.Fatalf("rule text = %q", got)
	}
}

func TestSetEMCDisabled(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	sw.SetEMC(false)
	_ = sw.CrossConnect(0, 1)
	m := switchtest.Meter(env)
	for i := 0; i < 3; i++ {
		fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
		switchtest.PollUntilIdle(sw, m, 0)
	}
	if sw.EMCHits != 0 {
		t.Fatalf("EMC hits with cache disabled: %d", sw.EMCHits)
	}
	// Forwarding still works via the megaflow tier.
	if len(fps[1].Out) != 3 || sw.MegaHits != 2 {
		t.Fatalf("out=%d mega=%d", len(fps[1].Out), sw.MegaHits)
	}
}

func TestVLANTagUntagPipeline(t *testing.T) {
	// Access port 0 tags into VLAN 100 toward trunk port 1; the reverse
	// direction untags — a classic OvS deployment.
	sw, fps, env := newSUT(t, 2)
	if err := sw.AddFlow("in_port=0,actions=mod_vlan_vid:100,output:1"); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddFlow("in_port=1,dl_vlan=100,actions=strip_vlan,output:0"); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 {
		t.Fatalf("tagged out = %d", len(fps[1].Out))
	}
	tagged := fps[1].Out[0]
	if id, ok := pkt.VLANID(tagged.Bytes()); !ok || id != 100 {
		t.Fatalf("vlan = %d, %v", id, ok)
	}
	if tagged.Len() != 68 {
		t.Fatalf("tagged len = %d", tagged.Len())
	}
	// Send it back in on the trunk: it must be untagged on egress.
	fps[1].In = append(fps[1].In, env.Pool.Clone(tagged))
	switchtest.PollUntilIdle(sw, m, 1)
	if len(fps[0].Out) != 1 {
		t.Fatalf("untagged out = %d", len(fps[0].Out))
	}
	if _, ok := pkt.VLANID(fps[0].Out[0].Bytes()); ok {
		t.Fatal("tag not stripped")
	}
	if fps[0].Out[0].Len() != 64 {
		t.Fatalf("untagged len = %d", fps[0].Out[0].Len())
	}
}

func TestVLANMatchDistinguishesTags(t *testing.T) {
	sw, fps, env := newSUT(t, 3)
	_ = sw.AddFlow("in_port=0,dl_vlan=10,actions=output:1")
	_ = sw.AddFlow("in_port=0,dl_vlan=20,actions=output:2")
	m := switchtest.Meter(env)
	for _, vid := range []uint16{10, 20} {
		f := switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64)
		pkt.PushVLAN(f, vid)
		fps[0].In = append(fps[0].In, f)
	}
	// Untagged frame matches neither rule.
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 || len(fps[2].Out) != 1 {
		t.Fatalf("out = %d, %d", len(fps[1].Out), len(fps[2].Out))
	}
	if sw.NoMatch != 1 {
		t.Fatalf("untagged frame matched: nomatch=%d", sw.NoMatch)
	}
}

func TestDumpFlows(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	dump := sw.DumpFlows()
	if !strings.Contains(dump, "n_packets=1") || !strings.Contains(dump, "in_port=0,actions=output:1") {
		t.Fatalf("dump = %q", dump)
	}
}

// TestMegaflowDoesNotShadowHigherPriority is the unwildcarding regression:
// a cached low-priority decision must never swallow packets that the full
// table would give to a higher-priority rule with a different mask.
func TestMegaflowDoesNotShadowHigherPriority(t *testing.T) {
	sw, fps, env := newSUT(t, 3)
	special, _ := pkt.ParseMAC("02:00:00:00:00:99")
	if err := sw.AddFlow("priority=10,dl_dst=02:00:00:00:00:99,actions=output:2"); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddFlow("priority=1,in_port=0,actions=output:1"); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	// First: an ordinary packet takes the low-priority port rule and
	// installs a megaflow.
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 {
		t.Fatalf("plain packet out = %d", len(fps[1].Out))
	}
	// Then: same in_port, but the special destination — must go to the
	// high-priority rule's port even though a megaflow exists for the
	// in_port rule.
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, special, 64))
	switchtest.PollUntilIdle(sw, m, 1)
	if len(fps[2].Out) != 1 {
		t.Fatalf("special packet misforwarded: out1=%d out2=%d", len(fps[1].Out), len(fps[2].Out))
	}
}

// refClassify is the straightforward highest-priority-match reference.
func refClassify(rules []*Rule, full packedKey) *Rule {
	var best *Rule
	for _, r := range rules {
		if r.Mask.apply(full) == r.Match && r.beats(best) {
			best = r
		}
	}
	return best
}

// TestPropertyCachedClassifierMatchesReference drives random rule sets and
// packet sequences through the full three-tier pipeline and checks every
// decision against the reference classifier — caches must be transparent.
func TestPropertyCachedClassifierMatchesReference(t *testing.T) {
	fields := []string{"in_port", "dl_dst", "dl_src", "tp_dst", "nw_proto"}
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		env := switchtest.Env()
		sw := New(env)
		for i := 0; i < 4; i++ {
			sw.AddPort(switchtest.NewFakePort("p"))
		}
		// Random rules over random field subsets.
		nRules := 1 + rng.Intn(8)
		for i := 0; i < nRules; i++ {
			flow := fmt.Sprintf("priority=%d", rng.Intn(20))
			for _, fd := range fields {
				if !rng.Bernoulli(0.4) {
					continue
				}
				switch fd {
				case "in_port":
					flow += fmt.Sprintf(",in_port=%d", rng.Intn(3))
				case "dl_dst":
					flow += fmt.Sprintf(",dl_dst=02:00:00:00:00:%02x", rng.Intn(4))
				case "dl_src":
					flow += fmt.Sprintf(",dl_src=02:00:00:00:01:%02x", rng.Intn(4))
				case "tp_dst":
					flow += fmt.Sprintf(",tp_dst=%d", 2000+rng.Intn(3))
				case "nw_proto":
					flow += ",nw_proto=17"
				}
			}
			flow += fmt.Sprintf(",actions=output:%d", rng.Intn(4))
			if err := sw.AddFlow(flow); err != nil {
				return false
			}
		}
		// Random packet keys, repeated to exercise EMC and megaflow hits.
		m := switchtest.Meter(env)
		for i := 0; i < 300; i++ {
			key := FlowKey{
				InPort:  uint16(rng.Intn(3)),
				EthDst:  pkt.MAC{2, 0, 0, 0, 0, byte(rng.Intn(4))},
				EthSrc:  pkt.MAC{2, 0, 0, 0, 1, byte(rng.Intn(4))},
				EthType: pkt.EtherTypeIPv4,
				IPProto: 17,
				L4Dst:   uint16(2000 + rng.Intn(3)),
			}
			got := sw.classify(0, m, key)
			want := refClassify(sw.Rules(), key.pack())
			if got != want {
				return false
			}
			m.Drain()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
