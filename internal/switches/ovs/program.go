package ovs

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/switches/switchdef"
)

// OvS's Programmer lowers typed rules into the same OpenFlow table
// AddFlow strings feed: each typed match field packs into its fieldSpan,
// actions map one-to-one, and the canonical ovs-ofctl text is synthesized
// so DumpFlows output is indistinguishable from string-installed rules.
// Install and Revoke run the full rebuildGroups + invalidateCaches
// sequence, so cacheGen advances and every recorded charge script (memo)
// is retired — the PR 7 invalidation invariant.

// lowerRule converts a typed rule into the internal representation.
func lowerRule(r switchdef.Rule) (*Rule, error) {
	out := &Rule{Priority: r.EffectivePriority()}
	m := r.Match
	var key FlowKey
	packed := key.pack()
	set := func(name string, raw []byte) {
		span := fieldSpans[name]
		copy(packed[span.off:span.off+span.len], raw)
		for i := span.off; i < span.off+span.len; i++ {
			out.Mask[i] = 0xff
		}
	}
	u16 := func(v uint16) []byte {
		b := make([]byte, 2)
		binary.BigEndian.PutUint16(b, v)
		return b
	}
	if m.Fields&switchdef.FInPort != 0 {
		set("in_port", u16(uint16(m.InPort)))
	}
	if m.Fields&switchdef.FEthDst != 0 {
		set("dl_dst", m.EthDst[:])
	}
	if m.Fields&switchdef.FEthSrc != 0 {
		set("dl_src", m.EthSrc[:])
	}
	if m.Fields&switchdef.FEthType != 0 {
		set("dl_type", u16(m.EthType))
	}
	if m.Fields&switchdef.FVLAN != 0 {
		set("dl_vlan", u16(m.VLAN+1)) // stored as VID+1, like the parser
	}
	if m.Fields&switchdef.FIPSrc != 0 {
		set("nw_src", m.IPSrc[:])
	}
	if m.Fields&switchdef.FIPDst != 0 {
		set("nw_dst", m.IPDst[:])
	}
	if m.Fields&switchdef.FIPProto != 0 {
		set("nw_proto", []byte{m.IPProto})
	}
	if m.Fields&switchdef.FL4Src != 0 {
		set("tp_src", u16(m.L4Src))
	}
	if m.Fields&switchdef.FL4Dst != 0 {
		set("tp_dst", u16(m.L4Dst))
	}
	out.Match = mask(out.Mask).apply(packed)

	for _, a := range r.Actions {
		switch a.Kind {
		case switchdef.RuleOutput:
			out.Actions = append(out.Actions, Action{Kind: ActOutput, Port: a.Port})
		case switchdef.RuleDrop:
			out.Actions = append(out.Actions, Action{Kind: ActDrop})
		case switchdef.RuleSetEthDst:
			out.Actions = append(out.Actions, Action{Kind: ActModDlDst, MAC: a.MAC})
		case switchdef.RuleSetEthSrc:
			out.Actions = append(out.Actions, Action{Kind: ActModDlSrc, MAC: a.MAC})
		default:
			return nil, fmt.Errorf("ovs: unsupported rule action kind %d", a.Kind)
		}
	}
	if len(out.Actions) == 0 {
		return nil, fmt.Errorf("ovs: rule has no actions")
	}
	out.Text = ruleText(r)
	return out, nil
}

// ruleText renders the canonical ovs-ofctl add-flow text of a typed rule
// (match fields in fieldSpan order, then the action list).
func ruleText(r switchdef.Rule) string {
	var parts []string
	if p := r.EffectivePriority(); p != 32768 {
		parts = append(parts, fmt.Sprintf("priority=%d", p))
	}
	m := r.Match
	if m.Fields&switchdef.FInPort != 0 {
		parts = append(parts, fmt.Sprintf("in_port=%d", m.InPort))
	}
	if m.Fields&switchdef.FEthDst != 0 {
		parts = append(parts, "dl_dst="+m.EthDst.String())
	}
	if m.Fields&switchdef.FEthSrc != 0 {
		parts = append(parts, "dl_src="+m.EthSrc.String())
	}
	if m.Fields&switchdef.FEthType != 0 {
		parts = append(parts, fmt.Sprintf("dl_type=0x%04x", m.EthType))
	}
	if m.Fields&switchdef.FVLAN != 0 {
		parts = append(parts, fmt.Sprintf("dl_vlan=%d", m.VLAN))
	}
	if m.Fields&switchdef.FIPSrc != 0 {
		parts = append(parts, fmt.Sprintf("nw_src=%d.%d.%d.%d", m.IPSrc[0], m.IPSrc[1], m.IPSrc[2], m.IPSrc[3]))
	}
	if m.Fields&switchdef.FIPDst != 0 {
		parts = append(parts, fmt.Sprintf("nw_dst=%d.%d.%d.%d", m.IPDst[0], m.IPDst[1], m.IPDst[2], m.IPDst[3]))
	}
	if m.Fields&switchdef.FIPProto != 0 {
		parts = append(parts, fmt.Sprintf("nw_proto=%d", m.IPProto))
	}
	if m.Fields&switchdef.FL4Src != 0 {
		parts = append(parts, fmt.Sprintf("tp_src=%d", m.L4Src))
	}
	if m.Fields&switchdef.FL4Dst != 0 {
		parts = append(parts, fmt.Sprintf("tp_dst=%d", m.L4Dst))
	}
	var acts []string
	for _, a := range r.Actions {
		switch a.Kind {
		case switchdef.RuleOutput:
			acts = append(acts, fmt.Sprintf("output:%d", a.Port))
		case switchdef.RuleDrop:
			acts = append(acts, "drop")
		case switchdef.RuleSetEthDst:
			acts = append(acts, "mod_dl_dst:"+a.MAC.String())
		case switchdef.RuleSetEthSrc:
			acts = append(acts, "mod_dl_src:"+a.MAC.String())
		}
	}
	parts = append(parts, "actions="+strings.Join(acts, ","))
	return strings.Join(parts, ",")
}

// Install implements switchdef.Programmer: lower the typed rule into the
// OpenFlow table (replacing an existing rule with the same priority and
// match in place) and flush every derived cache.
func (sw *Switch) Install(r switchdef.Rule) error {
	lowered, err := lowerRule(r)
	if err != nil {
		return err
	}
	for _, a := range lowered.Actions {
		if a.Kind == ActOutput && (a.Port < 0 || a.Port >= len(sw.ports)) {
			return fmt.Errorf("ovs: rule outputs to missing port %d", a.Port)
		}
	}
	if old := sw.findRule(lowered); old != nil {
		// Replace in place: the original installation order (seq) is the
		// rule's identity in tie-breaking, so it must be preserved.
		lowered.seq = old.seq
		for i, existing := range sw.rules {
			if existing == old {
				sw.rules[i] = lowered
				break
			}
		}
	} else {
		lowered.seq = len(sw.rules)
		sw.rules = append(sw.rules, lowered)
	}
	sw.prog.Put(r)
	sw.rebuildGroups()
	sw.invalidateCaches()
	return nil
}

// Revoke implements switchdef.Programmer: remove the rule with r's
// (priority, match) identity and flush every derived cache.
func (sw *Switch) Revoke(r switchdef.Rule) error {
	lowered, err := lowerRule(r)
	if err != nil {
		return err
	}
	old := sw.findRule(lowered)
	if old == nil {
		return fmt.Errorf("ovs: revoke of absent rule %q", lowered.Text)
	}
	for i, existing := range sw.rules {
		if existing == old {
			sw.rules = append(sw.rules[:i], sw.rules[i+1:]...)
			break
		}
	}
	sw.prog.Delete(r)
	sw.rebuildGroups()
	sw.invalidateCaches()
	return nil
}

// Snapshot implements switchdef.Programmer: the typed rules installed
// through Install, in install order. Rules fed through raw AddFlow
// strings live below the typed surface and are not echoed.
func (sw *Switch) Snapshot() []switchdef.Rule { return sw.prog.Snapshot() }

// EMCEvictionCount reports live EMC replacements (the testbed collects it
// through an optional stats interface).
func (sw *Switch) EMCEvictionCount() int64 { return sw.EMCEvictions }

// findRule locates an installed rule with the same identity (priority,
// mask, masked match) as lowered.
func (sw *Switch) findRule(lowered *Rule) *Rule {
	for _, r := range sw.rules {
		if r.Priority == lowered.Priority && r.Mask == lowered.Mask && r.Match == lowered.Match {
			return r
		}
	}
	return nil
}
