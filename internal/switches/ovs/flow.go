package ovs

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pkt"
)

// FlowKey is the exact-match key OvS extracts from each packet (miniflow).
type FlowKey struct {
	InPort  uint16
	EthDst  pkt.MAC
	EthSrc  pkt.MAC
	EthType uint16
	// VLAN holds the 802.1Q VLAN ID plus one (0 = untagged), so
	// dl_vlan matches can distinguish "no tag" from VID 0.
	VLAN    uint16
	IPSrc   [4]byte
	IPDst   [4]byte
	IPProto uint8
	L4Src   uint16
	L4Dst   uint16
}

// keyLen is the packed length of a FlowKey.
const keyLen = 2 + 6 + 6 + 2 + 2 + 4 + 4 + 1 + 2 + 2

// packedKey is a comparable packed key, usable as a map key.
type packedKey [keyLen]byte

func (k *FlowKey) pack() packedKey {
	var p packedKey
	binary.BigEndian.PutUint16(p[0:], k.InPort)
	copy(p[2:], k.EthDst[:])
	copy(p[8:], k.EthSrc[:])
	binary.BigEndian.PutUint16(p[14:], k.EthType)
	binary.BigEndian.PutUint16(p[16:], k.VLAN)
	copy(p[18:], k.IPSrc[:])
	copy(p[22:], k.IPDst[:])
	p[26] = k.IPProto
	binary.BigEndian.PutUint16(p[27:], k.L4Src)
	binary.BigEndian.PutUint16(p[29:], k.L4Dst)
	return p
}

// mask selects which key bytes a rule matches on.
type mask packedKey

func (m mask) apply(k packedKey) packedKey {
	var out packedKey
	for i := range k {
		out[i] = k[i] & m[i]
	}
	return out
}

// field offsets within packedKey, for mask construction.
type fieldSpan struct{ off, len int }

var fieldSpans = map[string]fieldSpan{
	"in_port":  {0, 2},
	"dl_dst":   {2, 6},
	"dl_src":   {8, 6},
	"dl_type":  {14, 2},
	"dl_vlan":  {16, 2},
	"nw_src":   {18, 4},
	"nw_dst":   {22, 4},
	"nw_proto": {26, 1},
	"tp_src":   {27, 2},
	"tp_dst":   {29, 2},
}

// ActionKind enumerates supported OpenFlow actions.
type ActionKind int

// Supported actions.
const (
	ActOutput ActionKind = iota
	ActDrop
	ActNormal // L2-learning switch behaviour
	ActModDlDst
	ActModDlSrc
	ActModVlanVid // tag (or retag) with Port as the VLAN ID
	ActStripVlan
)

// Action is one flow action.
type Action struct {
	Kind ActionKind
	Port int
	MAC  pkt.MAC
}

// Rule is one OpenFlow rule.
type Rule struct {
	Priority int
	Match    packedKey // pre-masked match values
	Mask     mask
	Actions  []Action
	Text     string // original add-flow text
	// seq is the installation order; among equal priorities the earlier
	// rule wins (OpenFlow leaves overlapping equal-priority matches
	// undefined; the datapath must still be deterministic).
	seq int

	// Hits counts rule matches (slow-path and via caches).
	Hits int64
}

// beats reports whether r wins over other ((priority, insertion) order).
func (r *Rule) beats(other *Rule) bool {
	if other == nil {
		return true
	}
	if r.Priority != other.Priority {
		return r.Priority > other.Priority
	}
	return r.seq < other.seq
}

// parseFlow parses an ovs-ofctl add-flow string such as
//
//	priority=100,in_port=1,dl_dst=02:00:00:00:00:02,actions=output:2
//	in_port=2,actions=mod_dl_dst:02:00:00:00:00:01,output:1
//	actions=NORMAL
func parseFlow(s string) (*Rule, error) {
	r := &Rule{Priority: 32768, Text: s} // OpenFlow default priority
	ai := strings.Index(s, "actions=")
	if ai < 0 {
		return nil, fmt.Errorf("ovs: flow %q has no actions", s)
	}
	matchPart := strings.TrimSuffix(strings.TrimSpace(s[:ai]), ",")
	actPart := s[ai+len("actions="):]

	var key FlowKey
	packed := key.pack()
	if matchPart != "" {
		for _, kv := range strings.Split(matchPart, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			eq := strings.Index(kv, "=")
			if eq < 0 {
				return nil, fmt.Errorf("ovs: bad match %q", kv)
			}
			name, val := kv[:eq], kv[eq+1:]
			if name == "priority" {
				p, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("ovs: bad priority %q", val)
				}
				r.Priority = p
				continue
			}
			span, ok := fieldSpans[name]
			if !ok {
				return nil, fmt.Errorf("ovs: unsupported match field %q", name)
			}
			raw, err := parseFieldValue(name, val)
			if err != nil {
				return nil, err
			}
			copy(packed[span.off:span.off+span.len], raw)
			for i := span.off; i < span.off+span.len; i++ {
				r.Mask[i] = 0xff
			}
		}
	}
	r.Match = mask(r.Mask).apply(packed)

	for _, a := range strings.Split(actPart, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		act, err := parseAction(a)
		if err != nil {
			return nil, err
		}
		r.Actions = append(r.Actions, act)
	}
	if len(r.Actions) == 0 {
		return nil, fmt.Errorf("ovs: flow %q has empty actions", s)
	}
	return r, nil
}

func parseFieldValue(name, val string) ([]byte, error) {
	switch name {
	case "in_port", "dl_type", "tp_src", "tp_dst", "dl_vlan":
		base := 10
		v := val
		if strings.HasPrefix(val, "0x") {
			base, v = 16, val[2:]
		}
		n, err := strconv.ParseUint(v, base, 16)
		if err != nil {
			return nil, fmt.Errorf("ovs: bad %s value %q", name, val)
		}
		if name == "dl_vlan" {
			// Stored as VID+1 so untagged (0) is distinguishable.
			n++
		}
		out := make([]byte, 2)
		binary.BigEndian.PutUint16(out, uint16(n))
		return out, nil
	case "dl_src", "dl_dst":
		m, err := pkt.ParseMAC(val)
		if err != nil {
			return nil, err
		}
		return m[:], nil
	case "nw_src", "nw_dst":
		parts := strings.Split(val, ".")
		if len(parts) != 4 {
			return nil, fmt.Errorf("ovs: bad IPv4 %q", val)
		}
		out := make([]byte, 4)
		for i, p := range parts {
			n, err := strconv.ParseUint(p, 10, 8)
			if err != nil {
				return nil, fmt.Errorf("ovs: bad IPv4 %q", val)
			}
			out[i] = byte(n)
		}
		return out, nil
	case "nw_proto":
		n, err := strconv.ParseUint(val, 10, 8)
		if err != nil {
			return nil, fmt.Errorf("ovs: bad nw_proto %q", val)
		}
		return []byte{byte(n)}, nil
	}
	return nil, fmt.Errorf("ovs: unsupported field %q", name)
}

func parseAction(a string) (Action, error) {
	switch {
	case a == "drop":
		return Action{Kind: ActDrop}, nil
	case a == "NORMAL" || a == "normal":
		return Action{Kind: ActNormal}, nil
	case strings.HasPrefix(a, "output:"):
		n, err := strconv.Atoi(a[len("output:"):])
		if err != nil || n < 0 {
			return Action{}, fmt.Errorf("ovs: bad output %q", a)
		}
		return Action{Kind: ActOutput, Port: n}, nil
	case strings.HasPrefix(a, "mod_dl_dst:"):
		m, err := pkt.ParseMAC(a[len("mod_dl_dst:"):])
		if err != nil {
			return Action{}, err
		}
		return Action{Kind: ActModDlDst, MAC: m}, nil
	case strings.HasPrefix(a, "mod_dl_src:"):
		m, err := pkt.ParseMAC(a[len("mod_dl_src:"):])
		if err != nil {
			return Action{}, err
		}
		return Action{Kind: ActModDlSrc, MAC: m}, nil
	case strings.HasPrefix(a, "mod_vlan_vid:"):
		n, err := strconv.ParseUint(a[len("mod_vlan_vid:"):], 10, 12)
		if err != nil {
			return Action{}, fmt.Errorf("ovs: bad VLAN id %q", a)
		}
		return Action{Kind: ActModVlanVid, Port: int(n)}, nil
	case a == "strip_vlan":
		return Action{Kind: ActStripVlan}, nil
	}
	return Action{}, fmt.Errorf("ovs: unsupported action %q", a)
}

// extractKey builds the FlowKey for a frame received on inPort.
func extractKey(b *pkt.Buf, inPort int) FlowKey {
	var k FlowKey
	k.InPort = uint16(inPort)
	data := b.View()
	eth, err := pkt.ParseEth(data)
	if err != nil {
		return k
	}
	k.EthDst, k.EthSrc, k.EthType = eth.Dst, eth.Src, eth.EtherType
	l3 := data[pkt.EthHdrLen:]
	if vid, tagged := pkt.VLANID(data); tagged {
		k.VLAN = vid + 1
		k.EthType = binary.BigEndian.Uint16(data[pkt.EthHdrLen+2 : pkt.EthHdrLen+4])
		l3 = data[pkt.EthHdrLen+pkt.VLANTagLen:]
	}
	if k.EthType != pkt.EtherTypeIPv4 || len(l3) < pkt.IPv4HdrLen {
		return k
	}
	ip, err := pkt.ParseIPv4(l3)
	if err != nil {
		return k
	}
	k.IPSrc, k.IPDst, k.IPProto = ip.Src, ip.Dst, ip.Proto
	if ip.Proto == pkt.ProtoUDP || ip.Proto == pkt.ProtoTCP {
		if udp, err := pkt.ParseUDP(l3[pkt.IPv4HdrLen:]); err == nil {
			k.L4Src, k.L4Dst = udp.SrcPort, udp.DstPort
		}
	}
	return k
}
