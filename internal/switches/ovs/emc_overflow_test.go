package ovs

import (
	"fmt"
	"testing"

	"repro/internal/pkt"
	"repro/internal/switches/switchtest"
	"repro/internal/units"
)

// drainFreed frees and counts everything a fake port has transmitted, so
// overflow runs never pin tens of thousands of buffers.
func drainFreed(p *switchtest.FakePort) int {
	n := len(p.Out)
	for _, b := range p.Out {
		b.Free()
	}
	p.Out = p.Out[:0]
	return n
}

// emcOverflowRun drives 1.25× the EMC's capacity in distinct flows through
// a fresh switch, twice over, and digests every observable the eviction
// order can influence: tier hit counters, eviction and drop counts,
// delivered frames, and the meter's total simulated cycles.
func emcOverflowRun(t *testing.T) string {
	t.Helper()
	env := switchtest.Env()
	sw := New(env)
	in, out := switchtest.NewFakePort("in"), switchtest.NewFakePort("out")
	sw.AddPort(in)
	sw.AddPort(out)
	if err := sw.AddFlow("in_port=0,actions=output:1"); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	now := units.Time(0)
	const flows = EMCCapacity + EMCCapacity/4
	delivered := 0
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < flows; i++ {
			src := pkt.MAC{2, 1, byte(i >> 16), byte(i >> 8), byte(i), 0}
			in.In = append(in.In, switchtest.Frame(env.Pool, src, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
			if len(in.In) >= Burst {
				now = switchtest.PollUntilIdle(sw, m, now)
				delivered += drainFreed(out)
			}
		}
		now = switchtest.PollUntilIdle(sw, m, now)
		delivered += drainFreed(out)
	}
	if sw.EMCEvictions == 0 {
		t.Fatalf("no EMC evictions after %d distinct flows (capacity %d)", flows, EMCCapacity)
	}
	if live := env.Pool.Live(); live != 0 {
		t.Fatalf("leaked %d buffers", live)
	}
	return fmt.Sprintf("emc=%d mega=%d slow=%d evict=%d fwd=%d drop=%d delivered=%d cycles=%d",
		sw.EMCHits, sw.MegaHits, sw.SlowHits, sw.EMCEvictions,
		sw.Forwarded, sw.Dropped, delivered, m.Total())
}

// TestEMCOverflowEvictionDeterministic is the clock-hand regression: the
// map-backed EMC this cache replaced evicted by randomized map iteration,
// so overflowing workloads produced run-dependent hit counts and timing.
// Two identical overflow runs must now agree on every observable.
func TestEMCOverflowEvictionDeterministic(t *testing.T) {
	first := emcOverflowRun(t)
	second := emcOverflowRun(t)
	if first != second {
		t.Fatalf("EMC overflow run not reproducible:\n run 1: %s\n run 2: %s", first, second)
	}
}
