// Package snabb models the Snabb switch (commit 771b55c): a Lua/LuaJIT app
// engine in which "apps" connected by links process packets in engine
// "breaths".
//
// Each breath pulls packets from source apps into links, then runs push
// apps in configuration order. Two Snabb signatures are modelled
// explicitly:
//
//   - LuaJIT warmup: per-packet cost starts high and decays as hot traces
//     compile (the paper credits Snabb's runtime optimization; its cost is
//     the elevated latency of the early packets and the periodic trace
//     work);
//   - overload collapse: past ~9 apps the trace cache churns and the
//     per-packet cost multiplies, reproducing the paper's throughput
//     plummet at 4-VNF loopback chains (Fig. 5) — "the workload is too
//     much to handle with a single core".
//
// Snabb implements its own vhost-user backend, priced slightly cheaper
// than DPDK's (VhostCostScale), which is why its v2v outperforms its p2v
// in Fig. 4.
package snabb

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/ring"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// LinkCap is the Snabb inter-app link ring size.
const LinkCap = 1024

// PullBatch is how many packets a source app pulls per breath.
const PullBatch = 128

// Cost constants, calibrated to land p2p 64B at ≈ 75 ns/packet (Fig. 4a:
// 8.9 Gbps unidirectional).
const (
	breathFixed   = 150 // engine loop, timeline, app housekeeping
	appRunFixed   = 70  // per app run per breath
	nicPerPkt     = 33  // NIC app per-packet work
	physRxExtra   = 39  // Snabb's own (non-DPDK) NIC driver receive tax
	physTxExtra   = 9
	linkPerPkt    = 9   // link push/pop
	warmupFactor  = 2.0 // initial JIT penalty multiplier (decays)
	warmupPackets = 30000
	thrashApps    = 9 // app count beyond which the trace cache thrashes
	thrashFactor  = 2.6
	jitterFrac    = 0.05
	// idleSleep is the engine's inter-breath pause while underloaded
	// (Snabb's timer-paced breath loop); it sets the low-load latency
	// floor and vanishes under backlog, leaving throughput unaffected.
	idleSleep      = 8 * units.Microsecond
	breathFullLoad = 32 // breaths at least this full run back to back
)

// App is a Snabb app. Source apps implement Pull; processing apps
// implement Push.
type App interface {
	Name() string
}

// Puller pulls new packets into output links (NIC receive).
type Puller interface {
	App
	Pull(sw *Switch, now units.Time, m *cost.Meter) int
}

// Pusher consumes packets from input links (NIC transmit, forwarding).
type Pusher interface {
	App
	Push(sw *Switch, now units.Time, m *cost.Meter) int
}

// Link is a Snabb inter-app link.
type Link struct {
	Name string
	Ring *ring.SPSC
}

// Switch is a Snabb engine instance. Reconfiguration means recompiling
// the app network (engine.configure), not editing a live rule table, so
// the Programmer surface reports ErrNoRuntimeRules.
type Switch struct {
	switchdef.NoRuntimeRules

	env   switchdef.Env
	ports []switchdef.DevPort

	apps  []App
	links []*Link

	now     units.Time
	pktSeen int64

	// jit and gcFactor are the LuaJIT multiplier and GC-phase factor for
	// the breath in progress: now is fixed for the whole breath and
	// pktSeen only advances at its end, so both are breath constants,
	// resolved once in Poll instead of per app run.
	jit      float64
	gcFactor float64

	// Forwarded and Dropped count data-plane outcomes.
	Forwarded, Dropped int64
}

var info = switchdef.Info{
	Name:              "snabb",
	Display:           "Snabb",
	Version:           "771b55c",
	SelfContained:     false,
	Paradigm:          "structured",
	ProcessingModel:   "pipeline",
	VirtualIface:      "vhost-user",
	Reprogrammability: "high",
	Languages:         "Lua, C",
	MainPurpose:       "VM-to-VM",
	BestAt:            "Fast deployment, runtime optimization",
	Remarks:           "Bottlenecked with multiple VNFs",
	IOMode:            switchdef.PollMode,
	VhostEnqScale:     1.4,
	VhostDeqScale:     0.45,
}

// New returns an empty Snabb engine.
func New(env switchdef.Env) *Switch { return &Switch{env: env} }

// Info implements switchdef.Switch.
func (sw *Switch) Info() switchdef.Info { return info }

// AddPort implements switchdef.Switch.
func (sw *Switch) AddPort(p switchdef.DevPort) int {
	sw.ports = append(sw.ports, p)
	return len(sw.ports) - 1
}

// jitScale is the current LuaJIT cost multiplier.
func (sw *Switch) jitScale() float64 {
	s := 1 + warmupFactor*math.Exp(-float64(sw.pktSeen)/warmupPackets)
	if len(sw.apps) > thrashApps {
		s *= thrashFactor
	}
	return s
}

func (sw *Switch) chargeApp(m *cost.Meter, perPkt units.Cycles, n int) {
	c := appRunFixed + units.Cycles(n)*perPkt
	m.ChargeNoisy(cost.ScaleBy(sw.gcFactor, units.Cycles(float64(c)*sw.jit)), jitterFrac)
}

// NewLink creates a named inter-app link (config.link).
func (sw *Switch) NewLink(name string) *Link {
	l := &Link{Name: name, Ring: ring.New(LinkCap)}
	sw.links = append(sw.links, l)
	return l
}

// AddNICApp creates the paired rx/tx app for a port (config.app with a
// driver): the returned app pulls from the port into out and pushes from
// in to the port. Either link may be nil.
func (sw *Switch) AddNICApp(name string, port int, out, in *Link) (*NICApp, error) {
	if port < 0 || port >= len(sw.ports) {
		return nil, fmt.Errorf("snabb: no port %d", port)
	}
	a := &NICApp{name: name, dev: sw.ports[port], out: out, in: in}
	sw.apps = append(sw.apps, a)
	return a, nil
}

// CrossConnect implements switchdef.Switch like the paper's custom module:
//
//	config.app(c, "nic1", ..., {pciaddr = pci1})
//	config.app(c, "nic2", ..., {pciaddr = pci2})
//	config.link(c, "nic1.tx -> nic2.rx")
func (sw *Switch) CrossConnect(a, b int) error {
	ab := sw.NewLink(fmt.Sprintf("nic%d.tx -> nic%d.rx", a, b))
	ba := sw.NewLink(fmt.Sprintf("nic%d.tx -> nic%d.rx", b, a))
	if _, err := sw.AddNICApp(fmt.Sprintf("nic%d", a), a, ab, ba); err != nil {
		return err
	}
	if _, err := sw.AddNICApp(fmt.Sprintf("nic%d", b), b, ba, ab); err != nil {
		return err
	}
	return nil
}

// gcMod models LuaJIT GC/trace maintenance phases.
var gcMod = cost.Modulation{
	HighFactor: 1.06, HighDur: units.Millisecond,
	LowFactor: 0.98, LowDur: units.Millisecond,
}

// Poll implements switchdef.Switch: one engine breath over every app.
// Multi-core runs give each core its own Switch instance — Snabb's real
// scaling model, one engine process per core — see internal/multicore.
func (sw *Switch) Poll(now units.Time, m *cost.Meter) bool {
	sw.now = now
	sw.jit = sw.jitScale()
	sw.gcFactor = gcMod.Factor(now)
	m.Charge(breathFixed)
	worked := 0
	for _, a := range sw.apps {
		if p, ok := a.(Puller); ok {
			worked += p.Pull(sw, now, m)
		}
	}
	for _, a := range sw.apps {
		if p, ok := a.(Pusher); ok {
			worked += p.Push(sw, now, m)
		}
	}
	if worked == 0 {
		// Engine sleeps between idle breaths.
		m.Stall(idleSleep)
		return false
	}
	sw.pktSeen += int64(worked)
	if worked < breathFullLoad {
		// Underloaded: the engine paces breaths on its timer.
		m.Stall(idleSleep)
	}
	return true
}

// NICApp couples a device to a pair of links.
type NICApp struct {
	scratch [PullBatch]*pkt.Buf // staging, reused across breaths

	name    string
	dev     switchdef.DevPort
	out, in *Link

	Rx, Tx int64
}

// Name implements App.
func (a *NICApp) Name() string { return a.name }

// Pull implements Puller: device → out link.
func (a *NICApp) Pull(sw *Switch, now units.Time, m *cost.Meter) int {
	if a.out == nil {
		return 0
	}
	burst := &a.scratch
	space := a.out.Ring.Free()
	if space == 0 {
		return 0
	}
	if space > PullBatch {
		space = PullBatch
	}
	n := a.dev.RxBurst(now, m, burst[:space])
	if n == 0 {
		return 0
	}
	per := units.Cycles(nicPerPkt + linkPerPkt)
	if a.dev.Kind() == switchdef.PhysKind {
		per += physRxExtra
	}
	sw.chargeApp(m, per, n)
	for _, b := range burst[:n] {
		a.out.Ring.Push(b)
	}
	a.Rx += int64(n)
	return n
}

// Push implements Pusher: in link → device.
func (a *NICApp) Push(sw *Switch, now units.Time, m *cost.Meter) int {
	if a.in == nil {
		return 0
	}
	burst := &a.scratch
	n := a.in.Ring.DrainTo(burst[:])
	if n == 0 {
		return 0
	}
	per := units.Cycles(nicPerPkt + linkPerPkt)
	if a.dev.Kind() == switchdef.PhysKind {
		per += physTxExtra
	}
	sw.chargeApp(m, per, n)
	sent := a.dev.TxBurst(now, m, burst[:n])
	a.Tx += int64(sent)
	sw.Forwarded += int64(sent)
	sw.Dropped += int64(n - sent)
	return n
}

// Apps returns the configured apps.
func (sw *Switch) Apps() []App { return sw.apps }

func init() {
	switchdef.Register(info, func(env switchdef.Env) switchdef.Switch { return New(env) })
}

// FilterApp is a push app dropping frames whose EtherType is not allowed —
// a minimal example of composing network functions from Snabb apps
// (config.app with a filter module).
type FilterApp struct {
	scratch [PullBatch]*pkt.Buf // staging, reused across breaths

	name    string
	in, out *Link
	allow   map[uint16]bool

	Passed, Dropped int64
}

const filterPerPkt = 14

// AddFilterApp inserts a filter between two links, allowing only the given
// EtherTypes.
func (sw *Switch) AddFilterApp(name string, in, out *Link, allow ...uint16) *FilterApp {
	a := &FilterApp{name: name, in: in, out: out, allow: map[uint16]bool{}}
	for _, et := range allow {
		a.allow[et] = true
	}
	sw.apps = append(sw.apps, a)
	return a
}

// Name implements App.
func (a *FilterApp) Name() string { return a.name }

// Push implements Pusher: drain the input link, filter, forward.
func (a *FilterApp) Push(sw *Switch, now units.Time, m *cost.Meter) int {
	burst := &a.scratch
	n := a.in.Ring.DrainTo(burst[:])
	if n == 0 {
		return 0
	}
	sw.chargeApp(m, filterPerPkt+linkPerPkt, n)
	for _, b := range burst[:n] {
		eth, err := pkt.ParseEth(b.View())
		if err != nil || !a.allow[eth.EtherType] {
			b.Free()
			a.Dropped++
			sw.Dropped++
			continue
		}
		if !a.out.Ring.Push(b) {
			b.Free()
			a.Dropped++
			sw.Dropped++
			continue
		}
		a.Passed++
	}
	return n
}
