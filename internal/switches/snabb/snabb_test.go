package snabb

import (
	"testing"

	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/switches/switchtest"
)

func newSUT(t *testing.T, ports int) (*Switch, []*switchtest.FakePort, switchdef.Env) {
	t.Helper()
	env := switchtest.Env()
	sw := New(env)
	fps := make([]*switchtest.FakePort, ports)
	for i := range fps {
		fps[i] = switchtest.NewFakePort("p")
		sw.AddPort(fps[i])
	}
	return sw, fps, env
}

func frame(env switchdef.Env) *pkt.Buf {
	return switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64)
}

func TestCrossConnectBreathFlow(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	if err := sw.CrossConnect(0, 1); err != nil {
		t.Fatal(err)
	}
	if len(sw.Apps()) != 2 {
		t.Fatalf("apps = %d", len(sw.Apps()))
	}
	fps[0].In = append(fps[0].In, frame(env))
	fps[1].In = append(fps[1].In, frame(env))
	m := switchtest.Meter(env)
	// One breath: pulls fill the links, pushes drain them.
	if !sw.Poll(0, m) {
		t.Fatal("breath reported no work")
	}
	if len(fps[1].Out) != 1 || len(fps[0].Out) != 1 {
		t.Fatalf("outputs = %d, %d", len(fps[0].Out), len(fps[1].Out))
	}
	if sw.Forwarded != 2 {
		t.Fatalf("forwarded = %d", sw.Forwarded)
	}
}

func TestJITWarmupDecays(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	m := switchtest.Meter(env)
	cold := sw.jitScale()
	if cold < 2.5 {
		t.Fatalf("cold scale = %f, want ~3", cold)
	}
	// Push enough packets through to compile the traces.
	for round := 0; round < 3000; round++ {
		for i := 0; i < 32; i++ {
			fps[0].In = append(fps[0].In, frame(env))
		}
		sw.Poll(0, m)
		m.Drain()
		for _, b := range fps[1].Out {
			b.Free()
		}
		fps[1].Out = fps[1].Out[:0]
	}
	warm := sw.jitScale()
	if warm > 1.1 {
		t.Fatalf("warm scale = %f, want ~1", warm)
	}
}

func TestTraceThrashBeyondAppLimit(t *testing.T) {
	env := switchtest.Env()
	sw := New(env)
	for i := 0; i < 10; i++ {
		sw.AddPort(switchtest.NewFakePort("p"))
	}
	// 5 cross-connects = 10 apps > thrashApps: the 4-VNF collapse.
	for i := 0; i < 10; i += 2 {
		if err := sw.CrossConnect(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	sw.pktSeen = 1 << 30 // fully warm
	if s := sw.jitScale(); s < 2 {
		t.Fatalf("thrash scale = %f, want >= thrashFactor", s)
	}
	// A smaller config stays at ~1.
	sw2, _, _ := newSUT(t, 2)
	_ = sw2.CrossConnect(0, 1)
	sw2.pktSeen = 1 << 30
	if s := sw2.jitScale(); s > 1.1 {
		t.Fatalf("small config scale = %f", s)
	}
}

func TestIdleBreathSleeps(t *testing.T) {
	sw, _, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	m := switchtest.Meter(env)
	if sw.Poll(0, m) {
		t.Fatal("idle breath reported work")
	}
	if d := m.Drain(); d < idleSleep {
		t.Fatalf("idle breath slept only %v", d)
	}
}

func TestLinkBackpressure(t *testing.T) {
	// When the output link is full, Pull stops taking from the device
	// rather than dropping.
	sw, fps, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	fps[1].RejectTx = true // output side blackholes, link will clog? no: Push drains to TxBurst which frees
	// Instead: fill input beyond LinkCap and run one breath; only
	// PullBatch packets move per breath per app.
	for i := 0; i < 300; i++ {
		fps[0].In = append(fps[0].In, frame(env))
	}
	m := switchtest.Meter(env)
	sw.Poll(0, m)
	if fps[0].RxCount > PullBatch {
		t.Fatalf("pulled %d > PullBatch", fps[0].RxCount)
	}
}

func TestAddNICAppErrors(t *testing.T) {
	sw, _, _ := newSUT(t, 1)
	if _, err := sw.AddNICApp("x", 9, nil, nil); err == nil {
		t.Fatal("bad port accepted")
	}
}

func TestInfoTaxonomy(t *testing.T) {
	sw, _, _ := newSUT(t, 0)
	info := sw.Info()
	if info.ProcessingModel != "pipeline" {
		t.Fatalf("Snabb is the only pure-pipeline switch (Table 1), got %q", info.ProcessingModel)
	}
	if info.Reprogrammability != "high" {
		t.Fatalf("reprogrammability = %q", info.Reprogrammability)
	}
	if info.VhostEnqScale == 0 || info.VhostDeqScale == 0 {
		t.Fatal("Snabb's own vhost implementation must price directions differently")
	}
}

func TestFilterApp(t *testing.T) {
	env := switchtest.Env()
	sw := New(env)
	fin := switchtest.NewFakePort("in")
	fout := switchtest.NewFakePort("out")
	sw.AddPort(fin)
	sw.AddPort(fout)
	// nic0 → filter(IPv4 only) → nic1.
	aToF := sw.NewLink("nic0 -> filter")
	fToB := sw.NewLink("filter -> nic1")
	if _, err := sw.AddNICApp("nic0", 0, aToF, nil); err != nil {
		t.Fatal(err)
	}
	sw.AddFilterApp("filter", aToF, fToB, pkt.EtherTypeIPv4)
	if _, err := sw.AddNICApp("nic1", 1, nil, fToB); err != nil {
		t.Fatal(err)
	}

	ipv4 := frame(env)
	arp := frame(env)
	arp.Bytes()[12], arp.Bytes()[13] = 0x08, 0x06
	fin.In = append(fin.In, ipv4, arp)
	m := switchtest.Meter(env)
	// Two breaths: apps run in configuration order, so the filter's push
	// may see the link only on the breath after the pull.
	sw.Poll(0, m)
	sw.Poll(1, m)
	if len(fout.Out) != 1 {
		t.Fatalf("out = %d", len(fout.Out))
	}
	filter := sw.Apps()[1].(*FilterApp)
	if filter.Passed != 1 || filter.Dropped != 1 {
		t.Fatalf("passed=%d dropped=%d", filter.Passed, filter.Dropped)
	}
	if env.Pool.Live() != 1 { // only the delivered frame lives
		t.Fatalf("live = %d", env.Pool.Live())
	}
}
