package fastclick

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a parser for the subset of the Click configuration
// language the testbed uses:
//
//	// comments
//	name :: Class(arg, arg);            // declaration
//	a -> b -> Class(args) -> name;      // connection chains
//	cl[1] -> Discard;                   // output-port selection
//	src -> [0]dst;                      // input-port selection (single
//	                                    // input; the index is validated
//	                                    // to be 0 and otherwise ignored)
//
// Statements are separated by semicolons or newlines.

type parsedElem struct {
	name    string // "" for anonymous
	class   string // "" when referencing a declared name
	args    []string
	outPort int
}

type stmt struct {
	decl  *parsedElem   // declaration statement
	chain []*parsedElem // connection statement
}

func stripComments(s string) string {
	var b strings.Builder
	lines := strings.Split(s, "\n")
	for _, ln := range lines {
		if i := strings.Index(ln, "//"); i >= 0 {
			ln = ln[:i]
		}
		b.WriteString(ln)
		b.WriteString("\n")
	}
	return b.String()
}

func parseConfig(src string) ([]stmt, error) {
	src = stripComments(src)
	// Newlines terminate statements only outside parentheses; normalize
	// by replacing newlines with ';' when balanced.
	var norm strings.Builder
	depth := 0
	for _, r := range src {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case '\n':
			if depth == 0 {
				norm.WriteRune(';')
				continue
			}
		}
		norm.WriteRune(r)
	}
	var out []stmt
	for _, raw := range strings.Split(norm.String(), ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		s, err := parseStmt(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func parseStmt(raw string) (stmt, error) {
	parts, err := splitArrows(raw)
	if err != nil {
		return stmt{}, err
	}
	if len(parts) == 1 {
		e, err := parseElem(parts[0])
		if err != nil {
			return stmt{}, err
		}
		if e.name == "" || e.class == "" {
			return stmt{}, fmt.Errorf("fastclick: statement %q is neither declaration nor connection", raw)
		}
		return stmt{decl: e}, nil
	}
	var chain []*parsedElem
	for _, p := range parts {
		e, err := parseElem(p)
		if err != nil {
			return stmt{}, err
		}
		chain = append(chain, e)
	}
	return stmt{chain: chain}, nil
}

// splitArrows splits on "->" outside parentheses.
func splitArrows(s string) ([]string, error) {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("fastclick: unbalanced parens in %q", s)
			}
		case '-':
			if depth == 0 && i+1 < len(s) && s[i+1] == '>' {
				parts = append(parts, s[start:i])
				i++
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("fastclick: unbalanced parens in %q", s)
	}
	parts = append(parts, s[start:])
	return parts, nil
}

// parseElem parses one element reference:
//
//	name | name[out] | Class(args) | Class(args)[out] |
//	name :: Class(args) | [in]name (in must be 0)
func parseElem(s string) (*parsedElem, error) {
	s = strings.TrimSpace(s)
	e := &parsedElem{}
	// Leading input-port index.
	if strings.HasPrefix(s, "[") {
		end := strings.Index(s, "]")
		if end < 0 {
			return nil, fmt.Errorf("fastclick: bad input port in %q", s)
		}
		n, err := strconv.Atoi(strings.TrimSpace(s[1:end]))
		if err != nil || n != 0 {
			return nil, fmt.Errorf("fastclick: only input port 0 is supported (got %q)", s)
		}
		s = strings.TrimSpace(s[end+1:])
	}
	// Trailing output-port index (only valid when s ends with "]").
	if strings.HasSuffix(s, "]") {
		open := strings.LastIndex(s, "[")
		if open < 0 {
			return nil, fmt.Errorf("fastclick: bad output port in %q", s)
		}
		n, err := strconv.Atoi(strings.TrimSpace(s[open+1 : len(s)-1]))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("fastclick: bad output port in %q", s)
		}
		e.outPort = n
		s = strings.TrimSpace(s[:open])
	}
	// name :: Class(args)
	if i := strings.Index(s, "::"); i >= 0 {
		e.name = strings.TrimSpace(s[:i])
		s = strings.TrimSpace(s[i+2:])
		if e.name == "" {
			return nil, fmt.Errorf("fastclick: empty name in declaration %q", s)
		}
	}
	if i := strings.Index(s, "("); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("fastclick: bad arguments in %q", s)
		}
		e.class = strings.TrimSpace(s[:i])
		for _, a := range strings.Split(s[i+1:len(s)-1], ",") {
			a = strings.TrimSpace(a)
			if a != "" {
				e.args = append(e.args, a)
			}
		}
	} else if s != "" {
		if isClassName(s) && e.name == "" {
			e.class = s // bare class, e.g. "Discard"
		} else if e.name != "" {
			e.class = s
		} else {
			e.name = s
		}
	}
	if e.name == "" && e.class == "" {
		return nil, fmt.Errorf("fastclick: empty element")
	}
	return e, nil
}

// isClassName reports whether s looks like a class (leading upper case).
func isClassName(s string) bool {
	return len(s) > 0 && s[0] >= 'A' && s[0] <= 'Z'
}
