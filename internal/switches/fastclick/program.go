package fastclick

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// FastClick's Programmer lowers typed rules onto two surfaces. An
// in_port → output rule becomes a Click configuration fragment
// (FromDPDKDevice -> ToDPDKDevice), the same text a user would write; the
// element graph is push-wired, so such rules cannot be revoked once
// installed. A dl_dst → drop rule joins a Classifier-style drop set that
// every source applies to its RX batch while the set is non-empty, which
// is how runtime churn reaches the data plane without rebuilding the
// graph. Classifier memo tables and EtherMirror derived-template caches
// carry no generation counters, so every Install/Revoke resets them
// directly — the memoized and unmemoized paths must stay bit-identical
// across reprogramming.

// Install implements switchdef.Programmer.
func (sw *Switch) Install(r switchdef.Rule) error {
	if r.Priority != 0 && r.Priority != switchdef.DefaultRulePriority {
		return fmt.Errorf("fastclick: the element graph carries no rule priorities")
	}
	switch {
	case r.Match.Fields == switchdef.FInPort &&
		len(r.Actions) == 1 && r.Actions[0].Kind == switchdef.RuleOutput:
		frag := fmt.Sprintf("FromDPDKDevice(%d) -> ToDPDKDevice(%d);",
			r.Match.InPort, r.Actions[0].Port)
		if err := sw.Configure(frag); err != nil {
			return err
		}
	case r.Match.Fields == switchdef.FEthDst &&
		len(r.Actions) == 1 && r.Actions[0].Kind == switchdef.RuleDrop:
		if sw.dropMAC == nil {
			sw.dropMAC = make(map[pkt.MAC]bool)
		}
		sw.dropMAC[r.Match.EthDst] = true
	default:
		return fmt.Errorf("fastclick: unsupported rule (want in_port→output or dl_dst→drop)")
	}
	sw.prog.Put(r)
	sw.resetMemos()
	return nil
}

// Revoke implements switchdef.Programmer.
func (sw *Switch) Revoke(r switchdef.Rule) error {
	if _, ok := sw.prog.Get(r); !ok {
		return fmt.Errorf("fastclick: revoke of absent rule")
	}
	if r.Match.Fields == switchdef.FInPort {
		return fmt.Errorf("fastclick: wiring rules cannot be revoked (push graph is fixed)")
	}
	delete(sw.dropMAC, r.Match.EthDst)
	sw.prog.Delete(r)
	sw.resetMemos()
	return nil
}

// Snapshot implements switchdef.Programmer.
func (sw *Switch) Snapshot() []switchdef.Rule { return sw.prog.Snapshot() }

// resetMemos retires every per-template cache in the element graph. These
// caches have no generation counter (patterns are immutable between
// reconfigurations), so reprogramming must clear them in place.
func (sw *Switch) resetMemos() {
	for _, e := range sw.elems {
		switch el := e.(type) {
		case *classifier:
			el.memo.Reset()
		case *etherMirror:
			el.derived = nil
		}
	}
}

// filterDrops applies the installed dl_dst drop set to an RX batch,
// compacting survivors in place. The charge mirrors a Classifier stage:
// one fixed batch toll plus a per-frame pattern check.
func (sw *Switch) filterDrops(m *cost.Meter, batch []*pkt.Buf) int {
	m.Charge(elemBatchFixed + units.Cycles(len(batch))*classifyPerPkt)
	keep := batch[:0]
	for _, b := range batch {
		if sw.dropMAC[pkt.EthDst(b.View())] {
			b.Free()
			sw.Dropped++
			continue
		}
		keep = append(keep, b)
	}
	return len(keep)
}
