package fastclick

import (
	"strings"
	"testing"

	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/switches/switchtest"
)

func newSUT(t *testing.T, ports int) (*Switch, []*switchtest.FakePort, switchdef.Env) {
	t.Helper()
	env := switchtest.Env()
	sw := New(env)
	fps := make([]*switchtest.FakePort, ports)
	for i := range fps {
		fps[i] = switchtest.NewFakePort("p")
		sw.AddPort(fps[i])
	}
	return sw, fps, env
}

func TestParseDeclarationAndChain(t *testing.T) {
	stmts, err := parseConfig(`
		// a declaration
		c0 :: Counter;
		FromDPDKDevice(0) -> c0 -> ToDPDKDevice(1);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	if stmts[0].decl == nil || stmts[0].decl.name != "c0" || stmts[0].decl.class != "Counter" {
		t.Fatalf("decl = %+v", stmts[0].decl)
	}
	chain := stmts[1].chain
	if len(chain) != 3 || chain[0].class != "FromDPDKDevice" || chain[0].args[0] != "0" {
		t.Fatalf("chain = %+v", chain)
	}
	if chain[1].name != "c0" || chain[1].class != "" {
		t.Fatalf("reference = %+v", chain[1])
	}
}

func TestParseOutputPorts(t *testing.T) {
	stmts, err := parseConfig(`cl :: Classifier(12/0800, -); cl[1] -> Discard`)
	if err != nil {
		t.Fatal(err)
	}
	if stmts[1].chain[0].outPort != 1 {
		t.Fatalf("outPort = %d", stmts[1].chain[0].outPort)
	}
}

func TestParseInputPortZeroOnly(t *testing.T) {
	if _, err := parseConfig("a -> [0]b"); err != nil {
		t.Fatalf("input port 0 rejected: %v", err)
	}
	if _, err := parseConfig("a -> [1]b"); err == nil {
		t.Fatal("input port 1 accepted")
	}
}

func TestParseErrors(t *testing.T) {
	for _, cfg := range []string{
		"FromDPDKDevice(0",   // unbalanced
		"-> ToDPDKDevice(1)", // empty head
		"x[zz] -> Discard",   // bad port
		"lonely",             // neither decl nor chain
	} {
		if _, err := parseConfig(cfg); err == nil {
			t.Errorf("parseConfig(%q) accepted", cfg)
		}
	}
}

func TestConfigureErrors(t *testing.T) {
	sw, _, _ := newSUT(t, 1)
	for _, cfg := range []string{
		"FromDPDKDevice(7) -> Discard",     // missing device
		"FromDPDKDevice(0) -> Nonsense(1)", // unknown class
		"c :: Counter; c :: Counter",       // duplicate
		"FromDPDKDevice(0) -> undeclared",  // unresolved name
		"q :: Queue(-5)",                   // bad capacity
		"cl :: Classifier(nothex/zz)",      // bad pattern
	} {
		sw2, _, _ := newSUT(t, 1)
		if err := sw2.Configure(cfg); err == nil {
			t.Errorf("Configure(%q) accepted", cfg)
		}
	}
	_ = sw
}

func TestCrossConnectForwards(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	if err := sw.CrossConnect(0, 1); err != nil {
		t.Fatal(err)
	}
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	fps[1].In = append(fps[1].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 2}, pkt.MAC{2, 0, 0, 0, 0, 1}, 64))
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 || len(fps[0].Out) != 1 {
		t.Fatalf("outputs = %d, %d", len(fps[0].Out), len(fps[1].Out))
	}
}

func TestEtherMirrorSwapsAddresses(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	err := sw.Configure("FromDPDKDevice(0) -> EtherMirror -> ToDPDKDevice(1)")
	if err != nil {
		t.Fatal(err)
	}
	src, dst := pkt.MAC{1, 1, 1, 1, 1, 1}, pkt.MAC{2, 2, 2, 2, 2, 2}
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, src, dst, 64))
	m := switchtest.Meter(env)
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 {
		t.Fatal("no output")
	}
	got := fps[1].Out[0].Bytes()
	if pkt.EthSrc(got) != dst || pkt.EthDst(got) != src {
		t.Fatalf("addresses not mirrored: src=%v dst=%v", pkt.EthSrc(got), pkt.EthDst(got))
	}
}

func TestCounterCounts(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	err := sw.Configure("cnt :: Counter; FromDPDKDevice(0) -> cnt -> ToDPDKDevice(1)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 128))
	}
	m := switchtest.Meter(env)
	switchtest.PollUntilIdle(sw, m, 0)
	cnt := sw.Element("cnt").(*counterElem)
	if cnt.Packets != 5 || cnt.Bytes != 640 {
		t.Fatalf("counter = %d pkts %d bytes", cnt.Packets, cnt.Bytes)
	}
}

func TestClassifierDispatch(t *testing.T) {
	sw, fps, env := newSUT(t, 3)
	// IPv4 (ethertype 0x0800 at offset 12) to port 1, rest to port 2.
	err := sw.Configure(`
		cl :: Classifier(12/0800, -);
		FromDPDKDevice(0) -> cl;
		cl[0] -> ToDPDKDevice(1);
		cl[1] -> ToDPDKDevice(2);
	`)
	if err != nil {
		t.Fatal(err)
	}
	ipv4 := switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64)
	arp := switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64)
	arp.Bytes()[12], arp.Bytes()[13] = 0x08, 0x06
	fps[0].In = append(fps[0].In, ipv4, arp)
	m := switchtest.Meter(env)
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 || len(fps[2].Out) != 1 {
		t.Fatalf("classifier outputs = %d, %d", len(fps[1].Out), len(fps[2].Out))
	}
}

func TestQueueBuffersAndOverflows(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	err := sw.Configure("q :: Queue(4); FromDPDKDevice(0) -> q -> ToDPDKDevice(1)")
	if err != nil {
		t.Fatal(err)
	}
	q := sw.Element("q").(*queueElem)
	m := switchtest.Meter(env)
	// One poll pushes the batch into the queue; capacity 4 of 6 survive.
	for i := 0; i < 6; i++ {
		fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	}
	switchtest.PollUntilIdle(sw, m, 0)
	if q.Drops != 2 {
		t.Fatalf("queue drops = %d", q.Drops)
	}
	if len(fps[1].Out) != 4 {
		t.Fatalf("delivered = %d", len(fps[1].Out))
	}
}

func TestDiscardFrees(t *testing.T) {
	sw, fps, env := newSUT(t, 1)
	if err := sw.Configure("FromDPDKDevice(0) -> Discard"); err != nil {
		t.Fatal(err)
	}
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	m := switchtest.Meter(env)
	switchtest.PollUntilIdle(sw, m, 0)
	if env.Pool.Live() != 0 {
		t.Fatalf("leaked %d buffers", env.Pool.Live())
	}
	if sw.Dropped != 1 {
		t.Fatalf("dropped = %d", sw.Dropped)
	}
}

func TestInfoRingTuning(t *testing.T) {
	sw, _, _ := newSUT(t, 0)
	info := sw.Info()
	if info.RxRingOverride != 4096 {
		t.Fatalf("Table 2 ring tuning missing: %d", info.RxRingOverride)
	}
	if !strings.Contains(info.Tuning, "4096") {
		t.Fatalf("tuning note: %q", info.Tuning)
	}
	if info.SelfContained {
		t.Fatal("FastClick is modular")
	}
}

func TestTeeDuplicates(t *testing.T) {
	sw, fps, env := newSUT(t, 3)
	err := sw.Configure(`
		t :: Tee(2);
		FromDPDKDevice(0) -> t;
		t[0] -> ToDPDKDevice(1);
		t[1] -> ToDPDKDevice(2);
	`)
	if err != nil {
		t.Fatal(err)
	}
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	m := switchtest.Meter(env)
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 || len(fps[2].Out) != 1 {
		t.Fatalf("tee outputs = %d, %d", len(fps[1].Out), len(fps[2].Out))
	}
	if fps[1].Out[0] == fps[2].Out[0] {
		t.Fatal("tee shared one buffer")
	}
}

func TestStripUnstripRoundTrip(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	err := sw.Configure("FromDPDKDevice(0) -> Strip(14) -> Unstrip(14) -> ToDPDKDevice(1)")
	if err != nil {
		t.Fatal(err)
	}
	f := switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64)
	fps[0].In = append(fps[0].In, f)
	m := switchtest.Meter(env)
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 {
		t.Fatal("no output")
	}
	out := fps[1].Out[0]
	if out.Len() != 64 {
		t.Fatalf("len = %d", out.Len())
	}
	// The Ethernet header was zero-filled by Unstrip, the IP payload kept.
	if _, err := pkt.ParseIPv4(out.Bytes()[pkt.EthHdrLen:]); err != nil {
		t.Fatalf("inner payload lost: %v", err)
	}
}

func TestVLANEncapDecap(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	err := sw.Configure("FromDPDKDevice(0) -> VLANEncap(42) -> VLANDecap -> ToDPDKDevice(1)")
	if err != nil {
		t.Fatal(err)
	}
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64))
	m := switchtest.Meter(env)
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 || fps[1].Out[0].Len() != 64 {
		t.Fatal("encap/decap did not round trip")
	}
}

func TestExtraElementErrors(t *testing.T) {
	for _, cfg := range []string{
		"t :: Tee(0)",
		"s :: Strip(-1)",
		"s :: Strip(a)",
		"u :: Unstrip(x)",
		"v :: VLANEncap(9999)",
		"v :: VLANEncap()",
	} {
		sw2, _, _ := newSUT(t, 1)
		if err := sw2.Configure(cfg); err == nil {
			t.Errorf("Configure(%q) accepted", cfg)
		}
	}
}
