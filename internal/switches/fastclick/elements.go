package fastclick

import (
	"fmt"
	"strconv"

	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/units"
)

// Additional Click elements beyond the benchmark configurations: Tee,
// Strip/Unstrip, and SetVLANAnno-style tagging — enough vocabulary to
// compose the "custom functions in a graph-like fashion" the paper credits
// FastClick with (§3.8).

const (
	teePerPkt   = 8
	stripPerPkt = 6
	vlanPerPkt  = 18
)

// teeElem duplicates each batch to every connected output.
type teeElem struct {
	base
	outputs int
}

func (e *teeElem) Class() string { return "Tee" }
func (e *teeElem) Push(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	m.Charge(elemBatchFixed + units.Cycles(len(batch))*teePerPkt)
	n := e.outputs
	if n > len(e.outs) {
		n = len(e.outs)
	}
	for port := 0; port < n; port++ {
		next := e.out(port)
		if next == nil {
			continue
		}
		if port == n-1 {
			next.Push(sw, now, m, batch)
			return
		}
		dup := make([]*pkt.Buf, len(batch))
		for i, b := range batch {
			dup[i] = sw.env.Pool.Clone(b)
			m.ChargeCopy(b.Len())
		}
		next.Push(sw, now, m, dup)
	}
	// No connected last output: free the originals.
	for _, b := range batch {
		b.Free()
	}
	sw.Dropped += int64(len(batch))
}

// stripElem removes n leading bytes (Strip(14) drops the Ethernet header).
type stripElem struct {
	base
	n int
}

func (e *stripElem) Class() string { return "Strip" }
func (e *stripElem) Push(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	m.Charge(elemBatchFixed + units.Cycles(len(batch))*stripPerPkt)
	keep := batch[:0]
	for _, b := range batch {
		if b.Len() < e.n {
			b.Free()
			sw.Dropped++
			continue
		}
		data := b.Bytes()
		copy(data, data[e.n:])
		b.SetLen(b.Len() - e.n)
		keep = append(keep, b)
	}
	if next := e.out(0); next != nil && len(keep) > 0 {
		next.Push(sw, now, m, keep)
		return
	}
	for _, b := range keep {
		b.Free()
	}
	sw.Dropped += int64(len(keep))
}

// unstripElem re-exposes n bytes in front of the packet (zero-filled; the
// real element restores saved headroom — the simulation keeps no headroom,
// so this is the conservative variant).
type unstripElem struct {
	base
	n int
}

func (e *unstripElem) Class() string { return "Unstrip" }
func (e *unstripElem) Push(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	m.Charge(elemBatchFixed + units.Cycles(len(batch))*stripPerPkt)
	for _, b := range batch {
		old := b.Len()
		b.SetLen(old + e.n)
		data := b.Bytes()
		copy(data[e.n:], data[:old])
		for i := 0; i < e.n; i++ {
			data[i] = 0
		}
	}
	if next := e.out(0); next != nil {
		next.Push(sw, now, m, batch)
		return
	}
	for _, b := range batch {
		b.Free()
	}
	sw.Dropped += int64(len(batch))
}

// vlanEncapElem pushes an 802.1Q tag (VLANEncap in Click).
type vlanEncapElem struct {
	base
	vid uint16
}

func (e *vlanEncapElem) Class() string { return "VLANEncap" }
func (e *vlanEncapElem) Push(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	m.Charge(elemBatchFixed + units.Cycles(len(batch))*vlanPerPkt)
	for _, b := range batch {
		pkt.PushVLAN(b, e.vid)
	}
	if next := e.out(0); next != nil {
		next.Push(sw, now, m, batch)
		return
	}
	for _, b := range batch {
		b.Free()
	}
	sw.Dropped += int64(len(batch))
}

// vlanDecapElem strips the outer tag (VLANDecap).
type vlanDecapElem struct{ base }

func (e *vlanDecapElem) Class() string { return "VLANDecap" }
func (e *vlanDecapElem) Push(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	m.Charge(elemBatchFixed + units.Cycles(len(batch))*vlanPerPkt)
	for _, b := range batch {
		pkt.PopVLAN(b)
	}
	if next := e.out(0); next != nil {
		next.Push(sw, now, m, batch)
		return
	}
	for _, b := range batch {
		b.Free()
	}
	sw.Dropped += int64(len(batch))
}

// buildExtra constructs the elements added in this file; called from build.
func (sw *Switch) buildExtra(class string, args []string) (Element, error) {
	switch class {
	case "Tee":
		n := 2
		if len(args) >= 1 {
			v, err := strconv.Atoi(args[0])
			if err != nil || v < 1 {
				return nil, fmt.Errorf("fastclick: bad Tee arity %q", args[0])
			}
			n = v
		}
		return &teeElem{outputs: n}, nil
	case "Strip":
		if len(args) != 1 {
			return nil, fmt.Errorf("fastclick: Strip needs a byte count")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("fastclick: bad Strip count %q", args[0])
		}
		return &stripElem{n: n}, nil
	case "Unstrip":
		if len(args) != 1 {
			return nil, fmt.Errorf("fastclick: Unstrip needs a byte count")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("fastclick: bad Unstrip count %q", args[0])
		}
		return &unstripElem{n: n}, nil
	case "VLANEncap":
		if len(args) != 1 {
			return nil, fmt.Errorf("fastclick: VLANEncap needs a VLAN id")
		}
		vid, err := strconv.ParseUint(args[0], 10, 12)
		if err != nil {
			return nil, fmt.Errorf("fastclick: bad VLAN id %q", args[0])
		}
		return &vlanEncapElem{vid: uint16(vid)}, nil
	case "VLANDecap":
		return &vlanDecapElem{}, nil
	}
	return nil, errUnknownClass
}

// errUnknownClass signals build to report its own error.
var errUnknownClass = fmt.Errorf("fastclick: unknown element class")
