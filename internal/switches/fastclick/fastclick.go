// Package fastclick models FastClick (commit 8c9352e): the Click modular
// router rebuilt around DPDK, full-push batch processing, and
// run-to-completion scheduling.
//
// The data plane is a genuine element graph built from a Click-language
// configuration (see lang.go). The paper's scenarios use
// FromDPDKDevice(n) -> ToDPDKDevice(m) pairs; richer elements (Counter,
// EtherMirror, Classifier, Queue, Discard) are provided for custom
// configurations. Per Table 2 the NIC descriptor rings are raised to 4096.
package fastclick

import (
	"fmt"
	"strconv"

	"repro/internal/cost"
	"repro/internal/flowtab"
	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// Burst is FastClick's RX burst / batch size.
const Burst = 32

// Cost constants, calibrated to land p2p 64B at ≈ 55 ns/packet (Fig. 4a:
// FastClick exceeds 10 Gbps bidirectional, below BESS).
const (
	elemBatchFixed = 18 // per element per batch
	fromPerPkt     = 48 // FromDPDKDevice: mbuf to Packet conversion, anno init
	toPerPkt       = 52 // ToDPDKDevice: batch to mbuf, tx queueing
	mirrorPerPkt   = 24
	counterPerPkt  = 6
	classifyPerPkt = 20
	queuePerPkt    = 10
	vhostExtra     = 25 // extra per-packet toll on vhost-user devices
	jitterFrac     = 0.02
)

// Element is a Click element: it receives a batch on its single input and
// pushes to its outputs.
type Element interface {
	Class() string
	Push(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf)
	// connect wires output port n to dst.
	connect(n int, dst Element) error
}

// base provides output wiring shared by elements.
type base struct {
	outs []Element
}

func (b *base) connect(n int, dst Element) error {
	for len(b.outs) <= n {
		b.outs = append(b.outs, nil)
	}
	if b.outs[n] != nil {
		return fmt.Errorf("fastclick: output %d already connected", n)
	}
	b.outs[n] = dst
	return nil
}

func (b *base) out(n int) Element {
	if n < len(b.outs) {
		return b.outs[n]
	}
	return nil
}

// Switch is a FastClick instance.
type Switch struct {
	// rxScratch is the receive staging array, reused across polls: a
	// stack array handed through the DevPort interface escapes, which
	// costs one heap allocation per poll.
	rxScratch [Burst]*pkt.Buf

	env   switchdef.Env
	ports []switchdef.DevPort

	elems   map[string]Element
	sources []*fromDevice
	queues  []*queueElem
	toDevs  []*toDevice
	anon    int

	// Runtime rule state (program.go): dropMAC is the dl_dst drop set
	// applied Classifier-style at every source while non-empty; prog
	// backs Snapshot.
	dropMAC map[pkt.MAC]bool
	prog    switchdef.RuleLedger

	// Forwarded and Dropped count data-plane outcomes.
	Forwarded, Dropped int64
}

var info = switchdef.Info{
	Name:              "fastclick",
	Display:           "FastClick",
	Version:           "8c9352e",
	SelfContained:     false,
	Paradigm:          "structured",
	ProcessingModel:   "RTC",
	VirtualIface:      "vhost-user",
	Reprogrammability: "low",
	Languages:         "C++",
	MainPurpose:       "Modular router",
	BestAt:            "VNF chaining",
	Remarks:           "Supports live migration, high latency at low workload",
	Tuning:            "Increase descriptor ring size to 4096",
	IOMode:            switchdef.PollMode,
	RxRingOverride:    4096,
	RuntimeRules:      true,
}

// New returns an unconfigured FastClick instance.
func New(env switchdef.Env) *Switch {
	return &Switch{env: env, elems: map[string]Element{}}
}

// Info implements switchdef.Switch.
func (sw *Switch) Info() switchdef.Info { return info }

// AddPort implements switchdef.Switch.
func (sw *Switch) AddPort(p switchdef.DevPort) int {
	sw.ports = append(sw.ports, p)
	return len(sw.ports) - 1
}

// CrossConnect implements switchdef.Switch as a canned rule program: each
// in_port → output rule is lowered by Install into a
// FromDPDKDevice/ToDPDKDevice configuration fragment, exactly the pairs the
// paper's appendix writes by hand. The element instantiation order (and so
// the anonymous element naming sequence) matches the old two-statement
// configuration.
func (sw *Switch) CrossConnect(a, b int) error {
	for _, r := range switchdef.CrossConnectRules(a, b) {
		if err := sw.Install(r); err != nil {
			return err
		}
	}
	return nil
}

// Configure parses and instantiates a Click configuration, adding to any
// existing graph.
func (sw *Switch) Configure(src string) error {
	stmts, err := parseConfig(src)
	if err != nil {
		return err
	}
	// First pass: declarations.
	for _, s := range stmts {
		if s.decl != nil {
			if _, dup := sw.elems[s.decl.name]; dup {
				return fmt.Errorf("fastclick: duplicate element %q", s.decl.name)
			}
			e, err := sw.build(s.decl.class, s.decl.args)
			if err != nil {
				return err
			}
			sw.elems[s.decl.name] = e
		}
	}
	// Second pass: chains (which may declare inline).
	for _, s := range stmts {
		var prev Element
		var prevPort int
		for _, pe := range s.chain {
			e, err := sw.resolve(pe)
			if err != nil {
				return err
			}
			if prev != nil {
				if err := prev.connect(prevPort, e); err != nil {
					return err
				}
			}
			prev, prevPort = e, pe.outPort
		}
	}
	return nil
}

func (sw *Switch) resolve(pe *parsedElem) (Element, error) {
	if pe.class == "" {
		e, ok := sw.elems[pe.name]
		if !ok {
			return nil, fmt.Errorf("fastclick: undeclared element %q", pe.name)
		}
		return e, nil
	}
	e, err := sw.build(pe.class, pe.args)
	if err != nil {
		return nil, err
	}
	name := pe.name
	if name == "" {
		name = fmt.Sprintf("%s@%d", pe.class, sw.anon)
		sw.anon++
	} else if _, dup := sw.elems[name]; dup {
		return nil, fmt.Errorf("fastclick: duplicate element %q", name)
	}
	sw.elems[name] = e
	return e, nil
}

func (sw *Switch) port(arg string) (switchdef.DevPort, int, error) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 0 || n >= len(sw.ports) {
		return nil, 0, fmt.Errorf("fastclick: bad device %q", arg)
	}
	return sw.ports[n], n, nil
}

func (sw *Switch) build(class string, args []string) (Element, error) {
	switch class {
	case "FromDPDKDevice":
		if len(args) < 1 {
			return nil, fmt.Errorf("fastclick: FromDPDKDevice needs a device")
		}
		p, _, err := sw.port(args[0])
		if err != nil {
			return nil, err
		}
		e := &fromDevice{dev: p}
		sw.sources = append(sw.sources, e)
		return e, nil
	case "ToDPDKDevice":
		if len(args) < 1 {
			return nil, fmt.Errorf("fastclick: ToDPDKDevice needs a device")
		}
		p, _, err := sw.port(args[0])
		if err != nil {
			return nil, err
		}
		td := &toDevice{sw: sw, dev: p}
		sw.toDevs = append(sw.toDevs, td)
		return td, nil
	case "EtherMirror":
		return &etherMirror{}, nil
	case "Counter":
		return &counterElem{}, nil
	case "Discard":
		return &discardElem{sw: sw}, nil
	case "Queue":
		capacity := 1000
		if len(args) >= 1 {
			n, err := strconv.Atoi(args[0])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("fastclick: bad Queue capacity %q", args[0])
			}
			capacity = n
		}
		q := &queueElem{capacity: capacity}
		sw.queues = append(sw.queues, q)
		return q, nil
	case "Classifier":
		return newClassifier(args)
	default:
		e, err := sw.buildExtra(class, args)
		if err == errUnknownClass {
			return nil, fmt.Errorf("fastclick: unknown element class %q", class)
		}
		return e, err
	}
}

// Element returns a configured element by name (for tests and examples).
func (sw *Switch) Element(name string) Element { return sw.elems[name] }

// Poll implements switchdef.Switch: pull one batch from every source, then
// drain queues (full-push run-to-completion). Multi-core runs give each
// core its own Switch instance (private classifier/element state) — see
// internal/multicore.
func (sw *Switch) Poll(now units.Time, m *cost.Meter) bool {
	burst := &sw.rxScratch
	did := false
	for si := range sw.sources {
		src := sw.sources[si]
		n := src.dev.RxBurst(now, m, burst[:])
		if n == 0 {
			continue
		}
		did = true
		per := units.Cycles(fromPerPkt)
		if src.dev.Kind() == switchdef.VhostKind {
			per += vhostExtra
		}
		m.ChargeNoisy(elemBatchFixed+units.Cycles(n)*per, jitterFrac)
		if len(sw.dropMAC) > 0 {
			n = sw.filterDrops(m, burst[:n])
			if n == 0 {
				continue
			}
		}
		// Push the RX scratch slice directly: the element graph consumes
		// batches synchronously and no element retains its input slice
		// (toDevice and queueElem copy elements into their own storage),
		// so the per-poll batch allocation the copy used to pay is gone.
		if next := src.out(0); next != nil {
			next.Push(sw, now, m, burst[:n])
		} else {
			for _, b := range burst[:n] {
				b.Free()
			}
			sw.Dropped += int64(n)
		}
	}
	for ti := range sw.toDevs {
		if sw.toDevs[ti].flushStale(sw, now, m) {
			did = true
		}
	}
	for qi := range sw.queues {
		q := sw.queues[qi]
		if len(q.buf) == 0 {
			continue
		}
		did = true
		batch := q.buf
		q.buf = nil
		m.Charge(elemBatchFixed + units.Cycles(len(batch))*queuePerPkt)
		if next := q.out(0); next != nil {
			next.Push(sw, now, m, batch)
		} else {
			for _, b := range batch {
				b.Free()
			}
			sw.Dropped += int64(len(batch))
		}
	}
	return did
}

// fromDevice is FromDPDKDevice: the batch source.
type fromDevice struct {
	base
	dev switchdef.DevPort
}

func (e *fromDevice) Class() string { return "FromDPDKDevice" }
func (e *fromDevice) Push(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	panic("fastclick: FromDPDKDevice cannot receive")
}

// toDevice is ToDPDKDevice: the transmit sink. Toward vhost-user devices
// FastClick accumulates its own output batches with a drain timer (part of
// its batching design; with the chain VNFs' l2fwd batching this is why
// FastClick's low-load loopback latency roughly doubles everyone else's in
// Table 3 while its p2p low-load latency stays small).
type toDevice struct {
	base
	sw  *Switch
	dev switchdef.DevPort

	stage []*pkt.Buf
	first units.Time
}

const (
	vhostTxBatch = 32
	vhostTxDrain = 28 * units.Microsecond
)

func (e *toDevice) Class() string { return "ToDPDKDevice" }
func (e *toDevice) Push(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	per := units.Cycles(toPerPkt)
	if e.dev.Kind() == switchdef.VhostKind {
		per += vhostExtra
	}
	m.ChargeNoisy(elemBatchFixed+units.Cycles(len(batch))*per, jitterFrac)
	if e.dev.Kind() == switchdef.VhostKind {
		if len(e.stage) == 0 {
			e.first = now
		}
		e.stage = append(e.stage, batch...)
		if len(e.stage) < vhostTxBatch && now-e.first < vhostTxDrain {
			return
		}
		batch = e.stage
		e.stage = nil
	}
	sent := e.dev.TxBurst(now, m, batch)
	sw.Forwarded += int64(sent)
	sw.Dropped += int64(len(batch) - sent)
}

// flushStale transmits a staged vhost batch whose drain timer expired.
func (e *toDevice) flushStale(sw *Switch, now units.Time, m *cost.Meter) bool {
	if len(e.stage) == 0 || now-e.first < vhostTxDrain {
		return false
	}
	batch := e.stage
	e.stage = nil
	sent := e.dev.TxBurst(now, m, batch)
	sw.Forwarded += int64(sent)
	sw.Dropped += int64(len(batch) - sent)
	return true
}

// etherMirror swaps Ethernet source and destination. Template-backed frames
// stay lazy: the swap is applied once per distinct input template via
// Derive, and subsequent frames just repoint at the mirrored image instead
// of materializing.
type etherMirror struct {
	base
	derived map[*pkt.Template]*pkt.Template
}

func mirrorEdit(data []byte) {
	src, dst := pkt.EthSrc(data), pkt.EthDst(data)
	pkt.SetEthSrc(data, dst)
	pkt.SetEthDst(data, src)
}

func (e *etherMirror) Class() string { return "EtherMirror" }
func (e *etherMirror) Push(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	m.Charge(elemBatchFixed + units.Cycles(len(batch))*mirrorPerPkt)
	noMemo := switchdef.MemoDisabled()
	for _, b := range batch {
		if t := b.Template(); t != nil && b.Len() == t.Len() && !noMemo {
			d, ok := e.derived[t]
			if !ok {
				d = t.Derive(mirrorEdit)
				if e.derived == nil {
					e.derived = map[*pkt.Template]*pkt.Template{}
				}
				e.derived[t] = d
			}
			b.SetTemplate(d)
			continue
		}
		mirrorEdit(b.Bytes())
	}
	if next := e.out(0); next != nil {
		next.Push(sw, now, m, batch)
		return
	}
	for _, b := range batch {
		b.Free()
	}
	sw.Dropped += int64(len(batch))
}

// counterElem counts packets and bytes.
type counterElem struct {
	base
	Packets, Bytes int64
}

func (e *counterElem) Class() string { return "Counter" }
func (e *counterElem) Push(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	m.Charge(elemBatchFixed + units.Cycles(len(batch))*counterPerPkt)
	for _, b := range batch {
		e.Packets++
		e.Bytes += int64(b.Len())
	}
	if next := e.out(0); next != nil {
		next.Push(sw, now, m, batch)
		return
	}
	for _, b := range batch {
		b.Free()
	}
	sw.Dropped += int64(len(batch))
}

// discardElem frees everything.
type discardElem struct {
	base
	sw *Switch
}

func (e *discardElem) Class() string { return "Discard" }
func (e *discardElem) Push(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	for _, b := range batch {
		b.Free()
	}
	sw.Dropped += int64(len(batch))
}

// queueElem buffers packets; its output is drained by the poll loop.
type queueElem struct {
	base
	capacity int
	buf      []*pkt.Buf
	Drops    int64
}

func (e *queueElem) Class() string { return "Queue" }
func (e *queueElem) Push(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	m.Charge(elemBatchFixed + units.Cycles(len(batch))*queuePerPkt)
	for _, b := range batch {
		if len(e.buf) >= e.capacity {
			b.Free()
			e.Drops++
			sw.Dropped++
			continue
		}
		e.buf = append(e.buf, b)
	}
}

// classifier dispatches by byte patterns "offset/hexvalue", with "-" as the
// catch-all, e.g. Classifier(12/0800, 12/0806, -). Patterns are immutable
// after construction, so the matched output index is memoized per packet
// template (-1 records "no pattern matched"); groups is the per-output
// grouping scratch, reused across pushes.
type classifier struct {
	base
	pats   []classPattern
	memo   *flowtab.Map[uint64, int]
	groups [][]*pkt.Buf
}

type classPattern struct {
	offset   int
	value    []byte
	catchAll bool
}

func newClassifier(args []string) (*classifier, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("fastclick: Classifier needs patterns")
	}
	c := &classifier{memo: flowtab.NewMap[uint64, int](16)}
	for _, a := range args {
		if a == "-" {
			c.pats = append(c.pats, classPattern{catchAll: true})
			continue
		}
		var off int
		var hexv string
		if _, err := fmt.Sscanf(a, "%d/%s", &off, &hexv); err != nil {
			return nil, fmt.Errorf("fastclick: bad Classifier pattern %q", a)
		}
		if len(hexv)%2 != 0 {
			return nil, fmt.Errorf("fastclick: odd hex in pattern %q", a)
		}
		val := make([]byte, len(hexv)/2)
		for i := 0; i < len(val); i++ {
			n, err := strconv.ParseUint(hexv[2*i:2*i+2], 16, 8)
			if err != nil {
				return nil, fmt.Errorf("fastclick: bad hex in pattern %q", a)
			}
			val[i] = byte(n)
		}
		c.pats = append(c.pats, classPattern{offset: off, value: val})
	}
	return c, nil
}

func (e *classifier) Class() string { return "Classifier" }

// match returns the index of the first matching pattern, or -1.
func (e *classifier) match(b *pkt.Buf) int {
	for i, p := range e.pats {
		if p.catchAll || matchAt(b.View(), p.offset, p.value) {
			return i
		}
	}
	return -1
}

func (e *classifier) Push(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	m.Charge(elemBatchFixed + units.Cycles(len(batch))*classifyPerPkt)
	// Group per output to preserve batching. The scratch is detached from
	// the element while in use so a re-entrant Push (a configuration loop)
	// falls back to a fresh allocation instead of clobbering it.
	groups := e.groups
	e.groups = nil
	if cap(groups) < len(e.pats) {
		groups = make([][]*pkt.Buf, len(e.pats))
	}
	groups = groups[:len(e.pats)]
	noMemo := switchdef.MemoDisabled()
	for _, b := range batch {
		var idx int
		if t := b.Template(); t != nil && !noMemo {
			id := t.ID()
			var ok bool
			if idx, ok = e.memo.Get(flowtab.HashUint64(id), id); !ok {
				idx = e.match(b)
				e.memo.Put(flowtab.HashUint64(id), id, idx)
			}
		} else {
			idx = e.match(b)
		}
		if idx < 0 {
			b.Free()
			sw.Dropped++
			continue
		}
		groups[idx] = append(groups[idx], b)
	}
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		if next := e.out(i); next != nil {
			next.Push(sw, now, m, g)
			continue
		}
		for _, b := range g {
			b.Free()
		}
		sw.Dropped += int64(len(g))
	}
	for i := range groups {
		groups[i] = groups[i][:0]
	}
	e.groups = groups
}

func matchAt(b []byte, off int, val []byte) bool {
	if off+len(val) > len(b) {
		return false
	}
	for i, v := range val {
		if b[off+i] != v {
			return false
		}
	}
	return true
}

func init() {
	switchdef.Register(info, func(env switchdef.Env) switchdef.Switch { return New(env) })
}
