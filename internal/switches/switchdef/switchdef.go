// Package switchdef defines the System Under Test abstraction every
// software switch implements, the device-port interface switches drive,
// the design-space taxonomy metadata (the paper's Table 1/2/5), and a
// registry the benchmark harness enumerates.
package switchdef

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/units"
)

// PortMAC is the testbed-wide convention for addressing a switch port by
// destination MAC: traffic whose eventual egress is SUT port i carries
// dl_dst = PortMAC(i). Match/action switches without port-based forwarding
// (t4p4s's l2fwd program) install their table entries against these
// addresses, and the paper's corresponding requirement — "traffic
// generators need to send packets with the corresponding destination MAC
// addresses" — is honoured by the traffic generators.
func PortMAC(i int) pkt.MAC {
	return pkt.MAC{0x02, 0x00, 0x00, 0x00, byte(i >> 8), byte(i)}
}

// PortKind distinguishes the attachment types a switch sees.
type PortKind int

// Port kinds.
const (
	PhysKind  PortKind = iota // physical NIC port
	VhostKind                 // vhost-user virtio device
	PtnetKind                 // netmap passthrough device
)

// String names the kind.
func (k PortKind) String() string {
	switch k {
	case PhysKind:
		return "phys"
	case VhostKind:
		return "vhost-user"
	case PtnetKind:
		return "ptnet"
	default:
		return fmt.Sprintf("PortKind(%d)", int(k))
	}
}

// DevPort is a device a switch data plane drives. RxBurst hands ownership
// of the returned buffers to the switch; TxBurst takes ownership of every
// buffer passed (frames that cannot be sent are freed and counted by the
// device) and returns the number actually accepted.
type DevPort interface {
	Kind() PortKind
	Name() string
	RxBurst(now units.Time, m *cost.Meter, out []*pkt.Buf) int
	TxBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int
	// Pending reports the RX backlog, letting poll loops detect idleness.
	Pending(now units.Time) int
}

// IOMode is how the switch's core consumes packet I/O.
type IOMode int

// I/O modes.
const (
	PollMode      IOMode = iota // DPDK-style busy waiting
	InterruptMode               // netmap-style sleep + interrupt
)

// Info is the design-space taxonomy record for one switch (Table 1), plus
// the use-case summary (Table 5) and tuning notes (Table 2).
type Info struct {
	Name    string // registry key, e.g. "vpp"
	Display string // e.g. "VPP"
	Version string // version or commit the model follows

	SelfContained     bool   // vs. modular architecture
	Paradigm          string // "structured" or "match/action"
	ProcessingModel   string // "RTC", "pipeline", or "RTC/pipeline"
	VirtualIface      string // "vhost-user" or "ptnet"
	Reprogrammability string // "low", "medium", "high"
	Languages         string
	MainPurpose       string

	BestAt  string // Table 5
	Remarks string // Table 5
	Tuning  string // Table 2 ("" if none)

	IOMode IOMode
	// RuntimeRules reports whether the data plane accepts Programmer
	// Install/Revoke while running. False means the switch's Programmer
	// returns ErrNoRuntimeRules (VALE, Snabb, BESS) — distinct from the
	// Reprogrammability taxonomy string, which quotes the paper's coarse
	// development-effort ranking.
	RuntimeRules bool
	// MaxLoopbackVNFs caps loopback chain length (0 = unlimited). BESS's
	// QEMU incompatibility caps it at 3 (paper §5.2 footnote 5).
	MaxLoopbackVNFs int
	// VhostCostScale scales virtio crossing costs for switches with
	// their own vhost implementation (Snabb); 0 means 1.0.
	VhostCostScale float64
	// VhostEnqScale and VhostDeqScale override VhostCostScale per
	// direction when non-zero (enqueue = host→guest delivery).
	VhostEnqScale, VhostDeqScale float64
	// RxRingOverride, when non-zero, resizes the NIC descriptor rings for
	// this switch (FastClick's Table 2 tuning uses 4096).
	RxRingOverride int
}

// Switch is a System Under Test: a software switch data plane that runs on
// one simulated core.
type Switch interface {
	// Info returns the taxonomy record.
	Info() Info
	// AddPort attaches a device and returns its port index.
	AddPort(p DevPort) int
	// CrossConnect installs bidirectional L2 forwarding between two
	// attached ports, through the switch's native configuration
	// mechanism (flow rules, graph wiring, table entries, ...). For
	// reprogrammable switches it is a canned rule program over the
	// Programmer surface (CrossConnectRules / CrossConnectMACRules).
	CrossConnect(a, b int) error
	// Poll runs one scheduling quantum on the SUT core, charging
	// consumed cycles to m and reporting whether any work was done.
	Poll(now units.Time, m *cost.Meter) bool
	// Programmer is the unified runtime rule-management surface.
	// Switches whose data plane cannot take runtime updates embed
	// NoRuntimeRules (Install/Revoke return ErrNoRuntimeRules).
	Programmer
}

// Env is what a switch factory needs from the testbed.
type Env struct {
	Model *cost.Model
	RNG   *sim.RNG
	Pool  *pkt.Pool // host mbuf pool
}

// Factory builds a fresh switch instance.
type Factory func(Env) Switch

type registration struct {
	info    Info
	factory Factory
}

var registry = map[string]registration{}

// Register records a switch implementation under info.Name. It panics on
// duplicates (registration happens in package init).
func Register(info Info, f Factory) {
	if info.Name == "" {
		panic("switchdef: empty name")
	}
	if _, dup := registry[info.Name]; dup {
		panic("switchdef: duplicate registration: " + info.Name)
	}
	registry[info.Name] = registration{info: info, factory: f}
}

// Names returns the registered switch names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the taxonomy record for a registered switch.
func Lookup(name string) (Info, error) {
	r, ok := registry[name]
	if !ok {
		return Info{}, fmt.Errorf("switchdef: unknown switch %q (have %v)", name, Names())
	}
	return r.info, nil
}

// New instantiates a registered switch.
func New(name string, env Env) (Switch, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("switchdef: unknown switch %q (have %v)", name, Names())
	}
	return r.factory(env), nil
}
