package switchdef_test

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/nic"
	"repro/internal/pkt"
	"repro/internal/ptnet"
	"repro/internal/sim"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
	"repro/internal/vhost"

	_ "repro/internal/switches/bess"
	_ "repro/internal/switches/fastclick"
	_ "repro/internal/switches/ovs"
	_ "repro/internal/switches/snabb"
	_ "repro/internal/switches/t4p4s"
	_ "repro/internal/switches/vale"
	_ "repro/internal/switches/vpp"
)

func env() switchdef.Env {
	return switchdef.Env{Model: cost.Default(), RNG: sim.NewRNG(1), Pool: pkt.NewPool(2048)}
}

func TestRegistryHasAllSeven(t *testing.T) {
	want := []string{"bess", "fastclick", "ovs", "snabb", "t4p4s", "vale", "vpp"}
	got := switchdef.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v", got)
		}
	}
}

func TestNewAndLookup(t *testing.T) {
	for _, name := range switchdef.Names() {
		info, err := switchdef.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.Display == "" || info.Version == "" || info.MainPurpose == "" {
			t.Errorf("%s: incomplete taxonomy %+v", name, info)
		}
		sw, err := switchdef.New(name, env())
		if err != nil {
			t.Fatal(err)
		}
		if sw.Info().Name != name {
			t.Errorf("%s: Info().Name = %q", name, sw.Info().Name)
		}
	}
	if _, err := switchdef.Lookup("cisco"); err == nil {
		t.Fatal("unknown switch looked up")
	}
	if _, err := switchdef.New("cisco", env()); err == nil {
		t.Fatal("unknown switch instantiated")
	}
}

func TestTaxonomyMatchesTable1(t *testing.T) {
	// Spot checks against the paper's Table 1.
	expect := map[string]struct {
		selfContained bool
		paradigm      string
		procModel     string
		vif           string
		reprog        string
	}{
		"bess":      {false, "structured", "RTC/pipeline", "vhost-user", "medium"},
		"snabb":     {false, "structured", "pipeline", "vhost-user", "high"},
		"ovs":       {true, "match/action", "RTC", "vhost-user", "medium"},
		"fastclick": {false, "structured", "RTC", "vhost-user", "low"},
		"vpp":       {true, "structured", "RTC", "vhost-user", "medium"},
		"vale":      {true, "structured", "RTC", "ptnet", "low"},
		"t4p4s":     {true, "match/action", "RTC", "vhost-user", "medium"},
	}
	for name, want := range expect {
		info, err := switchdef.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.SelfContained != want.selfContained || info.Paradigm != want.paradigm ||
			info.ProcessingModel != want.procModel || info.VirtualIface != want.vif ||
			info.Reprogrammability != want.reprog {
			t.Errorf("%s taxonomy: got %+v want %+v", name, info, want)
		}
	}
}

func TestPortMACDistinct(t *testing.T) {
	seen := map[pkt.MAC]bool{}
	for i := 0; i < 300; i++ {
		m := switchdef.PortMAC(i)
		if seen[m] {
			t.Fatalf("PortMAC collision at %d", i)
		}
		if m.IsMulticast() {
			t.Fatalf("PortMAC(%d) is multicast", i)
		}
		seen[m] = true
	}
}

func TestPhysPortAdapterCharges(t *testing.T) {
	a := nic.NewPort(nic.Config{Name: "a", RxLatency: nic.NoLatency, TxLatency: nic.NoLatency})
	b := nic.NewPort(nic.Config{Name: "b", RxLatency: nic.NoLatency, TxLatency: nic.NoLatency})
	nic.Connect(a, b)
	pool := pkt.NewPool(2048)
	m := cost.NewMeter(cost.Default(), nil)

	priced := &switchdef.PhysPort{Port: a}
	if n := priced.TxBurst(0, m, []*pkt.Buf{pool.Get(64)}); n != 1 {
		t.Fatal("tx failed")
	}
	if m.Pending() == 0 {
		t.Fatal("priced adapter charged nothing")
	}
	m.Drain()
	unpriced := &switchdef.PhysPort{Port: a, Unpriced: true}
	if n := unpriced.TxBurst(units.Millisecond, m, []*pkt.Buf{pool.Get(64)}); n != 1 {
		t.Fatal("tx failed")
	}
	if m.Pending() != 0 {
		t.Fatal("unpriced adapter charged cycles")
	}
	if priced.Kind() != switchdef.PhysKind || priced.Name() != "a" {
		t.Fatal("adapter identity wrong")
	}
}

func TestVhostPortAdapterRoundTrip(t *testing.T) {
	host := pkt.NewPool(2048)
	dev := vhost.New(vhost.Config{Name: "v0"})
	port := &switchdef.VhostPort{Dev: dev}
	m := cost.NewMeter(cost.Default(), nil)

	b := host.Get(64)
	b.Seq = 7
	if port.TxBurst(0, m, []*pkt.Buf{b}) != 1 {
		t.Fatal("enqueue failed")
	}
	if dev.GuestPending() != 1 {
		t.Fatal("guest pending wrong")
	}
	// Guest echoes it back.
	var out [4]*pkt.Buf
	gm := cost.NewMeter(cost.Default(), nil)
	n := dev.GuestRecv(units.Second, gm, out[:])
	if n != 1 || out[0].Seq != 7 {
		t.Fatalf("guest recv = %d", n)
	}
	if !dev.GuestSend(gm, out[0]) {
		t.Fatal("guest send failed")
	}
	var back [4]*pkt.Buf
	if port.RxBurst(units.Second, m, back[:]) != 1 || back[0].Seq != 7 {
		t.Fatal("host dequeue failed")
	}
	back[0].Free()
	if port.Kind() != switchdef.VhostKind {
		t.Fatal("kind wrong")
	}
}

func TestPtnetPortAdapterZeroCopy(t *testing.T) {
	dev := ptnet.New(ptnet.Config{Name: "pt0"})
	port := &switchdef.PtnetPort{Dev: dev}
	pool := pkt.NewPool(2048)
	m := cost.NewMeter(cost.Default(), nil)
	b := pool.Get(64)
	if port.TxBurst(0, m, []*pkt.Buf{b}) != 1 {
		t.Fatal("send failed")
	}
	var out [1]*pkt.Buf
	gm := cost.NewMeter(cost.Default(), nil)
	if dev.GuestRecv(gm, out[:]) != 1 {
		t.Fatal("guest recv failed")
	}
	if out[0] != b {
		t.Fatal("ptnet copied the buffer — must be zero-copy")
	}
	out[0].Free()
	if port.Kind() != switchdef.PtnetKind {
		t.Fatal("kind wrong")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	switchdef.Register(switchdef.Info{Name: "vpp"}, nil)
}
