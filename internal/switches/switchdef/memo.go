package switchdef

import (
	"os"
	"sync/atomic"
)

// noMemo force-disables the template-keyed classification memoization in
// every switch data plane, routing all frames through the per-frame
// reference path. It lives outside Config on purpose: the knob is a
// host-execution-strategy choice with bit-identical simulated outputs, so
// it must not perturb campaign cache keys. CI's switch-path divergence
// check reruns the pinned goldens with it set.
var noMemo atomic.Bool

func init() {
	if os.Getenv("SWBENCH_NO_MEMO") != "" {
		noMemo.Store(true)
	}
}

// MemoDisabled reports whether classification memoization is globally
// disabled (SWBENCH_NO_MEMO, or SetMemoDisabled). Hot paths read it once
// per poll.
func MemoDisabled() bool { return noMemo.Load() }

// SetMemoDisabled overrides the memoization kill switch (equivalence tests
// and the bench baseline pass), returning the previous value.
func SetMemoDisabled(v bool) bool { return noMemo.Swap(v) }
