// Unified control plane: the typed rule vocabulary every reprogrammable
// switch accepts at runtime.
//
// The paper configures each switch through its native surface — OpenFlow
// rule strings for OvS, match/action table entries for t4p4s, Click
// configuration programs for FastClick, CLI patch commands for VPP — and
// the harness historically drove those surfaces directly. Programmer
// hoists them behind one OpenFlow-style Install/Revoke/Snapshot contract
// (the vocabulary BOFUSS-style softswitches standardize) over a typed Rule
// value, so controllers, fleets, and examples program every data plane the
// same way while each switch lowers rules into its own structures (and
// bumps its memo-generation counters, keeping PR 7's recorded charge
// scripts correct under churn).
package switchdef

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/pkt"
)

// ErrNoRuntimeRules marks switches whose data plane cannot accept rule
// updates at runtime: VALE's learning bridge has no rule table at all,
// Snabb and BESS freeze their app/module graphs when the engine starts
// (reconfiguration restarts the engine, which is not a data-plane rule
// update). Validate and the churn campaign use it to gate cells the same
// way ErrNoMultiCore gates interrupt-mode scaling cells.
var ErrNoRuntimeRules = errors.New("switch cannot reprogram rules at runtime")

// FieldSet is the presence bitmask of a Match: which of the 12-tuple
// fields the rule constrains. An unset field is a wildcard.
type FieldSet uint16

// Match fields.
const (
	FInPort FieldSet = 1 << iota
	FEthDst
	FEthSrc
	FEthType
	FVLAN
	FIPSrc
	FIPDst
	FIPProto
	FL4Src
	FL4Dst
)

// Match is the typed 12-tuple match of a Rule (the OpenFlow 1.0 basic
// tuple the paper's switches all understand). Only fields named in Fields
// participate; everything else is wildcarded.
type Match struct {
	Fields  FieldSet
	InPort  int
	EthDst  pkt.MAC
	EthSrc  pkt.MAC
	EthType uint16
	VLAN    uint16 // VLAN ID (FVLAN set)
	IPSrc   [4]byte
	IPDst   [4]byte
	IPProto uint8
	L4Src   uint16
	L4Dst   uint16
}

// RuleActionKind enumerates what a rule does with a matching frame.
type RuleActionKind int

// Rule action kinds.
const (
	RuleOutput    RuleActionKind = iota // forward to Port
	RuleDrop                           // discard
	RuleSetEthDst                      // rewrite destination MAC, then continue
	RuleSetEthSrc                      // rewrite source MAC, then continue
)

// RuleAction is one action of a rule's action list.
type RuleAction struct {
	Kind RuleActionKind
	Port int     // RuleOutput
	MAC  pkt.MAC // RuleSetEthDst / RuleSetEthSrc
}

// DefaultRulePriority is the priority of rules that do not set one
// (OpenFlow's add-flow default).
const DefaultRulePriority = 32768

// Rule is one typed control-plane rule: a prioritized match plus an action
// list. Rules are plain values; Revoke identifies the installed rule by
// (Priority, Match) equality.
type Rule struct {
	// Priority orders overlapping rules (higher wins). 0 means
	// DefaultRulePriority.
	Priority int
	Match    Match
	Actions  []RuleAction
}

// EffectivePriority resolves the zero-value default.
func (r Rule) EffectivePriority() int {
	if r.Priority == 0 {
		return DefaultRulePriority
	}
	return r.Priority
}

// Key is the identity Revoke matches on: the effective priority plus the
// match (fields and constrained values). Two rules with equal Key address
// the same table slot.
func (r Rule) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "p%d|f%04x", r.EffectivePriority(), uint16(r.Match.Fields))
	m := r.Match
	if m.Fields&FInPort != 0 {
		fmt.Fprintf(&sb, "|in%d", m.InPort)
	}
	if m.Fields&FEthDst != 0 {
		fmt.Fprintf(&sb, "|dd%x", m.EthDst)
	}
	if m.Fields&FEthSrc != 0 {
		fmt.Fprintf(&sb, "|ds%x", m.EthSrc)
	}
	if m.Fields&FEthType != 0 {
		fmt.Fprintf(&sb, "|et%04x", m.EthType)
	}
	if m.Fields&FVLAN != 0 {
		fmt.Fprintf(&sb, "|vl%d", m.VLAN)
	}
	if m.Fields&FIPSrc != 0 {
		fmt.Fprintf(&sb, "|is%v", m.IPSrc)
	}
	if m.Fields&FIPDst != 0 {
		fmt.Fprintf(&sb, "|id%v", m.IPDst)
	}
	if m.Fields&FIPProto != 0 {
		fmt.Fprintf(&sb, "|pr%d", m.IPProto)
	}
	if m.Fields&FL4Src != 0 {
		fmt.Fprintf(&sb, "|ls%d", m.L4Src)
	}
	if m.Fields&FL4Dst != 0 {
		fmt.Fprintf(&sb, "|ld%d", m.L4Dst)
	}
	return sb.String()
}

// Programmer is the runtime rule-management surface of a switch. Every
// switch implements it; switches whose data plane cannot take runtime
// updates return ErrNoRuntimeRules from Install and Revoke (and an empty
// Snapshot). Install of a rule whose Key is already present replaces it;
// Revoke of an absent rule reports an error.
type Programmer interface {
	// Install adds (or replaces) a rule in the data plane, invalidating
	// whatever derived state (flow caches, recorded charge scripts) the
	// rule change could affect.
	Install(r Rule) error
	// Revoke removes the rule with r's Key, with the same invalidation
	// obligations as Install.
	Revoke(r Rule) error
	// Snapshot returns the installed rules in install order (replacing
	// keeps the original position). The slice is a copy.
	Snapshot() []Rule
}

// CrossConnectRules is the canned bidirectional port-patch program in
// in_port vocabulary: the pair of rules OvS/VPP/FastClick-style switches
// lower CrossConnect(a, b) into.
func CrossConnectRules(a, b int) []Rule {
	return []Rule{
		{Match: Match{Fields: FInPort, InPort: a}, Actions: []RuleAction{{Kind: RuleOutput, Port: b}}},
		{Match: Match{Fields: FInPort, InPort: b}, Actions: []RuleAction{{Kind: RuleOutput, Port: a}}},
	}
}

// CrossConnectMACRules is the canned cross-connect program in destination
// MAC vocabulary: match/action switches without port-based forwarding
// (t4p4s's l2fwd program) install these entries against the testbed's
// PortMAC convention. Order matters for bit-identity with the historical
// table fill: the b-side entry first, then the a-side.
func CrossConnectMACRules(a, b int) []Rule {
	return []Rule{
		{Match: Match{Fields: FEthDst, EthDst: PortMAC(b)}, Actions: []RuleAction{{Kind: RuleOutput, Port: b}}},
		{Match: Match{Fields: FEthDst, EthDst: PortMAC(a)}, Actions: []RuleAction{{Kind: RuleOutput, Port: a}}},
	}
}

// RuleLedger is the bookkeeping helper behind Snapshot: an ordered set of
// rules keyed by Rule.Key. Switch implementations embed one and keep it in
// sync as they lower rules into their native structures.
type RuleLedger struct {
	rules []Rule
	index map[string]int
}

// Put records r (replacing an existing rule with the same Key in place)
// and reports whether it replaced.
func (l *RuleLedger) Put(r Rule) bool {
	if l.index == nil {
		l.index = make(map[string]int)
	}
	k := r.Key()
	if i, ok := l.index[k]; ok {
		l.rules[i] = r
		return true
	}
	l.index[k] = len(l.rules)
	l.rules = append(l.rules, r)
	return false
}

// Get returns the recorded rule with r's Key.
func (l *RuleLedger) Get(r Rule) (Rule, bool) {
	i, ok := l.index[r.Key()]
	if !ok {
		return Rule{}, false
	}
	return l.rules[i], true
}

// Delete removes the rule with r's Key, reporting whether it was present.
func (l *RuleLedger) Delete(r Rule) bool {
	k := r.Key()
	i, ok := l.index[k]
	if !ok {
		return false
	}
	delete(l.index, k)
	l.rules = append(l.rules[:i], l.rules[i+1:]...)
	for j := i; j < len(l.rules); j++ {
		l.index[l.rules[j].Key()] = j
	}
	return true
}

// Len reports how many rules are recorded.
func (l *RuleLedger) Len() int { return len(l.rules) }

// Snapshot copies the recorded rules in install order.
func (l *RuleLedger) Snapshot() []Rule {
	out := make([]Rule, len(l.rules))
	copy(out, l.rules)
	return out
}

// All returns the live backing slice in install order (callers must not
// mutate it); implementations iterate it when rebuilding native state.
func (l *RuleLedger) All() []Rule { return l.rules }

// NoRuntimeRules implements Programmer for switches whose data plane
// cannot be reprogrammed at runtime; embed it to satisfy the interface.
type NoRuntimeRules struct{}

// Install implements Programmer.
func (NoRuntimeRules) Install(Rule) error { return ErrNoRuntimeRules }

// Revoke implements Programmer.
func (NoRuntimeRules) Revoke(Rule) error { return ErrNoRuntimeRules }

// Snapshot implements Programmer.
func (NoRuntimeRules) Snapshot() []Rule { return nil }
