package switchdef

import "testing"

func TestShardPortsRoundRobin(t *testing.T) {
	shards := ShardPorts(5, 2)
	if len(shards) != 2 {
		t.Fatalf("shards = %v", shards)
	}
	if len(shards[0]) != 3 || len(shards[1]) != 2 {
		t.Fatalf("shards = %v", shards)
	}
	if shards[0][0] != 0 || shards[0][1] != 2 || shards[1][0] != 1 {
		t.Fatalf("shards = %v", shards)
	}
}

func TestShardPortsMoreCoresThanPorts(t *testing.T) {
	// k > n clamps to n shards: a shard-less core would busy-spin
	// forever and skew Busy/Idle utilization stats.
	shards := ShardPorts(2, 4)
	if len(shards) != 2 {
		t.Fatalf("effective cores = %d, want 2 (clamped): %v", len(shards), shards)
	}
	for i, s := range shards {
		if len(s) != 1 || s[0] != i {
			t.Fatalf("shard %d = %v", i, s)
		}
	}
}

func TestShardPortsNoPorts(t *testing.T) {
	// The clamp only engages when there are ports to own; a port-less
	// call keeps the requested shard count (degenerate, never polled).
	shards := ShardPorts(0, 4)
	if len(shards) != 4 {
		t.Fatalf("shards = %v", shards)
	}
}

func TestShardPortsZeroCores(t *testing.T) {
	shards := ShardPorts(3, 0)
	if len(shards) != 1 || len(shards[0]) != 3 {
		t.Fatalf("shards = %v", shards)
	}
}

func TestPortKindString(t *testing.T) {
	if PhysKind.String() != "phys" || VhostKind.String() != "vhost-user" || PtnetKind.String() != "ptnet" {
		t.Fatal("kind names wrong")
	}
	if PortKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}
