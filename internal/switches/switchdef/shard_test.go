package switchdef

import "testing"

func TestShardNilMeansAll(t *testing.T) {
	got := Shard(nil, 3)
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("shard = %v", got)
	}
	explicit := Shard([]int{5, 7}, 3)
	if len(explicit) != 2 || explicit[0] != 5 {
		t.Fatalf("explicit = %v", explicit)
	}
	// Crucially: an explicit empty shard stays empty (an idle core).
	if got := Shard([]int{}, 3); len(got) != 0 {
		t.Fatalf("empty shard expanded: %v", got)
	}
}

func TestShardPortsRoundRobin(t *testing.T) {
	shards := ShardPorts(5, 2)
	if len(shards) != 2 {
		t.Fatalf("shards = %v", shards)
	}
	if len(shards[0]) != 3 || len(shards[1]) != 2 {
		t.Fatalf("shards = %v", shards)
	}
	if shards[0][0] != 0 || shards[0][1] != 2 || shards[1][0] != 1 {
		t.Fatalf("shards = %v", shards)
	}
}

func TestShardPortsMoreCoresThanPorts(t *testing.T) {
	shards := ShardPorts(2, 4)
	if len(shards) != 4 {
		t.Fatalf("shards = %v", shards)
	}
	for i := 2; i < 4; i++ {
		if shards[i] == nil {
			t.Fatalf("shard %d is nil — would mean 'all ports' to PollShard", i)
		}
		if len(shards[i]) != 0 {
			t.Fatalf("shard %d = %v", i, shards[i])
		}
	}
}

func TestShardPortsZeroCores(t *testing.T) {
	shards := ShardPorts(3, 0)
	if len(shards) != 1 || len(shards[0]) != 3 {
		t.Fatalf("shards = %v", shards)
	}
}

func TestPortKindString(t *testing.T) {
	if PhysKind.String() != "phys" || VhostKind.String() != "vhost-user" || PtnetKind.String() != "ptnet" {
		t.Fatal("kind names wrong")
	}
	if PortKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}
