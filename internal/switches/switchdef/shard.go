package switchdef

// ShardPorts splits n ports across k cores round-robin (RSS-style),
// clamping the shard count to min(k, n): with more cores than ports the
// extras would own nothing, and handing an empty shard to a poll core
// leaves it busy-spinning forever, polluting the Busy/Idle utilization
// stats. Callers size their core fleet from len(result) — the effective
// core count.
func ShardPorts(n, k int) [][]int {
	if k < 1 {
		k = 1
	}
	if n > 0 && k > n {
		k = n
	}
	out := make([][]int, k)
	for i := range out {
		out[i] = []int{}
	}
	for i := 0; i < n; i++ {
		out[i%k] = append(out[i%k], i)
	}
	return out
}
