package switchdef

// Shard returns the rx-port subset for one core: the given explicit list,
// or every index below n when the list is nil (the single-core case).
func Shard(rxPorts []int, n int) []int {
	if rxPorts != nil {
		return rxPorts
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}

// ShardPorts splits n ports across k cores round-robin (RSS-style).
func ShardPorts(n, k int) [][]int {
	if k < 1 {
		k = 1
	}
	out := make([][]int, k)
	for i := range out {
		// Non-nil even when empty: nil means "all ports" to PollShard.
		out[i] = []int{}
	}
	for i := 0; i < n; i++ {
		out[i%k] = append(out[i%k], i)
	}
	return out
}
