package switchdef

import (
	"repro/internal/cost"
	"repro/internal/nic"
	"repro/internal/pkt"
	"repro/internal/ptnet"
	"repro/internal/units"
	"repro/internal/vhost"
)

// PhysPort adapts a physical NIC port to the DevPort interface, pricing I/O
// like a DPDK poll-mode driver. Setting Unpriced makes the adapter charge
// nothing, for switches (VALE/netmap) that price NIC I/O in their own data
// plane instead.
type PhysPort struct {
	Port     *nic.Port
	Unpriced bool
	// Queues is the hardware receive queue count (0 or 1 = single
	// queue). Multi-core RSS dispatch spreads a multi-queue port's
	// flows across its queues; the single-core data plane ignores it.
	Queues int
}

// Kind implements DevPort.
func (p *PhysPort) Kind() PortKind { return PhysKind }

// Name implements DevPort.
func (p *PhysPort) Name() string { return p.Port.Name() }

// RxBurst implements DevPort.
func (p *PhysPort) RxBurst(now units.Time, m *cost.Meter, out []*pkt.Buf) int {
	n := p.Port.RxBurst(now, out)
	if !p.Unpriced {
		m.Charge(m.Model.RxBurst)
		for _, b := range out[:n] {
			m.Charge(m.Model.RxPkt + m.Model.DMAPerByteMilli*units.Cycles(b.Len())/1000)
		}
	}
	return n
}

// TxBurst implements DevPort.
func (p *PhysPort) TxBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int {
	if !p.Unpriced && len(in) > 0 {
		m.Charge(m.Model.TxBurst)
	}
	sent := 0
	for _, b := range in {
		if !p.Unpriced {
			m.Charge(m.Model.TxPkt + m.Model.DMAPerByteMilli*units.Cycles(b.Len())/1000)
		}
		if p.Port.Send(now, b) {
			sent++
		} else {
			b.Free()
		}
	}
	return sent
}

// Pending implements DevPort.
func (p *PhysPort) Pending(now units.Time) int { return p.Port.RxPending(now) }

// VhostPort adapts the host side of a vhost-user device to DevPort. The
// crossing costs (copy + descriptor handling) are charged by the vhost
// device itself.
type VhostPort struct {
	Dev *vhost.Device
}

// Kind implements DevPort.
func (p *VhostPort) Kind() PortKind { return VhostKind }

// Name implements DevPort.
func (p *VhostPort) Name() string { return p.Dev.Name() }

// RxBurst implements DevPort.
func (p *VhostPort) RxBurst(now units.Time, m *cost.Meter, out []*pkt.Buf) int {
	return p.Dev.HostDequeueBurst(m, out)
}

// TxBurst implements DevPort.
func (p *VhostPort) TxBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int {
	return p.Dev.HostEnqueueBurst(now, m, in)
}

// Pending implements DevPort.
func (p *VhostPort) Pending(now units.Time) int { return p.Dev.HostPending() }

// PtnetPort adapts the host side of a ptnet device to DevPort (zero-copy).
type PtnetPort struct {
	Dev *ptnet.Port
}

// Kind implements DevPort.
func (p *PtnetPort) Kind() PortKind { return PtnetKind }

// Name implements DevPort.
func (p *PtnetPort) Name() string { return p.Dev.Name() }

// RxBurst implements DevPort.
func (p *PtnetPort) RxBurst(now units.Time, m *cost.Meter, out []*pkt.Buf) int {
	return p.Dev.HostRecv(m, out)
}

// TxBurst implements DevPort.
func (p *PtnetPort) TxBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int {
	return p.Dev.HostSendBurst(m, in)
}

// Pending implements DevPort.
func (p *PtnetPort) Pending(now units.Time) int { return p.Dev.HostPending() }
