// Package switchtest provides a scriptable device port and helpers for
// exercising switch data planes in isolation (no NICs, no scheduler): feed
// frames into fake ports, poll the switch, and inspect what came out where.
package switchtest

import (
	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// FakePort is an in-memory DevPort: tests push frames into In and read
// transmissions from Out.
type FakePort struct {
	PortName string
	PortKind switchdef.PortKind
	In       []*pkt.Buf
	Out      []*pkt.Buf
	// RejectTx makes TxBurst refuse (and free) everything.
	RejectTx bool

	RxCount, TxCount int64
}

// NewFakePort returns a physical-kind fake port.
func NewFakePort(name string) *FakePort {
	return &FakePort{PortName: name, PortKind: switchdef.PhysKind}
}

// Kind implements switchdef.DevPort.
func (p *FakePort) Kind() switchdef.PortKind { return p.PortKind }

// Name implements switchdef.DevPort.
func (p *FakePort) Name() string { return p.PortName }

// RxBurst implements switchdef.DevPort.
func (p *FakePort) RxBurst(now units.Time, m *cost.Meter, out []*pkt.Buf) int {
	n := copy(out, p.In)
	p.In = p.In[:copy(p.In, p.In[n:])]
	p.RxCount += int64(n)
	return n
}

// TxBurst implements switchdef.DevPort.
func (p *FakePort) TxBurst(now units.Time, m *cost.Meter, in []*pkt.Buf) int {
	if p.RejectTx {
		for _, b := range in {
			b.Free()
		}
		return 0
	}
	p.Out = append(p.Out, in...)
	p.TxCount += int64(len(in))
	return len(in)
}

// Pending implements switchdef.DevPort.
func (p *FakePort) Pending(now units.Time) int { return len(p.In) }

// Env returns a ready test environment.
func Env() switchdef.Env {
	return switchdef.Env{
		Model: cost.Default(),
		RNG:   sim.NewRNG(42),
		Pool:  pkt.NewPool(2048),
	}
}

// Meter returns a fresh meter for the environment.
func Meter(env switchdef.Env) *cost.Meter {
	return cost.NewMeter(env.Model, env.RNG.Derive("test"))
}

// Frame builds a frame with the given addressing in a fresh buffer.
func Frame(pool *pkt.Pool, src, dst pkt.MAC, size int) *pkt.Buf {
	b := pool.Get(size)
	pkt.FrameSpec{
		SrcMAC: src, DstMAC: dst,
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, FrameLen: size,
	}.Build(b)
	return b
}

// PollUntilIdle polls the switch until it reports no work (bounded).
func PollUntilIdle(sw switchdef.Switch, m *cost.Meter, start units.Time) units.Time {
	now := start
	for i := 0; i < 10000; i++ {
		did := sw.Poll(now, m)
		now += m.Drain() + units.Nanosecond
		if !did {
			return now
		}
	}
	return now
}

// PollAt runs a single poll at the given time and advances by the charge.
func PollAt(sw switchdef.Switch, m *cost.Meter, now units.Time) (units.Time, bool) {
	did := sw.Poll(now, m)
	return now + m.Drain(), did
}
