package conformance

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"

	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/switches/switchdef"
	"repro/internal/switches/switchtest"
)

// shadowDropRule is the universally-lowerable churn operation: an
// EthDst→drop rule on a MAC no generated frame carries (the same shape
// the mid-run rule controller installs). Every programmable switch
// accepts it — OvS as an OpenFlow rule, t4p4s as a dmac table entry,
// VPP as an ACL arc entry, FastClick as a source-side filter — and each
// Install/Revoke must retire whatever classification state (flow caches,
// recorded charge scripts) the switch derived before the edit.
func shadowDropRule(i int) switchdef.Rule {
	return switchdef.Rule{
		Match: switchdef.Match{
			Fields: switchdef.FEthDst,
			EthDst: pkt.MAC{0x0e, 0xc4, 0, 0, 0, byte(i)},
		},
		Actions: []switchdef.RuleAction{{Kind: switchdef.RuleDrop}},
	}
}

// churnDigestCore drives the randomized multi-flow sequence of runDigest
// interleaved with randomized rule installs and revokes, and digests the
// same observables (delivered count, delivered bytes, charged cycles)
// plus the final rule ledger. It does not touch the process-global memo
// knob, so concurrent callers are safe.
func churnDigestCore(name string, seed uint64) (string, error) {
	env := switchtest.Env()
	sw, err := switchdef.New(name, env)
	if err != nil {
		return "", err
	}
	s := &sut{sw: sw, env: env, in: switchtest.NewFakePort("in"), out: switchtest.NewFakePort("out")}
	sw.AddPort(s.in)
	sw.AddPort(s.out)
	if fc, ok := sw.(interface{ Configure(string) error }); ok && name == "fastclick" {
		err = fc.Configure(fastclickConfig)
	} else {
		err = sw.CrossConnect(0, 1)
	}
	if err != nil {
		return "", err
	}
	s.m = switchtest.Meter(env)

	info, err := switchdef.Lookup(name)
	if err != nil {
		return "", err
	}
	base := len(sw.Snapshot())

	rng := sim.NewRNG(seed)
	const flows = 64
	tmpls := make([]*pkt.Template, flows)
	for i := range tmpls {
		tmpls[i] = flowTemplate(i)
	}
	h := fnv.New64a()
	delivered := 0
	live := map[int]bool{}
	for step := 0; step < 300; step++ {
		// The rule op draws happen before the burst draws so the random
		// stream's alignment is identical in memoized and reference runs.
		if rng.Intn(4) == 0 {
			idx := rng.Intn(16)
			switch {
			case !info.RuntimeRules:
				if err := sw.Install(shadowDropRule(idx)); !errors.Is(err, switchdef.ErrNoRuntimeRules) {
					return "", fmt.Errorf("%s: Install returned %v, want ErrNoRuntimeRules", name, err)
				}
			case live[idx]:
				if err := sw.Revoke(shadowDropRule(idx)); err != nil {
					return "", fmt.Errorf("%s: revoke rule %d: %w", name, idx, err)
				}
				delete(live, idx)
			default:
				if err := sw.Install(shadowDropRule(idx)); err != nil {
					return "", fmt.Errorf("%s: install rule %d: %w", name, idx, err)
				}
				live[idx] = true
			}
			if got, want := len(sw.Snapshot()), base+len(live); got != want {
				return "", fmt.Errorf("%s: snapshot reports %d rules, want %d", name, got, want)
			}
		}
		for j, n := 0, 1+rng.Intn(32); j < n; j++ {
			s.push(tmpls[rng.Intn(flows)])
		}
		s.now = switchtest.PollUntilIdle(s.sw, s.m, s.now)
		for _, b := range s.out.Out {
			h.Write(b.View())
			b.Free()
			delivered++
		}
		s.out.Out = s.out.Out[:0]
	}
	if delivered == 0 {
		return "", fmt.Errorf("%s delivered nothing", name)
	}
	return fmt.Sprintf("delivered=%d bytes=%016x cycles=%d rules=%d",
		delivered, h.Sum64(), s.m.Total(), len(live)), nil
}

// churnDigest runs churnDigestCore under the requested memo mode.
func churnDigest(t *testing.T, name string, seed uint64, disableMemo bool) string {
	t.Helper()
	prev := switchdef.SetMemoDisabled(disableMemo)
	defer switchdef.SetMemoDisabled(prev)
	d, err := churnDigestCore(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestChurnMemoizedMatchesReference requires every registered switch to
// produce bit-identical observables under randomized mid-traffic rule
// installs and revokes with classification memoization enabled and
// disabled: every Install/Revoke must invalidate exactly the recorded
// charge scripts the edit could have changed. The memo knob is
// process-global, so these subtests never call t.Parallel.
func TestChurnMemoizedMatchesReference(t *testing.T) {
	for _, name := range switchdef.Names() {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				ref := churnDigest(t, name, seed, true)
				memo := churnDigest(t, name, seed, false)
				if ref != memo {
					t.Errorf("seed %d: memoized churn run diverged from reference\n reference: %s\n memoized:  %s", seed, ref, memo)
				}
			}
		})
	}
}

// TestChurnConcurrentInstancesAgree runs four independent instances of
// each programmable switch through the same churn sequence on separate
// goroutines and requires identical digests: rule state, caches, and
// memo bookkeeping must be per-instance (race-clean under -race with
// GOMAXPROCS >= 4), never shared process state.
func TestChurnConcurrentInstancesAgree(t *testing.T) {
	for _, name := range switchdef.Names() {
		t.Run(name, func(t *testing.T) {
			const workers = 4
			digests := make([]string, workers)
			errs := make([]error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					digests[w], errs[w] = churnDigestCore(name, 7)
				}(w)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				if errs[w] != nil {
					t.Fatal(errs[w])
				}
				if digests[w] != digests[0] {
					t.Errorf("instance %d diverged:\n %s\n vs\n %s", w, digests[w], digests[0])
				}
			}
		})
	}
}
