// Package conformance cross-checks every registered switch data plane
// through the uniform switchdef.Switch interface: per-switch Poll
// microbenchmarks (BenchmarkSwitchPoll) and the reference-vs-memoized
// equivalence suite, which drives randomized multi-flow traffic through
// each switch with classification memoization on and off and requires
// bit-identical observables. The package itself exports nothing; it
// exists so every switch gets the same treatment without the switch
// packages importing each other.
package conformance
