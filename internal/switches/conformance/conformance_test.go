package conformance

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/switches/switchdef"
	"repro/internal/switches/switchtest"
	"repro/internal/units"

	"repro/internal/switches/fastclick"

	_ "repro/internal/switches/bess"
	_ "repro/internal/switches/ovs"
	_ "repro/internal/switches/snabb"
	_ "repro/internal/switches/t4p4s"
	_ "repro/internal/switches/vale"
	_ "repro/internal/switches/vpp"
)

// sut is one switch under test: two fake ports connected through the
// switch's native configuration mechanism, with a dedicated meter.
type sut struct {
	sw      switchdef.Switch
	env     switchdef.Env
	in, out *switchtest.FakePort
	m       *cost.Meter
	now     units.Time
}

// fastclickConfig routes port 0 through an EtherMirror and a Classifier —
// the two memoizing FastClick elements — instead of the plain CrossConnect
// patch, so the equivalence suite exercises its template caches.
const fastclickConfig = `
	cl :: Classifier(12/0800, -);
	FromDPDKDevice(0) -> EtherMirror -> cl;
	cl[0] -> ToDPDKDevice(1);
	cl[1] -> Discard;
	FromDPDKDevice(1) -> ToDPDKDevice(0);
`

func newSUT(tb testing.TB, name string) *sut {
	tb.Helper()
	env := switchtest.Env()
	sw, err := switchdef.New(name, env)
	if err != nil {
		tb.Fatal(err)
	}
	s := &sut{sw: sw, env: env, in: switchtest.NewFakePort("in"), out: switchtest.NewFakePort("out")}
	sw.AddPort(s.in)
	sw.AddPort(s.out)
	if fc, ok := sw.(*fastclick.Switch); ok {
		err = fc.Configure(fastclickConfig)
	} else {
		err = sw.CrossConnect(0, 1)
	}
	if err != nil {
		tb.Fatal(err)
	}
	s.m = switchtest.Meter(env)
	return s
}

// flowTemplate builds the pre-serialized frame image for flow index i:
// distinct source MAC/port per flow (the generators' multi-flow patching),
// destination MAC addressing switch port 1 (the testbed convention the
// t4p4s tables match on), and a second frame length on every fourth flow
// so batched length-dependent charges see mixed-size runs.
func flowTemplate(i int) *pkt.Template {
	size := 64
	if i%4 == 3 {
		size = 128
	}
	return pkt.FrameSpec{
		SrcMAC: pkt.MAC{0x02, 0xaa, 0, 0, 0, 0x01},
		DstMAC: switchdef.PortMAC(1),
		SrcIP:  [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, FrameLen: size,
	}.Template(i)
}

// push stamps a fresh buffer with tmpl and queues it on the ingress port.
func (s *sut) push(tmpl *pkt.Template) {
	b := s.env.Pool.Get(tmpl.Len())
	b.SetTemplate(tmpl)
	s.in.In = append(s.in.In, b)
}

// runDigest drives a fixed randomized multi-flow sequence through a fresh
// instance of the named switch and digests everything observable about the
// run: the delivered frame count, the bytes of every delivered frame in
// order, and the total simulated cycles charged. disableMemo selects the
// per-frame reference path (the SWBENCH_NO_MEMO ablation).
func runDigest(t *testing.T, name string, seed uint64, disableMemo bool) string {
	t.Helper()
	prev := switchdef.SetMemoDisabled(disableMemo)
	defer switchdef.SetMemoDisabled(prev)

	s := newSUT(t, name)
	rng := sim.NewRNG(seed)
	const flows = 64
	tmpls := make([]*pkt.Template, flows)
	for i := range tmpls {
		tmpls[i] = flowTemplate(i)
	}
	h := fnv.New64a()
	delivered := 0
	for step := 0; step < 300; step++ {
		for j, n := 0, 1+rng.Intn(32); j < n; j++ {
			s.push(tmpls[rng.Intn(flows)])
		}
		s.now = switchtest.PollUntilIdle(s.sw, s.m, s.now)
		for _, b := range s.out.Out {
			h.Write(b.View())
			b.Free()
			delivered++
		}
		s.out.Out = s.out.Out[:0]
	}
	if delivered == 0 {
		t.Fatalf("%s delivered nothing", name)
	}
	return fmt.Sprintf("delivered=%d bytes=%016x cycles=%d", delivered, h.Sum64(), s.m.Total())
}

// TestMemoizedMatchesReference requires every registered switch to produce
// bit-identical observables with classification memoization enabled and
// disabled, on randomized multi-flow traffic. The memo knob is
// process-global, so these subtests never call t.Parallel.
func TestMemoizedMatchesReference(t *testing.T) {
	for _, name := range switchdef.Names() {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				ref := runDigest(t, name, seed, true)
				memo := runDigest(t, name, seed, false)
				if ref != memo {
					t.Errorf("seed %d: memoized run diverged from reference\n reference: %s\n memoized:  %s", seed, ref, memo)
				}
			}
		})
	}
}

// BenchmarkSwitchPoll measures the host-side cost of pushing one 32-frame
// 64B single-flow burst through each switch's Poll (receive, classify,
// act, transmit) — the hot loop the campaign engine spends its time in.
func BenchmarkSwitchPoll(b *testing.B) {
	for _, name := range switchdef.Names() {
		b.Run(name, func(b *testing.B) {
			s := newSUT(b, name)
			tmpl := flowTemplate(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 32; j++ {
					s.push(tmpl)
				}
				s.now = switchtest.PollUntilIdle(s.sw, s.m, s.now)
				for _, ob := range s.out.Out {
					ob.Free()
				}
				s.out.Out = s.out.Out[:0]
			}
		})
	}
}
