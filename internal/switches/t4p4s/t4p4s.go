// Package t4p4s models t4p4s (commit b1161b2): a platform-independent P4
// software switch whose compiler turns P4 programs into a DPDK data plane.
//
// The pipeline is the real P4 shape: a programmable header parser, a
// sequence of match/action tables (exact or LPM keys over parsed fields),
// and a deparser that serializes modified headers back into the frame.
// The packaged program is the paper's l2fwd: one exact table keyed on the
// destination MAC whose action forwards to a port (Table 2's tuning —
// "remove source MAC learning phase" — is why no smac table is installed).
//
// Two t4p4s findings from the paper are in the cost model: every packet
// pays the parse/deparse + hardware-abstraction-layer tax (it never
// saturates 64B line rate), and the pipeline's high cost variance produces
// the paper's extreme 0.99·R⁺ latencies (Table 3).
package t4p4s

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/flowtab"
	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// Burst is the DPDK RX burst size.
const Burst = 32

// Cost constants, calibrated to land p2p 64B at ≈ 116 ns/packet (Fig. 4a:
// ≈5.6 Gbps unidirectional) with heavy per-burst jitter.
const (
	parseFixed       = 70   // header parsing state machine
	deparseFixed     = 27   // header re-serialization
	tablePerLookup   = 31   // beyond the hash probe
	halPerPkt        = 27   // hardware abstraction layer indirection
	pipePerByteMilli = 615  // 0.9 cycles/B parse/deparse byte handling
	jitterFrac       = 0.25 // unstable pipeline (paper Table 3)
)

// FieldID selects a parsed header field usable as a table key.
type FieldID int

// Supported key fields.
const (
	FieldEthDst FieldID = iota
	FieldEthSrc
	FieldEthType
	FieldIPSrc
	FieldIPDst
	FieldIPProto
	FieldL4Src
	FieldL4Dst
)

// parsedHeaders is the result of the parser stage.
type parsedHeaders struct {
	eth     pkt.EthHdr
	ip      pkt.IPv4Hdr
	udp     pkt.UDPHdr
	hasIP   bool
	hasL4   bool
	ethDirt bool // headers modified; deparser must write back
}

// appendKey appends the table's concatenated key fields to dst (a reused
// scratch buffer), replacing the old per-frame string build that cost two
// heap allocations per table per packet.
func (t *Table) appendKey(dst []byte, h *parsedHeaders) []byte {
	for _, f := range t.Key {
		switch f {
		case FieldEthDst:
			dst = append(dst, h.eth.Dst[:]...)
		case FieldEthSrc:
			dst = append(dst, h.eth.Src[:]...)
		case FieldEthType:
			dst = append(dst, byte(h.eth.EtherType>>8), byte(h.eth.EtherType))
		case FieldIPSrc:
			dst = append(dst, h.ip.Src[:]...)
		case FieldIPDst:
			dst = append(dst, h.ip.Dst[:]...)
		case FieldIPProto:
			dst = append(dst, h.ip.Proto)
		case FieldL4Src:
			dst = append(dst, byte(h.udp.SrcPort>>8), byte(h.udp.SrcPort))
		case FieldL4Dst:
			dst = append(dst, byte(h.udp.DstPort>>8), byte(h.udp.DstPort))
		default:
			panic("t4p4s: unknown field")
		}
	}
	return dst
}

// ActionID selects a table action.
type ActionID int

// Supported actions.
const (
	ActForward ActionID = iota // send to Port
	ActDrop
	ActSetDstMAC // rewrite dl_dst to MAC, then continue
	ActNoAction  // P4 NoAction: continue to the next table
)

// Entry is a table entry's action data.
type Entry struct {
	Action ActionID
	Port   int
	MAC    pkt.MAC
}

// Table is one match/action table (exact by default; see SetKind for LPM
// and ternary). Exact entries live in an open-addressed byte-keyed map;
// keyBuf is the per-lookup key scratch (each lcore owns its tables, so a
// single scratch per table is race-free). version counts output-visible
// mutations and invalidates memoized pipeline traversals.
type Table struct {
	Name    string
	Key     []FieldID
	kind    MatchKind
	entries *flowtab.ByteMap[Entry]
	lpm     []lpmEntry
	tern    []ternEntry
	Default Entry

	// shadow mirrors the exact-match entries by key string: the arena
	// ByteMap has no delete, so Remove rebuilds it from this ledger.
	shadow map[string]Entry

	keyBuf  []byte
	version uint64

	Hits, Misses int64
}

// NewTable creates an exact-match table with a default (miss) entry.
func NewTable(name string, key []FieldID, def Entry) *Table {
	return &Table{Name: name, Key: key, entries: flowtab.NewByteMap[Entry](8), Default: def}
}

// Add installs an entry keyed by the concatenated field values.
func (t *Table) Add(keyBytes []byte, e Entry) {
	t.entries.Put(keyBytes, e)
	if t.shadow == nil {
		t.shadow = make(map[string]Entry)
	}
	t.shadow[string(keyBytes)] = e
	t.version++
}

// Remove deletes an exact entry, reporting whether it was present. The
// backing ByteMap is arena-allocated with no per-key delete, so the table
// is rebuilt from the shadow ledger; probe layout is not observable (the
// lookup charge is flat), so the rebuild order cannot move any output.
func (t *Table) Remove(keyBytes []byte) bool {
	if _, ok := t.shadow[string(keyBytes)]; !ok {
		return false
	}
	delete(t.shadow, string(keyBytes))
	t.entries = flowtab.NewByteMap[Entry](8)
	for k, e := range t.shadow {
		t.entries.Put([]byte(k), e)
	}
	t.version++
	return true
}

// Switch is a t4p4s instance running a compiled P4 program.
type Switch struct {
	// rxScratch is the receive staging array, reused across polls: a
	// stack array handed through the DevPort interface escapes, which
	// costs one heap allocation per poll.
	rxScratch [Burst]*pkt.Buf

	env    switchdef.Env
	ports  []switchdef.DevPort
	tables []*Table

	txStage [][]*pkt.Buf
	txFirst []units.Time

	// memo caches the full pipeline traversal per packet template: the
	// match/action stages read only frame bytes, so every frame sharing a
	// template takes the same path and charges the same deterministic table
	// cycles (the parse and deparse draws stay per-frame). Entries carry
	// the program and table generations they were recorded under.
	memo        *flowtab.Map[uint64, t4Memo]
	progGen     uint64
	bumpScratch []*int64

	// prog tracks the typed rules installed through the Programmer
	// surface (program.go), backing Snapshot.
	prog switchdef.RuleLedger

	// Forwarded and Dropped count data-plane outcomes.
	Forwarded, Dropped int64
}

// t4Memo outcome kinds.
const (
	t4Forward          uint8 = iota + 1
	t4DropNoDeparse          // dropped before the deparser draw (parse error or ActDrop)
	t4DropAfterDeparse       // deparsed, then no valid output port
)

// t4Memo is one recorded pipeline traversal: the deterministic table
// cycles to charge in one batch, the hit/miss counters to bump, and the
// outcome. Frames whose traversal rewrites the packet (ActSetDstMAC) are
// never memoized.
type t4Memo struct {
	prog   uint64
	tabVer uint64
	cycles units.Cycles
	bump   []*int64
	out    int32
	kind   uint8
}

// tabVer sums the tables' mutation counters; any Add/AddLPM/AddTernary/
// SetKind bumps it, invalidating recorded traversals.
func (sw *Switch) tabVer() uint64 {
	var v uint64
	for _, t := range sw.tables {
		v += t.version
	}
	return v
}

// The t4p4s HAL buffers transmissions aggressively: frames leave when a
// large batch completes or the drain timer fires. This is the source of its
// ≈30 µs p2p latency floor at low and medium load (Table 3).
const (
	txFlushBatch = 256
	txFlushDrain = 56 * units.Microsecond
)

// pipeMod models the pipeline's instability (the paper's Table 3: by far
// the worst 0.99·R⁺ latencies): recurring phases of degraded efficiency
// that outlast the recovery headroom, so near-saturation runs congest.
var pipeMod = cost.Modulation{
	HighFactor: 1.18, HighDur: 1200 * units.Microsecond,
	LowFactor: 0.96, LowDur: 800 * units.Microsecond,
}

var info = switchdef.Info{
	Name:              "t4p4s",
	Display:           "t4p4s",
	Version:           "b1161b2",
	SelfContained:     true,
	Paradigm:          "match/action",
	ProcessingModel:   "RTC",
	VirtualIface:      "vhost-user",
	Reprogrammability: "medium",
	Languages:         "C, Python",
	MainPurpose:       "P4 switch",
	BestAt:            "Stateful SDN deployments",
	Remarks:           "Supports P4 language",
	Tuning:            "Remove source MAC learning phase",
	IOMode:            switchdef.PollMode,
	RuntimeRules:      true,
	RxRingOverride:    2048,
}

// New returns a t4p4s instance loaded with the l2fwd program (an empty
// dmac table; entries are installed by CrossConnect or AddL2Entry).
func New(env switchdef.Env) *Switch {
	sw := &Switch{env: env, memo: flowtab.NewMap[uint64, t4Memo](16)}
	sw.tables = append(sw.tables, NewTable("dmac", []FieldID{FieldEthDst}, Entry{Action: ActDrop}))
	return sw
}

// Info implements switchdef.Switch.
func (sw *Switch) Info() switchdef.Info { return info }

// AddPort implements switchdef.Switch.
func (sw *Switch) AddPort(p switchdef.DevPort) int {
	sw.ports = append(sw.ports, p)
	sw.txStage = append(sw.txStage, nil)
	sw.txFirst = append(sw.txFirst, 0)
	return len(sw.ports) - 1
}

// Tables returns the program's tables.
func (sw *Switch) Tables() []*Table { return sw.tables }

// AddL2Entry installs dmac → forward(port).
func (sw *Switch) AddL2Entry(mac pkt.MAC, port int) error {
	if port < 0 || port >= len(sw.ports) {
		return fmt.Errorf("t4p4s: no port %d", port)
	}
	sw.tables[0].Add(mac[:], Entry{Action: ActForward, Port: port})
	return nil
}

// CrossConnect implements switchdef.Switch as the canned MAC-vocabulary
// rule program: per the paper, the l2fwd flow table is populated with
// "destination MAC address → output port" entries using the testbed's
// PortMAC convention.
func (sw *Switch) CrossConnect(a, b int) error {
	for _, r := range switchdef.CrossConnectMACRules(a, b) {
		if err := sw.Install(r); err != nil {
			return err
		}
	}
	return nil
}

// Poll implements switchdef.Switch: one lcore iteration over every
// attached port. Multi-core runs give each lcore its own Switch instance
// (private match/action tables) — see internal/multicore.
func (sw *Switch) Poll(now units.Time, m *cost.Meter) bool {
	burst := &sw.rxScratch
	// now is constant for the whole poll, so the pipeline modulation
	// factor is too: resolve it once instead of per frame.
	pf := pipeMod.Factor(now)
	did := false
	for i := range sw.ports {
		p := sw.ports[i]
		n := p.RxBurst(now, m, burst[:])
		if n == 0 {
			continue
		}
		did = true
		if p.Kind() == switchdef.VhostKind {
			// t4p4s needed offloads disabled to work with
			// vhost-user at all (paper appendix A.2); the crossing
			// costs it extra.
			m.Charge(units.Cycles(n) * 118)
		}
		for _, b := range burst[:n] {
			sw.process(now, m, b, pf)
		}
	}
	for i := range sw.ports {
		stage := sw.txStage[i]
		if len(stage) == 0 {
			continue
		}
		if len(stage) < txFlushBatch && now-sw.txFirst[i] < txFlushDrain {
			continue
		}
		did = true
		if sw.ports[i].Kind() == switchdef.VhostKind {
			// The disabled-offload vhost path costs on TX too.
			m.Charge(units.Cycles(len(stage)) * 30)
		}
		sent := sw.ports[i].TxBurst(now, m, stage)
		sw.Forwarded += int64(sent)
		sw.Dropped += int64(len(stage) - sent)
		sw.txStage[i] = stage[:0]
	}
	return did
}

func (sw *Switch) process(now units.Time, m *cost.Meter, b *pkt.Buf, pf float64) {
	perByte := pipePerByteMilli * units.Cycles(b.Len()) / 1000
	parseCost := cost.ScaleBy(pf, parseFixed+halPerPkt+perByte)

	var memoID uint64
	var tabVer uint64
	recording := false
	if !switchdef.MemoDisabled() {
		if t := b.Template(); t != nil {
			memoID = t.ID()
			tabVer = sw.tabVer()
			if e, ok := sw.memo.Get(flowtab.HashUint64(memoID), memoID); ok &&
				e.prog == sw.progGen && e.tabVer == tabVer {
				sw.replayMemo(now, m, b, &e, parseCost)
				return
			}
			recording = true
			sw.bumpScratch = sw.bumpScratch[:0]
		}
	}
	rec := t4Memo{prog: sw.progGen, tabVer: tabVer}

	// Parser (read-only; the deparser materializes if it must write).
	data := b.View()
	var h parsedHeaders
	var err error
	h.eth, err = pkt.ParseEth(data)
	m.ChargeNoisy(parseCost, jitterFrac)
	if err != nil {
		if recording {
			rec.kind = t4DropNoDeparse
			sw.commitMemo(memoID, rec)
		}
		b.Free()
		sw.Dropped++
		return
	}
	if h.eth.EtherType == pkt.EtherTypeIPv4 && len(data) >= pkt.EthHdrLen+pkt.IPv4HdrLen {
		if ip, e := pkt.ParseIPv4(data[pkt.EthHdrLen:]); e == nil {
			h.ip, h.hasIP = ip, true
			if ip.Proto == pkt.ProtoUDP {
				if udp, e := pkt.ParseUDP(data[pkt.EthHdrLen+pkt.IPv4HdrLen:]); e == nil {
					h.udp, h.hasL4 = udp, true
				}
			}
		}
	}

	// Match/action stages.
	out := -1
	for _, t := range sw.tables {
		m.Charge(m.Model.HashLookup + tablePerLookup)
		t.keyBuf = t.appendKey(t.keyBuf[:0], &h)
		e, hit := t.lookup(t.keyBuf)
		if recording {
			rec.cycles += m.Model.HashLookup + tablePerLookup
			if hit {
				sw.bumpScratch = append(sw.bumpScratch, &t.Hits)
			} else {
				sw.bumpScratch = append(sw.bumpScratch, &t.Misses)
			}
		}
		switch e.Action {
		case ActDrop:
			if recording {
				rec.kind = t4DropNoDeparse
				sw.commitMemo(memoID, rec)
			}
			b.Free()
			sw.Dropped++
			return
		case ActForward:
			out = e.Port
		case ActSetDstMAC:
			h.eth.Dst = e.MAC
			h.ethDirt = true
			// The deparser will rewrite the frame bytes, detaching it
			// from its template: this traversal is not replayable.
			recording = false
			if e.Port >= 0 {
				out = e.Port
			}
		case ActNoAction:
		}
	}

	// Deparser.
	m.ChargeNoisy(deparseFixed, jitterFrac)
	if h.ethDirt {
		h.eth.Put(b.Bytes())
	}
	if out < 0 || out >= len(sw.ports) {
		if recording {
			rec.kind = t4DropAfterDeparse
			sw.commitMemo(memoID, rec)
		}
		b.Free()
		sw.Dropped++
		return
	}
	if recording {
		rec.kind = t4Forward
		rec.out = int32(out)
		sw.commitMemo(memoID, rec)
	}
	if len(sw.txStage[out]) == 0 {
		sw.txFirst[out] = now
	}
	sw.txStage[out] = append(sw.txStage[out], b)
}

func (sw *Switch) commitMemo(id uint64, e t4Memo) {
	e.bump = append([]*int64(nil), sw.bumpScratch...)
	sw.memo.Put(flowtab.HashUint64(id), id, e)
}

// replayMemo re-runs a recorded traversal: the per-frame parse draw, the
// batched deterministic table charges, the counter bumps, and — only for
// traversals that reached the deparser — the per-frame deparse draw. The
// charge and RNG-draw sequence is identical to the reference path's.
func (sw *Switch) replayMemo(now units.Time, m *cost.Meter, b *pkt.Buf, e *t4Memo, parseCost units.Cycles) {
	m.ChargeNoisy(parseCost, jitterFrac)
	m.Charge(e.cycles)
	for _, c := range e.bump {
		*c++
	}
	if e.kind == t4DropNoDeparse {
		b.Free()
		sw.Dropped++
		return
	}
	m.ChargeNoisy(deparseFixed, jitterFrac)
	if e.kind == t4DropAfterDeparse {
		b.Free()
		sw.Dropped++
		return
	}
	out := int(e.out)
	if len(sw.txStage[out]) == 0 {
		sw.txFirst[out] = now
	}
	sw.txStage[out] = append(sw.txStage[out], b)
}

func init() {
	switchdef.Register(info, func(env switchdef.Env) switchdef.Switch { return New(env) })
}
