// Package t4p4s models t4p4s (commit b1161b2): a platform-independent P4
// software switch whose compiler turns P4 programs into a DPDK data plane.
//
// The pipeline is the real P4 shape: a programmable header parser, a
// sequence of match/action tables (exact or LPM keys over parsed fields),
// and a deparser that serializes modified headers back into the frame.
// The packaged program is the paper's l2fwd: one exact table keyed on the
// destination MAC whose action forwards to a port (Table 2's tuning —
// "remove source MAC learning phase" — is why no smac table is installed).
//
// Two t4p4s findings from the paper are in the cost model: every packet
// pays the parse/deparse + hardware-abstraction-layer tax (it never
// saturates 64B line rate), and the pipeline's high cost variance produces
// the paper's extreme 0.99·R⁺ latencies (Table 3).
package t4p4s

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// Burst is the DPDK RX burst size.
const Burst = 32

// Cost constants, calibrated to land p2p 64B at ≈ 116 ns/packet (Fig. 4a:
// ≈5.6 Gbps unidirectional) with heavy per-burst jitter.
const (
	parseFixed       = 70   // header parsing state machine
	deparseFixed     = 27   // header re-serialization
	tablePerLookup   = 31   // beyond the hash probe
	halPerPkt        = 27   // hardware abstraction layer indirection
	pipePerByteMilli = 615  // 0.9 cycles/B parse/deparse byte handling
	jitterFrac       = 0.25 // unstable pipeline (paper Table 3)
)

// FieldID selects a parsed header field usable as a table key.
type FieldID int

// Supported key fields.
const (
	FieldEthDst FieldID = iota
	FieldEthSrc
	FieldEthType
	FieldIPSrc
	FieldIPDst
	FieldIPProto
	FieldL4Src
	FieldL4Dst
)

// parsedHeaders is the result of the parser stage.
type parsedHeaders struct {
	eth     pkt.EthHdr
	ip      pkt.IPv4Hdr
	udp     pkt.UDPHdr
	hasIP   bool
	hasL4   bool
	ethDirt bool // headers modified; deparser must write back
}

func (h *parsedHeaders) field(f FieldID) []byte {
	switch f {
	case FieldEthDst:
		return h.eth.Dst[:]
	case FieldEthSrc:
		return h.eth.Src[:]
	case FieldEthType:
		var b [2]byte
		binary.BigEndian.PutUint16(b[:], h.eth.EtherType)
		return b[:]
	case FieldIPSrc:
		return h.ip.Src[:]
	case FieldIPDst:
		return h.ip.Dst[:]
	case FieldIPProto:
		return []byte{h.ip.Proto}
	case FieldL4Src:
		var b [2]byte
		binary.BigEndian.PutUint16(b[:], h.udp.SrcPort)
		return b[:]
	case FieldL4Dst:
		var b [2]byte
		binary.BigEndian.PutUint16(b[:], h.udp.DstPort)
		return b[:]
	}
	panic("t4p4s: unknown field")
}

// ActionID selects a table action.
type ActionID int

// Supported actions.
const (
	ActForward ActionID = iota // send to Port
	ActDrop
	ActSetDstMAC // rewrite dl_dst to MAC, then continue
	ActNoAction  // P4 NoAction: continue to the next table
)

// Entry is a table entry's action data.
type Entry struct {
	Action ActionID
	Port   int
	MAC    pkt.MAC
}

// Table is one match/action table (exact by default; see SetKind for LPM
// and ternary).
type Table struct {
	Name    string
	Key     []FieldID
	kind    MatchKind
	entries map[string]Entry
	lpm     []lpmEntry
	tern    []ternEntry
	Default Entry

	Hits, Misses int64
}

// NewTable creates an exact-match table with a default (miss) entry.
func NewTable(name string, key []FieldID, def Entry) *Table {
	return &Table{Name: name, Key: key, entries: map[string]Entry{}, Default: def}
}

func (t *Table) keyOf(h *parsedHeaders) string {
	var k []byte
	for _, f := range t.Key {
		k = append(k, h.field(f)...)
	}
	return string(k)
}

// Add installs an entry keyed by the concatenated field values.
func (t *Table) Add(keyBytes []byte, e Entry) {
	t.entries[string(keyBytes)] = e
}

// Switch is a t4p4s instance running a compiled P4 program.
type Switch struct {
	// rxScratch is the receive staging array, reused across polls: a
	// stack array handed through the DevPort interface escapes, which
	// costs one heap allocation per poll.
	rxScratch [Burst]*pkt.Buf

	env    switchdef.Env
	ports  []switchdef.DevPort
	tables []*Table

	txStage [][]*pkt.Buf
	txFirst []units.Time

	// Forwarded and Dropped count data-plane outcomes.
	Forwarded, Dropped int64
}

// The t4p4s HAL buffers transmissions aggressively: frames leave when a
// large batch completes or the drain timer fires. This is the source of its
// ≈30 µs p2p latency floor at low and medium load (Table 3).
const (
	txFlushBatch = 256
	txFlushDrain = 56 * units.Microsecond
)

// pipeMod models the pipeline's instability (the paper's Table 3: by far
// the worst 0.99·R⁺ latencies): recurring phases of degraded efficiency
// that outlast the recovery headroom, so near-saturation runs congest.
var pipeMod = cost.Modulation{
	HighFactor: 1.18, HighDur: 1200 * units.Microsecond,
	LowFactor: 0.96, LowDur: 800 * units.Microsecond,
}

var info = switchdef.Info{
	Name:              "t4p4s",
	Display:           "t4p4s",
	Version:           "b1161b2",
	SelfContained:     true,
	Paradigm:          "match/action",
	ProcessingModel:   "RTC",
	VirtualIface:      "vhost-user",
	Reprogrammability: "medium",
	Languages:         "C, Python",
	MainPurpose:       "P4 switch",
	BestAt:            "Stateful SDN deployments",
	Remarks:           "Supports P4 language",
	Tuning:            "Remove source MAC learning phase",
	IOMode:            switchdef.PollMode,
	RxRingOverride:    2048,
}

// New returns a t4p4s instance loaded with the l2fwd program (an empty
// dmac table; entries are installed by CrossConnect or AddL2Entry).
func New(env switchdef.Env) *Switch {
	sw := &Switch{env: env}
	sw.tables = append(sw.tables, NewTable("dmac", []FieldID{FieldEthDst}, Entry{Action: ActDrop}))
	return sw
}

// Info implements switchdef.Switch.
func (sw *Switch) Info() switchdef.Info { return info }

// AddPort implements switchdef.Switch.
func (sw *Switch) AddPort(p switchdef.DevPort) int {
	sw.ports = append(sw.ports, p)
	sw.txStage = append(sw.txStage, nil)
	sw.txFirst = append(sw.txFirst, 0)
	return len(sw.ports) - 1
}

// Tables returns the program's tables.
func (sw *Switch) Tables() []*Table { return sw.tables }

// AddL2Entry installs dmac → forward(port).
func (sw *Switch) AddL2Entry(mac pkt.MAC, port int) error {
	if port < 0 || port >= len(sw.ports) {
		return fmt.Errorf("t4p4s: no port %d", port)
	}
	sw.tables[0].Add(mac[:], Entry{Action: ActForward, Port: port})
	return nil
}

// CrossConnect implements switchdef.Switch: per the paper, the l2fwd flow
// table is populated with "destination MAC address → output port" entries
// using the testbed's PortMAC convention.
func (sw *Switch) CrossConnect(a, b int) error {
	if err := sw.AddL2Entry(switchdef.PortMAC(b), b); err != nil {
		return err
	}
	return sw.AddL2Entry(switchdef.PortMAC(a), a)
}

// Poll implements switchdef.Switch: one lcore iteration over every
// attached port. Multi-core runs give each lcore its own Switch instance
// (private match/action tables) — see internal/multicore.
func (sw *Switch) Poll(now units.Time, m *cost.Meter) bool {
	burst := &sw.rxScratch
	did := false
	for i := range sw.ports {
		p := sw.ports[i]
		n := p.RxBurst(now, m, burst[:])
		if n == 0 {
			continue
		}
		did = true
		if p.Kind() == switchdef.VhostKind {
			// t4p4s needed offloads disabled to work with
			// vhost-user at all (paper appendix A.2); the crossing
			// costs it extra.
			m.Charge(units.Cycles(n) * 118)
		}
		for _, b := range burst[:n] {
			sw.process(now, m, i, b)
		}
	}
	for i := range sw.ports {
		stage := sw.txStage[i]
		if len(stage) == 0 {
			continue
		}
		if len(stage) < txFlushBatch && now-sw.txFirst[i] < txFlushDrain {
			continue
		}
		did = true
		if sw.ports[i].Kind() == switchdef.VhostKind {
			// The disabled-offload vhost path costs on TX too.
			m.Charge(units.Cycles(len(stage)) * 30)
		}
		sent := sw.ports[i].TxBurst(now, m, stage)
		sw.Forwarded += int64(sent)
		sw.Dropped += int64(len(stage) - sent)
		sw.txStage[i] = stage[:0]
	}
	return did
}

func (sw *Switch) process(now units.Time, m *cost.Meter, inPort int, b *pkt.Buf) {
	// Parser (read-only; the deparser materializes if it must write).
	data := b.View()
	var h parsedHeaders
	var err error
	h.eth, err = pkt.ParseEth(data)
	perByte := pipePerByteMilli * units.Cycles(b.Len()) / 1000
	m.ChargeNoisy(pipeMod.Scale(now, parseFixed+halPerPkt+perByte), jitterFrac)
	if err != nil {
		b.Free()
		sw.Dropped++
		return
	}
	if h.eth.EtherType == pkt.EtherTypeIPv4 && len(data) >= pkt.EthHdrLen+pkt.IPv4HdrLen {
		if ip, e := pkt.ParseIPv4(data[pkt.EthHdrLen:]); e == nil {
			h.ip, h.hasIP = ip, true
			if ip.Proto == pkt.ProtoUDP {
				if udp, e := pkt.ParseUDP(data[pkt.EthHdrLen+pkt.IPv4HdrLen:]); e == nil {
					h.udp, h.hasL4 = udp, true
				}
			}
		}
	}

	// Match/action stages.
	out := -1
	for _, t := range sw.tables {
		m.Charge(m.Model.HashLookup + tablePerLookup)
		e := t.lookup([]byte(t.keyOf(&h)))
		switch e.Action {
		case ActDrop:
			b.Free()
			sw.Dropped++
			return
		case ActForward:
			out = e.Port
		case ActSetDstMAC:
			h.eth.Dst = e.MAC
			h.ethDirt = true
			if e.Port >= 0 {
				out = e.Port
			}
		case ActNoAction:
		}
	}

	// Deparser.
	m.ChargeNoisy(deparseFixed, jitterFrac)
	if h.ethDirt {
		h.eth.Put(b.Bytes())
	}
	if out < 0 || out >= len(sw.ports) {
		b.Free()
		sw.Dropped++
		return
	}
	if len(sw.txStage[out]) == 0 {
		sw.txFirst[out] = now
	}
	sw.txStage[out] = append(sw.txStage[out], b)
}

func init() {
	switchdef.Register(info, func(env switchdef.Env) switchdef.Switch { return New(env) })
}
