package t4p4s

import (
	"fmt"

	"repro/internal/switches/switchdef"
)

// t4p4s's Programmer lowers typed rules into the l2fwd program's dmac
// table: the vocabulary a compiled P4 pipeline exposes at runtime is its
// table-entry API, so only destination-MAC-exact matches are expressible,
// and rules carry no priority (an exact table has no overlap to order).
// Every Install/Revoke bumps the table's version counter, which tabVer()
// folds into the memo validity check — recorded pipeline traversals are
// retired the moment the program changes.

// lowerRule maps a typed rule onto a dmac-table entry.
func lowerRule(r switchdef.Rule) (key [6]byte, e Entry, err error) {
	if r.Priority != 0 && r.Priority != switchdef.DefaultRulePriority {
		return key, e, fmt.Errorf("t4p4s: exact tables have no rule priorities")
	}
	if r.Match.Fields != switchdef.FEthDst {
		return key, e, fmt.Errorf("t4p4s: l2fwd matches on dl_dst only (fields %04x unsupported)", uint16(r.Match.Fields))
	}
	key = r.Match.EthDst
	switch {
	case len(r.Actions) == 1 && r.Actions[0].Kind == switchdef.RuleOutput:
		e = Entry{Action: ActForward, Port: r.Actions[0].Port}
	case len(r.Actions) == 1 && r.Actions[0].Kind == switchdef.RuleDrop:
		e = Entry{Action: ActDrop}
	case len(r.Actions) == 2 && r.Actions[0].Kind == switchdef.RuleSetEthDst &&
		r.Actions[1].Kind == switchdef.RuleOutput:
		e = Entry{Action: ActSetDstMAC, MAC: r.Actions[0].MAC, Port: r.Actions[1].Port}
	default:
		return key, e, fmt.Errorf("t4p4s: unsupported action list")
	}
	return key, e, nil
}

// Install implements switchdef.Programmer.
func (sw *Switch) Install(r switchdef.Rule) error {
	key, e, err := lowerRule(r)
	if err != nil {
		return err
	}
	if e.Action == ActForward || e.Action == ActSetDstMAC {
		if e.Port < 0 || e.Port >= len(sw.ports) {
			return fmt.Errorf("t4p4s: no port %d", e.Port)
		}
	}
	sw.tables[0].Add(key[:], e)
	sw.prog.Put(r)
	return nil
}

// Revoke implements switchdef.Programmer.
func (sw *Switch) Revoke(r switchdef.Rule) error {
	key, _, err := lowerRule(r)
	if err != nil {
		return err
	}
	if !sw.tables[0].Remove(key[:]) {
		return fmt.Errorf("t4p4s: revoke of absent dmac entry %v", r.Match.EthDst)
	}
	sw.prog.Delete(r)
	return nil
}

// Snapshot implements switchdef.Programmer.
func (sw *Switch) Snapshot() []switchdef.Rule { return sw.prog.Snapshot() }
