package t4p4s

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pkt"
)

// This file adds the remaining P4 match kinds — longest-prefix match and
// ternary — and a compact textual program format standing in for the P4
// source that t4p4s's compiler consumes. The benchmark scenarios only use
// the exact-match l2fwd program, but a P4 switch without LPM/ternary would
// not deserve the name (and the sdn examples exercise them).

// MatchKind selects a table's matching discipline.
type MatchKind int

// Match kinds.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
)

// String names the kind.
func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	case MatchTernary:
		return "ternary"
	}
	return fmt.Sprintf("MatchKind(%d)", int(k))
}

// lpmEntry and ternEntry extend Table for the non-exact kinds.
type lpmEntry struct {
	value []byte
	plen  int
	entry Entry
}

type ternEntry struct {
	value, mask []byte
	priority    int
	entry       Entry
}

// SetKind switches the table's matching discipline (before entries are
// added).
func (t *Table) SetKind(k MatchKind) *Table {
	t.kind = k
	t.version++
	return t
}

// Kind returns the table's matching discipline.
func (t *Table) Kind() MatchKind { return t.kind }

// AddLPM installs an LPM entry: keyBytes masked to plen bits.
func (t *Table) AddLPM(keyBytes []byte, plen int, e Entry) error {
	if t.kind != MatchLPM {
		return fmt.Errorf("t4p4s: table %s is %v, not lpm", t.Name, t.kind)
	}
	if plen < 0 || plen > len(keyBytes)*8 {
		return fmt.Errorf("t4p4s: bad prefix length %d", plen)
	}
	v := append([]byte(nil), keyBytes...)
	maskBits(v, plen)
	t.lpm = append(t.lpm, lpmEntry{value: v, plen: plen, entry: e})
	t.version++
	return nil
}

// AddTernary installs a ternary entry with an explicit mask and priority
// (higher wins).
func (t *Table) AddTernary(value, mask []byte, priority int, e Entry) error {
	if t.kind != MatchTernary {
		return fmt.Errorf("t4p4s: table %s is %v, not ternary", t.Name, t.kind)
	}
	if len(value) != len(mask) {
		return fmt.Errorf("t4p4s: value/mask length mismatch")
	}
	v := append([]byte(nil), value...)
	m := append([]byte(nil), mask...)
	for i := range v {
		v[i] &= m[i]
	}
	t.tern = append(t.tern, ternEntry{value: v, mask: m, priority: priority, entry: e})
	t.version++
	return nil
}

func maskBits(b []byte, plen int) {
	for i := range b {
		switch {
		case plen >= 8:
			plen -= 8
		case plen <= 0:
			b[i] = 0
		default:
			b[i] &= byte(0xff << (8 - plen))
			plen = 0
		}
	}
}

// lookup resolves the entry for the given key bytes under the table's kind.
// The second result reports whether an installed entry matched (false means
// the default entry was returned).
func (t *Table) lookup(key []byte) (Entry, bool) {
	switch t.kind {
	case MatchExact:
		if e, ok := t.entries.Get(key); ok {
			t.Hits++
			return e, true
		}
	case MatchLPM:
		best, bestLen := Entry{}, -1
		for _, le := range t.lpm {
			if len(le.value) != len(key) {
				continue
			}
			if prefixMatch(key, le.value, le.plen) && le.plen > bestLen {
				best, bestLen = le.entry, le.plen
			}
		}
		if bestLen >= 0 {
			t.Hits++
			return best, true
		}
	case MatchTernary:
		var best *ternEntry
		for i := range t.tern {
			te := &t.tern[i]
			if len(te.value) != len(key) {
				continue
			}
			if ternMatch(key, te.value, te.mask) && (best == nil || te.priority > best.priority) {
				best = te
			}
		}
		if best != nil {
			t.Hits++
			return best.entry, true
		}
	}
	t.Misses++
	return t.Default, false
}

func prefixMatch(key, value []byte, plen int) bool {
	for i := 0; i < len(key) && plen > 0; i++ {
		if plen >= 8 {
			if key[i] != value[i] {
				return false
			}
			plen -= 8
			continue
		}
		m := byte(0xff << (8 - plen))
		return key[i]&m == value[i]
	}
	return true
}

func ternMatch(key, value, mask []byte) bool {
	for i := range key {
		if key[i]&mask[i] != value[i] {
			return false
		}
	}
	return true
}

// fieldByName maps the program format's field names.
var fieldByName = map[string]FieldID{
	"eth.dst":  FieldEthDst,
	"eth.src":  FieldEthSrc,
	"eth.type": FieldEthType,
	"ip.src":   FieldIPSrc,
	"ip.dst":   FieldIPDst,
	"ip.proto": FieldIPProto,
	"l4.src":   FieldL4Src,
	"l4.dst":   FieldL4Dst,
}

// LoadProgram replaces the switch's pipeline with the given program text, a
// compact stand-in for compiled P4:
//
//	# comment
//	table dmac exact eth.dst
//	default dmac drop
//	entry dmac 02:00:00:00:00:01 forward 0
//	table lpm4 lpm ip.dst
//	entry lpm4 10.1.0.0/16 setdmac 02:00:00:00:00:02 forward 1
//	table acl ternary l4.dst
//	entry acl 0x0050/0xffff 10 drop
//
// Entries for ternary tables carry value/mask in hex plus a priority.
func (sw *Switch) LoadProgram(src string) error {
	var tables []*Table
	byName := map[string]*Table{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("t4p4s: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "table":
			if len(f) != 4 {
				return fail("want 'table <name> <kind> <field>'")
			}
			field, ok := fieldByName[f[3]]
			if !ok {
				return fail("unknown field %q", f[3])
			}
			var kind MatchKind
			switch f[2] {
			case "exact":
				kind = MatchExact
			case "lpm":
				kind = MatchLPM
			case "ternary":
				kind = MatchTernary
			default:
				return fail("unknown match kind %q", f[2])
			}
			if _, dup := byName[f[1]]; dup {
				return fail("duplicate table %q", f[1])
			}
			// Program tables default to P4's NoAction (misses fall
			// through to the next table); override with "default".
			tb := NewTable(f[1], []FieldID{field}, Entry{Action: ActNoAction}).SetKind(kind)
			byName[f[1]] = tb
			tables = append(tables, tb)
		case "default":
			if len(f) < 3 {
				return fail("want 'default <table> <action>'")
			}
			tb, ok := byName[f[1]]
			if !ok {
				return fail("unknown table %q", f[1])
			}
			e, err := sw.parseAction(f[2:])
			if err != nil {
				return fail("%v", err)
			}
			tb.Default = e
		case "entry":
			if len(f) < 4 {
				return fail("want 'entry <table> <key> <action>'")
			}
			tb, ok := byName[f[1]]
			if !ok {
				return fail("unknown table %q", f[1])
			}
			if err := sw.addProgramEntry(tb, f[2], f[3:]); err != nil {
				return fail("%v", err)
			}
		default:
			return fail("unknown directive %q", f[0])
		}
	}
	if len(tables) == 0 {
		return fmt.Errorf("t4p4s: empty program")
	}
	sw.tables = tables
	// Fresh tables restart their version counters at whatever the
	// directives above left them; the program generation disambiguates.
	sw.progGen++
	return nil
}

func (sw *Switch) addProgramEntry(tb *Table, key string, action []string) error {
	switch tb.Kind() {
	case MatchExact:
		kb, err := parseKeyBytes(tb.Key[0], key)
		if err != nil {
			return err
		}
		e, err := sw.parseAction(action)
		if err != nil {
			return err
		}
		tb.Add(kb, e)
		return nil
	case MatchLPM:
		slash := strings.IndexByte(key, '/')
		if slash < 0 {
			return fmt.Errorf("lpm key %q needs /plen", key)
		}
		kb, err := parseKeyBytes(tb.Key[0], key[:slash])
		if err != nil {
			return err
		}
		plen, err := strconv.Atoi(key[slash+1:])
		if err != nil {
			return err
		}
		e, err := sw.parseAction(action)
		if err != nil {
			return err
		}
		return tb.AddLPM(kb, plen, e)
	case MatchTernary:
		slash := strings.IndexByte(key, '/')
		if slash < 0 {
			return fmt.Errorf("ternary key %q needs value/mask", key)
		}
		value, err := parseHexBytes(key[:slash])
		if err != nil {
			return err
		}
		mask, err := parseHexBytes(key[slash+1:])
		if err != nil {
			return err
		}
		if len(action) < 2 {
			return fmt.Errorf("ternary entry needs '<priority> <action>'")
		}
		prio, err := strconv.Atoi(action[0])
		if err != nil {
			return fmt.Errorf("bad priority %q", action[0])
		}
		e, err := sw.parseAction(action[1:])
		if err != nil {
			return err
		}
		return tb.AddTernary(value, mask, prio, e)
	}
	return fmt.Errorf("unsupported table kind")
}

// parseAction handles: "drop" | "forward N" | "setdmac MAC [forward N]".
func (sw *Switch) parseAction(f []string) (Entry, error) {
	switch f[0] {
	case "drop":
		return Entry{Action: ActDrop}, nil
	case "noaction":
		return Entry{Action: ActNoAction}, nil
	case "forward":
		if len(f) != 2 {
			return Entry{}, fmt.Errorf("forward needs a port")
		}
		port, err := strconv.Atoi(f[1])
		if err != nil || port < 0 || port >= len(sw.ports) {
			return Entry{}, fmt.Errorf("bad port %q", f[1])
		}
		return Entry{Action: ActForward, Port: port}, nil
	case "setdmac":
		if len(f) < 2 {
			return Entry{}, fmt.Errorf("setdmac needs a MAC")
		}
		mac, err := pkt.ParseMAC(f[1])
		if err != nil {
			return Entry{}, err
		}
		e := Entry{Action: ActSetDstMAC, MAC: mac, Port: -1}
		if len(f) == 4 && f[2] == "forward" {
			port, err := strconv.Atoi(f[3])
			if err != nil || port < 0 || port >= len(sw.ports) {
				return Entry{}, fmt.Errorf("bad port %q", f[3])
			}
			e.Port = port
		}
		return e, nil
	}
	return Entry{}, fmt.Errorf("unknown action %q", f[0])
}

func parseKeyBytes(field FieldID, s string) ([]byte, error) {
	switch field {
	case FieldEthDst, FieldEthSrc:
		m, err := pkt.ParseMAC(s)
		if err != nil {
			return nil, err
		}
		return m[:], nil
	case FieldIPSrc, FieldIPDst:
		parts := strings.Split(s, ".")
		if len(parts) != 4 {
			return nil, fmt.Errorf("bad IPv4 %q", s)
		}
		out := make([]byte, 4)
		for i, p := range parts {
			n, err := strconv.ParseUint(p, 10, 8)
			if err != nil {
				return nil, fmt.Errorf("bad IPv4 %q", s)
			}
			out[i] = byte(n)
		}
		return out, nil
	case FieldEthType, FieldL4Src, FieldL4Dst:
		n, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 16)
		if err != nil {
			return nil, fmt.Errorf("bad 16-bit value %q", s)
		}
		return []byte{byte(n >> 8), byte(n)}, nil
	case FieldIPProto:
		n, err := strconv.ParseUint(s, 10, 8)
		if err != nil {
			return nil, fmt.Errorf("bad proto %q", s)
		}
		return []byte{byte(n)}, nil
	}
	return nil, fmt.Errorf("unsupported field")
}

func parseHexBytes(s string) ([]byte, error) {
	s = strings.TrimPrefix(s, "0x")
	if len(s)%2 == 1 {
		s = "0" + s
	}
	return hex.DecodeString(s)
}
