package t4p4s

import (
	"testing"

	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/switches/switchtest"
	"repro/internal/units"
)

func newSUT(t *testing.T, ports int) (*Switch, []*switchtest.FakePort, switchdef.Env) {
	t.Helper()
	env := switchtest.Env()
	sw := New(env)
	fps := make([]*switchtest.FakePort, ports)
	for i := range fps {
		fps[i] = switchtest.NewFakePort("p")
		sw.AddPort(fps[i])
	}
	return sw, fps, env
}

// drain polls repeatedly with advancing time so the HAL TX buffering's
// drain timer fires.
func drain(sw *Switch, env switchdef.Env) {
	m := switchtest.Meter(env)
	now := units.Time(0)
	for i := 0; i < 100; i++ {
		sw.Poll(now, m)
		now += m.Drain() + txFlushDrain
	}
}

func TestL2FwdProgramForwardsByDstMAC(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	if err := sw.CrossConnect(0, 1); err != nil {
		t.Fatal(err)
	}
	// Per the paper: generators must send the corresponding destination
	// MACs for the dmac table to forward.
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, switchdef.PortMAC(0), switchdef.PortMAC(1), 64))
	fps[1].In = append(fps[1].In, switchtest.Frame(env.Pool, switchdef.PortMAC(1), switchdef.PortMAC(0), 64))
	drain(sw, env)
	if len(fps[1].Out) != 1 || len(fps[0].Out) != 1 {
		t.Fatalf("outputs = %d, %d", len(fps[0].Out), len(fps[1].Out))
	}
	if sw.Tables()[0].Hits != 2 {
		t.Fatalf("table hits = %d", sw.Tables()[0].Hits)
	}
}

func TestDefaultActionDropsUnknownMAC(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, switchdef.PortMAC(0), pkt.MAC{9, 9, 9, 9, 9, 9}, 64))
	drain(sw, env)
	if len(fps[1].Out) != 0 || sw.Dropped != 1 {
		t.Fatalf("out=%d dropped=%d", len(fps[1].Out), sw.Dropped)
	}
	if sw.Tables()[0].Misses != 1 {
		t.Fatalf("misses = %d", sw.Tables()[0].Misses)
	}
	if env.Pool.Live() != 0 {
		t.Fatal("leaked buffer")
	}
}

func TestSetDstMACAction(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	// Extend the program: a second table rewriting dst MAC for frames to
	// port 1, then forwarding happens via the first table.
	rewrite := NewTable("rewrite", []FieldID{FieldEthDst}, Entry{Action: ActForward, Port: -1})
	newMAC := pkt.MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	target := switchdef.PortMAC(1)
	rewrite.Add(target[:], Entry{Action: ActSetDstMAC, MAC: newMAC, Port: -1})
	// Rebuild table order: dmac first decides output, then rewrite.
	sw.tables = append(sw.tables, rewrite)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, switchdef.PortMAC(0), target, 64))
	drain(sw, env)
	if len(fps[1].Out) != 1 {
		t.Fatalf("out = %d", len(fps[1].Out))
	}
	if pkt.EthDst(fps[1].Out[0].Bytes()) != newMAC {
		t.Fatal("deparser did not write back the rewritten MAC")
	}
}

func TestHALBuffersUntilBatchOrDrain(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	m := switchtest.Meter(env)
	fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, switchdef.PortMAC(0), switchdef.PortMAC(1), 64))
	sw.Poll(0, m)
	m.Drain()
	if len(fps[1].Out) != 0 {
		t.Fatal("frame left before batch/drain")
	}
	// After the drain timeout it flushes.
	sw.Poll(txFlushDrain+units.Microsecond, m)
	if len(fps[1].Out) != 1 {
		t.Fatalf("out after drain = %d", len(fps[1].Out))
	}
	// A full batch flushes immediately.
	for i := 0; i < txFlushBatch; i++ {
		fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, switchdef.PortMAC(0), switchdef.PortMAC(1), 64))
	}
	now := txFlushDrain + 2*units.Microsecond
	for i := 0; i < 20; i++ { // Burst=32 per poll
		sw.Poll(now, m)
		now += m.Drain()
	}
	if len(fps[1].Out) != 1+txFlushBatch {
		t.Fatalf("out after full batch = %d", len(fps[1].Out))
	}
}

func TestMalformedFrameDropped(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	runt := env.Pool.Get(10)
	fps[0].In = append(fps[0].In, runt)
	drain(sw, env)
	if sw.Dropped != 1 || env.Pool.Live() != 0 {
		t.Fatalf("dropped=%d live=%d", sw.Dropped, env.Pool.Live())
	}
}

func TestAddL2EntryValidation(t *testing.T) {
	sw, _, _ := newSUT(t, 1)
	if err := sw.AddL2Entry(pkt.MAC{1}, 5); err == nil {
		t.Fatal("bad port accepted")
	}
}

func TestTuningNoSourceMACLearning(t *testing.T) {
	// Table 2: "Remove source MAC learning phase" — the program must have
	// exactly one table (dmac), no smac.
	sw, _, _ := newSUT(t, 0)
	if len(sw.Tables()) != 1 || sw.Tables()[0].Name != "dmac" {
		t.Fatalf("tables = %+v", sw.Tables())
	}
	if sw.Info().Tuning == "" {
		t.Fatal("tuning note missing")
	}
}

func TestPipelineCostHasHighVariance(t *testing.T) {
	// Table 3's t4p4s signature: unstable pipeline. Measure per-packet
	// cost dispersion across many single-frame polls.
	sw, fps, env := newSUT(t, 2)
	_ = sw.CrossConnect(0, 1)
	m := switchtest.Meter(env)
	var costs []float64
	for i := 0; i < 500; i++ {
		fps[0].In = append(fps[0].In, switchtest.Frame(env.Pool, switchdef.PortMAC(0), switchdef.PortMAC(1), 64))
		before := m.Total()
		sw.Poll(0, m)
		m.Drain()
		costs = append(costs, float64(m.Total()-before))
	}
	var sum, sq float64
	for _, c := range costs {
		sum += c
	}
	mean := sum / float64(len(costs))
	for _, c := range costs {
		sq += (c - mean) * (c - mean)
	}
	cv := (sq / float64(len(costs))) / (mean * mean)
	if cv < 0.005 {
		t.Fatalf("cost CV² = %f — pipeline too stable for t4p4s", cv)
	}
	for _, b := range fps[1].Out {
		b.Free()
	}
}
