package t4p4s

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/switches/switchdef"
	"repro/internal/switches/switchtest"
)

func TestLPMTableLongestPrefixWins(t *testing.T) {
	tb := NewTable("l3", []FieldID{FieldIPDst}, Entry{Action: ActDrop}).SetKind(MatchLPM)
	if err := tb.AddLPM([]byte{10, 0, 0, 0}, 8, Entry{Action: ActForward, Port: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddLPM([]byte{10, 1, 0, 0}, 16, Entry{Action: ActForward, Port: 2}); err != nil {
		t.Fatal(err)
	}
	if got, _ := tb.lookup([]byte{10, 1, 9, 9}); got.Port != 2 {
		t.Fatalf("lookup = %+v", got)
	}
	if got, _ := tb.lookup([]byte{10, 9, 9, 9}); got.Port != 1 {
		t.Fatalf("lookup = %+v", got)
	}
	if got, _ := tb.lookup([]byte{11, 0, 0, 1}); got.Action != ActDrop {
		t.Fatalf("miss = %+v", got)
	}
	if tb.Hits != 2 || tb.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", tb.Hits, tb.Misses)
	}
}

func TestTernaryPriority(t *testing.T) {
	tb := NewTable("acl", []FieldID{FieldL4Dst}, Entry{Action: ActDrop}).SetKind(MatchTernary)
	// Low priority: any port in 0x0050-0x005f → forward 1.
	if err := tb.AddTernary([]byte{0x00, 0x50}, []byte{0xff, 0xf0}, 1, Entry{Action: ActForward, Port: 1}); err != nil {
		t.Fatal(err)
	}
	// High priority: exactly 0x0051 → forward 2.
	if err := tb.AddTernary([]byte{0x00, 0x51}, []byte{0xff, 0xff}, 10, Entry{Action: ActForward, Port: 2}); err != nil {
		t.Fatal(err)
	}
	if got, _ := tb.lookup([]byte{0x00, 0x52}); got.Port != 1 {
		t.Fatalf("range entry = %+v", got)
	}
	if got, _ := tb.lookup([]byte{0x00, 0x51}); got.Port != 2 {
		t.Fatalf("priority entry = %+v", got)
	}
}

func TestTableKindEnforcement(t *testing.T) {
	exact := NewTable("x", []FieldID{FieldIPDst}, Entry{})
	if err := exact.AddLPM([]byte{1, 2, 3, 4}, 8, Entry{}); err == nil {
		t.Fatal("LPM insert into exact table accepted")
	}
	lpm := NewTable("y", []FieldID{FieldIPDst}, Entry{}).SetKind(MatchLPM)
	if err := lpm.AddTernary([]byte{1}, []byte{1}, 0, Entry{}); err == nil {
		t.Fatal("ternary insert into lpm table accepted")
	}
	if err := lpm.AddLPM([]byte{1, 2, 3, 4}, 99, Entry{}); err == nil {
		t.Fatal("bad plen accepted")
	}
}

// Property: the LPM table agrees with brute force over random prefixes.
func TestPropertyLPMMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		tb := NewTable("l3", []FieldID{FieldIPDst}, Entry{Port: -1}).SetKind(MatchLPM)
		type route struct {
			addr uint32
			plen int
			port int
		}
		var routes []route
		for i := 0; i < 25; i++ {
			plen := rng.Intn(33)
			addr := uint32(rng.Uint64())
			var kb [4]byte
			binary.BigEndian.PutUint32(kb[:], addr)
			maskBits(kb[:], plen)
			masked := binary.BigEndian.Uint32(kb[:])
			// Skip duplicate (addr,plen): table keeps both but brute
			// force would need tie-breaks.
			dup := false
			for _, r := range routes {
				if r.addr == masked && r.plen == plen {
					dup = true
				}
			}
			if dup {
				continue
			}
			if err := tb.AddLPM(kb[:], plen, Entry{Action: ActForward, Port: i}); err != nil {
				return false
			}
			routes = append(routes, route{masked, plen, i})
		}
		for i := 0; i < 100; i++ {
			a := uint32(rng.Uint64())
			var key [4]byte
			binary.BigEndian.PutUint32(key[:], a)
			want, wantLen := -1, -1
			for _, r := range routes {
				var kb [4]byte
				binary.BigEndian.PutUint32(kb[:], a)
				maskBits(kb[:], r.plen)
				if binary.BigEndian.Uint32(kb[:]) == r.addr && r.plen > wantLen {
					want, wantLen = r.port, r.plen
				}
			}
			if got, _ := tb.lookup(key[:]); got.Port != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

const l3Program = `
# An l3fwd-style program: LPM routing with MAC rewrite, plus an ACL.
table acl ternary l4.dst
entry acl 0x1000/0xf000 5 drop
table lpm4 lpm ip.dst
entry lpm4 10.1.0.0/16 setdmac 02:00:00:00:00:11 forward 1
entry lpm4 10.0.0.0/8 setdmac 02:00:00:00:00:22 forward 2
default lpm4 drop
`

func TestLoadProgramAndRun(t *testing.T) {
	env := switchtest.Env()
	sw := New(env)
	fps := make([]*switchtest.FakePort, 3)
	for i := range fps {
		fps[i] = switchtest.NewFakePort("p")
		sw.AddPort(fps[i])
	}
	if err := sw.LoadProgram(l3Program); err != nil {
		t.Fatal(err)
	}
	if len(sw.Tables()) != 2 {
		t.Fatalf("tables = %d", len(sw.Tables()))
	}
	mk := func(dst [4]byte, l4dst uint16) *pkt.Buf {
		b := env.Pool.Get(64)
		pkt.FrameSpec{
			SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: [4]byte{192, 168, 0, 1}, DstIP: dst,
			SrcPort: 1000, DstPort: l4dst, FrameLen: 64,
		}.Build(b)
		return b
	}
	fps[0].In = append(fps[0].In,
		mk([4]byte{10, 1, 2, 3}, 80),     // → port 1, rewritten
		mk([4]byte{10, 2, 2, 3}, 80),     // → port 2
		mk([4]byte{10, 1, 2, 3}, 0x1234), // ACL drop
		mk([4]byte{172, 16, 0, 1}, 80),   // LPM miss → drop
	)
	drain(sw, env)
	if len(fps[1].Out) != 1 || len(fps[2].Out) != 1 {
		t.Fatalf("out = %d, %d", len(fps[1].Out), len(fps[2].Out))
	}
	if sw.Dropped != 2 {
		t.Fatalf("dropped = %d", sw.Dropped)
	}
	wantMAC, _ := pkt.ParseMAC("02:00:00:00:00:11")
	if pkt.EthDst(fps[1].Out[0].Bytes()) != wantMAC {
		t.Fatal("setdmac not applied through deparser")
	}
}

func TestLoadProgramErrors(t *testing.T) {
	env := switchtest.Env()
	sw := New(env)
	sw.AddPort(switchtest.NewFakePort("p"))
	for _, bad := range []string{
		"",
		"table x wat eth.dst",
		"table x exact nosuch.field",
		"table x exact eth.dst\ntable x exact eth.dst",
		"entry ghost 02:00:00:00:00:01 drop",
		"table x exact eth.dst\nentry x 02:00:00:00:00:01 forward 9",
		"table x lpm ip.dst\nentry x 10.0.0.0 forward 0",
		"table x ternary l4.dst\nentry x 0x10/0xff drop", // missing priority
		"default ghost drop",
		"bogus directive here",
	} {
		if err := sw.LoadProgram(bad); err == nil {
			t.Errorf("LoadProgram(%q) accepted", bad)
		}
	}
}

func TestProgramOnTestbedPorts(t *testing.T) {
	// The program's l2fwd equivalent via LoadProgram must behave exactly
	// like CrossConnect's implicit program.
	env := switchtest.Env()
	sw := New(env)
	in, out := switchtest.NewFakePort("in"), switchtest.NewFakePort("out")
	sw.AddPort(in)
	sw.AddPort(out)
	prog := "table dmac exact eth.dst\n" +
		"entry dmac " + switchdef.PortMAC(1).String() + " forward 1\n" +
		"entry dmac " + switchdef.PortMAC(0).String() + " forward 0\n"
	if err := sw.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	in.In = append(in.In, switchtest.Frame(env.Pool, switchdef.PortMAC(0), switchdef.PortMAC(1), 64))
	drain(sw, env)
	if len(out.Out) != 1 {
		t.Fatalf("out = %d", len(out.Out))
	}
}
