package bess

import (
	"testing"

	"repro/internal/units"

	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/switches/switchtest"
)

func newSUT(t *testing.T, ports int) (*Switch, []*switchtest.FakePort, switchdef.Env) {
	t.Helper()
	env := switchtest.Env()
	sw := New(env)
	fps := make([]*switchtest.FakePort, ports)
	for i := range fps {
		fps[i] = switchtest.NewFakePort("p")
		sw.AddPort(fps[i])
	}
	return sw, fps, env
}

func frame(env switchdef.Env) *pkt.Buf {
	return switchtest.Frame(env.Pool, pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}, 64)
}

func TestBuilderPipeline(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	in, err := sw.NewQueueInc("in0", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sw.NewQueueOut("out0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Connect(in, out); err != nil {
		t.Fatal(err)
	}
	fps[0].In = append(fps[0].In, frame(env))
	m := switchtest.Meter(env)
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[1].Out) != 1 || in.Packets != 1 || out.Packets != 1 {
		t.Fatalf("out=%d in.Packets=%d out.Packets=%d", len(fps[1].Out), in.Packets, out.Packets)
	}
}

func TestCrossConnectBidirectional(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	if err := sw.CrossConnect(0, 1); err != nil {
		t.Fatal(err)
	}
	fps[0].In = append(fps[0].In, frame(env))
	fps[1].In = append(fps[1].In, frame(env))
	m := switchtest.Meter(env)
	switchtest.PollUntilIdle(sw, m, 0)
	if len(fps[0].Out) != 1 || len(fps[1].Out) != 1 {
		t.Fatalf("outputs = %d, %d", len(fps[0].Out), len(fps[1].Out))
	}
}

func TestSinkFrees(t *testing.T) {
	sw, fps, env := newSUT(t, 1)
	in, _ := sw.NewQueueInc("in0", 0, 1)
	sink, _ := sw.NewSink("sink")
	_ = sw.Connect(in, sink)
	fps[0].In = append(fps[0].In, frame(env), frame(env))
	m := switchtest.Meter(env)
	switchtest.PollUntilIdle(sw, m, 0)
	if sink.Packets != 2 || env.Pool.Live() != 0 {
		t.Fatalf("sink=%d live=%d", sink.Packets, env.Pool.Live())
	}
}

func TestWRRWheelWeights(t *testing.T) {
	sw, fps, env := newSUT(t, 3)
	// in0 gets weight 3, in1 weight 1: per wheel turn, in0 runs 3×.
	inA, _ := sw.NewQueueInc("inA", 0, 3)
	inB, _ := sw.NewQueueInc("inB", 1, 1)
	outA, _ := sw.NewQueueOut("outA", 2)
	sink, _ := sw.NewSink("s")
	_ = sw.Connect(inA, outA)
	_ = sw.Connect(inB, sink)
	if len(sw.wheel) != 4 {
		t.Fatalf("wheel = %d entries", len(sw.wheel))
	}
	// Fill both inputs with more than a burst; one Poll = one wheel turn:
	// inA should move 3 bursts (96), inB one burst (32).
	for i := 0; i < 200; i++ {
		fps[0].In = append(fps[0].In, frame(env))
		fps[1].In = append(fps[1].In, frame(env))
	}
	m := switchtest.Meter(env)
	sw.Poll(0, m)
	if inA.Packets != 96 || inB.Packets != 32 {
		t.Fatalf("after one turn: inA=%d inB=%d", inA.Packets, inB.Packets)
	}
}

func TestModuleErrors(t *testing.T) {
	sw, _, _ := newSUT(t, 1)
	if _, err := sw.NewQueueInc("x", 9, 1); err == nil {
		t.Fatal("bad port accepted")
	}
	if _, err := sw.NewQueueOut("x", -1); err == nil {
		t.Fatal("bad port accepted")
	}
	a, _ := sw.NewQueueInc("a", 0, 1)
	if _, err := sw.NewQueueInc("a", 0, 1); err == nil {
		t.Fatal("duplicate name accepted")
	}
	s1, _ := sw.NewSink("s1")
	s2, _ := sw.NewSink("s2")
	if err := sw.Connect(a, s1); err != nil {
		t.Fatal(err)
	}
	if err := sw.Connect(a, s2); err == nil {
		t.Fatal("double connect accepted")
	}
}

func TestSourceWithoutGateDrops(t *testing.T) {
	sw, fps, env := newSUT(t, 1)
	_, _ = sw.NewQueueInc("in0", 0, 1)
	fps[0].In = append(fps[0].In, frame(env))
	m := switchtest.Meter(env)
	switchtest.PollUntilIdle(sw, m, 0)
	if sw.Dropped != 1 || env.Pool.Live() != 0 {
		t.Fatalf("dropped=%d live=%d", sw.Dropped, env.Pool.Live())
	}
}

func TestQEMUChainCap(t *testing.T) {
	sw, _, _ := newSUT(t, 0)
	if sw.Info().MaxLoopbackVNFs != 3 {
		t.Fatalf("BESS must cap loopback chains at 3 VMs (paper footnote 5), got %d",
			sw.Info().MaxLoopbackVNFs)
	}
}

func TestModuleLookup(t *testing.T) {
	sw, _, _ := newSUT(t, 1)
	in, _ := sw.NewQueueInc("myin", 0, 1)
	if sw.Module("myin") != Module(in) {
		t.Fatal("module lookup failed")
	}
	if sw.Module("ghost") != nil {
		t.Fatal("ghost module found")
	}
}

func TestMeasureModule(t *testing.T) {
	sw, fps, env := newSUT(t, 2)
	in, _ := sw.NewQueueInc("in0", 0, 1)
	meas, err := sw.NewMeasure("m0")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := sw.NewQueueOut("out0", 1)
	_ = sw.Connect(in, meas)
	_ = sw.Connect(meas, out)

	probe := frame(env)
	pkt.MarkProbe(probe, 1, 0)
	probe.TxStamp = 10 * units.Microsecond
	fps[0].In = append(fps[0].In, probe, frame(env))
	m := switchtest.Meter(env)
	sw.Poll(40*units.Microsecond, m)
	if meas.Samples != 1 {
		t.Fatalf("samples = %d", meas.Samples)
	}
	if got := meas.MeanUs(); got != 30 {
		t.Fatalf("mean = %f us", got)
	}
	if len(fps[1].Out) != 2 {
		t.Fatalf("out = %d", len(fps[1].Out))
	}
}

func TestRandomSplitWeights(t *testing.T) {
	sw, fps, env := newSUT(t, 3)
	in, _ := sw.NewQueueInc("in0", 0, 1)
	split, err := sw.NewRandomSplit("rs", []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	outA, _ := sw.NewQueueOut("outA", 1)
	outB, _ := sw.NewQueueOut("outB", 2)
	_ = sw.Connect(in, split)
	if err := split.ConnectGate(0, outA); err != nil {
		t.Fatal(err)
	}
	if err := split.ConnectGate(1, outB); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		fps[0].In = append(fps[0].In, frame(env))
	}
	m := switchtest.Meter(env)
	for i := 0; i < 200; i++ {
		sw.Poll(0, m)
		m.Drain()
	}
	total := len(fps[1].Out) + len(fps[2].Out)
	if total != 4000 {
		t.Fatalf("total = %d", total)
	}
	frac := float64(len(fps[1].Out)) / float64(total)
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("gate 0 fraction = %.3f, want ~0.75", frac)
	}
}

func TestRandomSplitErrors(t *testing.T) {
	sw, _, _ := newSUT(t, 1)
	if _, err := sw.NewRandomSplit("x", nil); err == nil {
		t.Fatal("no weights accepted")
	}
	if _, err := sw.NewRandomSplit("y", []float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	rs, _ := sw.NewRandomSplit("z", []float64{1})
	if err := rs.ConnectGate(5, nil); err == nil {
		t.Fatal("bad gate accepted")
	}
}
