// Package bess models the Berkeley Extensible Software Switch (BESS,
// Haswell build): a modular switch whose daemon schedules "tasks" (source
// modules) under a weighted scheduler and pushes batches through a
// module/gate pipeline.
//
// The paper's configurations hook ports with PMDPort and link
// QueueInc → QueueOut modules; this package exposes the same builder
// vocabulary. BESS's p2p dominance (16 Gbps bidirectional at 64B) comes
// from how little work its modules do — essentially statistics collection.
// Its QEMU incompatibility (paper footnote 5) is enforced as a 3-VNF cap on
// loopback chains.
package bess

import (
	"fmt"

	"repro/internal/sim"

	"repro/internal/cost"
	"repro/internal/pkt"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// Burst is BESS's batch size.
const Burst = 32

// Cost constants, calibrated to land p2p 64B at ≈ 42 ns/packet.
const (
	taskFixed  = 30 // scheduler dispatch per task run
	qincPerPkt = 31 // QueueInc bookkeeping + stats
	qoutPerPkt = 32 // QueueOut
	sinkPerPkt = 4
	jitterFrac = 0.015
)

// Module is a BESS pipeline module.
type Module interface {
	Name() string
	// ProcessBatch consumes the batch; pass-through modules forward via
	// their output gate.
	ProcessBatch(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf)
	setOGate(dst Module) error
}

type baseModule struct {
	name  string
	ogate Module
}

func (b *baseModule) Name() string { return b.name }
func (b *baseModule) setOGate(dst Module) error {
	if b.ogate != nil {
		return fmt.Errorf("bess: %s ogate already connected", b.name)
	}
	b.ogate = dst
	return nil
}

// Switch is a BESS daemon instance. Runtime rule updates go through
// bessctl by rebuilding the module graph, not by editing a live rule
// table, so the Programmer surface reports ErrNoRuntimeRules.
type Switch struct {
	switchdef.NoRuntimeRules

	env   switchdef.Env
	ports []switchdef.DevPort

	modules map[string]Module
	tasks   []*QueueInc // schedulable sources, in WRR expansion order
	wheel   []*QueueInc // weighted round-robin expansion
	wheelAt int

	// Forwarded and Dropped count data-plane outcomes.
	Forwarded, Dropped int64
}

var info = switchdef.Info{
	Name:              "bess",
	Display:           "BESS",
	Version:           "haswell",
	SelfContained:     false,
	Paradigm:          "structured",
	ProcessingModel:   "RTC/pipeline",
	VirtualIface:      "vhost-user",
	Reprogrammability: "medium",
	Languages:         "C, Python",
	MainPurpose:       "Programmable NIC",
	BestAt:            "Forwarding between physical NICs",
	Remarks:           "Incompatible with newer versions of QEMU",
	IOMode:            switchdef.PollMode,
	MaxLoopbackVNFs:   3,
	VhostCostScale:    0.9,
}

// New returns an empty BESS daemon.
func New(env switchdef.Env) *Switch {
	return &Switch{env: env, modules: map[string]Module{}}
}

// Info implements switchdef.Switch.
func (sw *Switch) Info() switchdef.Info { return info }

// AddPort implements switchdef.Switch (the PMDPort/vdev hook).
func (sw *Switch) AddPort(p switchdef.DevPort) int {
	sw.ports = append(sw.ports, p)
	return len(sw.ports) - 1
}

func (sw *Switch) register(m Module) (Module, error) {
	if _, dup := sw.modules[m.Name()]; dup {
		return nil, fmt.Errorf("bess: duplicate module %q", m.Name())
	}
	sw.modules[m.Name()] = m
	return m, nil
}

// NewQueueInc creates a schedulable input task over a port, with a WRR
// weight (≥1) in the traffic-class scheduler.
func (sw *Switch) NewQueueInc(name string, port, weight int) (*QueueInc, error) {
	if port < 0 || port >= len(sw.ports) {
		return nil, fmt.Errorf("bess: no port %d", port)
	}
	if weight < 1 {
		weight = 1
	}
	q := &QueueInc{baseModule: baseModule{name: name}, dev: sw.ports[port], weight: weight}
	if _, err := sw.register(q); err != nil {
		return nil, err
	}
	sw.tasks = append(sw.tasks, q)
	sw.rebuildWheel()
	return q, nil
}

// NewQueueOut creates an output module over a port.
func (sw *Switch) NewQueueOut(name string, port int) (*QueueOut, error) {
	if port < 0 || port >= len(sw.ports) {
		return nil, fmt.Errorf("bess: no port %d", port)
	}
	q := &QueueOut{baseModule: baseModule{name: name}, dev: sw.ports[port]}
	if _, err := sw.register(q); err != nil {
		return nil, err
	}
	return q, nil
}

// NewSink creates a module that frees everything it receives.
func (sw *Switch) NewSink(name string) (*Sink, error) {
	s := &Sink{baseModule: baseModule{name: name}}
	if _, err := sw.register(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Connect links src's output gate to dst (the builder's "->").
func (sw *Switch) Connect(src, dst Module) error { return src.setOGate(dst) }

// Module returns a module by name.
func (sw *Switch) Module(name string) Module { return sw.modules[name] }

func (sw *Switch) rebuildWheel() {
	sw.wheel = sw.wheel[:0]
	for _, t := range sw.tasks {
		for i := 0; i < t.weight; i++ {
			sw.wheel = append(sw.wheel, t)
		}
	}
	sw.wheelAt = 0
}

// CrossConnect implements switchdef.Switch with the paper's configuration:
// QueueInc(port=a) -> QueueOut(port=b) and the reverse.
func (sw *Switch) CrossConnect(a, b int) error {
	n := len(sw.modules)
	ia, err := sw.NewQueueInc(fmt.Sprintf("in%d_%d", a, n), a, 1)
	if err != nil {
		return err
	}
	oa, err := sw.NewQueueOut(fmt.Sprintf("out%d_%d", b, n), b)
	if err != nil {
		return err
	}
	if err := sw.Connect(ia, oa); err != nil {
		return err
	}
	ib, err := sw.NewQueueInc(fmt.Sprintf("in%d_%d", b, n+2), b, 1)
	if err != nil {
		return err
	}
	ob, err := sw.NewQueueOut(fmt.Sprintf("out%d_%d", a, n+2), a)
	if err != nil {
		return err
	}
	return sw.Connect(ib, ob)
}

// Poll implements switchdef.Switch: one full turn of the scheduler wheel.
// Multi-core runs give each worker its own Switch instance (BESS's
// per-worker scheduler wheels) — see internal/multicore.
func (sw *Switch) Poll(now units.Time, m *cost.Meter) bool {
	did := false
	for range sw.wheel {
		t := sw.wheel[sw.wheelAt]
		sw.wheelAt = (sw.wheelAt + 1) % len(sw.wheel)
		if t.run(sw, now, m) {
			did = true
		}
	}
	return did
}

// QueueInc pulls batches from a port; it is the schedulable task unit.
type QueueInc struct {
	rxScratch [Burst]*pkt.Buf // receive staging, reused across polls

	baseModule
	dev    switchdef.DevPort
	weight int

	Packets int64
}

// ProcessBatch implements Module (sources do not receive).
func (q *QueueInc) ProcessBatch(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	panic("bess: QueueInc cannot receive")
}

func (q *QueueInc) run(sw *Switch, now units.Time, m *cost.Meter) bool {
	burst := &q.rxScratch
	n := q.dev.RxBurst(now, m, burst[:])
	if n == 0 {
		return false
	}
	m.ChargeNoisy(taskFixed+units.Cycles(n)*qincPerPkt, jitterFrac)
	q.Packets += int64(n)
	// Hand the RX scratch slice straight down the pipeline: modules
	// consume batches synchronously and none retains its input slice, so
	// the per-run batch allocation the copy used to pay is gone.
	if q.ogate == nil {
		for _, b := range burst[:n] {
			b.Free()
		}
		sw.Dropped += int64(n)
		return true
	}
	q.ogate.ProcessBatch(sw, now, m, burst[:n])
	return true
}

// QueueOut transmits batches on a port.
type QueueOut struct {
	baseModule
	dev switchdef.DevPort

	Packets int64
}

// ProcessBatch implements Module.
func (q *QueueOut) ProcessBatch(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	m.ChargeNoisy(units.Cycles(len(batch))*qoutPerPkt, jitterFrac)
	sent := q.dev.TxBurst(now, m, batch)
	q.Packets += int64(sent)
	sw.Forwarded += int64(sent)
	sw.Dropped += int64(len(batch) - sent)
}

// Sink frees batches (bessctl's Sink()).
type Sink struct {
	baseModule
	Packets int64
}

// ProcessBatch implements Module.
func (s *Sink) ProcessBatch(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	m.Charge(units.Cycles(len(batch)) * sinkPerPkt)
	for _, b := range batch {
		b.Free()
	}
	s.Packets += int64(len(batch))
	sw.Dropped += int64(len(batch))
}

func init() {
	switchdef.Register(info, func(env switchdef.Env) switchdef.Switch { return New(env) })
}

// Measure samples per-packet one-way latency from probe timestamps — the
// bessctl Measure() module used to build latency dashboards.
type Measure struct {
	baseModule
	Samples int64
	SumUs   float64
}

// NewMeasure creates a pass-through latency measurement module.
func (sw *Switch) NewMeasure(name string) (*Measure, error) {
	mod := &Measure{baseModule: baseModule{name: name}}
	if _, err := sw.register(mod); err != nil {
		return nil, err
	}
	return mod, nil
}

// ProcessBatch implements Module.
func (mod *Measure) ProcessBatch(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	m.Charge(units.Cycles(len(batch)) * 6)
	for _, b := range batch {
		if b.Probe && b.TxStamp > 0 {
			mod.Samples++
			mod.SumUs += (now - b.TxStamp).Microseconds()
		}
	}
	if mod.ogate != nil {
		mod.ogate.ProcessBatch(sw, now, m, batch)
		return
	}
	for _, b := range batch {
		b.Free()
	}
	sw.Dropped += int64(len(batch))
}

// MeanUs returns the average measured one-way latency.
func (mod *Measure) MeanUs() float64 {
	if mod.Samples == 0 {
		return 0
	}
	return mod.SumUs / float64(mod.Samples)
}

// RandomSplit forwards each packet to one of its gates pseudo-randomly with
// the configured weights (bessctl RandomSplit()).
type RandomSplit struct {
	baseModule
	gates   []Module
	weights []float64
	total   float64
	rng     *sim.RNG
}

// NewRandomSplit creates a splitter with one weight per output gate.
func (sw *Switch) NewRandomSplit(name string, weights []float64) (*RandomSplit, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("bess: RandomSplit needs weights")
	}
	total := 0.0
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("bess: RandomSplit weights must be positive")
		}
		total += w
	}
	mod := &RandomSplit{
		baseModule: baseModule{name: name},
		gates:      make([]Module, len(weights)),
		weights:    weights,
		total:      total,
		rng:        sw.env.RNG.Derive("bess-split-" + name),
	}
	if _, err := sw.register(mod); err != nil {
		return nil, err
	}
	return mod, nil
}

// ConnectGate wires output gate i to dst.
func (mod *RandomSplit) ConnectGate(i int, dst Module) error {
	if i < 0 || i >= len(mod.gates) {
		return fmt.Errorf("bess: RandomSplit has no gate %d", i)
	}
	if mod.gates[i] != nil {
		return fmt.Errorf("bess: gate %d already connected", i)
	}
	mod.gates[i] = dst
	return nil
}

// ProcessBatch implements Module.
func (mod *RandomSplit) ProcessBatch(sw *Switch, now units.Time, m *cost.Meter, batch []*pkt.Buf) {
	m.Charge(units.Cycles(len(batch)) * 10)
	groups := make([][]*pkt.Buf, len(mod.gates))
	for _, b := range batch {
		r := mod.rng.Float64() * mod.total
		gi := 0
		for i, w := range mod.weights {
			if r < w {
				gi = i
				break
			}
			r -= w
		}
		groups[gi] = append(groups[gi], b)
	}
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		if mod.gates[i] == nil {
			for _, b := range g {
				b.Free()
			}
			sw.Dropped += int64(len(g))
			continue
		}
		mod.gates[i].ProcessBatch(sw, now, m, g)
	}
}
