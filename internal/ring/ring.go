// Package ring provides the bounded single-producer/single-consumer packet
// queues that back virtio vrings, netmap rings, and inter-module links.
package ring

import (
	"repro/internal/pkt"
	"repro/internal/units"
)

// SPSC is a bounded FIFO of packet buffers. The zero value is unusable; use
// New. (The simulation is single-goroutine, so no atomics are needed — the
// "SPSC" in the name records the modelled hardware discipline.)
//
// The backing store is sized to the next power of two so that slot indexing
// is a mask instead of a modulo; head and tail are free-running so Len is a
// subtraction. The logical capacity is whatever New was given, which keeps
// ring-full (and therefore drop) behaviour independent of the rounding.
type SPSC struct {
	buf  []*pkt.Buf // power-of-two backing store
	mask uint64
	cap  int    // logical capacity (≤ len(buf))
	head uint64 // next pop slot, free-running
	tail uint64 // next push slot, free-running

	// Drops counts rejected pushes (ring full).
	Drops int64
	// Pushed and Popped count successful operations.
	Pushed, Popped int64
}

// New returns a ring holding up to capacity buffers.
func New(capacity int) *SPSC {
	if capacity <= 0 {
		panic("ring: non-positive capacity")
	}
	pow2 := 1
	for pow2 < capacity {
		pow2 <<= 1
	}
	return &SPSC{buf: make([]*pkt.Buf, pow2), mask: uint64(pow2 - 1), cap: capacity}
}

// Cap returns the ring capacity.
func (r *SPSC) Cap() int { return r.cap }

// Len returns the number of queued buffers.
func (r *SPSC) Len() int { return int(r.tail - r.head) }

// Free returns the remaining slots.
func (r *SPSC) Free() int { return r.cap - int(r.tail-r.head) }

// Push enqueues b, returning false (and counting a drop) if full.
func (r *SPSC) Push(b *pkt.Buf) bool {
	if int(r.tail-r.head) == r.cap {
		r.Drops++
		return false
	}
	r.buf[r.tail&r.mask] = b
	r.tail++
	r.Pushed++
	return true
}

// PushBurst enqueues buffers from in until the ring fills, returning how
// many were accepted. Unlike Push it does not count drops for the
// remainder — the caller decides what a rejected batch tail means.
func (r *SPSC) PushBurst(in []*pkt.Buf) int {
	n := r.cap - int(r.tail-r.head)
	if n > len(in) {
		n = len(in)
	}
	for _, b := range in[:n] {
		r.buf[r.tail&r.mask] = b
		r.tail++
	}
	r.Pushed += int64(n)
	return n
}

// Pop dequeues the oldest buffer, or nil if empty.
func (r *SPSC) Pop() *pkt.Buf {
	if r.tail == r.head {
		return nil
	}
	b := r.buf[r.head&r.mask]
	r.buf[r.head&r.mask] = nil
	r.head++
	r.Popped++
	return b
}

// Peek returns the oldest buffer without removing it, or nil.
func (r *SPSC) Peek() *pkt.Buf {
	if r.tail == r.head {
		return nil
	}
	return r.buf[r.head&r.mask]
}

// DrainTo pops up to len(out) buffers into out and returns the count.
func (r *SPSC) DrainTo(out []*pkt.Buf) int {
	n := int(r.tail - r.head)
	if n > len(out) {
		n = len(out)
	}
	for i := 0; i < n; i++ {
		out[i] = r.buf[r.head&r.mask]
		r.buf[r.head&r.mask] = nil
		r.head++
	}
	r.Popped += int64(n)
	return n
}

// DrainVisibleTo pops up to len(out) buffers whose AvailAt has passed (the
// virtio used-ring visibility gate: a notify-delayed frame blocks everything
// behind it, preserving FIFO order) and returns the count.
func (r *SPSC) DrainVisibleTo(now units.Time, out []*pkt.Buf) int {
	n := 0
	for n < len(out) && r.tail != r.head {
		b := r.buf[r.head&r.mask]
		if b.AvailAt > now {
			break
		}
		r.buf[r.head&r.mask] = nil
		r.head++
		out[n] = b
		n++
	}
	r.Popped += int64(n)
	return n
}

// FreeAll empties the ring, returning every buffer to its pool.
func (r *SPSC) FreeAll() {
	for {
		b := r.Pop()
		if b == nil {
			return
		}
		b.Free()
	}
}
