// Package ring provides the bounded single-producer/single-consumer packet
// queues that back virtio vrings, netmap rings, and inter-module links.
package ring

import "repro/internal/pkt"

// SPSC is a bounded FIFO of packet buffers. The zero value is unusable; use
// New. (The simulation is single-goroutine, so no atomics are needed — the
// "SPSC" in the name records the modelled hardware discipline.)
type SPSC struct {
	buf   []*pkt.Buf
	head  int // next pop
	count int

	// Drops counts rejected pushes (ring full).
	Drops int64
	// Pushed and Popped count successful operations.
	Pushed, Popped int64
}

// New returns a ring holding up to capacity buffers.
func New(capacity int) *SPSC {
	if capacity <= 0 {
		panic("ring: non-positive capacity")
	}
	return &SPSC{buf: make([]*pkt.Buf, capacity)}
}

// Cap returns the ring capacity.
func (r *SPSC) Cap() int { return len(r.buf) }

// Len returns the number of queued buffers.
func (r *SPSC) Len() int { return r.count }

// Free returns the remaining slots.
func (r *SPSC) Free() int { return len(r.buf) - r.count }

// Push enqueues b, returning false (and counting a drop) if full.
func (r *SPSC) Push(b *pkt.Buf) bool {
	if r.count == len(r.buf) {
		r.Drops++
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = b
	r.count++
	r.Pushed++
	return true
}

// Pop dequeues the oldest buffer, or nil if empty.
func (r *SPSC) Pop() *pkt.Buf {
	if r.count == 0 {
		return nil
	}
	b := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	r.Popped++
	return b
}

// Peek returns the oldest buffer without removing it, or nil.
func (r *SPSC) Peek() *pkt.Buf {
	if r.count == 0 {
		return nil
	}
	return r.buf[r.head]
}

// DrainTo pops up to len(out) buffers into out and returns the count.
func (r *SPSC) DrainTo(out []*pkt.Buf) int {
	n := 0
	for n < len(out) {
		b := r.Pop()
		if b == nil {
			break
		}
		out[n] = b
		n++
	}
	return n
}

// FreeAll empties the ring, returning every buffer to its pool.
func (r *SPSC) FreeAll() {
	for {
		b := r.Pop()
		if b == nil {
			return
		}
		b.Free()
	}
}
