package ring

import (
	"testing"
	"testing/quick"

	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestFIFOOrder(t *testing.T) {
	r := New(8)
	pool := pkt.NewPool(64)
	for i := 0; i < 5; i++ {
		b := pool.Get(64)
		b.Seq = uint64(i)
		if !r.Push(b) {
			t.Fatal("push failed")
		}
	}
	for i := 0; i < 5; i++ {
		b := r.Pop()
		if b == nil || b.Seq != uint64(i) {
			t.Fatalf("pop %d = %v", i, b)
		}
		b.Free()
	}
	if r.Pop() != nil {
		t.Fatal("pop from empty")
	}
}

func TestOverflowCountsDrops(t *testing.T) {
	r := New(3)
	pool := pkt.NewPool(64)
	for i := 0; i < 5; i++ {
		b := pool.Get(64)
		if !r.Push(b) {
			b.Free()
		}
	}
	if r.Len() != 3 || r.Drops != 2 {
		t.Fatalf("len=%d drops=%d", r.Len(), r.Drops)
	}
}

func TestWrapAround(t *testing.T) {
	r := New(4)
	pool := pkt.NewPool(64)
	seq := uint64(0)
	// Exercise wrap repeatedly.
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			b := pool.Get(64)
			b.Seq = seq
			seq++
			r.Push(b)
		}
		for i := 0; i < 3; i++ {
			r.Pop().Free()
		}
	}
	if r.Pushed != 30 || r.Popped != 30 {
		t.Fatalf("pushed=%d popped=%d", r.Pushed, r.Popped)
	}
}

// TestPropertyFIFONoLossNoDup drives a random op sequence against a model
// queue and checks exact agreement: no loss, no duplication, no reordering.
func TestPropertyFIFONoLossNoDup(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		r := New(capacity)
		pool := pkt.NewPool(64)
		rng := sim.NewRNG(seed)
		var model []uint64
		next := uint64(0)
		for op := 0; op < 500; op++ {
			if rng.Bernoulli(0.55) {
				b := pool.Get(64)
				b.Seq = next
				if r.Push(b) {
					model = append(model, next)
				} else {
					if len(model) != capacity {
						return false // rejected while not full
					}
					b.Free()
				}
				next++
			} else {
				b := r.Pop()
				if len(model) == 0 {
					if b != nil {
						return false
					}
					continue
				}
				if b == nil || b.Seq != model[0] {
					return false
				}
				model = model[1:]
				b.Free()
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDrainTo(t *testing.T) {
	r := New(16)
	pool := pkt.NewPool(64)
	for i := 0; i < 10; i++ {
		r.Push(pool.Get(64))
	}
	out := make([]*pkt.Buf, 4)
	if n := r.DrainTo(out); n != 4 {
		t.Fatalf("drain = %d", n)
	}
	if r.Len() != 6 {
		t.Fatalf("len = %d", r.Len())
	}
	for _, b := range out {
		b.Free()
	}
	big := make([]*pkt.Buf, 32)
	if n := r.DrainTo(big); n != 6 {
		t.Fatalf("drain rest = %d", n)
	}
	for _, b := range big[:6] {
		b.Free()
	}
}

func TestFreeAll(t *testing.T) {
	r := New(16)
	pool := pkt.NewPool(64)
	for i := 0; i < 10; i++ {
		r.Push(pool.Get(64))
	}
	r.FreeAll()
	if r.Len() != 0 || pool.Live() != 0 {
		t.Fatalf("len=%d live=%d", r.Len(), pool.Live())
	}
}

func TestPeek(t *testing.T) {
	r := New(4)
	if r.Peek() != nil {
		t.Fatal("peek on empty")
	}
	pool := pkt.NewPool(64)
	b := pool.Get(64)
	b.Seq = 7
	r.Push(b)
	if got := r.Peek(); got == nil || got.Seq != 7 || r.Len() != 1 {
		t.Fatal("peek wrong")
	}
}

func TestNewPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0)
}

// TestNonPow2CapacityPreserved pins the pow2-backing-store refactor's
// contract: the logical capacity (and therefore drop behaviour) is exactly
// what New was given, not the rounded-up store size.
func TestNonPow2CapacityPreserved(t *testing.T) {
	r := New(6)
	if r.Cap() != 6 {
		t.Fatalf("cap = %d", r.Cap())
	}
	pool := pkt.NewPool(64)
	for i := 0; i < 9; i++ {
		b := pool.Get(64)
		if !r.Push(b) {
			b.Free()
		}
	}
	if r.Len() != 6 || r.Drops != 3 {
		t.Fatalf("len=%d drops=%d, rounding leaked into capacity", r.Len(), r.Drops)
	}
}

// TestPushBurstPartialAccept checks that PushBurst stops at the ring
// boundary without counting drops — the caller owns that decision.
func TestPushBurstPartialAccept(t *testing.T) {
	r := New(4)
	pool := pkt.NewPool(64)
	in := make([]*pkt.Buf, 7)
	for i := range in {
		in[i] = pool.Get(64)
		in[i].Seq = uint64(i)
	}
	if n := r.PushBurst(in); n != 4 {
		t.Fatalf("accepted = %d", n)
	}
	if r.Drops != 0 {
		t.Fatalf("PushBurst counted drops: %d", r.Drops)
	}
	for i := 0; i < 4; i++ {
		b := r.Pop()
		if b.Seq != uint64(i) {
			t.Fatalf("order broken at %d: seq %d", i, b.Seq)
		}
		b.Free()
	}
	for _, b := range in[4:] {
		b.Free()
	}
}

// TestDrainVisibleTo checks the virtio used-ring visibility gate: frames
// become poppable only once AvailAt passes, a not-yet-visible frame blocks
// everything behind it (FIFO), and the exact boundary AvailAt == now is
// visible.
func TestDrainVisibleTo(t *testing.T) {
	r := New(8)
	pool := pkt.NewPool(64)
	for i, at := range []int64{10, 20, 30} {
		b := pool.Get(64)
		b.Seq = uint64(i)
		b.AvailAt = units.Time(at)
		r.Push(b)
	}
	out := make([]*pkt.Buf, 8)
	if n := r.DrainVisibleTo(9, out); n != 0 {
		t.Fatalf("visible before AvailAt: %d", n)
	}
	if n := r.DrainVisibleTo(10, out); n != 1 || out[0].Seq != 0 {
		t.Fatalf("exact boundary: n=%d", n)
	}
	out[0].Free()
	// The head frame (AvailAt=20) gates the one behind it even at t=25.
	if n := r.DrainVisibleTo(25, out); n != 1 || out[0].Seq != 1 {
		t.Fatalf("FIFO gate: n=%d", n)
	}
	out[0].Free()
	if n := r.DrainVisibleTo(100, out); n != 1 || out[0].Seq != 2 {
		t.Fatalf("tail: n=%d", n)
	}
	out[0].Free()
}
