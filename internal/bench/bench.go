// Package bench measures the host-side execution speed of the simulation
// engine itself: how many scheduler events and simulated packets one wall-
// clock second buys on a set of fixed-seed representative cells.
//
// This is deliberately distinct from the paper-reproduction benchmarks
// (bench_test.go), which report *simulated* throughput. Here the simulated
// results are only a determinism cross-check — two engine builds must
// produce bit-identical simulation outcomes, and the interesting number is
// how fast the host reached them. BENCH_simcore.json records the trajectory
// so perf work is measured against a baseline, not guessed.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/switches/switchdef"
	"repro/internal/units"
)

// Schema identifies the report format.
const Schema = "swbench-simcore-bench/v1"

// Cell is one fixed-seed representative measurement.
type Cell struct {
	Name string      `json:"name"`
	Cfg  core.Config `json:"-"`
}

// Cells returns the representative workload set: the stress cell every
// switch paper plots first (p2p at 64B), the three vhost-heavy guest
// paths (p2v, v2v, and a 4-VNF loopback chain — the deepest pipeline the
// paper measures for every switch), the two multi-core dispatch paths
// (4-core RSS and the 4-core RTC pipeline), which stress the fleet
// fan-out, demux, and handoff-ring machinery, and the long-service-chain
// cell (bidirectional 8-VNF loopback — the worst sequential case). The
// "-swN" variants rerun a base cell on the conservative-parallel engine
// with N simulation workers; their simulation observables must be
// bit-identical to the base cell, and the interesting number is the
// wall-clock speedup (recorded by Run as SpeedupVsSequential).
func Cells(o core.RunOpts) []Cell {
	mk := func(name string, cfg core.Config) Cell {
		return Cell{Name: name, Cfg: o.Apply(cfg)}
	}
	parallel := func(base Cell, workers int) Cell {
		cfg := base.Cfg
		cfg.SimWorkers = workers
		return Cell{Name: fmt.Sprintf("%s-sw%d", base.Name, workers), Cfg: cfg}
	}
	p2p := mk("p2p-64B", core.Config{Switch: "vpp", Scenario: core.P2P, FrameLen: 64})
	rtc := mk("rtc-chain-4core", core.Config{Switch: "vpp", Scenario: core.Loopback, Chain: 2,
		FrameLen: 64, Flows: 64, SUTCores: 4, Dispatch: core.DispatchRTC})
	chain8 := mk("chain-8-64B", core.Config{Switch: "vpp", Scenario: core.Loopback, Chain: 8,
		FrameLen: 64, Bidir: true})
	return []Cell{
		p2p,
		// Per-switch p2p stress cells (p2p-64B is the VPP member of the
		// set): these are switch-bound — host time goes to the dataplane
		// model, not the guest path — so they isolate switch-layer
		// regressions and show what classification memoization buys.
		mk("p2p-64B-ovs", core.Config{Switch: "ovs", Scenario: core.P2P, FrameLen: 64}),
		mk("p2p-64B-ovs-256f", core.Config{Switch: "ovs", Scenario: core.P2P, FrameLen: 64, Flows: 256}),
		// Mid-run rule churn against a Zipf flow mix: the control-plane
		// path (install/revoke, cache invalidation, memo retirement) plus
		// the Zipf draw per frame, all on the EMC-bound OvS data plane.
		mk("churn-64B-ovs", core.Config{Switch: "ovs", Scenario: core.P2P, FrameLen: 64,
			Flows: 8192, ZipfSkew: 1.1, RuleUpdateRate: 10000}),
		mk("p2p-64B-fastclick", core.Config{Switch: "fastclick", Scenario: core.P2P, FrameLen: 64}),
		mk("p2p-64B-t4p4s", core.Config{Switch: "t4p4s", Scenario: core.P2P, FrameLen: 64}),
		mk("p2p-64B-bess", core.Config{Switch: "bess", Scenario: core.P2P, FrameLen: 64}),
		mk("p2v-64B", core.Config{Switch: "vpp", Scenario: core.P2V, FrameLen: 64}),
		mk("v2v-64B", core.Config{Switch: "vpp", Scenario: core.V2V, FrameLen: 64}),
		mk("loopback-4", core.Config{Switch: "vpp", Scenario: core.Loopback, Chain: 4, FrameLen: 64}),
		mk("p2p-64B-4core", core.Config{Switch: "vpp", Scenario: core.P2P, FrameLen: 64,
			Bidir: true, Flows: 64, SUTCores: 4,
			Dispatch: core.DispatchRSS, RSSPolicy: core.RSSFlowHash}),
		rtc,
		chain8,
		parallel(p2p, 3),
		parallel(rtc, 3),
		parallel(chain8, 3),
	}
}

// CellResult is one cell's measurement: simulation observables (identical
// across engine builds) plus host-side timing.
type CellResult struct {
	Name string `json:"name"`

	// Simulation observables — the determinism cross-check.
	SimPackets int64   `json:"sim_packets"` // frames delivered in the window
	Steps      uint64  `json:"steps"`       // scheduler steps dispatched
	Gbps       float64 `json:"gbps"`
	Drops      int64   `json:"drops"`

	// Engine shape: requested simulation workers and the partition
	// count the run actually used (1 = sequential engine; a request can
	// fall back when the topology has no positive-lookahead cut).
	SimWorkers    int `json:"sim_workers"`
	SimPartitions int `json:"sim_partitions"`

	// Host-side timing (best of Repeats runs).
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	SimPktPerSec float64 `json:"sim_pkt_per_sec"`

	// SpeedupVsSequential is baseWall / thisWall for "-swN" variant
	// cells whose sequential base ran in the same report (0 otherwise).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`

	// HostSpeedupVsPrev is referenceWall / thisWall when the run also
	// measured the previous hot-path behaviour — the per-frame reference
	// classification path, selected by force-disabling memoization — in
	// the same process (Options.MemoBaseline). The two passes must agree
	// on every simulation observable; only the host clock may differ.
	HostSpeedupVsPrev float64 `json:"host_speedup_vs_prev,omitempty"`
}

// Report is one engine build's full measurement.
type Report struct {
	Schema  string       `json:"schema"`
	GoArch  string       `json:"goarch"`
	GoOS    string       `json:"goos"`
	CPUs    int          `json:"cpus"`
	Quick   bool         `json:"quick"`
	Repeats int          `json:"repeats"`
	Cells   []CellResult `json:"cells"`
}

// Options configures a bench run.
type Options struct {
	// Opts sets the simulation window per cell.
	Opts core.RunOpts
	// Quick is recorded in the report (whether Opts came from the quick
	// profile).
	Quick bool
	// Repeats is how many times each cell runs; the best wall time wins
	// (default 3).
	Repeats int
	// Cells, when non-empty, restricts the run to the named cells (CI
	// smoke runs a single quick guest-path cell this way).
	Cells []string
	// MemoBaseline additionally runs every cell with classification
	// memoization force-disabled (the reference per-frame path), asserts
	// the simulation observables are bit-identical, and records the
	// reference-vs-memoized host speedup as HostSpeedupVsPrev.
	MemoBaseline bool
	// Progress, when non-nil, receives one line per finished cell.
	Progress io.Writer
}

// Run executes every cell Repeats times and reports best-of host timings.
func Run(opts Options) (*Report, error) {
	if opts.Repeats <= 0 {
		opts.Repeats = 3
	}
	rep := &Report{
		Schema:  Schema,
		GoArch:  runtime.GOARCH,
		GoOS:    runtime.GOOS,
		CPUs:    runtime.NumCPU(),
		Quick:   opts.Quick,
		Repeats: opts.Repeats,
	}
	selected := 0
	for _, cell := range Cells(opts.Opts) {
		if len(opts.Cells) > 0 {
			found := false
			for _, want := range opts.Cells {
				if cell.Name == want {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		selected++
		cr, err := runCell(cell, opts.Repeats, opts.MemoBaseline)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", cell.Name, err)
		}
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "  %-14s %8.1f ms  %6.2f Mevents/s  %6.2f Msimpkt/s\n",
				cr.Name, cr.WallSeconds*1e3, cr.EventsPerSec/1e6, cr.SimPktPerSec/1e6)
		}
		rep.Cells = append(rep.Cells, cr)
	}
	if len(opts.Cells) > 0 && selected != len(opts.Cells) {
		return nil, fmt.Errorf("bench: cell filter %v matched %d of %d names", opts.Cells, selected, len(opts.Cells))
	}
	if err := linkParallelVariants(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// linkParallelVariants pairs every "-swN" cell with its sequential base:
// the simulation observables must be bit-identical (the engines may only
// differ in wall clock) and the speedup is recorded on the variant.
func linkParallelVariants(rep *Report) error {
	base := map[string]CellResult{}
	for _, c := range rep.Cells {
		base[c.Name] = c
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		cut := strings.LastIndex(c.Name, "-sw")
		if cut < 0 {
			continue
		}
		b, ok := base[c.Name[:cut]]
		if !ok {
			continue // filtered run without the base cell
		}
		if c.SimPackets != b.SimPackets || c.Steps != b.Steps || c.Gbps != b.Gbps || c.Drops != b.Drops {
			return fmt.Errorf("%w: cell %s (sequential %d pkts / %d steps / %.3f Gbps / %d drops, parallel %d / %d / %.3f / %d)",
				ErrOutputsDiverged, c.Name,
				b.SimPackets, b.Steps, b.Gbps, b.Drops,
				c.SimPackets, c.Steps, c.Gbps, c.Drops)
		}
		if c.WallSeconds > 0 {
			c.SpeedupVsSequential = b.WallSeconds / c.WallSeconds
		}
	}
	return nil
}

func runCell(cell Cell, repeats int, memoBaseline bool) (CellResult, error) {
	cr := CellResult{Name: cell.Name}
	for r := 0; r < repeats; r++ {
		start := time.Now()
		res, err := core.Run(cell.Cfg)
		wall := time.Since(start)
		if err != nil {
			return cr, err
		}
		var pkts int64
		for _, d := range res.Dirs {
			pkts += d.RxPackets
		}
		if r == 0 {
			cr.SimPackets = pkts
			cr.Steps = res.Steps
			cr.Gbps = res.Gbps
			cr.Drops = res.Drops
			cr.SimWorkers = cell.Cfg.SimWorkers
			cr.SimPartitions = res.SimPartitions
			if cr.SimPartitions == 0 {
				cr.SimPartitions = 1 // sequential engine
			}
			cr.WallSeconds = wall.Seconds()
		} else {
			// Determinism cross-check between repeats of one build.
			if pkts != cr.SimPackets || res.Steps != cr.Steps {
				return cr, fmt.Errorf("nondeterministic cell: repeat %d delivered %d pkts / %d steps, first run %d / %d",
					r, pkts, res.Steps, cr.SimPackets, cr.Steps)
			}
			if s := wall.Seconds(); s < cr.WallSeconds {
				cr.WallSeconds = s
			}
		}
	}
	if cr.WallSeconds > 0 {
		cr.EventsPerSec = float64(cr.Steps) / cr.WallSeconds
		cr.SimPktPerSec = float64(cr.SimPackets) / cr.WallSeconds
	}
	if memoBaseline {
		refWall, err := runReferencePass(cell, repeats, cr)
		if err != nil {
			return cr, err
		}
		if cr.WallSeconds > 0 {
			cr.HostSpeedupVsPrev = refWall / cr.WallSeconds
		}
	}
	return cr, nil
}

// runReferencePass reruns the cell with classification memoization
// force-disabled (the per-frame reference path) and returns its best wall
// time, failing if any simulation observable differs from the memoized run.
func runReferencePass(cell Cell, repeats int, want CellResult) (float64, error) {
	prev := switchdef.SetMemoDisabled(true)
	defer switchdef.SetMemoDisabled(prev)
	best := 0.0
	for r := 0; r < repeats; r++ {
		start := time.Now()
		res, err := core.Run(cell.Cfg)
		wall := time.Since(start).Seconds()
		if err != nil {
			return 0, err
		}
		var pkts int64
		for _, d := range res.Dirs {
			pkts += d.RxPackets
		}
		if pkts != want.SimPackets || res.Steps != want.Steps || res.Gbps != want.Gbps || res.Drops != want.Drops {
			return 0, fmt.Errorf("%w: cell %s reference pass (memoized %d pkts / %d steps / %.3f Gbps / %d drops, reference %d / %d / %.3f / %d)",
				ErrOutputsDiverged, cell.Name,
				want.SimPackets, want.Steps, want.Gbps, want.Drops,
				pkts, res.Steps, res.Gbps, res.Drops)
		}
		if r == 0 || wall < best {
			best = wall
		}
	}
	return best, nil
}

// Comparison merges a baseline report with an optimized one, cell by cell.
type Comparison struct {
	Schema string           `json:"schema"`
	GoArch string           `json:"goarch"`
	GoOS   string           `json:"goos"`
	CPUs   int              `json:"cpus"`
	Quick  bool             `json:"quick"`
	Cells  []ComparisonCell `json:"cells"`
	// Headline numbers: baseline wall / optimized wall on the host p2p
	// cell and the two guest-path cells.
	HostSpeedupP2P64B    float64 `json:"host_speedup_p2p_64b"`
	HostSpeedupV2V64B    float64 `json:"host_speedup_v2v_64b"`
	HostSpeedupLoopback4 float64 `json:"host_speedup_loopback_4"`
}

// ComparisonCell pairs one cell's baseline and optimized measurements.
type ComparisonCell struct {
	Name        string     `json:"name"`
	Baseline    CellResult `json:"baseline"`
	Optimized   CellResult `json:"optimized"`
	HostSpeedup float64    `json:"host_speedup"`
}

// ErrOutputsDiverged marks a baseline/optimized pair whose simulation
// observables differ — the optimized engine changed behaviour, which this
// repo's perf work must never do.
var ErrOutputsDiverged = fmt.Errorf("bench: engine outputs diverged between baseline and optimized runs")

// Compare merges baseline and optimized reports. Cells present in only one
// report are dropped; cells whose simulation observables disagree on packet
// count, throughput, or drops fail with ErrOutputsDiverged. Steps is NOT
// compared: collapsing the event count (batching) is exactly what the
// engine work is allowed to change, while the simulated traffic is not.
func Compare(baseline, optimized *Report) (*Comparison, error) {
	base := map[string]CellResult{}
	for _, c := range baseline.Cells {
		base[c.Name] = c
	}
	cmp := &Comparison{
		Schema: Schema,
		GoArch: optimized.GoArch,
		GoOS:   optimized.GoOS,
		CPUs:   optimized.CPUs,
		Quick:  optimized.Quick,
	}
	for _, oc := range optimized.Cells {
		bc, ok := base[oc.Name]
		if !ok {
			continue
		}
		if bc.SimPackets != oc.SimPackets || bc.Gbps != oc.Gbps || bc.Drops != oc.Drops {
			return nil, fmt.Errorf("%w: cell %s (baseline %d pkts / %.3f Gbps / %d drops, optimized %d / %.3f / %d)",
				ErrOutputsDiverged, oc.Name,
				bc.SimPackets, bc.Gbps, bc.Drops,
				oc.SimPackets, oc.Gbps, oc.Drops)
		}
		cc := ComparisonCell{Name: oc.Name, Baseline: bc, Optimized: oc}
		if oc.WallSeconds > 0 {
			cc.HostSpeedup = bc.WallSeconds / oc.WallSeconds
		}
		switch oc.Name {
		case "p2p-64B":
			cmp.HostSpeedupP2P64B = cc.HostSpeedup
		case "v2v-64B":
			cmp.HostSpeedupV2V64B = cc.HostSpeedup
		case "loopback-4":
			cmp.HostSpeedupLoopback4 = cc.HostSpeedup
		}
		cmp.Cells = append(cmp.Cells, cc)
	}
	return cmp, nil
}

// WriteJSON writes v as indented JSON with a trailing newline.
func WriteJSON(w io.Writer, v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}

// ReadReport loads a Report written by WriteJSON.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("bench: unexpected schema %q (want %q)", rep.Schema, Schema)
	}
	return &rep, nil
}

// DefaultOpts returns the measurement window for bench cells: long enough
// that per-run setup cost is noise, short enough to iterate on.
func DefaultOpts(quick bool) core.RunOpts {
	if quick {
		return core.RunOpts{Duration: 4 * units.Millisecond, Warmup: units.Millisecond}
	}
	return core.RunOpts{Duration: 20 * units.Millisecond, Warmup: 2 * units.Millisecond}
}
