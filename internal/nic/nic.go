// Package nic models physical Ethernet ports and the wires between them.
//
// A Port paces transmission at line rate (including preamble and inter-frame
// gap), queues frames in a bounded TX ring, delivers them to the peer port
// after the serialization delay, and stages arrivals into a bounded RX
// descriptor ring from which a consumer polls bursts. Frames that arrive
// while the RX ring is full are dropped and counted, exactly like the
// paper's saturated 82599 ports. Ports optionally timestamp frames in
// hardware (the Intel 82599 PTP feature MoonGen uses) and can deliver
// moderated interrupts to an IRQ-driven consumer (the netmap/VALE mode).
//
// The TX occupancy window, the staged-arrival queue, and the RX descriptor
// ring are all consumed from the front at packet rate; they are kept as
// head-indexed slices with amortized compaction so dequeuing is O(1) per
// frame instead of a memmove of everything still queued (which profiled as
// the single hottest call in saturating runs).
package nic

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/pkt"
	"repro/internal/units"
)

// Config sizes a port.
type Config struct {
	Name string
	Rate units.BitRate // line rate; defaults to 10 GbE
	// TxRing and RxRing are descriptor counts (defaults 512).
	TxRing, RxRing int
	// HWTimestamp enables PTP timestamping of probe frames.
	HWTimestamp bool
	// ITR is the interrupt throttling interval for IRQ-bound consumers:
	// interrupts fire at most once per ITR (82599-style moderation).
	ITR units.Time
	// RxLatency is the PHY→descriptor-ring delay (DMA + write-back)
	// before a received frame becomes visible to the consumer; the
	// hardware RX timestamp is taken at the PHY, before this delay.
	// TxLatency is the doorbell→wire delay on transmit.
	RxLatency, TxLatency units.Time
}

// Default PCIe/DMA descriptor path delays for a 82599-class NIC.
const (
	DefaultRxLatency = 2200 * units.Nanosecond
	DefaultTxLatency = 1300 * units.Nanosecond
)

// NoLatency disables a descriptor-path delay (Config fields treat zero as
// "use the default").
const NoLatency units.Time = -1

type arrival struct {
	at    units.Time // when the frame becomes visible (PHY + RxLatency)
	stamp units.Time // PHY arrival (hardware RX timestamp)
	buf   *pkt.Buf
}

// Counters exposes a port's packet accounting.
type Counters struct {
	TxPackets, TxBytes int64
	TxDropsFull        int64 // frames rejected because the TX ring was full
	RxPackets, RxBytes int64 // frames handed to the consumer
	RxDropsFull        int64 // frames lost to a full RX ring
}

// compactAt is the consumed-prefix length that triggers copying a
// head-indexed queue back to its slice front (amortized O(1) per element).
const compactAt = 256

// Port is one physical Ethernet port.
type Port struct {
	cfg  Config
	peer *Port
	// out, when non-nil, replaces direct peer delivery with a
	// cross-partition handoff queue (see CutWire): the wire has been cut
	// by the partitioned engine and the peer lives on another goroutine.
	out *Handoff

	// TX pacing state: doneTimes[doneHead:] holds the wire-completion
	// times of queued frames (FIFO); busyUntil is when the wire frees up.
	doneTimes []units.Time
	doneHead  int
	busyUntil units.Time

	// RX state: staged[stagedHead:] holds frames in flight / not yet
	// visible; ring[ringHead:] is the descriptor ring the consumer drains.
	staged     []arrival
	stagedHead int
	ring       []*pkt.Buf
	ringHead   int

	// Interrupt binding.
	irq      *cpu.IRQCore
	irqArmed bool
	lastIRQ  units.Time // last scheduled fire (ITR ratchet)

	Stats Counters
}

// NewPort returns a disconnected port.
func NewPort(cfg Config) *Port {
	if cfg.Rate == 0 {
		cfg.Rate = units.TenGigE
	}
	if cfg.TxRing == 0 {
		cfg.TxRing = 512
	}
	if cfg.RxRing == 0 {
		cfg.RxRing = 512
	}
	if cfg.RxLatency == 0 {
		cfg.RxLatency = DefaultRxLatency
	} else if cfg.RxLatency < 0 {
		cfg.RxLatency = 0
	}
	if cfg.TxLatency == 0 {
		cfg.TxLatency = DefaultTxLatency
	} else if cfg.TxLatency < 0 {
		cfg.TxLatency = 0
	}
	return &Port{cfg: cfg}
}

// Connect wires two ports back to back (full duplex).
func Connect(a, b *Port) {
	a.peer = b
	b.peer = a
}

// Name returns the port's configured name.
func (p *Port) Name() string { return p.cfg.Name }

// Rate returns the line rate.
func (p *Port) Rate() units.BitRate { return p.cfg.Rate }

// BindIRQ attaches an interrupt-driven consumer core. Arrivals schedule a
// throttled wake; the core re-arms the port when it goes back to sleep.
func (p *Port) BindIRQ(c *cpu.IRQCore) {
	p.irq = c
	c.AddSleeper(p.ReArm)
}

// scheduleIRQ arms one interrupt no earlier than `earliest`, honouring the
// ITR throttle. A port keeps at most one interrupt outstanding; the
// consumer re-arms via ReArm when it finishes polling.
func (p *Port) scheduleIRQ(earliest units.Time) {
	if p.irq == nil || p.irqArmed {
		return
	}
	fire := earliest
	if t := p.lastIRQ + p.cfg.ITR; t > fire {
		fire = t
	}
	p.irqArmed = true
	p.lastIRQ = fire
	p.irq.Wake(fire)
}

// ReArm re-enables the port's interrupt after the consumer exits its poll
// loop at time now (the NAPI contract): if frames are waiting — or still
// in flight toward the descriptor ring — the next interrupt is scheduled.
func (p *Port) ReArm(now units.Time) {
	if p.irq == nil {
		return
	}
	p.irqArmed = false
	switch {
	case len(p.ring) > p.ringHead:
		p.scheduleIRQ(now)
	case len(p.staged) > p.stagedHead:
		earliest := p.staged[p.stagedHead].at
		if earliest < now {
			earliest = now
		}
		p.scheduleIRQ(earliest)
	}
}

// purgeTx drops completed frames from the TX occupancy window.
func (p *Port) purgeTx(now units.Time) {
	dt := p.doneTimes
	h := p.doneHead
	for h < len(dt) && dt[h] <= now {
		h++
	}
	switch {
	case h == len(dt):
		p.doneTimes = dt[:0]
		p.doneHead = 0
	case h >= compactAt && h*2 >= len(dt):
		p.doneTimes = dt[:copy(dt, dt[h:])]
		p.doneHead = 0
	default:
		p.doneHead = h
	}
}

// TxFree returns the number of free TX descriptors at time now.
func (p *Port) TxFree(now units.Time) int {
	p.purgeTx(now)
	return p.cfg.TxRing - (len(p.doneTimes) - p.doneHead)
}

// Send enqueues one frame for transmission at time now. On success the port
// takes ownership and returns true; if the TX ring is full the frame is
// rejected (caller keeps ownership) and the drop is counted.
func (p *Port) Send(now units.Time, b *pkt.Buf) bool {
	return p.SendAt(now, b)
}

// SendAt enqueues one frame for transmission at time at, which may lie
// ahead of the simulation clock: a batched generator emits a whole CBR
// burst from one scheduler step by stamping each frame with its own due
// time. The port's TX state is touched only by its sender, and every
// downstream effect (wire completion, peer arrival, interrupt) is
// timestamped from `at`, so a batch is bit-identical to one Send per
// scheduler event at the same instants.
func (p *Port) SendAt(at units.Time, b *pkt.Buf) bool {
	if p.peer == nil {
		panic(fmt.Sprintf("nic: port %s not connected", p.cfg.Name))
	}
	p.purgeTx(at)
	if len(p.doneTimes)-p.doneHead >= p.cfg.TxRing {
		p.Stats.TxDropsFull++
		return false
	}
	start := at + p.cfg.TxLatency
	if p.busyUntil > start {
		start = p.busyUntil
	}
	done := start + p.cfg.Rate.WireTime(b.Len())
	p.busyUntil = done
	p.doneTimes = append(p.doneTimes, done)
	p.Stats.TxPackets++
	p.Stats.TxBytes += int64(b.Len())
	if p.cfg.HWTimestamp && b.Probe && b.TxStamp == 0 {
		// The NIC stamps the probe as the frame hits the wire.
		b.TxStamp = done
	}
	if p.out != nil {
		p.out.push(done, b)
	} else {
		p.peer.arrive(done, b)
	}
	return true
}

// BusyUntil returns the time at which all queued frames will have left the
// wire — the natural pacing point for a saturating generator.
func (p *Port) BusyUntil() units.Time { return p.busyUntil }

// arrive stages an inbound frame hitting the PHY at time at; it becomes
// visible to the consumer after the descriptor path delay.
func (p *Port) arrive(at units.Time, b *pkt.Buf) {
	avail := at + p.cfg.RxLatency
	p.staged = append(p.staged, arrival{at: avail, stamp: at, buf: b})
	p.scheduleIRQ(avail)
}

// materialize moves arrivals that completed by now into the RX ring,
// dropping (and freeing) those that find it full.
func (p *Port) materialize(now units.Time) {
	st := p.staged
	h := p.stagedHead
	for h < len(st) && st[h].at <= now {
		a := st[h]
		st[h] = arrival{}
		h++
		if len(p.ring)-p.ringHead >= p.cfg.RxRing {
			p.Stats.RxDropsFull++
			a.buf.Free()
			continue
		}
		a.buf.Ingress = a.stamp
		p.ring = append(p.ring, a.buf)
	}
	switch {
	case h == len(st):
		p.staged = st[:0]
		p.stagedHead = 0
	case h >= compactAt && h*2 >= len(st):
		p.staged = st[:copy(st, st[h:])]
		p.stagedHead = 0
	default:
		p.stagedHead = h
	}
}

// RxBurst moves up to len(out) received frames to out, returning the count.
// Ownership of returned buffers passes to the caller. It performs no cost
// accounting: the consuming device driver model charges for the burst.
func (p *Port) RxBurst(now units.Time, out []*pkt.Buf) int {
	p.materialize(now)
	n := copy(out, p.ring[p.ringHead:])
	if n > 0 {
		for j := p.ringHead; j < p.ringHead+n; j++ {
			p.ring[j] = nil
		}
		p.ringHead += n
		switch {
		case p.ringHead == len(p.ring):
			p.ring = p.ring[:0]
			p.ringHead = 0
		case p.ringHead >= compactAt && p.ringHead*2 >= len(p.ring):
			p.ring = p.ring[:copy(p.ring, p.ring[p.ringHead:])]
			p.ringHead = 0
		}
		for _, b := range out[:n] {
			p.Stats.RxPackets++
			p.Stats.RxBytes += int64(b.Len())
		}
	}
	return n
}

// RxPending returns how many frames are ready to be polled at time now.
func (p *Port) RxPending(now units.Time) int {
	p.materialize(now)
	return len(p.ring) - p.ringHead
}
