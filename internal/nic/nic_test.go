package nic

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/cpu"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/units"
)

func pair(t *testing.T, acfg, bcfg Config) (*Port, *Port) {
	t.Helper()
	acfg.RxLatency, acfg.TxLatency = NoLatency, NoLatency
	bcfg.RxLatency, bcfg.TxLatency = NoLatency, NoLatency
	a, b := NewPort(acfg), NewPort(bcfg)
	Connect(a, b)
	return a, b
}

func TestSendPacesAtLineRate(t *testing.T) {
	a, b := pair(t, Config{Name: "a"}, Config{Name: "b"})
	pool := pkt.NewPool(2048)
	// Send three 64B frames at t=0; they serialize back to back.
	for i := 0; i < 3; i++ {
		if !a.Send(0, pool.Get(64)) {
			t.Fatal("send failed")
		}
	}
	if want := 3 * 67200 * units.Picosecond; a.BusyUntil() != want {
		t.Fatalf("busyUntil = %v, want %v", a.BusyUntil(), want)
	}
	// At 67.2ns only the first frame has fully arrived.
	if n := b.RxPending(67200 * units.Picosecond); n != 1 {
		t.Fatalf("pending after 1 frame time = %d", n)
	}
	if n := b.RxPending(3 * 67200 * units.Picosecond); n != 3 {
		t.Fatalf("pending after 3 frame times = %d", n)
	}
}

func TestRxBurstDrains(t *testing.T) {
	a, b := pair(t, Config{}, Config{})
	pool := pkt.NewPool(2048)
	for i := 0; i < 5; i++ {
		a.Send(0, pool.Get(64))
	}
	out := make([]*pkt.Buf, 3)
	n := b.RxBurst(units.Microsecond, out)
	if n != 3 {
		t.Fatalf("burst = %d", n)
	}
	if out[0].Ingress != 67200*units.Picosecond {
		t.Fatalf("ingress = %v", out[0].Ingress)
	}
	if n := b.RxBurst(units.Microsecond, out); n != 2 {
		t.Fatalf("second burst = %d", n)
	}
	if b.Stats.RxPackets != 5 {
		t.Fatalf("rx packets = %d", b.Stats.RxPackets)
	}
	for _, buf := range out[:2] {
		buf.Free()
	}
}

func TestTxRingOverflow(t *testing.T) {
	a, _ := pair(t, Config{TxRing: 4}, Config{})
	pool := pkt.NewPool(2048)
	sent := 0
	for i := 0; i < 10; i++ {
		b := pool.Get(64)
		if a.Send(0, b) {
			sent++
		} else {
			b.Free()
		}
	}
	if sent != 4 {
		t.Fatalf("sent = %d, want ring size 4", sent)
	}
	if a.Stats.TxDropsFull != 6 {
		t.Fatalf("tx drops = %d", a.Stats.TxDropsFull)
	}
	// After the wire drains, sending succeeds again.
	if !a.Send(units.Millisecond, pool.Get(64)) {
		t.Fatal("send after drain failed")
	}
}

func TestRxRingOverflowDropsAndFrees(t *testing.T) {
	a, b := pair(t, Config{TxRing: 4096}, Config{RxRing: 8})
	pool := pkt.NewPool(2048)
	for i := 0; i < 20; i++ {
		a.Send(0, pool.Get(64))
	}
	// Materialize everything at once: only 8 fit, 12 drop.
	if n := b.RxPending(units.Millisecond); n != 8 {
		t.Fatalf("pending = %d", n)
	}
	if b.Stats.RxDropsFull != 12 {
		t.Fatalf("rx drops = %d", b.Stats.RxDropsFull)
	}
	// Dropped buffers went back to the pool: 20 live minus 12 freed.
	if pool.Live() != 8 {
		t.Fatalf("live bufs = %d", pool.Live())
	}
}

func TestHWTimestampOnProbe(t *testing.T) {
	a, b := pair(t, Config{HWTimestamp: true}, Config{})
	pool := pkt.NewPool(2048)
	probe := pool.Get(64)
	probe.Probe = true
	a.Send(0, probe)
	plain := pool.Get(64)
	a.Send(0, plain)
	if probe.TxStamp != 67200*units.Picosecond {
		t.Fatalf("probe TxStamp = %v", probe.TxStamp)
	}
	if plain.TxStamp != 0 {
		t.Fatal("non-probe frame stamped")
	}
	// A pre-stamped probe (software timestamping) is not overwritten.
	sw := pool.Get(64)
	sw.Probe = true
	sw.TxStamp = 5 * units.Nanosecond
	a.Send(units.Microsecond, sw)
	if sw.TxStamp != 5*units.Nanosecond {
		t.Fatal("software timestamp overwritten")
	}
	_ = b
}

func TestIRQModeration(t *testing.T) {
	s := sim.NewScheduler()
	itr := 30 * units.Microsecond
	a, b := pair(t, Config{TxRing: 4096}, Config{ITR: itr, RxRing: 4096})
	pool := pkt.NewPool(2048)

	var polled int
	m := cost.NewMeter(cost.Default(), sim.NewRNG(1))
	core := cpu.NewIRQCore(s, "irq", m, func(now units.Time, mt *cost.Meter) bool {
		out := make([]*pkt.Buf, 64)
		n := b.RxBurst(now, out)
		for _, buf := range out[:n] {
			buf.Free()
		}
		polled += n
		mt.Charge(100)
		return n > 0
	})
	b.BindIRQ(core)

	// 10 frames sent at t=0 arrive within ~0.7us; the moderated interrupt
	// fires at first-arrival + ITR and one wake handles all of them.
	for i := 0; i < 10; i++ {
		a.Send(0, pool.Get(64))
	}
	s.RunUntil(10 * units.Millisecond)
	if polled != 10 {
		t.Fatalf("polled = %d", polled)
	}
	if core.Wakeups != 1 {
		t.Fatalf("wakeups = %d, want 1 (moderation)", core.Wakeups)
	}
	if s.Now() < itr {
		t.Fatalf("interrupt fired before ITR: %v", s.Now())
	}
}

func TestSendUnconnectedPanics(t *testing.T) {
	p := NewPort(Config{Name: "lonely", RxLatency: NoLatency, TxLatency: NoLatency})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.Send(0, pkt.NewPool(64).Get(64))
}

func TestTxFreeAccounting(t *testing.T) {
	a, _ := pair(t, Config{TxRing: 16}, Config{})
	pool := pkt.NewPool(2048)
	if a.TxFree(0) != 16 {
		t.Fatalf("free = %d", a.TxFree(0))
	}
	for i := 0; i < 10; i++ {
		a.Send(0, pool.Get(64))
	}
	if a.TxFree(0) != 6 {
		t.Fatalf("free = %d", a.TxFree(0))
	}
	// 5 frames complete by 5*67.2ns.
	if got := a.TxFree(5 * 67200 * units.Picosecond); got != 11 {
		t.Fatalf("free after partial drain = %d", got)
	}
}

func TestBidirectionalIndependence(t *testing.T) {
	a, b := pair(t, Config{}, Config{})
	pool := pkt.NewPool(2048)
	a.Send(0, pool.Get(1024))
	b.Send(0, pool.Get(64))
	// Full duplex: b's 64B frame arrives at a in 67.2ns even though a's
	// 1024B frame is still serializing toward b.
	if n := a.RxPending(70 * units.Nanosecond); n != 1 {
		t.Fatalf("a pending = %d", n)
	}
	if n := b.RxPending(70 * units.Nanosecond); n != 0 {
		t.Fatalf("b pending = %d", n)
	}
}
