// Cross-partition wire handoff for the conservative parallel engine.
//
// A cut wire replaces in-process delivery (tx.SendAt → peer.arrive) with a
// single-producer/single-consumer ring of (wire-completion time, frame)
// pairs: the sending partition pushes as it transmits, and the receiving
// partition drains the ring at the top of each of its dispatch windows,
// replaying arrive() with the original timestamps.
//
// Why this is invisible to the simulation: arrive() only appends to the
// port's staged queue — a frame completing the wire at `done` becomes
// consumer-visible at done + RxLatency, and staging earlier or later (as
// long as it is before visibility) changes nothing. Conservative
// synchronization guarantees exactly that: the receiver's window edge never
// exceeds senderClock + TxLatency + RxLatency, while a frame pushed when the
// sender's clock read c completes the wire strictly after c + TxLatency
// (serialization time > 0), so every drained frame is still in its
// pre-visibility flight when it lands in staged. FIFO order per wire
// preserves the staged queue's sort (wire completions are monotonic per
// sender — the busyUntil ratchet).
package nic

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/pkt"
	"repro/internal/units"
)

// wireEntry is one in-flight frame: its wire-completion (PHY arrival) time
// and the buffer, ownership of which passes to the receiving partition.
type wireEntry struct {
	done units.Time
	buf  *pkt.Buf
}

// defaultHandoffCap bounds in-flight frames per cut direction. Conservative
// sync bounds clock skew by the lookahead, so real occupancy is ~2L of line
// rate (a few hundred frames); the cap is generous headroom, not a throttle.
const defaultHandoffCap = 4096

// Handoff is the SPSC ring carrying one direction of a cut wire. The
// sending partition calls push (via SendAt), the receiving partition calls
// Drain. Both sides work on goroutine-local indices and publish through a
// single atomic store, reloading the other side's published index only
// when they must (ring apparently full / apparently empty) — pushes run at
// line rate, so per-frame seq-cst traffic is what this layout avoids.
type Handoff struct {
	rx    *Port
	slots []wireEntry
	mask  uint64

	// Sender-local state.
	tailLocal uint64 // next slot to fill
	headCache uint64 // last observed published head

	// Receiver-local state.
	headLocal uint64 // next slot to drain

	head atomic.Uint64 // published by the receiver after draining
	tail atomic.Uint64 // published by the sender after filling
}

// CutWire diverts tx's transmissions into a new handoff queue instead of
// delivering directly to its peer, which the receiving partition must drain
// every window. capacity <= 0 selects the default; it is rounded up to a
// power of two. Cutting an interrupt-bound receiver is forbidden: arrive()
// would have to schedule an IRQ on the sender's goroutine at push time,
// which both races and (with ITR moderation charged at send) diverges from
// sequential dispatch — interrupt-mode topologies run single-partition.
func CutWire(tx *Port, capacity int) *Handoff {
	if tx.peer == nil {
		panic(fmt.Sprintf("nic: cannot cut unconnected port %s", tx.cfg.Name))
	}
	if tx.peer.irq != nil {
		panic(fmt.Sprintf("nic: cannot cut wire into IRQ-bound port %s", tx.peer.cfg.Name))
	}
	if capacity <= 0 {
		capacity = defaultHandoffCap
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	h := &Handoff{rx: tx.peer, slots: make([]wireEntry, c), mask: uint64(c - 1)}
	tx.out = h
	return h
}

// WireLookahead returns the minimum delay between tx's partition clock and
// any effect on the receiving side becoming consumer-visible: a frame sent
// at clock c completes the wire after c + TxLatency (plus serialization
// time, the strict-inequality margin that makes inclusive window edges
// safe) and becomes visible at completion + RxLatency.
func WireLookahead(tx *Port) units.Time {
	if tx.peer == nil {
		return 0
	}
	return tx.cfg.TxLatency + tx.peer.cfg.RxLatency
}

// push appends one in-flight frame; sender side only. The ring looks full
// against the cached head first; only then is the published head reloaded,
// and only a truly full ring yields until the receiver drains — with
// conservative sync that means the receiver is merely behind on wall
// clock, never blocked on us. One atomic store per frame.
func (h *Handoff) push(done units.Time, b *pkt.Buf) {
	t := h.tailLocal
	if t-h.headCache >= uint64(len(h.slots)) {
		for {
			h.headCache = h.head.Load()
			if t-h.headCache < uint64(len(h.slots)) {
				break
			}
			runtime.Gosched()
		}
	}
	h.slots[t&h.mask] = wireEntry{done: done, buf: b}
	h.tailLocal = t + 1
	h.tail.Store(t + 1)
}

// Drain replays every queued frame into the receiving port, in emission
// order; receiver side only. One tail load per call, and the head is
// published once after the whole batch — a sender spinning on a full ring
// waits at most one window, which conservative sync already tolerates.
// Every frame the sender pushed before publishing the clock that shaped
// this window's bound is covered: its tail store precedes that clock store.
func (h *Handoff) Drain() {
	tl := h.tail.Load()
	hd := h.headLocal
	if hd == tl {
		return
	}
	for i := hd; i < tl; i++ {
		e := &h.slots[i&h.mask]
		h.rx.arrive(e.done, e.buf)
		e.buf = nil
	}
	h.headLocal = tl
	h.head.Store(tl)
}
