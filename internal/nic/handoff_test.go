package nic

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/cpu"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/units"
)

// defaultPair returns a connected port pair keeping the default
// descriptor-path latencies (unlike pair(), which zeroes them).
func defaultPair() (*Port, *Port) {
	a, b := NewPort(Config{Name: "a"}), NewPort(Config{Name: "b"})
	Connect(a, b)
	return a, b
}

// TestCutWireMatchesDirectDelivery: a cut wire drained before the
// receiver polls is indistinguishable from direct delivery — same pending
// counts at the same times.
func TestCutWireMatchesDirectDelivery(t *testing.T) {
	cutA, cutB := defaultPair()
	dirA, dirB := defaultPair()
	h := CutWire(cutA, 0)

	pool := pkt.NewPool(2048)
	sendTimes := []units.Time{0, 100 * units.Nanosecond, units.Microsecond}
	for _, at := range sendTimes {
		if !cutA.SendAt(at, pool.Get(64)) || !dirA.SendAt(at, pool.Get(64)) {
			t.Fatal("send failed")
		}
	}
	h.Drain()
	for _, now := range []units.Time{0, 4 * units.Microsecond, 10 * units.Microsecond} {
		if c, d := cutB.RxPending(now), dirB.RxPending(now); c != d {
			t.Errorf("at %v: cut pending %d, direct pending %d", now, c, d)
		}
	}
	if cutB.RxPending(10*units.Microsecond) != len(sendTimes) {
		t.Errorf("not all frames delivered through the cut")
	}
}

// TestLookaheadEdge pins the conservative-sync margin: a frame sent while
// the sender's clock reads c is NOT yet consumer-visible at the receiver
// window edge c + WireLookahead — serialization time is the strict
// inequality — and becomes visible one wire time later. This is what
// makes the engine's inclusive window edges (dispatch up to and including
// clock+L) sound.
func TestLookaheadEdge(t *testing.T) {
	a, b := defaultPair()
	h := CutWire(a, 0)
	L := WireLookahead(a)
	if want := DefaultTxLatency + DefaultRxLatency; L != want {
		t.Fatalf("WireLookahead = %v, want %v", L, want)
	}

	pool := pkt.NewPool(2048)
	// Sender clock reads 0 at send time.
	if !a.SendAt(0, pool.Get(64)) {
		t.Fatal("send failed")
	}
	h.Drain()
	wire := a.cfg.Rate.WireTime(64)
	if wire <= 0 {
		t.Fatal("wire time must be positive for the edge margin to exist")
	}
	if n := b.RxPending(L); n != 0 {
		t.Fatalf("frame visible at the lookahead edge itself (pending=%d)", n)
	}
	if n := b.RxPending(L + wire); n != 1 {
		t.Fatalf("frame not visible one wire time past the edge (pending=%d)", n)
	}
}

// TestHandoffWraps: the ring index wraps through a small capacity across
// multiple push/drain rounds without losing or reordering frames.
func TestHandoffWraps(t *testing.T) {
	a, b := defaultPair()
	h := CutWire(a, 3) // rounds up to 4 slots
	if len(h.slots) != 4 {
		t.Fatalf("capacity = %d, want rounded to 4", len(h.slots))
	}
	pool := pkt.NewPool(2048)
	total := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			if !a.SendAt(units.Time(total)*units.Microsecond, pool.Get(64)) {
				t.Fatal("send failed")
			}
			total++
		}
		h.Drain()
	}
	if n := b.RxPending(units.Millisecond); n != total {
		t.Fatalf("delivered %d of %d frames across wraps", n, total)
	}
}

// TestCutWirePanics: cutting an unconnected port or a wire into an
// IRQ-bound receiver is a wiring bug and must fail loudly.
func TestCutWirePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("unconnected", func() {
		CutWire(NewPort(Config{Name: "lone"}), 0)
	})

	s := sim.NewScheduler()
	m := cost.NewMeter(cost.Default(), sim.NewRNG(1))
	a, b := defaultPair()
	b.BindIRQ(cpu.NewIRQCore(s, "irq", m, func(now units.Time, mt *cost.Meter) bool { return false }))
	expectPanic("irq-bound receiver", func() { CutWire(a, 0) })
}

// TestWireLookaheadUnconnected: no peer means no lookahead to offer.
func TestWireLookaheadUnconnected(t *testing.T) {
	if l := WireLookahead(NewPort(Config{Name: "lone"})); l != 0 {
		t.Errorf("WireLookahead on unconnected port = %v, want 0", l)
	}
}
